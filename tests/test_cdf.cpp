#include "util/cdf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace tmprof::util {
namespace {

TEST(Cdf, AtFractions) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
}

TEST(Cdf, Quantiles) {
  EmpiricalCdf cdf({10, 20, 30, 40, 50});
  EXPECT_EQ(cdf.quantile(0.0), 10U);
  EXPECT_EQ(cdf.quantile(0.2), 10U);
  EXPECT_EQ(cdf.quantile(0.5), 30U);
  EXPECT_EQ(cdf.quantile(1.0), 50U);
}

TEST(Cdf, MinMax) {
  EmpiricalCdf cdf({7, 3, 9});
  EXPECT_EQ(cdf.min(), 3U);
  EXPECT_EQ(cdf.max(), 9U);
}

TEST(Cdf, EmptyBehaves) {
  EmpiricalCdf cdf({});
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.0);
  EXPECT_THROW(cdf.quantile(0.5), AssertionError);
}

TEST(Cdf, CurveIsMonotone) {
  std::vector<std::uint64_t> samples;
  for (std::uint64_t i = 0; i < 1000; ++i) samples.push_back(i * i % 977);
  EmpiricalCdf cdf(std::move(samples));
  const auto rows = cdf.curve(20);
  ASSERT_GE(rows.size(), 2U);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].first, rows[i - 1].first);
    EXPECT_GE(rows[i].second, rows[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(rows.back().second, 1.0);
}

TEST(Cdf, CsvHasHeaderAndRows) {
  EmpiricalCdf cdf({1, 2, 3});
  std::ostringstream os;
  cdf.write_csv(os, 3);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("value,cum_fraction\n", 0), 0U);
  EXPECT_NE(text.find("3,1"), std::string::npos);
}

}  // namespace
}  // namespace tmprof::util
