/// Property tests for util::SpscRing, the per-lane transport of the
/// streaming sample path (docs/STREAMING.md): wraparound at every
/// power-of-two capacity, full/empty boundary behavior, overflow-drop
/// counting, drain FIFO order and idempotence, high-water / stats reset
/// semantics, and a producer/consumer stress test exercised under TSan
/// (the `tsan` preset's ctest filter includes `Ring`).

#include "util/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace tmprof::util {
namespace {

TEST(Ring, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscRing<int>(3), AssertionError);
  EXPECT_THROW(SpscRing<int>(0), AssertionError);
  EXPECT_THROW(SpscRing<int>(1), AssertionError);
  EXPECT_NO_THROW(SpscRing<int>(2));
}

TEST(Ring, FifoOrderSurvivesWraparoundAtEveryCapacity) {
  // Push/pop far more records than the capacity so the cursors wrap the
  // mask many times; the pop sequence must stay exactly FIFO throughout.
  for (std::uint32_t cap = 2; cap <= 256; cap *= 2) {
    SpscRing<std::uint64_t> ring(cap);
    std::uint64_t next_push = 0, next_pop = 0;
    const std::uint64_t total = 16ULL * cap + 7;
    while (next_pop < total) {
      // Fill to a varying depth (1..cap), then drain half, so every
      // head/tail phase relative to the mask is visited. Never push into a
      // full ring here — overflow accounting has its own test below.
      const std::uint64_t burst = 1 + (next_push % cap);
      for (std::uint64_t i = 0; i < burst && ring.size() < cap; ++i) {
        ASSERT_TRUE(ring.try_push(next_push)) << "cap=" << cap;
        ++next_push;
      }
      std::uint64_t out = 0;
      const std::uint64_t want = (ring.size() + 1) / 2;
      for (std::uint64_t i = 0; i < want; ++i) {
        ASSERT_TRUE(ring.pop(out)) << "cap=" << cap;
        ASSERT_EQ(out, next_pop) << "cap=" << cap;
        ++next_pop;
      }
    }
    EXPECT_EQ(ring.drops(), 0U) << "cap=" << cap;
  }
}

TEST(Ring, FullAndEmptyBoundaries) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0U);
  int out = 0;
  EXPECT_FALSE(ring.pop(out));  // popping empty fails, no state change
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 8U);
  EXPECT_FALSE(ring.try_push(99));  // exactly full: push must fail
  EXPECT_EQ(ring.size(), 8U);       // ... and not consume a slot
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);  // the rejected 99 never entered
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop(out));
  // The boundary cycle repeats cleanly after a full wrap.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(100 + i));
  EXPECT_FALSE(ring.try_push(0));
}

TEST(Ring, OverflowDropsAreCountedNotStored) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ring.try_push(1000 + i));
  EXPECT_EQ(ring.drops(), 10U);
  EXPECT_EQ(ring.pushed(), 4U);  // producer cursor counts successes only
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(42));  // one free slot reopens the ring
  EXPECT_EQ(ring.drops(), 10U);    // ... without disturbing the tally
  EXPECT_EQ(ring.pushed(), 5U);
}

TEST(Ring, DrainIsFifoAndIdempotent) {
  SpscRing<std::uint32_t> ring(16);
  for (std::uint32_t i = 0; i < 11; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<std::uint32_t> seen;
  EXPECT_EQ(ring.drain([&](const std::uint32_t& v) { seen.push_back(v); }),
            11U);
  ASSERT_EQ(seen.size(), 11U);
  for (std::uint32_t i = 0; i < 11; ++i) EXPECT_EQ(seen[i], i);
  // Sealing paths drain repeatedly; an empty drain must be a free no-op.
  EXPECT_EQ(ring.drain([&](const std::uint32_t&) { FAIL(); }), 0U);
  EXPECT_EQ(ring.drain([&](const std::uint32_t&) { FAIL(); }), 0U);
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, HighWaterTracksDepthAndResetsIndependently) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.high_water(), 3U);
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_TRUE(ring.try_push(3));  // depth back to 3: mark must not move
  EXPECT_EQ(ring.high_water(), 3U);
  for (int i = 4; i < 9; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.high_water(), 8U);
  (void)ring.try_push(99);  // overflow: a drop is not a depth
  EXPECT_EQ(ring.high_water(), 8U);
  EXPECT_EQ(ring.drops(), 1U);
  // Per-epoch gauge reset clears depth but keeps the cumulative drops.
  ring.reset_high_water();
  EXPECT_EQ(ring.high_water(), 0U);
  EXPECT_EQ(ring.drops(), 1U);
  while (ring.pop(out)) {
  }
  ASSERT_TRUE(ring.try_push(0));
  EXPECT_EQ(ring.high_water(), 1U);  // mark re-arms from the next push
  ring.reset_stats();
  EXPECT_EQ(ring.drops(), 0U);
  EXPECT_EQ(ring.high_water(), 0U);
}

TEST(Ring, ProducerConsumerStress) {
  // One producer thread, one consumer thread (this one), small ring so the
  // cursors wrap thousands of times and both full and empty races occur.
  // Run under the `tsan` preset to validate the acquire/release protocol;
  // the assertions below validate lossless FIFO transport regardless.
  constexpr std::uint64_t kRecords = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    std::uint64_t next = 0;
    while (next < kRecords) {
      if (ring.try_push(next)) ++next;  // full ring: spin until space
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t out = 0;
  while (expect < kRecords) {
    if (ring.pop(out)) {
      ASSERT_EQ(out, expect);  // in order, nothing lost or duplicated
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), kRecords);
}

TEST(Ring, StressWithDrainConsumer) {
  // Same shape but consuming via drain(), the transport's pump primitive.
  constexpr std::uint64_t kRecords = 100000;
  SpscRing<std::uint64_t> ring(32);
  std::thread producer([&ring] {
    std::uint64_t next = 0;
    while (next < kRecords) {
      if (ring.try_push(next)) ++next;
    }
  });
  std::uint64_t expect = 0;
  while (expect < kRecords) {
    ring.drain([&](const std::uint64_t& v) {
      ASSERT_EQ(v, expect);
      ++expect;
    });
  }
  producer.join();
  EXPECT_EQ(expect, kRecords);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace tmprof::util
