/// Golden-value regression for the figure pipeline: a down-scaled
/// fig6_hitrate computation (sharded engine, fixed seed) checked against
/// values captured in this file with zero tolerance. The sharded engine is
/// deterministic by construction, so any drift here means a semantic change
/// to the engine, monitors, fusion, or policies — if the change is
/// intended, regenerate with
///   TMPROF_REGEN_GOLDEN=1 ./tmprof_tests --gtest_filter='GoldenFigures.*'
/// and paste the printed table over kGolden below.

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "tiering/epoch.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "workloads/registry.hpp"

namespace tmprof::tiering {
namespace {

EpochSeries golden_series() {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 13;  // collection tier holds the whole footprint
  cfg.tier2_frames = 1 << 14;
  CollectOptions collect;
  collect.n_epochs = 4;
  collect.ops_per_epoch = 100'000;
  collect.seed = 42;
  collect.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  collect.n_threads = 2;  // any n_threads >= 1 yields the identical series
  return collect_series(spec, cfg, collect);
}

struct GoldenCase {
  const char* policy;
  const char* source;
  core::FusionMode fusion;
  bool oracle_observed;
  std::uint64_t divisor;
  double expected;
};

// Captured from a TMPROF_REGEN_GOLDEN run (hex floats: exact bit patterns).
constexpr std::array<GoldenCase, 8> kGolden{{
    {"oracle", "abit", core::FusionMode::AbitOnly, true, 8, 0x1.de50069791ae1p-3},
    {"oracle", "ibs", core::FusionMode::TraceOnly, true, 8, 0x1.81662038f57aap-4},
    {"oracle", "tmp", core::FusionMode::Sum, true, 8, 0x1.123fd61ef917cp-2},
    {"history", "abit", core::FusionMode::AbitOnly, false, 8,
     0x1.1ec6c4e5188a3p-4},
    {"history", "ibs", core::FusionMode::TraceOnly, false, 8,
     0x1.2bf5e8412aabp-5},
    {"history", "tmp", core::FusionMode::Sum, false, 8, 0x1.64670729067f7p-4},
    {"oracle", "truth", core::FusionMode::Sum, false, 32, 0x1.99c90745fa90ep-3},
    {"history", "tmp", core::FusionMode::Sum, false, 32, 0x1.f97a5abe45412p-6},
}};

TEST(GoldenFigures, Fig6DownscaledHitratesAreBitStable) {
  const EpochSeries series = golden_series();
  ASSERT_GT(series.footprint_frames, 0U);
  const bool regen = std::getenv("TMPROF_REGEN_GOLDEN") != nullptr;
  for (const GoldenCase& c : kGolden) {
    HitrateOptions opt;
    opt.capacity_frames =
        std::max<std::uint64_t>(1, series.footprint_frames / c.divisor);
    opt.fusion = c.fusion;
    opt.oracle_from_observed = c.oracle_observed;
    const auto policy = make_policy(c.policy);
    const double actual = evaluate_policy(*policy, series, opt).overall;
    if (regen) {
      std::printf("    {\"%s\", \"%s\", core::FusionMode::%s, %s, %llu, %a},\n",
                  c.policy, c.source,
                  c.fusion == core::FusionMode::AbitOnly    ? "AbitOnly"
                  : c.fusion == core::FusionMode::TraceOnly ? "TraceOnly"
                                                            : "Sum",
                  c.oracle_observed ? "true" : "false",
                  static_cast<unsigned long long>(c.divisor), actual);
      continue;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(actual),
              std::bit_cast<std::uint64_t>(c.expected))
        << c.policy << "/" << c.source << " @1/" << c.divisor << ": got "
        << std::hexfloat << actual << ", golden " << c.expected;
  }
}

}  // namespace
}  // namespace tmprof::tiering
