#include "monitors/pebs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tmprof::monitors {
namespace {

MemOpEvent make_op(mem::DataSource src, bool is_store = false,
                   mem::TlbHit tlb = mem::TlbHit::L1) {
  MemOpEvent ev;
  ev.core = 0;
  ev.pid = 2;
  ev.vaddr = 0x1000;
  ev.paddr = 0x5000;
  ev.source = src;
  ev.is_store = is_store;
  ev.tlb = tlb;
  return ev;
}

TEST(Pebs, SamplesEveryNthQualifyingEvent) {
  PebsConfig cfg;
  cfg.event = PebsEvent::LlcMiss;
  cfg.sample_after = 10;
  PebsMonitor pebs(cfg, 1);
  for (int i = 0; i < 100; ++i) pebs.on_mem_op(make_op(mem::DataSource::MemTier1));
  EXPECT_EQ(pebs.events_seen(), 100U);
  EXPECT_EQ(pebs.samples_taken(), 10U);
}

TEST(Pebs, NonQualifyingEventsIgnored) {
  PebsConfig cfg;
  cfg.event = PebsEvent::LlcMiss;
  cfg.sample_after = 1;
  PebsMonitor pebs(cfg, 1);
  pebs.on_mem_op(make_op(mem::DataSource::L1));
  pebs.on_mem_op(make_op(mem::DataSource::LLC));
  EXPECT_EQ(pebs.samples_taken(), 0U);
  pebs.on_mem_op(make_op(mem::DataSource::MemTier2));
  EXPECT_EQ(pebs.samples_taken(), 1U);
}

TEST(Pebs, EventSelectionVariants) {
  {
    PebsConfig cfg;
    cfg.event = PebsEvent::LlcAccess;
    cfg.sample_after = 1;
    PebsMonitor pebs(cfg, 1);
    pebs.on_mem_op(make_op(mem::DataSource::LLC));
    pebs.on_mem_op(make_op(mem::DataSource::MemTier1));
    EXPECT_EQ(pebs.samples_taken(), 2U);
  }
  {
    PebsConfig cfg;
    cfg.event = PebsEvent::TlbWalk;
    cfg.sample_after = 1;
    PebsMonitor pebs(cfg, 1);
    pebs.on_mem_op(make_op(mem::DataSource::L1, false, mem::TlbHit::Miss));
    pebs.on_mem_op(make_op(mem::DataSource::L1, false, mem::TlbHit::L1));
    EXPECT_EQ(pebs.samples_taken(), 1U);
  }
  {
    PebsConfig cfg;
    cfg.event = PebsEvent::AllLoads;
    cfg.sample_after = 1;
    PebsMonitor pebs(cfg, 1);
    pebs.on_mem_op(make_op(mem::DataSource::L1, /*is_store=*/true));
    pebs.on_mem_op(make_op(mem::DataSource::L1, /*is_store=*/false));
    EXPECT_EQ(pebs.samples_taken(), 1U);
  }
}

TEST(Pebs, BufferThresholdRaisesPmi) {
  PebsConfig cfg;
  cfg.sample_after = 1;
  cfg.buffer_capacity = 4;
  PebsMonitor pebs(cfg, 1);
  int drains = 0;
  pebs.set_drain([&](std::span<const TraceSample> s) {
    EXPECT_EQ(s.size(), 4U);
    ++drains;
  });
  for (int i = 0; i < 9; ++i) pebs.on_mem_op(make_op(mem::DataSource::MemTier1));
  EXPECT_EQ(drains, 2);
  EXPECT_EQ(pebs.interrupts(), 2U);
}

TEST(Pebs, RecordFieldsPreserved) {
  PebsConfig cfg;
  cfg.sample_after = 1;
  PebsMonitor pebs(cfg, 1);
  std::vector<TraceSample> got;
  pebs.set_drain([&](std::span<const TraceSample> s) {
    got.assign(s.begin(), s.end());
  });
  MemOpEvent ev = make_op(mem::DataSource::MemTier2, true, mem::TlbHit::Miss);
  ev.time = 777;
  ev.ip = 9;
  pebs.on_mem_op(ev);
  pebs.drain();
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0].time, 777U);
  EXPECT_EQ(got[0].ip, 9U);
  EXPECT_EQ(got[0].paddr, 0x5000U);
  EXPECT_TRUE(got[0].is_store);
  EXPECT_TRUE(got[0].tlb_miss);
  EXPECT_EQ(got[0].source, mem::DataSource::MemTier2);
}

TEST(Pebs, PerCoreCounters) {
  PebsConfig cfg;
  cfg.sample_after = 2;
  PebsMonitor pebs(cfg, 2);
  MemOpEvent a = make_op(mem::DataSource::MemTier1);
  a.core = 0;
  MemOpEvent b = make_op(mem::DataSource::MemTier1);
  b.core = 1;
  // Alternate cores: each core's counter advances independently.
  pebs.on_mem_op(a);
  pebs.on_mem_op(b);
  EXPECT_EQ(pebs.samples_taken(), 0U);
  pebs.on_mem_op(a);
  EXPECT_EQ(pebs.samples_taken(), 1U);
  pebs.on_mem_op(b);
  EXPECT_EQ(pebs.samples_taken(), 2U);
}

TEST(Pebs, OverheadModel) {
  PebsConfig cfg;
  cfg.sample_after = 1;
  cfg.buffer_capacity = 2;
  PebsMonitor pebs(cfg, 1);
  for (int i = 0; i < 4; ++i) pebs.on_mem_op(make_op(mem::DataSource::MemTier1));
  EXPECT_EQ(pebs.overhead_ns(),
            4 * cfg.cost_per_record_ns + 2 * cfg.cost_per_interrupt_ns);
}

}  // namespace
}  // namespace tmprof::monitors
