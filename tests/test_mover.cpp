#include "tiering/mover.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

sim::SimConfig small_config(std::uint64_t t1_frames) {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = t1_frames;
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

/// Touch `pages` distinct 4 KiB pages of a process.
void touch_pages(sim::System& sys, mem::Pid pid, std::uint64_t pages) {
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t i = 0; i < pages; ++i) {
    sys.access(proc, proc.vaddr_of(i * mem::kPageSize), false, 1);
  }
}

std::vector<core::PageRank> rank_pages(sim::System& sys, mem::Pid pid,
                                       std::initializer_list<std::uint64_t>
                                           page_indices) {
  std::vector<core::PageRank> ranking;
  std::uint64_t rank = 1000;
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t idx : page_indices) {
    core::PageRank pr;
    pr.key = PageKey{pid, proc.vaddr_of(idx * mem::kPageSize)};
    pr.rank = rank--;
    ranking.push_back(pr);
  }
  return ranking;
}

TEST(Mover, PromotesHotPagesIntoTier1) {
  sim::System sys(small_config(4));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);  // 4 land in t1, 6 spill to t2
  PageMover mover(sys);
  // Declare pages 6..9 (currently in t2) the hottest.
  const auto ranking = rank_pages(sys, pid, {6, 7, 8, 9});
  const MoveStats stats = mover.apply(ranking, 4);
  EXPECT_EQ(stats.promoted, 4U);
  EXPECT_EQ(stats.demoted, 4U);  // the old residents made room
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t idx : {6, 7, 8, 9}) {
    const auto ref =
        proc.page_table().resolve(proc.vaddr_of(idx * mem::kPageSize));
    EXPECT_EQ(sys.phys().tier_of(ref.pte->pfn()), 0) << idx;
  }
}

TEST(Mover, AlreadyPlacedPagesNotMoved) {
  sim::System sys(small_config(4));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 4);  // all fit in t1
  PageMover mover(sys);
  const auto ranking = rank_pages(sys, pid, {0, 1, 2, 3});
  const MoveStats stats = mover.apply(ranking, 4);
  EXPECT_EQ(stats.promoted, 0U);
  EXPECT_EQ(stats.demoted, 0U);
  EXPECT_EQ(stats.cost_ns, 0U);
}

TEST(Mover, ChargesMigrationCostToClock) {
  sim::System sys(small_config(2));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 6);
  const util::SimNs cost = 50 * util::kMicrosecond;
  PageMover mover(sys, cost);
  const util::SimNs before = sys.now();
  const auto ranking = rank_pages(sys, pid, {4, 5});
  const MoveStats stats = mover.apply(ranking, 2);
  EXPECT_EQ(stats.promoted + stats.demoted,
            (sys.now() - before) / cost);
}

TEST(Mover, ResidentsEnumeration) {
  sim::System sys(small_config(3));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 5);
  PageMover mover(sys);
  EXPECT_EQ(mover.residents(0).size(), 3U);
  EXPECT_EQ(mover.residents(1).size(), 2U);
}

TEST(Mover, EmptyRankingIsNoop) {
  sim::System sys(small_config(2));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 4);
  PageMover mover(sys);
  const MoveStats stats = mover.apply({}, 2);
  EXPECT_EQ(stats.promoted + stats.demoted + stats.failed(), 0U);
}

TEST(Mover, CapacitySmallerThanTierRespected) {
  sim::System sys(small_config(8));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 8);  // all in t1
  PageMover mover(sys);
  // Policy says only 2 pages deserve t1 (capacity 2): mover demotes the
  // other t1 residents only as needed — pages 6,7 are already resident, so
  // no demotions are required to satisfy the desired set.
  const auto ranking = rank_pages(sys, pid, {6, 7});
  const MoveStats stats = mover.apply(ranking, 2);
  EXPECT_EQ(stats.promoted, 0U);
  EXPECT_EQ(stats.demoted, 0U);
}

TEST(Mover, FailsGracefullyWhenTier2Full) {
  sim::SimConfig cfg = small_config(2);
  cfg.tier2_frames = 512;  // tiny slow tier
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 2 + 512);  // fills both tiers completely
  PageMover mover(sys);
  const auto ranking = rank_pages(sys, pid, {100, 101});
  const MoveStats stats = mover.apply(ranking, 2);
  // Demotions cannot find room (t2 full) -> promotions fail, no crash.
  EXPECT_GT(stats.failed(), 0U);
  EXPECT_GT(stats.no_room, 0U);
  EXPECT_EQ(stats.aborted, 0U);  // no injected faults -> no retries/aborts
  EXPECT_EQ(stats.retried, 0U);
  // The blocked promotions wait on the deferred queue for a later epoch.
  EXPECT_GT(mover.deferred_pending(), 0U);
}

TEST(MoverTiers, FullLadderFailsGracefullyAndDefers) {
  // Every tier 100% full: demotions have no room anywhere, so promotions
  // cannot be staged either. The mover must report no_room (not crash) and
  // park the blocked promotions for later epochs.
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 2;
  cfg.tier2_frames = 4;
  cfg.tier3_frames = 4;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);  // 2 + 4 + 4: fills all three tiers exactly
  PageMover mover(sys);
  // The hottest pages live at the bottom: promotion pressure everywhere.
  const auto ranking = rank_pages(sys, pid, {9, 8, 7, 6});
  const MoveStats stats = mover.apply_tiers(ranking, {2, 4});
  EXPECT_EQ(stats.promoted, 0U);
  EXPECT_EQ(stats.demoted, 0U);
  EXPECT_GT(stats.no_room, 0U);
  EXPECT_GT(mover.deferred_pending(), 0U);
  // Re-applying after space opens up drains the queue: free a bottom-tier
  // page so the demotion ladder can stage exchanges again.
  sim::Process& proc = sys.process(pid);
  const mem::Pte freed = proc.page_table().unmap(proc.vaddr_of(0));
  sys.phys().free(freed.pfn());
  const MoveStats again = mover.apply_tiers(ranking, {2, 4});
  EXPECT_GT(again.promoted + again.demoted, 0U);
}

}  // namespace
}  // namespace tmprof::tiering

namespace tmprof::tiering {
namespace {

sim::SimConfig three_tier_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 2;
  cfg.tier2_frames = 4;
  cfg.tier3_frames = 1 << 14;
  return cfg;
}

TEST(MoverTiers, WaterfallPlacesByRankAcrossThreeTiers) {
  sim::System sys(three_tier_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);  // 2 in t0, 4 in t1, 4 in t2
  PageMover mover(sys);
  // Hottest: pages 9, 8 (currently t2); then 7, 6, 5, 4.
  const auto ranking = rank_pages(sys, pid, {9, 8, 7, 6, 5, 4});
  const MoveStats stats = mover.apply_tiers(ranking, {2, 4});
  EXPECT_GT(stats.promoted, 0U);
  sim::Process& proc = sys.process(pid);
  auto tier_of_page = [&](std::uint64_t idx) {
    const auto ref =
        proc.page_table().resolve(proc.vaddr_of(idx * mem::kPageSize));
    return sys.phys().tier_of(ref.pte->pfn());
  };
  EXPECT_EQ(tier_of_page(9), 0);
  EXPECT_EQ(tier_of_page(8), 0);
  EXPECT_EQ(tier_of_page(7), 1);
  EXPECT_EQ(tier_of_page(6), 1);
  EXPECT_EQ(tier_of_page(5), 1);
  EXPECT_EQ(tier_of_page(4), 1);
  // Unranked pages ended up at the bottom of the ladder.
  EXPECT_EQ(tier_of_page(0), 2);
}

TEST(MoverTiers, TwoTierWaterfallMatchesApply) {
  sim::SimConfig cfg = three_tier_config();
  cfg.tier3_frames = 0;  // plain two tiers
  cfg.tier2_frames = 8;  // slack below: exchanges need staging room
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 6);
  PageMover mover(sys);
  const auto ranking = rank_pages(sys, pid, {5, 4});
  const MoveStats stats = mover.apply_tiers(ranking, {2});
  EXPECT_EQ(stats.promoted, 2U);
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t idx : {5ULL, 4ULL}) {
    const auto ref =
        proc.page_table().resolve(proc.vaddr_of(idx * mem::kPageSize));
    EXPECT_EQ(sys.phys().tier_of(ref.pte->pfn()), 0) << idx;
  }
}

TEST(MoverTiers, RequiresEnoughTiers) {
  sim::SimConfig cfg = three_tier_config();
  cfg.tier3_frames = 0;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 2);
  PageMover mover(sys);
  const auto ranking = rank_pages(sys, pid, {0});
  EXPECT_THROW(mover.apply_tiers(ranking, {1, 1}), util::AssertionError);
  EXPECT_THROW(mover.apply_tiers(ranking, {}), util::AssertionError);
}

}  // namespace
}  // namespace tmprof::tiering
