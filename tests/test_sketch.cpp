/// Property tests for the probabilistic hotness front-end (docs/SKETCH.md):
/// the count-min sketch's one-sided error guarantee (never undercounts, and
/// overcounts beyond the epsilon-delta bound are as rare as advertised),
/// the Bloom filter's no-false-negative guarantee, determinism of the
/// seeded hash families, the shard-merge invariants, and the HotnessStore
/// wrapper's exact/sketch behavioral contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/hotness.hpp"
#include "tiering/policies.hpp"
#include "util/ckpt.hpp"
#include "util/rng.hpp"
#include "util/sketch.hpp"
#include "util/zipf.hpp"

namespace tmprof {
namespace {

using core::PageKey;

PageKey key_of(std::uint64_t page) {
  return PageKey{1 + static_cast<mem::Pid>(page % 4),
                 page * mem::kPageSize};
}

// ---------------------------------------------------------------------------
// CountMinSketch

class SketchCms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchCms, NeverUndercounts) {
  util::Rng rng(GetParam());
  util::CountMinSketch cms(1024, 4, 7);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t fp = rng.below(4096) * 0x9e3779b9ULL;
    const auto n = static_cast<std::uint32_t>(1 + rng.below(8));
    cms.add(fp, n);
    reference[fp] += n;
  }
  for (const auto& [fp, count] : reference) {
    ASSERT_GE(cms.estimate(fp), count) << "undercount for fp " << fp;
  }
}

TEST_P(SketchCms, ErrorWithinEpsilonDeltaBound) {
  // Pr[estimate > true + eps * N] <= delta with eps = e/width and
  // delta = e^-depth. Conservative update only tightens this, so the
  // measured violation fraction must sit at or below delta.
  util::Rng rng(GetParam() * 977 + 5);
  util::CountMinSketch cms(2048, 4, 11);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  reference.reserve(5000);
  for (int i = 0; i < 60000; ++i) {
    const std::uint64_t fp = util::U64Hash{}(rng.below(5000));
    cms.add(fp, 1);
    reference[fp] += 1;
  }
  const double bound =
      cms.epsilon() * static_cast<double>(cms.added());  // eps * N
  std::uint64_t violations = 0;
  for (const auto& [fp, count] : reference) {
    if (static_cast<double>(cms.estimate(fp) - count) > bound) ++violations;
  }
  const double fraction =
      static_cast<double>(violations) / static_cast<double>(reference.size());
  EXPECT_LE(fraction, cms.delta())
      << violations << " of " << reference.size() << " keys exceed eps*N="
      << bound;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchCms,
                         ::testing::Values(1ULL, 42ULL, 20260807ULL));

TEST(Sketch, CmsDeterministicAndSeedSensitive) {
  auto fill = [](util::CountMinSketch& cms) {
    util::Rng rng(3);
    for (int i = 0; i < 5000; ++i) cms.add(rng.below(1 << 16), 1);
  };
  util::CountMinSketch a(512, 4, 99);
  util::CountMinSketch b(512, 4, 99);
  util::CountMinSketch c(512, 4, 100);
  fill(a);
  fill(b);
  fill(c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different hash family, different cells
}

TEST(Sketch, CmsMergePreservesNoUndercount) {
  // Conservative update keeps every cell a key hashes to >= that key's
  // true count, so the cell-wise saturating shard merge cannot undercount.
  util::Rng rng(17);
  std::vector<util::CountMinSketch> shards(
      4, util::CountMinSketch(1024, 4, 123));
  util::CountMinSketch merged(1024, 4, 123);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t fp = rng.below(3000) * 0x100000001b3ULL;
    shards[fp % 4].add(fp, 1);
    reference[fp] += 1;
  }
  std::uint64_t shard_total = 0;
  for (const util::CountMinSketch& shard : shards) {
    merged.merge_add(shard);
    shard_total += shard.added();
  }
  EXPECT_EQ(merged.added(), shard_total);
  for (const auto& [fp, count] : reference) {
    ASSERT_GE(merged.estimate(fp), count);
  }
}

TEST(Sketch, CmsMergeShapeMismatchThrows) {
  util::CountMinSketch a(512, 4, 1);
  util::CountMinSketch b(1024, 4, 1);
  util::CountMinSketch c(512, 4, 2);
  EXPECT_THROW(a.merge_add(b), std::logic_error);
  EXPECT_THROW(a.merge_add(c), std::logic_error);
}

TEST(Sketch, CmsSaturatesInsteadOfWrapping) {
  util::CountMinSketch cms(64, 2, 5);
  const std::uint64_t fp = 0xdeadbeefULL;
  for (int i = 0; i < 3; ++i) cms.add(fp, 0xffffffffu);
  EXPECT_EQ(cms.estimate(fp), 0xffffffffull);  // clamped, not wrapped
  // Merging two saturated sketches saturates too.
  util::CountMinSketch other(64, 2, 5);
  other.add(fp, 0xffffffffu);
  cms.merge_add(other);
  EXPECT_EQ(cms.estimate(fp), 0xffffffffull);
}

TEST(Sketch, CmsClearRetainsShapeAndZeroes) {
  util::CountMinSketch cms(256, 3, 9);
  cms.add(1, 5);
  cms.clear();
  EXPECT_EQ(cms.added(), 0u);
  EXPECT_EQ(cms.estimate(1), 0u);
  EXPECT_EQ(cms.width(), 256u);
}

TEST(Sketch, CmsWidthRoundsUpToPowerOfTwo) {
  util::CountMinSketch cms(1000, 2, 1);
  EXPECT_EQ(cms.width(), 1024u);
}

TEST(Sketch, CmsCheckpointRoundTripAndShapeRejection) {
  util::CountMinSketch cms(512, 4, 77);
  util::Rng rng(8);
  for (int i = 0; i < 10000; ++i) cms.add(rng.below(2000), 1);

  util::ckpt::Writer w;
  w.begin_section("sketch");
  cms.save_state(w);
  w.end_section();
  const std::vector<std::uint8_t> image = w.finish();

  util::CountMinSketch restored(512, 4, 77);
  util::ckpt::Reader r(image);
  r.enter_section("sketch");
  restored.load_state(r, "sketch");
  r.end_section();
  EXPECT_EQ(cms, restored);

  util::CountMinSketch wrong_shape(1024, 4, 77);
  util::ckpt::Reader r2(image);
  r2.enter_section("sketch");
  EXPECT_THROW(wrong_shape.load_state(r2, "sketch"), util::ckpt::CkptError);
}

// ---------------------------------------------------------------------------
// BloomFilter

class SketchBloom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchBloom, NoFalseNegatives) {
  util::Rng rng(GetParam());
  util::BloomFilter bloom(1 << 16, 4, 21);
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 8000; ++i) {
    inserted.push_back(rng());
    bloom.insert(inserted.back());
  }
  for (const std::uint64_t fp : inserted) {
    ASSERT_TRUE(bloom.maybe_contains(fp)) << "false negative for " << fp;
  }
}

TEST_P(SketchBloom, InsertReportsSeenKeysAsSeen) {
  // insert() returning true means "definitely new": it must never return
  // true for a fingerprint inserted before.
  util::Rng rng(GetParam() + 31);
  util::BloomFilter bloom(1 << 15, 4, 3);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t fp = rng.below(4000) * 0x9e3779b97f4a7c15ULL;
    const bool definitely_new = bloom.insert(fp);
    if (definitely_new) {
      ASSERT_EQ(seen.count(fp), 0u)
          << "bloom declared a seen key definitely new";
    }
    seen.insert(fp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchBloom,
                         ::testing::Values(2ULL, 777ULL));

TEST(Sketch, BloomFalsePositiveRateSane) {
  // n = 8192 keys into m = 2^17 bits with k = 4: theoretical fp rate
  // (1 - e^{-kn/m})^k ~= 0.3%. Allow generous slack; the point is that the
  // filter hashes well, not to certify the constant.
  util::BloomFilter bloom(1 << 17, 4, 12);
  util::Rng rng(55);
  for (int i = 0; i < 8192; ++i) bloom.insert(rng());
  std::uint64_t false_positives = 0;
  const int probes = 100000;
  util::Rng probe_rng(991);  // disjoint stream from the inserted keys
  for (int i = 0; i < probes; ++i) {
    if (bloom.maybe_contains(probe_rng() | 1)) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.02);
}

TEST(Sketch, BloomMergeOrCoversBothStreams) {
  util::BloomFilter a(1 << 12, 3, 6);
  util::BloomFilter b(1 << 12, 3, 6);
  for (std::uint64_t i = 0; i < 100; ++i) a.insert(i * 3);
  for (std::uint64_t i = 0; i < 100; ++i) b.insert(i * 7 + 1);
  a.merge_or(b);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.maybe_contains(i * 3));
    ASSERT_TRUE(a.maybe_contains(i * 7 + 1));
  }
  util::BloomFilter wrong(1 << 13, 3, 6);
  EXPECT_THROW(a.merge_or(wrong), std::logic_error);
}

TEST(Sketch, BloomCheckpointRoundTrip) {
  util::BloomFilter bloom(1 << 12, 4, 44);
  util::Rng rng(13);
  for (int i = 0; i < 500; ++i) bloom.insert(rng());

  util::ckpt::Writer w;
  w.begin_section("bloom");
  bloom.save_state(w);
  w.end_section();
  const std::vector<std::uint8_t> image = w.finish();

  util::BloomFilter restored(1 << 12, 4, 44);
  util::ckpt::Reader r(image);
  r.enter_section("bloom");
  restored.load_state(r, "bloom");
  r.end_section();
  EXPECT_EQ(bloom, restored);

  util::BloomFilter wrong(1 << 12, 3, 44);
  util::ckpt::Reader r2(image);
  r2.enter_section("bloom");
  EXPECT_THROW(wrong.load_state(r2, "bloom"), util::ckpt::CkptError);
}

// ---------------------------------------------------------------------------
// HotnessStore / HotnessSet

core::HotnessConfig sketch_config(std::uint32_t width, std::uint32_t cap) {
  core::HotnessConfig config;
  config.mode = core::HotnessMode::Sketch;
  config.sketch.width = width;
  config.sketch.depth = 4;
  config.sketch.seed = 4242;
  config.sketch.bloom_bits = 1 << 16;
  config.candidates = cap;
  return config;
}

TEST(Sketch, HotnessStoreExactMatchesPlainMap) {
  core::HotnessCounts store;  // default config = exact
  core::PageCountMap reference;
  util::Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    const PageKey key = key_of(rng.below(2000));
    store.add(key);
    reference[key] += 1;
  }
  EXPECT_EQ(store.total(), 30000u);
  EXPECT_EQ(store.tracked(), reference.size());
  EXPECT_EQ(store.exact_counts(), reference);
  core::PageCountMap out;
  EXPECT_EQ(store.end_epoch_into(out), 30000u);
  EXPECT_EQ(out, reference);
  EXPECT_EQ(store.total(), 0u);
  EXPECT_EQ(store.tracked(), 0u);
}

TEST(Sketch, HotnessStoreSketchNeverUndercountsWithinCap) {
  // With the candidate cap above the distinct-key count every key stays a
  // candidate, so the materialized epoch map must cover every key with an
  // estimate >= its true count — and the total must be exact.
  core::HotnessTruth store(sketch_config(4096, 4096));
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  util::Rng rng(23);
  std::uint64_t total = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t page = rng.below(1500);
    store.add(key_of(page));
    reference[page] += 1;
    ++total;
  }
  EXPECT_EQ(store.total(), total);
  core::TruthMap out;
  EXPECT_EQ(store.end_epoch_into(out), total);
  ASSERT_EQ(out.size(), reference.size());
  for (const auto& [page, count] : reference) {
    const auto it = out.find(key_of(page));
    ASSERT_NE(it, out.end());
    ASSERT_GE(it->second, count);
  }
}

TEST(Sketch, HotnessStoreCandidateCapBoundsTrackingAndKeepsHotKeys) {
  const std::uint32_t cap = 1024;
  core::HotnessCounts store(sketch_config(16384, cap));
  core::PageCountMap reference;
  util::Rng rng(77);
  util::ZipfDistribution zipf(20000, 0.99);
  for (int i = 0; i < 200000; ++i) {
    const PageKey key = key_of(zipf(rng));
    store.add(key);
    reference[key] += 1;
    ASSERT_LE(store.tracked(), cap + 1u);  // compaction triggers above cap
  }
  // The exact top-64 must have survived candidate compaction.
  std::vector<std::pair<std::uint32_t, PageKey>> hot;
  for (const auto& [key, count] : reference) hot.emplace_back(count, key);
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return b.second < a.second;
  });
  core::PageCountMap out;
  store.end_epoch_into(out);
  EXPECT_LE(out.size(), cap);
  for (std::size_t i = 0; i < 64 && i < hot.size(); ++i) {
    const auto it = out.find(hot[i].second);
    ASSERT_NE(it, out.end()) << "hot rank " << i << " evicted";
    ASSERT_GE(it->second, hot[i].first);
  }
}

TEST(Sketch, HotnessStoreModeAccessorsThrowAcrossModes) {
  core::HotnessCounts exact_store;
  EXPECT_NO_THROW(static_cast<void>(exact_store.exact_counts()));
  EXPECT_THROW(static_cast<void>(exact_store.sketch()), std::logic_error);

  core::HotnessCounts sketch_store(sketch_config(1024, 256));
  EXPECT_THROW(static_cast<void>(sketch_store.exact_counts()),
               std::logic_error);
  EXPECT_NO_THROW(static_cast<void>(sketch_store.sketch()));
}

TEST(Sketch, HotnessStoreMergeFromIsDeterministic) {
  auto run = [] {
    std::vector<core::HotnessTruth> shards;
    for (int s = 0; s < 4; ++s) {
      shards.emplace_back(sketch_config(2048, 512));
    }
    core::HotnessTruth merged(sketch_config(2048, 512));
    util::Rng rng(3);
    for (int i = 0; i < 60000; ++i) {
      const std::uint64_t page = rng.below(3000);
      shards[page % 4].add(key_of(page));
    }
    for (auto& shard : shards) merged.merge_from(shard);
    core::TruthMap out;
    util::ckpt::Writer w;
    w.begin_section("out");
    merged.save_state(w, "out");
    w.end_section();
    return w.finish();
  };
  EXPECT_EQ(run(), run());
}

TEST(Sketch, HotnessStoreCheckpointRoundTripAndModeMismatch) {
  core::HotnessCounts store(sketch_config(2048, 512));
  util::Rng rng(9);
  for (int i = 0; i < 40000; ++i) store.add(key_of(rng.below(4000)));

  util::ckpt::Writer w;
  w.begin_section("store");
  store.save_state(w, "store");
  w.end_section();
  const std::vector<std::uint8_t> image = w.finish();

  core::HotnessCounts restored(sketch_config(2048, 512));
  util::ckpt::Reader r(image);
  r.enter_section("store");
  restored.load_state(r, "store");
  r.end_section();
  EXPECT_EQ(store, restored);

  core::HotnessCounts exact_store;  // exact mode must reject a sketch image
  util::ckpt::Reader r2(image);
  r2.enter_section("store");
  EXPECT_THROW(exact_store.load_state(r2, "store"), util::ckpt::CkptError);

  core::HotnessCounts wrong_cap(sketch_config(2048, 1024));
  util::ckpt::Reader r3(image);
  r3.enter_section("store");
  EXPECT_THROW(wrong_cap.load_state(r3, "store"), util::ckpt::CkptError);
}

TEST(Sketch, HotnessSetExactAndSketchInsertSemantics) {
  core::HotnessConfig config = sketch_config(1024, 256);
  core::PageHotnessSet sketch_set(config);
  core::PageHotnessSet exact_set;  // default exact
  std::unordered_set<std::uint64_t> reference;
  util::Rng rng(41);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t page = rng.below(5000);
    const bool truly_new = reference.insert(page).second;
    EXPECT_EQ(exact_set.insert(key_of(page)), truly_new);
    const bool sketch_new = sketch_set.insert(key_of(page));
    // Bloom may miss a genuinely new key (false positive), never invent
    // one: "definitely new" implies truly new.
    if (sketch_new) {
      ASSERT_TRUE(truly_new);
    }
    ASSERT_TRUE(sketch_set.maybe_contains(key_of(page)));
  }
  EXPECT_EQ(exact_set.size(), reference.size());
  EXPECT_LE(sketch_set.size(), reference.size());
}

TEST(Sketch, ParseHotnessModeRoundTrip) {
  EXPECT_EQ(core::parse_hotness_mode("exact"), core::HotnessMode::Exact);
  EXPECT_EQ(core::parse_hotness_mode("sketch"), core::HotnessMode::Sketch);
  EXPECT_EQ(core::to_string(core::HotnessMode::Exact), "exact");
  EXPECT_EQ(core::to_string(core::HotnessMode::Sketch), "sketch");
  EXPECT_THROW(static_cast<void>(core::parse_hotness_mode("fuzzy")),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Freq-decay policy under a sketch-mode (bounded) configuration.

TEST(Sketch, FreqDecayPolicyBoundsScoreTableDeterministically) {
  core::HotnessConfig config = sketch_config(2048, 128);
  tiering::FrequencyDecayPolicy bounded(0.5, config);
  tiering::FrequencyDecayPolicy unbounded(0.5);

  util::Rng rng(19);
  util::ZipfDistribution zipf(4000, 0.99);
  tiering::PlacementSet bounded_placement;
  tiering::PlacementSet unbounded_placement;
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Synthetic observed ranking: zipf-hot pages with descending rank.
    core::PageCountMap counts;
    for (int i = 0; i < 20000; ++i) counts[key_of(zipf(rng))] += 1;
    std::vector<core::PageRank> ranking;
    ranking.reserve(counts.size());
    for (const auto& [key, count] : counts) {
      core::PageRank pr;
      pr.key = key;
      pr.rank = count;
      ranking.push_back(pr);
    }
    std::sort(ranking.begin(), ranking.end(), core::RankOrder{});
    tiering::PolicyContext ctx;
    ctx.capacity_frames = 64;
    ctx.observed_ranking = &ranking;
    bounded_placement = bounded.choose(ctx);
    unbounded_placement = unbounded.choose(ctx);
    ASSERT_LE(bounded.tracked(), 128u);
  }
  // The bounded policy must still place the hottest pages: placements of
  // bounded and unbounded runs agree except possibly at the cold margin.
  std::size_t common = 0;
  for (const auto& key : bounded_placement) {
    common += unbounded_placement.count(key);
  }
  EXPECT_GE(common * 10, bounded_placement.size() * 9)
      << "bounded freq-decay diverged from unbounded on the hot set";
}

}  // namespace
}  // namespace tmprof
