#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace tmprof::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2U);
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Percentile, U64Overload) {
  const std::vector<std::uint64_t> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), AssertionError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, 1.5), AssertionError);
}

TEST(Geomean, KnownValues) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  const std::vector<double> ones{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(geomean(ones), 1.0);
}

TEST(Geomean, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), AssertionError);
}

}  // namespace
}  // namespace tmprof::util

#include "util/assert.hpp"
#include "util/time.hpp"

namespace tmprof::util {
namespace {

TEST(SimTime, CycleConversionsRoundTrip) {
  EXPECT_EQ(cycles_to_ns(0), 0U);
  // 3.8 GHz: 3800 cycles ≈ 1000 ns.
  EXPECT_EQ(cycles_to_ns(3800), 1000U);
  EXPECT_EQ(ns_to_cycles(1000), 3800U);
  EXPECT_EQ(kSecond, 1'000'000'000U);
  EXPECT_EQ(kMillisecond, 1'000'000U);
  EXPECT_EQ(kMicrosecond, 1'000U);
}

TEST(Assertions, MacrosThrowWithContext) {
  try {
    TMPROF_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_stats.cpp"), std::string::npos);
  }
  EXPECT_THROW(TMPROF_ASSERT(false), AssertionError);
  EXPECT_THROW(TMPROF_ENSURES(false), AssertionError);
  EXPECT_NO_THROW(TMPROF_ASSERT(true));
}

}  // namespace
}  // namespace tmprof::util
