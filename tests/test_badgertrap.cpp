#include "monitors/badgertrap.hpp"

#include <gtest/gtest.h>

namespace tmprof::monitors {
namespace {

class BadgerTrapTest : public ::testing::Test {
 protected:
  BadgerTrapTest() : tlb_(mem::Tlb::make_default()) {
    pt_.map(0x1000, 5, mem::PageSize::k4K);
    pt_.map(0x2000, 6, mem::PageSize::k4K);
  }

  mem::PageTable pt_;
  mem::Tlb tlb_;
  BadgerTrap trap_;
};

TEST_F(BadgerTrapTest, PoisonSetsReservedBitAndFlushesTlb) {
  // Warm the TLB first.
  auto* pte = pt_.resolve(0x1000).pte;
  tlb_.fill(1, 0x1000, mem::PageSize::k4K, pte, false);
  trap_.poison(1, pt_, tlb_, 0x1000);
  EXPECT_TRUE(pte->poisoned());
  EXPECT_TRUE(trap_.is_poisoned(1, 0x1000));
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, mem::TlbHit::Miss);
}

TEST_F(BadgerTrapTest, WalkFaultsOnPoisonedPage) {
  trap_.poison(1, pt_, tlb_, 0x1000);
  const mem::WalkResult r = mem::PageTableWalker::walk(pt_, 0x1000, false);
  EXPECT_EQ(r.status, mem::WalkResult::Status::Poisoned);
}

TEST_F(BadgerTrapTest, HandleFaultCountsAndInstallsTranslation) {
  trap_.poison(1, pt_, tlb_, 0x1000);
  const util::SimNs latency = trap_.handle_fault(1, pt_, tlb_, 0x1234, false);
  EXPECT_EQ(latency, trap_.handle_fault(1, pt_, tlb_, 0x1234, false));
  EXPECT_EQ(trap_.fault_count(1, 0x1000), 2U);
  EXPECT_EQ(trap_.total_faults(), 2U);
  // Translation installed: the next TLB lookup hits without a walk.
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, mem::TlbHit::L1);
  // PTE stays poisoned (repoison semantics).
  EXPECT_TRUE(pt_.resolve(0x1000).pte->poisoned());
  // A bit set by the handler's re-walk, as the original access would have.
  EXPECT_TRUE(pt_.resolve(0x1000).pte->accessed());
}

TEST_F(BadgerTrapTest, HotPagesPayExtraLatency) {
  BadgerTrapConfig cfg;
  BadgerTrap trap(cfg);
  trap.poison(1, pt_, tlb_, 0x1000, /*hot=*/false);
  trap.poison(1, pt_, tlb_, 0x2000, /*hot=*/true);
  const util::SimNs cold = trap.handle_fault(1, pt_, tlb_, 0x1000, false);
  const util::SimNs hot = trap.handle_fault(1, pt_, tlb_, 0x2000, false);
  EXPECT_EQ(hot - cold, cfg.hot_extra_latency_ns);
  EXPECT_EQ(cold, cfg.handler_cost_ns + cfg.fault_latency_ns);
  EXPECT_EQ(trap.injected_latency_ns(), cold + hot);
}

TEST_F(BadgerTrapTest, UnpoisonRestoresNormalWalks) {
  trap_.poison(1, pt_, tlb_, 0x1000);
  trap_.unpoison(1, pt_, 0x1000);
  EXPECT_FALSE(trap_.is_poisoned(1, 0x1000));
  const mem::WalkResult r = mem::PageTableWalker::walk(pt_, 0x1000, false);
  EXPECT_EQ(r.status, mem::WalkResult::Status::Ok);
  EXPECT_EQ(trap_.poisoned_pages(), 0U);
}

TEST_F(BadgerTrapTest, RefreshReflushesCachedTranslations) {
  trap_.poison(1, pt_, tlb_, 0x1000);
  // Fault handler installs the translation...
  trap_.handle_fault(1, pt_, tlb_, 0x1000, false);
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, mem::TlbHit::L1);
  // ...refresh() re-arms fault delivery.
  std::unordered_map<mem::Pid, mem::PageTable*> tables{{1, &pt_}};
  trap_.refresh(tables, tlb_);
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, mem::TlbHit::Miss);
}

TEST_F(BadgerTrapTest, StoreFaultSetsDirtyViaHandler) {
  trap_.poison(1, pt_, tlb_, 0x1000);
  trap_.handle_fault(1, pt_, tlb_, 0x1000, /*is_store=*/true);
  EXPECT_TRUE(pt_.resolve(0x1000).pte->dirty());
}

}  // namespace
}  // namespace tmprof::monitors
