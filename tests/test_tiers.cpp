#include "mem/tiers.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::mem {
namespace {

PhysMemory make_two_tier(std::uint64_t t1_frames = 1024,
                         std::uint64_t t2_frames = 4096) {
  return PhysMemory({TierSpec{"fast", t1_frames, 80, 80},
                     TierSpec{"slow", t2_frames, 300, 600}});
}

TEST(PhysMemory, TierBoundaries) {
  PhysMemory pm = make_two_tier(1024, 4096);
  EXPECT_EQ(pm.total_frames(), 5120U);
  EXPECT_EQ(pm.tier_of(0), 0);
  EXPECT_EQ(pm.tier_of(1023), 0);
  EXPECT_EQ(pm.tier_of(1024), 1);
  EXPECT_EQ(pm.tier_of(5119), 1);
}

TEST(PhysMemory, Alloc4kFillsPreferredTierFirst) {
  PhysMemory pm = make_two_tier(4, 4);
  for (int i = 0; i < 4; ++i) {
    const auto pfn = pm.alloc(0, 1, 0x1000 * i, PageSize::k4K);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(pm.tier_of(*pfn), 0);
  }
  // Tier 1 full: falls back to tier 2.
  const auto spill = pm.alloc(0, 1, 0x9000, PageSize::k4K);
  ASSERT_TRUE(spill.has_value());
  EXPECT_EQ(pm.tier_of(*spill), 1);
}

TEST(PhysMemory, AllocExactDoesNotFallBack) {
  PhysMemory pm = make_two_tier(1, 4);
  ASSERT_TRUE(pm.alloc_exact(0, 1, 0x0, PageSize::k4K).has_value());
  EXPECT_FALSE(pm.alloc_exact(0, 1, 0x1000, PageSize::k4K).has_value());
}

TEST(PhysMemory, HugeAllocIsAlignedAndSpans512) {
  PhysMemory pm = make_two_tier(2048, 2048);
  const auto head = pm.alloc(0, 7, 0x200000, PageSize::k2M);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(*head % kPagesPerHuge, 0U);
  for (std::uint64_t i = 0; i < kPagesPerHuge; ++i) {
    const FrameInfo& f = pm.frame(*head + i);
    EXPECT_TRUE(f.allocated);
    EXPECT_EQ(f.pid, 7U);
    EXPECT_EQ(f.head, i == 0);
    EXPECT_EQ(f.size, PageSize::k2M);
  }
  EXPECT_EQ(pm.used_frames(0), kPagesPerHuge);
}

TEST(PhysMemory, FreeRecyclesFrames) {
  PhysMemory pm = make_two_tier(4, 4);
  const auto a = pm.alloc(0, 1, 0x0, PageSize::k4K);
  pm.free(*a);
  EXPECT_EQ(pm.used_frames(0), 0U);
  const auto b = pm.alloc(0, 1, 0x1000, PageSize::k4K);
  EXPECT_EQ(*a, *b);  // recycled
}

TEST(PhysMemory, FreeHugeRecycles) {
  PhysMemory pm = make_two_tier(1024, 1024);
  const auto a = pm.alloc(0, 1, 0x0, PageSize::k2M);
  ASSERT_TRUE(a);
  pm.free(*a);
  EXPECT_EQ(pm.used_frames(0), 0U);
  const auto b = pm.alloc(0, 1, 0x200000, PageSize::k2M);
  EXPECT_EQ(*a, *b);
}

TEST(PhysMemory, MixedSizesShareATier) {
  PhysMemory pm = make_two_tier(1024, 1024);
  // One huge page (512 frames from the top) + 4K pages from the bottom.
  const auto huge = pm.alloc(0, 1, 0x200000, PageSize::k2M);
  ASSERT_TRUE(huge);
  std::uint64_t small_count = 0;
  while (pm.alloc_exact(0, 1, small_count * kPageSize, PageSize::k4K)) {
    ++small_count;
  }
  EXPECT_EQ(small_count, 1024 - kPagesPerHuge);
  EXPECT_EQ(pm.free_frames(0), 0U);
}

TEST(PhysMemory, ExhaustionReturnsNullopt) {
  PhysMemory pm = make_two_tier(2, 2);
  EXPECT_TRUE(pm.alloc(0, 1, 0x0, PageSize::k4K));
  EXPECT_TRUE(pm.alloc(0, 1, 0x1000, PageSize::k4K));
  EXPECT_TRUE(pm.alloc(0, 1, 0x2000, PageSize::k4K));
  EXPECT_TRUE(pm.alloc(0, 1, 0x3000, PageSize::k4K));
  EXPECT_FALSE(pm.alloc(0, 1, 0x4000, PageSize::k4K));
}

TEST(PhysMemory, HugeAllocFailsInTinyTier) {
  PhysMemory pm = make_two_tier(100, 2048);
  // Tier 0 has fewer than 512 frames worth of space for a huge page.
  EXPECT_FALSE(pm.alloc_exact(0, 1, 0x0, PageSize::k2M).has_value());
  EXPECT_TRUE(pm.alloc_exact(1, 1, 0x0, PageSize::k2M).has_value());
}

TEST(PhysMemory, FrameOwnershipLookup) {
  PhysMemory pm = make_two_tier();
  const auto pfn = pm.alloc(0, 42, 0xabc000, PageSize::k4K);
  const FrameInfo& info = pm.frame(*pfn);
  EXPECT_EQ(info.pid, 42U);
  EXPECT_EQ(info.page_va, 0xabc000U);
  EXPECT_TRUE(info.head);
}

TEST(PhysMemory, DoubleFreeRejected) {
  PhysMemory pm = make_two_tier();
  const auto pfn = pm.alloc(0, 1, 0x0, PageSize::k4K);
  pm.free(*pfn);
  EXPECT_THROW(pm.free(*pfn), util::AssertionError);
}

}  // namespace
}  // namespace tmprof::mem
