#include "monitors/abit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mem/ptw.hpp"

namespace tmprof::monitors {
namespace {

TEST(Abit, ScanFindsAccessedPagesAndClearsBits) {
  mem::PageTable pt;
  pt.map(0x1000, 1, mem::PageSize::k4K);
  pt.map(0x2000, 2, mem::PageSize::k4K);
  pt.map(0x3000, 3, mem::PageSize::k4K);
  // Touch two of the three pages through the hardware walker.
  mem::PageTableWalker::walk(pt, 0x1000, false);
  mem::PageTableWalker::walk(pt, 0x3000, false);

  AbitScanner scanner{AbitConfig{}};
  std::vector<mem::VirtAddr> seen;
  const AbitScanResult r = scanner.scan(
      1, pt, [&](const AbitSample& s) { seen.push_back(s.page_va); });
  EXPECT_EQ(r.ptes_visited, 3U);
  EXPECT_EQ(r.pages_accessed, 2U);
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], 0x1000U);
  EXPECT_EQ(seen[1], 0x3000U);
  // Bits were cleared: a second scan sees nothing.
  const AbitScanResult r2 = scanner.scan(1, pt, nullptr);
  EXPECT_EQ(r2.pages_accessed, 0U);
}

TEST(Abit, SamplesCarryPfnAndSize) {
  mem::PageTable pt;
  pt.map(mem::kHugePageSize, 1024, mem::PageSize::k2M);
  mem::PageTableWalker::walk(pt, mem::kHugePageSize + 555, false);
  AbitScanner scanner{AbitConfig{}};
  AbitSample got;
  scanner.scan(1, pt, [&](const AbitSample& s) { got = s; });
  EXPECT_EQ(got.pfn, 1024U);
  EXPECT_EQ(got.size, mem::PageSize::k2M);
  EXPECT_EQ(got.page_va, mem::kHugePageSize);
}

TEST(Abit, NoShootdownByDefault) {
  mem::PageTable pt;
  pt.map(0x1000, 1, mem::PageSize::k4K);
  mem::PageTableWalker::walk(pt, 0x1000, false);
  AbitScanner scanner{AbitConfig{}};
  std::uint64_t shootdowns = 0;
  scanner.set_shootdown([&](mem::Pid, mem::VirtAddr, mem::PageSize) {
    ++shootdowns;
    return std::uint64_t{5};
  });
  const AbitScanResult r = scanner.scan(1, pt, nullptr);
  EXPECT_EQ(shootdowns, 0U);
  EXPECT_EQ(r.shootdowns, 0U);
}

TEST(Abit, OptionalShootdownPerClearedPte) {
  mem::PageTable pt;
  pt.map(0x1000, 1, mem::PageSize::k4K);
  pt.map(0x2000, 2, mem::PageSize::k4K);
  mem::PageTableWalker::walk(pt, 0x1000, false);
  mem::PageTableWalker::walk(pt, 0x2000, false);
  AbitConfig cfg;
  cfg.shootdown_on_clear = true;
  AbitScanner scanner(cfg);
  std::uint64_t calls = 0;
  scanner.set_shootdown([&](mem::Pid pid, mem::VirtAddr, mem::PageSize) {
    EXPECT_EQ(pid, 9U);
    ++calls;
    return std::uint64_t{5};
  });
  const AbitScanResult r = scanner.scan(9, pt, nullptr);
  EXPECT_EQ(calls, 2U);
  EXPECT_EQ(r.shootdowns, 10U);  // 2 pages x 5 IPIs
  EXPECT_GT(r.cost_ns, 2 * cfg.cost_per_pte_ns);
}

TEST(Abit, CostScalesWithPtesVisited) {
  mem::PageTable pt;
  for (std::uint64_t i = 0; i < 100; ++i) {
    pt.map(i * mem::kPageSize, i + 1, mem::PageSize::k4K);
  }
  AbitConfig cfg;
  AbitScanner scanner(cfg);
  const AbitScanResult r = scanner.scan(1, pt, nullptr);
  EXPECT_EQ(r.ptes_visited, 100U);
  EXPECT_EQ(r.cost_ns, 100 * cfg.cost_per_pte_ns);
  EXPECT_EQ(scanner.overhead_ns(), r.cost_ns);
  EXPECT_EQ(scanner.total_ptes_visited(), 100U);
}

TEST(Abit, DirtyBitUntouchedByScan) {
  mem::PageTable pt;
  pt.map(0x1000, 1, mem::PageSize::k4K);
  mem::PageTableWalker::walk(pt, 0x1000, true);
  AbitScanner scanner{AbitConfig{}};
  scanner.scan(1, pt, nullptr);
  EXPECT_TRUE(pt.resolve(0x1000).pte->dirty());
  EXPECT_FALSE(pt.resolve(0x1000).pte->accessed());
}

}  // namespace
}  // namespace tmprof::monitors
