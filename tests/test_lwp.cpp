#include "monitors/lwp.hpp"

#include <gtest/gtest.h>

namespace tmprof::monitors {
namespace {

MemOpEvent make_op(mem::Pid pid, mem::VirtAddr vaddr) {
  MemOpEvent ev;
  ev.pid = pid;
  ev.vaddr = vaddr;
  ev.paddr = vaddr;
  ev.source = mem::DataSource::MemTier1;
  return ev;
}

TEST(Lwp, OnlyEnabledProcessesAreRecorded) {
  LwpConfig cfg;
  cfg.sample_period = 4;
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  for (int i = 0; i < 1000; ++i) {
    lwp.on_mem_op(make_op(1, 0x1000));
    lwp.on_mem_op(make_op(2, 0x2000));  // not enabled
  }
  lwp.drain_all();
  EXPECT_GT(lwp.records_taken(), 0U);
  // Roughly 1000/4 records, all from pid 1.
  EXPECT_NEAR(static_cast<double>(lwp.records_taken()), 250.0, 100.0);
}

TEST(Lwp, RecordsLandInPerProcessRings) {
  LwpConfig cfg;
  cfg.sample_period = 2;
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  lwp.enable_process(2);
  std::uint64_t pid1 = 0, pid2 = 0;
  lwp.set_drain([&](mem::Pid pid, std::span<const TraceSample> samples) {
    for (const TraceSample& s : samples) {
      EXPECT_EQ(s.pid, pid);
      (pid == 1 ? pid1 : pid2) += 1;
    }
  });
  for (int i = 0; i < 400; ++i) {
    lwp.on_mem_op(make_op(1, 0x1000));
    lwp.on_mem_op(make_op(2, 0x2000));
  }
  lwp.drain_all();
  EXPECT_GT(pid1, 0U);
  EXPECT_GT(pid2, 0U);
}

TEST(Lwp, ThresholdSignalsBeforeRingFull) {
  LwpConfig cfg;
  cfg.sample_period = 1;
  cfg.ring_capacity = 100;
  cfg.interrupt_fill_fraction = 0.5;
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  std::size_t largest_batch = 0;
  lwp.set_drain([&](mem::Pid, std::span<const TraceSample> samples) {
    largest_batch = std::max(largest_batch, samples.size());
  });
  for (int i = 0; i < 500; ++i) lwp.on_mem_op(make_op(1, 0x1000));
  EXPECT_GT(lwp.signals(), 0U);
  EXPECT_EQ(largest_batch, 50U);  // drained exactly at the threshold
  EXPECT_EQ(lwp.records_dropped(), 0U);
}

TEST(Lwp, FullRingDropsRecords) {
  LwpConfig cfg;
  cfg.sample_period = 1;
  cfg.ring_capacity = 16;
  cfg.interrupt_fill_fraction = 1.0;  // never signals early
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  lwp.set_drain(nullptr);
  // No drain installed: after 16 records the ring is full...
  for (int i = 0; i < 100; ++i) lwp.on_mem_op(make_op(1, 0x1000));
  // ...but at threshold 1.0 the signal fires exactly at capacity and the
  // internal drain empties the ring even without a callback.
  EXPECT_EQ(lwp.records_dropped(), 0U);
  EXPECT_GT(lwp.signals(), 0U);
}

TEST(Lwp, DisableStopsCollection) {
  LwpConfig cfg;
  cfg.sample_period = 1;
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  lwp.on_mem_op(make_op(1, 0x1000));
  const std::uint64_t taken = lwp.records_taken();
  lwp.disable_process(1);
  EXPECT_FALSE(lwp.enabled(1));
  lwp.on_mem_op(make_op(1, 0x1000));
  EXPECT_EQ(lwp.records_taken(), taken);
}

TEST(Lwp, OverheadScalesWithDrains) {
  LwpConfig cfg;
  cfg.sample_period = 1;
  cfg.ring_capacity = 8;
  cfg.interrupt_fill_fraction = 0.5;
  LwpMonitor lwp(cfg);
  lwp.enable_process(1);
  for (int i = 0; i < 64; ++i) lwp.on_mem_op(make_op(1, 0x1000));
  const util::SimNs expected = lwp.signals() * cfg.cost_per_signal_ns +
                               lwp.records_taken() *
                                   cfg.cost_per_drained_record_ns;
  EXPECT_EQ(lwp.overhead_ns(), expected);
}

}  // namespace
}  // namespace tmprof::monitors
