/// Streaming sample-transport tests (docs/STREAMING.md): StreamRanker's
/// incremental top-K against a brute-force reference, seal decay,
/// checkpoint round-trips and geometry rejection, end-to-end bitwise
/// equivalence of streaming vs. barrier mode, thread-count invariance
/// ({1,8} threads, with and without fault injection), kill/resume
/// consistency through the "stream" checkpoint section, and conditional
/// telemetry registration. Suite names carry the `Stream` prefix so the CI
/// fault matrix and the TSan preset pick them up.

#include "core/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "tiering/runner.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"
#include "workloads/registry.hpp"

namespace tmprof {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// StreamRanker unit tests.

core::PageKey page(std::uint32_t pid, std::uint64_t va) {
  core::PageKey key;
  key.pid = static_cast<mem::Pid>(pid);
  key.page_va = va << 12;
  return key;
}

/// Brute-force RankOrder top-K of a reference heat map: heat descending,
/// ties by ascending key — what the incremental heap must match exactly.
std::vector<core::PageRank> reference_topk(
    const std::map<core::PageKey, std::uint64_t>& heat, std::uint32_t k) {
  std::vector<core::PageRank> out;
  out.reserve(heat.size());
  for (const auto& [key, h] : heat) {
    core::PageRank r;
    r.key = key;
    r.rank = h;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const core::PageRank& a, const core::PageRank& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.key < b.key;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

void expect_same_ranking(const std::vector<core::PageRank>& got,
                         const std::vector<core::PageRank>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << label << " index " << i;
    EXPECT_EQ(got[i].rank, want[i].rank) << label << " index " << i;
  }
}

TEST(StreamRanker, MatchesBruteForceReferenceAfterEveryAdd) {
  // Random weighted adds over a small page population; because heat only
  // grows between seals, the heap must be the *exact* RankOrder top-K of
  // the map after every single add — not just at the seal.
  core::StreamRanker ranker(8, 1);
  std::map<core::PageKey, std::uint64_t> reference;
  std::uint64_t x = 0x5eed5eed5eedULL;
  const auto next = [&x] {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 16;
  };
  std::vector<core::PageRank> got;
  for (int i = 0; i < 4000; ++i) {
    const core::PageKey key =
        page(1000 + static_cast<std::uint32_t>(next() % 3), next() % 48);
    const std::uint64_t weight = 1 + next() % 7;
    ranker.add(key, weight);
    reference[key] += weight;
    if (i % 97 == 0) {
      ranker.ranking_into(got);
      expect_same_ranking(got, reference_topk(reference, 8),
                          "add " + std::to_string(i));
    }
  }
  ranker.ranking_into(got);
  expect_same_ranking(got, reference_topk(reference, 8), "final");
  EXPECT_EQ(ranker.tracked(), reference.size());
  for (const auto& [key, h] : reference) EXPECT_EQ(ranker.heat_of(key), h);
}

TEST(StreamRanker, TopKIsAddOrderInvariant) {
  // Same multiset of (key, weight) folds in two different orders: counts
  // commute, so the advisory ranking must agree record-for-record.
  std::vector<std::pair<core::PageKey, std::uint64_t>> adds;
  for (std::uint64_t i = 0; i < 200; ++i) {
    adds.emplace_back(page(1000 + static_cast<std::uint32_t>(i % 2), i % 31),
                      1 + (i * 7) % 5);
  }
  core::StreamRanker forward(6, 1), backward(6, 1);
  for (const auto& [key, w] : adds) forward.add(key, w);
  for (auto it = adds.rbegin(); it != adds.rend(); ++it) {
    backward.add(it->first, it->second);
  }
  std::vector<core::PageRank> a, b;
  forward.ranking_into(a);
  backward.ranking_into(b);
  expect_same_ranking(a, b, "forward vs backward");
}

TEST(StreamRanker, TiesBreakByAscendingKey) {
  core::StreamRanker ranker(3, 1);
  // Four pages, all at heat 5: only the three lowest keys may survive.
  for (std::uint64_t va : {9U, 3U, 7U, 5U}) ranker.add(page(1000, va), 5);
  std::vector<core::PageRank> got;
  ranker.ranking_into(got);
  ASSERT_EQ(got.size(), 3U);
  EXPECT_EQ(got[0].key, page(1000, 3));
  EXPECT_EQ(got[1].key, page(1000, 5));
  EXPECT_EQ(got[2].key, page(1000, 7));
}

TEST(StreamRanker, EvictedPageCanReenterTheHeap) {
  core::StreamRanker ranker(2, 1);
  ranker.add(page(1000, 1), 10);
  ranker.add(page(1000, 2), 20);
  ranker.add(page(1000, 3), 30);  // evicts page 1 from the heap
  std::vector<core::PageRank> got;
  ranker.ranking_into(got);
  ASSERT_EQ(got.size(), 2U);
  EXPECT_EQ(got[0].key, page(1000, 3));
  EXPECT_EQ(got[1].key, page(1000, 2));
  // Its heat keeps accumulating off-heap; pushing past the current root
  // must bring it back (the evict-then-reenter path through the position
  // sentinel).
  ranker.add(page(1000, 1), 15);  // heat 25 > root heat 20
  ranker.ranking_into(got);
  ASSERT_EQ(got.size(), 2U);
  EXPECT_EQ(got[0].key, page(1000, 3));
  EXPECT_EQ(got[1].key, page(1000, 1));
  EXPECT_EQ(got[1].rank, 25U);
}

TEST(StreamRanker, SealDecaysHeatAndDropsCooledPages) {
  core::StreamRanker ranker(8, 1);  // halve at each seal
  ranker.add(page(1000, 1), 4);
  ranker.add(page(1000, 2), 1);  // 1 >> ... decays to zero below
  ranker.seal();
  EXPECT_EQ(ranker.heat_of(page(1000, 1)), 2U);
  EXPECT_EQ(ranker.heat_of(page(1000, 2)), 0U);
  EXPECT_EQ(ranker.tracked(), 1U);
  std::vector<core::PageRank> got;
  ranker.ranking_into(got);
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0].key, page(1000, 1));
  EXPECT_EQ(got[0].rank, 2U);
  ranker.seal();  // 2 -> 1
  ranker.seal();  // 1 -> 0: everything cooled away
  EXPECT_EQ(ranker.tracked(), 0U);
  ranker.ranking_into(got);
  EXPECT_TRUE(got.empty());
}

TEST(StreamRanker, DecayShift64KeepsPerEpochTopKOnly) {
  core::StreamRanker ranker(8, 64);
  ranker.add(page(1000, 1), 1000);
  ranker.seal();  // shift >= 64 clears all history
  EXPECT_EQ(ranker.tracked(), 0U);
  ranker.add(page(1000, 2), 1);
  std::vector<core::PageRank> got;
  ranker.ranking_into(got);
  ASSERT_EQ(got.size(), 1U);  // last epoch's giant is gone
  EXPECT_EQ(got[0].key, page(1000, 2));
}

TEST(StreamRanker, CheckpointRoundTripsExactly) {
  core::StreamRanker ranker(4, 2);
  std::uint64_t x = 0xc0ffee;
  const auto next = [&x] {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 16;
  };
  for (int i = 0; i < 500; ++i) ranker.add(page(1000, next() % 64), 1);
  ranker.seal();  // decayed state is what checkpoints
  for (int i = 0; i < 100; ++i) ranker.add(page(1001, next() % 16), 3);

  util::ckpt::Writer w;
  w.begin_section("s");
  ranker.save_state(w);
  w.end_section();
  util::ckpt::Reader r(w.finish());
  r.enter_section("s");
  core::StreamRanker restored(4, 2);
  restored.load_state(r);
  r.end_section();

  EXPECT_EQ(restored.tracked(), ranker.tracked());
  std::vector<core::PageRank> a, b;
  ranker.ranking_into(a);
  restored.ranking_into(b);
  expect_same_ranking(b, a, "restored");
  // The restored ranker keeps ranking incrementally, exactly in step.
  ranker.add(page(1000, 5), 9);
  restored.add(page(1000, 5), 9);
  ranker.ranking_into(a);
  restored.ranking_into(b);
  expect_same_ranking(b, a, "restored+add");
}

TEST(StreamRanker, CheckpointGeometryMismatchThrows) {
  core::StreamRanker ranker(4, 2);
  ranker.add(page(1000, 1), 1);
  util::ckpt::Writer w;
  w.begin_section("s");
  ranker.save_state(w);
  w.end_section();
  const auto image = w.finish();
  {
    util::ckpt::Reader r(image);
    r.enter_section("s");
    core::StreamRanker wrong_k(8, 2);
    EXPECT_THROW(wrong_k.load_state(r), util::ckpt::CkptError);
  }
  {
    util::ckpt::Reader r(image);
    r.enter_section("s");
    core::StreamRanker wrong_decay(4, 3);
    EXPECT_THROW(wrong_decay.load_state(r), util::ckpt::CkptError);
  }
}

// ---------------------------------------------------------------------------
// StreamTransport lane plumbing.

TEST(StreamTransport, LaneLayoutAndDropAccounting) {
  core::StreamConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 4;
  core::StreamTransport transport(cfg, 3);
  EXPECT_EQ(transport.lanes(), 5U);  // 3 trace + A-bit + DevMon
  EXPECT_EQ(transport.trace_lanes(), 3U);
  EXPECT_EQ(transport.abit_lane(), 3U);
  EXPECT_EQ(transport.dev_lane(), 4U);
  monitors::StreamRecord rec{};
  for (int i = 0; i < 6; ++i) (void)transport.ring(0).try_push(rec);
  for (int i = 0; i < 5; ++i) (void)transport.ring(4).try_push(rec);
  EXPECT_EQ(transport.drops_total(), 3U);  // 2 on lane 0 + 1 on lane 4
  EXPECT_EQ(transport.high_water(), 4U);
  transport.set_carried_drops(10);  // checkpoint-restored base is additive
  EXPECT_EQ(transport.drops_total(), 13U);
  transport.reset_high_water();
  EXPECT_EQ(transport.high_water(), 0U);
  EXPECT_EQ(transport.drops_total(), 13U);  // drops stay cumulative
}

// ---------------------------------------------------------------------------
// End-to-end: streaming vs. barrier, thread-count invariance, resume.

sim::SimConfig stream_config() {
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

tiering::RunnerOptions stream_options(const std::string& policy,
                                      std::uint32_t n_threads,
                                      bool streaming) {
  tiering::RunnerOptions opt;
  opt.policy = policy;
  opt.n_epochs = 3;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  opt.n_threads = n_threads;
  opt.daemon.driver.stream.enabled = streaming;
  // Tiny rings force the overflow-spill path; spilled records must be
  // folded identically to ring-delivered ones, so results cannot change.
  opt.daemon.driver.stream.ring_capacity = 64;
  return opt;
}

void expect_identical(const tiering::RunnerResult& a,
                      const tiering::RunnerResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns) << label;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.tier1_hitrate),
            std::bit_cast<std::uint64_t>(b.tier1_hitrate))
      << label << " hitrate " << a.tier1_hitrate << " vs " << b.tier1_hitrate;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.protection_faults, b.protection_faults) << label;
  EXPECT_EQ(a.profiling_overhead_ns, b.profiling_overhead_ns) << label;
  EXPECT_EQ(a.moves.promoted, b.moves.promoted) << label;
  EXPECT_EQ(a.moves.demoted, b.moves.demoted) << label;
  EXPECT_EQ(a.degrade.trace_dropped, b.degrade.trace_dropped) << label;
}

TEST(StreamDeterminism, StreamingMatchesBarrierModeBitwise) {
  // The sealed observation maps are a pure function of the simulation, so
  // flipping the transport must not change a single bit of the result.
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const sim::SimConfig cfg = stream_config();
  for (const char* policy : {"history", "freq-decay", "oracle"}) {
    const tiering::RunnerResult barrier = tiering::EndToEndRunner::run(
        spec, cfg, stream_options(policy, 1, false));
    const tiering::RunnerResult streamed = tiering::EndToEndRunner::run(
        spec, cfg, stream_options(policy, 1, true));
    expect_identical(streamed, barrier, std::string(policy) + " [stream]");
  }
}

TEST(StreamDeterminism, ThreadCountInvariant) {
  // {1, 8} threads: with 8 workers the pump really runs concurrently with
  // shard execution (mid-epoch consumption order varies wildly), yet every
  // output bit must match the inline run.
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const sim::SimConfig cfg = stream_config();
  const tiering::RunnerResult t1 =
      tiering::EndToEndRunner::run(spec, cfg, stream_options("history", 1, true));
  const tiering::RunnerResult t2 =
      tiering::EndToEndRunner::run(spec, cfg, stream_options("history", 2, true));
  const tiering::RunnerResult t8 =
      tiering::EndToEndRunner::run(spec, cfg, stream_options("history", 8, true));
  expect_identical(t1, t2, "streaming [1 vs 2 threads]");
  expect_identical(t1, t8, "streaming [1 vs 8 threads]");
}

TEST(StreamDeterminism, FaultInjectionStaysThreadCountInvariant) {
  // Streaming fault keys are (epoch, lane, seq) — independent of when the
  // pump consumed the record — so the injected drop set, and therefore the
  // whole run, is invariant to consumer scheduling.
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const sim::SimConfig cfg = stream_config();
  tiering::RunnerOptions t1 = stream_options("history", 1, true);
  t1.fault.rate = 0.01;
  t1.fault.seed = 0xf00d;
  tiering::RunnerOptions t8 = t1;
  t8.n_threads = 8;
  const tiering::RunnerResult r1 = tiering::EndToEndRunner::run(spec, cfg, t1);
  const tiering::RunnerResult r8 = tiering::EndToEndRunner::run(spec, cfg, t8);
  expect_identical(r1, r8, "streaming+faults [1 vs 8 threads]");
}

TEST(StreamDeterminism, RequiresShardedEngineAndExactHotness) {
  const auto spec = workloads::find_spec("gups", 0.05);
  // Serial engine (n_threads = 0) has no per-core lanes to stream from.
  EXPECT_THROW(tiering::EndToEndRunner::run(spec, stream_config(),
                                            stream_options("history", 0, true)),
               util::AssertionError);
  // Conservative-update sketches are add-order sensitive; the pump's
  // scheduling-dependent interleaving would break bitwise invariance.
  tiering::RunnerOptions sketch = stream_options("history", 1, true);
  sketch.daemon.driver.hotness.mode = core::HotnessMode::Sketch;
  EXPECT_THROW(tiering::EndToEndRunner::run(spec, stream_config(), sketch),
               util::AssertionError);
}

TEST(StreamResume, KillResumeIsBitwiseConsistent) {
  // Ring + ranker state rides in the "stream" checkpoint section: a run
  // killed after epoch 3 and resumed must finish bitwise identical to the
  // uninterrupted streaming run.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = stream_config();
  tiering::RunnerOptions base = stream_options("history", 1, true);
  base.n_epochs = 5;
  const tiering::RunnerResult reference =
      tiering::EndToEndRunner::run(spec, cfg, base);

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-stream-resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  tiering::RunnerOptions ck = base;
  ck.checkpoint.every = 1;
  ck.checkpoint.dir = dir.string();
  ck.checkpoint.keep_last = 16;
  (void)tiering::EndToEndRunner::run(spec, cfg, ck);

  tiering::RunnerOptions resume = base;
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 3);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  const tiering::RunnerResult resumed =
      tiering::EndToEndRunner::run(spec, cfg, resume);
  expect_identical(resumed, reference, "stream resume");
}

TEST(StreamResume, PresenceMismatchFallsBackToColdStart) {
  // A checkpoint written without streaming cannot silently resume into a
  // streaming run: the "stream" section rejects, and the cold start must
  // still produce the bitwise-correct streaming result.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = stream_config();
  const tiering::RunnerResult reference = tiering::EndToEndRunner::run(
      spec, cfg, stream_options("history", 1, true));

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-stream-mis";
  fs::remove_all(dir);
  fs::create_directories(dir);
  tiering::RunnerOptions off = stream_options("history", 1, false);
  off.checkpoint.every = 1;
  off.checkpoint.dir = dir.string();
  off.checkpoint.keep_last = 16;
  (void)tiering::EndToEndRunner::run(spec, cfg, off);

  tiering::RunnerOptions resume = stream_options("history", 1, true);
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  const tiering::RunnerResult resumed =
      tiering::EndToEndRunner::run(spec, cfg, resume);
  expect_identical(resumed, reference, "presence mismatch cold start");
}

// ---------------------------------------------------------------------------
// Telemetry registration gate.

std::string prometheus_of(const telemetry::Telemetry& t) {
  std::ostringstream os;
  t.write_prometheus(os);
  return os.str();
}

TEST(StreamTelemetry, MetricsRegisterOnlyWhenStreaming) {
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = stream_config();

  telemetry::Telemetry off{telemetry::TelemetryConfig{}};
  tiering::RunnerOptions off_opt = stream_options("history", 1, false);
  off_opt.telemetry = &off;
  (void)tiering::EndToEndRunner::run(spec, cfg, off_opt);
  // Off-mode exports carry no trace of the streaming subsystem: the cells
  // are never resolved, so the byte stream matches the pre-streaming one.
  EXPECT_EQ(prometheus_of(off).find("stream_"), std::string::npos);

  telemetry::Telemetry on{telemetry::TelemetryConfig{}};
  tiering::RunnerOptions on_opt = stream_options("history", 1, true);
  on_opt.telemetry = &on;
  (void)tiering::EndToEndRunner::run(spec, cfg, on_opt);
  EXPECT_GT(on.metrics().counter_value("stream_records_total"), 0U);
  EXPECT_NE(prometheus_of(on).find("stream_ring_depth"), std::string::npos);
  EXPECT_NE(prometheus_of(on).find("stream_ring_drops_total"),
            std::string::npos);
  EXPECT_NE(prometheus_of(on).find("stream_seal_ns"), std::string::npos);
}

TEST(StreamTelemetry, RecordCountIsThreadCountInvariant) {
  // Ring depth and drop tallies are scheduling-dependent by design, but the
  // number of records *consumed* equals the number produced — a pure
  // function of the simulation, identical at every thread count.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = stream_config();
  telemetry::Telemetry t1{telemetry::TelemetryConfig{}};
  telemetry::Telemetry t8{telemetry::TelemetryConfig{}};
  tiering::RunnerOptions o1 = stream_options("history", 1, true);
  o1.telemetry = &t1;
  tiering::RunnerOptions o8 = stream_options("history", 8, true);
  o8.telemetry = &t8;
  (void)tiering::EndToEndRunner::run(spec, cfg, o1);
  (void)tiering::EndToEndRunner::run(spec, cfg, o8);
  const std::uint64_t n1 = t1.metrics().counter_value("stream_records_total");
  EXPECT_GT(n1, 0U);
  EXPECT_EQ(n1, t8.metrics().counter_value("stream_records_total"));
}

}  // namespace
}  // namespace tmprof
