#include "tiering/policies.hpp"

#include <gtest/gtest.h>

namespace tmprof::tiering {
namespace {

PageKey key(std::uint64_t n) { return PageKey{1, n * mem::kPageSize}; }

struct Fixture {
  PlacementSet current;
  std::vector<core::PageRank> ranking;
  core::TruthMap truth;
  std::vector<PageKey> first_touch;
  PageSizeMap sizes;

  PolicyContext ctx(std::uint64_t capacity) {
    PolicyContext c;
    c.capacity_frames = capacity;
    c.current = &current;
    c.observed_ranking = &ranking;
    c.next_truth = &truth;
    c.first_touch_order = &first_touch;
    c.page_sizes = &sizes;
    return c;
  }

  void add_rank(std::uint64_t n, std::uint64_t rank) {
    core::PageRank pr;
    pr.key = key(n);
    pr.rank = rank;
    ranking.push_back(pr);
    sizes[key(n)] = mem::PageSize::k4K;
  }
};

TEST(FirstTouch, AdmitsInOrderUntilFull) {
  Fixture f;
  for (std::uint64_t i = 0; i < 5; ++i) {
    f.first_touch.push_back(key(i));
    f.sizes[key(i)] = mem::PageSize::k4K;
  }
  FirstTouchPolicy policy;
  const PlacementSet p = policy.choose(f.ctx(3));
  EXPECT_EQ(p.size(), 3U);
  EXPECT_TRUE(p.count(key(0)));
  EXPECT_TRUE(p.count(key(1)));
  EXPECT_TRUE(p.count(key(2)));
}

TEST(FirstTouch, NeverEvicts) {
  Fixture f;
  f.first_touch = {key(0), key(1)};
  f.sizes[key(0)] = f.sizes[key(1)] = mem::PageSize::k4K;
  FirstTouchPolicy policy;
  PlacementSet p = policy.choose(f.ctx(2));
  EXPECT_EQ(p.size(), 2U);
  // Later, hotter pages appear — first-touch ignores them.
  f.first_touch.push_back(key(9));
  f.sizes[key(9)] = mem::PageSize::k4K;
  p = policy.choose(f.ctx(2));
  EXPECT_EQ(p.size(), 2U);
  EXPECT_FALSE(p.count(key(9)));
}

TEST(History, TakesHottestObservedPages) {
  Fixture f;
  f.add_rank(1, 100);
  f.add_rank(2, 50);
  f.add_rank(3, 10);
  HistoryPolicy policy;
  const PlacementSet p = policy.choose(f.ctx(2));
  EXPECT_EQ(p.size(), 2U);
  EXPECT_TRUE(p.count(key(1)));
  EXPECT_TRUE(p.count(key(2)));
  EXPECT_FALSE(p.count(key(3)));
}

TEST(History, EmptyRankingKeepsCurrentPlacement) {
  Fixture f;
  f.current.insert(key(7));
  HistoryPolicy policy;
  const PlacementSet p = policy.choose(f.ctx(4));
  EXPECT_EQ(p.size(), 1U);
  EXPECT_TRUE(p.count(key(7)));
}

TEST(Oracle, UsesNextEpochTruth) {
  Fixture f;
  f.truth[key(1)] = 5;
  f.truth[key(2)] = 500;
  f.truth[key(3)] = 50;
  for (std::uint64_t i = 1; i <= 3; ++i) f.sizes[key(i)] = mem::PageSize::k4K;
  OraclePolicy policy;
  const PlacementSet p = policy.choose(f.ctx(2));
  EXPECT_TRUE(p.count(key(2)));
  EXPECT_TRUE(p.count(key(3)));
  EXPECT_FALSE(p.count(key(1)));
}

TEST(Policies, HugePagesConsumeMoreCapacity) {
  Fixture f;
  f.add_rank(1, 100);
  f.sizes[key(1)] = mem::PageSize::k2M;  // 512 frames
  f.add_rank(2, 90);
  f.add_rank(3, 80);
  HistoryPolicy policy;
  // Capacity 513: the huge page plus exactly one 4K page fit.
  const PlacementSet p = policy.choose(f.ctx(513));
  EXPECT_EQ(p.size(), 2U);
  EXPECT_TRUE(p.count(key(1)));
  EXPECT_TRUE(p.count(key(2)));
}

TEST(Policies, HugePageSkippedWhenItDoesNotFit) {
  Fixture f;
  f.add_rank(1, 100);
  f.sizes[key(1)] = mem::PageSize::k2M;
  f.add_rank(2, 90);
  HistoryPolicy policy;
  const PlacementSet p = policy.choose(f.ctx(10));
  EXPECT_FALSE(p.count(key(1)));  // 512 frames don't fit in 10
  EXPECT_TRUE(p.count(key(2)));
}

TEST(FrequencyDecay, SmoothsAcrossEpochs) {
  Fixture f;
  f.add_rank(1, 100);
  FrequencyDecayPolicy policy(0.5);
  PlacementSet p = policy.choose(f.ctx(1));
  EXPECT_TRUE(p.count(key(1)));
  // Next epoch page 1 vanishes from the ranking but retains decayed score;
  // a slightly-hot newcomer must beat 100*0.5 to displace it.
  Fixture f2;
  f2.add_rank(2, 10);
  p = policy.choose(f2.ctx(1));
  EXPECT_TRUE(p.count(key(1)));
  EXPECT_FALSE(p.count(key(2)));
  // A genuinely hotter newcomer wins.
  Fixture f3;
  f3.add_rank(3, 1000);
  p = policy.choose(f3.ctx(1));
  EXPECT_TRUE(p.count(key(3)));
}

TEST(Factory, MakesAllPolicies) {
  EXPECT_EQ(make_policy("first-touch")->name(), "first-touch");
  EXPECT_EQ(make_policy("history")->name(), "history");
  EXPECT_EQ(make_policy("oracle")->name(), "oracle");
  EXPECT_EQ(make_policy("freq-decay")->name(), "freq-decay");
  EXPECT_THROW(make_policy("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace tmprof::tiering

namespace tmprof::tiering {
namespace {

PageKey dkey(std::uint64_t n) { return PageKey{1, n * mem::kHugePageSize}; }

TEST(HistoryDensity, PrefersHotSmallPagesOverLukewarmHugePages) {
  // A huge page with aggregate rank 600 (~1.2/frame) vs 4K pages with
  // rank 50 each: density ordering must pick the small pages.
  std::vector<core::PageRank> ranking;
  core::PageRank huge;
  huge.key = dkey(1);
  huge.rank = 600;
  ranking.push_back(huge);
  PageSizeMap sizes;
  sizes[huge.key] = mem::PageSize::k2M;
  for (std::uint64_t i = 0; i < 4; ++i) {
    core::PageRank small;
    small.key = PageKey{2, i * mem::kPageSize};
    small.rank = 50;
    ranking.push_back(small);
    sizes[small.key] = mem::PageSize::k4K;
  }
  PlacementSet current;
  PolicyContext ctx;
  ctx.capacity_frames = 4;  // room for the 4 small pages OR none of huge
  ctx.current = &current;
  ctx.observed_ranking = &ranking;
  ctx.page_sizes = &sizes;

  HistoryPolicy raw(false);
  const PlacementSet raw_choice = raw.choose(ctx);
  EXPECT_TRUE(raw_choice.count(huge.key) == 0)  // can't fit 512 frames
      << "huge page shouldn't fit at all";
  HistoryPolicy density(true);
  const PlacementSet density_choice = density.choose(ctx);
  EXPECT_EQ(density_choice.size(), 4U);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(density_choice.count(PageKey{2, i * mem::kPageSize}));
  }
}

TEST(HistoryDensity, HugePageWinsWhenActuallyDense) {
  // Huge page with rank 51200 (100/frame) vs small pages at 50: the huge
  // page deserves the capacity when it fits.
  std::vector<core::PageRank> ranking;
  core::PageRank huge;
  huge.key = dkey(1);
  huge.rank = 51200;
  ranking.push_back(huge);
  core::PageRank small;
  small.key = PageKey{2, 0};
  small.rank = 50;
  ranking.push_back(small);
  PageSizeMap sizes;
  sizes[huge.key] = mem::PageSize::k2M;
  sizes[small.key] = mem::PageSize::k4K;
  PlacementSet current;
  PolicyContext ctx;
  ctx.capacity_frames = mem::kPagesPerHuge;
  ctx.current = &current;
  ctx.observed_ranking = &ranking;
  ctx.page_sizes = &sizes;
  HistoryPolicy density(true);
  const PlacementSet chosen = density.choose(ctx);
  EXPECT_TRUE(chosen.count(huge.key));
}

TEST(HistoryDensity, FactoryName) {
  EXPECT_EQ(make_policy("history-density")->name(), "history-density");
}

}  // namespace
}  // namespace tmprof::tiering
