#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::util {
namespace {

TEST(Histogram, BucketsValues) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(15);
  h.add(15);
  h.add(99);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 2U);
  EXPECT_EQ(h.count(9), 1U);
  EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(10, 20, 2);
  h.add(5);
  h.add(25);
  h.add(15);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0, 10, 2);
  h.add(1, 7);
  EXPECT_EQ(h.count(0), 7U);
}

TEST(Histogram, BucketLoEdges) {
  Histogram h(100, 200, 10);
  EXPECT_EQ(h.bucket_lo(0), 100U);
  EXPECT_EQ(h.bucket_lo(5), 150U);
}

TEST(Heatmap, AccumulatesCells) {
  Heatmap hm(100, 10, 1000, 10);
  hm.add(5, 50);
  hm.add(5, 50);
  hm.add(95, 950);
  EXPECT_EQ(hm.at(0, 0), 2U);
  EXPECT_EQ(hm.at(9, 9), 1U);
  EXPECT_EQ(hm.total(), 3U);
  EXPECT_EQ(hm.max_cell(), 2U);
}

TEST(Heatmap, ClipsOutOfRangeWithoutCounting) {
  Heatmap hm(10, 2, 10, 2);
  hm.add(10, 0);
  hm.add(0, 10);
  EXPECT_EQ(hm.total(), 0U);
}

TEST(Heatmap, AsciiRenderHasOneRowPerAddrBin) {
  Heatmap hm(10, 4, 10, 3);
  hm.add(0, 0);
  const std::string art = hm.render_ascii();
  int newlines = 0;
  for (char c : art) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 3);
  // Low address renders on the bottom row.
  EXPECT_NE(art.rfind('\n', art.size() - 2), std::string::npos);
  EXPECT_NE(art[art.size() - 1 - 4], ' ');
}

TEST(Heatmap, CsvListsNonZeroCells) {
  Heatmap hm(10, 2, 10, 2);
  hm.add(1, 1);
  hm.add(9, 9, 3);
  std::ostringstream os;
  hm.write_csv(os);
  EXPECT_EQ(os.str(), "time_bin,addr_bin,count\n0,0,1\n1,1,3\n");
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(10, 10, 4), AssertionError);
  EXPECT_THROW(Histogram(0, 10, 0), AssertionError);
  EXPECT_THROW(Heatmap(0, 1, 1, 1), AssertionError);
}

// ---------------------------------------------------------------------------
// Quantile edges under the telemetry shard-merge protocol
// (src/telemetry/metrics.hpp): merged-from-empty shards, single-bucket
// grids and out-of-range mass must all stay NaN-free and thread-count
// invariant.

TEST(Histogram, QuantileOfEmptyIsLoNeverNan) {
  const Histogram h(100, 200, 10);
  for (const double q : {0.0, 0.5, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_FALSE(std::isnan(v)) << q;
    EXPECT_EQ(v, 100.0) << q;
  }
}

TEST(Histogram, QuantileClampsAndCoversEdges) {
  Histogram h(0, 100, 10);
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));  // q clamps to [0, 1]
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  // Interpolation keeps quantiles strictly inside [lo, hi]: the extreme
  // ranks land mid-observation, never outside the recorded range.
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.0), 1.0);
  EXPECT_GE(h.quantile(1.0), 99.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 40.0);
  EXPECT_LE(median, 60.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));  // monotone in q
}

TEST(Histogram, QuantilePutsOutOfRangeMassAtTheEdges) {
  Histogram h(10, 20, 2);
  h.add(0, 10);    // underflow mass sits at lo
  h.add(100, 10);  // overflow mass sits at hi
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(1.0), 20.0);
  EXPECT_FALSE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, SingleBucketQuantilesInterpolateInRange) {
  Histogram h(0, 8, 1);
  h.add(3);
  h.add(5);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_FALSE(std::isnan(v)) << q;
    EXPECT_GE(v, 0.0) << q;
    EXPECT_LE(v, 8.0) << q;
  }
}

TEST(Histogram, MergeRequiresSameShape) {
  Histogram a(0, 100, 10);
  Histogram b(0, 100, 5);
  EXPECT_FALSE(a.same_shape(b));
  EXPECT_THROW(a.merge(b), AssertionError);
  const Histogram c(0, 100, 10);
  EXPECT_TRUE(a.same_shape(c));
}

TEST(Histogram, MergeFromEmptyShardsIsIdentityAndNanFree) {
  Histogram global(0, 64, 8);
  global.add(7, 3);
  const std::uint64_t before = global.total();
  Histogram empty(0, 64, 8);
  global.merge(empty);  // empty shard at the barrier: a no-op
  EXPECT_EQ(global.total(), before);
  EXPECT_FALSE(std::isnan(global.quantile(0.5)));
  // Merging *into* an empty global adopts the shard's distribution.
  Histogram fresh(0, 64, 8);
  fresh.merge(global);
  EXPECT_EQ(fresh.total(), before);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fresh.quantile(0.5)),
            std::bit_cast<std::uint64_t>(global.quantile(0.5)));
}

TEST(Histogram, ShardMergeQuantilesAreThreadCountInvariant) {
  // The same 4-shard partition of adds, merged after running on worker
  // pools of 1, 2 and 8 threads, must produce bitwise-identical quantiles
  // — the telemetry engine's epoch-barrier contract.
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kAddsPerShard = 1000;
  std::vector<double> quantiles;  // q in {0.5, 0.9, 0.99} per pool size
  for (const std::uint32_t n_threads : {1U, 2U, 8U}) {
    std::vector<Histogram> shards(kShards, Histogram(0, 4096, 64));
    ThreadPool pool(n_threads);
    pool.parallel_for(kShards, [&shards](std::size_t s) {
      for (std::uint64_t i = 0; i < kAddsPerShard; ++i) {
        // Deterministic per-shard stream, independent of who runs it.
        shards[s].add((s * 2654435761ULL + i * 40503ULL) % 5000);
      }
    });
    Histogram global(0, 4096, 64);
    for (Histogram& shard : shards) {  // ascending shard order, as the
      global.merge(shard);             // registry's merge_shards() does
      shard.reset();
      EXPECT_EQ(shard.total(), 0U);
    }
    EXPECT_EQ(global.total(), kShards * kAddsPerShard);
    for (const double q : {0.5, 0.9, 0.99}) {
      const double v = global.quantile(q);
      EXPECT_FALSE(std::isnan(v));
      quantiles.push_back(v);
    }
  }
  ASSERT_EQ(quantiles.size(), 9U);
  for (std::size_t i = 3; i < quantiles.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(quantiles[i]),
              std::bit_cast<std::uint64_t>(quantiles[i % 3]))
        << "pool size run " << i / 3 << ", q index " << i % 3;
  }
}

}  // namespace
}  // namespace tmprof::util
