#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace tmprof::util {
namespace {

TEST(Histogram, BucketsValues) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(15);
  h.add(15);
  h.add(99);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 2U);
  EXPECT_EQ(h.count(9), 1U);
  EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(10, 20, 2);
  h.add(5);
  h.add(25);
  h.add(15);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0, 10, 2);
  h.add(1, 7);
  EXPECT_EQ(h.count(0), 7U);
}

TEST(Histogram, BucketLoEdges) {
  Histogram h(100, 200, 10);
  EXPECT_EQ(h.bucket_lo(0), 100U);
  EXPECT_EQ(h.bucket_lo(5), 150U);
}

TEST(Heatmap, AccumulatesCells) {
  Heatmap hm(100, 10, 1000, 10);
  hm.add(5, 50);
  hm.add(5, 50);
  hm.add(95, 950);
  EXPECT_EQ(hm.at(0, 0), 2U);
  EXPECT_EQ(hm.at(9, 9), 1U);
  EXPECT_EQ(hm.total(), 3U);
  EXPECT_EQ(hm.max_cell(), 2U);
}

TEST(Heatmap, ClipsOutOfRangeWithoutCounting) {
  Heatmap hm(10, 2, 10, 2);
  hm.add(10, 0);
  hm.add(0, 10);
  EXPECT_EQ(hm.total(), 0U);
}

TEST(Heatmap, AsciiRenderHasOneRowPerAddrBin) {
  Heatmap hm(10, 4, 10, 3);
  hm.add(0, 0);
  const std::string art = hm.render_ascii();
  int newlines = 0;
  for (char c : art) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 3);
  // Low address renders on the bottom row.
  EXPECT_NE(art.rfind('\n', art.size() - 2), std::string::npos);
  EXPECT_NE(art[art.size() - 1 - 4], ' ');
}

TEST(Heatmap, CsvListsNonZeroCells) {
  Heatmap hm(10, 2, 10, 2);
  hm.add(1, 1);
  hm.add(9, 9, 3);
  std::ostringstream os;
  hm.write_csv(os);
  EXPECT_EQ(os.str(), "time_bin,addr_bin,count\n0,0,1\n1,1,3\n");
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(10, 10, 4), AssertionError);
  EXPECT_THROW(Histogram(0, 10, 0), AssertionError);
  EXPECT_THROW(Heatmap(0, 1, 1, 1), AssertionError);
}

}  // namespace
}  // namespace tmprof::util
