/// Zero-allocation invariant for the epoch hot path.
///
/// This file replaces the global allocation functions with counting
/// wrappers, so it lives in its own test binary (tmprof_alloc_tests):
/// linking it into tmprof_tests would shadow sanitizer new/delete
/// interceptors for every other test.
///
/// The invariant under test: after warmup (capacity growth) the
/// collector + ranking epoch loop performs ZERO heap allocations — the
/// flat maps retain their slot arrays across clear(), the swap-and-clear
/// protocol recycles buffers, and build_ranking_into reuses its scratch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/ranking.hpp"
#include "monitors/event.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tmprof {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 8192;
  cfg.tier2_frames = 8192;
  return cfg;
}

monitors::MemOpEvent event_for(std::uint64_t page) {
  monitors::MemOpEvent ev;
  ev.pid = 1;
  ev.vaddr = page * mem::kPageSize + (page % 64) * 8;
  ev.source = mem::DataSource::MemTier1;  // counts toward truth
  return ev;
}

/// Run the counted section with no gtest machinery inside it.
template <typename Fn>
std::uint64_t allocations_in(Fn&& fn) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(AllocHotpath, FlatMapClearRefillAllocatesNothing) {
  core::PageCountMap map;
  constexpr std::uint64_t kPages = 4096;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    map[core::PageKey{1, p * mem::kPageSize}] += 1;  // warmup growth
  }
  const std::uint64_t allocs = allocations_in([&map] {
    for (int epoch = 0; epoch < 5; ++epoch) {
      map.clear();
      for (std::uint64_t p = 0; p < kPages; ++p) {
        map[core::PageKey{1, p * mem::kPageSize}] += 1;
      }
    }
  });
  EXPECT_EQ(allocs, 0U);
}

TEST(AllocHotpath, CollectorSteadyStateAllocatesNothing) {
  sim::System system(small_config());
  tiering::TruthCollector collector(system);
  core::TruthMap truth;
  std::vector<core::PageKey> new_pages;
  constexpr std::uint64_t kPages = 2048;

  auto run_epoch = [&] {
    for (std::uint64_t p = 0; p < kPages; ++p) {
      collector.on_mem_op(event_for(p));
      collector.on_mem_op(event_for(p));  // repeat hits exercise increments
    }
    collector.end_epoch(truth, new_pages);
  };

  for (int i = 0; i < 3; ++i) run_epoch();  // warmup: grow all buffers

  const std::uint64_t allocs = allocations_in([&] {
    for (int i = 0; i < 5; ++i) run_epoch();
  });
  EXPECT_EQ(allocs, 0U);
  EXPECT_EQ(truth.size(), kPages);  // the loop really did the work
}

TEST(AllocHotpath, RankingBuildSteadyStateAllocatesNothing) {
  core::EpochObservation obs;
  core::RankingScratch scratch;
  std::vector<core::PageRank> ranking;
  constexpr std::uint64_t kPages = 2048;

  auto fill_obs = [&obs] {
    obs.clear();
    for (std::uint64_t p = 0; p < kPages; ++p) {
      const core::PageKey key{1, p * mem::kPageSize};
      obs.abit[key] += 1;
      if (p % 2 == 0) obs.trace[key] += static_cast<std::uint32_t>(p % 7);
      if (p % 8 == 0) obs.writes[key] += 1;
    }
  };

  // Warmup grows the observation maps, the merge scratch and the output.
  for (int i = 0; i < 2; ++i) {
    fill_obs();
    core::build_ranking_into(obs, core::FusionMode::Sum, 1.0, scratch, ranking);
  }

  const std::uint64_t allocs = allocations_in([&] {
    for (int i = 0; i < 5; ++i) {
      fill_obs();
      core::build_ranking_into(obs, core::FusionMode::Sum, 1.0, scratch,
                               ranking);
      core::build_ranking_topk_into(obs, core::FusionMode::Sum, 1.0, 64,
                                    scratch, ranking);
    }
  });
  EXPECT_EQ(allocs, 0U);
  EXPECT_EQ(ranking.size(), 64U);
}

TEST(AllocHotpath, ObservationSwapClearRecyclesCapacity) {
  // The driver's end_epoch_into protocol: out.swap(current); current.clear().
  core::EpochObservation current;
  core::EpochObservation closed;
  constexpr std::uint64_t kPages = 1024;

  auto one_epoch = [&] {
    for (std::uint64_t p = 0; p < kPages; ++p) {
      current.abit[core::PageKey{1, p * mem::kPageSize}] += 1;
      current.trace[core::PageKey{1, p * mem::kPageSize}] += 1;
    }
    closed.swap(current);
    current.clear();
  };

  for (int i = 0; i < 3; ++i) one_epoch();  // warmup: both buffers sized

  const std::uint64_t allocs = allocations_in([&] {
    for (int i = 0; i < 6; ++i) one_epoch();
  });
  EXPECT_EQ(allocs, 0U);
  EXPECT_EQ(closed.abit.size(), kPages);
}

}  // namespace
}  // namespace tmprof
