#include "mem/ptw.hpp"

#include <gtest/gtest.h>

namespace tmprof::mem {
namespace {

TEST(Ptw, NotPresentFault) {
  PageTable pt;
  const WalkResult r = PageTableWalker::walk(pt, 0x1000, false);
  EXPECT_EQ(r.status, WalkResult::Status::NotPresent);
  EXPECT_EQ(r.levels, 4U);
}

TEST(Ptw, SuccessfulWalkSetsAccessed) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  EXPECT_FALSE(pt.resolve(0x1000).pte->accessed());
  const WalkResult r = PageTableWalker::walk(pt, 0x1234, false);
  EXPECT_EQ(r.status, WalkResult::Status::Ok);
  EXPECT_TRUE(r.set_accessed);
  EXPECT_FALSE(r.set_dirty);
  EXPECT_EQ(r.pfn, 5U);
  EXPECT_EQ(r.page_va, 0x1000U);
  EXPECT_TRUE(pt.resolve(0x1000).pte->accessed());
}

TEST(Ptw, SecondWalkDoesNotReSetAccessed) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  PageTableWalker::walk(pt, 0x1000, false);
  const WalkResult r = PageTableWalker::walk(pt, 0x1000, false);
  EXPECT_FALSE(r.set_accessed);  // A already 1: no 0->1 transition
}

TEST(Ptw, StoreSetsDirty) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  const WalkResult r = PageTableWalker::walk(pt, 0x1000, true);
  EXPECT_TRUE(r.set_dirty);
  EXPECT_TRUE(pt.resolve(0x1000).pte->dirty());
  const WalkResult r2 = PageTableWalker::walk(pt, 0x1000, true);
  EXPECT_FALSE(r2.set_dirty);
}

TEST(Ptw, LoadNeverSetsDirty) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  PageTableWalker::walk(pt, 0x1000, false);
  EXPECT_FALSE(pt.resolve(0x1000).pte->dirty());
}

TEST(Ptw, HugeWalkIsThreeLevels) {
  PageTable pt;
  pt.map(kHugePageSize, 512, PageSize::k2M);
  const WalkResult r = PageTableWalker::walk(pt, kHugePageSize + 123, false);
  EXPECT_EQ(r.status, WalkResult::Status::Ok);
  EXPECT_EQ(r.levels, 3U);
  EXPECT_EQ(r.size, PageSize::k2M);
}

TEST(Ptw, PoisonedFaultsBeforeTouchingBits) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  pt.resolve(0x1000).pte->set_poisoned(true);
  const WalkResult r = PageTableWalker::walk(pt, 0x1000, true);
  EXPECT_EQ(r.status, WalkResult::Status::Poisoned);
  EXPECT_FALSE(pt.resolve(0x1000).pte->accessed());
  EXPECT_FALSE(pt.resolve(0x1000).pte->dirty());
}

TEST(Ptw, PoisonIgnoredOnHandlerRewalk) {
  PageTable pt;
  pt.map(0x1000, 5, PageSize::k4K);
  pt.resolve(0x1000).pte->set_poisoned(true);
  const WalkResult r =
      PageTableWalker::walk(pt, 0x1000, true, /*honor_poison=*/false);
  EXPECT_EQ(r.status, WalkResult::Status::Ok);
  EXPECT_TRUE(r.set_accessed);
  EXPECT_TRUE(r.set_dirty);
  EXPECT_TRUE(pt.resolve(0x1000).pte->poisoned());  // poison preserved
}

}  // namespace
}  // namespace tmprof::mem
