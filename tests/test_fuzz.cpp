/// Randomized property tests: the substrates are checked against simple
/// reference models over thousands of random operations. These are the
/// tests most likely to catch structural bugs (aliasing, eviction, frame
/// accounting) that example-based tests miss.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/hotness.hpp"
#include "core/ranking.hpp"
#include "mem/cache.hpp"
#include "mem/page_table.hpp"
#include "mem/tiers.hpp"
#include "pmu/events.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace tmprof {
namespace {

/// PageTable vs a std::map reference across random map/unmap/resolve.
class PageTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableFuzz, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  mem::PageTable table;
  // Reference: base VA -> (pfn, size).
  std::map<mem::VirtAddr, std::pair<mem::Pfn, mem::PageSize>> reference;
  const std::uint64_t kSpan4k = 1 << 14;   // candidate 4K page indices
  const std::uint64_t kSpan2m = 1 << 5;    // candidate 2M page indices

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t action = rng.below(10);
    if (action < 4) {
      // Map a random 4K page if free (and not covered by a huge page).
      const mem::VirtAddr va = rng.below(kSpan4k) * mem::kPageSize;
      const mem::VirtAddr huge_base = mem::page_base(va, mem::PageSize::k2M);
      const bool covered =
          reference.count(va) ||
          (reference.count(huge_base) &&
           reference[huge_base].second == mem::PageSize::k2M);
      if (!covered) {
        const mem::Pfn pfn = rng.below(1 << 20);
        table.map(va, pfn, mem::PageSize::k4K);
        reference[va] = {pfn, mem::PageSize::k4K};
      }
    } else if (action < 6) {
      // Map a random 2M page if its whole range is free.
      const mem::VirtAddr va = rng.below(kSpan2m) * mem::kHugePageSize;
      bool covered = false;
      for (const auto& [base, entry] : reference) {
        const std::uint64_t bytes = mem::page_bytes(entry.second);
        if (base < va + mem::kHugePageSize && va < base + bytes) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        const mem::Pfn pfn = rng.below(1 << 20) & ~(mem::kPagesPerHuge - 1);
        table.map(va, pfn, mem::PageSize::k2M);
        reference[va] = {pfn, mem::PageSize::k2M};
      }
    } else if (action < 8 && !reference.empty()) {
      // Unmap a random existing mapping.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.below(reference.size())));
      table.unmap(it->first);
      reference.erase(it);
    } else {
      // Resolve a random address and compare against the reference.
      const mem::VirtAddr va =
          rng.below(kSpan4k * mem::kPageSize + (1ULL << 20));
      const mem::PteRef ref = table.resolve(va);
      const mem::VirtAddr base4k = mem::page_base(va, mem::PageSize::k4K);
      const mem::VirtAddr base2m = mem::page_base(va, mem::PageSize::k2M);
      if (reference.count(base4k) &&
          reference[base4k].second == mem::PageSize::k4K) {
        ASSERT_TRUE(ref);
        ASSERT_EQ(ref.pte->pfn(), reference[base4k].first);
        ASSERT_EQ(ref.size, mem::PageSize::k4K);
      } else if (reference.count(base2m) &&
                 reference[base2m].second == mem::PageSize::k2M) {
        ASSERT_TRUE(ref);
        ASSERT_EQ(ref.pte->pfn(), reference[base2m].first);
        ASSERT_EQ(ref.size, mem::PageSize::k2M);
      } else {
        ASSERT_FALSE(ref);
      }
    }
  }

  // Final sweep: walk() must enumerate exactly the reference mappings.
  std::map<mem::VirtAddr, std::pair<mem::Pfn, mem::PageSize>> walked;
  table.walk([&](mem::VirtAddr va, mem::PageSize size, mem::Pte& pte) {
    walked[va] = {pte.pfn(), size};
  });
  ASSERT_EQ(walked, reference);
  std::uint64_t expect_4k = 0, expect_2m = 0;
  for (const auto& [va, entry] : reference) {
    (entry.second == mem::PageSize::k4K ? expect_4k : expect_2m) += 1;
  }
  EXPECT_EQ(table.mapped_4k(), expect_4k);
  EXPECT_EQ(table.mapped_2m(), expect_2m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz,
                         ::testing::Values(1ULL, 77ULL, 20260707ULL));

/// PhysMemory vs reference invariants across random alloc/free.
class PhysMemoryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhysMemoryFuzz, NoOverlapAndExactAccounting) {
  util::Rng rng(GetParam());
  mem::PhysMemory pm({mem::TierSpec{"fast", 3000, 80, 80},
                      mem::TierSpec{"slow", 5000, 300, 600}});
  struct Alloc {
    mem::Pfn head;
    mem::PageSize size;
  };
  std::vector<Alloc> live;
  std::unordered_set<mem::Pfn> owned_frames;
  std::uint64_t used[2] = {0, 0};

  for (int step = 0; step < 6000; ++step) {
    if (rng.chance(0.6)) {
      const bool huge = rng.chance(0.15);
      const auto size = huge ? mem::PageSize::k2M : mem::PageSize::k4K;
      const auto tier = static_cast<mem::TierId>(rng.below(2));
      const auto head = pm.alloc_exact(tier, 1, 0x1000, size);
      if (head) {
        const std::uint64_t span = mem::pages_in(size);
        if (huge) ASSERT_EQ(*head % mem::kPagesPerHuge, 0U);
        for (std::uint64_t i = 0; i < span; ++i) {
          // No frame may ever be handed out twice.
          ASSERT_TRUE(owned_frames.insert(*head + i).second);
          ASSERT_EQ(pm.tier_of(*head + i), tier);
        }
        used[tier] += span;
        live.push_back({*head, size});
      }
    } else if (!live.empty()) {
      const std::size_t idx = rng.below(live.size());
      const Alloc alloc = live[idx];
      live[idx] = live.back();
      live.pop_back();
      const auto tier = pm.tier_of(alloc.head);
      pm.free(alloc.head);
      const std::uint64_t span = mem::pages_in(alloc.size);
      for (std::uint64_t i = 0; i < span; ++i) {
        owned_frames.erase(alloc.head + i);
      }
      used[tier] -= span;
    }
    if (step % 512 == 0) {
      ASSERT_EQ(pm.used_frames(0), used[0]);
      ASSERT_EQ(pm.used_frames(1), used[1]);
    }
  }
  EXPECT_EQ(pm.used_frames(0) + pm.used_frames(1), owned_frames.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysMemoryFuzz,
                         ::testing::Values(3ULL, 1234ULL));

/// CacheLevel vs an exact LRU reference model.
TEST(CacheFuzz, MatchesExactLruModel) {
  util::Rng rng(99);
  mem::CacheLevel cache(64 * 16, 4);  // 4 sets x 4 ways
  // Reference: per set, list of lines in LRU order (front = LRU).
  std::array<std::vector<std::uint64_t>, 4> sets;
  auto set_of = [](std::uint64_t line) { return line & 3; };

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t line = rng.below(64);
    const mem::PhysAddr paddr = line * mem::kLineSize;
    auto& set = sets[set_of(line)];
    const auto it = std::find(set.begin(), set.end(), line);
    if (rng.chance(0.5)) {
      // access(): hit iff resident; moves to MRU position.
      const bool hit = cache.access(paddr, false);
      ASSERT_EQ(hit, it != set.end()) << "line " << line;
      if (it != set.end()) {
        set.erase(it);
        set.push_back(line);
      }
    } else {
      cache.fill(paddr);
      if (it == set.end()) {
        if (set.size() == 4) set.erase(set.begin());  // evict LRU
        set.push_back(line);
      }
      // fill() of a resident line does not touch LRU order (returns early).
    }
  }
  // Every reference-resident line must be contained, and none beyond.
  std::uint64_t resident = 0;
  for (const auto& set : sets) resident += set.size();
  std::uint64_t contained = 0;
  for (std::uint64_t line = 0; line < 64; ++line) {
    if (cache.contains(line * mem::kLineSize)) ++contained;
  }
  EXPECT_EQ(contained, resident);
}

/// Exact and sketch HotnessStores driven by one random op stream (adds of
/// skewed keys, epoch closes, shard-merge interleavings), cross-checked
/// against a std::unordered_map reference: the exact store must match the
/// reference perfectly, the sketch store must never undercount any key the
/// reference holds, and both must report the same exact running total.
class SketchStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchStoreFuzz, ExactAndSketchAgreeWithReferenceModel) {
  util::Rng rng(GetParam());
  core::HotnessConfig sketch_cfg;
  sketch_cfg.mode = core::HotnessMode::Sketch;
  sketch_cfg.sketch.width = 1 << 12;
  sketch_cfg.sketch.depth = 4;
  // Cap above the key-space size: no eviction, so coverage is total and
  // the no-undercount check can demand presence, not just magnitude.
  sketch_cfg.candidates = 1 << 12;

  core::HotnessCounts exact_store;
  core::HotnessCounts sketch_store(sketch_cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  std::uint64_t reference_total = 0;
  auto key_of = [](std::uint64_t page) {
    return core::PageKey{static_cast<mem::Pid>(1 + page % 3),
                         page * mem::kPageSize};
  };

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t action = rng.below(100);
    if (action < 96) {
      const std::uint64_t page = rng.below(2048);
      const auto n = static_cast<std::uint32_t>(1 + rng.below(4));
      exact_store.add(key_of(page), n);
      sketch_store.add(key_of(page), n);
      reference[page] += n;
      reference_total += n;
    } else if (action < 98) {
      // Shard-merge interleaving: accumulate a burst in a fresh shard of
      // each mode, then fold it in mid-stream.
      core::HotnessCounts exact_shard;
      core::HotnessCounts sketch_shard(sketch_cfg);
      const std::uint64_t burst = rng.below(200);
      for (std::uint64_t i = 0; i < burst; ++i) {
        const std::uint64_t page = rng.below(2048);
        exact_shard.add(key_of(page));
        sketch_shard.add(key_of(page));
        reference[page] += 1;
        reference_total += 1;
      }
      exact_store.merge_from(exact_shard);
      sketch_store.merge_from(sketch_shard);
      ASSERT_EQ(exact_shard.total(), 0U);
      ASSERT_EQ(sketch_shard.total(), 0U);
    } else {
      // Epoch close: totals exact in both modes, per-key exact == ref and
      // sketch >= ref.
      ASSERT_EQ(exact_store.total(), reference_total);
      ASSERT_EQ(sketch_store.total(), reference_total);
      core::PageCountMap exact_out;
      core::PageCountMap sketch_out;
      ASSERT_EQ(exact_store.end_epoch_into(exact_out), reference_total);
      ASSERT_EQ(sketch_store.end_epoch_into(sketch_out), reference_total);
      ASSERT_EQ(exact_out.size(), reference.size());
      for (const auto& [page, count] : reference) {
        const auto exact_it = exact_out.find(key_of(page));
        ASSERT_NE(exact_it, exact_out.end());
        ASSERT_EQ(exact_it->second, count);
        const auto sketch_it = sketch_out.find(key_of(page));
        ASSERT_NE(sketch_it, sketch_out.end());
        ASSERT_GE(sketch_it->second, count);
      }
      reference.clear();
      reference_total = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchStoreFuzz,
                         ::testing::Values(11ULL, 4096ULL, 20260807ULL));

/// Exact and Bloom-backed HotnessSets driven by one random insert stream,
/// cross-checked against std::unordered_set: the exact set matches the
/// reference, and the Bloom set's "definitely new" verdicts imply truly
/// new while membership queries never miss a seen key.
class SketchSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchSetFuzz, MembershipConsistentWithReferenceModel) {
  util::Rng rng(GetParam());
  core::HotnessConfig sketch_cfg;
  sketch_cfg.mode = core::HotnessMode::Sketch;
  sketch_cfg.sketch.bloom_bits = 1 << 16;

  core::PageHotnessSet exact_set;
  core::PageHotnessSet sketch_set(sketch_cfg);
  std::unordered_set<std::uint64_t> reference;
  auto key_of = [](std::uint64_t page) {
    return core::PageKey{static_cast<mem::Pid>(1 + page % 5),
                         page * mem::kPageSize};
  };

  for (int step = 0; step < 40000; ++step) {
    const std::uint64_t page = rng.below(4000);
    if (rng.chance(0.7)) {
      const bool truly_new = reference.insert(page).second;
      ASSERT_EQ(exact_set.insert(key_of(page)), truly_new);
      const bool bloom_new = sketch_set.insert(key_of(page));
      if (bloom_new) {
        ASSERT_TRUE(truly_new);
      }
    } else {
      const bool present = reference.count(page) != 0;
      ASSERT_EQ(exact_set.maybe_contains(key_of(page)), present);
      // Bloom has no false negatives: a seen key always reads as seen.
      if (present) {
        ASSERT_TRUE(sketch_set.maybe_contains(key_of(page)));
      }
    }
  }
  ASSERT_EQ(exact_set.size(), reference.size());
  ASSERT_LE(sketch_set.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchSetFuzz,
                         ::testing::Values(21ULL, 555ULL));

/// Whole-system determinism: identical configs and seeds give bit-equal
/// simulations (the property the Oracle pre-pass relies on).
TEST(SystemFuzz, FullSystemDeterminism) {
  auto run = [] {
    sim::SimConfig cfg;
    cfg.cores = 3;
    cfg.llc_bytes = 1 << 19;
    cfg.tier1_frames = 1 << 12;
    cfg.tier2_frames = 1 << 15;
    cfg.instruction_fetch = true;
    sim::System sys(cfg);
    const auto spec = workloads::find_spec("data_caching", 0.1);
    for (std::uint32_t i = 0; i < spec.processes; ++i) {
      sys.add_process(workloads::make_workload(spec, i, 7));
    }
    sys.step(60000);
    std::vector<std::uint64_t> fingerprint;
    for (std::size_t e = 0; e < pmu::kEventCount; ++e) {
      fingerprint.push_back(
          sys.pmu().truth_total(static_cast<pmu::Event>(e)));
    }
    fingerprint.push_back(sys.now());
    fingerprint.push_back(sys.phys().used_frames(0));
    fingerprint.push_back(sys.phys().used_frames(1));
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tmprof
