/// Tests for the PML write-history path: driver collection of dirty-page
/// log evidence and the WriteHistoryPolicy built on it.

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "tiering/policies.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 14;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

TEST(PmlDriver, CollectsWriteEvidenceWhenEnabled) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(4 << 20, 0.5, 1));
  core::DriverConfig cfg;
  cfg.use_pml = true;
  core::TmpDriver driver(sys, cfg);
  sys.step(20000);
  const core::EpochObservation obs = driver.end_epoch();
  EXPECT_FALSE(obs.writes.empty());
  for (const auto& [key, count] : obs.writes) EXPECT_GE(count, 1U);
}

TEST(PmlDriver, DisabledByDefault) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(4 << 20, 0.5, 1));
  core::TmpDriver driver(sys, core::DriverConfig{});
  sys.step(20000);
  EXPECT_TRUE(driver.end_epoch().writes.empty());
}

TEST(PmlDriver, WriteCountsBoundedByDirtyTransitions) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  core::DriverConfig cfg;
  cfg.use_pml = true;
  core::TmpDriver driver(sys, cfg);
  // Three stores to the same page: only the first sets D.
  sys.access(proc, proc.vaddr_of(0), true, 1);
  sys.access(proc, proc.vaddr_of(8), true, 1);
  sys.access(proc, proc.vaddr_of(16), true, 1);
  const core::EpochObservation obs = driver.end_epoch();
  ASSERT_EQ(obs.writes.size(), 1U);
  EXPECT_EQ(obs.writes.begin()->second, 1U);
}

TEST(PmlRanking, WriteCountsRideAlongInPageRank) {
  core::EpochObservation obs;
  const core::PageKey key{1, 0x1000};
  obs.trace[key] = 5;
  obs.writes[key] = 9;
  const auto ranked = core::build_ranking(obs, core::FusionMode::Sum);
  ASSERT_EQ(ranked.size(), 1U);
  EXPECT_EQ(ranked[0].rank, 5U);     // writes don't inflate the fused rank
  EXPECT_EQ(ranked[0].writes, 9U);   // but policies can see them
}

TEST(WriteHistory, BoostsWriteHotPages) {
  std::vector<core::PageRank> ranking;
  core::PageRank read_hot;
  read_hot.key = tiering::PageKey{1, 0x1000};
  read_hot.rank = 10;
  core::PageRank write_hot;
  write_hot.key = tiering::PageKey{1, 0x2000};
  write_hot.rank = 8;
  write_hot.writes = 5;  // 8 + 4.0*5 = 28 beats 10
  ranking = {read_hot, write_hot};

  tiering::PageSizeMap sizes;
  sizes[read_hot.key] = mem::PageSize::k4K;
  sizes[write_hot.key] = mem::PageSize::k4K;
  tiering::PlacementSet current;
  tiering::PolicyContext ctx;
  ctx.capacity_frames = 1;
  ctx.current = &current;
  ctx.observed_ranking = &ranking;
  ctx.page_sizes = &sizes;

  tiering::WriteHistoryPolicy policy(4.0);
  const tiering::PlacementSet chosen = policy.choose(ctx);
  ASSERT_EQ(chosen.size(), 1U);
  EXPECT_TRUE(chosen.count(write_hot.key));
}

TEST(WriteHistory, ZeroWeightDegeneratesToHistory) {
  std::vector<core::PageRank> ranking;
  core::PageRank a;
  a.key = tiering::PageKey{1, 0x1000};
  a.rank = 10;
  core::PageRank b;
  b.key = tiering::PageKey{1, 0x2000};
  b.rank = 8;
  b.writes = 100;
  ranking = {a, b};
  tiering::PageSizeMap sizes;
  sizes[a.key] = sizes[b.key] = mem::PageSize::k4K;
  tiering::PlacementSet current;
  tiering::PolicyContext ctx;
  ctx.capacity_frames = 1;
  ctx.current = &current;
  ctx.observed_ranking = &ranking;
  ctx.page_sizes = &sizes;
  tiering::WriteHistoryPolicy policy(0.0);
  const tiering::PlacementSet chosen = policy.choose(ctx);
  EXPECT_TRUE(chosen.count(a.key));
}

TEST(WriteHistory, FactoryKnowsIt) {
  EXPECT_EQ(tiering::make_policy("write-history")->name(), "write-history");
}

}  // namespace
}  // namespace tmprof
