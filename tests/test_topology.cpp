/// N-tier topology tests (docs/TOPOLOGY.md): the SimConfig tier-chain
/// model (legacy shim vs explicit chains), the waterfall hitrate
/// evaluator, and per-hop migration-cost scaling over a three-tier chain.

#include "tiering/hitrate.hpp"

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "tiering/mover.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

TEST(Topology, TierSpecsShimProducesLegacyChain) {
  sim::SimConfig cfg;
  const std::vector<mem::TierSpec> two = sim::tier_specs(cfg);
  ASSERT_EQ(two.size(), 2U);
  EXPECT_EQ(two[0].name, "tier1-dram");
  EXPECT_EQ(two[0].frames, cfg.tier1_frames);
  EXPECT_EQ(two[0].read_latency_ns, cfg.tier1_read_ns);
  EXPECT_EQ(two[1].name, "tier2-nvm");
  EXPECT_EQ(two[1].write_latency_ns, cfg.tier2_write_ns);

  cfg.tier3_frames = 1 << 10;
  const std::vector<mem::TierSpec> three = sim::tier_specs(cfg);
  ASSERT_EQ(three.size(), 3U);
  EXPECT_EQ(three[2].name, "tier3-cold");
  EXPECT_EQ(three[2].frames, 1U << 10);
  EXPECT_EQ(three[2].read_latency_ns, cfg.tier3_read_ns);
}

TEST(Topology, ExplicitChainOverridesShim) {
  sim::SimConfig cfg;
  cfg.tiers = {mem::TierSpec{"hbm", 64, 40, 40, 2},
               mem::TierSpec{"dram", 256, 80, 80, 4},
               mem::TierSpec{"cxl", 1024, 150, 200, 8},
               mem::TierSpec{"nvm", 4096, 300, 600, 16}};
  const std::vector<mem::TierSpec> specs = sim::tier_specs(cfg);
  ASSERT_EQ(specs.size(), 4U);
  for (std::size_t t = 0; t < specs.size(); ++t) {
    EXPECT_EQ(specs[t].name, cfg.tiers[t].name) << t;
    EXPECT_EQ(specs[t].frames, cfg.tiers[t].frames) << t;
    EXPECT_EQ(specs[t].read_latency_ns, cfg.tiers[t].read_latency_ns) << t;
    EXPECT_EQ(specs[t].line_transfer_ns, cfg.tiers[t].line_transfer_ns) << t;
  }
}

TEST(Topology, ExplicitChainDrivesSystemGeometry) {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tiers = {mem::TierSpec{"a", 2, 80, 80, 0},
               mem::TierSpec{"b", 2, 150, 200, 0},
               mem::TierSpec{"c", 64, 300, 600, 0}};
  sim::System sys(cfg);
  EXPECT_EQ(sys.phys().tier_count(), 3U);
  EXPECT_EQ(sys.phys().total_frames(), 68U);
  EXPECT_EQ(sys.phys().tier_of(0), 0);
  EXPECT_EQ(sys.phys().tier_of(2), 1);
  EXPECT_EQ(sys.phys().tier_of(4), 2);
}

// ---------------------------------------------------------------------------
// Waterfall hitrate evaluation

PageKey key(std::uint64_t n) { return PageKey{1, n * mem::kPageSize}; }

/// Two identical epochs: page 0 hot (5 accesses), page 1 warm (3),
/// page 2 cold (1); the profiler observes the truth exactly.
EpochSeries waterfall_series() {
  EpochSeries series;
  for (std::uint32_t e = 0; e < 2; ++e) {
    EpochData data;
    data.epoch = e;
    const std::uint64_t counts[] = {5, 3, 1};
    for (std::uint64_t p = 0; p < 3; ++p) {
      data.truth[key(p)] = counts[p];
      data.truth_total += counts[p];
      data.observed.trace[key(p)] = static_cast<std::uint32_t>(counts[p]);
    }
    series.epochs.push_back(std::move(data));
  }
  for (std::uint64_t p = 0; p < 3; ++p) {
    series.page_sizes[key(p)] = mem::PageSize::k4K;
  }
  series.footprint_frames = 3;
  return series;
}

TEST(Topology, WaterfallSpillsRankingDownTheLadder) {
  const EpochSeries series = waterfall_series();
  core::FusionParams fusion;  // Sum: ranks 5/3/1
  const TierHitrateResult r =
      evaluate_waterfall(series, {1, 1}, fusion);
  ASSERT_EQ(r.tier_accesses.size(), 3U);
  // Epoch 0 has no prior ranking: all 9 accesses hit the bottom tier.
  // Epoch 1 waterfalls epoch 0's ranking: page 0 -> tier 0 (5 accesses),
  // page 1 -> tier 1 (3), page 2 spills to the bottom (1).
  EXPECT_EQ(r.tier_accesses[0], 5U);
  EXPECT_EQ(r.tier_accesses[1], 3U);
  EXPECT_EQ(r.tier_accesses[2], 9U + 1U);
  EXPECT_EQ(r.total_accesses, 18U);
  double sum = 0.0;
  for (const double f : r.tier_fraction) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Topology, WaterfallChargesFrameCountsOfLargePages) {
  EpochSeries series = waterfall_series();
  series.page_sizes[key(0)] = mem::PageSize::k2M;  // hot page is now huge
  core::FusionParams fusion;
  // Tier 0 holds exactly the 512 frames of the huge page; page 1 no longer
  // fits beside it and spills to tier 1, page 2 to the bottom.
  const TierHitrateResult r =
      evaluate_waterfall(series, {512, 1}, fusion);
  EXPECT_EQ(r.tier_accesses[0], 5U);
  EXPECT_EQ(r.tier_accesses[1], 3U);
  EXPECT_EQ(r.tier_accesses[2], 9U + 1U);
  // Squeeze the fast tier below the huge page: it can never be placed, so
  // the waterfall stops at it and everything lands on the bottom tier.
  const TierHitrateResult tight =
      evaluate_waterfall(series, {1, 1}, fusion);
  EXPECT_EQ(tight.tier_accesses[0], 0U);
  EXPECT_EQ(tight.tier_accesses[1], 0U);
  EXPECT_EQ(tight.tier_accesses[2], 18U);
}

TEST(Topology, WaterfallEmptySeriesYieldsZeroTotals) {
  const EpochSeries series;
  core::FusionParams fusion;
  const TierHitrateResult r = evaluate_waterfall(series, {4}, fusion);
  EXPECT_EQ(r.total_accesses, 0U);
  ASSERT_EQ(r.tier_fraction.size(), 2U);
  EXPECT_EQ(r.tier_fraction[0], 0.0);
}

// ---------------------------------------------------------------------------
// Per-hop migration cost over a chain

/// Touch `pages` distinct 4 KiB pages so first-touch fills the ladder
/// fastest tier first.
void touch_pages(sim::System& sys, mem::Pid pid, std::uint64_t pages) {
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t i = 0; i < pages; ++i) {
    sys.access(proc, proc.vaddr_of(i * mem::kPageSize), false, 1);
  }
}

TEST(Topology, ApplyTiersChargesPerHopMigrationCost) {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tiers = {mem::TierSpec{"a", 8, 80, 80, 0},
               mem::TierSpec{"b", 2, 150, 200, 0},
               mem::TierSpec{"c", 64, 300, 600, 0}};
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 12);  // pages 0..7 -> a, 8..9 -> b, 10..11 -> c
  sim::Process& proc = sys.process(pid);
  const auto tier_of_page = [&](std::uint64_t idx) {
    const auto ref = proc.page_table().resolve(
        proc.vaddr_of(idx * mem::kPageSize));
    return sys.phys().tier_of(ref.pte->pfn());
  };
  ASSERT_EQ(tier_of_page(7), 0);
  ASSERT_EQ(tier_of_page(8), 1);
  ASSERT_EQ(tier_of_page(10), 2);

  const util::SimNs cost = 1000;
  MoverConfig mcfg;
  mcfg.per_page_cost_ns = cost;
  PageMover mover(sys, mcfg);

  // Rank page 10 (bottom tier) hottest, then the eight tier-a residents,
  // then page 8. Targets with capacities {8, 2}: tier a = {10, 0..6},
  // tier b = {7, 8}. Expected moves: demote 9 b->c (1 hop, makes room for
  // 7), demote 7 a->b (1 hop), promote 10 c->a (2 hops).
  std::vector<core::PageRank> ranking;
  std::uint64_t rank = 1000;
  for (const std::uint64_t idx : {10U, 0U, 1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U}) {
    core::PageRank pr;
    pr.key = PageKey{pid, proc.vaddr_of(idx * mem::kPageSize)};
    pr.rank = rank--;
    ranking.push_back(pr);
  }
  const util::SimNs before = sys.now();
  const MoveStats stats = mover.apply_tiers(ranking, {8, 2});
  EXPECT_EQ(stats.promoted, 1U);
  EXPECT_EQ(stats.demoted, 2U);
  // 1 + 1 + 2 hops: a flat per-move charge would only account 3 moves.
  EXPECT_EQ(stats.cost_ns, 4 * cost);
  EXPECT_EQ(sys.now() - before, stats.cost_ns);
  EXPECT_EQ(tier_of_page(10), 0);
  EXPECT_EQ(tier_of_page(7), 1);
  EXPECT_EQ(tier_of_page(9), 2);
}

}  // namespace
}  // namespace tmprof::tiering
