#include "core/pid_filter.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

std::unique_ptr<sim::Process> make_proc(mem::Pid pid) {
  return std::make_unique<sim::Process>(
      pid, std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, pid));
}

TEST(PidFilter, KeepsHighCpuProcesses) {
  auto a = make_proc(1);
  auto b = make_proc(2);
  a->charge_ops(960);  // 96% of CPU
  b->charge_ops(40);   // 4% of CPU, no memory
  PidFilter filter;
  const auto kept = filter.select({a.get(), b.get()});
  ASSERT_EQ(kept.size(), 1U);
  EXPECT_EQ(kept[0], 1U);
}

TEST(PidFilter, KeepsHighMemoryProcessesEvenIfIdle) {
  auto a = make_proc(1);
  auto b = make_proc(2);
  a->charge_ops(1000);
  for (int i = 0; i < 100; ++i) b->note_mapped_page(mem::PageSize::k4K);
  for (int i = 0; i < 10; ++i) a->note_mapped_page(mem::PageSize::k4K);
  // b: 0% CPU but ~91% of memory -> kept.
  PidFilter filter;
  const auto kept = filter.select({a.get(), b.get()});
  EXPECT_EQ(kept.size(), 2U);
}

TEST(PidFilter, CpuShareUsesDeltasBetweenCalls) {
  auto a = make_proc(1);
  auto b = make_proc(2);
  a->charge_ops(1000);
  PidFilter filter;
  auto kept = filter.select({a.get(), b.get()});
  ASSERT_EQ(kept.size(), 1U);
  // Since then only b ran: the next evaluation must flip.
  b->charge_ops(1000);
  kept = filter.select({a.get(), b.get()});
  ASSERT_EQ(kept.size(), 1U);
  EXPECT_EQ(kept[0], 2U);
}

TEST(PidFilter, RestrictiveModeBoundsTrackedPids) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<sim::Process*> raw;
  for (mem::Pid pid = 1; pid <= 10; ++pid) {
    procs.push_back(make_proc(pid));
    procs.back()->charge_ops(100);  // all equal: every one passes 5%
    raw.push_back(procs.back().get());
  }
  PidFilterConfig cfg;
  cfg.restrict_top_n = 3;
  PidFilter filter(cfg);
  EXPECT_EQ(filter.select(raw).size(), 3U);
}

TEST(PidFilter, AllIdleKeepsNothing) {
  auto a = make_proc(1);
  auto b = make_proc(2);
  PidFilter filter;
  EXPECT_TRUE(filter.select({a.get(), b.get()}).empty());
}

TEST(PidFilter, ResultSorted) {
  auto a = make_proc(9);
  auto b = make_proc(3);
  a->charge_ops(500);
  b->charge_ops(500);
  PidFilter filter;
  const auto kept = filter.select({a.get(), b.get()});
  ASSERT_EQ(kept.size(), 2U);
  EXPECT_LT(kept[0], kept[1]);
}

}  // namespace
}  // namespace tmprof::core
