#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace tmprof::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, KeyValuePairs) {
  const auto p = parse({"--workload=gups", "--epochs=12"});
  EXPECT_EQ(p.get("workload", ""), "gups");
  EXPECT_EQ(p.get_u64("epochs", 0), 12U);
}

TEST(Cli, BareFlagIsTrue) {
  const auto p = parse({"--verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_TRUE(p.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenMissing) {
  const auto p = parse({});
  EXPECT_FALSE(p.has("x"));
  EXPECT_EQ(p.get("x", "dflt"), "dflt");
  EXPECT_EQ(p.get_u64("x", 7), 7U);
  EXPECT_DOUBLE_EQ(p.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(p.get_bool("x", false));
}

TEST(Cli, Positional) {
  const auto p = parse({"first", "--k=v", "second"});
  ASSERT_EQ(p.positional().size(), 2U);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(Cli, BooleanSpellings) {
  const auto p = parse({"--a=yes", "--b=off", "--c=1", "--d=false"});
  EXPECT_TRUE(p.get_bool("a", false));
  EXPECT_FALSE(p.get_bool("b", true));
  EXPECT_TRUE(p.get_bool("c", false));
  EXPECT_FALSE(p.get_bool("d", true));
}

TEST(Cli, BadBooleanThrows) {
  const auto p = parse({"--a=maybe"});
  EXPECT_THROW(p.get_bool("a", false), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  const auto p = parse({"--theta=0.99"});
  EXPECT_DOUBLE_EQ(p.get_double("theta", 0.0), 0.99);
}

TEST(Cli, NegativeU64Throws) {
  // std::stoull would silently wrap "-3" to a huge value; the parser must
  // reject it with a message naming the flag.
  const auto p = parse({"--epochs=-3"});
  try {
    (void)p.get_u64("epochs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--epochs"), std::string::npos);
  }
}

TEST(Cli, GarbageU64Throws) {
  const auto p = parse({"--epochs=12abc", "--ops="});
  EXPECT_THROW((void)p.get_u64("epochs", 0), std::invalid_argument);
  EXPECT_THROW((void)p.get_u64("ops", 0), std::invalid_argument);
}

TEST(Cli, GarbageDoubleThrows) {
  const auto p = parse({"--rate=0.5x"});
  EXPECT_THROW((void)p.get_double("rate", 0.0), std::invalid_argument);
}

TEST(Cli, RateRejectsOutOfRange) {
  const auto neg = parse({"--fault-rate=-0.1"});
  try {
    (void)neg.get_rate("fault-rate", 0.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--fault-rate"), std::string::npos);
  }
  const auto big = parse({"--fault-rate=1.5"});
  EXPECT_THROW((void)big.get_rate("fault-rate", 0.0), std::invalid_argument);
  const auto ok = parse({"--fault-rate=0.25"});
  EXPECT_DOUBLE_EQ(ok.get_rate("fault-rate", 0.0), 0.25);
}

TEST(Cli, CheckedDoubleBounds) {
  const auto p = parse({"--w=2.0"});
  EXPECT_DOUBLE_EQ(p.get_checked_double("w", 0.0, 0.0, 4.0), 2.0);
  EXPECT_THROW((void)p.get_checked_double("w", 0.0, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tmprof::util
