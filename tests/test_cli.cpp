#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace tmprof::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, KeyValuePairs) {
  const auto p = parse({"--workload=gups", "--epochs=12"});
  EXPECT_EQ(p.get("workload", ""), "gups");
  EXPECT_EQ(p.get_u64("epochs", 0), 12U);
}

TEST(Cli, BareFlagIsTrue) {
  const auto p = parse({"--verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_TRUE(p.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenMissing) {
  const auto p = parse({});
  EXPECT_FALSE(p.has("x"));
  EXPECT_EQ(p.get("x", "dflt"), "dflt");
  EXPECT_EQ(p.get_u64("x", 7), 7U);
  EXPECT_DOUBLE_EQ(p.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(p.get_bool("x", false));
}

TEST(Cli, Positional) {
  const auto p = parse({"first", "--k=v", "second"});
  ASSERT_EQ(p.positional().size(), 2U);
  EXPECT_EQ(p.positional()[0], "first");
  EXPECT_EQ(p.positional()[1], "second");
}

TEST(Cli, BooleanSpellings) {
  const auto p = parse({"--a=yes", "--b=off", "--c=1", "--d=false"});
  EXPECT_TRUE(p.get_bool("a", false));
  EXPECT_FALSE(p.get_bool("b", true));
  EXPECT_TRUE(p.get_bool("c", false));
  EXPECT_FALSE(p.get_bool("d", true));
}

TEST(Cli, BadBooleanThrows) {
  const auto p = parse({"--a=maybe"});
  EXPECT_THROW(p.get_bool("a", false), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  const auto p = parse({"--theta=0.99"});
  EXPECT_DOUBLE_EQ(p.get_double("theta", 0.0), 0.99);
}

TEST(Cli, NegativeU64Throws) {
  // std::stoull would silently wrap "-3" to a huge value; the parser must
  // reject it with a message naming the flag.
  const auto p = parse({"--epochs=-3"});
  try {
    (void)p.get_u64("epochs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--epochs"), std::string::npos);
  }
}

TEST(Cli, GarbageU64Throws) {
  const auto p = parse({"--epochs=12abc", "--ops="});
  EXPECT_THROW((void)p.get_u64("epochs", 0), std::invalid_argument);
  EXPECT_THROW((void)p.get_u64("ops", 0), std::invalid_argument);
}

TEST(Cli, GarbageDoubleThrows) {
  const auto p = parse({"--rate=0.5x"});
  EXPECT_THROW((void)p.get_double("rate", 0.0), std::invalid_argument);
}

TEST(Cli, RateRejectsOutOfRange) {
  const auto neg = parse({"--fault-rate=-0.1"});
  try {
    (void)neg.get_rate("fault-rate", 0.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--fault-rate"), std::string::npos);
  }
  const auto big = parse({"--fault-rate=1.5"});
  EXPECT_THROW((void)big.get_rate("fault-rate", 0.0), std::invalid_argument);
  const auto ok = parse({"--fault-rate=0.25"});
  EXPECT_DOUBLE_EQ(ok.get_rate("fault-rate", 0.0), 0.25);
}

TEST(Cli, CheckedDoubleBounds) {
  const auto p = parse({"--w=2.0"});
  EXPECT_DOUBLE_EQ(p.get_checked_double("w", 0.0, 0.0, 4.0), 2.0);
  EXPECT_THROW((void)p.get_checked_double("w", 0.0, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tmprof::util

#include "../bench/common.hpp"
#include "util/fault.hpp"

namespace tmprof::util {
namespace {

TEST(FaultSitesCli, AllAliasExpandsToEverySite) {
  const std::vector<FaultSite> sites = parse_fault_sites("all");
  ASSERT_EQ(sites.size(), kFaultSiteCount);
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    EXPECT_EQ(sites[s], static_cast<FaultSite>(s));
  }
}

TEST(FaultSitesCli, MigrationAliasCoversBothMigrationSites) {
  const std::vector<FaultSite> sites = parse_fault_sites("migration");
  ASSERT_EQ(sites.size(), 2U);
  EXPECT_EQ(sites[0], FaultSite::MigrationBusy);
  EXPECT_EQ(sites[1], FaultSite::MigrationNoMem);
}

TEST(FaultSitesCli, NamedSitesAndEmptyTokensParse) {
  const std::vector<FaultSite> sites =
      parse_fault_sites("trace-overflow,,hwpc-wrap");
  ASSERT_EQ(sites.size(), 2U);
  EXPECT_EQ(sites[0], FaultSite::TraceOverflow);
  EXPECT_EQ(sites[1], FaultSite::HwpcWrap);
}

TEST(FaultSitesCli, UnknownSiteErrorEnumeratesValidNames) {
  // The error message must list every valid site name and the aliases, so
  // a typo on the command line is self-documenting.
  try {
    (void)parse_fault_sites("migration-busy,bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'bogus'"), std::string::npos);
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      const auto name = to_string(static_cast<FaultSite>(s));
      EXPECT_NE(msg.find(std::string(name)), std::string::npos)
          << "message does not list site " << name;
    }
    EXPECT_NE(msg.find("all"), std::string::npos);
    EXPECT_NE(msg.find("migration"), std::string::npos);
  }
}

TEST(FaultSitesCli, EmptyListErrorEnumeratesValidNames) {
  try {
    (void)parse_fault_sites(",,");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      const auto name = to_string(static_cast<FaultSite>(s));
      EXPECT_NE(msg.find(std::string(name)), std::string::npos);
    }
  }
}

TEST(GoldenSchema, RobustnessCsvHeader) {
  // Golden schema for robustness.csv: downstream plotting scripts key on
  // these column names in this order. Changing the bench output requires
  // updating this test in the same commit — that is the point.
  const std::vector<std::string> want{
      "workload",      "fault_rate", "policy",        "runtime_ms",
      "speedup",       "hitrate",    "migrations",    "retried",
      "deferred",      "aborted",    "no_room",       "trace_dropped",
      "scans_aborted", "hwpc_wraps", "pinned_epochs", "fallback_epochs"};
  EXPECT_EQ(bench::robustness_csv_header(), want);
}

TEST(GoldenSchema, StormCsvHeader) {
  // Golden schema for storm.csv (bench/robustness --storm). The CI storm
  // gate and any plotting script key on these names in this order.
  const std::vector<std::string> want{
      "scenario",         "admission",       "runtime_ms",
      "hitrate",          "migrations",      "moved_mb",
      "rejected",         "cooled",          "shed",
      "throttled_epochs", "bytes_saved_pct", "hitrate_delta"};
  EXPECT_EQ(bench::storm_csv_header(), want);
}

TEST(AdmissionCli, FlagsParseIntoConfig) {
  const auto p =
      parse({"--admission=adaptive", "--mig-bandwidth=200", "--mig-burst=2",
             "--cooldown-epochs=6", "--min-benefit=5", "--min-history=3",
             "--max-moves=128"});
  const tiering::AdmissionConfig adm = bench::admission_from_args(p);
  EXPECT_EQ(adm.mode, tiering::AdmissionMode::Adaptive);
  EXPECT_EQ(adm.bandwidth_bytes_per_sec, 200'000'000U);
  EXPECT_EQ(adm.burst_bytes, 2'000'000U);
  EXPECT_EQ(adm.cooldown_epochs, 6U);
  EXPECT_EQ(adm.min_benefit, 5U);
  EXPECT_EQ(adm.min_history, 3U);
  EXPECT_EQ(adm.max_moves_per_epoch, 128U);
}

TEST(AdmissionCli, DefaultIsOff) {
  const tiering::AdmissionConfig adm = bench::admission_from_args(parse({}));
  EXPECT_EQ(adm.mode, tiering::AdmissionMode::Off);
  EXPECT_EQ(adm.bandwidth_bytes_per_sec, 0U);
}

TEST(AdmissionCli, UnknownModeErrorEnumeratesValidNames) {
  try {
    (void)bench::admission_from_args(parse({"--admission=banana"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("banana"), std::string::npos);
    EXPECT_NE(msg.find("off"), std::string::npos);
    EXPECT_NE(msg.find("static"), std::string::npos);
    EXPECT_NE(msg.find("adaptive"), std::string::npos);
  }
}

TEST(AdmissionCli, NegativeBandwidthRejected) {
  EXPECT_THROW(
      (void)bench::admission_from_args(parse({"--mig-bandwidth=-100"})),
      std::invalid_argument);
  EXPECT_THROW((void)bench::admission_from_args(parse({"--mig-burst=-1"})),
               std::invalid_argument);
}

TEST(AdmissionCli, ZeroCooldownWindowRejected) {
  try {
    (void)bench::admission_from_args(parse({"--cooldown-epochs=0"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cooldown-epochs"),
              std::string::npos);
  }
}

TEST(GoldenSchema, FleetCsvHeader) {
  // Golden schema for fleet.csv (bench/consolidation --fleet). The CI
  // isolation gate and per-tenant plotting scripts key on these names in
  // this order.
  const std::vector<std::string> want{
      "mode",           "tenant",          "qos",
      "hitrate",        "floor_frames",    "grant_frames",
      "occupancy_frames", "quota_shed",    "reclaimed_frames",
      "bandwidth_rejected"};
  EXPECT_EQ(bench::fleet_csv_header(), want);
}

TEST(TenantCli, FleetFlagsParseIntoArgs) {
  const auto p = parse({"--tenants=24", "--qos=batch", "--quota-floor=640",
                        "--churn-rate=0.8", "--fleet"});
  const bench::FleetArgs fleet = bench::fleet_from_args(p);
  EXPECT_EQ(fleet.n_tenants, 24U);
  EXPECT_EQ(fleet.service_qos, tiering::QosClass::Batch);
  EXPECT_EQ(fleet.quota_floor_frames, 640U);
  EXPECT_DOUBLE_EQ(fleet.churn_rate, 0.8);
  EXPECT_FALSE(fleet.isolation_check);
}

TEST(TenantCli, DefaultsWhenUnset) {
  const bench::FleetArgs fleet = bench::fleet_from_args(parse({"--fleet"}));
  EXPECT_EQ(fleet.n_tenants, 12U);
  EXPECT_EQ(fleet.service_qos, tiering::QosClass::Latency);
  EXPECT_EQ(fleet.quota_floor_frames, 0U);  // bench picks its default
  EXPECT_DOUBLE_EQ(fleet.churn_rate, 0.5);
}

TEST(TenantCli, UnknownQosClassErrorEnumeratesValidNames) {
  try {
    (void)bench::fleet_from_args(parse({"--qos=besteffort"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("besteffort"), std::string::npos);
    EXPECT_NE(msg.find("latency"), std::string::npos);
    EXPECT_NE(msg.find("batch"), std::string::npos);
  }
}

TEST(TenantCli, TooFewTenantsRejected) {
  for (const char* flag : {"--tenants=0", "--tenants=1"}) {
    try {
      (void)bench::fleet_from_args(parse({flag}));
      FAIL() << "expected std::invalid_argument for " << flag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--tenants"), std::string::npos);
    }
  }
  // Negative counts die in the integer parser with the flag named.
  EXPECT_THROW((void)bench::fleet_from_args(parse({"--tenants=-4"})),
               std::invalid_argument);
}

TEST(TenantCli, NonPositiveFloorRejected) {
  for (const char* flag : {"--quota-floor=0", "--quota-floor=-128"}) {
    try {
      (void)bench::fleet_from_args(parse({flag}));
      FAIL() << "expected std::invalid_argument for " << flag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--quota-floor"),
                std::string::npos);
    }
  }
}

TEST(TenantCli, ChurnRateMustBeStrictlyBetweenZeroAndOne) {
  for (const char* flag :
       {"--churn-rate=0", "--churn-rate=1", "--churn-rate=-0.5",
        "--churn-rate=1.5"}) {
    try {
      (void)bench::fleet_from_args(parse({flag}));
      FAIL() << "expected std::invalid_argument for " << flag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--churn-rate"),
                std::string::npos);
    }
  }
}

TEST(TenantCli, IsolationCheckRequiresLatencyQos) {
  EXPECT_THROW((void)bench::fleet_from_args(parse({"--isolation-check=1"})),
               std::invalid_argument);
  EXPECT_THROW((void)bench::fleet_from_args(
                   parse({"--isolation-check=1", "--qos=batch"})),
               std::invalid_argument);
  const bench::FleetArgs fleet = bench::fleet_from_args(
      parse({"--isolation-check=1", "--qos=latency"}));
  EXPECT_TRUE(fleet.isolation_check);
}

TEST(GoldenSchema, CheckpointFlagsParseIntoOptions) {
  const auto p = parse({"--checkpoint-every=4", "--checkpoint-dir=/tmp/ck",
                        "--resume-latest", "--keep-last=5"});
  const ckpt::Options ck = bench::checkpoint_from_args(p);
  EXPECT_EQ(ck.every, 4U);
  EXPECT_EQ(ck.dir, "/tmp/ck");
  EXPECT_TRUE(ck.resume_latest);
  EXPECT_EQ(ck.keep_last, 5U);
  EXPECT_TRUE(ck.enabled());
  EXPECT_FALSE(bench::checkpoint_from_args(parse({})).enabled());
}

TEST(TopologyCli, ChainParsesIntoTierSpecs) {
  const auto p = parse(
      {"--tiers=dram:8192:80:80,cxl:16384:150:200:32,nvm:262144:300:600:8"});
  const std::vector<mem::TierSpec> tiers = bench::tiers_from_args(p);
  ASSERT_EQ(tiers.size(), 3U);
  EXPECT_EQ(tiers[0].name, "dram");
  EXPECT_EQ(tiers[0].frames, 8192U);
  EXPECT_EQ(tiers[0].read_latency_ns, 80U);
  EXPECT_EQ(tiers[0].write_latency_ns, 80U);
  EXPECT_EQ(tiers[0].line_transfer_ns, 0U);  // no bandwidth term given
  EXPECT_EQ(tiers[1].name, "cxl");
  EXPECT_EQ(tiers[1].line_transfer_ns, 2U);  // 64 B / 32 GB/s = 2 ns
  EXPECT_EQ(tiers[2].name, "nvm");
  EXPECT_EQ(tiers[2].line_transfer_ns, 8U);  // 64 B / 8 GB/s = 8 ns
}

TEST(TopologyCli, AbsentFlagMeansLegacyShim) {
  EXPECT_TRUE(bench::tiers_from_args(parse({})).empty());
}

TEST(TopologyCli, MalformedSpecsRejectedWithFlagName) {
  for (const char* flag :
       {"--tiers=dram:100:80",                    // too few fields
        "--tiers=dram:100:80:80:8:9",             // too many fields
        "--tiers=dram:x:80:80,nvm:100:300:600",   // non-integer frames
        "--tiers=:100:80:80,nvm:100:300:600",     // empty name
        "--tiers=dram:100:80:80,nvm:100:300:600:0",   // zero bandwidth
        "--tiers=dram:100:80:80,nvm:100:300:600:-4"}) {  // negative bw
    try {
      (void)bench::tiers_from_args(parse({flag}));
      FAIL() << "expected std::invalid_argument for " << flag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--tiers"), std::string::npos)
          << flag;
    }
  }
}

TEST(TopologyCli, ZeroFrameTierRejectedByName) {
  try {
    (void)bench::tiers_from_args(
        parse({"--tiers=dram:8192:80:80,cxl:0:150:200"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cxl"), std::string::npos);
    EXPECT_NE(msg.find("zero frames"), std::string::npos);
  }
}

TEST(TopologyCli, DescendingLatencyChainRejected) {
  // The chain must be ordered fastest first; a later tier with a *lower*
  // read latency means the order is wrong, and the message names both
  // offending tiers.
  try {
    (void)bench::tiers_from_args(
        parse({"--tiers=nvm:8192:300:600,dram:8192:80:80"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fastest first"), std::string::npos);
    EXPECT_NE(msg.find("nvm"), std::string::npos);
    EXPECT_NE(msg.find("dram"), std::string::npos);
  }
}

TEST(TopologyCli, ChainLengthBoundsEnforced) {
  EXPECT_THROW((void)bench::tiers_from_args(parse({"--tiers=solo:100:80:80"})),
               std::invalid_argument);
  std::string nine = "--tiers=t0:100:80:80";
  for (int t = 1; t < 9; ++t) {
    nine += ",t" + std::to_string(t) + ":100:80:80";
  }
  EXPECT_THROW((void)bench::tiers_from_args(parse({nine.c_str()})),
               std::invalid_argument);
}

TEST(DevMonCli, FlagsParseIntoConfig) {
  const auto p =
      parse({"--devmon=1", "--devmon-slots=512", "--devmon-topk=32"});
  const monitors::DevMonConfig dm = bench::devmon_from_args(p);
  EXPECT_TRUE(dm.enabled);
  EXPECT_EQ(dm.slots, 512U);
  EXPECT_EQ(dm.top_k, 32U);
  EXPECT_FALSE(bench::devmon_from_args(parse({})).enabled);
}

TEST(DevMonCli, ZeroSlotsRejected) {
  EXPECT_THROW((void)bench::devmon_from_args(parse({"--devmon-slots=0"})),
               std::invalid_argument);
}

TEST(DevMonCli, TopKMustFitTheSlotArray) {
  EXPECT_THROW((void)bench::devmon_from_args(parse({"--devmon-topk=0"})),
               std::invalid_argument);
  EXPECT_THROW((void)bench::devmon_from_args(
                   parse({"--devmon-slots=64", "--devmon-topk=65"})),
               std::invalid_argument);
}

TEST(GoldenSchema, TopologyCsvHeader) {
  // Golden schema for topology.csv (bench/topology). The CI topology smoke
  // job uploads this file; plotting scripts key on these names in order.
  const std::vector<std::string> want{
      "workload", "chain",      "tiers",    "devmon",
      "runtime_ms", "dram_hitrate", "migrations", "promoted",
      "demoted",  "devmon_reported"};
  EXPECT_EQ(bench::topology_csv_header(), want);
}

}  // namespace
}  // namespace tmprof::util
