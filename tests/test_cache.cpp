#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::mem {
namespace {

TEST(CacheLevel, MissThenHitAfterFill) {
  CacheLevel c(4096, 4);
  EXPECT_FALSE(c.access(0x1000, false));
  c.fill(0x1000);
  EXPECT_TRUE(c.access(0x1000, false));
  // Same line, different byte.
  EXPECT_TRUE(c.access(0x103f, false));
  // Next line misses.
  EXPECT_FALSE(c.access(0x1040, false));
}

TEST(CacheLevel, LruEviction) {
  // 2 sets x 2 ways, 64B lines => 256 bytes.
  CacheLevel c(256, 2);
  // Three lines mapping to set 0 (line addresses even).
  c.fill(0x000);
  c.fill(0x080);
  EXPECT_TRUE(c.access(0x000, false));  // make 0x080 LRU
  c.fill(0x100);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x080));
  EXPECT_TRUE(c.contains(0x100));
}

TEST(CacheLevel, DirtyEvictionCounted) {
  CacheLevel c(256, 1);  // direct mapped, 4 sets
  c.fill(0x000);
  EXPECT_TRUE(c.access(0x000, true));  // dirty it
  c.fill(0x100);                        // same set, evicts dirty line
  EXPECT_EQ(c.dirty_evictions(), 1U);
}

TEST(CacheLevel, FlushEmptiesCache) {
  CacheLevel c(4096, 4);
  c.fill(0x1000);
  c.flush();
  EXPECT_FALSE(c.contains(0x1000));
}

TEST(CacheLevel, GeometryValidated) {
  EXPECT_THROW(CacheLevel(100, 4), util::AssertionError);   // not line multiple
  EXPECT_THROW(CacheLevel(192, 1), util::AssertionError);   // sets not pow2
  CacheLevel ok(1 << 15, 8);
  EXPECT_EQ(ok.size_bytes(), 1ULL << 15);
  EXPECT_EQ(ok.sets() * ok.ways() * kLineSize, 1ULL << 15);
}

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : llc_(1 << 20, 16),
        hier_(CacheHierarchy::make_default(&llc_, /*enable_prefetch=*/false)) {}

  CacheLevel llc_;
  CacheHierarchy hier_;
};

TEST_F(HierarchyTest, ColdMissGoesToMemoryThenHitsL1) {
  auto first = hier_.access(0x10000, false);
  EXPECT_TRUE(first.llc_miss);
  EXPECT_TRUE(is_memory(first.source));
  auto second = hier_.access(0x10000, false);
  EXPECT_EQ(second.source, DataSource::L1);
  EXPECT_FALSE(second.llc_miss);
}

TEST_F(HierarchyTest, LlcHitAfterPrivateFlush) {
  hier_.access(0x10000, false);
  hier_.flush();  // clears L1/L2 only
  auto r = hier_.access(0x10000, false);
  EXPECT_EQ(r.source, DataSource::LLC);
}

TEST(Hierarchy, PrefetchNextLineMakesItAnLlcHit) {
  CacheLevel llc(1 << 20, 16);
  CacheHierarchy hier = CacheHierarchy::make_default(&llc, true);
  auto first = hier.access(0x20000, false);
  EXPECT_TRUE(first.llc_miss);
  EXPECT_TRUE(first.prefetch_issued);
  EXPECT_EQ(hier.prefetch_fills(), 1U);
  // The next line was prefetched into the LLC only: the demand access hits
  // LLC, not memory.
  auto next = hier.access(0x20040, false);
  EXPECT_EQ(next.source, DataSource::LLC);
  EXPECT_FALSE(next.llc_miss);
}

TEST(Hierarchy, RepeatedMissSameLineDoesNotSelfFeedPrefetch) {
  CacheLevel llc(1 << 12, 1);  // tiny direct-mapped LLC to force misses
  CacheHierarchy hier(64 * 2, 1, 64 * 2, 1, &llc, true);
  hier.access(0x0, false);
  const std::uint64_t fills_before = hier.prefetch_fills();
  // Conflicting line evicts, then re-access the first: new demand line each
  // time, prefetcher triggers at most once per distinct line.
  hier.access(0x0, false);
  EXPECT_EQ(hier.prefetch_fills(), fills_before);
}

TEST(DataSource, Helpers) {
  EXPECT_TRUE(is_memory(DataSource::MemTier1));
  EXPECT_TRUE(is_memory(DataSource::MemTier2));
  EXPECT_FALSE(is_memory(DataSource::LLC));
  EXPECT_STREQ(to_string(DataSource::L1), "L1");
  EXPECT_STREQ(to_string(DataSource::MemTier2), "MemT2");
}

}  // namespace
}  // namespace tmprof::mem
