#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace tmprof::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4U);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit(static_cast<std::size_t>(i), [&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SameShardRunsInSubmissionOrder) {
  ThreadPool pool(3);
  // All tasks for one shard key land on one worker FIFO; appends observed
  // in submission order prove it (no lock needed — single writer).
  constexpr int kShards = 6;
  constexpr int kTasksPerShard = 500;
  std::vector<std::vector<int>> order(kShards);
  for (int t = 0; t < kTasksPerShard; ++t) {
    for (int s = 0; s < kShards; ++s) {
      pool.submit(static_cast<std::size_t>(s),
                  [&order, s, t] { order[static_cast<std::size_t>(s)].push_back(t); });
    }
  }
  pool.wait_idle();
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(order[static_cast<std::size_t>(s)].size(),
              static_cast<std::size_t>(kTasksPerShard));
    for (int t = 0; t < kTasksPerShard; ++t) {
      ASSERT_EQ(order[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)], t);
    }
  }
}

TEST(ThreadPool, WaitIdleWithNothingPendingReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // zero-task case: must not hang
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  pool.submit(0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.submit(1, [&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, KeepsFirstOfSeveralExceptions) {
  ThreadPool pool(1);
  // Single worker: tasks run in order, so "first" is deterministic.
  pool.submit(0, [] { throw std::runtime_error("first"); });
  pool.submit(0, [] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit(static_cast<std::size_t>(i), [&count] { ++count; });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StressManyTinyTasks) {
  ThreadPool pool(8);
  constexpr int kTasks = 20'000;
  std::atomic<std::uint64_t> sum{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit(static_cast<std::size_t>(i),
                [&sum, i] { sum += static_cast<std::uint64_t>(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 32; ++i) {
      pool.submit(static_cast<std::size_t>(i), [&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 32);
  }
}

}  // namespace
}  // namespace tmprof::util
