/// Differential exact-vs-sketch harness (the PR's headline deliverable):
/// the same simulated workload is collected twice — once with the exact
/// FlatHashMap hotness front-end and once with the count-min-sketch store —
/// and the two runs are compared end to end: per-epoch truth totals must
/// match exactly, per-page counts must never undercount, hit-rate curves
/// must agree within tolerance for every policy × fusion combination, and
/// sketch mode must keep the bitwise thread-count-invariance guarantee the
/// exact engine already has.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/hotness.hpp"
#include "tiering/epoch.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/ckpt.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/registry.hpp"

namespace tmprof::tiering {
namespace {

using core::PageKey;

sim::SimConfig tiny_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 9;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

CollectOptions tiny_collect(const core::HotnessConfig& hotness) {
  CollectOptions opt;
  opt.n_epochs = 5;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  opt.daemon.driver.hotness = hotness;
  return opt;
}

core::HotnessConfig sketch_hotness() {
  core::HotnessConfig config;
  config.mode = core::HotnessMode::Sketch;
  config.sketch.width = 1 << 14;
  config.sketch.depth = 4;
  config.sketch.bloom_bits = 1 << 20;
  // Above the tiny workloads' footprint: no candidate eviction, so every
  // touched page is materialized and the no-undercount comparison below
  // can demand full key coverage.
  config.candidates = 1 << 13;
  return config;
}

std::vector<std::uint8_t> series_image(const EpochSeries& series) {
  util::ckpt::Writer w;
  w.begin_section("series");
  save_series(w, series);
  w.end_section();
  return w.finish();
}

/// Both series for one workload, collected from identical streams.
struct SeriesPair {
  EpochSeries exact;
  EpochSeries sketch;
};

SeriesPair collect_pair() {
  const auto spec = workloads::find_spec("gups", 0.05);
  SeriesPair pair;
  pair.exact = collect_series(spec, tiny_config(), tiny_collect({}));
  pair.sketch =
      collect_series(spec, tiny_config(), tiny_collect(sketch_hotness()));
  return pair;
}

TEST(SketchDifferential, TruthTotalsMatchExactlyAndCountsNeverUndercount) {
  const SeriesPair pair = collect_pair();
  ASSERT_EQ(pair.sketch.epochs.size(), pair.exact.epochs.size());
  EXPECT_EQ(pair.sketch.page_sizes, pair.exact.page_sizes);
  EXPECT_EQ(pair.sketch.footprint_frames, pair.exact.footprint_frames);
  for (std::size_t e = 0; e < pair.exact.epochs.size(); ++e) {
    const EpochData& exact = pair.exact.epochs[e];
    const EpochData& sketch = pair.sketch.epochs[e];
    // The truth total is a plain accumulator in both modes — exact always.
    ASSERT_EQ(sketch.truth_total, exact.truth_total) << "epoch " << e;
    // With the candidate cap above the footprint, every truly-touched page
    // is materialized with a one-sided (>= true) estimate.
    for (const auto& [key, count] : exact.truth) {
      const auto it = sketch.truth.find(key);
      ASSERT_NE(it, sketch.truth.end())
          << "epoch " << e << " lost page " << key.page_va;
      ASSERT_GE(it->second, count) << "epoch " << e << " undercounted";
    }
  }
}

TEST(SketchDifferential, NewPagesAreASubsetOfExactFirstTouches) {
  // Bloom false positives can only *hide* a first touch, never invent one:
  // sketch-mode new_pages must be a per-epoch subset of exact new_pages,
  // and a page may appear at most once across the whole run.
  const SeriesPair pair = collect_pair();
  std::unordered_set<std::uint64_t> reported;
  auto fp = [](const PageKey& key) {
    return key.page_va ^ (static_cast<std::uint64_t>(key.pid) << 48);
  };
  std::size_t sketch_total = 0;
  std::size_t exact_total = 0;
  for (std::size_t e = 0; e < pair.exact.epochs.size(); ++e) {
    std::unordered_set<std::uint64_t> exact_new;
    for (const PageKey& key : pair.exact.epochs[e].new_pages) {
      exact_new.insert(fp(key));
    }
    exact_total += exact_new.size();
    for (const PageKey& key : pair.sketch.epochs[e].new_pages) {
      ASSERT_TRUE(exact_new.count(fp(key)) != 0)
          << "epoch " << e << " invented first touch of " << key.page_va;
      ASSERT_TRUE(reported.insert(fp(key)).second)
          << "page double-reported as new";
      ++sketch_total;
    }
  }
  // The Bloom filter is sized generously for the tiny footprint, so nearly
  // every first touch must still be detected.
  EXPECT_GE(sketch_total * 100, exact_total * 99)
      << sketch_total << " of " << exact_total << " first touches detected";
}

TEST(SketchDifferential, HitrateCurvesMatchAcrossPoliciesAndFusions) {
  const SeriesPair pair = collect_pair();
  const core::HotnessConfig hotness = sketch_hotness();
  const char* policies[] = {"first-touch",  "history",    "history-density",
                            "oracle",       "freq-decay", "write-history"};
  const core::FusionMode fusions[] = {
      core::FusionMode::Sum, core::FusionMode::AbitOnly,
      core::FusionMode::TraceOnly, core::FusionMode::Max,
      core::FusionMode::Weighted};
  for (const char* policy : policies) {
    for (const core::FusionMode fusion : fusions) {
      HitrateOptions opt;
      opt.capacity_frames = 1 << 9;
      opt.fusion = fusion;
      opt.trace_weight = 2.0;
      const auto exact_policy = make_policy(policy);
      const auto sketch_policy = make_policy(policy, hotness);
      const HitrateResult exact =
          evaluate_policy(*exact_policy, pair.exact, opt);
      const HitrateResult sketch =
          evaluate_policy(*sketch_policy, pair.sketch, opt);
      EXPECT_EQ(sketch.total_accesses, exact.total_accesses);
      EXPECT_NEAR(sketch.overall, exact.overall, 0.05)
          << policy << " x " << core::to_string(fusion);
      ASSERT_EQ(sketch.per_epoch.size(), exact.per_epoch.size());
      for (std::size_t e = 0; e < exact.per_epoch.size(); ++e) {
        EXPECT_NEAR(sketch.per_epoch[e], exact.per_epoch[e], 0.10)
            << policy << " x " << core::to_string(fusion) << " epoch " << e;
      }
    }
  }
}

TEST(SketchDifferential, SketchModeIsBitwiseThreadCountInvariant) {
  // The exact engine's headline guarantee carries over: shard sketches are
  // merged by cell-wise saturating add in ascending shard order at the
  // epoch barrier, so any thread count >= 1 yields identical bytes.
  const auto spec = workloads::find_spec("gups", 0.05);
  CollectOptions one = tiny_collect(sketch_hotness());
  one.n_threads = 1;
  CollectOptions eight = tiny_collect(sketch_hotness());
  eight.n_threads = 8;
  const EpochSeries a = collect_series(spec, tiny_config(), one);
  const EpochSeries b = collect_series(spec, tiny_config(), eight);
  EXPECT_EQ(series_image(a), series_image(b));
}

TEST(SketchDifferential, ExactModeUnchangedBySkeletonDefault) {
  // A default HotnessConfig must reproduce the historical exact engine
  // byte for byte (the refactor is invisible unless sketch mode is asked
  // for).
  const auto spec = workloads::find_spec("gups", 0.05);
  CollectOptions defaulted;
  defaulted.n_epochs = 5;
  defaulted.ops_per_epoch = 30000;
  defaulted.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  const EpochSeries a = collect_series(spec, tiny_config(), defaulted);
  const EpochSeries b = collect_series(spec, tiny_config(), tiny_collect({}));
  EXPECT_EQ(series_image(a), series_image(b));
}

// ---------------------------------------------------------------------------
// Memory-vs-accuracy acceptance: on a Zipf-skewed stream the sketch store
// must reproduce the exact top-64 ranking with >= 95% overlap while holding
// at most 1/8 of the exact store's per-page metadata bytes. (The
// bench/micro_hotpath sweep measures the full grid; this is the gate.)

TEST(SketchDifferential, Top64OverlapAtOneEighthMemory) {
  const std::uint64_t footprint = 1ull << 18;
  core::HotnessConfig config;
  config.mode = core::HotnessMode::Sketch;
  config.sketch.width = 1 << 14;
  config.sketch.depth = 4;
  config.sketch.bloom_bits = 1 << 20;
  config.candidates = 1 << 13;

  core::HotnessCounts exact_store;
  core::HotnessCounts sketch_store(config);
  util::Rng rng(20260807);
  util::ZipfDistribution zipf(footprint, 0.99);
  for (std::uint64_t i = 0; i < (1ull << 20); ++i) {
    const std::uint64_t page = zipf(rng);
    const PageKey key{1, page * mem::kPageSize};
    exact_store.add(key);
    sketch_store.add(key);
  }

  const std::size_t exact_bytes = exact_store.memory_bytes();
  const std::size_t sketch_bytes = sketch_store.memory_bytes();
  EXPECT_LE(sketch_bytes * 8, exact_bytes)
      << "sketch uses " << sketch_bytes << " of " << exact_bytes
      << " exact bytes";

  core::PageCountMap exact_counts;
  core::PageCountMap sketch_counts;
  const std::uint64_t exact_total = exact_store.end_epoch_into(exact_counts);
  const std::uint64_t sketch_total =
      sketch_store.end_epoch_into(sketch_counts);
  EXPECT_EQ(sketch_total, exact_total);

  auto top64 = [](const core::PageCountMap& counts) {
    std::vector<std::pair<std::uint32_t, PageKey>> pages;
    pages.reserve(counts.size());
    for (const auto& [key, count] : counts) pages.emplace_back(count, key);
    std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return b.second < a.second;
    });
    if (pages.size() > 64) pages.resize(64);
    std::unordered_set<std::uint64_t> keys;
    for (const auto& [count, key] : pages) keys.insert(key.page_va);
    return keys;
  };
  const auto exact_top = top64(exact_counts);
  const auto sketch_top = top64(sketch_counts);
  std::size_t overlap = 0;
  for (const std::uint64_t va : exact_top) overlap += sketch_top.count(va);
  EXPECT_GE(overlap * 100, exact_top.size() * 95)
      << overlap << " of " << exact_top.size() << " hot pages retained";
}

}  // namespace
}  // namespace tmprof::tiering
