/// Seed-stability regression tests for the sharded access engine: for a
/// fixed seed, RunnerResult must be *bitwise* identical whether the shards
/// run inline (n_threads = 1) or on 2 or 8 worker threads, for every policy
/// and fusion mode. The engine guarantees this by construction (shard count
/// is the simulated-core count; thread count only changes who executes a
/// shard), so any mismatch is a cross-shard data leak.

#include "tiering/runner.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "workloads/registry.hpp"

namespace tmprof::tiering {
namespace {

sim::SimConfig parallel_config() {
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;   // small fast tier: placement matters
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

RunnerOptions parallel_options(const std::string& policy,
                               core::FusionMode fusion,
                               std::uint32_t n_threads) {
  RunnerOptions opt;
  opt.policy = policy;
  opt.fusion = fusion;
  opt.n_epochs = 3;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  // write-history ranks by PML dirty logs; the PML monitor has no shard
  // sink, so this also covers the engine's event-buffering fallback.
  if (policy == "write-history") opt.daemon.driver.use_pml = true;
  opt.n_threads = n_threads;
  return opt;
}

void expect_identical(const RunnerResult& a, const RunnerResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns) << label;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.tier1_hitrate),
            std::bit_cast<std::uint64_t>(b.tier1_hitrate))
      << label << " hitrate " << a.tier1_hitrate << " vs " << b.tier1_hitrate;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.protection_faults, b.protection_faults) << label;
}

TEST(ParallelDeterminism, EveryPolicyAndFusionIsThreadCountInvariant) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const sim::SimConfig cfg = parallel_config();
  const std::vector<std::string> policies{
      "first-touch", "history", "oracle", "freq-decay", "write-history"};
  const std::vector<core::FusionMode> fusions{
      core::FusionMode::Sum, core::FusionMode::Max,
      core::FusionMode::Weighted, core::FusionMode::AbitOnly,
      core::FusionMode::TraceOnly};
  for (const std::string& policy : policies) {
    for (const core::FusionMode fusion : fusions) {
      const std::string label =
          policy + "/" + std::string(core::to_string(fusion));
      const RunnerResult t1 =
          EndToEndRunner::run(spec, cfg, parallel_options(policy, fusion, 1));
      const RunnerResult t2 =
          EndToEndRunner::run(spec, cfg, parallel_options(policy, fusion, 2));
      const RunnerResult t8 =
          EndToEndRunner::run(spec, cfg, parallel_options(policy, fusion, 8));
      expect_identical(t1, t2, label + " [1 vs 2 threads]");
      expect_identical(t1, t8, label + " [1 vs 8 threads]");
    }
  }
}

TEST(ParallelDeterminism, RepeatedEightThreadRunsAreIdentical) {
  const auto spec = workloads::find_spec("web_serving", 0.1);
  const sim::SimConfig cfg = parallel_config();
  const RunnerOptions opt =
      parallel_options("history", core::FusionMode::Sum, 8);
  const RunnerResult first = EndToEndRunner::run(spec, cfg, opt);
  for (int i = 0; i < 3; ++i) {
    const RunnerResult repeat = EndToEndRunner::run(spec, cfg, opt);
    expect_identical(first, repeat, "repeat " + std::to_string(i));
  }
}

TEST(ParallelDeterminism, BadgerTrapEmulationIsThreadCountInvariant) {
  // The emulation framework takes protection faults *inside* shard
  // execution (BadgerTrap's per-page counters are shard-disjoint, the
  // global tallies commutative atomics) — fault counts and the injected
  // latency must still be thread-count invariant.
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg = parallel_config();
  cfg.tier1_frames = 1 << 9;       // force spill so poisoned slow pages exist
  cfg.instruction_fetch = true;    // cover the code-page fault path too
  RunnerOptions base = parallel_options("history", core::FusionMode::Sum, 1);
  base.slow_model = SlowMemoryModel::BadgerTrapEmulation;
  const RunnerResult t1 = EndToEndRunner::run(spec, cfg, base);
  base.n_threads = 2;
  const RunnerResult t2 = EndToEndRunner::run(spec, cfg, base);
  base.n_threads = 8;
  const RunnerResult t8 = EndToEndRunner::run(spec, cfg, base);
  EXPECT_GT(t1.protection_faults, 0U);
  expect_identical(t1, t2, "badgertrap [1 vs 2 threads]");
  expect_identical(t1, t8, "badgertrap [1 vs 8 threads]");
}

TEST(ParallelDeterminism, InlineShardsMatchNullPool) {
  // n_threads = 1 constructs no pool at all; the engine must not care.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = parallel_config();
  const RunnerResult inline_run = EndToEndRunner::run(
      spec, cfg, parallel_options("history", core::FusionMode::Sum, 1));
  const RunnerResult pooled_run = EndToEndRunner::run(
      spec, cfg, parallel_options("history", core::FusionMode::Sum, 2));
  expect_identical(inline_run, pooled_run, "inline vs pooled");
}

}  // namespace
}  // namespace tmprof::tiering
