/// Integration tests: paper-level behaviors that cut across every module.
/// Each test is a miniature version of one of the paper's claims.

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 19;
  cfg.tier1_frames = 1 << 15;
  cfg.tier2_frames = 1 << 17;
  return cfg;
}

tiering::CollectOptions fast_options(std::uint32_t epochs = 4) {
  tiering::CollectOptions opt;
  opt.n_epochs = epochs;
  opt.ops_per_epoch = 120000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(1024);
  return opt;
}

/// Section III-B4 / Table I: A-bit staleness from the no-shootdown
/// optimization — with shootdowns the scanner observes at least as many
/// accessed pages, because cached translations stop hiding accesses.
TEST(PaperClaims, NoShootdownHidesSomeAccesses) {
  auto run = [&](bool shootdown) {
    sim::System sys(small_config());
    // Footprint small enough to be TLB-resident.
    const mem::Pid pid = sys.add_process(
        std::make_unique<workloads::UniformWorkload>(1 << 21, 0.0, 1));
    core::DriverConfig cfg;
    cfg.abit.shootdown_on_clear = shootdown;
    core::TmpDriver driver(sys, cfg);
    std::uint64_t observed = 0;
    for (int e = 0; e < 6; ++e) {
      sys.step(40000);
      observed += driver.scan_processes({pid}).pages_accessed;
      driver.end_epoch();
    }
    return observed;
  };
  const std::uint64_t with_shootdown = run(true);
  const std::uint64_t without = run(false);
  EXPECT_GT(with_shootdown, without);
}

/// Section VI-B: IBS trace sampling detects far more pages than A-bit on a
/// huge random workload (GUPS-like), and the reverse holds for a small
/// cache-resident hot set (Web-Serving-like).
TEST(PaperClaims, TraceVsAbitAsymmetry) {
  const auto gups = workloads::find_spec("gups", 0.2);
  tiering::CollectOptions opt = fast_options();
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  const tiering::EpochSeries series =
      tiering::collect_series(gups, small_config(), opt);
  std::uint64_t abit_pages = 0, trace_pages = 0;
  for (const auto& data : series.epochs) {
    abit_pages += data.observed.abit.size();
    trace_pages += data.observed.trace.size();
  }
  // GUPS: huge-page A-bit entries are few; trace samples see 4K spread.
  EXPECT_GT(trace_pages, abit_pages);
}

/// Section VI-C / Fig. 6: the combined (TMP) ranking never loses to the
/// worse single source, and Oracle bounds History from above.
TEST(PaperClaims, CombinedProfileAndOracleOrdering) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const tiering::EpochSeries series =
      tiering::collect_series(spec, small_config(), fast_options(5));
  const std::uint64_t capacity = series.footprint_frames / 8;
  ASSERT_GT(capacity, 0U);

  auto eval = [&](const std::string& policy, core::FusionMode fusion) {
    tiering::HitrateOptions opt;
    opt.capacity_frames = capacity;
    opt.fusion = fusion;
    auto p = tiering::make_policy(policy);
    return tiering::evaluate_policy(*p, series, opt).overall;
  };

  const double oracle = eval("oracle", core::FusionMode::Sum);
  const double history_sum = eval("history", core::FusionMode::Sum);
  const double history_abit = eval("history", core::FusionMode::AbitOnly);
  const double history_trace = eval("history", core::FusionMode::TraceOnly);
  EXPECT_GE(oracle + 1e-9, history_sum);
  EXPECT_GE(history_sum + 1e-9, std::min(history_abit, history_trace));
}

/// Fig. 2's premise: PTW A-bit-set events and LLC-miss events are the same
/// order of magnitude, justifying the simple-sum rank.
TEST(PaperClaims, EventPopulationsComparable) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(64 << 20, 0.1, 3));
  sys.step(300000);
  const auto walks = sys.pmu().truth_total(pmu::Event::PtwAbitSet);
  const auto misses = sys.pmu().truth_total(pmu::Event::LlcMiss);
  ASSERT_GT(walks, 0U);
  ASSERT_GT(misses, 0U);
  const double ratio = static_cast<double>(walks) / static_cast<double>(misses);
  EXPECT_GT(ratio, 0.0001);
  EXPECT_LT(ratio, 10000.0);
}

/// The daemon's full pipeline survives multiple workload types in sequence
/// without leaking state across epochs.
TEST(Integration, DaemonAcrossAllWorkloads) {
  for (const auto& name : workloads::table3_names()) {
    const auto spec = workloads::find_spec(name, 0.1);
    sim::System sys(small_config());
    tiering::add_spec_processes(sys, spec, 7);
    core::DaemonConfig cfg;
    cfg.driver.ibs = monitors::IbsConfig::with_period(512);
    core::TmpDaemon daemon(sys, cfg);
    for (int e = 0; e < 2; ++e) {
      sys.step(40000);
      const core::ProfileSnapshot snap = daemon.tick();
      EXPECT_EQ(snap.epoch, static_cast<std::uint32_t>(e)) << name;
    }
  }
}

}  // namespace
}  // namespace tmprof
