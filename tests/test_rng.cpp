#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace tmprof::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  std::array<int, kBuckets> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / static_cast<int>(kBuckets), n / 100);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0U);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace tmprof::util
