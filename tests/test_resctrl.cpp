#include "sim/resctrl.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 14;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

TEST(Resctrl, OccupancyTracksCacheFootprint) {
  System sys(small_config());
  const mem::Pid busy = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(2 << 20, 0.0, 1));
  const mem::Pid tiny = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 10, 0.0, 2));
  sys.step(40000);
  ResctrlMonitor resctrl(sys);
  const std::uint64_t occ_busy = resctrl.llc_occupancy_bytes(busy);
  const std::uint64_t occ_tiny = resctrl.llc_occupancy_bytes(tiny);
  EXPECT_GT(occ_busy, occ_tiny);
  // The tiny process's whole footprint fits in its occupancy bound.
  EXPECT_LE(occ_tiny, 8U << 10);
  EXPECT_GT(occ_busy, 0U);
}

TEST(Resctrl, BandwidthReadsAreDeltas) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(4 << 20, 0.0, 1));
  ResctrlMonitor resctrl(sys);
  sys.step(20000);
  const MbmReading first = resctrl.read_bandwidth(pid);
  EXPECT_GT(first.bytes, 0U);
  EXPECT_GT(first.interval_ns, 0U);
  EXPECT_GT(first.gib_per_s(), 0.0);
  // Immediately re-reading yields (almost) nothing.
  const MbmReading second = resctrl.read_bandwidth(pid);
  EXPECT_EQ(second.bytes, 0U);
}

TEST(Resctrl, BandwidthAttributedPerProcess) {
  System sys(small_config());
  // A memory-thrashing process vs a cache-resident one.
  const mem::Pid thrasher = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  const mem::Pid resident = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(16 << 10, 0.0, 2));
  ResctrlMonitor resctrl(sys);
  sys.step(40000);
  const MbmReading bw_thrasher = resctrl.read_bandwidth(thrasher);
  const MbmReading bw_resident = resctrl.read_bandwidth(resident);
  EXPECT_GT(bw_thrasher.bytes, bw_resident.bytes * 4);
}

TEST(Resctrl, UtilizationBounded) {
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  ResctrlMonitor resctrl(sys);
  sys.step(50000);
  const double util = resctrl.llc_utilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

TEST(Resctrl, OccupancyLinesOwnerZeroIsUntracked) {
  mem::CacheLevel llc(1 << 16, 8);
  llc.fill(0x0, 7);
  llc.fill(0x40, 7);
  llc.fill(0x80);  // untracked
  EXPECT_EQ(llc.occupancy_lines(7), 2U);
  EXPECT_EQ(llc.occupancy_lines(0), 1U);
  EXPECT_EQ(llc.occupancy_lines(9), 0U);
}

}  // namespace
}  // namespace tmprof::sim
