#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/log.hpp"

namespace tmprof::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Csv, WritesRows) {
  const std::string path = "/tmp/tmprof_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b", "c"});
    csv.write_row({"1", "2", "3"});
    EXPECT_EQ(csv.rows_written(), 2U);
  }
  EXPECT_EQ(slurp(path), "a,b,c\n1,2,3\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = "/tmp/tmprof_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(slurp(path),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(Log, ThresholdFilters) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::Error);
  // Below-threshold lines must not be formatted (cheap no-op); we can only
  // observe the level state here, but the guard is the contract.
  EXPECT_EQ(log_level(), LogLevel::Error);
  TMPROF_LOG_DEBUG << "suppressed " << 42;
  TMPROF_LOG_INFO << "suppressed";
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  TMPROF_LOG_DEBUG << "emitted to stderr";
  set_log_level(old_level);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::Debug),
            static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info),
            static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn),
            static_cast<int>(LogLevel::Error));
}

}  // namespace
}  // namespace tmprof::util
