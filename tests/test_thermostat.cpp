#include "core/thermostat.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 14;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

TEST(Thermostat, SamplesRequestedFraction) {
  sim::System sys(small_config());
  sys.add_process(std::make_unique<workloads::SequentialWorkload>(
      4 << 20, 4096, 0.0, 1));
  sys.step(1024);  // map all 1024 pages
  ThermostatConfig cfg;
  cfg.sample_fraction = 0.1;
  ThermostatClassifier thermostat(sys, cfg);
  const std::uint64_t sampled = thermostat.begin_interval();
  EXPECT_NEAR(static_cast<double>(sampled), 102.4, 40.0);
  (void)thermostat.end_interval();
}

TEST(Thermostat, HotPagesExceedThreshold) {
  sim::System sys(small_config());
  // Hot/cold: a tiny hot set absorbs most accesses.
  sys.add_process(std::make_unique<workloads::HotColdWorkload>(
      4 << 20, 4096, 0.01, 0.95, 0.0, 1));
  sys.step(30000);
  ThermostatConfig cfg;
  cfg.sample_fraction = 1.0;  // classify everything for the test
  cfg.hot_threshold_faults = 3;
  ThermostatClassifier thermostat(sys, cfg);
  thermostat.begin_interval();
  // Poll-and-re-arm several times so hot pages can accumulate faults.
  for (int poll = 0; poll < 6; ++poll) {
    sys.step(10000);
    thermostat.refresh();
  }
  const EpochObservation obs = thermostat.end_interval();
  EXPECT_FALSE(obs.abit.empty());
  ASSERT_FALSE(thermostat.hot_pages().empty());
  // The hot classification must be a small minority of sampled pages
  // (the hot set is ~1% of the footprint).
  EXPECT_LT(thermostat.hot_pages().size(), obs.abit.size());
}

TEST(Thermostat, IntervalsAreIndependent) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  ThermostatConfig cfg;
  cfg.sample_fraction = 1.0;
  ThermostatClassifier thermostat(sys, cfg);
  thermostat.begin_interval();
  sys.access(proc, proc.vaddr_of(0), false, 1);
  const EpochObservation first = thermostat.end_interval();
  EXPECT_FALSE(first.abit.empty());
  // A fresh interval with no traffic observes nothing.
  thermostat.begin_interval();
  const EpochObservation second = thermostat.end_interval();
  EXPECT_TRUE(second.abit.empty());
}

TEST(Thermostat, EndIntervalDisarmsAllSamples) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 18, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  sys.step(5000);
  ThermostatConfig cfg;
  cfg.sample_fraction = 1.0;
  ThermostatClassifier thermostat(sys, cfg);
  thermostat.begin_interval();
  (void)thermostat.end_interval();
  // Any access after the interval must run unfaulted.
  const sim::AccessResult r = sys.access(proc, proc.vaddr_of(64), false, 1);
  EXPECT_FALSE(r.protection_fault);
}

TEST(Thermostat, DoubleBeginRejected) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sys.step(10);
  ThermostatClassifier thermostat(sys, ThermostatConfig{});
  thermostat.begin_interval();
  EXPECT_THROW(thermostat.begin_interval(), util::AssertionError);
}

}  // namespace
}  // namespace tmprof::core
