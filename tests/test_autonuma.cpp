#include "core/autonuma.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 14;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

TEST(AutoNuma, HintFaultsRevealAccessedPages) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  sys.step(20000);  // populate mappings
  AutoNumaConfig cfg;
  cfg.window_pages = 1 << 16;  // cover everything each pass
  AutoNumaProfiler profiler(sys, cfg);
  profiler.protect_pass();
  sys.step(50000);
  const EpochObservation obs = profiler.end_epoch();
  EXPECT_FALSE(obs.abit.empty());
  EXPECT_GT(profiler.faults_taken(), 0U);
  for (const auto& [key, count] : obs.abit) EXPECT_GE(count, 1U);
}

TEST(AutoNuma, OneFaultPerPagePerPass) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  // Touch one page repeatedly.
  for (int i = 0; i < 4; ++i) sys.access(proc, proc.vaddr_of(0), false, 1);
  AutoNumaConfig cfg;
  cfg.window_pages = 64;
  AutoNumaProfiler profiler(sys, cfg);
  profiler.protect_pass();
  for (int i = 0; i < 100; ++i) sys.access(proc, proc.vaddr_of(0), false, 1);
  // Hint fault unprotects: exactly one fault despite 100 accesses.
  EXPECT_EQ(profiler.faults_taken(), 0U);  // counted at end_epoch
  const EpochObservation obs = profiler.end_epoch();
  ASSERT_EQ(obs.abit.size(), 1U);
  EXPECT_EQ(obs.abit.begin()->second, 1U);
}

TEST(AutoNuma, ProtectPassChargesOverhead) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(4 << 20, 0.0, 1));
  sys.step(20000);
  AutoNumaConfig cfg;
  cfg.window_pages = 128;
  AutoNumaProfiler profiler(sys, cfg);
  const util::SimNs before = sys.now();
  const util::SimNs cost = profiler.protect_pass();
  EXPECT_GT(cost, 0U);
  EXPECT_EQ(sys.now(), before + cost);
  EXPECT_EQ(profiler.overhead_ns(), cost);
}

TEST(AutoNuma, WindowSlidesAcrossPasses) {
  sim::System sys(small_config());
  sys.add_process(std::make_unique<workloads::SequentialWorkload>(
      1 << 20, 4096, 0.0, 1));
  sys.step(256);  // touch all 256 pages in order
  AutoNumaConfig cfg;
  cfg.window_pages = 64;  // a quarter of the footprint per pass
  AutoNumaProfiler profiler(sys, cfg);
  std::size_t total_pages_seen = 0;
  for (int pass = 0; pass < 4; ++pass) {
    profiler.protect_pass();
    sys.step(512);  // two sweeps touch every page
    total_pages_seen += profiler.end_epoch().abit.size();
  }
  // Four sliding windows of 64 pages cover most of the 256-page table.
  EXPECT_GT(total_pages_seen, 200U);
}

TEST(AutoNuma, EpochsReportDeltasNotTotals) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  AutoNumaConfig cfg;
  cfg.window_pages = 64;
  AutoNumaProfiler profiler(sys, cfg);
  profiler.protect_pass();
  sys.access(proc, proc.vaddr_of(0), false, 1);
  EXPECT_EQ(profiler.end_epoch().abit.size(), 1U);
  // No new faults since: the next epoch must be empty.
  EXPECT_TRUE(profiler.end_epoch().abit.empty());
}

TEST(AutoNuma, DestructorDisarmsOutstandingProtections) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sim::Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  {
    AutoNumaConfig cfg;
    cfg.window_pages = 64;
    AutoNumaProfiler profiler(sys, cfg);
    profiler.protect_pass();
  }
  // Poison removed: this access must not need a fault handler.
  const sim::AccessResult r = sys.access(proc, proc.vaddr_of(0), false, 1);
  EXPECT_FALSE(r.protection_fault);
}

}  // namespace
}  // namespace tmprof::core
