#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 14;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

const char* kPath = "/tmp/tmprof_trace_test.bin";

TEST(TraceIo, RecordsEveryMemOp) {
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(2 << 20, 0.3, 1));
  {
    TraceWriter writer(kPath);
    sys.add_observer(&writer);
    sys.step(5000);
    sys.remove_observer(&writer);
    EXPECT_EQ(writer.records_written(), 5000U);
  }  // destructor flushes

  struct Counter final : monitors::AccessObserver {
    std::uint64_t ops = 0;
    std::uint64_t stores = 0;
    void on_mem_op(const monitors::MemOpEvent& ev) override {
      ++ops;
      stores += ev.is_store ? 1 : 0;
    }
  } counter;
  TraceReplayer replayer(kPath);
  replayer.add_observer(&counter);
  EXPECT_EQ(replayer.replay(), 5000U);
  EXPECT_EQ(counter.ops, 5000U);
  EXPECT_GT(counter.stores, 0U);
  EXPECT_LT(counter.stores, counter.ops);
}

TEST(TraceIo, ReplayPreservesFields) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  {
    TraceWriter writer(kPath);
    sys.add_observer(&writer);
    sys.access(proc, proc.vaddr_of(0x123), true, 7);
    sys.remove_observer(&writer);
  }
  monitors::MemOpEvent got;
  struct Grabber final : monitors::AccessObserver {
    monitors::MemOpEvent* out;
    void on_mem_op(const monitors::MemOpEvent& ev) override { *out = ev; }
  } grabber;
  grabber.out = &got;
  TraceReplayer replayer(kPath);
  replayer.add_observer(&grabber);
  replayer.replay();
  EXPECT_EQ(got.pid, pid);
  EXPECT_EQ(got.vaddr, proc.vaddr_of(0x123));
  EXPECT_EQ(got.ip, 7U);
  EXPECT_TRUE(got.is_store);
  EXPECT_TRUE(mem::is_memory(got.source));  // cold access reached memory
}

TEST(TraceIo, IbsOverReplayMatchesLiveStatistically) {
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(4 << 20, 0.0, 1));
  monitors::IbsConfig ibs_cfg = monitors::IbsConfig::with_period(256);
  monitors::IbsMonitor live(ibs_cfg, sys.config().cores, 1);
  {
    TraceWriter writer(kPath);
    sys.add_observer(&writer);
    sys.add_observer(&live);
    sys.step(50000);
    sys.remove_observer(&writer);
    sys.remove_observer(&live);
  }
  monitors::IbsMonitor replayed(ibs_cfg, sys.config().cores, 1);
  TraceReplayer replayer(kPath);
  replayer.add_observer(&replayed);
  replayer.replay(0, sys.config().uops_per_op);
  // Same seed, same retire stream => identical sample counts.
  EXPECT_EQ(replayed.samples_taken(), live.samples_taken());
}

TEST(TraceIo, PartialReplayStopsEarly) {
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 18, 0.0, 1));
  {
    TraceWriter writer(kPath);
    sys.add_observer(&writer);
    sys.step(1000);
    sys.remove_observer(&writer);
  }
  TraceReplayer replayer(kPath);
  EXPECT_EQ(replayer.replay(250), 250U);
}

TEST(TraceIo, RejectsBadFiles) {
  EXPECT_THROW(TraceReplayer("/nonexistent/trace.bin"), std::runtime_error);
  EXPECT_THROW(TraceWriter("/nonexistent/dir/trace.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace tmprof::sim
