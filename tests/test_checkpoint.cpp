#include "util/ckpt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/ranking.hpp"
#include "monitors/devmon.hpp"
#include "tiering/admission.hpp"
#include "tiering/epoch.hpp"
#include "tiering/runner.hpp"
#include "tiering/tenant.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::util::ckpt {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the gtest temp root.
fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tmprof-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Format primitives.

TEST(CkptFormat, PrimitivesRoundTrip) {
  Writer w;
  w.begin_section("prims");
  w.put_u8(0);
  w.put_u8(255);
  w.put_u32(0xdeadbeef);
  w.put_u64(std::numeric_limits<std::uint64_t>::max());
  w.put_i64(std::numeric_limits<std::int64_t>::min());
  w.put_bool(true);
  w.put_bool(false);
  w.put_f64(-0.0);
  w.put_f64(std::numeric_limits<double>::infinity());
  w.put_f64(std::numeric_limits<double>::denorm_min());
  w.put_str("");
  w.put_str("tiered memory");
  const std::uint8_t blob[3] = {1, 2, 3};
  w.put_bytes(blob, sizeof blob);
  w.end_section();

  Reader r(w.finish());
  r.enter_section("prims");
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_EQ(r.get_u8(), 255);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefU);
  EXPECT_EQ(r.get_u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.get_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.get_str(), "");
  EXPECT_EQ(r.get_str(), "tiered memory");
  std::uint8_t out[3] = {};
  r.get_bytes(out, sizeof out);
  EXPECT_EQ(std::memcmp(out, blob, sizeof blob), 0);
  r.end_section();
}

TEST(CkptFormat, NanPayloadBitsSurvive) {
  // A quiet NaN with a distinctive payload must round-trip bit-exactly;
  // value comparison can't see it, so compare the raw bit patterns.
  const std::uint64_t nan_bits = 0x7ff8dead'beef1234ULL;
  double nan_value = 0;
  std::memcpy(&nan_value, &nan_bits, sizeof nan_value);

  Writer w;
  w.begin_section("nan");
  w.put_f64(nan_value);
  w.end_section();
  Reader r(w.finish());
  r.enter_section("nan");
  const double back = r.get_f64();
  std::uint64_t back_bits = 0;
  std::memcpy(&back_bits, &back, sizeof back_bits);
  EXPECT_EQ(back_bits, nan_bits);
  r.end_section();
}

TEST(CkptFormat, SectionDirectoryAndEmptySections) {
  Writer w;
  w.begin_section("alpha");
  w.end_section();  // empty payload is legal
  w.begin_section("beta");
  w.put_u32(7);
  w.end_section();
  Reader r(w.finish());
  EXPECT_EQ(r.section_names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(r.has_section("alpha"));
  EXPECT_FALSE(r.has_section("gamma"));
  r.enter_section("alpha");
  r.end_section();
  // Out-of-order access is fine: sections are a directory, not a stream.
  r.enter_section("beta");
  EXPECT_EQ(r.get_u32(), 7U);
  r.end_section();
}

TEST(CkptFormat, EmptyImageRoundTrips) {
  Writer w;
  Reader r(w.finish());
  EXPECT_TRUE(r.section_names().empty());
}

TEST(CkptFormat, MissingSectionThrowsWithName) {
  Writer w;
  w.begin_section("present");
  w.end_section();
  Reader r(w.finish());
  try {
    r.enter_section("absent");
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "absent");
  }
}

TEST(CkptFormat, TrailingUnreadBytesThrow) {
  // Reader/writer field-list skew shows up as unconsumed payload; the
  // section close must catch it and name the section.
  Writer w;
  w.begin_section("skewed");
  w.put_u64(1);
  w.put_u64(2);
  w.end_section();
  Reader r(w.finish());
  r.enter_section("skewed");
  EXPECT_EQ(r.get_u64(), 1U);
  try {
    r.end_section();
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "skewed");
  }
}

TEST(CkptFormat, ReadPastSectionEndThrows) {
  Writer w;
  w.begin_section("short");
  w.put_u8(9);
  w.end_section();
  Reader r(w.finish());
  r.enter_section("short");
  EXPECT_EQ(r.get_u8(), 9);
  EXPECT_THROW(r.get_u64(), CkptError);
}

// ---------------------------------------------------------------------------
// Corruption matrix. The sample image mirrors a real checkpoint: several
// sections of different sizes, including an empty one.

std::vector<std::uint8_t> sample_image() {
  Writer w;
  w.begin_section("meta");
  w.put_str("runner");
  w.put_u64(42);
  w.end_section();
  w.begin_section("empty");
  w.end_section();
  w.begin_section("state");
  for (std::uint32_t i = 0; i < 16; ++i) w.put_u64(i * 0x0101010101010101ULL);
  w.end_section();
  return w.finish();
}

/// A checkpoint image holding real sketch-mode sections (count-min cells,
/// Bloom words, a sketch-mode HotnessStore) so the corruption matrix below
/// also covers the probabilistic state introduced by docs/SKETCH.md.
std::vector<std::uint8_t> sketch_image() {
  util::CountMinSketch cms(64, 3, 7);
  util::BloomFilter bloom(256, 4, 7);
  core::HotnessConfig cfg;
  cfg.mode = core::HotnessMode::Sketch;
  cfg.sketch.width = 64;
  cfg.sketch.depth = 2;
  cfg.candidates = 32;
  tmprof::core::HotnessCounts store(cfg);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t page = rng.below(64);
    cms.add(page, 1);
    bloom.insert(page);
    store.add(core::PageKey{1, page << mem::kPageShift});
  }
  Writer w;
  w.begin_section("cms");
  cms.save_state(w);
  w.end_section();
  w.begin_section("bloom");
  bloom.save_state(w);
  w.end_section();
  w.begin_section("store");
  store.save_state(w, "store");
  w.end_section();
  return w.finish();
}

/// A checkpoint image holding a populated AdmissionController (per-page
/// rank history, live cool-downs, a drained token bucket, retuned adaptive
/// threshold and the internal registry) so the corruption matrix also
/// covers the admission state introduced by docs/ADMISSION.md.
std::vector<std::uint8_t> admission_image() {
  tiering::AdmissionConfig cfg;
  cfg.mode = tiering::AdmissionMode::Adaptive;
  cfg.min_history = 1;
  cfg.bandwidth_bytes_per_sec = 64ULL << mem::kPageShift;
  cfg.burst_bytes = 16ULL << mem::kPageShift;
  cfg.cooldown_epochs = 2;
  cfg.max_moves_per_epoch = 8;
  tiering::AdmissionController adm(cfg);
  util::Rng rng(11);
  for (std::uint32_t epoch = 1; epoch <= 6; ++epoch) {
    std::vector<core::PageRank> ranking;
    for (std::uint64_t p = 0; p < 24; ++p) {
      if (rng.below(3) == 0) continue;
      core::PageRank r;
      r.key = core::PageKey{1, p << mem::kPageShift};
      r.rank = 1 + rng.below(16);
      ranking.push_back(r);
    }
    adm.begin_epoch(epoch * util::kMillisecond, ranking);
    for (const core::PageRank& r : ranking) {
      const auto verdict = adm.decide(r.key, mem::kPageSize);
      if (verdict == tiering::AdmissionDecision::Admit && rng.below(2) == 0) {
        adm.note_demoted(r.key);  // arm the ping-pong detector
      }
    }
  }
  Writer w;
  w.begin_section("admission");
  adm.save_state(w);
  w.end_section();
  return w.finish();
}

/// A checkpoint image holding a populated DevMonitor over a three-tier
/// chain (occupied counter slots on two devices, live statistics, and
/// unmerged per-core lane tallies) so the corruption matrix also covers
/// the device-counter state introduced by docs/TOPOLOGY.md.
std::vector<std::uint8_t> devmon_image() {
  const mem::PhysMemory phys({mem::TierSpec{"dram", 16, 80, 80, 0},
                              mem::TierSpec{"cxl", 32, 150, 200, 0},
                              mem::TierSpec{"nvm", 64, 300, 600, 0}});
  monitors::DevMonConfig cfg;
  cfg.enabled = true;
  cfg.slots = 8;
  cfg.top_k = 4;
  monitors::DevMonitor mon(cfg, phys, 2);
  Rng rng(7);
  const auto fill = [&mon](mem::Pfn pfn, std::uint32_t core) {
    monitors::MemOpEvent ev;
    ev.core = core;
    ev.paddr = pfn << mem::kPageShift;
    ev.source = mem::DataSource::MemTier2;
    mon.on_mem_op(ev);
  };
  // Slow-tier pfns are 16..111; overfill the 8-slot arrays so evictions
  // and saturated counters ride in the image too.
  for (int i = 0; i < 300; ++i) {
    fill(16 + rng.below(96), static_cast<std::uint32_t>(rng.below(2)));
  }
  mon.drain();  // merged + decayed device arrays
  for (int i = 0; i < 50; ++i) {
    fill(16 + rng.below(96), static_cast<std::uint32_t>(rng.below(2)));
  }
  Writer w;
  w.begin_section("devmon");
  mon.save_state(w);
  w.end_section();
  return w.finish();
}

/// True when the (possibly corrupted) image is safely rejected: the parse
/// throws a typed CkptError, or it parses but no longer serves the exact
/// section set of the intact file (a truncation at a frame boundary yields
/// a valid shorter file — resume then fails on the missing section).
bool rejected_or_degraded(const std::vector<std::uint8_t>& image,
                          const std::vector<std::string>& want_names) {
  try {
    Reader r(image);
    return r.section_names() != want_names;
  } catch (const CkptError&) {
    return true;
  }
}

TEST(CkptCorruption, TruncationAtEveryLengthRejected) {
  const std::vector<std::uint8_t> image = sample_image();
  const std::vector<std::string> names =
      Reader(image).section_names();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_TRUE(rejected_or_degraded(prefix, names))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CkptCorruption, EverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image = sample_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = image;
      flipped[byte] = static_cast<std::uint8_t>(
          flipped[byte] ^ (1U << bit));
      EXPECT_TRUE(rejected_or_degraded(flipped, names))
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(CkptCorruption, SketchSectionsTruncationAtEveryLengthRejected) {
  const std::vector<std::uint8_t> image = sketch_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_TRUE(rejected_or_degraded(prefix, names))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CkptCorruption, SketchSectionsEverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image = sketch_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = image;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1U << bit));
      EXPECT_TRUE(rejected_or_degraded(flipped, names))
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(CkptCorruption, AdmissionSectionTruncationAtEveryLengthRejected) {
  const std::vector<std::uint8_t> image = admission_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_TRUE(rejected_or_degraded(prefix, names))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CkptCorruption, AdmissionSectionEverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image = admission_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = image;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1U << bit));
      EXPECT_TRUE(rejected_or_degraded(flipped, names))
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(CkptCorruption, DevmonSectionTruncationAtEveryLengthRejected) {
  const std::vector<std::uint8_t> image = devmon_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_TRUE(rejected_or_degraded(prefix, names))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CkptCorruption, DevmonSectionEverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image = devmon_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = image;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1U << bit));
      EXPECT_TRUE(rejected_or_degraded(flipped, names))
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(CkptCorruption, DevmonGeometryMismatchRejected) {
  // A devmon image only grafts onto a monitor with identical geometry:
  // different slot counts, chain lengths, or lane counts all throw.
  const std::vector<std::uint8_t> image = devmon_image();
  Reader good(image);
  const mem::PhysMemory three({mem::TierSpec{"dram", 16, 80, 80, 0},
                               mem::TierSpec{"cxl", 32, 150, 200, 0},
                               mem::TierSpec{"nvm", 64, 300, 600, 0}});
  const mem::PhysMemory two({mem::TierSpec{"dram", 16, 80, 80, 0},
                             mem::TierSpec{"nvm", 64, 300, 600, 0}});
  monitors::DevMonConfig cfg;
  cfg.enabled = true;
  cfg.slots = 8;
  cfg.top_k = 4;

  monitors::DevMonitor same(cfg, three, 2);
  good.enter_section("devmon");
  same.load_state(good);  // round-trips cleanly
  good.end_section();

  monitors::DevMonitor short_chain(cfg, two, 2);
  Reader r1(image);
  r1.enter_section("devmon");
  EXPECT_THROW(short_chain.load_state(r1), CkptError);

  monitors::DevMonConfig wide = cfg;
  wide.slots = 16;
  monitors::DevMonitor more_slots(wide, three, 2);
  Reader r2(image);
  r2.enter_section("devmon");
  EXPECT_THROW(more_slots.load_state(r2), CkptError);

  monitors::DevMonitor more_lanes(cfg, three, 4);
  Reader r3(image);
  r3.enter_section("devmon");
  EXPECT_THROW(more_lanes.load_state(r3), CkptError);
}

/// A checkpoint image holding a populated TenantArbiter (decayed benefit,
/// live grants, partial charges, reclaim/shed tallies and a bandwidth
/// carve) framed exactly the way the runner writes its "tenant" section,
/// so the corruption matrix also covers the fleet arbitration state
/// introduced by docs/CONSOLIDATION.md.
std::vector<std::uint8_t> tenant_image() {
  tiering::TenantArbiter arbiter;
  arbiter.set_capacity(512);
  const auto make = [](const char* name, tiering::QosClass qos,
                       std::uint64_t floor, std::uint32_t bw) {
    tiering::TenantSpec spec;
    spec.name = name;
    spec.qos = qos;
    spec.floor_frames = floor;
    spec.bandwidth_weight = bw;
    return spec;
  };
  arbiter.register_tenant(1, make("service", tiering::QosClass::Latency,
                                  256, 4));
  arbiter.register_tenant(2, make("batch_1", tiering::QosClass::Batch, 0, 1));
  arbiter.register_tenant(3, make("batch_2", tiering::QosClass::Batch, 0, 1));
  util::Rng rng(17);
  for (std::uint32_t epoch = 1; epoch <= 5; ++epoch) {
    const std::vector<std::uint64_t> heat{rng.below(5000), rng.below(900),
                                          rng.below(900)};
    const std::vector<std::uint64_t> demand{200 + rng.below(200),
                                            rng.below(256), rng.below(256)};
    arbiter.begin_epoch(heat, demand, 64ULL << mem::kPageShift);
    for (mem::Pid pid = 1; pid <= 3; ++pid) {
      (void)arbiter.try_charge_frames(pid, 1 + rng.below(64));
      (void)arbiter.try_charge_bandwidth(pid, rng.below(32) << mem::kPageShift);
      (void)arbiter.next_move_seq(arbiter.tenant_of(pid));
    }
    arbiter.note_reclaimed(2, rng.below(16));
    arbiter.note_hitrate_bp(0, 9000 + rng.below(1000));
  }
  Writer w;
  w.begin_section("tenant");
  w.put_bool(true);
  arbiter.save_state(w);
  w.end_section();
  return w.finish();
}

TEST(CkptCorruption, TenantSectionTruncationAtEveryLengthRejected) {
  const std::vector<std::uint8_t> image = tenant_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_TRUE(rejected_or_degraded(prefix, names))
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(CkptCorruption, TenantSectionEverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> image = tenant_image();
  const std::vector<std::string> names = Reader(image).section_names();
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = image;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1U << bit));
      EXPECT_TRUE(rejected_or_degraded(flipped, names))
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(CkptCorruption, PayloadFlipNamesItsSection) {
  // A flip inside a section's payload must be attributed to that section.
  Writer w;
  w.begin_section("meta");
  w.put_u64(1);
  w.end_section();
  w.begin_section("victim");
  w.put_u64(0);
  w.end_section();
  std::vector<std::uint8_t> image = w.finish();
  // The last frame's payload starts 12 bytes from the end (8 payload +
  // 4 CRC); flip its first payload byte.
  image[image.size() - 12] ^= 0x01;
  try {
    Reader r(image);
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "victim");
  }
}

TEST(CkptCorruption, BadMagicRejectedAsHeader) {
  std::vector<std::uint8_t> image = sample_image();
  image[0] ^= 0xff;
  try {
    Reader r(image);
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "<header>");
  }
}

TEST(CkptCorruption, VersionSkewRejectedAsHeader) {
  std::vector<std::uint8_t> image = sample_image();
  image[sizeof kMagic] = kFormatVersion + 1;  // version is LE u32 after magic
  try {
    Reader r(image);
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "<header>");
  }
}

// ---------------------------------------------------------------------------
// Atomic writes, discovery and retention.

TEST(CkptIo, SaveAtomicLeavesNoTempFile) {
  const fs::path dir = temp_dir("atomic");
  const std::string path = (dir / "a.tmck").string();
  Writer w;
  w.begin_section("s");
  w.put_u64(1);
  w.end_section();
  Writer::save_atomic(path, w.finish());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  Reader r = Reader::from_file(path);
  r.enter_section("s");
  EXPECT_EQ(r.get_u64(), 1U);
  r.end_section();

  // Overwrite: the new image replaces the old one completely.
  Writer w2;
  w2.begin_section("s");
  w2.put_u64(2);
  w2.end_section();
  Writer::save_atomic(path, w2.finish());
  Reader r2 = Reader::from_file(path);
  r2.enter_section("s");
  EXPECT_EQ(r2.get_u64(), 2U);
  r2.end_section();
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(CkptIo, MissingDirectoryThrowsIoError) {
  const fs::path dir = temp_dir("missing-io");
  const std::string path = (dir / "nope" / "a.tmck").string();
  Writer w;
  try {
    Writer::save_atomic(path, w.finish());
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "<io>");
  }
}

TEST(CkptIo, UnreadableFileThrowsIoError) {
  const fs::path dir = temp_dir("missing-file");
  try {
    (void)Reader::from_file((dir / "absent.tmck").string());
    FAIL() << "expected CkptError";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.section(), "<io>");
  }
}

TEST(CkptIo, LatestInAndPrune) {
  const fs::path dir = temp_dir("retention");
  Writer w;
  const std::vector<std::uint8_t> image = w.finish();
  for (const std::uint32_t epoch : {1U, 3U, 5U, 12U}) {
    Writer::save_atomic(checkpoint_path(dir.string(), "run", epoch), image);
  }
  Writer::save_atomic(checkpoint_path(dir.string(), "other", 99), image);

  EXPECT_EQ(latest_in(dir.string(), "run"),
            checkpoint_path(dir.string(), "run", 12));
  EXPECT_EQ(latest_in(dir.string(), "none"), "");

  prune(dir.string(), "run", 2);
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.string(), "run", 1)));
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.string(), "run", 3)));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), "run", 5)));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), "run", 12)));
  // A different basename in the same directory is untouched.
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), "other", 99)));
}

}  // namespace
}  // namespace tmprof::util::ckpt

// ---------------------------------------------------------------------------
// Randomized state round-trips: serialize → load → serialize again must be
// byte-identical (deep equality without needing accessors for every field).

namespace tmprof::tiering {
namespace {

namespace fs = std::filesystem;
using util::ckpt::CkptError;
using util::ckpt::Reader;
using util::ckpt::Writer;

core::PageKey random_key(util::Rng& rng) {
  return core::PageKey{static_cast<mem::Pid>(1 + rng.below(8)),
                       rng.below(1 << 16) << mem::kPageShift};
}

EpochSeries random_series(std::uint64_t seed, std::uint32_t n_epochs) {
  util::Rng rng(seed);
  EpochSeries series;
  for (std::uint32_t e = 0; e < n_epochs; ++e) {
    EpochData data;
    data.epoch = e;
    const std::uint64_t pages = rng.below(64);
    for (std::uint64_t i = 0; i < pages; ++i) {
      const core::PageKey key = random_key(rng);
      data.truth[key] += 1 + rng.below(1000);
      data.truth_total += data.truth[key];
      if (rng.chance(0.5)) {
        data.observed.abit[key] =
            static_cast<std::uint32_t>(1 + rng.below(16));
      }
      if (rng.chance(0.5)) {
        data.observed.trace[key] =
            static_cast<std::uint32_t>(rng.below(4096));
      }
      if (rng.chance(0.25)) {
        data.observed.writes[key] =
            static_cast<std::uint32_t>(rng.below(64));
      }
      if (rng.chance(0.2)) data.new_pages.push_back(key);
      series.page_sizes[key] =
          rng.chance(0.1) ? mem::PageSize::k2M : mem::PageSize::k4K;
    }
    data.observed.epoch = e;
    series.epochs.push_back(std::move(data));
  }
  series.footprint_frames = rng.below(1 << 20);
  series.degrade.trace_dropped = rng.below(100);
  series.degrade.scans_aborted = rng.below(100);
  series.degrade.hwpc_wraps = rng.below(100);
  return series;
}

std::vector<std::uint8_t> series_image(const EpochSeries& series) {
  Writer w;
  w.begin_section("series");
  save_series(w, series);
  w.end_section();
  return w.finish();
}

TEST(CkptState, SeriesRoundTripRandomized) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 0xfeedULL}) {
    const EpochSeries original = random_series(seed, 6);
    const std::vector<std::uint8_t> image = series_image(original);
    Reader r(image);
    r.enter_section("series");
    EpochSeries loaded;
    load_series(r, loaded);
    r.end_section();
    // Deep equality via canonical re-serialization (maps are written in
    // sorted key order, so equal state ⇒ equal bytes).
    EXPECT_EQ(series_image(loaded), image) << "seed " << seed;
    ASSERT_EQ(loaded.epochs.size(), original.epochs.size());
    EXPECT_EQ(loaded.epochs.back().truth, original.epochs.back().truth);
    EXPECT_EQ(loaded.page_sizes, original.page_sizes);
    EXPECT_EQ(loaded.footprint_frames, original.footprint_frames);
  }
}

TEST(CkptState, EmptySeriesRoundTrips) {
  const EpochSeries empty;
  const std::vector<std::uint8_t> image = series_image(empty);
  Reader r(image);
  r.enter_section("series");
  EpochSeries loaded;
  load_series(r, loaded);
  r.end_section();
  EXPECT_TRUE(loaded.epochs.empty());
  EXPECT_TRUE(loaded.page_sizes.empty());
  EXPECT_EQ(loaded.footprint_frames, 0U);
}

TEST(CkptState, PageCountsAndRankingRoundTrip) {
  util::Rng rng(7);
  core::PageCountMap counts;
  std::vector<core::PageRank> ranking;
  for (int i = 0; i < 100; ++i) {
    const core::PageKey key = random_key(rng);
    counts[key] = static_cast<std::uint32_t>(rng.below(1 << 20));
    ranking.push_back(core::PageRank{key, rng.below(1 << 20),
                                     static_cast<std::uint32_t>(rng.below(9)),
                                     static_cast<std::uint32_t>(rng.below(9)),
                                     static_cast<std::uint32_t>(rng.below(9))});
  }
  Writer w;
  w.begin_section("s");
  core::save_page_counts(w, counts);
  core::save_ranking(w, ranking);
  w.end_section();
  Reader r(w.finish());
  r.enter_section("s");
  core::PageCountMap counts2;
  std::vector<core::PageRank> ranking2;
  core::load_page_counts(r, counts2);
  core::load_ranking(r, ranking2);
  r.end_section();
  EXPECT_EQ(counts2, counts);
  ASSERT_EQ(ranking2.size(), ranking.size());
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ(ranking2[i].key, ranking[i].key);
    EXPECT_EQ(ranking2[i].rank, ranking[i].rank);
    EXPECT_EQ(ranking2[i].abit, ranking[i].abit);
    EXPECT_EQ(ranking2[i].trace, ranking[i].trace);
    EXPECT_EQ(ranking2[i].writes, ranking[i].writes);
  }
}

// ---------------------------------------------------------------------------
// End-to-end resume: checkpoint mid-run, resume, compare bitwise.

sim::SimConfig tiny_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 9;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

RunnerOptions tiny_runner(const std::string& policy) {
  RunnerOptions opt;
  opt.policy = policy;
  opt.n_epochs = 5;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  return opt;
}

/// Bit-faithful equality for RunnerResult (doubles via their bit patterns).
void expect_bitwise_equal(const RunnerResult& a, const RunnerResult& b) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  std::uint64_t ha = 0, hb = 0;
  std::memcpy(&ha, &a.tier1_hitrate, sizeof ha);
  std::memcpy(&hb, &b.tier1_hitrate, sizeof hb);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.protection_faults, b.protection_faults);
  EXPECT_EQ(a.profiling_overhead_ns, b.profiling_overhead_ns);
  EXPECT_EQ(a.moves.promoted, b.moves.promoted);
  EXPECT_EQ(a.moves.demoted, b.moves.demoted);
  EXPECT_EQ(a.moves.retried, b.moves.retried);
  EXPECT_EQ(a.moves.deferred, b.moves.deferred);
  EXPECT_EQ(a.moves.aborted, b.moves.aborted);
  EXPECT_EQ(a.moves.no_room, b.moves.no_room);
  EXPECT_EQ(a.moves.rejected, b.moves.rejected);
  EXPECT_EQ(a.moves.cooled, b.moves.cooled);
  EXPECT_EQ(a.moves.shed, b.moves.shed);
  EXPECT_EQ(a.moves.moved_bytes, b.moves.moved_bytes);
  EXPECT_EQ(a.degrade.throttled_epochs, b.degrade.throttled_epochs);
  EXPECT_EQ(a.degrade.hwpc_wraps, b.degrade.hwpc_wraps);
  EXPECT_EQ(a.degrade.scans_aborted, b.degrade.scans_aborted);
  EXPECT_EQ(a.degrade.trace_dropped, b.degrade.trace_dropped);
  EXPECT_EQ(a.degrade.pinned_epochs, b.degrade.pinned_epochs);
  EXPECT_EQ(a.degrade.fallback_epochs, b.degrade.fallback_epochs);
  EXPECT_EQ(a.degrade.qos_fallback_epochs, b.degrade.qos_fallback_epochs);
  const auto bits = [](double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  ASSERT_EQ(a.process_hitrates.size(), b.process_hitrates.size());
  for (std::size_t i = 0; i < a.process_hitrates.size(); ++i) {
    EXPECT_EQ(bits(a.process_hitrates[i]), bits(b.process_hitrates[i]));
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].name, b.tenants[i].name);
    EXPECT_EQ(bits(a.tenants[i].hitrate), bits(b.tenants[i].hitrate));
    EXPECT_EQ(a.tenants[i].grant_frames, b.tenants[i].grant_frames);
    EXPECT_EQ(a.tenants[i].demand_frames, b.tenants[i].demand_frames);
    EXPECT_EQ(a.tenants[i].occupancy_frames, b.tenants[i].occupancy_frames);
    EXPECT_EQ(a.tenants[i].quota_shed, b.tenants[i].quota_shed);
    EXPECT_EQ(a.tenants[i].reclaimed_frames, b.tenants[i].reclaimed_frames);
    EXPECT_EQ(a.tenants[i].bandwidth_rejected, b.tenants[i].bandwidth_rejected);
  }
}

TEST(CkptResume, CheckpointingDoesNotPerturbResults) {
  // Acceptance: a run with checkpointing enabled is bitwise identical to
  // the same run without it.
  const auto spec = workloads::find_spec("gups", 0.05);
  const RunnerResult plain =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner("history"));
  // Deliberately not pre-created (and nested): enabling checkpoints must
  // mkdir -p the directory instead of aborting on the first save.
  const fs::path dir =
      fs::path(::testing::TempDir()) / "tmprof-noperturb" / "nested";
  fs::remove_all(dir.parent_path());
  RunnerOptions opt = tiny_runner("history");
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  const RunnerResult with_ckpt =
      EndToEndRunner::run(spec, tiny_config(), opt);
  expect_bitwise_equal(with_ckpt, plain);
  EXPECT_NE(util::ckpt::latest_in(dir.string(), "ckpt"), "");
}

TEST(CkptResume, RunnerResumesBitwiseIdentical) {
  const auto spec = workloads::find_spec("gups", 0.05);
  for (const char* policy : {"history", "oracle", "freq-decay"}) {
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("tmprof-resume-" + std::string(policy));
    fs::remove_all(dir);
    fs::create_directories(dir);

    const RunnerResult reference =
        EndToEndRunner::run(spec, tiny_config(), tiny_runner(policy));

    // Full run with checkpoints every epoch, then re-run from epoch 3's.
    RunnerOptions opt = tiny_runner(policy);
    opt.checkpoint.every = 1;
    opt.checkpoint.dir = dir.string();
    opt.checkpoint.keep_last = 16;
    (void)EndToEndRunner::run(spec, tiny_config(), opt);

    RunnerOptions resume = tiny_runner(policy);
    resume.checkpoint.resume_from =
        util::ckpt::checkpoint_path(dir.string(), "ckpt", 3);
    ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from)) << policy;
    const RunnerResult resumed =
        EndToEndRunner::run(spec, tiny_config(), resume);
    expect_bitwise_equal(resumed, reference);
  }
}

TEST(CkptResume, ShardedCollectResumesIdentical) {
  const auto spec = workloads::find_spec("gups", 0.05);
  CollectOptions collect;
  collect.n_epochs = 4;
  collect.ops_per_epoch = 30000;
  collect.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  collect.n_threads = 1;  // sharded engine, inline
  const EpochSeries reference =
      collect_series(spec, tiny_config(), collect);

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-collect";
  fs::remove_all(dir);
  fs::create_directories(dir);
  CollectOptions ck = collect;
  ck.checkpoint.every = 2;
  ck.checkpoint.dir = dir.string();
  (void)collect_series(spec, tiny_config(), ck);

  CollectOptions resume = collect;
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  const EpochSeries resumed = collect_series(spec, tiny_config(), resume);
  EXPECT_EQ(series_image(resumed), series_image(reference));
}

TEST(CkptResume, SketchModeCollectResumesIdentical) {
  // The sketch front-end's state (count-min cells, Bloom words, candidate
  // sets, admission floors) rides in the checkpoint; a kill-and-resume run
  // must be byte-identical to the uninterrupted one, exactly as in exact
  // mode.
  const auto spec = workloads::find_spec("gups", 0.05);
  CollectOptions collect;
  collect.n_epochs = 4;
  collect.ops_per_epoch = 30000;
  collect.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  collect.daemon.driver.hotness.mode = core::HotnessMode::Sketch;
  collect.daemon.driver.hotness.sketch.width = 1 << 12;
  collect.daemon.driver.hotness.candidates = 1 << 13;
  collect.n_threads = 1;  // sharded engine, inline
  const EpochSeries reference = collect_series(spec, tiny_config(), collect);

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-collect-sketch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  CollectOptions ck = collect;
  ck.checkpoint.every = 2;
  ck.checkpoint.dir = dir.string();
  (void)collect_series(spec, tiny_config(), ck);

  CollectOptions resume = collect;
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  const EpochSeries resumed = collect_series(spec, tiny_config(), resume);
  EXPECT_EQ(series_image(resumed), series_image(reference));

  // A checkpoint written in sketch mode must not graft onto an exact-mode
  // run: the mode byte rejects it and the run cold-starts.
  CollectOptions exact_resume = collect;
  exact_resume.daemon.driver.hotness = core::HotnessConfig{};
  const EpochSeries exact_reference =
      collect_series(spec, tiny_config(), exact_resume);
  exact_resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  const EpochSeries exact_resumed =
      collect_series(spec, tiny_config(), exact_resume);
  EXPECT_EQ(series_image(exact_resumed), series_image(exact_reference));
}

TEST(CkptResume, CorruptCheckpointFallsBackToColdStart) {
  const auto spec = workloads::find_spec("gups", 0.05);
  const RunnerResult reference =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner("history"));

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RunnerOptions opt = tiny_runner("history");
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  (void)EndToEndRunner::run(spec, tiny_config(), opt);
  const std::string latest = util::ckpt::latest_in(dir.string(), "ckpt");
  ASSERT_NE(latest, "");

  // Corrupt the newest checkpoint three ways; every resume must reject it
  // and still produce the reference result from a cold start.
  std::vector<std::uint8_t> image;
  {
    std::ifstream in(latest, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto run_resume = [&](const std::vector<std::uint8_t>& bytes) {
    const std::string path = (dir / "corrupt.tmck").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    RunnerOptions resume = tiny_runner("history");
    resume.checkpoint.resume_from = path;
    return EndToEndRunner::run(spec, tiny_config(), resume);
  };

  std::vector<std::uint8_t> truncated(
      image.begin(),
      image.begin() + static_cast<std::ptrdiff_t>(image.size() / 2));
  expect_bitwise_equal(run_resume(truncated), reference);

  std::vector<std::uint8_t> flipped = image;
  flipped[image.size() / 2] ^= 0x40;
  expect_bitwise_equal(run_resume(flipped), reference);

  std::vector<std::uint8_t> skewed = image;
  skewed[sizeof util::ckpt::kMagic] ^= 0xff;  // version field
  expect_bitwise_equal(run_resume(skewed), reference);
}

/// Runner options with the admission gate on: low bandwidth and a tight
/// storm brake so every verdict class (rejected, cooled, shed) has live
/// state riding in the checkpoint.
RunnerOptions gated_runner(const std::string& policy, AdmissionMode mode) {
  RunnerOptions opt = tiny_runner(policy);
  opt.mover.admission.mode = mode;
  opt.mover.admission.min_history = 1;
  opt.mover.admission.bandwidth_bytes_per_sec = 512ULL << mem::kPageShift;
  opt.mover.admission.burst_bytes = 64ULL << mem::kPageShift;
  opt.mover.admission.cooldown_epochs = 2;
  opt.mover.admission.max_moves_per_epoch = 48;
  return opt;
}

TEST(CkptResume, GatedRunnerResumesBitwiseIdentical) {
  // The admission section (history, bucket, cool-downs, registry) rides in
  // the checkpoint; kill-and-resume under an active gate must be bitwise
  // identical to the uninterrupted run for both gated modes.
  const auto spec = workloads::find_spec("gups", 0.05);
  for (const AdmissionMode mode :
       {AdmissionMode::Static, AdmissionMode::Adaptive}) {
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        ("tmprof-adm-resume-" + std::string(to_string(mode)));
    fs::remove_all(dir);
    fs::create_directories(dir);

    const RunnerResult reference =
        EndToEndRunner::run(spec, tiny_config(), gated_runner("history", mode));

    RunnerOptions opt = gated_runner("history", mode);
    opt.checkpoint.every = 1;
    opt.checkpoint.dir = dir.string();
    opt.checkpoint.keep_last = 16;
    (void)EndToEndRunner::run(spec, tiny_config(), opt);

    RunnerOptions resume = gated_runner("history", mode);
    resume.checkpoint.resume_from =
        util::ckpt::checkpoint_path(dir.string(), "ckpt", 3);
    ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from))
        << to_string(mode);
    expect_bitwise_equal(EndToEndRunner::run(spec, tiny_config(), resume),
                         reference);
  }
}

TEST(CkptResume, AdmissionModeMismatchFallsBackToColdStart) {
  // A checkpoint written with the gate on must not graft onto a gate-off
  // run (and vice versa): the admission section's presence/mode bytes
  // reject it and the run cold-starts, bitwise equal to never resuming.
  const auto spec = workloads::find_spec("gups", 0.05);
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-adm-mismatch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RunnerOptions opt = gated_runner("history", AdmissionMode::Static);
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  (void)EndToEndRunner::run(spec, tiny_config(), opt);
  const std::string latest = util::ckpt::latest_in(dir.string(), "ckpt");
  ASSERT_NE(latest, "");

  // Gated checkpoint into an ungated run.
  const RunnerResult off_reference =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner("history"));
  RunnerOptions off_resume = tiny_runner("history");
  off_resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(EndToEndRunner::run(spec, tiny_config(), off_resume),
                       off_reference);

  // Gated checkpoint into a run gated in the other mode.
  const RunnerResult adaptive_reference = EndToEndRunner::run(
      spec, tiny_config(), gated_runner("history", AdmissionMode::Adaptive));
  RunnerOptions adaptive_resume =
      gated_runner("history", AdmissionMode::Adaptive);
  adaptive_resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(
      EndToEndRunner::run(spec, tiny_config(), adaptive_resume),
      adaptive_reference);
}

/// Small churned fleet (docs/CONSOLIDATION.md): a latency service plus two
/// staggered batch sessions that arrive and depart mid-run, all three
/// quota-arbitrated over the tiny fast tier.
WorkloadFactory fleet_factory() {
  return [](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> v;
    v.push_back(std::make_unique<workloads::ZipfWorkload>(
        3ULL << 19, 4096, 0.9, 0.05, seed));
    v.push_back(std::make_unique<workloads::ChurnSessionWorkload>(
        1ULL << 19, 4096, 0.9, 6000, 6000, 4, 0, seed + 1));
    v.push_back(std::make_unique<workloads::ChurnSessionWorkload>(
        1ULL << 19, 4096, 0.9, 6000, 6000, 4, 4000, seed + 2));
    return v;
  };
}

std::vector<TenantSpec> small_fleet(std::size_t n_batch) {
  std::vector<TenantSpec> tenants;
  TenantSpec service;
  service.name = "service";
  service.qos = QosClass::Latency;
  service.floor_frames = 192;
  service.bandwidth_weight = 4;
  tenants.push_back(service);
  for (std::size_t i = 1; i <= n_batch; ++i) {
    TenantSpec batch;
    batch.name = "batch_" + std::to_string(i);
    batch.qos = QosClass::Batch;
    batch.floor_frames = 0;
    batch.bandwidth_weight = 1;
    tenants.push_back(batch);
  }
  return tenants;
}

RunnerOptions fleet_runner() {
  RunnerOptions opt = tiny_runner("history");
  opt.tenants = small_fleet(2);
  opt.process_weights = {2.0, 1.0, 1.0};
  opt.mover.min_rank = 1;
  return opt;
}

TEST(CkptResume, TenantChurnRunnerResumesBitwiseIdentical) {
  // The arbiter's "tenant" section (benefit, grants, charges, tallies,
  // move sequence numbers) rides in the checkpoint; killing a churned
  // fleet mid-run and resuming must be bitwise identical to the
  // uninterrupted run, per-tenant outcomes included.
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-tenant-resume";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const RunnerResult reference =
      EndToEndRunner::run(fleet_factory(), tiny_config(), fleet_runner());
  ASSERT_EQ(reference.tenants.size(), 3U);

  RunnerOptions opt = fleet_runner();
  opt.checkpoint.every = 1;
  opt.checkpoint.dir = dir.string();
  opt.checkpoint.keep_last = 16;
  (void)EndToEndRunner::run(fleet_factory(), tiny_config(), opt);

  RunnerOptions resume = fleet_runner();
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 3);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  expect_bitwise_equal(
      EndToEndRunner::run(fleet_factory(), tiny_config(), resume), reference);
}

TEST(CkptResume, TenantCountMismatchFallsBackToColdStart) {
  // A checkpoint from a 3-tenant fleet must not graft onto a 2-tenant run
  // (state would cross tenants), nor onto an arbiter-off run: the tenant
  // section's count / presence bytes reject it and the run cold-starts.
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-tenant-mismatch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RunnerOptions opt = fleet_runner();
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  (void)EndToEndRunner::run(fleet_factory(), tiny_config(), opt);
  const std::string latest = util::ckpt::latest_in(dir.string(), "ckpt");
  ASSERT_NE(latest, "");

  // Fewer tenants than the checkpoint holds: count mismatch, cold start.
  RunnerOptions fewer = fleet_runner();
  fewer.tenants = small_fleet(1);
  fewer.tenants[1].name = "batch_1";
  const RunnerResult fewer_reference =
      EndToEndRunner::run(fleet_factory(), tiny_config(), fewer);
  RunnerOptions fewer_resume = fewer;
  fewer_resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(
      EndToEndRunner::run(fleet_factory(), tiny_config(), fewer_resume),
      fewer_reference);

  // Arbiter off entirely: presence mismatch, cold start.
  RunnerOptions off = fleet_runner();
  off.tenants.clear();
  const RunnerResult off_reference =
      EndToEndRunner::run(fleet_factory(), tiny_config(), off);
  RunnerOptions off_resume = off;
  off_resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(
      EndToEndRunner::run(fleet_factory(), tiny_config(), off_resume),
      off_reference);
}

TEST(CkptResume, MissingResumeFileFallsBackToColdStart) {
  const auto spec = workloads::find_spec("gups", 0.05);
  const RunnerResult reference =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner("history"));
  RunnerOptions resume = tiny_runner("history");
  resume.checkpoint.resume_from = "/nonexistent/path/ckpt-e00000002.tmck";
  expect_bitwise_equal(EndToEndRunner::run(spec, tiny_config(), resume),
                       reference);
}

TEST(CkptResume, MismatchedConfigRejected) {
  // A checkpoint from seed 42 must not be grafted onto a seed-43 run: the
  // meta section rejects it and the run cold-starts with its own seed.
  const auto spec = workloads::find_spec("gups", 0.05);
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-meta";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RunnerOptions opt = tiny_runner("history");
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  (void)EndToEndRunner::run(spec, tiny_config(), opt);
  const std::string latest = util::ckpt::latest_in(dir.string(), "ckpt");
  ASSERT_NE(latest, "");

  RunnerOptions other = tiny_runner("history");
  other.seed = 43;
  const RunnerResult reference =
      EndToEndRunner::run(spec, tiny_config(), other);
  RunnerOptions resume = other;
  resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(EndToEndRunner::run(spec, tiny_config(), resume),
                       reference);

  // Same story for a policy mismatch.
  RunnerOptions wrong_policy = tiny_runner("freq-decay");
  const RunnerResult fd_reference =
      EndToEndRunner::run(spec, tiny_config(), wrong_policy);
  wrong_policy.checkpoint.resume_from = latest;
  expect_bitwise_equal(EndToEndRunner::run(spec, tiny_config(), wrong_policy),
                       fd_reference);
}

/// Explicit three-tier chain sized like tiny_config, so DevMon has two
/// device counter arrays riding in the "devmon" checkpoint section.
sim::SimConfig devmon_chain_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tiers = {mem::TierSpec{"dram", 1 << 9, 80, 80, 0},
               mem::TierSpec{"cxl", 1 << 10, 150, 200, 0},
               mem::TierSpec{"nvm", 1 << 14, 300, 600, 0}};
  return cfg;
}

RunnerOptions devmon_runner(const std::string& policy) {
  RunnerOptions opt = tiny_runner(policy);
  opt.fusion = core::FusionMode::SumDev;
  opt.daemon.devmon_weight = 0.01;
  opt.daemon.driver.devmon.enabled = true;
  return opt;
}

TEST(CkptResume, DevmonRunnerResumesBitwiseIdentical) {
  // The device-counter arrays, statistics, and unmerged lane tallies ride
  // in the "devmon" section; a kill-and-resume run with DevMon fused into
  // the ranking must be bitwise identical to the uninterrupted one.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = devmon_chain_config();
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-devmon-resume";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const RunnerResult reference =
      EndToEndRunner::run(spec, cfg, devmon_runner("history"));

  RunnerOptions opt = devmon_runner("history");
  opt.checkpoint.every = 1;
  opt.checkpoint.dir = dir.string();
  opt.checkpoint.keep_last = 16;
  (void)EndToEndRunner::run(spec, cfg, opt);

  RunnerOptions resume = devmon_runner("history");
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 3);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  expect_bitwise_equal(EndToEndRunner::run(spec, cfg, resume), reference);
}

TEST(CkptResume, DevmonPresenceMismatchFallsBackToColdStart) {
  // A checkpoint written with the device monitor on must not graft onto a
  // devmon-off run (and vice versa): the section's presence byte rejects
  // it and the run cold-starts, bitwise equal to never resuming.
  const auto spec = workloads::find_spec("gups", 0.05);
  const sim::SimConfig cfg = devmon_chain_config();
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-devmon-mismatch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RunnerOptions opt = devmon_runner("history");
  opt.checkpoint.every = 2;
  opt.checkpoint.dir = dir.string();
  (void)EndToEndRunner::run(spec, cfg, opt);
  const std::string latest = util::ckpt::latest_in(dir.string(), "ckpt");
  ASSERT_NE(latest, "");

  // Devmon checkpoint into a devmon-off run.
  const RunnerResult off_reference =
      EndToEndRunner::run(spec, cfg, tiny_runner("history"));
  RunnerOptions off_resume = tiny_runner("history");
  off_resume.checkpoint.resume_from = latest;
  expect_bitwise_equal(EndToEndRunner::run(spec, cfg, off_resume),
                       off_reference);

  // Devmon-off checkpoint into a devmon run.
  const fs::path off_dir =
      fs::path(::testing::TempDir()) / "tmprof-devmon-mismatch-off";
  fs::remove_all(off_dir);
  fs::create_directories(off_dir);
  RunnerOptions off_ckpt = tiny_runner("history");
  off_ckpt.checkpoint.every = 2;
  off_ckpt.checkpoint.dir = off_dir.string();
  (void)EndToEndRunner::run(spec, cfg, off_ckpt);
  const std::string off_latest =
      util::ckpt::latest_in(off_dir.string(), "ckpt");
  ASSERT_NE(off_latest, "");
  const RunnerResult on_reference =
      EndToEndRunner::run(spec, cfg, devmon_runner("history"));
  RunnerOptions on_resume = devmon_runner("history");
  on_resume.checkpoint.resume_from = off_latest;
  expect_bitwise_equal(EndToEndRunner::run(spec, cfg, on_resume),
                       on_reference);
}

}  // namespace
}  // namespace tmprof::tiering
