/// Tests for the THP collapse daemon and the swap-style far-memory
/// baseline.

#include <gtest/gtest.h>

#include "tiering/khugepaged.hpp"
#include "tiering/swap.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 12;
  cfg.tier2_frames = 1 << 13;
  return cfg;
}

TEST(Khugepaged, CollapsesFullyPopulatedHotRange) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(4 << 20, 4096, 0.0, 1));
  // Touch an entire 2 MiB-aligned range of 4 KiB pages (heap base is
  // 2 MiB-aligned), setting A bits along the way.
  sys.step(512);
  Khugepaged daemon(sys, KhugepagedConfig{});
  const CollapseStats stats = daemon.scan_and_collapse();
  EXPECT_EQ(stats.collapsed, 1U);
  sim::Process& proc = sys.process(pid);
  const mem::PteRef ref = proc.page_table().resolve(proc.vaddr_of(0));
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.size, mem::PageSize::k2M);
  // Subsequent accesses translate through the huge mapping.
  const sim::AccessResult r = sys.access(proc, proc.vaddr_of(12345), false, 1);
  EXPECT_FALSE(r.page_fault);
}

TEST(Khugepaged, SkipsSparseRanges) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(4 << 20, 4096, 0.0, 1));
  sys.step(100);  // only 100 of 512 slots populated
  Khugepaged daemon(sys, KhugepagedConfig{});
  const CollapseStats stats = daemon.scan_and_collapse();
  EXPECT_EQ(stats.collapsed, 0U);
  EXPECT_GT(stats.skipped_sparse, 0U);
  sim::Process& proc = sys.process(pid);
  EXPECT_EQ(proc.page_table().resolve(proc.vaddr_of(0)).size,
            mem::PageSize::k4K);
}

TEST(Khugepaged, HotnessGateSkipsColdRanges) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(4 << 20, 4096, 0.0, 1));
  sys.step(512);
  // Clear every A bit: the range is fully mapped but evidently cold.
  sim::Process& proc = sys.process(pid);
  proc.page_table().walk([](mem::VirtAddr, mem::PageSize, mem::Pte& pte) {
    pte.set_accessed(false);
  });
  KhugepagedConfig cfg;
  cfg.min_accessed = 0.5;
  Khugepaged daemon(sys, cfg);
  const CollapseStats stats = daemon.scan_and_collapse();
  EXPECT_EQ(stats.collapsed, 0U);
  EXPECT_GT(stats.skipped_cold, 0U);
  // With the gate disabled the same range collapses.
  KhugepagedConfig open;
  open.min_accessed = 0.0;
  Khugepaged eager(sys, open);
  EXPECT_EQ(eager.scan_and_collapse().collapsed, 1U);
}

TEST(Khugepaged, CollapseShrinksAbitVisibility) {
  // The Table IV mechanism in miniature: after collapse, a page-table walk
  // sees 1 entry where it saw 512.
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(4 << 20, 4096, 0.0, 1));
  sys.step(512);
  sim::Process& proc = sys.process(pid);
  auto count_leaves = [&] {
    std::uint64_t n = 0;
    proc.page_table().walk(
        [&](mem::VirtAddr va, mem::PageSize, mem::Pte&) {
          n += va >= proc.heap_base() ? 1 : 0;  // ignore code pages
        });
    return n;
  };
  EXPECT_EQ(count_leaves(), 512U);
  Khugepaged daemon(sys, KhugepagedConfig{});
  daemon.scan_and_collapse();
  EXPECT_EQ(count_leaves(), 1U);
}

TEST(Swap, FaultsBringPagesInAndEvictFifo) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 8;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  sys.step(16);  // 8 pages resident in t1, 8 spilled
  SwapFarMemory swap(sys);
  swap.seal();
  sim::Process& proc = sys.process(pid);
  // Touch a swapped-out page: major fault, swap-in, FIFO eviction.
  const mem::VirtAddr target = proc.vaddr_of(12 * mem::kPageSize);
  const sim::AccessResult r = sys.access(proc, target, false, 1);
  EXPECT_TRUE(r.protection_fault);
  EXPECT_EQ(swap.major_faults(), 1U);
  EXPECT_EQ(swap.pages_swapped_in(), 1U);
  const mem::PteRef ref = proc.page_table().resolve(target);
  EXPECT_EQ(sys.phys().tier_of(ref.pte->pfn()), 0);
  EXPECT_FALSE(ref.pte->poisoned());
  // A second touch of the now-resident page is fault-free.
  const sim::AccessResult again = sys.access(proc, target, false, 1);
  EXPECT_FALSE(again.protection_fault);
}

TEST(Swap, ThrashingCostsScaleWithFaults) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 4;
  sim::System sys(cfg);
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  sys.step(256);  // map the footprint (4 t1 + rest t2)
  SwapFarMemory swap(sys);
  swap.seal();
  const util::SimNs before = sys.now();
  sys.step(2000);  // uniform random over 256 pages with 4-page residency
  EXPECT_GT(swap.major_faults(), 500U);  // thrashing
  // Each fault charged at least the major-fault cost.
  EXPECT_GE(sys.now() - before, swap.major_faults() * 8000ULL);
}

TEST(Swap, DetachRestoresNormalFaults) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 8;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  sys.step(16);
  {
    SwapFarMemory swap(sys);
    swap.seal();
    // Drain the poison by touching every page once (FIFO churns, but each
    // fault unpoisons its page).
    sim::Process& proc = sys.process(pid);
    for (int i = 0; i < 16; ++i) {
      sys.access(proc, proc.vaddr_of(i * mem::kPageSize), false, 1);
    }
  }
  // After detach, leftover poisoned pages would crash on access; verify
  // the sealed set was fully consumed for the touched range.
  sim::Process& proc = sys.process(pid);
  std::uint64_t poisoned = 0;
  proc.page_table().walk([&](mem::VirtAddr, mem::PageSize, mem::Pte& pte) {
    poisoned += pte.poisoned() ? 1 : 0;
  });
  // Pages evicted by the FIFO during the sweep may be re-poisoned; they
  // are the only ones allowed to remain.
  EXPECT_LE(poisoned, 16U);
}

}  // namespace
}  // namespace tmprof::tiering
