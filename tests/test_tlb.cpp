#include "mem/tlb.hpp"

#include <gtest/gtest.h>

#include "mem/page_table.hpp"

namespace tmprof::mem {
namespace {

class TlbTest : public ::testing::Test {
 protected:
  TlbTest() : tlb_(Tlb::make_default()) {
    pt_.map(0x1000, 10, PageSize::k4K);
    pt_.map(kHugePageSize * 2, 1024, PageSize::k2M);
  }

  Pte* pte4k() { return pt_.resolve(0x1000).pte; }
  Pte* pte2m() { return pt_.resolve(kHugePageSize * 2).pte; }

  PageTable pt_;
  Tlb tlb_;
};

TEST_F(TlbTest, MissWhenEmpty) {
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, TlbHit::Miss);
}

TEST_F(TlbTest, FillThenHitL1) {
  tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  const auto r = tlb_.lookup(1, 0x1234);
  EXPECT_EQ(r.level, TlbHit::L1);
  ASSERT_NE(r.entry, nullptr);
  EXPECT_EQ(r.entry->pte, pte4k());
  EXPECT_EQ(r.size, PageSize::k4K);
}

TEST_F(TlbTest, HugePageHitCoversWholeRegion) {
  tlb_.fill(1, kHugePageSize * 2, PageSize::k2M, pte2m(), false);
  const auto r = tlb_.lookup(1, kHugePageSize * 2 + 0x12345);
  EXPECT_EQ(r.level, TlbHit::L1);
  EXPECT_EQ(r.size, PageSize::k2M);
}

TEST_F(TlbTest, PidIsolation) {
  tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  EXPECT_EQ(tlb_.lookup(2, 0x1000).level, TlbHit::Miss);
}

TEST_F(TlbTest, InvalidatePage) {
  tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  tlb_.invalidate_page(1, 0x1000, PageSize::k4K);
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, TlbHit::Miss);
}

TEST_F(TlbTest, InvalidatePid) {
  tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  tlb_.fill(2, 0x1000, PageSize::k4K, pte4k(), false);
  tlb_.invalidate_pid(1);
  EXPECT_EQ(tlb_.lookup(1, 0x1000).level, TlbHit::Miss);
  EXPECT_EQ(tlb_.lookup(2, 0x1000).level, TlbHit::L1);
}

TEST_F(TlbTest, FlushClearsEverything) {
  tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  tlb_.fill(1, kHugePageSize * 2, PageSize::k2M, pte2m(), false);
  EXPECT_GT(tlb_.valid_entries(), 0U);
  tlb_.flush();
  EXPECT_EQ(tlb_.valid_entries(), 0U);
}

TEST_F(TlbTest, EvictionFromL1StillHitsInL2) {
  // Fill far more 4K translations than L1 holds (64 entries default).
  PageTable pt;
  for (std::uint64_t i = 0; i < 512; ++i) {
    pt.map(0x100000 + i * kPageSize, i + 1, PageSize::k4K);
  }
  for (std::uint64_t i = 0; i < 512; ++i) {
    const VirtAddr va = 0x100000 + i * kPageSize;
    tlb_.fill(1, va, PageSize::k4K, pt.resolve(va).pte, false);
  }
  // The very first page should be out of L1 but still in the larger L2.
  const auto r = tlb_.lookup(1, 0x100000);
  EXPECT_EQ(r.level, TlbHit::L2);
  // And now it is promoted: a second lookup hits L1.
  EXPECT_EQ(tlb_.lookup(1, 0x100000).level, TlbHit::L1);
}

TEST_F(TlbTest, DirtyCachedStateTracked) {
  auto* entry = tlb_.fill(1, 0x1000, PageSize::k4K, pte4k(), false);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->dirty_cached);
  entry->dirty_cached = true;
  EXPECT_TRUE(tlb_.lookup(1, 0x1000).entry->dirty_cached);
}

/// Property: an array never reports more valid entries than its capacity.
class TlbCapacity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlbCapacity, NeverExceedsCapacity) {
  const std::uint32_t ways = GetParam();
  TlbArray arr(4, ways, PageSize::k4K);
  PageTable pt;
  for (std::uint64_t i = 0; i < 100; ++i) {
    pt.map(i * kPageSize, i + 1, PageSize::k4K);
    arr.insert(1, i, pt.resolve(i * kPageSize).pte, false);
    EXPECT_LE(arr.valid_entries(), arr.capacity());
  }
  EXPECT_EQ(arr.valid_entries(), arr.capacity());
}

INSTANTIATE_TEST_SUITE_P(Ways, TlbCapacity, ::testing::Values(1U, 2U, 4U, 8U));

TEST(TlbArray, LruEvictsOldest) {
  PageTable pt;
  for (std::uint64_t i = 0; i < 3; ++i) {
    pt.map(i * kPageSize, i + 1, PageSize::k4K);
  }
  TlbArray arr(1, 2, PageSize::k4K);
  arr.insert(1, 0, pt.resolve(0).pte, false);
  arr.insert(1, 1, pt.resolve(kPageSize).pte, false);
  // Touch vpn 0 so vpn 1 is LRU.
  EXPECT_NE(arr.lookup(1, 0), nullptr);
  arr.insert(1, 2, pt.resolve(2 * kPageSize).pte, false);
  EXPECT_NE(arr.lookup(1, 0), nullptr);
  EXPECT_EQ(arr.lookup(1, 1), nullptr);
  EXPECT_NE(arr.lookup(1, 2), nullptr);
}

}  // namespace
}  // namespace tmprof::mem
