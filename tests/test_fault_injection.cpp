/// Robustness-layer tests (docs/ROBUSTNESS.md): the fault injector's
/// decisions must be pure in (seed, site, key) — hence call-order and
/// thread-count invariant — and the layers consuming it (mover, driver,
/// daemon, runner) must degrade gracefully and deterministically.

#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "tiering/mover.hpp"
#include "tiering/runner.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::util {
namespace {

TEST(FaultInjection, DefaultInjectorNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_FALSE(inj.fire(FaultSite::MigrationBusy, k));
  }
  EXPECT_EQ(inj.stats().total_injected(), 0U);
}

TEST(FaultInjection, RateZeroNeverRateOneAlways) {
  FaultConfig zero;
  zero.rate = 0.0;
  FaultInjector never(zero);
  FaultConfig one;
  one.rate = 1.0;
  FaultInjector always(one);
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_FALSE(never.fire(FaultSite::TraceOverflow, fault_key(k)));
    EXPECT_TRUE(always.fire(FaultSite::TraceOverflow, fault_key(k)));
  }
  EXPECT_EQ(always.stats().injected_at(FaultSite::TraceOverflow), 512U);
}

TEST(FaultInjection, DecisionsAreCallOrderAndThreadInvariant) {
  FaultConfig cfg;
  cfg.rate = 0.3;
  cfg.seed = 99;
  constexpr std::size_t kKeys = 4096;

  std::vector<char> forward(kKeys);
  std::uint64_t fired = 0;
  {
    FaultInjector inj(cfg);
    for (std::size_t i = 0; i < kKeys; ++i) {
      forward[i] =
          inj.fire(FaultSite::MigrationBusy, fault_key(i)) ? 1 : 0;
      fired += static_cast<std::uint64_t>(forward[i]);
    }
  }
  // The empirical rate tracks the configured one (seeded, so exact).
  EXPECT_GT(fired, kKeys / 5);
  EXPECT_LT(fired, (kKeys * 2) / 5);

  // Reverse call order: identical decisions (no shared stream advanced).
  {
    FaultInjector inj(cfg);
    for (std::size_t i = kKeys; i-- > 0;) {
      EXPECT_EQ(inj.fire(FaultSite::MigrationBusy, fault_key(i)) ? 1 : 0,
                forward[i])
          << "key " << i;
    }
  }

  // Concurrent consultation: still identical.
  std::vector<char> parallel(kKeys);
  ThreadPool pool(8);
  pool.parallel_for(kKeys, [&](std::size_t i) {
    FaultInjector inj(cfg);
    parallel[i] = inj.fire(FaultSite::MigrationBusy, fault_key(i)) ? 1 : 0;
  });
  EXPECT_EQ(parallel, forward);
}

TEST(FaultInjection, DifferentSeedsDifferentSchedules) {
  FaultConfig a;
  a.rate = 0.3;
  a.seed = 1;
  FaultConfig b = a;
  b.seed = 2;
  FaultInjector inj_a(a);
  FaultInjector inj_b(b);
  bool any_differ = false;
  for (std::uint64_t k = 0; k < 1024 && !any_differ; ++k) {
    any_differ = inj_a.fire(FaultSite::AbitAbort, fault_key(k)) !=
                 inj_b.fire(FaultSite::AbitAbort, fault_key(k));
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultInjection, SiteParsing) {
  EXPECT_EQ(fault_site_from("migration-busy"), FaultSite::MigrationBusy);
  EXPECT_EQ(fault_site_from("hwpc-wrap"), FaultSite::HwpcWrap);
  EXPECT_THROW((void)fault_site_from("bogus"), std::invalid_argument);

  EXPECT_EQ(parse_fault_sites("all").size(), kFaultSiteCount);
  EXPECT_EQ(parse_fault_sites("migration").size(), 2U);
  const auto two = parse_fault_sites("trace-overflow,hwpc-wrap");
  ASSERT_EQ(two.size(), 2U);
  EXPECT_EQ(two[0], FaultSite::TraceOverflow);
  EXPECT_EQ(two[1], FaultSite::HwpcWrap);
  EXPECT_THROW((void)parse_fault_sites(""), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_sites("migration,bogus"),
               std::invalid_argument);
}

TEST(FaultInjection, RestrictToLimitsActiveSites) {
  FaultConfig cfg;
  cfg.rate = 0.5;
  cfg.restrict_to({FaultSite::TraceOverflow});
  EXPECT_DOUBLE_EQ(cfg.rate_of(FaultSite::TraceOverflow), 0.5);
  EXPECT_DOUBLE_EQ(cfg.rate_of(FaultSite::MigrationBusy), 0.0);
  EXPECT_TRUE(cfg.enabled());
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.enabled(FaultSite::TraceOverflow));
  EXPECT_FALSE(inj.enabled(FaultSite::MigrationBusy));
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_FALSE(inj.fire(FaultSite::MigrationBusy, fault_key(k)));
  }
}

}  // namespace
}  // namespace tmprof::util

namespace tmprof::tiering {
namespace {

sim::SimConfig small_config(std::uint64_t t1_frames) {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = t1_frames;
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

void touch_pages(sim::System& sys, mem::Pid pid, std::uint64_t pages) {
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t i = 0; i < pages; ++i) {
    sys.access(proc, proc.vaddr_of(i * mem::kPageSize), false, 1);
  }
}

std::vector<core::PageRank> rank_pages(sim::System& sys, mem::Pid pid,
                                       std::initializer_list<std::uint64_t>
                                           page_indices) {
  std::vector<core::PageRank> ranking;
  std::uint64_t rank = 1000;
  sim::Process& proc = sys.process(pid);
  for (std::uint64_t idx : page_indices) {
    core::PageRank pr;
    pr.key = PageKey{pid, proc.vaddr_of(idx * mem::kPageSize)};
    pr.rank = rank--;
    ranking.push_back(pr);
  }
  return ranking;
}

TEST(FaultInjectionMover, BusyFaultsRetryWithBackoffThenAbort) {
  sim::System sys(small_config(4));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);  // 4 in t1, 6 in t2
  MoverConfig mcfg;
  mcfg.fault.rate = 1.0;  // every consultation fails
  mcfg.fault.restrict_to({util::FaultSite::MigrationBusy});
  PageMover mover(sys, mcfg);
  const util::SimNs before = sys.now();
  const auto ranking = rank_pages(sys, pid, {6, 7, 8, 9});
  const MoveStats stats = mover.apply(ranking, 4);
  // Every demotion retried max_retries times then aborted; with no room
  // freed, every promotion parked on the deferred queue.
  EXPECT_EQ(stats.promoted, 0U);
  EXPECT_EQ(stats.demoted, 0U);
  EXPECT_EQ(stats.retried, 4U * mcfg.max_retries);
  EXPECT_EQ(stats.aborted, 4U);
  EXPECT_EQ(stats.deferred, 4U);
  EXPECT_GT(stats.backoff_ns, 0U);
  EXPECT_EQ(sys.now() - before, stats.cost_ns + stats.backoff_ns);
  EXPECT_GT(mover.fault_stats().injected_at(util::FaultSite::MigrationBusy),
            0U);
}

TEST(FaultInjectionMover, RetryBudgetBoundsRetriesPerApply) {
  sim::System sys(small_config(4));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);
  MoverConfig mcfg;
  mcfg.fault.rate = 1.0;
  mcfg.fault.restrict_to({util::FaultSite::MigrationBusy});
  mcfg.retry_budget = 5;
  PageMover mover(sys, mcfg);
  const auto ranking = rank_pages(sys, pid, {6, 7, 8, 9});
  const MoveStats stats = mover.apply(ranking, 4);
  EXPECT_EQ(stats.retried, 5U);  // budget exhausted mid-epoch
  EXPECT_GT(stats.aborted, 0U);
}

TEST(FaultInjectionMover, NoMemFaultDefersPromotion) {
  sim::System sys(small_config(8));
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.0, 1));
  touch_pages(sys, pid, 10);  // 8 in t1, pages 8-9 in t2
  // Open one tier-1 frame so the promotion has genuine room — only the
  // injected -ENOMEM stops it.
  sim::Process& proc = sys.process(pid);
  const mem::Pte freed = proc.page_table().unmap(proc.vaddr_of(0));
  sys.phys().free(freed.pfn());
  MoverConfig mcfg;
  mcfg.fault.rate = 1.0;
  mcfg.fault.restrict_to({util::FaultSite::MigrationNoMem});
  PageMover mover(sys, mcfg);
  const auto ranking = rank_pages(sys, pid, {8});
  const MoveStats stats = mover.apply(ranking, 8);
  EXPECT_EQ(stats.promoted, 0U);
  EXPECT_GE(stats.no_room, 1U);
  EXPECT_EQ(stats.deferred, 1U);
  EXPECT_EQ(mover.deferred_pending(), 1U);  // carried for the next epoch
  EXPECT_EQ(stats.retried, 0U);  // -ENOMEM is not worth retrying
}

RunnerOptions fault_options(const std::string& policy, std::uint32_t n_threads,
                            double rate) {
  RunnerOptions opt;
  opt.policy = policy;
  opt.n_epochs = 3;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  opt.n_threads = n_threads;
  opt.fault.rate = rate;
  opt.fault.seed = 0xf00d;
  return opt;
}

void expect_identical_full(const RunnerResult& a, const RunnerResult& b,
                           const std::string& label) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns) << label;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.tier1_hitrate),
            std::bit_cast<std::uint64_t>(b.tier1_hitrate))
      << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.protection_faults, b.protection_faults) << label;
  EXPECT_EQ(a.moves.promoted, b.moves.promoted) << label;
  EXPECT_EQ(a.moves.demoted, b.moves.demoted) << label;
  EXPECT_EQ(a.moves.retried, b.moves.retried) << label;
  EXPECT_EQ(a.moves.deferred, b.moves.deferred) << label;
  EXPECT_EQ(a.moves.aborted, b.moves.aborted) << label;
  EXPECT_EQ(a.moves.no_room, b.moves.no_room) << label;
  EXPECT_EQ(a.moves.backoff_ns, b.moves.backoff_ns) << label;
  EXPECT_EQ(a.degrade.hwpc_wraps, b.degrade.hwpc_wraps) << label;
  EXPECT_EQ(a.degrade.scans_aborted, b.degrade.scans_aborted) << label;
  EXPECT_EQ(a.degrade.trace_dropped, b.degrade.trace_dropped) << label;
  EXPECT_EQ(a.degrade.rescaled_epochs, b.degrade.rescaled_epochs) << label;
  EXPECT_EQ(a.degrade.fallback_epochs, b.degrade.fallback_epochs) << label;
  EXPECT_EQ(a.degrade.pinned_epochs, b.degrade.pinned_epochs) << label;
}

TEST(FaultInjectionRunner, FaultScheduleIsThreadCountInvariant) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  const RunnerResult t1 =
      EndToEndRunner::run(spec, cfg, fault_options("history", 1, 0.2));
  const RunnerResult t2 =
      EndToEndRunner::run(spec, cfg, fault_options("history", 2, 0.2));
  const RunnerResult t8 =
      EndToEndRunner::run(spec, cfg, fault_options("history", 8, 0.2));
  expect_identical_full(t1, t2, "faults [1 vs 2 threads]");
  expect_identical_full(t1, t8, "faults [1 vs 8 threads]");
  // The schedule actually perturbed the run.
  EXPECT_GT(t1.moves.retried, 0U);
  EXPECT_GT(t1.moves.retried + t1.moves.deferred + t1.moves.no_room, 0U);
  EXPECT_GT(t1.degrade.trace_dropped, 0U);
}

TEST(FaultInjectionRunner, RepeatedSameSeedRunsAreIdentical) {
  const auto spec = workloads::find_spec("web_serving", 0.1);
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  for (const std::uint32_t threads : {0U, 8U}) {
    const RunnerOptions opt = fault_options("history", threads, 0.2);
    const RunnerResult first = EndToEndRunner::run(spec, cfg, opt);
    const RunnerResult repeat = EndToEndRunner::run(spec, cfg, opt);
    expect_identical_full(first, repeat,
                          "repeat @" + std::to_string(threads) + " threads");
  }
}

TEST(FaultInjectionRunner, ScanAbortScheduleIsEngineInvariant) {
  // The scan-abort site is keyed on (epoch, pid-index) only, so even the
  // legacy serial engine (different sample streams!) must see the *same*
  // abort schedule as every sharded thread count.
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  std::vector<std::uint64_t> aborts;
  for (const std::uint32_t threads : {0U, 1U, 2U, 8U}) {
    RunnerOptions opt = fault_options("history", threads, 0.5);
    opt.n_epochs = 4;
    opt.fault.restrict_to({util::FaultSite::AbitAbort});
    opt.daemon.gating_enabled = false;       // scan runs every epoch
    opt.daemon.pid_filter_enabled = false;   // fixed pid set
    const RunnerResult r = EndToEndRunner::run(spec, cfg, opt);
    aborts.push_back(r.degrade.scans_aborted);
  }
  EXPECT_GT(aborts[0], 0U);
  for (std::size_t i = 1; i < aborts.size(); ++i) {
    EXPECT_EQ(aborts[i], aborts[0]) << "engine variant " << i;
  }
}

TEST(FaultInjectionRunner, HwpcWrapsAreDetected) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  RunnerOptions opt = fault_options("history", 1, 0.8);
  opt.n_epochs = 4;
  opt.fault.restrict_to({util::FaultSite::HwpcWrap});
  opt.daemon.gating_enabled = false;
  const RunnerResult r = EndToEndRunner::run(spec, cfg, opt);
  EXPECT_GT(r.degrade.hwpc_wraps, 0U);
}

}  // namespace
}  // namespace tmprof::tiering

namespace tmprof::core {
namespace {

sim::SimConfig daemon_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 8192;
  cfg.tier2_frames = 8192;
  return cfg;
}

DaemonConfig fast_daemon() {
  DaemonConfig cfg;
  cfg.driver.ibs = monitors::IbsConfig::with_period(256);
  return cfg;
}

void expect_same_ranking(const std::vector<PageRank>& a,
                         const std::vector<PageRank>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << i;
  }
}

TEST(FaultInjectionDaemon, HeavyTraceLossFallsBackToAbitOnly) {
  sim::System sys(daemon_config());
  sys.add_process(
      std::make_unique<workloads::ZipfWorkload>(8 << 20, 4096, 0.99, 0.1, 1));
  DaemonConfig cfg = fast_daemon();
  cfg.fault.rate = 0.9;
  cfg.fault.restrict_to({util::FaultSite::TraceOverflow});
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  const ProfileSnapshot snap = daemon.tick();
  EXPECT_GT(snap.trace_dropped, 0U);
  EXPECT_GE(snap.trace_loss, cfg.trace_fallback_threshold);
  EXPECT_TRUE(snap.trace_fallback);
  EXPECT_GE(daemon.degrade_stats().fallback_epochs, 1U);
  // The published ranking is exactly what A-bit-only fusion would give.
  expect_same_ranking(
      snap.ranking, build_ranking(snap.observation, FusionMode::AbitOnly));
}

TEST(FaultInjectionDaemon, ModerateTraceLossRescalesWeight) {
  sim::System sys(daemon_config());
  sys.add_process(
      std::make_unique<workloads::ZipfWorkload>(8 << 20, 4096, 0.99, 0.1, 1));
  DaemonConfig cfg = fast_daemon();
  cfg.fault.rate = 0.2;
  cfg.fault.restrict_to({util::FaultSite::TraceOverflow});
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  const ProfileSnapshot snap = daemon.tick();
  EXPECT_GT(snap.trace_loss, cfg.trace_rescale_threshold);
  EXPECT_LT(snap.trace_loss, cfg.trace_fallback_threshold);
  EXPECT_FALSE(snap.trace_fallback);
  EXPECT_GE(daemon.degrade_stats().rescaled_epochs, 1U);
  // Rescaled = Weighted fusion at weight 1/(1-loss).
  expect_same_ranking(
      snap.ranking,
      build_ranking(snap.observation, FusionMode::Weighted,
                    1.0 / (1.0 - snap.trace_loss)));
}

TEST(FaultInjectionDaemon, WatchdogPinsLastGoodRankingOnEmptyScans) {
  // No injected faults at all: three consecutive *empty* scans (nothing ran
  // between ticks) must also trip the watchdog.
  sim::System sys(daemon_config());
  sys.add_process(
      std::make_unique<workloads::ZipfWorkload>(8 << 20, 4096, 0.99, 0.1, 1));
  DaemonConfig cfg = fast_daemon();
  cfg.gating_enabled = false;  // keep the scan running while idle
  ASSERT_EQ(cfg.watchdog_threshold, 3U);
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  const ProfileSnapshot good = daemon.tick();
  ASSERT_FALSE(good.ranking.empty());
  EXPECT_FALSE(good.pinned);
  const ProfileSnapshot bad1 = daemon.tick();  // nothing ran: empty scan
  EXPECT_FALSE(bad1.pinned);
  const ProfileSnapshot bad2 = daemon.tick();
  EXPECT_FALSE(bad2.pinned);
  const ProfileSnapshot bad3 = daemon.tick();  // third strike
  EXPECT_TRUE(bad3.pinned);
  expect_same_ranking(bad3.ranking, good.ranking);
  EXPECT_EQ(daemon.degrade_stats().pinned_epochs, 1U);
  // Recovery: real activity produces a fresh (unpinned) ranking again.
  sys.step(100000);
  const ProfileSnapshot recovered = daemon.tick();
  EXPECT_FALSE(recovered.pinned);
  ASSERT_FALSE(recovered.ranking.empty());
}

}  // namespace
}  // namespace tmprof::core
