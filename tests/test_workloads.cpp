#include "workloads/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/ckpt.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::workloads {
namespace {

TEST(Synthetic, UniformStaysInFootprint) {
  UniformWorkload w(1 << 20, 0.5, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(w.next().offset, 1U << 20);
  }
}

TEST(Synthetic, SequentialWrapsAround) {
  SequentialWorkload w(256, 64, 0.0, 1);
  EXPECT_EQ(w.next().offset, 0U);
  EXPECT_EQ(w.next().offset, 64U);
  EXPECT_EQ(w.next().offset, 128U);
  EXPECT_EQ(w.next().offset, 192U);
  EXPECT_EQ(w.next().offset, 0U);
}

TEST(Synthetic, ZipfSkewsTowardsLowRecords) {
  ZipfWorkload w(1 << 20, 4096, 0.99, 0.0, 1);
  std::uint64_t head = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (w.next().offset < 16 * 4096) ++head;
  }
  // Top 16 of 256 records get far more than their uniform share (6%).
  EXPECT_GT(head, draws / 5);
}

TEST(Synthetic, StoreFractionRespected) {
  UniformWorkload w(1 << 16, 0.25, 2);
  int stores = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) stores += w.next().is_store ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(stores) / draws, 0.25, 0.02);
}

TEST(Registry, HasAllEightTable3Workloads) {
  const auto specs = table3_specs();
  ASSERT_EQ(specs.size(), 8U);
  const auto names = table3_names();
  const std::unordered_set<std::string> set(names.begin(), names.end());
  for (const char* name :
       {"data_analytics", "data_caching", "graph500", "graph_analytics",
        "gups", "lulesh", "web_serving", "xsbench"}) {
    EXPECT_TRUE(set.count(name)) << name;
  }
}

TEST(Registry, HpcWorkloadsUseHugePages) {
  for (const auto& spec : table3_specs()) {
    const bool is_hpc = spec.suite == "HPC";
    EXPECT_EQ(spec.page_size == mem::PageSize::k2M, is_hpc) << spec.name;
  }
}

TEST(Registry, FootprintOrderingMatchesPaper) {
  // XSBench is the biggest, web_serving among the smallest (Table III).
  const auto xs = find_spec("xsbench");
  const auto web = find_spec("web_serving");
  const auto caching = find_spec("data_caching");
  EXPECT_GT(xs.total_bytes, caching.total_bytes);
  EXPECT_GT(caching.total_bytes, web.total_bytes);
}

TEST(Registry, ScaleMultipliesFootprints) {
  const auto big = find_spec("gups", 2.0);
  const auto base = find_spec("gups", 1.0);
  EXPECT_GE(big.total_bytes, base.total_bytes * 2 - mem::kHugePageSize);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(find_spec("nope"), std::out_of_range);
}

/// Property sweep over every Table III workload: generators stay in their
/// footprint, are deterministic under a seed, and differ across processes.
class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, OffsetsStayInFootprint) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto w = make_workload(spec, 0, 42);
  const std::uint64_t footprint = w->footprint_bytes();
  EXPECT_GT(footprint, 0U);
  for (int i = 0; i < 50000; ++i) {
    const MemRef ref = w->next();
    ASSERT_LT(ref.offset, footprint) << spec.name << " @ " << i;
  }
}

TEST_P(AllWorkloads, DeterministicUnderSeed) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto a = make_workload(spec, 0, 7);
  const auto b = make_workload(spec, 0, 7);
  for (int i = 0; i < 2000; ++i) {
    const MemRef ra = a->next();
    const MemRef rb = b->next();
    ASSERT_EQ(ra.offset, rb.offset);
    ASSERT_EQ(ra.is_store, rb.is_store);
  }
}

TEST_P(AllWorkloads, ProcessStreamsDiffer) {
  const auto spec = find_spec(GetParam(), 0.25);
  if (spec.processes < 2) GTEST_SKIP();
  const auto a = make_workload(spec, 0, 7);
  const auto b = make_workload(spec, 1, 7);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a->next().offset == b->next().offset) ++equal;
  }
  // Streams may overlap on sequential phases but not be identical.
  EXPECT_LT(equal, 1000);
}

TEST_P(AllWorkloads, EmitsSomeStoresAndSomeLoads) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto w = make_workload(spec, 0, 11);
  int stores = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) stores += w->next().is_store ? 1 : 0;
  EXPECT_GT(stores, 0) << spec.name;
  EXPECT_LT(stores, draws) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllWorkloads,
    ::testing::Values("data_analytics", "data_caching", "graph500",
                      "graph_analytics", "gups", "lulesh", "web_serving",
                      "xsbench"));

TEST(Gups, AlternatesLoadStorePairs) {
  const auto spec = find_spec("gups", 0.25);
  const auto w = make_workload(spec, 0, 1);
  for (int i = 0; i < 100; ++i) {
    const MemRef load = w->next();
    const MemRef store = w->next();
    EXPECT_FALSE(load.is_store);
    EXPECT_TRUE(store.is_store);
    EXPECT_EQ(load.offset, store.offset);  // read-modify-write
  }
}

// ---------------------------------------------------------------------------
// Storm generators (docs/ADMISSION.md): the admission bench's adversaries.

constexpr std::uint64_t kSlot = 64 * 4096;  // 64-page phase slots

TEST(StormWorkloads, PhaseShiftFlipsSlotsAtPhaseBoundaries) {
  // stable_fraction 0: every reference goes to the currently-hot slot, so
  // the emitted offsets must track slot_at(op) exactly.
  PhaseShiftWorkload w(kSlot, kSlot, 2, 100, 0.0, 7);
  for (std::uint64_t op = 0; op < 1000; ++op) {
    const std::uint32_t slot = w.slot_at(op);
    const MemRef ref = w.next();
    const std::uint64_t lo = kSlot + slot * kSlot;
    EXPECT_GE(ref.offset, lo) << "op " << op;
    EXPECT_LT(ref.offset, lo + kSlot) << "op " << op;
    EXPECT_EQ(ref.ip, 2U);  // slot-region phase marker
  }
}

TEST(StormWorkloads, PhaseShiftStableRegionStaysPut) {
  PhaseShiftWorkload w(kSlot, kSlot, 2, 100, 1.0, 7);
  for (int i = 0; i < 1000; ++i) {
    const MemRef ref = w.next();
    EXPECT_LT(ref.offset, kSlot);
    EXPECT_EQ(ref.ip, 1U);  // stable-region phase marker
  }
}

TEST(StormWorkloads, SameSeedSameStream) {
  PhaseShiftWorkload a(kSlot, kSlot, 3, 64, 0.5, 11);
  PhaseShiftWorkload b(kSlot, kSlot, 3, 64, 0.5, 11);
  ZipfChurnWorkload c(1 << 20, 4096, 0.9, 64, 16, 11);
  ZipfChurnWorkload d(1 << 20, 4096, 0.9, 64, 16, 11);
  for (int i = 0; i < 5000; ++i) {
    const MemRef ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.offset, rb.offset);
    EXPECT_EQ(ra.is_store, rb.is_store);
    EXPECT_EQ(ra.ip, rb.ip);
    const MemRef rc = c.next(), rd = d.next();
    EXPECT_EQ(rc.offset, rd.offset);
    EXPECT_EQ(rc.is_store, rd.is_store);
  }
}

TEST(StormWorkloads, ZipfChurnRotatesTheHotHead) {
  // Rank 0 is the Zipf mode; the churn shifts its record by churn_records
  // each phase, so the modal record must slide across phases.
  const std::uint64_t phase_ops = 20000, churn = 32;
  ZipfChurnWorkload w(1 << 20, 4096, 0.99, phase_ops, churn, 5);
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    std::vector<std::uint64_t> counts(256, 0);
    for (std::uint64_t i = 0; i < phase_ops; ++i) {
      ++counts[w.next().offset / 4096];
    }
    std::uint64_t modal = 0;
    for (std::uint64_t r = 1; r < counts.size(); ++r) {
      if (counts[r] > counts[modal]) modal = r;
    }
    EXPECT_EQ(modal, (phase * churn) % 256) << "phase " << phase;
  }
}

TEST(StormWorkloads, CheckpointRoundTripsMidStream) {
  // Save mid-phase, keep drawing the reference stream, then load into a
  // fresh instance: the resumed stream (rng AND phase clock) must match.
  PhaseShiftWorkload ps(kSlot, kSlot, 2, 150, 0.5, 13);
  ZipfChurnWorkload zc(1 << 20, 4096, 0.9, 150, 16, 13);
  for (int i = 0; i < 1000; ++i) {
    (void)ps.next();
    (void)zc.next();
  }
  util::ckpt::Writer w;
  w.begin_section("ps");
  ps.save_state(w);
  w.end_section();
  w.begin_section("zc");
  zc.save_state(w);
  w.end_section();
  const std::vector<std::uint8_t> image = w.finish();

  util::ckpt::Reader r(image);
  PhaseShiftWorkload ps2(kSlot, kSlot, 2, 150, 0.5, 99);
  ZipfChurnWorkload zc2(1 << 20, 4096, 0.9, 150, 16, 99);
  r.enter_section("ps");
  ps2.load_state(r);
  r.end_section();
  r.enter_section("zc");
  zc2.load_state(r);
  r.end_section();
  for (int i = 0; i < 2000; ++i) {
    const MemRef a = ps.next(), b = ps2.next();
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.is_store, b.is_store);
    EXPECT_EQ(a.ip, b.ip);
    const MemRef c = zc.next(), d = zc2.next();
    EXPECT_EQ(c.offset, d.offset);
    EXPECT_EQ(c.is_store, d.is_store);
  }
}

TEST(WebServing, TrafficConcentratesOnHotSet) {
  const auto spec = find_spec("web_serving", 0.5);
  const auto w = make_workload(spec, 0, 3);
  const std::uint64_t footprint = w->footprint_bytes();
  const std::uint64_t hot_boundary = footprint / 16;  // generous hot bound
  std::uint64_t hot = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    if (w->next().offset < hot_boundary) ++hot;
  }
  EXPECT_GT(hot, draws / 2);
}

}  // namespace
}  // namespace tmprof::workloads
