#include "workloads/registry.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "workloads/synthetic.hpp"

namespace tmprof::workloads {
namespace {

TEST(Synthetic, UniformStaysInFootprint) {
  UniformWorkload w(1 << 20, 0.5, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(w.next().offset, 1U << 20);
  }
}

TEST(Synthetic, SequentialWrapsAround) {
  SequentialWorkload w(256, 64, 0.0, 1);
  EXPECT_EQ(w.next().offset, 0U);
  EXPECT_EQ(w.next().offset, 64U);
  EXPECT_EQ(w.next().offset, 128U);
  EXPECT_EQ(w.next().offset, 192U);
  EXPECT_EQ(w.next().offset, 0U);
}

TEST(Synthetic, ZipfSkewsTowardsLowRecords) {
  ZipfWorkload w(1 << 20, 4096, 0.99, 0.0, 1);
  std::uint64_t head = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (w.next().offset < 16 * 4096) ++head;
  }
  // Top 16 of 256 records get far more than their uniform share (6%).
  EXPECT_GT(head, draws / 5);
}

TEST(Synthetic, StoreFractionRespected) {
  UniformWorkload w(1 << 16, 0.25, 2);
  int stores = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) stores += w.next().is_store ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(stores) / draws, 0.25, 0.02);
}

TEST(Registry, HasAllEightTable3Workloads) {
  const auto specs = table3_specs();
  ASSERT_EQ(specs.size(), 8U);
  const auto names = table3_names();
  const std::unordered_set<std::string> set(names.begin(), names.end());
  for (const char* name :
       {"data_analytics", "data_caching", "graph500", "graph_analytics",
        "gups", "lulesh", "web_serving", "xsbench"}) {
    EXPECT_TRUE(set.count(name)) << name;
  }
}

TEST(Registry, HpcWorkloadsUseHugePages) {
  for (const auto& spec : table3_specs()) {
    const bool is_hpc = spec.suite == "HPC";
    EXPECT_EQ(spec.page_size == mem::PageSize::k2M, is_hpc) << spec.name;
  }
}

TEST(Registry, FootprintOrderingMatchesPaper) {
  // XSBench is the biggest, web_serving among the smallest (Table III).
  const auto xs = find_spec("xsbench");
  const auto web = find_spec("web_serving");
  const auto caching = find_spec("data_caching");
  EXPECT_GT(xs.total_bytes, caching.total_bytes);
  EXPECT_GT(caching.total_bytes, web.total_bytes);
}

TEST(Registry, ScaleMultipliesFootprints) {
  const auto big = find_spec("gups", 2.0);
  const auto base = find_spec("gups", 1.0);
  EXPECT_GE(big.total_bytes, base.total_bytes * 2 - mem::kHugePageSize);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(find_spec("nope"), std::out_of_range);
}

/// Property sweep over every Table III workload: generators stay in their
/// footprint, are deterministic under a seed, and differ across processes.
class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, OffsetsStayInFootprint) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto w = make_workload(spec, 0, 42);
  const std::uint64_t footprint = w->footprint_bytes();
  EXPECT_GT(footprint, 0U);
  for (int i = 0; i < 50000; ++i) {
    const MemRef ref = w->next();
    ASSERT_LT(ref.offset, footprint) << spec.name << " @ " << i;
  }
}

TEST_P(AllWorkloads, DeterministicUnderSeed) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto a = make_workload(spec, 0, 7);
  const auto b = make_workload(spec, 0, 7);
  for (int i = 0; i < 2000; ++i) {
    const MemRef ra = a->next();
    const MemRef rb = b->next();
    ASSERT_EQ(ra.offset, rb.offset);
    ASSERT_EQ(ra.is_store, rb.is_store);
  }
}

TEST_P(AllWorkloads, ProcessStreamsDiffer) {
  const auto spec = find_spec(GetParam(), 0.25);
  if (spec.processes < 2) GTEST_SKIP();
  const auto a = make_workload(spec, 0, 7);
  const auto b = make_workload(spec, 1, 7);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a->next().offset == b->next().offset) ++equal;
  }
  // Streams may overlap on sequential phases but not be identical.
  EXPECT_LT(equal, 1000);
}

TEST_P(AllWorkloads, EmitsSomeStoresAndSomeLoads) {
  const auto spec = find_spec(GetParam(), 0.25);
  const auto w = make_workload(spec, 0, 11);
  int stores = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) stores += w->next().is_store ? 1 : 0;
  EXPECT_GT(stores, 0) << spec.name;
  EXPECT_LT(stores, draws) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllWorkloads,
    ::testing::Values("data_analytics", "data_caching", "graph500",
                      "graph_analytics", "gups", "lulesh", "web_serving",
                      "xsbench"));

TEST(Gups, AlternatesLoadStorePairs) {
  const auto spec = find_spec("gups", 0.25);
  const auto w = make_workload(spec, 0, 1);
  for (int i = 0; i < 100; ++i) {
    const MemRef load = w->next();
    const MemRef store = w->next();
    EXPECT_FALSE(load.is_store);
    EXPECT_TRUE(store.is_store);
    EXPECT_EQ(load.offset, store.offset);  // read-modify-write
  }
}

TEST(WebServing, TrafficConcentratesOnHotSet) {
  const auto spec = find_spec("web_serving", 0.5);
  const auto w = make_workload(spec, 0, 3);
  const std::uint64_t footprint = w->footprint_bytes();
  const std::uint64_t hot_boundary = footprint / 16;  // generous hot bound
  std::uint64_t hot = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    if (w->next().offset < hot_boundary) ++hot;
  }
  EXPECT_GT(hot, draws / 2);
}

}  // namespace
}  // namespace tmprof::workloads
