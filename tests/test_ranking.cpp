#include "core/ranking.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace tmprof::core {
namespace {

EpochObservation make_obs() {
  EpochObservation obs;
  const PageKey a{1, 0x1000};
  const PageKey b{1, 0x2000};
  const PageKey c{2, 0x1000};
  obs.abit[a] = 3;
  obs.abit[b] = 1;
  obs.trace[b] = 10;
  obs.trace[c] = 4;
  return obs;
}

TEST(Ranking, SumFusesBothSources) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Sum);
  ASSERT_EQ(ranked.size(), 3U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x2000}));
  EXPECT_EQ(ranked[0].rank, 11U);
  EXPECT_EQ(ranked[0].abit, 1U);
  EXPECT_EQ(ranked[0].trace, 10U);
  EXPECT_EQ(ranked[1].rank, 4U);
  EXPECT_EQ(ranked[2].rank, 3U);
}

TEST(Ranking, AbitOnlyIgnoresTrace) {
  const auto ranked = build_ranking(make_obs(), FusionMode::AbitOnly);
  ASSERT_EQ(ranked.size(), 2U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x1000}));
  EXPECT_EQ(ranked[0].rank, 3U);
  for (const PageRank& pr : ranked) EXPECT_EQ(pr.trace, 0U);
}

TEST(Ranking, TraceOnlyIgnoresAbit) {
  const auto ranked = build_ranking(make_obs(), FusionMode::TraceOnly);
  ASSERT_EQ(ranked.size(), 2U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x2000}));
  EXPECT_EQ(ranked[0].rank, 10U);
}

TEST(Ranking, MaxFusion) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Max);
  EXPECT_EQ(ranked[0].rank, 10U);  // max(1, 10)
}

TEST(Ranking, WeightedFusion) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Weighted, 0.5);
  // b: 1 + 0.5*10 = 6; c: 0.5*4 = 2; a: 3.
  EXPECT_EQ(ranked[0].rank, 6U);
  EXPECT_EQ(ranked[1].rank, 3U);
  EXPECT_EQ(ranked[2].rank, 2U);
}

TEST(Ranking, DeterministicTieBreak) {
  EpochObservation obs;
  obs.abit[PageKey{1, 0x3000}] = 2;
  obs.abit[PageKey{1, 0x1000}] = 2;
  obs.abit[PageKey{1, 0x2000}] = 2;
  const auto ranked = build_ranking(obs, FusionMode::Sum);
  ASSERT_EQ(ranked.size(), 3U);
  EXPECT_LT(ranked[0].key, ranked[1].key);
  EXPECT_LT(ranked[1].key, ranked[2].key);
}

TEST(Ranking, EmptyObservationGivesEmptyRanking) {
  EpochObservation obs;
  EXPECT_TRUE(build_ranking(obs, FusionMode::Sum).empty());
}

TEST(Ranking, FusionNames) {
  EXPECT_EQ(to_string(FusionMode::Sum), "sum");
  EXPECT_EQ(to_string(FusionMode::AbitOnly), "abit-only");
  EXPECT_EQ(to_string(FusionMode::TraceOnly), "trace-only");
}

// ---------------------------------------------------------------------------
// Top-K selection: the k-prefix must be bitwise identical to the full sort.

/// Every field must match, not just the (rank, key) sort keys. Field-wise
/// rather than memcmp so struct padding bytes cannot fake a mismatch.
bool bitwise_equal(const PageRank& a, const PageRank& b) {
  return a.key == b.key && a.rank == b.rank && a.abit == b.abit &&
         a.trace == b.trace && a.writes == b.writes;
}

void expect_topk_matches_full_prefix(const EpochObservation& obs,
                                     FusionMode mode, double weight) {
  const std::vector<PageRank> full = build_ranking(obs, mode, weight);
  // k sweep: empty, single, mid, exact size, and past-the-end.
  const std::size_t ks[] = {0, 1, full.size() / 2, full.size(),
                            full.size() + 5};
  for (const std::size_t k : ks) {
    const std::vector<PageRank> topk = build_ranking_topk(obs, mode, weight, k);
    const std::size_t expect_n = std::min(k, full.size());
    ASSERT_EQ(topk.size(), expect_n)
        << "mode=" << to_string(mode) << " k=" << k;
    for (std::size_t i = 0; i < expect_n; ++i) {
      EXPECT_TRUE(bitwise_equal(topk[i], full[i]))
          << "mode=" << to_string(mode) << " k=" << k << " i=" << i;
    }
  }
}

TEST(Ranking, TopKPrefixMatchesFullSortAllModes) {
  const EpochObservation obs = make_obs();
  for (const FusionMode mode :
       {FusionMode::Sum, FusionMode::Max, FusionMode::AbitOnly,
        FusionMode::TraceOnly, FusionMode::Weighted}) {
    expect_topk_matches_full_prefix(obs, mode, 0.5);
  }
}

TEST(Ranking, TopKPrefixWithRankTies) {
  // Many pages sharing the same rank: nth_element's pivot lands inside a tie
  // group, so only the key tie-break keeps the prefix deterministic.
  EpochObservation obs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    obs.abit[PageKey{1 + (i % 3), (64 - i) * 0x1000}] =
        static_cast<std::uint32_t>(i % 4);  // only 4 distinct ranks
  }
  for (const FusionMode mode : {FusionMode::Sum, FusionMode::AbitOnly}) {
    expect_topk_matches_full_prefix(obs, mode, 1.0);
  }
}

TEST(Ranking, TopKPrefixRandomized) {
  util::Rng rng(1234);
  for (int round = 0; round < 10; ++round) {
    EpochObservation obs;
    const std::size_t n = 20 + rng.below(200);
    for (std::size_t i = 0; i < n; ++i) {
      const PageKey k{1 + rng.below(4), rng.below(512) * 0x1000};
      if (rng.below(2) != 0U) {
        obs.abit[k] = static_cast<std::uint32_t>(rng.below(8));
      }
      if (rng.below(2) != 0U) {
        obs.trace[k] = static_cast<std::uint32_t>(rng.below(8));
      }
      if (rng.below(4) == 0U) {
        obs.writes[k] = static_cast<std::uint32_t>(rng.below(8));
      }
    }
    for (const FusionMode mode :
         {FusionMode::Sum, FusionMode::Max, FusionMode::AbitOnly,
          FusionMode::TraceOnly, FusionMode::Weighted}) {
      expect_topk_matches_full_prefix(obs, mode, 0.25);
    }
  }
}

TEST(Ranking, TopKZeroReturnsEmpty) {
  EXPECT_TRUE(build_ranking_topk(make_obs(), FusionMode::Sum, 1.0, 0).empty());
}

TEST(Ranking, BuildIntoReusesBuffers) {
  // _into variants must fully overwrite prior contents of out.
  RankingScratch scratch;
  std::vector<PageRank> out;
  build_ranking_into(make_obs(), FusionMode::Sum, 1.0, scratch, out);
  const std::vector<PageRank> first = out;
  EpochObservation small;
  small.abit[PageKey{7, 0x9000}] = 5;
  build_ranking_into(small, FusionMode::Sum, 1.0, scratch, out);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].key, (PageKey{7, 0x9000}));
  build_ranking_into(make_obs(), FusionMode::Sum, 1.0, scratch, out);
  ASSERT_EQ(out.size(), first.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(out[i], first[i]));
  }
}

}  // namespace
}  // namespace tmprof::core
