#include "core/ranking.hpp"

#include <gtest/gtest.h>

namespace tmprof::core {
namespace {

EpochObservation make_obs() {
  EpochObservation obs;
  const PageKey a{1, 0x1000};
  const PageKey b{1, 0x2000};
  const PageKey c{2, 0x1000};
  obs.abit[a] = 3;
  obs.abit[b] = 1;
  obs.trace[b] = 10;
  obs.trace[c] = 4;
  return obs;
}

TEST(Ranking, SumFusesBothSources) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Sum);
  ASSERT_EQ(ranked.size(), 3U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x2000}));
  EXPECT_EQ(ranked[0].rank, 11U);
  EXPECT_EQ(ranked[0].abit, 1U);
  EXPECT_EQ(ranked[0].trace, 10U);
  EXPECT_EQ(ranked[1].rank, 4U);
  EXPECT_EQ(ranked[2].rank, 3U);
}

TEST(Ranking, AbitOnlyIgnoresTrace) {
  const auto ranked = build_ranking(make_obs(), FusionMode::AbitOnly);
  ASSERT_EQ(ranked.size(), 2U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x1000}));
  EXPECT_EQ(ranked[0].rank, 3U);
  for (const PageRank& pr : ranked) EXPECT_EQ(pr.trace, 0U);
}

TEST(Ranking, TraceOnlyIgnoresAbit) {
  const auto ranked = build_ranking(make_obs(), FusionMode::TraceOnly);
  ASSERT_EQ(ranked.size(), 2U);
  EXPECT_EQ(ranked[0].key, (PageKey{1, 0x2000}));
  EXPECT_EQ(ranked[0].rank, 10U);
}

TEST(Ranking, MaxFusion) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Max);
  EXPECT_EQ(ranked[0].rank, 10U);  // max(1, 10)
}

TEST(Ranking, WeightedFusion) {
  const auto ranked = build_ranking(make_obs(), FusionMode::Weighted, 0.5);
  // b: 1 + 0.5*10 = 6; c: 0.5*4 = 2; a: 3.
  EXPECT_EQ(ranked[0].rank, 6U);
  EXPECT_EQ(ranked[1].rank, 3U);
  EXPECT_EQ(ranked[2].rank, 2U);
}

TEST(Ranking, DeterministicTieBreak) {
  EpochObservation obs;
  obs.abit[PageKey{1, 0x3000}] = 2;
  obs.abit[PageKey{1, 0x1000}] = 2;
  obs.abit[PageKey{1, 0x2000}] = 2;
  const auto ranked = build_ranking(obs, FusionMode::Sum);
  ASSERT_EQ(ranked.size(), 3U);
  EXPECT_LT(ranked[0].key, ranked[1].key);
  EXPECT_LT(ranked[1].key, ranked[2].key);
}

TEST(Ranking, EmptyObservationGivesEmptyRanking) {
  EpochObservation obs;
  EXPECT_TRUE(build_ranking(obs, FusionMode::Sum).empty());
}

TEST(Ranking, FusionNames) {
  EXPECT_EQ(to_string(FusionMode::Sum), "sum");
  EXPECT_EQ(to_string(FusionMode::AbitOnly), "abit-only");
  EXPECT_EQ(to_string(FusionMode::TraceOnly), "trace-only");
}

}  // namespace
}  // namespace tmprof::core
