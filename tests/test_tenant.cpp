#include "tiering/tenant.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "tiering/runner.hpp"
#include "util/ckpt.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

TenantSpec make_spec(const char* name, QosClass qos, std::uint64_t floor,
                     std::uint32_t bw_weight) {
  TenantSpec spec;
  spec.name = name;
  spec.qos = qos;
  spec.floor_frames = floor;
  spec.bandwidth_weight = bw_weight;
  return spec;
}

// ---------------------------------------------------------------------------
// QoS parsing and registration validation.

TEST(TenantQos, ParseAcceptsBothClasses) {
  EXPECT_EQ(parse_qos_class("latency"), QosClass::Latency);
  EXPECT_EQ(parse_qos_class("batch"), QosClass::Batch);
}

TEST(TenantQos, ParseRejectsUnknownClassEnumeratingValidNames) {
  try {
    (void)parse_qos_class("bestish-effort");
    FAIL() << "unknown QoS class accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bestish-effort"), std::string::npos);
    EXPECT_NE(what.find("latency"), std::string::npos);
    EXPECT_NE(what.find("batch"), std::string::npos);
  }
}

TEST(TenantRegistration, RejectsInvalidNamesAndDuplicates) {
  TenantArbiter arbiter;
  EXPECT_THROW(
      arbiter.register_tenant(1, make_spec("", QosClass::Batch, 0, 1)),
      std::invalid_argument);
  EXPECT_THROW(
      arbiter.register_tenant(1, make_spec("Shouty", QosClass::Batch, 0, 1)),
      std::invalid_argument);
  EXPECT_THROW(
      arbiter.register_tenant(1, make_spec("has-dash", QosClass::Batch, 0, 1)),
      std::invalid_argument);
  arbiter.register_tenant(1, make_spec("svc_0", QosClass::Latency, 8, 1));
  EXPECT_THROW(  // duplicate name
      arbiter.register_tenant(2, make_spec("svc_0", QosClass::Batch, 0, 1)),
      std::invalid_argument);
  EXPECT_THROW(  // duplicate pid
      arbiter.register_tenant(1, make_spec("svc_1", QosClass::Batch, 0, 1)),
      std::invalid_argument);
  EXPECT_EQ(arbiter.size(), 1U);
  EXPECT_EQ(arbiter.tenant_of(1), 0U);
  EXPECT_EQ(arbiter.tenant_of(7), TenantArbiter::kNoTenant);
}

TEST(TenantRegistration, FaultTagDependsOnlyOnName) {
  // Fault-site keys mix in a hash of the tenant *name*, so a tenant that
  // re-arrives later (different pid, different registration order) faults
  // at the same deterministic sites (docs/ROBUSTNESS.md).
  TenantArbiter a;
  a.register_tenant(1, make_spec("alpha", QosClass::Latency, 0, 1));
  a.register_tenant(2, make_spec("beta", QosClass::Batch, 0, 1));
  TenantArbiter b;
  b.register_tenant(5, make_spec("beta", QosClass::Batch, 0, 1));
  b.register_tenant(9, make_spec("alpha", QosClass::Latency, 0, 1));
  EXPECT_EQ(a.fault_tag(0), b.fault_tag(1));
  EXPECT_EQ(a.fault_tag(1), b.fault_tag(0));
  EXPECT_NE(a.fault_tag(0), a.fault_tag(1));
}

// ---------------------------------------------------------------------------
// Quota grants: floors first, burst by decayed benefit, leftover to
// latency before batch. All integer arithmetic — assertions are exact.

TEST(TenantQuota, FloorsGrantedBeforeBenefitSplitBurst) {
  TenantArbiter arbiter;
  arbiter.set_capacity(1000);
  arbiter.register_tenant(1, make_spec("service", QosClass::Latency, 600, 1));
  arbiter.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  arbiter.register_tenant(3, make_spec("batch_2", QosClass::Batch, 0, 1));
  arbiter.begin_epoch({0, 1000, 1000}, {800, 500, 500}, 0);
  // Floor: min(800, 600) = 600. Burst pool 400 splits over benefit+1 =
  // {1, 1001, 1001}: service floor(400/2003) = 0, each batch 199. The
  // 2-frame rounding leftover goes to the latency tenant first.
  EXPECT_EQ(arbiter.grant_of(0), 602U);
  EXPECT_EQ(arbiter.grant_of(1), 199U);
  EXPECT_EQ(arbiter.grant_of(2), 199U);
}

TEST(TenantQuota, OversoldFloorsAreNeverDiluted) {
  // If the operator oversells floors, every floor is still granted in
  // full (capped at demand) and the burst pool is simply empty.
  TenantArbiter arbiter;
  arbiter.set_capacity(500);
  arbiter.register_tenant(1, make_spec("svc_a", QosClass::Latency, 400, 1));
  arbiter.register_tenant(2, make_spec("svc_b", QosClass::Latency, 300, 1));
  arbiter.begin_epoch({10, 10}, {1000, 1000}, 0);
  EXPECT_EQ(arbiter.grant_of(0), 400U);
  EXPECT_EQ(arbiter.grant_of(1), 300U);
}

TEST(TenantQuota, RoundingLeftoverGoesToLatencyBeforeBatch) {
  TenantArbiter arbiter;
  arbiter.set_capacity(11);
  arbiter.register_tenant(1, make_spec("batch_1", QosClass::Batch, 0, 1));
  arbiter.register_tenant(2, make_spec("service", QosClass::Latency, 0, 1));
  arbiter.begin_epoch({0, 0}, {10, 10}, 0);
  // Equal zero benefit: each share is 11/2 = 5; the leftover frame goes
  // to the latency tenant even though it registered second.
  EXPECT_EQ(arbiter.grant_of(0), 5U);
  EXPECT_EQ(arbiter.grant_of(1), 6U);
}

TEST(TenantQuota, ChargesBeyondGrantRefusedAndTallied) {
  TenantArbiter arbiter;
  arbiter.set_capacity(100);
  arbiter.register_tenant(1, make_spec("service", QosClass::Latency, 60, 1));
  arbiter.begin_epoch({5}, {80}, 0);
  ASSERT_EQ(arbiter.grant_of(0), 80U);  // floor 60 + entire 40-frame burst
  EXPECT_TRUE(arbiter.try_charge_frames(1, 50));
  EXPECT_TRUE(arbiter.try_charge_frames(1, 30));
  EXPECT_FALSE(arbiter.try_charge_frames(1, 1));  // grant exhausted
  EXPECT_TRUE(arbiter.try_charge_frames(99, 1000));  // unregistered pid
  const std::vector<TenantOutcome> out = arbiter.snapshot_outcomes();
  EXPECT_EQ(out.at(0).quota_shed, 1U);
}

TEST(TenantQuota, BandwidthCarvedByWeightAndRefusalsTallied) {
  TenantArbiter arbiter;
  arbiter.set_capacity(100);
  arbiter.register_tenant(1, make_spec("service", QosClass::Latency, 0, 3));
  arbiter.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  arbiter.begin_epoch({0, 0}, {0, 0}, 100);
  // 100 tokens carve 3:1 — service 75, batch 25.
  EXPECT_TRUE(arbiter.try_charge_bandwidth(1, 50));
  EXPECT_FALSE(arbiter.try_charge_bandwidth(1, 30));  // 25 left
  EXPECT_TRUE(arbiter.try_charge_bandwidth(2, 25));
  EXPECT_FALSE(arbiter.try_charge_bandwidth(2, 1));
  EXPECT_TRUE(arbiter.try_charge_bandwidth(42, 1 << 30));  // unknown pid
  const std::vector<TenantOutcome> out = arbiter.snapshot_outcomes();
  EXPECT_EQ(out.at(0).bandwidth_rejected, 1U);
  EXPECT_EQ(out.at(1).bandwidth_rejected, 1U);

  // A zero-token epoch (bucket off or drained) disables the carve.
  arbiter.begin_epoch({0, 0}, {0, 0}, 0);
  EXPECT_TRUE(arbiter.try_charge_bandwidth(1, 1 << 30));
}

TEST(TenantQuota, BenefitDecaysWhenTenantGoesIdle) {
  // A tenant that stops producing heat sheds its burst claim within a few
  // epochs: benefit halves each epoch, so the still-hot tenant's share of
  // the pool grows monotonically.
  TenantArbiter arbiter;
  arbiter.set_capacity(100);
  arbiter.register_tenant(1, make_spec("idle", QosClass::Batch, 0, 1));
  arbiter.register_tenant(2, make_spec("hot", QosClass::Batch, 0, 1));
  arbiter.begin_epoch({1000, 1000}, {100, 100}, 0);
  const std::uint64_t equal_grant = arbiter.grant_of(0);
  EXPECT_EQ(equal_grant, arbiter.grant_of(1));
  std::uint64_t last_idle = equal_grant;
  for (int e = 0; e < 4; ++e) {
    arbiter.begin_epoch({0, 1000}, {100, 100}, 0);
    EXPECT_LE(arbiter.grant_of(0), last_idle);
    EXPECT_GE(arbiter.grant_of(1), arbiter.grant_of(0));
    last_idle = arbiter.grant_of(0);
  }
  EXPECT_LT(last_idle, equal_grant);
}

// ---------------------------------------------------------------------------
// Telemetry mirrors.

TEST(TenantTelemetry, PerTenantMetricsUseNameSegments) {
  telemetry::Telemetry sink{telemetry::TelemetryConfig{}};
  TenantArbiter arbiter;
  arbiter.set_capacity(100);
  arbiter.register_tenant(1, make_spec("service", QosClass::Latency, 10, 1));
  arbiter.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  arbiter.set_telemetry(&sink);
  arbiter.begin_epoch({50, 50}, {40, 40}, 0);
  (void)arbiter.try_charge_frames(1, 40);
  EXPECT_FALSE(arbiter.try_charge_frames(1, 10));
  arbiter.note_reclaimed(2, 7);
  arbiter.note_hitrate_bp(0, 9876);
  arbiter.set_occupancy(0, 33);
  arbiter.publish_telemetry();
  const telemetry::MetricsRegistry& m = sink.metrics();
  EXPECT_EQ(m.gauge_value("tenant_service_grant_frames"),
            arbiter.grant_of(0));
  EXPECT_EQ(m.gauge_value("tenant_service_occupancy_frames"), 33U);
  EXPECT_EQ(m.gauge_value("tenant_service_hitrate_bp"), 9876U);
  EXPECT_EQ(m.counter_value("tenant_service_shed_total"), 10U);
  EXPECT_EQ(m.counter_value("tenant_batch_1_reclaimed_frames_total"), 7U);
}

TEST(TenantTelemetry, NoTenantsRegistersNothing) {
  // Fleet-off runs must export byte-identical telemetry, so an empty
  // arbiter never touches the registry.
  telemetry::Telemetry sink{telemetry::TelemetryConfig{}};
  TenantArbiter arbiter;
  arbiter.set_telemetry(&sink);
  arbiter.publish_telemetry();
  for (const auto& [name, value] : sink.metrics().counters()) {
    EXPECT_EQ(name.rfind("tenant_", 0), std::string::npos) << name;
  }
  for (const auto& [name, value] : sink.metrics().gauges()) {
    EXPECT_EQ(name.rfind("tenant_", 0), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------------
// Checkpointing.

TenantArbiter populated_arbiter() {
  TenantArbiter arbiter;
  arbiter.set_capacity(512);
  arbiter.register_tenant(1, make_spec("service", QosClass::Latency, 256, 4));
  arbiter.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  arbiter.register_tenant(3, make_spec("batch_2", QosClass::Batch, 0, 1));
  util::Rng rng(23);
  for (std::uint32_t epoch = 1; epoch <= 4; ++epoch) {
    arbiter.begin_epoch(
        {rng.below(4000), rng.below(800), rng.below(800)},
        {200 + rng.below(120), rng.below(200), rng.below(200)},
        32ULL << mem::kPageShift);
    for (mem::Pid pid = 1; pid <= 3; ++pid) {
      (void)arbiter.try_charge_frames(pid, 1 + rng.below(48));
      (void)arbiter.try_charge_bandwidth(pid,
                                         rng.below(16) << mem::kPageShift);
      (void)arbiter.next_move_seq(arbiter.tenant_of(pid));
    }
    arbiter.note_reclaimed(3, rng.below(12));
    arbiter.note_hitrate_bp(0, 9000 + rng.below(900));
    arbiter.set_occupancy(0, 180 + rng.below(76));
  }
  return arbiter;
}

std::vector<std::uint8_t> state_image(const TenantArbiter& arbiter) {
  util::ckpt::Writer w;
  w.begin_section("tenant");
  arbiter.save_state(w);
  w.end_section();
  return w.finish();
}

TEST(TenantCkpt, RoundTripIsByteIdentical) {
  const TenantArbiter src = populated_arbiter();
  const std::vector<std::uint8_t> first = state_image(src);

  TenantArbiter dst;
  dst.set_capacity(512);
  dst.register_tenant(1, make_spec("service", QosClass::Latency, 256, 4));
  dst.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  dst.register_tenant(3, make_spec("batch_2", QosClass::Batch, 0, 1));
  util::ckpt::Reader r(first);
  r.enter_section("tenant");
  dst.load_state(r);
  r.end_section();
  EXPECT_EQ(state_image(dst), first);
  EXPECT_EQ(dst.epoch(), src.epoch());
}

TEST(TenantCkpt, CountMismatchRejectedAsTenantSection) {
  const std::vector<std::uint8_t> image = state_image(populated_arbiter());
  TenantArbiter smaller;
  smaller.set_capacity(512);
  smaller.register_tenant(1, make_spec("service", QosClass::Latency, 256, 4));
  smaller.register_tenant(2, make_spec("batch_1", QosClass::Batch, 0, 1));
  util::ckpt::Reader r(image);
  r.enter_section("tenant");
  try {
    smaller.load_state(r);
    FAIL() << "tenant count mismatch accepted";
  } catch (const util::ckpt::CkptError& e) {
    EXPECT_EQ(e.section(), "tenant");
  }
}

// ---------------------------------------------------------------------------
// End-to-end fleet properties through the runner.

sim::SimConfig fleet_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 9;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

WorkloadFactory fleet_factory() {
  return [](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> v;
    v.push_back(std::make_unique<workloads::ZipfWorkload>(
        3ULL << 19, 4096, 0.9, 0.05, seed));
    v.push_back(std::make_unique<workloads::ChurnSessionWorkload>(
        1ULL << 19, 4096, 0.9, 6000, 6000, 4, 0, seed + 1));
    v.push_back(std::make_unique<workloads::ChurnSessionWorkload>(
        1ULL << 19, 4096, 0.9, 6000, 6000, 4, 4000, seed + 2));
    return v;
  };
}

RunnerOptions fleet_runner() {
  RunnerOptions opt;
  opt.policy = "history";
  opt.n_epochs = 5;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  opt.mover.min_rank = 1;
  opt.tenants.push_back(make_spec("service", QosClass::Latency, 192, 4));
  opt.tenants.push_back(make_spec("batch_1", QosClass::Batch, 0, 1));
  opt.tenants.push_back(make_spec("batch_2", QosClass::Batch, 0, 1));
  opt.process_weights = {2.0, 1.0, 1.0};
  return opt;
}

TEST(TenantRunner, FloorHeldAndBatchReclaimedFirstUnderPressure) {
  // 384 service pages + 2x128 batch pages over a 512-frame fast tier:
  // genuine pressure. The latency tenant must end at or above its floor
  // with nothing shed, while reclaim falls on the batch neighbors.
  const RunnerResult result =
      EndToEndRunner::run(fleet_factory(), fleet_config(), fleet_runner());
  ASSERT_EQ(result.tenants.size(), 3U);
  const TenantOutcome& service = result.tenants.at(0);
  EXPECT_EQ(service.name, "service");
  EXPECT_EQ(service.qos, QosClass::Latency);
  EXPECT_GE(service.occupancy_frames, service.floor_frames);
  const std::uint64_t batch_reclaimed = result.tenants.at(1).reclaimed_frames +
                                        result.tenants.at(2).reclaimed_frames;
  EXPECT_GT(batch_reclaimed, 0U);
  EXPECT_LE(service.reclaimed_frames, batch_reclaimed);
  ASSERT_EQ(result.process_hitrates.size(), 3U);
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    EXPECT_EQ(result.tenants[i].hitrate, result.process_hitrates[i]);
  }
}

TEST(TenantRunner, FleetBitwiseInvariantAcrossThreadCounts) {
  // Arbitration is integer arithmetic over epoch-barrier inputs, so the
  // whole churned fleet — grants, tallies, hitrates — must be bitwise
  // identical at 1 and 8 threads.
  RunnerOptions one = fleet_runner();
  one.n_threads = 1;
  RunnerOptions eight = fleet_runner();
  eight.n_threads = 8;
  const RunnerResult a =
      EndToEndRunner::run(fleet_factory(), fleet_config(), one);
  const RunnerResult b =
      EndToEndRunner::run(fleet_factory(), fleet_config(), eight);
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  std::uint64_t ha = 0, hb = 0;
  std::memcpy(&ha, &a.tier1_hitrate, sizeof ha);
  std::memcpy(&hb, &b.tier1_hitrate, sizeof hb);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.moves.promoted, b.moves.promoted);
  EXPECT_EQ(a.moves.demoted, b.moves.demoted);
  EXPECT_EQ(a.moves.shed, b.moves.shed);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].grant_frames, b.tenants[i].grant_frames);
    EXPECT_EQ(a.tenants[i].demand_frames, b.tenants[i].demand_frames);
    EXPECT_EQ(a.tenants[i].occupancy_frames, b.tenants[i].occupancy_frames);
    EXPECT_EQ(a.tenants[i].quota_shed, b.tenants[i].quota_shed);
    EXPECT_EQ(a.tenants[i].reclaimed_frames, b.tenants[i].reclaimed_frames);
    std::uint64_t ta = 0, tb = 0;
    std::memcpy(&ta, &a.tenants[i].hitrate, sizeof ta);
    std::memcpy(&tb, &b.tenants[i].hitrate, sizeof tb);
    EXPECT_EQ(ta, tb);
  }
}

}  // namespace
}  // namespace tmprof::tiering
