#include "tiering/series_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"

namespace tmprof::tiering {
namespace {

PageKey key(std::uint64_t n) { return PageKey{1000, n * mem::kPageSize}; }

EpochSeries sample_series() {
  EpochSeries series;
  for (std::uint32_t e = 0; e < 3; ++e) {
    EpochData data;
    data.epoch = e;
    for (std::uint64_t p = 0; p < 6; ++p) {
      data.truth[key(p)] = (p + 1) * (e + 1);
      data.truth_total += (p + 1) * (e + 1);
      data.observed.abit[key(p)] = 1;
      if (p % 2 == 0) {
        data.observed.trace[key(p)] = static_cast<std::uint32_t>(p * 3 + 1);
      }
      if (p == 5) data.observed.writes[key(p)] = 7;
      if (e == 0) data.new_pages.push_back(key(p));
    }
    series.epochs.push_back(std::move(data));
  }
  for (std::uint64_t p = 0; p < 6; ++p) {
    series.page_sizes[key(p)] =
        p == 5 ? mem::PageSize::k2M : mem::PageSize::k4K;
  }
  series.footprint_frames = 5 + mem::kPagesPerHuge;
  return series;
}

TEST(SeriesIo, RoundTripPreservesEverything) {
  const EpochSeries original = sample_series();
  std::stringstream buffer;
  save_series(original, buffer);
  const EpochSeries loaded = load_series(buffer);

  ASSERT_EQ(loaded.epochs.size(), original.epochs.size());
  EXPECT_EQ(loaded.footprint_frames, original.footprint_frames);
  EXPECT_EQ(loaded.page_sizes, original.page_sizes);
  for (std::size_t e = 0; e < original.epochs.size(); ++e) {
    const EpochData& a = original.epochs[e];
    const EpochData& b = loaded.epochs[e];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.truth, b.truth);
    EXPECT_EQ(a.truth_total, b.truth_total);
    EXPECT_EQ(a.observed.abit, b.observed.abit);
    EXPECT_EQ(a.observed.trace, b.observed.trace);
    EXPECT_EQ(a.observed.writes, b.observed.writes);
    EXPECT_EQ(a.new_pages, b.new_pages);
  }
}

TEST(SeriesIo, EvaluationIdenticalAfterRoundTrip) {
  const EpochSeries original = sample_series();
  std::stringstream buffer;
  save_series(original, buffer);
  const EpochSeries loaded = load_series(buffer);
  HitrateOptions opt;
  opt.capacity_frames = 3;
  HistoryPolicy a, b;
  EXPECT_DOUBLE_EQ(evaluate_policy(a, original, opt).overall,
                   evaluate_policy(b, loaded, opt).overall);
}

TEST(SeriesIo, RejectsBadHeader) {
  std::stringstream buffer("not-a-series\n");
  EXPECT_THROW(load_series(buffer), std::runtime_error);
}

TEST(SeriesIo, RejectsTruncatedEpoch) {
  const EpochSeries original = sample_series();
  std::stringstream buffer;
  save_series(original, buffer);
  std::string text = buffer.str();
  text.resize(text.rfind("end"));  // chop the final end marker
  std::stringstream chopped(text);
  EXPECT_THROW(load_series(chopped), std::runtime_error);
}

TEST(SeriesIo, RejectsGarbageLines) {
  std::stringstream buffer("tmprof-series 1\nbogus 1 2 3\n");
  EXPECT_THROW(load_series(buffer), std::runtime_error);
}

TEST(SeriesIo, FileRoundTrip) {
  const EpochSeries original = sample_series();
  const std::string path = "/tmp/tmprof_series_test.txt";
  save_series_file(original, path);
  const EpochSeries loaded = load_series_file(path);
  EXPECT_EQ(loaded.epochs.size(), original.epochs.size());
  EXPECT_THROW(load_series_file("/nonexistent/series.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace tmprof::tiering
