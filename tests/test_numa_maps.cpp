#include "core/numa_maps.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "workloads/gups.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 8;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

TEST(NumaMaps, CoalescesContiguousMappings) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 14, 4096, 0.0, 1));
  sys.step(4);  // 4 contiguous pages
  PageStatsStore store(sys.phys().total_frames());
  const std::string text = numa_maps(sys, pid, store);
  // One contiguous run => exactly one line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_NE(text.find("pages=4"), std::string::npos);
  EXPECT_NE(text.find("tier0=4"), std::string::npos);
}

TEST(NumaMaps, ReportsTierSplit) {
  sim::System sys(small_config());  // tier0 holds only 8 frames
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  sys.step(16);  // 8 land in tier0, 8 spill
  PageStatsStore store(sys.phys().total_frames());
  const std::string text = numa_maps(sys, pid, store);
  EXPECT_NE(text.find("tier0=8"), std::string::npos);
  EXPECT_NE(text.find("tier1=8"), std::string::npos);
}

TEST(NumaMaps, ShowsProfilingCounts) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 1));
  DriverConfig cfg;
  cfg.ibs = monitors::IbsConfig::with_period(64);
  cfg.trace_memory_only = false;  // tiny footprint: count cache hits too
  TmpDriver driver(sys, cfg);
  sys.step(20000);
  driver.scan_processes({pid});
  driver.end_epoch();
  const std::string text = numa_maps(sys, pid, driver.store());
  EXPECT_EQ(text.find("abit=0 "), std::string::npos);
  EXPECT_EQ(text.find("trace=0\n"), std::string::npos);
}

TEST(NumaMaps, MarksHugeMappings) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 12;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::GupsWorkload>(4 << 20, 1));
  sys.step(100);
  PageStatsStore store(sys.phys().total_frames());
  const std::string text = numa_maps(sys, pid, store);
  EXPECT_NE(text.find(" huge"), std::string::npos);
}

TEST(NumaMaps, AllProcessesHaveHeaders) {
  sim::System sys(small_config());
  const mem::Pid a = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 1));
  const mem::Pid b = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 2));
  sys.step(100);
  PageStatsStore store(sys.phys().total_frames());
  const std::string text = numa_maps_all(sys, store);
  EXPECT_NE(text.find("==== pid " + std::to_string(a)), std::string::npos);
  EXPECT_NE(text.find("==== pid " + std::to_string(b)), std::string::npos);
}

}  // namespace
}  // namespace tmprof::core
