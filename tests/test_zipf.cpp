#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace tmprof::util {
namespace {

TEST(Zipf, SamplesStayInRange) {
  ZipfDistribution zipf(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf(rng), 1000U);
  }
}

TEST(Zipf, SingleItemAlwaysZero) {
  ZipfDistribution zipf(1, 0.99);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0U);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(500, 0.9);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 500; ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfDistribution zipf(100, 1.2);
  for (std::uint64_t r = 1; r < 100; ++r) {
    EXPECT_GT(zipf.pmf(r - 1), zipf.pmf(r));
  }
}

TEST(Zipf, RejectsThetaOne) {
  EXPECT_THROW(ZipfDistribution(10, 1.0), AssertionError);
}

/// Property sweep: empirical frequency of the head rank matches pmf across
/// sizes and skews.
class ZipfFrequency
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfFrequency, HeadFrequencyMatchesPmf) {
  const auto [n, theta] = GetParam();
  ZipfDistribution zipf(n, theta);
  Rng rng(42);
  const int draws = 200000;
  int head = 0;
  for (int i = 0; i < draws; ++i) {
    if (zipf(rng) == 0) ++head;
  }
  const double expected = zipf.pmf(0);
  EXPECT_NEAR(static_cast<double>(head) / draws, expected,
              0.1 * expected + 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSkews, ZipfFrequency,
    ::testing::Combine(::testing::Values<std::uint64_t>(10, 1000, 100000),
                       ::testing::Values(0.5, 0.9, 0.99, 1.2)));

TEST(HotCold, HotWeightRespected) {
  HotColdDistribution dist(1000, 100, 0.9);
  Rng rng(3);
  const int draws = 100000;
  int hot = 0;
  for (int i = 0; i < draws; ++i) {
    if (dist(rng) < 100) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / draws, 0.9, 0.01);
}

TEST(HotCold, ColdDrawsLandInTail) {
  HotColdDistribution dist(1000, 10, 0.0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = dist(rng);
    EXPECT_GE(v, 10U);
    EXPECT_LT(v, 1000U);
  }
}

TEST(HotCold, AllHotDegeneratesToUniform) {
  HotColdDistribution dist(100, 100, 0.5);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(dist(rng), 100U);
}

TEST(HotCold, RejectsBadArguments) {
  EXPECT_THROW(HotColdDistribution(10, 11, 0.5), AssertionError);
  EXPECT_THROW(HotColdDistribution(10, 0, 0.5), AssertionError);
  EXPECT_THROW(HotColdDistribution(10, 5, 1.5), AssertionError);
}

}  // namespace
}  // namespace tmprof::util
