#include "core/page_stats.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::core {
namespace {

TEST(PageStats, CountsPerMethod) {
  PageStatsStore store(100);
  store.record_abit(1, 0);
  store.record_abit(1, 1);
  store.record_trace(2, 0);
  EXPECT_EQ(store.desc(1).abit_total, 2U);
  EXPECT_EQ(store.desc(2).trace_total, 1U);
  EXPECT_EQ(store.frames_with_abit(), 1U);
  EXPECT_EQ(store.frames_with_trace(), 1U);
  EXPECT_EQ(store.frames_with_both(), 0U);
}

TEST(PageStats, BothRequiresSameEpoch) {
  PageStatsStore store(100);
  // Different epochs: no co-detection.
  store.record_abit(5, 0);
  store.record_trace(5, 1);
  EXPECT_EQ(store.frames_with_both(), 0U);
  // Same epoch: co-detection, whichever order.
  store.record_abit(6, 3);
  store.record_trace(6, 3);
  store.record_trace(7, 4);
  store.record_abit(7, 4);
  EXPECT_EQ(store.frames_with_both(), 2U);
  EXPECT_EQ(store.desc(6).both_epochs, 1U);
}

TEST(PageStats, BothCountedOncePerFrame) {
  PageStatsStore store(10);
  store.record_abit(3, 0);
  store.record_trace(3, 0);
  store.record_abit(3, 1);
  store.record_trace(3, 1);
  EXPECT_EQ(store.frames_with_both(), 1U);
  EXPECT_EQ(store.desc(3).both_epochs, 2U);
}

TEST(PageStats, RepeatSamplesSameEpochDontDoubleCountBoth) {
  PageStatsStore store(10);
  store.record_trace(3, 0);
  store.record_trace(3, 0);
  store.record_abit(3, 0);
  store.record_abit(3, 0);
  EXPECT_EQ(store.desc(3).both_epochs, 1U);
  EXPECT_EQ(store.desc(3).trace_total, 2U);
  EXPECT_EQ(store.desc(3).abit_total, 2U);
}

TEST(PageStats, ResetClearsEverything) {
  PageStatsStore store(10);
  store.record_abit(1, 0);
  store.record_trace(1, 0);
  store.reset();
  EXPECT_EQ(store.frames_with_abit(), 0U);
  EXPECT_EQ(store.frames_with_trace(), 0U);
  EXPECT_EQ(store.frames_with_both(), 0U);
  EXPECT_EQ(store.desc(1).abit_total, 0U);
}

TEST(PageStats, BoundsChecked) {
  PageStatsStore store(4);
  EXPECT_THROW(store.record_abit(4, 0), util::AssertionError);
  EXPECT_THROW(store.desc(4), util::AssertionError);
}

}  // namespace
}  // namespace tmprof::core
