#include "monitors/ibs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tmprof::monitors {
namespace {

MemOpEvent make_op(std::uint32_t core, mem::VirtAddr vaddr,
                   mem::DataSource src = mem::DataSource::MemTier1) {
  MemOpEvent ev;
  ev.core = core;
  ev.pid = 1;
  ev.vaddr = vaddr;
  ev.paddr = vaddr;  // identity-ish for tests
  ev.source = src;
  return ev;
}

TEST(Ibs, SampleRateApproximatesPeriod) {
  IbsConfig cfg = IbsConfig::with_period(1024);
  cfg.randomize = true;
  IbsMonitor ibs(cfg, 1);
  const std::uint64_t ops = 200000;
  const std::uint64_t uops_per_op = 4;
  for (std::uint64_t i = 0; i < ops; ++i) {
    ibs.on_retire(0, uops_per_op, 0);
    ibs.on_mem_op(make_op(0, i * 64));
  }
  // Expected samples = total_uops / period * P(tag lands on the mem uop)
  //                  = ops*4/1024 * (1/4) = ops/1024.
  const double expected = static_cast<double>(ops) / 1024.0;
  EXPECT_NEAR(static_cast<double>(ibs.samples_taken()), expected,
              expected * 0.25);
  // Lost tags account for tags landing on non-memory uops.
  EXPECT_GT(ibs.tags_lost(), 0U);
}

TEST(Ibs, HigherRateMoreSamples) {
  std::uint64_t counts[2];
  int idx = 0;
  for (std::uint64_t period : {4096ULL, 1024ULL}) {
    IbsMonitor ibs(IbsConfig::with_period(period), 1);
    for (std::uint64_t i = 0; i < 100000; ++i) {
      ibs.on_retire(0, 4, 0);
      ibs.on_mem_op(make_op(0, i * 64));
    }
    counts[idx++] = ibs.samples_taken();
  }
  EXPECT_GT(counts[1], counts[0] * 2);
}

TEST(Ibs, RecordsCarrySampleFields) {
  IbsConfig cfg = IbsConfig::with_period(16);
  cfg.randomize = false;
  IbsMonitor ibs(cfg, 1);
  std::vector<TraceSample> got;
  ibs.set_drain([&](std::span<const TraceSample> s) {
    got.insert(got.end(), s.begin(), s.end());
  });
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ibs.on_retire(0, 1, i);  // 1 uop per op => every tag is a mem op
    MemOpEvent ev = make_op(0, 0xabc000 + i);
    ev.time = i;
    ev.is_store = (i % 2) == 0;
    ev.tlb = mem::TlbHit::Miss;
    ibs.on_mem_op(ev);
  }
  ibs.drain();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.size(), ibs.samples_taken());
  for (const TraceSample& s : got) {
    EXPECT_EQ(s.pid, 1U);
    EXPECT_GE(s.vaddr, 0xabc000U);
    EXPECT_TRUE(s.tlb_miss);
  }
}

TEST(Ibs, BufferFullTriggersInterruptDrain) {
  IbsConfig cfg = IbsConfig::with_period(16);
  cfg.randomize = false;
  cfg.buffer_capacity = 8;
  IbsMonitor ibs(cfg, 1);
  int drains = 0;
  ibs.set_drain([&](std::span<const TraceSample> s) {
    EXPECT_EQ(s.size(), 8U);
    ++drains;
  });
  for (std::uint64_t i = 0; i < 16 * 20; ++i) {
    ibs.on_retire(0, 1, 0);
    ibs.on_mem_op(make_op(0, i));
  }
  EXPECT_GE(drains, 2);
  EXPECT_EQ(ibs.interrupts(), static_cast<std::uint64_t>(drains));
}

TEST(Ibs, PerCoreCountdownsAreIndependent) {
  IbsConfig cfg = IbsConfig::with_period(64);
  cfg.randomize = false;
  IbsMonitor ibs(cfg, 2);
  // Only core 0 retires ops; core 1 must never produce samples.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ibs.on_retire(0, 1, 0);
    ibs.on_mem_op(make_op(0, i));
  }
  const std::uint64_t after_core0 = ibs.samples_taken();
  EXPECT_GT(after_core0, 0U);
  ibs.on_mem_op(make_op(1, 0x1));  // no tag armed on core 1
  EXPECT_EQ(ibs.samples_taken(), after_core0);
}

TEST(Ibs, OverheadGrowsWithSamples) {
  IbsConfig cfg = IbsConfig::with_period(16);
  cfg.randomize = false;
  IbsMonitor ibs(cfg, 1);
  EXPECT_EQ(ibs.overhead_ns(), 0U);
  for (std::uint64_t i = 0; i < 1600; ++i) {
    ibs.on_retire(0, 1, 0);
    ibs.on_mem_op(make_op(0, i));
  }
  EXPECT_GE(ibs.overhead_ns(), ibs.samples_taken() * cfg.cost_per_record_ns);
}

TEST(Ibs, PaperRates) {
  EXPECT_EQ(IbsConfig::paper_default().sample_period, 262144U);
  EXPECT_EQ(IbsConfig::paper_4x().sample_period, 65536U);
  EXPECT_EQ(IbsConfig::paper_8x().sample_period, 32768U);
}

}  // namespace
}  // namespace tmprof::monitors
