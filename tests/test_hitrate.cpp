#include "tiering/hitrate.hpp"

#include <gtest/gtest.h>

#include "tiering/policies.hpp"

namespace tmprof::tiering {
namespace {

PageKey key(std::uint64_t n) { return PageKey{1, n * mem::kPageSize}; }

/// Hand-built series: page 0 is persistently hot, pages 1..9 cold; a phase
/// change at epoch 2 makes page 5 the hot one.
EpochSeries synthetic_series() {
  EpochSeries series;
  for (std::uint32_t e = 0; e < 4; ++e) {
    EpochData data;
    data.epoch = e;
    const std::uint64_t hot = e < 2 ? 0 : 5;
    for (std::uint64_t p = 0; p < 10; ++p) {
      const std::uint64_t count = p == hot ? 900 : 10;
      data.truth[key(p)] = count;
      data.truth_total += count;
      // The profiler observes the truth (perfect profiler for this test).
      data.observed.trace[key(p)] = static_cast<std::uint32_t>(count);
      if (e == 0) data.new_pages.push_back(key(p));
    }
    series.epochs.push_back(std::move(data));
  }
  for (std::uint64_t p = 0; p < 10; ++p) {
    series.page_sizes[key(p)] = mem::PageSize::k4K;
  }
  series.footprint_frames = 10;
  return series;
}

HitrateOptions options(std::uint64_t capacity) {
  HitrateOptions opt;
  opt.capacity_frames = capacity;
  opt.fusion = core::FusionMode::Sum;
  return opt;
}

TEST(Hitrate, OracleBeatsHistoryAtPhaseChange) {
  const EpochSeries series = synthetic_series();
  OraclePolicy oracle;
  HistoryPolicy history;
  const HitrateResult o = evaluate_policy(oracle, series, options(1));
  const HitrateResult h = evaluate_policy(history, series, options(1));
  EXPECT_GT(o.overall, h.overall);
  // Oracle with capacity 1 always holds the hot page: ~91% hitrate.
  EXPECT_NEAR(o.overall, 900.0 / 990.0, 0.01);
}

TEST(Hitrate, HistoryLagsOneEpochAfterPhaseChange) {
  const EpochSeries series = synthetic_series();
  HistoryPolicy history;
  const HitrateResult h = evaluate_policy(history, series, options(1));
  ASSERT_EQ(h.per_epoch.size(), 4U);
  // Epoch 2 is the phase change: History still holds page 0.
  EXPECT_LT(h.per_epoch[2], 0.1);
  // Epoch 3: History caught up.
  EXPECT_GT(h.per_epoch[3], 0.85);
}

TEST(Hitrate, FullCapacityGivesPerfectHitrate) {
  const EpochSeries series = synthetic_series();
  OraclePolicy oracle;
  const HitrateResult r = evaluate_policy(oracle, series, options(10));
  EXPECT_DOUBLE_EQ(r.overall, 1.0);
}

TEST(Hitrate, FirstTouchIsCapacityBound) {
  const EpochSeries series = synthetic_series();
  FirstTouchPolicy ft;
  const HitrateResult r = evaluate_policy(ft, series, options(5));
  // First five touched pages stay put: 0..4 resident. Hot page 0 covered in
  // the first phase, hot page 5 missed in the second.
  EXPECT_GT(r.overall, 0.4);
  EXPECT_LT(r.overall, 0.6);
}

TEST(Hitrate, PromotionsCounted) {
  const EpochSeries series = synthetic_series();
  OraclePolicy oracle;
  const HitrateResult r = evaluate_policy(oracle, series, options(1));
  // Initial promotion + the phase-change swap.
  EXPECT_EQ(r.promotions, 2U);
}

TEST(Hitrate, TotalsAreConsistent) {
  const EpochSeries series = synthetic_series();
  HistoryPolicy history;
  const HitrateResult r = evaluate_policy(history, series, options(3));
  EXPECT_EQ(r.total_accesses, 4 * 990U);
  EXPECT_LE(r.tier1_accesses, r.total_accesses);
  EXPECT_NEAR(r.overall,
              static_cast<double>(r.tier1_accesses) /
                  static_cast<double>(r.total_accesses),
              1e-12);
}

TEST(Hitrate, ZeroCapacityRejected) {
  const EpochSeries series = synthetic_series();
  HistoryPolicy history;
  EXPECT_THROW(evaluate_policy(history, series, options(0)),
               util::AssertionError);
}

}  // namespace
}  // namespace tmprof::tiering
