#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  // All lines the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(TextTable, CountsRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0U);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.columns(), 1U);
}

TEST(TextTable, NumericHelpers) {
  EXPECT_EQ(TextTable::num(42), "42");
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.5), "50.0%");
  EXPECT_EQ(TextTable::percent(0.123, 2), "12.30%");
}

TEST(TextTable, HeaderAppearsInOutput) {
  TextTable t({"workload", "hitrate"});
  t.add_row({"gups", "0.42"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("workload"), std::string::npos);
  EXPECT_NE(s.find("gups"), std::string::npos);
  EXPECT_NE(s.find("0.42"), std::string::npos);
}

}  // namespace
}  // namespace tmprof::util
