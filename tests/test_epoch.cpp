#include "tiering/epoch.hpp"

#include <gtest/gtest.h>

namespace tmprof::tiering {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 15;
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

CollectOptions fast_options(std::uint32_t epochs = 3) {
  CollectOptions opt;
  opt.n_epochs = epochs;
  opt.ops_per_epoch = 50000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(512);
  return opt;
}

TEST(EpochCollect, ProducesOneRecordPerEpoch) {
  const auto spec = workloads::find_spec("gups", 0.1);
  const EpochSeries series =
      collect_series(spec, small_config(), fast_options(4));
  ASSERT_EQ(series.epochs.size(), 4U);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(series.epochs[e].epoch, e);
    EXPECT_GT(series.epochs[e].truth_total, 0U);
    EXPECT_FALSE(series.epochs[e].truth.empty());
  }
}

TEST(EpochCollect, TruthTotalsMatchPerPageSums) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const EpochSeries series =
      collect_series(spec, small_config(), fast_options());
  for (const EpochData& data : series.epochs) {
    std::uint64_t sum = 0;
    for (const auto& [key, count] : data.truth) sum += count;
    EXPECT_EQ(sum, data.truth_total);
  }
}

TEST(EpochCollect, NewPagesAppearExactlyOnce) {
  const auto spec = workloads::find_spec("web_serving", 0.2);
  const EpochSeries series =
      collect_series(spec, small_config(), fast_options());
  std::unordered_set<PageKey, PageKeyHash> seen;
  for (const EpochData& data : series.epochs) {
    for (const PageKey& key : data.new_pages) {
      EXPECT_TRUE(seen.insert(key).second);
    }
  }
  // Every page with truth counts was announced as new at some point.
  for (const EpochData& data : series.epochs) {
    for (const auto& [key, count] : data.truth) {
      EXPECT_TRUE(seen.count(key));
    }
  }
}

TEST(EpochCollect, PageSizesMatchWorkloadClass) {
  const auto hpc = workloads::find_spec("gups", 0.1);
  const EpochSeries series =
      collect_series(hpc, small_config(), fast_options(2));
  ASSERT_FALSE(series.page_sizes.empty());
  for (const auto& [key, size] : series.page_sizes) {
    EXPECT_EQ(size, mem::PageSize::k2M);
  }
  EXPECT_EQ(series.footprint_frames,
            series.page_sizes.size() * mem::kPagesPerHuge);
}

TEST(EpochCollect, DeterministicUnderSeed) {
  const auto spec = workloads::find_spec("graph500", 0.1);
  const EpochSeries a = collect_series(spec, small_config(), fast_options(2));
  const EpochSeries b = collect_series(spec, small_config(), fast_options(2));
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].truth_total, b.epochs[e].truth_total);
    EXPECT_EQ(a.epochs[e].truth.size(), b.epochs[e].truth.size());
  }
}

TEST(EpochCollect, ObservationsArriveFromBothMethods) {
  const auto spec = workloads::find_spec("gups", 0.1);
  const EpochSeries series =
      collect_series(spec, small_config(), fast_options());
  std::uint64_t abit = 0, trace = 0;
  for (const EpochData& data : series.epochs) {
    abit += data.observed.abit.size();
    trace += data.observed.trace.size();
  }
  EXPECT_GT(abit, 0U);
  EXPECT_GT(trace, 0U);
}

}  // namespace
}  // namespace tmprof::tiering
