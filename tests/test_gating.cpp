#include "core/gating.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::core {
namespace {

TEST(Gating, StartsActive) {
  ActivityGate gate;
  EXPECT_TRUE(gate.active());
}

TEST(Gating, TracksMaximum) {
  ActivityGate gate;
  gate.update(100);
  gate.update(50);
  EXPECT_EQ(gate.max_seen(), 100U);
  gate.update(200);
  EXPECT_EQ(gate.max_seen(), 200U);
}

TEST(Gating, TwentyPercentRule) {
  ActivityGate gate(0.2);
  EXPECT_TRUE(gate.update(1000));  // establishes the max; 1000 > 200
  EXPECT_TRUE(gate.update(999));   // 999 > 200
  EXPECT_TRUE(gate.update(201));   // just above threshold
  EXPECT_FALSE(gate.update(200));  // at threshold: not strictly above
  EXPECT_FALSE(gate.update(0));    // idle
  EXPECT_TRUE(gate.update(500));   // activity resumes
}

TEST(Gating, FirstUpdateWithMaxIsActive) {
  // The very first period both sets and is compared against the max:
  // current(1000) > 0.2*1000 holds, so profiling continues.
  ActivityGate gate(0.2);
  EXPECT_TRUE(gate.update(1000));
}

TEST(Gating, ZeroActivityStaysActiveUntilBaselineExists) {
  ActivityGate gate;
  EXPECT_TRUE(gate.update(0));  // no max yet: keep profiling
  gate.update(100);
  EXPECT_FALSE(gate.update(0));
}

TEST(Gating, ResetRestoresInitialState) {
  ActivityGate gate;
  gate.update(1000);
  gate.update(0);
  EXPECT_FALSE(gate.active());
  gate.reset();
  EXPECT_TRUE(gate.active());
  EXPECT_EQ(gate.max_seen(), 0U);
}

TEST(Gating, CustomThreshold) {
  ActivityGate gate(0.5);
  gate.update(100);
  EXPECT_TRUE(gate.update(51));
  EXPECT_FALSE(gate.update(50));
}

TEST(Gating, RejectsBadThreshold) {
  EXPECT_THROW(ActivityGate(0.0), util::AssertionError);
  EXPECT_THROW(ActivityGate(1.5), util::AssertionError);
}

}  // namespace
}  // namespace tmprof::core
