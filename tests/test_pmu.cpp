#include "pmu/counters.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace tmprof::pmu {
namespace {

TEST(PmuCore, TruthAlwaysCounts) {
  PmuCore core(4);
  core.record(Event::LlcMiss, 0, 5);
  core.record(Event::LlcMiss, 10, 2);
  EXPECT_EQ(core.truth(Event::LlcMiss), 7U);
}

TEST(PmuCore, UnprogrammedEventReadsZero) {
  PmuCore core(4);
  core.record(Event::LlcMiss, 0, 100);
  EXPECT_EQ(core.read(Event::LlcMiss), 0U);
}

TEST(PmuCore, ProgrammedEventReadsExactWithoutMultiplexing) {
  PmuCore core(4);
  core.program({Event::LlcMiss, Event::DtlbWalk});
  EXPECT_FALSE(core.multiplexing());
  core.record(Event::LlcMiss, 0, 42);
  core.record(Event::DtlbWalk, 0, 17);
  EXPECT_EQ(core.read(Event::LlcMiss), 42U);
  EXPECT_EQ(core.read(Event::DtlbWalk), 17U);
}

TEST(PmuCore, MultiplexingScalesEstimates) {
  PmuCore core(1);  // one register, two events -> 50% duty cycle each
  core.program({Event::LlcMiss, Event::DtlbWalk});
  EXPECT_TRUE(core.multiplexing());
  // Emit a steady stream of both events over many slices.
  const util::SimNs horizon = 100 * PmuCore::kSliceNs;
  for (util::SimNs t = 0; t < horizon; t += util::kMicrosecond * 100) {
    core.record(Event::LlcMiss, t, 10);
    core.record(Event::DtlbWalk, t, 10);
  }
  const std::uint64_t true_count = core.truth(Event::LlcMiss);
  const std::uint64_t estimate = core.read(Event::LlcMiss);
  // The scaled estimate should be within 15% of truth for a steady stream.
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(true_count),
              0.15 * static_cast<double>(true_count));
}

TEST(PmuCore, DuplicateProgrammingRejected) {
  PmuCore core(2);
  EXPECT_THROW(core.program({Event::LlcMiss, Event::LlcMiss}),
               util::AssertionError);
}

TEST(PmuCore, ReprogramResetsObservation) {
  PmuCore core(2);
  core.program({Event::LlcMiss});
  core.record(Event::LlcMiss, 0, 5);
  core.program({Event::LlcMiss});
  EXPECT_EQ(core.read(Event::LlcMiss), 0U);
  EXPECT_EQ(core.truth(Event::LlcMiss), 5U);
}

TEST(Pmu, AggregatesAcrossCores) {
  Pmu pmu(3, 4);
  pmu.program_all({Event::LlcMiss});
  pmu.core(0).record(Event::LlcMiss, 0, 1);
  pmu.core(1).record(Event::LlcMiss, 0, 2);
  pmu.core(2).record(Event::LlcMiss, 0, 3);
  EXPECT_EQ(pmu.read_total(Event::LlcMiss), 6U);
  EXPECT_EQ(pmu.truth_total(Event::LlcMiss), 6U);
}

TEST(Pmu, CoreIndexValidated) {
  Pmu pmu(2);
  EXPECT_THROW(pmu.core(2), util::AssertionError);
}

TEST(Events, NamesAreUnique) {
  for (std::size_t i = 0; i < kEventCount; ++i) {
    for (std::size_t j = i + 1; j < kEventCount; ++j) {
      EXPECT_NE(event_name(static_cast<Event>(i)),
                event_name(static_cast<Event>(j)));
    }
  }
}

}  // namespace
}  // namespace tmprof::pmu
