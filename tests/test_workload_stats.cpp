/// Statistical property tests: each Table III generator must reproduce the
/// access-distribution *class* that drives its paper results (skew,
/// uniformity, sequentiality, phases, churn). These tests pin the workload
/// models' shapes so refactors can't silently change the reproduction.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "workloads/registry.hpp"

namespace tmprof::workloads {
namespace {

/// Per-4K-page access histogram over `draws` references.
std::unordered_map<std::uint64_t, std::uint64_t> page_histogram(
    Workload& workload, int draws) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (int i = 0; i < draws; ++i) {
    counts[workload.next().offset >> mem::kPageShift] += 1;
  }
  return counts;
}

/// Fraction of traffic captured by the hottest `top_n` pages.
double head_concentration(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts,
    std::size_t top_n, int draws) {
  std::vector<std::uint64_t> values;
  values.reserve(counts.size());
  for (const auto& [page, count] : counts) values.push_back(count);
  std::sort(values.rbegin(), values.rend());
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < std::min(top_n, values.size()); ++i) {
    head += values[i];
  }
  return static_cast<double>(head) / draws;
}

TEST(WorkloadStats, GupsIsUniform) {
  const auto spec = find_spec("gups", 0.25);
  auto w = make_workload(spec, 0, 42);
  const int draws = 200000;
  const auto counts = page_histogram(*w, draws);
  // Uniform random RMW: pairs land on the same page, so distinct pages
  // ~ footprint, and the hottest 1% of pages carries ~1% of traffic (x2
  // slack for sampling noise).
  const double head = head_concentration(counts, counts.size() / 100, draws);
  EXPECT_LT(head, 0.03);
  // Footprint coverage: uniform sampling touches most pages.
  EXPECT_GT(counts.size(), (w->footprint_bytes() >> mem::kPageShift) / 2);
}

TEST(WorkloadStats, DataCachingIsZipfHeavy) {
  const auto spec = find_spec("data_caching", 0.25);
  auto w = make_workload(spec, 0, 42);
  const int draws = 200000;
  const auto counts = page_histogram(*w, draws);
  // Zipf 0.99: the top 1% of touched pages carries a large share.
  const double head = head_concentration(counts, counts.size() / 100, draws);
  EXPECT_GT(head, 0.15);
}

TEST(WorkloadStats, WebServingHotSetDominates) {
  const auto spec = find_spec("web_serving", 0.25);
  auto w = make_workload(spec, 0, 42);
  const int draws = 200000;
  const auto counts = page_histogram(*w, draws);
  // 85% of traffic goes to the hot ~3% of items.
  const double head = head_concentration(counts, counts.size() / 10, draws);
  EXPECT_GT(head, 0.7);
}

TEST(WorkloadStats, LuleshIsSequentialWithinArrays) {
  const auto spec = find_spec("lulesh", 0.25);
  auto w = make_workload(spec, 0, 42);
  // Each element's 5 stencil refs touch 3 arrays: exactly the two
  // consecutive same-array (west->center, center->east) pairs are spatially
  // near, giving a 2/5 near fraction — far above a random stream's ~0.
  std::uint64_t near = 0;
  const int draws = 100000;
  std::uint64_t prev = w->next().offset;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t offset = w->next().offset;
    const std::uint64_t delta =
        offset > prev ? offset - prev : prev - offset;
    near += delta < (1 << 20) ? 1 : 0;
    prev = offset;
  }
  EXPECT_NEAR(static_cast<double>(near) / draws, 0.4, 0.05);
}

TEST(WorkloadStats, DataAnalyticsAlternatesPhases) {
  const auto spec = find_spec("data_analytics", 0.25);
  auto w = make_workload(spec, 0, 42);
  // Stores only happen in shuffle phases; over a long horizon both phases
  // must appear, in runs (not interleaved uniformly).
  int transitions = 0;
  bool last_store = false;
  int stores = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const bool is_shuffle_ref = w->next().ip == 2;
    stores += is_shuffle_ref ? 1 : 0;
    if (is_shuffle_ref != last_store) ++transitions;
    last_store = is_shuffle_ref;
  }
  EXPECT_GT(stores, draws / 10);       // shuffle phase present
  EXPECT_LT(stores, draws / 2);        // map phase dominates
  EXPECT_LT(transitions, 200);         // phases are long runs
}

TEST(WorkloadStats, DataCachingHotSetDrifts) {
  const auto spec = find_spec("data_caching", 0.25);
  auto w = make_workload(spec, 0, 42);
  auto top_pages = [&](int draws) {
    const auto counts = page_histogram(*w, draws);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
        counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    std::unordered_set<std::uint64_t> top;
    for (std::size_t i = 0; i < std::min<std::size_t>(200, sorted.size());
         ++i) {
      top.insert(sorted[i].first);
    }
    return top;
  };
  const auto early = top_pages(400000);
  // Burn a long interval so churn rotates the mapping.
  for (int i = 0; i < 3'000'000; ++i) w->next();
  const auto late = top_pages(400000);
  std::size_t common = 0;
  for (const auto page : early) common += late.count(page);
  // The hot sets overlap partially but have visibly drifted.
  EXPECT_LT(common, early.size() * 9 / 10);
}

TEST(WorkloadStats, Graph500HubsAreHot) {
  const auto spec = find_spec("graph500", 0.25);
  auto w = make_workload(spec, 0, 42);
  const int draws = 200000;
  const auto counts = page_histogram(*w, draws);
  // Degree-skewed frontier selection concentrates offset-array traffic on
  // hub vertices: top 1% of pages well above uniform share.
  const double head = head_concentration(counts, counts.size() / 100, draws);
  EXPECT_GT(head, 0.05);
}

TEST(WorkloadStats, XsbenchIndexRegionIsHot) {
  const auto spec = find_spec("xsbench", 0.25);
  auto w = make_workload(spec, 0, 42);
  // 2 of every 8 refs hit the small index region (offsets below 1/32 of
  // the footprint): verify that region's traffic share.
  const std::uint64_t boundary = w->footprint_bytes() / 32;
  std::uint64_t in_index = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (w->next().offset < boundary) ++in_index;
  }
  const double share = static_cast<double>(in_index) / draws;
  EXPECT_GT(share, 0.2);
  EXPECT_LT(share, 0.6);
}

}  // namespace
}  // namespace tmprof::workloads
