#include "core/driver.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;  // small LLC so accesses reach memory
  cfg.tier1_frames = 8192;
  cfg.tier2_frames = 8192;
  return cfg;
}

DriverConfig fast_driver() {
  DriverConfig cfg;
  cfg.ibs = monitors::IbsConfig::with_period(256);
  return cfg;
}

TEST(Driver, CollectsTraceSamplesIntoEpoch) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  sys.step(100000);
  const EpochObservation obs = driver.end_epoch();
  EXPECT_FALSE(obs.trace.empty());
  for (const auto& [key, count] : obs.trace) {
    EXPECT_EQ(key.pid, pid);
    EXPECT_GT(count, 0U);
  }
  EXPECT_GT(driver.trace_samples_kept(), 0U);
}

TEST(Driver, AbitScanPopulatesObservation) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  sys.step(20000);
  const auto scan = driver.scan_processes({pid});
  EXPECT_GT(scan.pages_accessed, 0U);
  EXPECT_GE(scan.ptes_visited, scan.pages_accessed);
  const EpochObservation obs = driver.end_epoch();
  EXPECT_EQ(obs.abit.size(), scan.pages_accessed);
}

TEST(Driver, LoadsOnlyFilterDropsStores) {
  sim::SimConfig cfg = small_config();
  sim::System sys_a(cfg), sys_b(cfg);
  sys_a.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 1.0, 1));
  sys_b.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 1.0, 1));
  DriverConfig keep = fast_driver();
  keep.trace_loads_only = false;
  DriverConfig drop = fast_driver();
  drop.trace_loads_only = true;
  TmpDriver keeper(sys_a, keep);
  TmpDriver dropper(sys_b, drop);
  sys_a.step(50000);
  sys_b.step(50000);
  keeper.end_epoch();  // drains the trace buffer into the stats
  dropper.end_epoch();
  EXPECT_GT(keeper.trace_samples_kept(), 0U);
  EXPECT_EQ(dropper.trace_samples_kept(), 0U);  // all ops are stores
}

TEST(Driver, MemoryOnlyFilterDropsCacheHits) {
  // Tiny footprint: after warmup everything hits in cache, so a
  // memory-only driver collects almost nothing while a keep-all does.
  sim::SimConfig cfg = small_config();
  sim::System sys_a(cfg), sys_b(cfg);
  sys_a.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 1));
  sys_b.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 1));
  DriverConfig memonly = fast_driver();
  DriverConfig all = fast_driver();
  all.trace_memory_only = false;
  TmpDriver a(sys_a, memonly);
  TmpDriver b(sys_b, all);
  sys_a.step(100000);
  sys_b.step(100000);
  a.end_epoch();
  b.end_epoch();
  EXPECT_LT(a.trace_samples_kept(), b.trace_samples_kept() / 10);
}

TEST(Driver, TraceDisableStopsCollection) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  driver.set_trace_enabled(false);
  sys.step(50000);
  driver.end_epoch();
  EXPECT_EQ(driver.trace_samples_kept(), 0U);
  driver.set_trace_enabled(true);
  sys.step(50000);
  driver.end_epoch();
  EXPECT_GT(driver.trace_samples_kept(), 0U);
}

TEST(Driver, EpochsSeparateObservations) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  sys.step(30000);
  driver.scan_processes({pid});
  const EpochObservation first = driver.end_epoch();
  EXPECT_EQ(first.epoch, 0U);
  const EpochObservation empty = driver.end_epoch();
  EXPECT_EQ(empty.epoch, 1U);
  EXPECT_TRUE(empty.trace.empty());
  EXPECT_TRUE(empty.abit.empty());
  EXPECT_EQ(driver.epoch(), 2U);
}

TEST(Driver, StoreTracksBothDetection) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  sys.step(200000);
  driver.scan_processes({pid});
  driver.end_epoch();
  EXPECT_GT(driver.store().frames_with_trace(), 0U);
  EXPECT_GT(driver.store().frames_with_abit(), 0U);
  // Co-detection is rare but bounded by both single-method counts.
  EXPECT_LE(driver.store().frames_with_both(),
            std::min(driver.store().frames_with_abit(),
                     driver.store().frames_with_trace()));
}

TEST(Driver, PebsBackendWorks) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  DriverConfig cfg;
  cfg.backend = TraceBackend::Pebs;
  cfg.pebs.sample_after = 64;
  TmpDriver driver(sys, cfg);
  sys.step(100000);
  driver.end_epoch();
  EXPECT_GT(driver.trace_samples_kept(), 0U);
  EXPECT_GT(driver.trace_overhead_ns(), 0U);
}

TEST(Driver, OverheadAccumulates) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  TmpDriver driver(sys, fast_driver());
  sys.step(50000);
  driver.scan_processes({pid});
  EXPECT_GT(driver.overhead_ns(), 0U);
  EXPECT_EQ(driver.overhead_ns(),
            driver.trace_overhead_ns() + driver.abit_overhead_ns());
}

}  // namespace
}  // namespace tmprof::core
