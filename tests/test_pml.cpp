#include "monitors/pml.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tmprof::monitors {
namespace {

MemOpEvent dirty_event(mem::PhysAddr paddr) {
  MemOpEvent ev;
  ev.paddr = paddr;
  ev.is_store = true;
  return ev;
}

TEST(Pml, LogsAlignedAddresses) {
  PmlMonitor pml;
  std::vector<mem::PhysAddr> got;
  pml.set_drain([&](std::span<const mem::PhysAddr> addrs) {
    got.assign(addrs.begin(), addrs.end());
  });
  pml.on_dirty_set(dirty_event(0x12345));
  pml.drain();
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0], 0x12000U);  // 4 KiB aligned
}

TEST(Pml, FullLogNotifies) {
  PmlConfig cfg;
  cfg.log_capacity = 4;
  PmlMonitor pml(cfg);
  int notifications = 0;
  pml.set_drain([&](std::span<const mem::PhysAddr> addrs) {
    EXPECT_EQ(addrs.size(), 4U);
    ++notifications;
  });
  for (int i = 0; i < 10; ++i) {
    pml.on_dirty_set(dirty_event(static_cast<mem::PhysAddr>(i) << 12));
  }
  EXPECT_EQ(notifications, 2);
  EXPECT_EQ(pml.notifications(), 2U);
  EXPECT_EQ(pml.entries_logged(), 10U);
}

TEST(Pml, OnlyDirtyTransitionsReachIt) {
  // The monitor trusts the engine to call on_dirty_set only on 0->1
  // transitions; verify the other hooks do nothing.
  PmlMonitor pml;
  MemOpEvent ev = dirty_event(0x1000);
  pml.on_mem_op(ev);
  pml.on_retire(0, 4, 0);
  EXPECT_EQ(pml.entries_logged(), 0U);
}

TEST(Pml, DrainOnEmptyIsNoop) {
  PmlMonitor pml;
  int drains = 0;
  pml.set_drain([&](std::span<const mem::PhysAddr>) { ++drains; });
  pml.drain();
  EXPECT_EQ(drains, 0);
}

}  // namespace
}  // namespace tmprof::monitors
