#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "pmu/events.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = 256;
  cfg.tier2_frames = 4096;
  return cfg;
}

TEST(System, FirstTouchAllocatesAndMaps) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  const AccessResult r = sys.access(proc, proc.vaddr_of(0), false, 1);
  EXPECT_TRUE(r.page_fault);
  EXPECT_EQ(r.tlb, mem::TlbHit::Miss);
  EXPECT_TRUE(proc.page_table().resolve(proc.vaddr_of(0)));
  EXPECT_EQ(proc.rss_pages(), 1U);
  EXPECT_EQ(sys.phys().used_frames(0), 1U);
}

TEST(System, SecondAccessHitsTlbAndCache) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(64), false, 1);
  const AccessResult r = sys.access(proc, proc.vaddr_of(64), false, 1);
  EXPECT_FALSE(r.page_fault);
  EXPECT_EQ(r.tlb, mem::TlbHit::L1);
  EXPECT_EQ(r.source, mem::DataSource::L1);
}

TEST(System, PmuTracksTheAccessStream) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 20, 0.3, 7));
  (void)pid;
  sys.step(5000);
  auto& pmu = sys.pmu();
  using pmu::Event;
  EXPECT_EQ(pmu.truth_total(Event::RetiredLoads) +
                pmu.truth_total(Event::RetiredStores),
            5000U);
  EXPECT_GT(pmu.truth_total(Event::DtlbWalk), 0U);
  EXPECT_GT(pmu.truth_total(Event::LlcMiss), 0U);
  EXPECT_GT(pmu.truth_total(Event::PageFault), 0U);
  // A-bit transitions can't exceed walks.
  EXPECT_LE(pmu.truth_total(Event::PtwAbitSet),
            pmu.truth_total(Event::DtlbWalk));
}

TEST(System, TimeAdvancesMonotonically) {
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 18, 0.0, 3));
  const util::SimNs t0 = sys.now();
  const util::SimNs spent = sys.step(100);
  EXPECT_GT(spent, 0U);
  EXPECT_EQ(sys.now(), t0 + spent);
  sys.advance_time(500);
  EXPECT_EQ(sys.now(), t0 + spent + 500);
}

TEST(System, StoresSetDirtyExactlyOncePerPage) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), true, 1);
  sys.access(proc, proc.vaddr_of(8), true, 1);
  sys.access(proc, proc.vaddr_of(16), true, 1);
  EXPECT_EQ(sys.pmu().truth_total(pmu::Event::PtwDbitSet), 1U);
  EXPECT_TRUE(proc.page_table().resolve(proc.vaddr_of(0)).pte->dirty());
}

TEST(System, DirtySetOnTlbHitStillUpdatesPte) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);  // load fills TLB, D=0
  const AccessResult r = sys.access(proc, proc.vaddr_of(0), true, 1);
  EXPECT_EQ(r.tlb, mem::TlbHit::L1);
  EXPECT_TRUE(proc.page_table().resolve(proc.vaddr_of(0)).pte->dirty());
}

TEST(System, ShootdownInvalidatesAllCores) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  const mem::VirtAddr page = proc.vaddr_of(0) & ~(mem::kPageSize - 1);
  sys.shootdown(pid, page, mem::PageSize::k4K);
  const std::uint32_t core = pid % sys.config().cores;
  EXPECT_EQ(sys.tlb(core).lookup(pid, proc.vaddr_of(0)).level,
            mem::TlbHit::Miss);
  EXPECT_GT(sys.pmu().truth_total(pmu::Event::TlbShootdownIpi), 0U);
}

TEST(System, MigrationMovesFrameAndPreservesData) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  const mem::VirtAddr page = proc.vaddr_of(0) & ~(mem::kPageSize - 1);
  const mem::Pfn before = proc.page_table().resolve(page).pte->pfn();
  EXPECT_EQ(sys.phys().tier_of(before), 0);
  ASSERT_TRUE(sys.migrate_page(pid, page, 1));
  const mem::Pfn after = proc.page_table().resolve(page).pte->pfn();
  EXPECT_EQ(sys.phys().tier_of(after), 1);
  EXPECT_FALSE(sys.phys().frame(before).allocated);
  EXPECT_EQ(sys.phys().frame(after).page_va, page);
  // Next access takes a TLB miss (shootdown) but no fault, and reads tier2.
  const AccessResult r = sys.access(proc, proc.vaddr_of(0), false, 1);
  EXPECT_EQ(r.tlb, mem::TlbHit::Miss);
  EXPECT_FALSE(r.page_fault);
}

TEST(System, MigrateToSameTierIsNoop) {
  System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  Process& proc = sys.process(pid);
  sys.access(proc, proc.vaddr_of(0), false, 1);
  const mem::VirtAddr page = proc.vaddr_of(0) & ~(mem::kPageSize - 1);
  EXPECT_TRUE(sys.migrate_page(pid, page, 0));
  EXPECT_EQ(sys.pmu().truth_total(pmu::Event::PageMigration), 0U);
}

TEST(System, SpillToTier2WhenTier1Full) {
  SimConfig cfg = small_config();
  cfg.tier1_frames = 2;
  System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  (void)pid;
  sys.step(16);  // touches 16 distinct pages
  EXPECT_EQ(sys.phys().used_frames(0), 2U);
  EXPECT_GT(sys.phys().used_frames(1), 0U);
  EXPECT_GT(sys.pmu().truth_total(pmu::Event::MemReadTier2), 0U);
}

TEST(System, WeightedSchedulingSkewsOps) {
  System sys(small_config());
  const mem::Pid heavy = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1), 8.0);
  const mem::Pid light = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 2), 1.0);
  sys.step(900);
  EXPECT_GT(sys.process(heavy).ops_issued(),
            sys.process(light).ops_issued() * 4);
}

TEST(System, ObserverSeesEveryMemOp) {
  struct Counter final : monitors::AccessObserver {
    std::uint64_t ops = 0;
    void on_mem_op(const monitors::MemOpEvent&) override { ++ops; }
  } counter;
  System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sys.add_observer(&counter);
  sys.step(123);
  EXPECT_EQ(counter.ops, 123U);
  sys.remove_observer(&counter);
  sys.step(10);
  EXPECT_EQ(counter.ops, 123U);
}

}  // namespace
}  // namespace tmprof::sim

namespace tmprof::sim {
namespace {

TEST(SystemIfetch, CodePagesMappedAndItlbCounted) {
  SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = 4096;
  cfg.tier2_frames = 4096;
  cfg.instruction_fetch = true;
  System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sys.step(1000);
  // Code pages were demand-mapped below the heap and A bits set on them.
  Process& proc = sys.process(pid);
  bool saw_code_page = false;
  proc.page_table().walk(
      [&](mem::VirtAddr va, mem::PageSize size, mem::Pte&) {
        if (va < proc.heap_base()) {
          saw_code_page = true;
          EXPECT_EQ(size, mem::PageSize::k4K);
        }
      });
  EXPECT_TRUE(saw_code_page);
  EXPECT_GT(sys.pmu().truth_total(pmu::Event::ItlbWalk), 0U);
}

TEST(SystemIfetch, DisabledByDefault) {
  SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = 4096;
  cfg.tier2_frames = 4096;
  System sys(cfg);
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 1));
  sys.step(1000);
  EXPECT_EQ(sys.pmu().truth_total(pmu::Event::ItlbWalk), 0U);
}

TEST(SystemIfetch, FetchTranslationsCacheInTlb) {
  SimConfig cfg;
  cfg.cores = 1;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = 4096;
  cfg.tier2_frames = 4096;
  cfg.instruction_fetch = true;
  System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 14, 0.0, 1));
  Process& proc = sys.process(pid);
  // Same ip every time: the second fetch must not walk again.
  sys.access(proc, proc.vaddr_of(0), false, /*ip=*/1);
  const std::uint64_t walks = sys.pmu().truth_total(pmu::Event::ItlbWalk);
  sys.access(proc, proc.vaddr_of(64), false, /*ip=*/1);
  EXPECT_EQ(sys.pmu().truth_total(pmu::Event::ItlbWalk), walks);
}

}  // namespace
}  // namespace tmprof::sim
