#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/page_key.hpp"
#include "core/ranking.hpp"
#include "util/ckpt.hpp"
#include "util/rng.hpp"

namespace tmprof::util {
namespace {

using core::PageKey;
using core::PageKeyHash;
using TestMap = FlatHashMap<PageKey, std::uint32_t, PageKeyHash>;
using TestSet = FlatHashSet<PageKey, PageKeyHash>;

PageKey key(std::uint64_t pid, std::uint64_t n) {
  return PageKey{static_cast<mem::Pid>(pid), n * mem::kPageSize};
}

/// Hash that lands every key in slot 0 — forces maximal linear probing.
struct CollideAll {
  std::size_t operator()(const PageKey&) const noexcept { return 0; }
};

TEST(FlatMap, EmptyMapBehaves) {
  TestMap m;
  EXPECT_EQ(m.size(), 0U);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), 0U);
  EXPECT_FALSE(m.contains(key(1, 1)));
  EXPECT_EQ(m.find(key(1, 1)), m.end());
  EXPECT_EQ(m.begin(), m.end());
  EXPECT_THROW(m.at(key(1, 1)), std::out_of_range);
  m.clear();  // clear on a never-allocated map is a no-op
  EXPECT_EQ(m.capacity(), 0U);
}

TEST(FlatMap, InsertFindUpdate) {
  TestMap m;
  m[key(1, 10)] = 3;
  m[key(1, 20)] = 7;
  m[key(2, 10)] += 1;
  EXPECT_EQ(m.size(), 3U);
  EXPECT_EQ(m.at(key(1, 10)), 3U);
  EXPECT_EQ(m.at(key(1, 20)), 7U);
  EXPECT_EQ(m.at(key(2, 10)), 1U);
  m[key(1, 10)] += 5;
  EXPECT_EQ(m.at(key(1, 10)), 8U);
  EXPECT_EQ(m.size(), 3U);
  auto it = m.find(key(1, 20));
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, key(1, 20));
  EXPECT_EQ(it->second, 7U);
}

TEST(FlatMap, TryEmplaceDoesNotOverwrite) {
  TestMap m;
  auto [p1, inserted1] = m.try_emplace(key(1, 1), 42);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*p1, 42U);
  auto [p2, inserted2] = m.try_emplace(key(1, 1), 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*p2, 42U);
  EXPECT_EQ(m.size(), 1U);
}

TEST(FlatMap, GrowthMatchesStdUnorderedMap) {
  // Random mixed workload of inserts and increments, cross-checked against
  // std::unordered_map at every growth boundary.
  util::Rng rng(17);
  TestMap m;
  std::unordered_map<PageKey, std::uint32_t, PageKeyHash> ref;
  for (int i = 0; i < 20000; ++i) {
    const PageKey k = key(rng.below(4) + 1, rng.below(3000));
    const auto bump = static_cast<std::uint32_t>(rng.below(5) + 1);
    m[k] += bump;
    ref[k] += bump;
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(m.contains(k));
    EXPECT_EQ(m.at(k), v);
  }
  // Load factor invariant: at most half the slots are used.
  EXPECT_GE(m.capacity(), m.size() * 2);
}

TEST(FlatMap, CollisionChainsResolve) {
  // With a constant hash the table degenerates to a linear scan; every
  // operation must still be correct (just slow).
  FlatHashMap<PageKey, std::uint32_t, CollideAll> m;
  for (std::uint64_t i = 0; i < 200; ++i) {
    m[key(1, i)] = static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(m.size(), 200U);
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(m.contains(key(1, i)));
    EXPECT_EQ(m.at(key(1, i)), static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(m.contains(key(1, 200)));
  EXPECT_FALSE(m.contains(key(2, 0)));
}

TEST(FlatMap, ClearRetainsCapacityAndResetsValues) {
  TestMap m;
  for (std::uint64_t i = 0; i < 100; ++i) m[key(1, i)] = 7;
  const std::size_t cap = m.capacity();
  EXPECT_GT(cap, 0U);
  m.clear();
  EXPECT_EQ(m.size(), 0U);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_FALSE(m.contains(key(1, 0)));
  // Re-inserting a key whose slot holds a stale value must start from 0.
  m[key(1, 0)] += 1;
  EXPECT_EQ(m.at(key(1, 0)), 1U);
  EXPECT_EQ(m.capacity(), cap);  // no growth after clear + light reuse
}

TEST(FlatMap, ReserveAvoidsGrowth) {
  TestMap m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap, 2000U);  // 1/2 max load factor
  for (std::uint64_t i = 0; i < 1000; ++i) m[key(1, i)] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, SwapExchangesContents) {
  TestMap a;
  TestMap b;
  a[key(1, 1)] = 10;
  b[key(2, 2)] = 20;
  b[key(2, 3)] = 30;
  swap(a, b);
  EXPECT_EQ(a.size(), 2U);
  EXPECT_EQ(b.size(), 1U);
  EXPECT_EQ(a.at(key(2, 2)), 20U);
  EXPECT_EQ(b.at(key(1, 1)), 10U);
}

TEST(FlatMap, EqualityIsOrderIndependent) {
  // Build the same contents with different insertion orders (and hence
  // different slot layouts / capacities).
  TestMap a;
  TestMap b;
  b.reserve(500);
  for (std::uint64_t i = 0; i < 64; ++i) a[key(1, i)] = static_cast<std::uint32_t>(i);
  for (std::uint64_t i = 64; i-- > 0;) b[key(1, i)] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(a, b);
  b[key(1, 0)] = 99;
  EXPECT_NE(a, b);
  b[key(1, 0)] = 0;
  EXPECT_EQ(a, b);
  b[key(9, 9)] = 1;
  EXPECT_NE(a, b);
}

TEST(FlatMap, FoldSortedVisitsAscendingKeys) {
  util::Rng rng(23);
  TestMap m;
  std::map<PageKey, std::uint32_t> ref;  // ordered reference
  for (int i = 0; i < 500; ++i) {
    const PageKey k = key(rng.below(3) + 1, rng.below(400));
    const auto v = static_cast<std::uint32_t>(rng.below(100));
    m[k] = v;
    ref[k] = v;
  }
  std::vector<std::pair<PageKey, std::uint32_t>> folded;
  m.fold_sorted([&folded](const PageKey& k, std::uint32_t v) {
    folded.emplace_back(k, v);
  });
  ASSERT_EQ(folded.size(), ref.size());
  std::size_t i = 0;
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(folded[i].first, k);
    EXPECT_EQ(folded[i].second, v);
    ++i;
  }
}

TEST(FlatMap, FoldSortedIsLayoutInvariant) {
  // Same contents, different capacities and insertion orders: fold_sorted
  // must produce the identical sequence — this is what keeps checkpoint
  // bytes and merge order independent of slot layout.
  TestMap a;
  TestMap b;
  b.reserve(4096);
  for (std::uint64_t i = 0; i < 300; ++i) a[key(1, i * 7 % 300)] = 1;
  for (std::uint64_t i = 300; i-- > 0;) b[key(1, i * 7 % 300)] = 1;
  std::vector<PageKey> ka;
  std::vector<PageKey> kb;
  a.fold_sorted([&ka](const PageKey& k, std::uint32_t) { ka.push_back(k); });
  b.fold_sorted([&kb](const PageKey& k, std::uint32_t) { kb.push_back(k); });
  EXPECT_EQ(ka, kb);
}

TEST(FlatMap, CheckpointRoundTrip) {
  util::Rng rng(31);
  core::PageCountMap counts;
  for (int i = 0; i < 300; ++i) {
    counts[key(rng.below(5) + 1, rng.below(1 << 16))] =
        static_cast<std::uint32_t>(rng.below(1 << 20));
  }
  ckpt::Writer w;
  w.begin_section("flat");
  core::save_page_counts(w, counts);
  w.end_section();
  ckpt::Reader r(w.finish());
  r.enter_section("flat");
  core::PageCountMap loaded;
  core::load_page_counts(r, loaded);
  r.end_section();
  EXPECT_EQ(loaded, counts);
}

TEST(FlatMap, SetInsertContainsClear) {
  TestSet s;
  EXPECT_TRUE(s.insert(key(1, 1)));
  EXPECT_FALSE(s.insert(key(1, 1)));
  EXPECT_TRUE(s.insert(key(1, 2)));
  EXPECT_EQ(s.size(), 2U);
  EXPECT_TRUE(s.contains(key(1, 1)));
  EXPECT_EQ(s.count(key(1, 2)), 1U);
  EXPECT_FALSE(s.contains(key(1, 3)));
  const std::size_t cap = s.capacity();
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.capacity(), cap);
  EXPECT_TRUE(s.insert(key(1, 1)));  // re-insert after clear is "new" again
}

TEST(FlatMap, SetFoldSortedAndIteration) {
  TestSet s;
  for (std::uint64_t i = 50; i-- > 0;) s.insert(key(1, i));
  std::vector<PageKey> folded;
  s.fold_sorted([&folded](const PageKey& k) { folded.push_back(k); });
  ASSERT_EQ(folded.size(), 50U);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(folded[i], key(1, i));
  // Plain iteration visits every key exactly once (order unspecified).
  std::size_t n = 0;
  for (const PageKey& k : s) {
    EXPECT_TRUE(s.contains(k));
    ++n;
  }
  EXPECT_EQ(n, 50U);
}

TEST(FlatMap, U64HashAvalanche) {
  // Sequential inputs must not produce sequential hashes (the reason the
  // PFN map does not use an identity hash).
  U64Hash h;
  std::size_t collisions_low_bits = 0;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    if ((h(i) & 1023U) == (i & 1023U)) ++collisions_low_bits;
  }
  // An identity hash would score 1024; a mixing hash scores ~1.
  EXPECT_LT(collisions_low_bits, 16U);
}

}  // namespace
}  // namespace tmprof::util
