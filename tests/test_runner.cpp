#include "tiering/runner.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 12;   // 16 MiB fast
  cfg.tier2_frames = 1 << 16;   // 256 MiB slow
  return cfg;
}

RunnerOptions fast_options(const std::string& policy) {
  RunnerOptions opt;
  opt.policy = policy;
  opt.n_epochs = 4;
  opt.ops_per_epoch = 60000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(512);
  return opt;
}

/// Factory for a dataset-load-then-serve process: first-touch fills tier 1
/// with cold initialization pages, which a profile-driven policy reclaims.
WorkloadFactory init_then_serve() {
  return [](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> procs;
    procs.push_back(std::make_unique<workloads::InitThenServeWorkload>(
        16 << 20, 8 << 20, 0.9, seed));
    return procs;
  };
}

TEST(Runner, HistoryBeatsFirstTouchOnSkewedWorkload) {
  // Tier 1 must be smaller than the touched footprint or placement is moot.
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 10;
  RunnerOptions opt = fast_options("first-touch");
  opt.n_epochs = 6;
  opt.ops_per_epoch = 120000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  const RunnerResult baseline =
      EndToEndRunner::run(init_then_serve(), cfg, opt);
  opt.policy = "history";
  const RunnerResult tmp = EndToEndRunner::run(init_then_serve(), cfg, opt);
  EXPECT_GT(tmp.tier1_hitrate, baseline.tier1_hitrate);
  EXPECT_GT(tmp.migrations, 0U);
  EXPECT_EQ(baseline.migrations, 0U);
}

TEST(Runner, RuntimeAndOverheadArePopulated) {
  const auto spec = workloads::find_spec("web_serving", 0.2);
  const RunnerResult r =
      EndToEndRunner::run(spec, small_config(), fast_options("history"));
  EXPECT_GT(r.runtime_ns, 0U);
  EXPECT_GT(r.profiling_overhead_ns, 0U);
  EXPECT_GE(r.tier1_hitrate, 0.0);
  EXPECT_LE(r.tier1_hitrate, 1.0);
}

TEST(Runner, OraclePrePassWorks) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const RunnerResult oracle =
      EndToEndRunner::run(spec, small_config(), fast_options("oracle"));
  const RunnerResult baseline =
      EndToEndRunner::run(spec, small_config(), fast_options("first-touch"));
  EXPECT_GE(oracle.tier1_hitrate, baseline.tier1_hitrate);
}

TEST(Runner, BadgerTrapEmulationInjectsFaults) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 9;  // force spill so slow pages exist
  RunnerOptions opt = fast_options("history");
  opt.slow_model = SlowMemoryModel::BadgerTrapEmulation;
  const RunnerResult r = EndToEndRunner::run(spec, cfg, opt);
  EXPECT_GT(r.protection_faults, 0U);
}

TEST(Runner, BadgerTrapEmulationPreservesOrdering) {
  // Under the paper's emulation model the TMP-driven run should still beat
  // first-touch on a skewed workload.
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 10;
  RunnerOptions hist = fast_options("history");
  hist.n_epochs = 6;
  hist.ops_per_epoch = 120000;
  hist.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  RunnerOptions ft = hist;
  ft.policy = "first-touch";
  hist.slow_model = SlowMemoryModel::BadgerTrapEmulation;
  ft.slow_model = SlowMemoryModel::BadgerTrapEmulation;
  const RunnerResult h = EndToEndRunner::run(init_then_serve(), cfg, hist);
  const RunnerResult f = EndToEndRunner::run(init_then_serve(), cfg, ft);
  EXPECT_GT(h.tier1_hitrate, f.tier1_hitrate);
}

TEST(Runner, DeterministicUnderSeed) {
  const auto spec = workloads::find_spec("gups", 0.05);
  const RunnerResult a =
      EndToEndRunner::run(spec, small_config(), fast_options("history"));
  const RunnerResult b =
      EndToEndRunner::run(spec, small_config(), fast_options("history"));
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.tier1_hitrate, b.tier1_hitrate);
}

}  // namespace
}  // namespace tmprof::tiering

namespace tmprof::tiering {
namespace {

TEST(Runner, CustomPoliciesRunOnline) {
  // freq-decay and write-history flow through the Policy interface in the
  // online runner; both must run and produce sane results.
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 10;
  for (const char* name : {"freq-decay", "write-history"}) {
    RunnerOptions opt = fast_options(name);
    opt.n_epochs = 6;  // long enough to leave the init phase and serve
    opt.ops_per_epoch = 120000;
    opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
    if (std::string(name) == "write-history") {
      opt.daemon.driver.use_pml = true;
    }
    const RunnerResult r =
        EndToEndRunner::run(init_then_serve(), cfg, opt);
    EXPECT_GT(r.runtime_ns, 0U) << name;
    EXPECT_GE(r.tier1_hitrate, 0.0) << name;
    EXPECT_LE(r.tier1_hitrate, 1.0) << name;
    EXPECT_GT(r.migrations, 0U) << name;
  }
}

TEST(Runner, FreqDecayTracksLikeHistory) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 1 << 10;
  RunnerOptions opt = fast_options("first-touch");
  opt.n_epochs = 6;
  opt.ops_per_epoch = 120000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  const RunnerResult baseline =
      EndToEndRunner::run(init_then_serve(), cfg, opt);
  opt.policy = "freq-decay";
  const RunnerResult decay = EndToEndRunner::run(init_then_serve(), cfg, opt);
  EXPECT_GT(decay.tier1_hitrate, baseline.tier1_hitrate);
}

}  // namespace
}  // namespace tmprof::tiering
