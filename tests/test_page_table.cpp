#include "mem/page_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace tmprof::mem {
namespace {

TEST(PageTable, MapAndResolve4k) {
  PageTable pt;
  pt.map(0x1000, 42, PageSize::k4K);
  const PteRef ref = pt.resolve(0x1abc);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.pte->pfn(), 42U);
  EXPECT_EQ(ref.size, PageSize::k4K);
  EXPECT_EQ(ref.page_va, 0x1000U);
  EXPECT_TRUE(ref.pte->present());
}

TEST(PageTable, MapAndResolveHuge) {
  PageTable pt;
  pt.map(2 * kHugePageSize, 512, PageSize::k2M);
  const PteRef ref = pt.resolve(2 * kHugePageSize + 12345);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.pte->pfn(), 512U);
  EXPECT_EQ(ref.size, PageSize::k2M);
  EXPECT_TRUE(ref.pte->huge());
}

TEST(PageTable, UnmappedResolvesNull) {
  PageTable pt;
  EXPECT_FALSE(pt.resolve(0xdead000));
  pt.map(0x1000, 1, PageSize::k4K);
  EXPECT_FALSE(pt.resolve(0x2000));
}

TEST(PageTable, UnmapReturnsOldPte) {
  PageTable pt;
  pt.map(0x3000, 7, PageSize::k4K);
  pt.resolve(0x3000).pte->set_accessed(true);
  const Pte old = pt.unmap(0x3000);
  EXPECT_TRUE(old.accessed());
  EXPECT_EQ(old.pfn(), 7U);
  EXPECT_FALSE(pt.resolve(0x3000));
}

TEST(PageTable, CountsMappings) {
  PageTable pt;
  EXPECT_EQ(pt.mapped_4k(), 0U);
  pt.map(0x1000, 1, PageSize::k4K);
  pt.map(0x2000, 2, PageSize::k4K);
  pt.map(kHugePageSize * 4, 1024, PageSize::k2M);
  EXPECT_EQ(pt.mapped_4k(), 2U);
  EXPECT_EQ(pt.mapped_2m(), 1U);
  EXPECT_EQ(pt.mapped_bytes(), 2 * kPageSize + kHugePageSize);
  pt.unmap(0x1000);
  EXPECT_EQ(pt.mapped_4k(), 1U);
}

TEST(PageTable, RejectsDoubleMap) {
  PageTable pt;
  pt.map(0x1000, 1, PageSize::k4K);
  EXPECT_THROW(pt.map(0x1000, 2, PageSize::k4K), util::AssertionError);
}

TEST(PageTable, RejectsMisalignedHugeMap) {
  PageTable pt;
  EXPECT_THROW(pt.map(0x1000, 1, PageSize::k2M), util::AssertionError);
}

TEST(PageTable, RejectsHugeOverlappingSmallSubtree) {
  PageTable pt;
  pt.map(3 * kHugePageSize + 0x1000, 1, PageSize::k4K);
  EXPECT_THROW(pt.map(3 * kHugePageSize, 512, PageSize::k2M),
               util::AssertionError);
}

TEST(PageTable, WalkVisitsAllLeavesInOrder) {
  PageTable pt;
  pt.map(0x5000, 5, PageSize::k4K);
  pt.map(0x1000, 1, PageSize::k4K);
  pt.map(kHugePageSize * 8, 4096, PageSize::k2M);
  std::vector<VirtAddr> vas;
  pt.walk([&](VirtAddr va, PageSize, Pte&) { vas.push_back(va); });
  ASSERT_EQ(vas.size(), 3U);
  EXPECT_EQ(vas[0], 0x1000U);
  EXPECT_EQ(vas[1], 0x5000U);
  EXPECT_EQ(vas[2], kHugePageSize * 8);
}

TEST(PageTable, WalkCanMutateFlagBits) {
  PageTable pt;
  pt.map(0x1000, 1, PageSize::k4K);
  pt.resolve(0x1000).pte->set_accessed(true);
  pt.walk([](VirtAddr, PageSize, Pte& pte) {
    EXPECT_TRUE(pte.test_clear_accessed());
  });
  EXPECT_FALSE(pt.resolve(0x1000).pte->accessed());
}

TEST(PageTable, NodeCountGrows) {
  PageTable pt;
  const std::uint64_t before = pt.node_count();
  pt.map(0x1000, 1, PageSize::k4K);
  EXPECT_GT(pt.node_count(), before);
  // Mapping a neighbor reuses the same subtree.
  const std::uint64_t after_one = pt.node_count();
  pt.map(0x2000, 2, PageSize::k4K);
  EXPECT_EQ(pt.node_count(), after_one);
}

TEST(PageTable, SparseAddressesSupported) {
  PageTable pt;
  const VirtAddr high = (1ULL << 47) - kPageSize;
  pt.map(high, 99, PageSize::k4K);
  const PteRef ref = pt.resolve(high + 5);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.pte->pfn(), 99U);
}

TEST(Pte, FlagRoundTrips) {
  Pte pte;
  pte.set_present(true);
  pte.set_writable(true);
  pte.set_accessed(true);
  pte.set_dirty(true);
  pte.set_poisoned(true);
  pte.set_pfn(0x123456);
  EXPECT_TRUE(pte.present());
  EXPECT_TRUE(pte.writable());
  EXPECT_TRUE(pte.accessed());
  EXPECT_TRUE(pte.dirty());
  EXPECT_TRUE(pte.poisoned());
  EXPECT_EQ(pte.pfn(), 0x123456U);
  pte.set_poisoned(false);
  EXPECT_FALSE(pte.poisoned());
  EXPECT_EQ(pte.pfn(), 0x123456U);  // pfn untouched by flag changes
}

TEST(Pte, TestClearAccessed) {
  Pte pte;
  pte.set_accessed(true);
  EXPECT_TRUE(pte.test_clear_accessed());
  EXPECT_FALSE(pte.accessed());
  EXPECT_FALSE(pte.test_clear_accessed());
}

}  // namespace
}  // namespace tmprof::mem

namespace tmprof::mem {
namespace {

TEST(PageTable, UnmapPrunesEmptyNodes) {
  PageTable pt;
  const std::uint64_t base_nodes = pt.node_count();
  pt.map(0x1000, 1, PageSize::k4K);
  pt.map(0x2000, 2, PageSize::k4K);
  EXPECT_GT(pt.node_count(), base_nodes);
  pt.unmap(0x1000);
  pt.unmap(0x2000);
  EXPECT_EQ(pt.node_count(), base_nodes);
  // The freed range can now back a huge mapping (THP collapse scenario).
  pt.map(0x0, 512, PageSize::k2M);
  const PteRef ref = pt.resolve(0x1000);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.size, PageSize::k2M);
}

TEST(PageTable, PartialUnmapKeepsSharedNodes) {
  PageTable pt;
  pt.map(0x1000, 1, PageSize::k4K);
  pt.map(0x2000, 2, PageSize::k4K);
  pt.unmap(0x1000);
  // Sibling still mapped: its node chain must survive.
  const PteRef ref = pt.resolve(0x2000);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.pte->pfn(), 2U);
}

}  // namespace
}  // namespace tmprof::mem
