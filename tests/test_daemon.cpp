#include "core/daemon.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace tmprof::core {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 8192;
  cfg.tier2_frames = 8192;
  return cfg;
}

DaemonConfig fast_daemon() {
  DaemonConfig cfg;
  cfg.driver.ibs = monitors::IbsConfig::with_period(256);
  return cfg;
}

TEST(Daemon, TickProducesRankedSnapshot) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::ZipfWorkload>(8 << 20, 4096, 0.99, 0.1, 1));
  TmpDaemon daemon(sys, fast_daemon());
  sys.step(100000);
  const ProfileSnapshot snap = daemon.tick();
  ASSERT_FALSE(snap.ranking.empty());
  for (std::size_t i = 1; i < snap.ranking.size(); ++i) {
    EXPECT_GE(snap.ranking[i - 1].rank, snap.ranking[i].rank);
  }
  EXPECT_TRUE(snap.abit_ran);
  EXPECT_TRUE(snap.trace_ran);
}

TEST(Daemon, GatingDisablesProfilingWhenIdle) {
  // Footprint must exceed TLB reach so TLB-walk activity persists across
  // busy periods (a TLB-resident working set would legitimately gate the
  // A-bit scanner off — that is the optimization working as intended).
  sim::SimConfig scfg = small_config();
  scfg.tier1_frames = 1 << 15;
  scfg.tier2_frames = 1 << 15;
  sim::System sys(scfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(96 << 20, 0.0, 1));
  (void)pid;
  DaemonConfig cfg = fast_daemon();
  cfg.gating_enabled = true;
  TmpDaemon daemon(sys, cfg);
  sys.step(200000);
  daemon.tick();  // busy period: establishes the max
  // Idle period: counters barely move.
  sys.advance_time(100 * util::kMillisecond);
  const ProfileSnapshot idle = daemon.tick();
  EXPECT_FALSE(idle.abit_ran);
  EXPECT_FALSE(idle.trace_ran);
  // Activity resumes: profiling switches back on.
  sys.step(200000);
  const ProfileSnapshot busy = daemon.tick();
  EXPECT_TRUE(busy.abit_ran);
  EXPECT_TRUE(busy.trace_ran);
}

TEST(Daemon, GatingOffKeepsProfilingAlive) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  DaemonConfig cfg = fast_daemon();
  cfg.gating_enabled = false;
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  daemon.tick();
  const ProfileSnapshot idle = daemon.tick();  // nothing ran since
  EXPECT_TRUE(idle.abit_ran);
  EXPECT_TRUE(idle.trace_ran);
}

TEST(Daemon, PidFilterSkipsBackgroundProcess) {
  sim::System sys(small_config());
  const mem::Pid busy = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1), 50.0);
  const mem::Pid background = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 2), 1.0);
  TmpDaemon daemon(sys, fast_daemon());
  sys.step(200000);
  daemon.tick();
  const auto& tracked = daemon.tracked_pids();
  EXPECT_NE(std::find(tracked.begin(), tracked.end(), busy), tracked.end());
  EXPECT_EQ(std::find(tracked.begin(), tracked.end(), background),
            tracked.end());
}

TEST(Daemon, FilterDisabledTracksEveryone) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1), 50.0);
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 2), 1.0);
  DaemonConfig cfg = fast_daemon();
  cfg.pid_filter_enabled = false;
  TmpDaemon daemon(sys, cfg);
  sys.step(50000);
  daemon.tick();
  EXPECT_EQ(daemon.tracked_pids().size(), 2U);
}

TEST(Daemon, ChargeOverheadAdvancesClock) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  DaemonConfig cfg = fast_daemon();
  cfg.charge_overhead = true;
  TmpDaemon daemon(sys, cfg);
  sys.step(50000);
  const util::SimNs before = sys.now();
  daemon.tick();
  EXPECT_GT(sys.now(), before);  // scan cost charged
}

TEST(Daemon, DumpIsHumanReadable) {
  sim::System sys(small_config());
  sys.add_process(
      std::make_unique<workloads::ZipfWorkload>(8 << 20, 4096, 0.99, 0.0, 1));
  TmpDaemon daemon(sys, fast_daemon());
  sys.step(100000);
  const ProfileSnapshot snap = daemon.tick();
  const std::string text = TmpDaemon::dump(snap, 5);
  EXPECT_NE(text.find("epoch=0"), std::string::npos);
  EXPECT_NE(text.find("rank="), std::string::npos);
  EXPECT_NE(text.find("0x"), std::string::npos);
}

TEST(Daemon, FusionModeFlowsIntoRanking) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1));
  (void)pid;
  DaemonConfig cfg = fast_daemon();
  cfg.fusion = FusionMode::AbitOnly;
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  const ProfileSnapshot snap = daemon.tick();
  for (const PageRank& pr : snap.ranking) {
    EXPECT_EQ(pr.rank, pr.abit);  // trace contributed nothing
  }
}

}  // namespace
}  // namespace tmprof::core

namespace tmprof::core {
namespace {

TEST(Daemon, PidFilterReevaluatesAtItsOwnCadence) {
  sim::System sys(small_config());
  const mem::Pid a = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(8 << 20, 0.0, 1), 50.0);
  const mem::Pid b = sys.add_process(
      std::make_unique<workloads::UniformWorkload>(1 << 16, 0.0, 2), 1.0);
  DaemonConfig cfg = fast_daemon();
  cfg.gating_enabled = false;
  cfg.pid_filter_period_ns = 10 * util::kSecond;  // effectively: once
  TmpDaemon daemon(sys, cfg);
  sys.step(100000);
  daemon.tick();
  const auto first = daemon.tracked_pids();
  ASSERT_EQ(first.size(), 1U);
  EXPECT_EQ(first[0], a);
  // Shift all CPU to b; within the filter period the set must not change.
  sys.process(b).charge_ops(10'000'000);
  sys.step(1000);
  daemon.tick();
  EXPECT_EQ(daemon.tracked_pids(), first);
}

}  // namespace
}  // namespace tmprof::core
