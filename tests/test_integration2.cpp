/// Second integration batch: interactions across the newer subsystems
/// (THP collapse ↔ profiler granularity, mover ↔ numa_maps, 3-tier
/// systems, swap ↔ profiler coexistence rules).

#include <gtest/gtest.h>

#include "core/daemon.hpp"
#include "core/numa_maps.hpp"
#include "tiering/khugepaged.hpp"
#include "tiering/mover.hpp"
#include "tiering/swap.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 12;
  cfg.tier2_frames = 1 << 13;
  return cfg;
}

/// After khugepaged collapses a range, the daemon's A-bit observations for
/// it drop from hundreds of keys to one huge-page key, while trace
/// samples keep arriving — the Table IV granularity asymmetry, live.
TEST(Integration2, CollapseChangesProfilerGranularity) {
  sim::System sys(small_config());
  sys.add_process(std::make_unique<workloads::UniformWorkload>(
      2 << 20, 0.0, 1));
  core::DaemonConfig dcfg;
  dcfg.driver.ibs = monitors::IbsConfig::with_period(128);
  dcfg.gating_enabled = false;
  core::TmpDaemon daemon(sys, dcfg);
  sys.step(20000);
  const core::ProfileSnapshot before = daemon.tick();
  const std::size_t keys_before = before.observation.abit.size();
  EXPECT_GT(keys_before, 100U);

  tiering::KhugepagedConfig kcfg;
  kcfg.min_accessed = 0.0;
  tiering::Khugepaged khugepaged(sys, kcfg);
  EXPECT_GT(khugepaged.scan_and_collapse().collapsed, 0U);

  sys.step(20000);
  const core::ProfileSnapshot after = daemon.tick();
  EXPECT_LT(after.observation.abit.size(), keys_before / 10);
  EXPECT_FALSE(after.observation.trace.empty());
}

/// numa_maps reflects the mover's placement: after demoting everything,
/// tier0 counts drop to zero.
TEST(Integration2, NumaMapsTracksMigration) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  sys.step(16);
  core::PageStatsStore store(sys.phys().total_frames());
  EXPECT_NE(core::numa_maps(sys, pid, store).find("tier0="),
            std::string::npos);
  // Demote every heap page to tier 1 (slow).
  sim::Process& proc = sys.process(pid);
  std::vector<mem::VirtAddr> pages;
  proc.page_table().walk(
      [&](mem::VirtAddr va, mem::PageSize, mem::Pte&) {
        if (va >= proc.heap_base()) pages.push_back(va);
      });
  for (const mem::VirtAddr va : pages) {
    ASSERT_TRUE(sys.migrate_page(pid, va, 1));
  }
  const std::string text = core::numa_maps(sys, pid, store);
  // Heap lines report zero tier-0 pages now.
  std::size_t pos = text.find("0x5500000000");
  ASSERT_NE(pos, std::string::npos);
  const std::string heap_line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_NE(heap_line.find("tier0=0"), std::string::npos);
}

/// A 3-tier system allocates first-touch through the whole ladder.
TEST(Integration2, ThreeTierFirstTouchSpillsDownTheLadder) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 4;
  cfg.tier2_frames = 4;
  cfg.tier3_frames = 1 << 12;
  sim::System sys(cfg);
  sys.add_process(std::make_unique<workloads::SequentialWorkload>(
      1 << 16, 4096, 0.0, 1));
  sys.step(16);
  EXPECT_EQ(sys.phys().used_frames(0), 4U);
  EXPECT_EQ(sys.phys().used_frames(1), 4U);
  EXPECT_GT(sys.phys().used_frames(2), 0U);
}

/// Khugepaged must refuse to collapse ranges containing poisoned PTEs —
/// a swap manager or profiler owns those pages.
TEST(Integration2, CollapseRespectsPoisonedPages) {
  sim::System sys(small_config());
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(4 << 20, 4096, 0.0, 1));
  sys.step(512);
  sim::Process& proc = sys.process(pid);
  proc.page_table().resolve(proc.vaddr_of(0)).pte->set_poisoned(true);
  tiering::KhugepagedConfig kcfg;
  kcfg.min_accessed = 0.0;
  tiering::Khugepaged khugepaged(sys, kcfg);
  const tiering::CollapseStats stats = khugepaged.scan_and_collapse();
  EXPECT_EQ(stats.collapsed, 0U);
  proc.page_table().resolve(proc.vaddr_of(0)).pte->set_poisoned(false);
}

/// Swap and mover compose: a page swapped out and then touched comes back
/// to tier 0 and is immediately migratable again.
TEST(Integration2, SwapInThenMigrate) {
  sim::SimConfig cfg = small_config();
  cfg.tier1_frames = 8;
  sim::System sys(cfg);
  const mem::Pid pid = sys.add_process(
      std::make_unique<workloads::SequentialWorkload>(1 << 16, 4096, 0.0, 1));
  sys.step(16);
  sim::Process& proc = sys.process(pid);
  const mem::VirtAddr target = proc.vaddr_of(12 * mem::kPageSize);
  {
    tiering::SwapFarMemory swap(sys);
    swap.seal();
    sys.access(proc, target, false, 1);
    EXPECT_EQ(swap.pages_swapped_in(), 1U);
  }
  const mem::PteRef ref = proc.page_table().resolve(target);
  ASSERT_TRUE(ref);
  EXPECT_EQ(sys.phys().tier_of(ref.pte->pfn()), 0);
  EXPECT_TRUE(sys.migrate_page(pid, mem::page_base(target, ref.size), 1));
}

}  // namespace
}  // namespace tmprof
