/// Device-side hotness monitor tests (docs/TOPOLOGY.md): counter-array
/// semantics (slow-tier-only counting, saturation, top-K tie order,
/// space-saving replacement, decay), SumDev/DevOnly ranking fusion, and
/// end-to-end thread-count invariance with DevMon feeding the daemon over
/// an explicit three-tier chain.

#include "monitors/devmon.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ranking.hpp"
#include "tiering/runner.hpp"
#include "workloads/registry.hpp"

namespace tmprof::monitors {
namespace {

/// 4-frame DRAM, 8-frame CXL, 8-frame NVM: pfn 0..3 are on the fast tier
/// (no device counter), 4..11 on tier 1's device, 12..19 on tier 2's.
mem::PhysMemory three_tier_phys() {
  return mem::PhysMemory({mem::TierSpec{"dram", 4, 80, 80, 0},
                          mem::TierSpec{"cxl", 8, 150, 200, 0},
                          mem::TierSpec{"nvm", 8, 300, 600, 0}});
}

MemOpEvent fill(mem::Pfn pfn, std::uint32_t core = 0,
                mem::DataSource source = mem::DataSource::MemTier2) {
  MemOpEvent ev;
  ev.core = core;
  ev.paddr = static_cast<mem::PhysAddr>(pfn) << mem::kPageShift;
  ev.source = source;
  return ev;
}

/// Drain the monitor once, collecting every report entry it emits.
std::vector<DevMonReportEntry> drain_once(DevMonitor& mon) {
  std::vector<DevMonReportEntry> out;
  mon.set_drain([&out](std::span<const DevMonReportEntry> report) {
    out.insert(out.end(), report.begin(), report.end());
  });
  mon.drain();
  return out;
}

TEST(DevMon, CountsOnlySlowTierMemoryFills) {
  const mem::PhysMemory phys = three_tier_phys();
  ASSERT_EQ(phys.tier_of(1), 0);
  ASSERT_EQ(phys.tier_of(5), 1);
  ASSERT_EQ(phys.tier_of(13), 2);
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.decay = false;
  DevMonitor mon(cfg, phys, 1);
  mon.on_mem_op(fill(1));                            // fast tier: no device
  mon.on_mem_op(fill(5, 0, mem::DataSource::LLC));   // cache hit: not a fill
  mon.on_mem_op(fill(5));
  mon.on_mem_op(fill(5));
  mon.on_mem_op(fill(13));
  const auto report = drain_once(mon);
  EXPECT_EQ(mon.observed(), 3U);
  EXPECT_EQ(mon.occupied(0), 0U);
  EXPECT_EQ(mon.occupied(1), 1U);
  EXPECT_EQ(mon.occupied(2), 1U);
  ASSERT_EQ(report.size(), 2U);
  EXPECT_EQ(report[0].pfn, 5U);
  EXPECT_EQ(report[0].count, 2U);
  EXPECT_EQ(report[0].tier, 1);
  EXPECT_EQ(report[1].pfn, 13U);
  EXPECT_EQ(report[1].count, 1U);
  EXPECT_EQ(report[1].tier, 2);
}

TEST(DevMon, CounterSaturatesAtConfiguredMax) {
  const mem::PhysMemory phys = three_tier_phys();
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.counter_max = 10;
  cfg.decay = false;
  DevMonitor mon(cfg, phys, 1);
  for (int i = 0; i < 25; ++i) mon.on_mem_op(fill(5));
  const auto report = drain_once(mon);
  ASSERT_EQ(report.size(), 1U);
  EXPECT_EQ(report[0].count, 10U);
  EXPECT_EQ(mon.observed(), 25U);  // the stat counts raw fills
}

TEST(DevMon, TopKTruncatesWithAscendingPfnTieBreak) {
  const mem::PhysMemory phys = three_tier_phys();
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.top_k = 2;
  cfg.decay = false;
  DevMonitor mon(cfg, phys, 1);
  for (const mem::Pfn pfn : {7U, 5U, 6U}) {  // arrival order must not matter
    for (int i = 0; i < 3; ++i) mon.on_mem_op(fill(pfn));
  }
  const auto report = drain_once(mon);
  ASSERT_EQ(report.size(), 2U);  // three tied slots, top-2 reported
  EXPECT_EQ(report[0].pfn, 5U);
  EXPECT_EQ(report[1].pfn, 6U);
  EXPECT_EQ(mon.reported(), 2U);
}

TEST(DevMon, SpaceSavingEvictionInheritsVictimCount) {
  const mem::PhysMemory phys = three_tier_phys();
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.slots = 2;
  cfg.decay = false;
  DevMonitor mon(cfg, phys, 1);
  // Folded in ascending-pfn order: 5 (count 5) and 6 (count 2) claim the
  // two slots; 7 (count 1) evicts the coldest (6) and inherits its count.
  for (int i = 0; i < 5; ++i) mon.on_mem_op(fill(5));
  for (int i = 0; i < 2; ++i) mon.on_mem_op(fill(6));
  mon.on_mem_op(fill(7));
  const auto report = drain_once(mon);
  EXPECT_EQ(mon.evictions(), 1U);
  ASSERT_EQ(report.size(), 2U);
  EXPECT_EQ(report[0].pfn, 5U);
  EXPECT_EQ(report[0].count, 5U);
  EXPECT_EQ(report[1].pfn, 7U);
  EXPECT_EQ(report[1].count, 3U);  // 2 inherited + 1 of its own
}

TEST(DevMon, DecayHalvesCountersAndFreesDeadSlots) {
  const mem::PhysMemory phys = three_tier_phys();
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.decay = true;
  DevMonitor mon(cfg, phys, 1);
  for (int i = 0; i < 3; ++i) mon.on_mem_op(fill(5));
  auto report = drain_once(mon);
  ASSERT_EQ(report.size(), 1U);
  EXPECT_EQ(report[0].count, 3U);   // reported before decay
  report = drain_once(mon);         // no new fills: 3 >> 1 = 1 survives
  ASSERT_EQ(report.size(), 1U);
  EXPECT_EQ(report[0].count, 1U);
  report = drain_once(mon);         // 1 >> 1 = 0: slot freed, nothing left
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(mon.occupied(1), 0U);
  EXPECT_EQ(mon.drains(), 3U);
}

TEST(DevMon, LaneMergeIsCoreAssignmentInvariant) {
  const mem::PhysMemory phys = three_tier_phys();
  DevMonConfig cfg;
  cfg.enabled = true;
  cfg.decay = false;
  DevMonitor spread(cfg, phys, 4);
  DevMonitor packed(cfg, phys, 4);
  // The same multiset of fills, tallied on 4 cores vs all on core 0, must
  // fold to the same device arrays (merge is ascending core, ascending pfn).
  std::uint32_t core = 0;
  for (const mem::Pfn pfn : {9U, 4U, 13U, 9U, 17U, 4U, 9U, 13U}) {
    spread.on_mem_op(fill(pfn, core));
    packed.on_mem_op(fill(pfn, 0));
    core = (core + 1) % 4;
  }
  const auto a = drain_once(spread);
  const auto b = drain_once(packed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pfn, b[i].pfn) << i;
    EXPECT_EQ(a[i].count, b[i].count) << i;
    EXPECT_EQ(a[i].tier, b[i].tier) << i;
  }
  EXPECT_EQ(spread.observed(), packed.observed());
}

// ---------------------------------------------------------------------------
// Ranking fusion: the devmon signal enters the epoch ranking through
// FusionMode::SumDev (weighted additive) and DevOnly (ablation baseline).

core::PageKey page(std::uint64_t n) {
  return core::PageKey{1, n * mem::kPageSize};
}

TEST(DevMon, SumDevFusionAddsWeightedDeviceCounts) {
  core::EpochObservation obs;
  obs.abit[page(1)] = 2;
  obs.trace[page(1)] = 3;
  obs.devmon[page(1)] = 1000;
  obs.devmon[page(2)] = 500;  // devmon-only page still enters the ranking
  core::FusionParams params;
  params.mode = core::FusionMode::SumDev;
  params.devmon_weight = 0.01;
  core::RankingScratch scratch;
  std::vector<core::PageRank> ranking;
  core::build_ranking_into(obs, params, scratch, ranking);
  ASSERT_EQ(ranking.size(), 2U);
  EXPECT_EQ(ranking[0].key, page(1));
  EXPECT_EQ(ranking[0].rank, 2U + 3U + 10U);  // abit + trace + 0.01 * 1000
  EXPECT_EQ(ranking[0].devmon, 1000U);
  EXPECT_EQ(ranking[1].key, page(2));
  EXPECT_EQ(ranking[1].rank, 5U);
}

TEST(DevMon, DevOnlyFusionIgnoresSampledSources) {
  core::EpochObservation obs;
  obs.abit[page(1)] = 50;
  obs.trace[page(1)] = 50;
  obs.devmon[page(2)] = 7;
  core::FusionParams params;
  params.mode = core::FusionMode::DevOnly;
  core::RankingScratch scratch;
  std::vector<core::PageRank> ranking;
  core::build_ranking_into(obs, params, scratch, ranking);
  ASSERT_EQ(ranking.size(), 1U);
  EXPECT_EQ(ranking[0].key, page(2));
  EXPECT_EQ(ranking[0].rank, 7U);
}

// ---------------------------------------------------------------------------
// End-to-end: with DevMon enabled over an explicit three-tier chain, the
// full run must stay bitwise identical across engine thread counts.

sim::SimConfig chain_config() {
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tiers = {mem::TierSpec{"dram", 1 << 10, 80, 80, 0},
               mem::TierSpec{"cxl", 1 << 12, 150, 200, 0},
               mem::TierSpec{"nvm", 1 << 16, 300, 600, 0}};
  return cfg;
}

tiering::RunnerOptions chain_options(core::FusionMode fusion,
                                     std::uint32_t n_threads) {
  tiering::RunnerOptions opt;
  opt.policy = "history";
  opt.fusion = fusion;
  opt.n_epochs = 3;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  opt.daemon.driver.devmon.enabled = true;
  opt.daemon.devmon_weight = 0.01;
  opt.n_threads = n_threads;
  return opt;
}

void expect_identical(const tiering::RunnerResult& a,
                      const tiering::RunnerResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns) << label;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.tier1_hitrate),
            std::bit_cast<std::uint64_t>(b.tier1_hitrate))
      << label << " hitrate " << a.tier1_hitrate << " vs " << b.tier1_hitrate;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.protection_faults, b.protection_faults) << label;
}

TEST(DevMon, EndToEndThreadCountInvariantOnThreeTierChain) {
  const auto spec = workloads::find_spec("data_caching", 0.1);
  const sim::SimConfig cfg = chain_config();
  for (const core::FusionMode fusion :
       {core::FusionMode::SumDev, core::FusionMode::DevOnly}) {
    const std::string label(core::to_string(fusion));
    const tiering::RunnerResult t1 =
        tiering::EndToEndRunner::run(spec, cfg, chain_options(fusion, 1));
    const tiering::RunnerResult t8 =
        tiering::EndToEndRunner::run(spec, cfg, chain_options(fusion, 8));
    expect_identical(t1, t8, label + " [1 vs 8 threads]");
  }
}

}  // namespace
}  // namespace tmprof::monitors
