/// Telemetry subsystem tests (docs/OBSERVABILITY.md): null-handle no-ops,
/// registry semantics, shard-merge partition invariance, span-ring
/// overflow accounting, exporter formats, and the end-to-end determinism
/// contract — exports bitwise identical across engine thread counts and
/// across checkpoint/resume, and a *disabled* sink perturbing nothing.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/export.hpp"
#include "tiering/runner.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"
#include "workloads/registry.hpp"

namespace tmprof::telemetry {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Handles and registry.

TEST(Telemetry, NullHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const HistogramHandle h;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  // Must not crash — this is the telemetry-disabled hot path.
  c.add(7);
  c.inc();
  g.set(42);
  h.observe(3, 2);
}

TEST(Telemetry, RegistryResolvesAndAccumulates) {
  MetricsRegistry m;
  const Counter a = m.counter("reqs_total");
  const Counter b = m.counter("reqs_total");  // same cell
  a.add(2);
  b.inc();
  EXPECT_EQ(m.counter_value("reqs_total"), 3U);

  const Gauge depth = m.gauge("queue_depth");
  depth.set(9);
  depth.set(4);
  EXPECT_EQ(m.gauge_value("queue_depth"), 4U);

  const HistogramHandle lat = m.histogram("latency_ns", 0, 100, 10);
  lat.observe(5);
  lat.observe(15, 2);
  const util::Histogram& hist = m.histograms().at("latency_ns");
  EXPECT_EQ(hist.total(), 3U);
  EXPECT_EQ(hist.value_sum(), 35U);
  // Unregistered names read as zero rather than throwing.
  EXPECT_EQ(m.counter_value("never_registered_total"), 0U);
}

TEST(Telemetry, RegistryRejectsBadNames) {
  MetricsRegistry m;
  EXPECT_THROW((void)m.counter(""), util::AssertionError);
  EXPECT_THROW((void)m.counter("Bad-Name"), util::AssertionError);
  EXPECT_THROW((void)m.gauge("has space"), util::AssertionError);
  EXPECT_THROW((void)m.histogram("UPPER", 0, 1, 1), util::AssertionError);
  // Re-registering a histogram with a different shape is a bug.
  (void)m.histogram("h", 0, 100, 10);
  EXPECT_THROW((void)m.histogram("h", 0, 200, 10), util::AssertionError);
}

TEST(Telemetry, ShardMergeIsPartitionInvariant) {
  // The same logical adds, partitioned across different shard layouts,
  // must merge to bitwise-identical global cells.
  MetricsRegistry one;
  one.ensure_shards(1);
  MetricsRegistry four;
  four.ensure_shards(4);
  for (std::uint64_t i = 0; i < 32; ++i) {
    one.shard_counter(0, "ops_total").add(i);
    four.shard_counter(i % 4, "ops_total").add(i);
    one.shard_histogram(0, "lat", 0, 64, 8).observe(i);
    four.shard_histogram(i % 4, "lat", 0, 64, 8).observe(i);
  }
  one.merge_shards();
  four.merge_shards();
  EXPECT_EQ(one.counter_value("ops_total"), four.counter_value("ops_total"));
  std::ostringstream a, b;
  write_prometheus(a, one);
  write_prometheus(b, four);
  EXPECT_EQ(a.str(), b.str());

  // Merge drains the shard cells: a second barrier adds nothing.
  const std::uint64_t after_first = four.counter_value("ops_total");
  four.merge_shards();
  EXPECT_EQ(four.counter_value("ops_total"), after_first);
}

// ---------------------------------------------------------------------------
// Span tracer.

TEST(Telemetry, TracerOverflowIsCounted) {
  TelemetryConfig cfg;
  cfg.span_capacity = 4;
  Telemetry t(cfg);
  t.begin_run("overflow");
  for (int i = 0; i < 6; ++i) {
    t.span("s" + std::to_string(i), static_cast<util::SimNs>(i * 10),
           static_cast<util::SimNs>(i * 10 + 5));
  }
  EXPECT_EQ(t.tracer().size(), 4U);
  EXPECT_EQ(t.tracer().overwritten(), 2U);
  EXPECT_EQ(t.metrics().counter_value("telemetry_spans_dropped_total"), 2U);
  // The ring keeps the most recent spans, oldest-first.
  const std::vector<Span> spans = t.tracer().spans_in_order();
  ASSERT_EQ(spans.size(), 4U);
  EXPECT_EQ(spans.front().name, "s2");
  EXPECT_EQ(spans.back().name, "s5");
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Telemetry, BeginRunIsIdempotentForRepeatedLabel) {
  // A rejected resume falls back to a cold start that re-begins the same
  // run; the retry must reuse the pid so exports match a fresh run.
  Telemetry t(TelemetryConfig{});
  EXPECT_EQ(t.begin_run("case/run"), 1U);
  EXPECT_EQ(t.begin_run("case/run"), 1U);  // aborted attempt, retried
  EXPECT_EQ(t.current_pid(), 1U);
  EXPECT_EQ(t.begin_run("case/other"), 2U);
  EXPECT_EQ(t.begin_run("case/run"), 3U);  // not consecutive: a new group
  std::ostringstream os;
  t.write_chrome(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"pid\":4"), std::string::npos);
}

TEST(Telemetry, ChromeTraceIsBalancedAndLabelled) {
  Telemetry t(TelemetryConfig{});
  const std::uint32_t pid = t.begin_run("run one");
  EXPECT_EQ(pid, 1U);
  t.span("outer", 0, 100, kTidRunner);
  t.span("inner", 10, 40, kTidRunner);
  t.span("inner", 50, 90, kTidRunner);
  t.span("tick", 20, 60, kTidDaemon);
  // A defensively-clamped overlap: "leak" straddles outer's end.
  t.span("leak", 95, 150, kTidRunner);
  std::ostringstream os;
  t.write_chrome(os);
  const std::string json = os.str();

  const auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_EQ(count("\"ph\":\"B\""), 5U);
  EXPECT_EQ(count("\"ph\":\"M\""), 1U);
  EXPECT_NE(json.find("\"name\":\"run one\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
}

TEST(Telemetry, PrometheusTextFormat) {
  MetricsRegistry m;
  m.counter("ops_total").add(3);
  m.gauge("depth").set(7);
  const HistogramHandle h = m.histogram("lat", 0, 30, 3);
  h.observe(5);          // bucket [0, 10)
  h.observe(25, 2);      // bucket [20, 30)
  h.observe(1000);       // overflow: only +Inf sees it
  std::ostringstream os;
  write_prometheus(os, m);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE tmprof_ops_total counter\ntmprof_ops_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tmprof_depth gauge\ntmprof_depth 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("tmprof_lat_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("tmprof_lat_bucket{le=\"30\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("tmprof_lat_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("tmprof_lat_sum 1055\n"), std::string::npos);
  EXPECT_NE(text.find("tmprof_lat_count 4\n"), std::string::npos);
}

TEST(Telemetry, MaybeExportHonorsInterval) {
  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-telemetry";
  fs::remove_all(dir);
  fs::create_directories(dir);
  TelemetryConfig cfg;
  cfg.metrics_out = (dir / "metrics.prom").string();
  cfg.export_every = 2;
  Telemetry t(cfg);
  t.maybe_export(1);
  EXPECT_FALSE(fs::exists(cfg.metrics_out));
  t.maybe_export(2);
  ASSERT_TRUE(fs::exists(cfg.metrics_out));
  t.export_final();
  std::ifstream is(cfg.metrics_out);
  std::stringstream buf;
  buf << is.rdbuf();
  // The export counter observes itself: interval export + final export.
  EXPECT_NE(buf.str().find("tmprof_telemetry_exports_total 2\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end determinism contract.

sim::SimConfig e2e_config() {
  sim::SimConfig cfg;
  cfg.cores = 4;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 10;
  cfg.tier2_frames = 1 << 16;
  return cfg;
}

tiering::RunnerOptions e2e_options(std::uint32_t n_threads,
                                   Telemetry* telemetry) {
  tiering::RunnerOptions opt;
  opt.policy = "history";
  opt.n_epochs = 3;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(128);
  opt.n_threads = n_threads;
  opt.telemetry = telemetry;
  opt.telemetry_label = "e2e";
  return opt;
}

/// Both export streams concatenated — the whole observable telemetry state.
std::string exports_of(const Telemetry& t) {
  std::ostringstream os;
  t.write_prometheus(os);
  t.write_chrome(os);
  return os.str();
}

TEST(Telemetry, RunnerExportIsThreadCountInvariant) {
  const auto spec = workloads::find_spec("gups", 0.05);
  Telemetry t1{TelemetryConfig{}};
  Telemetry t8{TelemetryConfig{}};
  (void)tiering::EndToEndRunner::run(spec, e2e_config(), e2e_options(1, &t1));
  (void)tiering::EndToEndRunner::run(spec, e2e_config(), e2e_options(8, &t8));
  EXPECT_GT(t1.metrics().counter_value("system_ops_total"), 0U);
  EXPECT_GT(t1.metrics().counter_value("runner_epochs_total"), 0U);
  EXPECT_GT(t1.tracer().size(), 0U);
  EXPECT_EQ(exports_of(t1), exports_of(t8));
}

TEST(Telemetry, AttachingTelemetryDoesNotPerturbResults) {
  const auto spec = workloads::find_spec("gups", 0.05);
  // Serial (n_threads = 0) and sharded engines, with and without a sink:
  // telemetry must never touch simulated state.
  for (const std::uint32_t threads : {0U, 2U}) {
    const tiering::RunnerResult plain = tiering::EndToEndRunner::run(
        spec, e2e_config(), e2e_options(threads, nullptr));
    Telemetry t{TelemetryConfig{}};
    const tiering::RunnerResult instrumented = tiering::EndToEndRunner::run(
        spec, e2e_config(), e2e_options(threads, &t));
    EXPECT_EQ(plain.runtime_ns, instrumented.runtime_ns) << threads;
    std::uint64_t ha = 0, hb = 0;
    std::memcpy(&ha, &plain.tier1_hitrate, sizeof ha);
    std::memcpy(&hb, &instrumented.tier1_hitrate, sizeof hb);
    EXPECT_EQ(ha, hb) << threads;
    EXPECT_EQ(plain.migrations, instrumented.migrations) << threads;
    EXPECT_EQ(plain.profiling_overhead_ns, instrumented.profiling_overhead_ns)
        << threads;
    // The instrumented run agrees with its own result: the registry's ops
    // counter is fed by the same accesses that produced the hitrate.
    EXPECT_GT(t.metrics().counter_value("system_ops_total"), 0U);
  }
}

TEST(Telemetry, ExportsSurviveCheckpointResume) {
  const auto spec = workloads::find_spec("gups", 0.05);
  Telemetry reference_sink{TelemetryConfig{}};
  (void)tiering::EndToEndRunner::run(spec, e2e_config(),
                                     e2e_options(1, &reference_sink));
  const std::string reference = exports_of(reference_sink);

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-telem-resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Telemetry ckpt_sink{TelemetryConfig{}};
  tiering::RunnerOptions opt = e2e_options(1, &ckpt_sink);
  opt.checkpoint.every = 1;
  opt.checkpoint.dir = dir.string();
  opt.checkpoint.keep_last = 16;
  (void)tiering::EndToEndRunner::run(spec, e2e_config(), opt);
  // The completed checkpointed run itself matches the reference.
  EXPECT_EQ(exports_of(ckpt_sink), reference);

  Telemetry resume_sink{TelemetryConfig{}};
  tiering::RunnerOptions resume = e2e_options(1, &resume_sink);
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  (void)tiering::EndToEndRunner::run(spec, e2e_config(), resume);
  EXPECT_EQ(exports_of(resume_sink), reference);
}

TEST(Telemetry, ResumePresenceMismatchFallsBackToColdStart) {
  // A checkpoint written with telemetry attached cannot silently resume
  // into a run without it (or vice versa): the runner rejects the section
  // and falls back to a cold start, which must still be bitwise correct.
  const auto spec = workloads::find_spec("gups", 0.05);
  const tiering::RunnerResult reference = tiering::EndToEndRunner::run(
      spec, e2e_config(), e2e_options(1, nullptr));

  const fs::path dir = fs::path(::testing::TempDir()) / "tmprof-telem-mis";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Telemetry sink{TelemetryConfig{}};
  tiering::RunnerOptions opt = e2e_options(1, &sink);
  opt.checkpoint.every = 1;
  opt.checkpoint.dir = dir.string();
  opt.checkpoint.keep_last = 16;
  (void)tiering::EndToEndRunner::run(spec, e2e_config(), opt);

  tiering::RunnerOptions resume = e2e_options(1, nullptr);
  resume.checkpoint.resume_from =
      util::ckpt::checkpoint_path(dir.string(), "ckpt", 2);
  ASSERT_TRUE(fs::exists(resume.checkpoint.resume_from));
  const tiering::RunnerResult resumed =
      tiering::EndToEndRunner::run(spec, e2e_config(), resume);
  EXPECT_EQ(reference.runtime_ns, resumed.runtime_ns);
  EXPECT_EQ(reference.migrations, resumed.migrations);
}

TEST(Telemetry, StateRoundTripsThroughCheckpoint) {
  TelemetryConfig cfg;
  cfg.span_capacity = 8;
  Telemetry t(cfg);
  t.begin_run("alpha");
  t.metrics().counter("ops_total").add(11);
  t.metrics().gauge("depth").set(3);
  t.metrics().histogram("lat", 0, 100, 10).observe(42, 2);
  for (int i = 0; i < 12; ++i) {  // overflow the ring so drops round-trip
    t.span("s", static_cast<util::SimNs>(i), static_cast<util::SimNs>(i + 1),
           kTidMover);
  }
  t.begin_run("beta");
  t.span("late", 100, 200, kTidDaemon);

  util::ckpt::Writer w;
  w.begin_section("telemetry");
  t.save_state(w);
  w.end_section();
  util::ckpt::Reader r(w.finish());
  r.enter_section("telemetry");
  Telemetry restored(cfg);
  restored.load_state(r);
  r.end_section();
  EXPECT_EQ(exports_of(restored), exports_of(t));
  EXPECT_EQ(restored.current_pid(), t.current_pid());
  EXPECT_EQ(restored.tracer().overwritten(), t.tracer().overwritten());
}

}  // namespace
}  // namespace tmprof::telemetry
