/// Migration admission control (docs/ADMISSION.md): benefit/cost scoring
/// determinism, token-bucket refill arithmetic at simulated-time edges,
/// ping-pong cool-down escalation and expiry, storm-brake shed order under
/// rank ties, the off-mode pass-through guarantee, controller checkpoint
/// round-trips and thread-count invariance of admission-gated runs.

#include "tiering/admission.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "telemetry/telemetry.hpp"
#include "tiering/mover.hpp"
#include "tiering/runner.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace tmprof::tiering {
namespace {

PageKey page(std::uint64_t n) { return PageKey{1, n << mem::kPageShift}; }

std::vector<core::PageRank> ranking_of(
    std::initializer_list<std::pair<std::uint64_t, std::uint64_t>> entries) {
  std::vector<core::PageRank> ranking;
  for (const auto& [idx, rank] : entries) {
    core::PageRank pr;
    pr.key = page(idx);
    pr.rank = rank;
    ranking.push_back(pr);
  }
  return ranking;
}

constexpr std::uint64_t kPageBytes = 1ULL << mem::kPageShift;

TEST(AdmissionUnit, ParseModeEnumeration) {
  EXPECT_EQ(parse_admission_mode("off"), AdmissionMode::Off);
  EXPECT_EQ(parse_admission_mode("static"), AdmissionMode::Static);
  EXPECT_EQ(parse_admission_mode("adaptive"), AdmissionMode::Adaptive);
  try {
    (void)parse_admission_mode("banana");
    FAIL() << "unknown mode accepted";
  } catch (const std::invalid_argument& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("--admission"), std::string::npos);
    EXPECT_NE(msg.find("banana"), std::string::npos);
    for (const char* mode : {"off", "static", "adaptive"}) {
      EXPECT_NE(msg.find(mode), std::string::npos) << mode;
    }
  }
}

TEST(AdmissionUnit, ModeNamesRoundTrip) {
  for (const auto mode : {AdmissionMode::Off, AdmissionMode::Static,
                          AdmissionMode::Adaptive}) {
    EXPECT_EQ(parse_admission_mode(std::string(to_string(mode))), mode);
  }
}

TEST(AdmissionUnit, TokenBucketRefillCarriesSubTokenRemainders) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.bandwidth_bytes_per_sec = 2;  // 1 byte per half simulated second
  cfg.burst_bytes = 2 * kPageBytes;
  AdmissionController adm(cfg);
  EXPECT_EQ(adm.tokens(), 2 * kPageBytes);  // bucket starts full

  const auto ranking = ranking_of({{1, 10}, {2, 10}, {3, 10}});
  adm.begin_epoch(0, ranking);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
  EXPECT_EQ(adm.decide(page(2), kPageBytes), AdmissionDecision::Admit);
  EXPECT_EQ(adm.tokens(), 0U);
  EXPECT_EQ(adm.decide(page(3), kPageBytes),
            AdmissionDecision::RejectBandwidth);

  // A quarter second owes 0.5 bytes: zero whole tokens, carry 0.5.
  adm.begin_epoch(util::kSecond / 4, ranking);
  EXPECT_EQ(adm.tokens(), 0U);
  // Another quarter second: the carried half rounds the refill up to 1.
  adm.begin_epoch(util::kSecond / 2, ranking);
  EXPECT_EQ(adm.tokens(), 1U);
  EXPECT_EQ(adm.decide(page(3), kPageBytes),
            AdmissionDecision::RejectBandwidth);

  // Enough time to overfill clamps at the burst and zeroes the carry: the
  // next sub-token interval starts from scratch.
  adm.begin_epoch(util::kSecond / 2 + util::kSecond * 4 * kPageBytes,
                  ranking);
  EXPECT_EQ(adm.tokens(), 2 * kPageBytes);
  adm.begin_epoch(util::kSecond / 2 + util::kSecond * 4 * kPageBytes +
                      util::kSecond / 4,
                  ranking);
  EXPECT_EQ(adm.tokens(), 2 * kPageBytes);  // still clamped, carry was reset
}

TEST(AdmissionUnit, ZeroBandwidthMeansUnlimited) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.bandwidth_bytes_per_sec = 0;
  AdmissionController adm(cfg);
  const auto ranking = ranking_of({{1, 10}});
  adm.begin_epoch(0, ranking);
  for (int i = 0; i < 3; ++i) {
    adm.begin_epoch(util::SimNs(i + 1), ranking_of({{1, 10}}));
    EXPECT_EQ(adm.decide(page(1), 1ULL << 30), AdmissionDecision::Admit) << i;
  }
}

TEST(AdmissionUnit, BenefitDecaysGeometricallyAndIsDeterministic) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.history_epochs = 4;
  AdmissionController a(cfg);
  AdmissionController b(cfg);
  for (AdmissionController* adm : {&a, &b}) {
    adm->begin_epoch(100, ranking_of({{1, 8}, {2, 3}}));
    adm->begin_epoch(200, ranking_of({{1, 8}}));
    adm->begin_epoch(300, ranking_of({{1, 8}, {2, 5}}));
  }
  // Page 1: ranks [8, 8, 8] at ages 0..2 -> 8 + 4 + 2.
  EXPECT_EQ(a.benefit(page(1)), 14U);
  EXPECT_EQ(a.evidence(page(1)), 3U);
  // Page 2: rank 5 at age 0 plus rank 3 at age 2 -> 5 + (3 >> 2).
  EXPECT_EQ(a.benefit(page(2)), 5U);
  EXPECT_EQ(a.evidence(page(2)), 2U);
  EXPECT_EQ(a.benefit(page(3)), 0U);  // never ranked
  EXPECT_EQ(b.benefit(page(1)), a.benefit(page(1)));
  EXPECT_EQ(b.benefit(page(2)), a.benefit(page(2)));
}

TEST(AdmissionUnit, EvidenceWindowForgetsOldSightings) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.history_epochs = 2;
  AdmissionController adm(cfg);
  adm.begin_epoch(1, ranking_of({{1, 9}}));
  EXPECT_EQ(adm.evidence(page(1)), 1U);
  adm.begin_epoch(2, ranking_of({}));
  EXPECT_EQ(adm.evidence(page(1)), 1U);  // age 1, still inside the window
  adm.begin_epoch(3, ranking_of({}));
  EXPECT_EQ(adm.evidence(page(1)), 0U);  // aged out
  EXPECT_EQ(adm.benefit(page(1)), 0U);
}

TEST(AdmissionUnit, MinHistoryFiltersOneEpochWonders) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 2;
  AdmissionController adm(cfg);
  adm.begin_epoch(1, ranking_of({{1, 50}}));
  EXPECT_EQ(adm.decide(page(1), kPageBytes),
            AdmissionDecision::RejectBenefit);
  adm.begin_epoch(2, ranking_of({{1, 50}}));
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
}

TEST(AdmissionUnit, StaticBenefitFloorRejectsColdCandidates) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.min_benefit = 10;
  AdmissionController adm(cfg);
  adm.begin_epoch(1, ranking_of({{1, 9}, {2, 10}}));
  EXPECT_EQ(adm.decide(page(1), kPageBytes),
            AdmissionDecision::RejectBenefit);
  EXPECT_EQ(adm.decide(page(2), kPageBytes), AdmissionDecision::Admit);
}

TEST(AdmissionUnit, PingPongCooldownEscalatesAndExpires) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.cooldown_epochs = 2;
  cfg.max_cooldown_epochs = 8;
  AdmissionController adm(cfg);
  const auto hot = ranking_of({{1, 40}});

  adm.begin_epoch(1, hot);  // epoch 1
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
  adm.note_demoted(page(1));

  // Re-requested one epoch after the demotion: strike 1, cool 2 epochs.
  adm.begin_epoch(2, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled);
  adm.begin_epoch(3, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled);
  adm.begin_epoch(4, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled);

  // Epoch 5: cool-down over, the old demotion (epoch 1) is outside the
  // window, so the page admits cleanly.
  adm.begin_epoch(5, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
  adm.note_demoted(page(1));

  // Second offence escalates: 2 << 1 = 4 epochs of cool-down (6..10).
  adm.begin_epoch(6, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled);
  for (std::uint32_t e = 7; e <= 10; ++e) {
    adm.begin_epoch(e, hot);
    EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled)
        << e;
  }
  adm.begin_epoch(11, hot);
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
}

TEST(AdmissionUnit, CooldownSpanIsCapped) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.cooldown_epochs = 4;
  cfg.max_cooldown_epochs = 4;  // escalation must clamp immediately
  AdmissionController adm(cfg);
  const auto hot = ranking_of({{1, 40}});
  std::uint32_t epoch = 1;
  for (int offence = 0; offence < 3; ++offence) {
    adm.begin_epoch(epoch++, hot);
    ASSERT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit)
        << offence;
    adm.note_demoted(page(1));
    adm.begin_epoch(epoch++, hot);
    ASSERT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled)
        << offence;
    // Capped at 4 epochs regardless of the strike count.
    for (int cool = 0; cool < 4; ++cool) {
      adm.begin_epoch(epoch++, hot);
      ASSERT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Cooled);
    }
  }
}

TEST(AdmissionUnit, StormBrakeShedsLowestBenefitUnderTies) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.max_moves_per_epoch = 2;
  AdmissionController adm(cfg);
  // Four candidates, tied rank: the mover consults them in RankOrder
  // (ascending key breaks the tie), so keys 1 and 2 win the brake slots.
  adm.begin_epoch(1, ranking_of({{1, 7}, {2, 7}, {3, 7}, {4, 7}}));
  EXPECT_EQ(adm.decide(page(1), kPageBytes), AdmissionDecision::Admit);
  EXPECT_EQ(adm.decide(page(2), kPageBytes), AdmissionDecision::Admit);
  EXPECT_EQ(adm.decide(page(3), kPageBytes), AdmissionDecision::Shed);
  EXPECT_EQ(adm.decide(page(4), kPageBytes), AdmissionDecision::Shed);
  EXPECT_EQ(adm.throttled_epochs(), 1U);
  // The brake resets at the epoch barrier.
  adm.begin_epoch(2, ranking_of({{1, 7}, {2, 7}}));
  EXPECT_EQ(adm.decide(page(3), kPageBytes), AdmissionDecision::Admit);
  EXPECT_EQ(adm.throttled_epochs(), 1U);  // no shedding this epoch
}

TEST(AdmissionUnit, RegistryTalliesMatchDecisions) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 2;
  cfg.max_moves_per_epoch = 1;
  AdmissionController adm(cfg);
  adm.begin_epoch(1, ranking_of({{1, 9}, {2, 9}, {3, 9}}));
  (void)adm.decide(page(1), kPageBytes);  // RejectBenefit (evidence 1 < 2)
  adm.begin_epoch(2, ranking_of({{1, 9}, {2, 9}, {3, 9}}));
  (void)adm.decide(page(1), kPageBytes);  // Admit
  (void)adm.decide(page(2), kPageBytes);  // Shed (brake cap 1)
  const telemetry::MetricsRegistry& reg = adm.registry();
  EXPECT_EQ(reg.counter_value("mover_rejected_total"), 1U);
  EXPECT_EQ(reg.counter_value("mover_admitted_total"), 1U);
  EXPECT_EQ(reg.counter_value("mover_shed_total"), 1U);
  EXPECT_EQ(reg.counter_value("mover_cooled_total"), 0U);
  EXPECT_EQ(reg.gauge_value("admission_tokens"), adm.tokens());
}

TEST(AdmissionUnit, AdaptiveThresholdRisesUnderPressureAndDecays) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Adaptive;
  cfg.min_history = 1;
  cfg.min_benefit = 1;
  cfg.max_moves_per_epoch = 1;
  AdmissionController adm(cfg);
  const auto ranking = ranking_of({{1, 60}, {2, 60}, {3, 60}});
  adm.begin_epoch(1, ranking);
  EXPECT_EQ(adm.threshold(), 1U);
  (void)adm.decide(page(1), kPageBytes);  // Admit
  (void)adm.decide(page(2), kPageBytes);  // Shed -> pressure
  // The retune at the next barrier sees the shed and doubles the floor.
  adm.begin_epoch(2, ranking);
  EXPECT_EQ(adm.threshold(), 2U);
  (void)adm.decide(page(1), kPageBytes);
  (void)adm.decide(page(2), kPageBytes);  // Shed again
  adm.begin_epoch(3, ranking);
  EXPECT_EQ(adm.threshold(), 4U);
  // Calm epochs decay the floor halfway back each barrier.
  adm.begin_epoch(4, ranking);
  adm.begin_epoch(5, ranking);
  EXPECT_LT(adm.threshold(), 4U);
  EXPECT_GE(adm.threshold(), 1U);
}

TEST(AdmissionUnit, HistoryCompactionKeepsCooledAndRecentPages) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.min_history = 1;
  cfg.history_epochs = 2;
  cfg.cooldown_epochs = 16;  // long enough to outlive the flood below
  cfg.max_cooldown_epochs = 64;
  cfg.max_history_pages = 8;
  AdmissionController adm(cfg);
  // Cool page 0 so compaction must preserve it even when it goes unseen.
  adm.begin_epoch(1, ranking_of({{0, 90}}));
  ASSERT_EQ(adm.decide(page(0), kPageBytes), AdmissionDecision::Admit);
  adm.note_demoted(page(0));
  adm.begin_epoch(2, ranking_of({{0, 90}}));
  ASSERT_EQ(adm.decide(page(0), kPageBytes), AdmissionDecision::Cooled);
  // Flood the history with one-epoch wonders over several epochs; entries
  // whose sightings age out of the window must be dropped at the cap.
  for (std::uint32_t e = 3; e < 10; ++e) {
    std::vector<core::PageRank> flood;
    for (std::uint64_t i = 0; i < 6; ++i) {
      core::PageRank pr;
      pr.key = page(100 + (e * 6) + i);
      pr.rank = 5;
      flood.push_back(pr);
    }
    adm.begin_epoch(e, flood);
  }
  EXPECT_LE(adm.history_pages(), 32U);  // bounded near the cap, not growing
  // The cooled page survived compaction despite ageing out of the ranking
  // window: its live cool-down still holds at epoch 10.
  adm.begin_epoch(10, ranking_of({}));
  EXPECT_EQ(adm.decide(page(0), kPageBytes), AdmissionDecision::Cooled);
}

TEST(AdmissionUnit, ControllerCheckpointRoundTripsBitwise) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Adaptive;
  cfg.min_history = 1;
  cfg.min_benefit = 1;
  cfg.bandwidth_bytes_per_sec = 64 * kPageBytes;
  cfg.burst_bytes = 4 * kPageBytes;
  cfg.max_moves_per_epoch = 2;
  AdmissionController a(cfg);
  const auto ranking = ranking_of({{1, 30}, {2, 20}, {3, 10}, {4, 5}});
  util::SimNs now = 0;
  for (std::uint32_t e = 1; e <= 4; ++e) {
    now += util::kMillisecond;
    a.begin_epoch(now, ranking);
    (void)a.decide(page(1), kPageBytes);
    (void)a.decide(page(2), kPageBytes);
    (void)a.decide(page(3), kPageBytes);
    a.note_demoted(page(2));
  }

  util::ckpt::Writer w;
  w.begin_section("admission");
  a.save_state(w);
  w.end_section();
  const std::vector<std::uint8_t> image = w.finish();

  AdmissionController b(cfg);
  util::ckpt::Reader r(image);
  r.enter_section("admission");
  b.load_state(r);
  r.end_section();

  EXPECT_EQ(b.epoch(), a.epoch());
  EXPECT_EQ(b.tokens(), a.tokens());
  EXPECT_EQ(b.threshold(), a.threshold());
  EXPECT_EQ(b.history_pages(), a.history_pages());
  EXPECT_EQ(b.registry().counter_value("mover_cooled_total"),
            a.registry().counter_value("mover_cooled_total"));

  // Drive both controllers forward identically: every verdict and every
  // re-serialized image must stay bitwise identical.
  for (std::uint32_t e = 5; e <= 8; ++e) {
    now += util::kMillisecond;
    a.begin_epoch(now, ranking);
    b.begin_epoch(now, ranking);
    for (std::uint64_t p = 1; p <= 4; ++p) {
      EXPECT_EQ(a.decide(page(p), kPageBytes), b.decide(page(p), kPageBytes))
          << "epoch " << e << " page " << p;
    }
  }
  util::ckpt::Writer wa, wb;
  wa.begin_section("admission");
  a.save_state(wa);
  wa.end_section();
  wb.begin_section("admission");
  b.save_state(wb);
  wb.end_section();
  EXPECT_EQ(wa.finish(), wb.finish());
}

TEST(AdmissionUnit, LoadRejectsCorruptBucketState) {
  AdmissionConfig cfg;
  cfg.mode = AdmissionMode::Static;
  cfg.burst_bytes = kPageBytes;
  AdmissionController a(cfg);
  a.begin_epoch(1, ranking_of({{1, 5}}));
  util::ckpt::Writer w;
  w.begin_section("admission");
  a.save_state(w);
  w.end_section();
  std::vector<std::uint8_t> image = w.finish();

  // A controller configured with a smaller burst must refuse the saved
  // token count instead of silently over-crediting bandwidth.
  AdmissionConfig small = cfg;
  small.burst_bytes = kPageBytes / 2;
  AdmissionController b(small);
  util::ckpt::Reader r(image);
  r.enter_section("admission");
  try {
    b.load_state(r);
    FAIL() << "oversized token count accepted";
  } catch (const util::ckpt::CkptError& err) {
    EXPECT_EQ(err.section(), "admission");
  }
}

TEST(AdmissionUnit, ExternalTelemetryMirrorsOnlyWhenEnabled) {
  telemetry::TelemetryConfig tcfg;
  tcfg.metrics_out = "unused.prom";  // never exported in this test
  // Gate off: attaching a sink must register nothing, so disabled runs
  // export byte-identical metric sets.
  {
    telemetry::Telemetry sink(tcfg);
    AdmissionController off{AdmissionConfig{}};
    off.set_telemetry(&sink);
    EXPECT_EQ(sink.metrics().counters().count("mover_rejected_total"), 0U);
  }
  // Gate on: the external registry carries the mirrored tallies.
  {
    telemetry::Telemetry sink(tcfg);
    AdmissionConfig cfg;
    cfg.mode = AdmissionMode::Static;
    cfg.min_history = 2;
    AdmissionController adm(cfg);
    adm.set_telemetry(&sink);
    adm.begin_epoch(1, ranking_of({{1, 9}}));
    (void)adm.decide(page(1), kPageBytes);  // RejectBenefit
    EXPECT_EQ(sink.metrics().counter_value("mover_rejected_total"), 1U);
    EXPECT_EQ(sink.metrics().gauge_value("admission_tokens"), adm.tokens());
    EXPECT_EQ(sink.metrics().counters().count("mover_cooled_total"), 1U);
  }
}

// ---------------------------------------------------------------------------
// Runner-level properties.

sim::SimConfig tiny_config() {
  sim::SimConfig cfg;
  cfg.cores = 2;
  cfg.llc_bytes = 1 << 18;
  cfg.tier1_frames = 1 << 9;
  cfg.tier2_frames = 1 << 14;
  return cfg;
}

RunnerOptions tiny_runner(const AdmissionConfig& admission) {
  RunnerOptions opt;
  opt.policy = "history";
  opt.n_epochs = 5;
  opt.ops_per_epoch = 30000;
  opt.daemon.driver.ibs = monitors::IbsConfig::with_period(256);
  opt.mover.admission = admission;
  return opt;
}

AdmissionConfig gated_config(AdmissionMode mode) {
  AdmissionConfig adm;
  adm.mode = mode;
  adm.min_history = 1;
  adm.bandwidth_bytes_per_sec = 512 * kPageBytes;
  adm.burst_bytes = 64 * kPageBytes;
  adm.cooldown_epochs = 2;
  return adm;
}

void expect_bitwise_equal(const RunnerResult& a, const RunnerResult& b) {
  EXPECT_EQ(a.runtime_ns, b.runtime_ns);
  std::uint64_t ha = 0, hb = 0;
  std::memcpy(&ha, &a.tier1_hitrate, sizeof ha);
  std::memcpy(&hb, &b.tier1_hitrate, sizeof hb);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.moves.promoted, b.moves.promoted);
  EXPECT_EQ(a.moves.demoted, b.moves.demoted);
  EXPECT_EQ(a.moves.rejected, b.moves.rejected);
  EXPECT_EQ(a.moves.cooled, b.moves.cooled);
  EXPECT_EQ(a.moves.shed, b.moves.shed);
  EXPECT_EQ(a.moves.moved_bytes, b.moves.moved_bytes);
  EXPECT_EQ(a.degrade.throttled_epochs, b.degrade.throttled_epochs);
}

TEST(AdmissionRunner, OffModeIgnoresEveryOtherKnob) {
  // Acceptance: with --admission=off the gate is pass-through — bandwidth,
  // cool-down and brake knobs must not perturb a single bit.
  const auto spec = workloads::find_spec("gups", 0.05);
  const RunnerResult plain =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner(AdmissionConfig{}));
  AdmissionConfig noisy;
  noisy.mode = AdmissionMode::Off;
  noisy.bandwidth_bytes_per_sec = 17;
  noisy.burst_bytes = 1;
  noisy.cooldown_epochs = 9;
  noisy.min_benefit = 1000;
  noisy.max_moves_per_epoch = 1;
  const RunnerResult off =
      EndToEndRunner::run(spec, tiny_config(), tiny_runner(noisy));
  expect_bitwise_equal(off, plain);
  EXPECT_EQ(off.moves.rejected, 0U);
  EXPECT_EQ(off.moves.cooled, 0U);
  EXPECT_EQ(off.moves.shed, 0U);
}

TEST(AdmissionRunner, GatedRunIsThreadCountInvariant) {
  const auto spec = workloads::find_spec("gups", 0.05);
  for (const auto mode : {AdmissionMode::Static, AdmissionMode::Adaptive}) {
    RunnerOptions opt = tiny_runner(gated_config(mode));
    opt.n_threads = 1;
    const RunnerResult one = EndToEndRunner::run(spec, tiny_config(), opt);
    opt.n_threads = 8;
    const RunnerResult eight = EndToEndRunner::run(spec, tiny_config(), opt);
    expect_bitwise_equal(one, eight);
  }
}

TEST(AdmissionRunner, GateChangesMoveTotalsButTalliesBalance) {
  const auto spec = workloads::find_spec("gups", 0.05);
  RunnerOptions opt = tiny_runner(gated_config(AdmissionMode::Static));
  opt.mover.admission.min_history = 2;
  const RunnerResult gated = EndToEndRunner::run(spec, tiny_config(), opt);
  // The gate must actually veto something on a migration-heavy run...
  EXPECT_GT(gated.moves.rejected + gated.moves.cooled + gated.moves.shed, 0U);
  // ...and bytes tally every move both ways (promotions + demotions).
  EXPECT_GE(gated.moves.moved_bytes,
            (gated.moves.promoted + gated.moves.demoted) * kPageBytes);
}

}  // namespace
}  // namespace tmprof::tiering
