/// Extension — N-tier topology sweep with device-side hotness monitoring
/// (docs/TOPOLOGY.md). Runs each workload over a ladder of tier chains
/// (DRAM+NVM, DRAM+CXL+NVM, DRAM+CXL+NVM+cold — or one custom chain via
/// --tiers=), each with the device-side hot-page counters off and on, so
/// the table doubles as the DevMon ablation: the "devmon" rows fuse the
/// per-device top-K reports into the ranking (FusionMode::SumDev) while
/// the baseline rows rank from IBS + A-bit alone.
///
/// Usage: topology [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--seed=N]
///        [--tiers=name:frames:read_ns:write_ns[:bw_gbps],...]
///        [--devmon-slots=N] [--devmon-topk=N] [--devmon-weight=F]
///        [--csv-out=F] [--check=1]
///
/// --check=1 exits non-zero unless DevMon improves the three-tier chain:
/// >= +2 pp DRAM-tier hitrate or >= 5% runtime reduction on the first
/// selected workload (the PR's acceptance gate, wired into CI).

#include <iostream>
#include <string>
#include <vector>

#include "topology_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

std::string chain_label(const std::vector<mem::TierSpec>& tiers) {
  std::string label;
  for (const mem::TierSpec& spec : tiers) {
    if (!label.empty()) label += '+';
    label += spec.name;
  }
  return label;
}

std::string fills_label(const bench::ChainRun& run) {
  std::string label;
  for (const std::uint64_t fills : run.tier_fills) {
    if (!label.empty()) label += '/';
    label += util::TextTable::num(fills);
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  bench::ChainOptions base;
  base.epochs = static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  base.ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  base.seed = args.get_u64("seed", 42);
  base.ibs_rate = args.get_u64("ibs-rate", 1);
  const monitors::DevMonConfig devmon_cfg = bench::devmon_from_args(args);
  // Device counters see every fill their tier serves while IBS sees a
  // sparse sample, so the fusion weight scales raw device counts down to
  // the sampled-signal magnitude (docs/TOPOLOGY.md). The default is
  // calibrated for the bench's sparse (paper-default) sampling period;
  // heavier weights let the device signal evict hot-but-weakly-sampled
  // DRAM residents, which the device is blind to.
  const double devmon_weight = args.get_checked_double(
      "devmon-weight", 0.008, 0.0, 1e6);
  const std::vector<mem::TierSpec> custom = bench::tiers_from_args(args);
  const bool check = args.get_bool("check", false);
  const std::string csv_out = args.get("csv-out", "");

  std::cout << "Extension: N-tier topology chains with device-side hotness "
               "monitoring (DevMon)\n\n";
  util::TextTable table({"workload", "chain", "devmon", "runtime_ms",
                         "dram hit", "tier fills", "migrations",
                         "dev reports"});
  std::vector<std::vector<std::string>> csv_rows;

  // The --check gate compares the three-tier chain devmon-off vs -on for
  // the first selected workload.
  double check_off_hit = 0.0, check_on_hit = 0.0;
  util::SimNs check_off_ns = 0, check_on_ns = 0;
  bool check_seen = false;

  for (const auto& spec : bench::selected_specs(args)) {
    std::vector<std::vector<mem::TierSpec>> chains;
    if (!custom.empty()) {
      chains.push_back(custom);
    } else {
      chains.push_back(bench::two_tier_chain(spec));
      chains.push_back(bench::three_tier_chain(spec));
      chains.push_back(bench::four_tier_chain(spec));
    }
    for (const std::vector<mem::TierSpec>& chain : chains) {
      for (const bool with_devmon : {false, true}) {
        bench::ChainOptions opt = base;
        opt.devmon = devmon_cfg;
        opt.devmon.enabled = with_devmon;
        opt.fusion = with_devmon ? core::FusionMode::SumDev
                                 : core::FusionMode::Sum;
        opt.devmon_weight = devmon_weight;
        const bench::ChainRun run = bench::run_chain(spec, chain, opt);
        table.add_row({spec.name, chain_label(chain),
                       with_devmon ? "on" : "off",
                       util::TextTable::num(run.runtime_ns /
                                            util::kMillisecond),
                       util::TextTable::percent(run.dram_hitrate),
                       fills_label(run), util::TextTable::num(run.migrations),
                       util::TextTable::num(run.devmon_reported)});
        csv_rows.push_back(
            {spec.name, chain_label(chain), std::to_string(chain.size()),
             with_devmon ? "1" : "0",
             std::to_string(run.runtime_ns / util::kMillisecond),
             std::to_string(run.dram_hitrate), std::to_string(run.migrations),
             std::to_string(run.promoted), std::to_string(run.demoted),
             std::to_string(run.devmon_reported)});
        if (!check_seen && chain.size() == 3) {
          if (with_devmon) {
            check_on_hit = run.dram_hitrate;
            check_on_ns = run.runtime_ns;
            check_seen = true;
          } else {
            check_off_hit = run.dram_hitrate;
            check_off_ns = run.runtime_ns;
          }
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: deeper chains keep the warm band closer to the "
               "core, and the devmon rows promote hot slow-tier pages the "
               "sparse samplers miss — the device counter sees every fill "
               "its tier serves.\n";

  if (!csv_out.empty()) {
    util::CsvWriter csv(csv_out);
    csv.write_row(bench::topology_csv_header());
    for (const std::vector<std::string>& row : csv_rows) csv.write_row(row);
    std::cout << "\nwrote " << csv.rows_written() << " rows to " << csv_out
              << "\n";
  }

  if (check) {
    if (!check_seen) {
      std::cerr << "check: no three-tier chain in the sweep (drop --tiers= "
                   "or pass a 3-tier chain)\n";
      return 1;
    }
    const double hit_gain = check_on_hit - check_off_hit;
    const double runtime_cut =
        check_off_ns == 0 ? 0.0
                          : 1.0 - static_cast<double>(check_on_ns) /
                                      static_cast<double>(check_off_ns);
    std::cout << "\ncheck: devmon dram-hit gain "
              << util::TextTable::fixed(hit_gain * 100.0, 2)
              << " pp, runtime cut "
              << util::TextTable::fixed(runtime_cut * 100.0, 2) << "%\n";
    if (hit_gain < 0.02 && runtime_cut < 0.05) {
      std::cerr << "check FAILED: DevMon must gain >= 2 pp DRAM hitrate or "
                   "cut runtime by >= 5% on the three-tier chain\n";
      return 1;
    }
    std::cout << "check OK\n";
  }
  return 0;
}
