/// Fig. 5 — CDFs of per-page access observations for each workload under
/// each profiling technique and sampling rate: A-bit, IBS default, IBS 4x,
/// IBS 8x.
///
/// Prints quantile rows per curve and writes full curves to
/// fig5_<workload>.csv. Expected shapes: IBS curves shift right with the
/// sampling rate (more samples per detected page); A-bit curves saturate
/// near the scan count for hot pages; on cache-friendly workloads the A-bit
/// curve dominates (more pages, higher counts) while trace curves collapse.
///
/// Usage: fig5_cdf [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--csv=0|1]

#include <array>
#include <fstream>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "monitors/abit.hpp"
#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "util/cdf.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

util::EmpiricalCdf to_cdf(
    const std::unordered_map<std::uint64_t, std::uint32_t>& counts) {
  std::vector<std::uint64_t> values;
  values.reserve(counts.size());
  for (const auto& [page, count] : counts) values.push_back(count);
  return util::EmpiricalCdf(std::move(values));
}

std::vector<std::string> quantile_row(const std::string& label,
                                      const util::EmpiricalCdf& cdf) {
  if (cdf.empty()) {
    return {label, "0", "-", "-", "-", "-", "-"};
  }
  return {label,
          util::TextTable::num(cdf.size()),
          util::TextTable::num(cdf.quantile(0.25)),
          util::TextTable::num(cdf.quantile(0.5)),
          util::TextTable::num(cdf.quantile(0.9)),
          util::TextTable::num(cdf.quantile(0.99)),
          util::TextTable::num(cdf.max())};
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 1'000'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const bool write_csv = args.get_bool("csv", true);

  std::cout << "Fig. 5: CDFs of per-page observation counts\n"
            << "(columns: detected pages, then counts at p25/p50/p90/p99/"
               "max)\n\n";

  for (const auto& spec : bench::selected_specs(args)) {
    sim::System system(bench::testbed_config(spec.total_bytes));
    tiering::add_spec_processes(system, spec, seed);

    const std::array<std::uint64_t, 3> multipliers{1, 4, 8};
    const std::array<std::string, 3> rate_names{"ibs-default", "ibs-4x",
                                                "ibs-8x"};
    std::vector<std::unique_ptr<monitors::IbsMonitor>> ibs;
    std::array<std::unordered_map<std::uint64_t, std::uint32_t>, 3>
        trace_counts;
    for (std::size_t r = 0; r < multipliers.size(); ++r) {
      ibs.push_back(std::make_unique<monitors::IbsMonitor>(
          bench::scaled_ibs(multipliers[r]), system.config().cores,
          seed + r));
      auto& counts = trace_counts[r];
      ibs.back()->set_drain(
          [&counts](std::span<const monitors::TraceSample> batch) {
            for (const auto& s : batch) {
              if (s.is_store || !mem::is_memory(s.source)) continue;
              counts[mem::pfn_of(s.paddr)] += 1;
            }
          });
      system.add_observer(ibs.back().get());
    }
    monitors::AbitScanner scanner{monitors::AbitConfig{}};
    std::unordered_map<std::uint64_t, std::uint32_t> abit_counts;

    for (std::uint32_t e = 0; e < epochs; ++e) {
      system.step(ops_per_epoch);
      for (auto& monitor : ibs) monitor->drain();
      for (sim::Process* proc : system.processes()) {
        scanner.scan(proc->pid(), proc->page_table(),
                     [&](const monitors::AbitSample& sample) {
                       abit_counts[sample.pfn] += 1;
                     });
      }
    }

    util::TextTable table(
        {"curve", "pages", "p25", "p50", "p90", "p99", "max"});
    const util::EmpiricalCdf abit_cdf = to_cdf(abit_counts);
    table.add_row(quantile_row("abit", abit_cdf));
    std::array<util::EmpiricalCdf, 3> trace_cdfs{
        to_cdf(trace_counts[0]), to_cdf(trace_counts[1]),
        to_cdf(trace_counts[2])};
    for (std::size_t r = 0; r < 3; ++r) {
      table.add_row(quantile_row(rate_names[r], trace_cdfs[r]));
    }
    std::cout << "== " << spec.name << " ==\n";
    table.print(std::cout);
    std::cout << '\n';

    if (write_csv) {
      std::ofstream csv("fig5_" + spec.name + ".csv");
      csv << "curve,value,cum_fraction\n";
      auto dump = [&csv](const std::string& label,
                         const util::EmpiricalCdf& cdf) {
        if (cdf.empty()) return;
        for (const auto& [v, f] : cdf.curve(64)) {
          csv << label << ',' << v << ',' << f << '\n';
        }
      };
      dump("abit", abit_cdf);
      for (std::size_t r = 0; r < 3; ++r) dump(rate_names[r], trace_cdfs[r]);
    }
  }
  if (write_csv) std::cout << "Full curves written to fig5_<workload>.csv\n";
  return 0;
}
