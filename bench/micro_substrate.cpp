/// Micro-benchmarks of the simulator substrate and profiler hot paths
/// (google-benchmark). These bound how much simulated work the paper
/// harnesses can drive per wall-clock second and catch performance
/// regressions in the per-access fast path.

#include <benchmark/benchmark.h>

#include "core/ranking.hpp"
#include "mem/cache.hpp"
#include "mem/page_table.hpp"
#include "mem/ptw.hpp"
#include "mem/tlb.hpp"
#include "monitors/abit.hpp"
#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace tmprof;

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfDraw(benchmark::State& state) {
  util::ZipfDistribution zipf(static_cast<std::uint64_t>(state.range(0)),
                              0.99);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfDraw)->Arg(1 << 10)->Arg(1 << 20);

void BM_PageTableResolve(benchmark::State& state) {
  mem::PageTable pt;
  const std::uint64_t pages = 4096;
  for (std::uint64_t i = 0; i < pages; ++i) {
    pt.map(i * mem::kPageSize, i + 1, mem::PageSize::k4K);
  }
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.resolve(rng.below(pages) * mem::kPageSize));
  }
}
BENCHMARK(BM_PageTableResolve);

void BM_PtwWalk(benchmark::State& state) {
  mem::PageTable pt;
  const std::uint64_t pages = 4096;
  for (std::uint64_t i = 0; i < pages; ++i) {
    pt.map(i * mem::kPageSize, i + 1, mem::PageSize::k4K);
  }
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem::PageTableWalker::walk(pt, rng.below(pages) * mem::kPageSize,
                                   false));
  }
}
BENCHMARK(BM_PtwWalk);

void BM_TlbLookup(benchmark::State& state) {
  mem::Tlb tlb = mem::Tlb::make_default();
  mem::PageTable pt;
  const std::uint64_t pages = 64;
  for (std::uint64_t i = 0; i < pages; ++i) {
    const mem::VirtAddr va = i * mem::kPageSize;
    pt.map(va, i + 1, mem::PageSize::k4K);
    tlb.fill(1, va, mem::PageSize::k4K, pt.resolve(va).pte, false);
  }
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(1, rng.below(pages) * mem::kPageSize));
  }
}
BENCHMARK(BM_TlbLookup);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  mem::CacheLevel llc(1ULL << 20, 16);
  mem::CacheHierarchy hier = mem::CacheHierarchy::make_default(&llc, true);
  util::Rng rng(6);
  const std::uint64_t span = 64ULL << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.access(rng.below(span) & ~63ULL, false));
  }
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_AbitScanPer4kPtes(benchmark::State& state) {
  mem::PageTable pt;
  const std::uint64_t pages = 4096;
  for (std::uint64_t i = 0; i < pages; ++i) {
    pt.map(i * mem::kPageSize, i + 1, mem::PageSize::k4K);
    mem::PageTableWalker::walk(pt, i * mem::kPageSize, false);
  }
  monitors::AbitScanner scanner{monitors::AbitConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(1, pt, nullptr));
    // Re-set a fraction of A bits so successive scans do real work.
    state.PauseTiming();
    for (std::uint64_t i = 0; i < pages; i += 4) {
      mem::PageTableWalker::walk(pt, i * mem::kPageSize, false);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_AbitScanPer4kPtes);

void BM_IbsRetirePath(benchmark::State& state) {
  monitors::IbsMonitor ibs(monitors::IbsConfig::with_period(4096), 1);
  monitors::MemOpEvent ev;
  ev.source = mem::DataSource::MemTier1;
  for (auto _ : state) {
    ibs.on_retire(0, 4, 0);
    ibs.on_mem_op(ev);
  }
  ibs.drain();
}
BENCHMARK(BM_IbsRetirePath);

void BM_RankingBuild(benchmark::State& state) {
  core::EpochObservation obs;
  util::Rng rng(7);
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < pages; ++i) {
    const core::PageKey key{1000, i * mem::kPageSize};
    obs.abit[key] = static_cast<std::uint32_t>(rng.below(8));
    if (rng.chance(0.3)) {
      obs.trace[key] = static_cast<std::uint32_t>(rng.below(100));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_ranking(obs, core::FusionMode::Sum));
  }
}
BENCHMARK(BM_RankingBuild)->Arg(1 << 12)->Arg(1 << 16);

void BM_SystemStepUniform(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.cores = 6;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = 1 << 15;
  cfg.tier2_frames = 1 << 15;
  sim::System system(cfg);
  system.add_process(
      std::make_unique<workloads::UniformWorkload>(64 << 20, 0.1, 1));
  for (auto _ : state) {
    system.step(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SystemStepUniform);

void BM_SystemStepTable3(benchmark::State& state) {
  const auto specs = workloads::table3_specs(0.25);
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  sim::SimConfig cfg;
  cfg.cores = 6;
  cfg.llc_bytes = 1 << 20;
  cfg.tier1_frames = (spec.total_bytes >> 12) * 5 / 4 + 2048;
  cfg.tier2_frames = 2048;
  sim::System system(cfg);
  for (std::uint32_t i = 0; i < spec.processes; ++i) {
    system.add_process(workloads::make_workload(spec, i, 42));
  }
  for (auto _ : state) {
    system.step(1000);
  }
  state.SetLabel(spec.name);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SystemStepTable3)->DenseRange(0, 7);

}  // namespace
