/// Profiler comparison — quantifies Section II-B's survey: every method of
/// gaining access visibility, run against the same workloads, reporting
/// what each one sees (pages/epoch), what it costs (overhead as % of
/// runtime, counting injected fault latency), and what a History policy
/// fed by its observations achieves (tier-1 hitrate at a 1/16 capacity
/// ratio).
///
/// Profilers compared:
///   tmp        — the paper's contribution (A-bit + IBS fused)
///   abit-only  — PTE A-bit scanning alone
///   ibs-only   — IBS trace sampling alone
///   lwp        — AMD Lightweight Profiling (user-space ring buffers)
///   autonuma   — Linux-style hint faults (protect + fault per touch)
///   thermostat — BadgerTrap-sampled classification (Agarwal & Wenisch)
///
/// Usage: profiler_compare [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--time-scale=F]

#include <iostream>

#include "common.hpp"
#include "core/autonuma.hpp"
#include "core/daemon.hpp"
#include "core/thermostat.hpp"
#include "monitors/lwp.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct ProfilerResult {
  tiering::EpochSeries series;
  util::SimNs overhead_ns = 0;   ///< modeled costs + injected latency
  util::SimNs runtime_ns = 0;
  double pages_per_epoch = 0.0;
};

struct RunContext {
  sim::System system;
  tiering::TruthCollector truth;

  RunContext(const workloads::WorkloadSpec& spec, const sim::SimConfig& cfg,
             std::uint64_t seed)
      : system(cfg), truth(system) {
    tiering::add_spec_processes(system, spec, seed);
    system.add_observer(&truth);
  }
};

void close_epoch(RunContext& ctx, ProfilerResult& result,
                 core::EpochObservation obs, std::uint32_t epoch) {
  tiering::EpochData data;
  data.epoch = epoch;
  data.truth_total = ctx.truth.end_epoch(data.truth, data.new_pages);
  result.pages_per_epoch +=
      static_cast<double>(obs.abit.size() + obs.trace.size());
  data.observed = std::move(obs);
  result.series.epochs.push_back(std::move(data));
}

void finish(RunContext& ctx, ProfilerResult& result, std::uint32_t epochs) {
  result.series.page_sizes = ctx.truth.page_sizes();
  for (const auto& [key, size] : result.series.page_sizes) {
    result.series.footprint_frames += mem::pages_in(size);
  }
  result.runtime_ns = ctx.system.now();
  result.pages_per_epoch /= epochs;
}

double scaled(double time_scale, util::SimNs ns) {
  return static_cast<double>(ns) / time_scale;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 6));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double time_scale = args.get_double("time-scale", 20.0);

  std::cout << "Profiler comparison (Section II-B survey, measured)\n"
            << "(" << epochs << " epochs x " << ops_per_epoch
            << " ops; hitrate = History policy at tier1 = footprint/16)\n\n";

  for (const auto& spec : bench::selected_specs(args)) {
    const sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
    util::TextTable table(
        {"profiler", "pages/epoch", "overhead", "hitrate@1/16"});

    auto evaluate = [&](const ProfilerResult& r,
                        core::FusionMode fusion) -> std::vector<std::string> {
      tiering::HitrateOptions opt;
      opt.capacity_frames =
          std::max<std::uint64_t>(1, r.series.footprint_frames / 16);
      opt.fusion = fusion;
      tiering::HistoryPolicy history;
      const double hit =
          tiering::evaluate_policy(history, r.series, opt).overall;
      const double pct = 100.0 * scaled(time_scale, r.overhead_ns) /
                         static_cast<double>(r.runtime_ns);
      return {util::TextTable::fixed(r.pages_per_epoch, 0),
              util::TextTable::fixed(pct, 2) + "%",
              util::TextTable::percent(hit)};
    };

    // --- TMP, A-bit-only and IBS-only share one daemon run --------------
    {
      RunContext ctx(spec, cfg, seed);
      core::DaemonConfig dcfg;
      dcfg.driver.ibs = bench::scaled_ibs(4);
      dcfg.gating_enabled = false;
      dcfg.pid_filter_enabled = false;
      core::TmpDaemon daemon(ctx.system, dcfg);
      ProfilerResult r;
      for (std::uint32_t e = 0; e < epochs; ++e) {
        ctx.system.step(ops_per_epoch);
        core::ProfileSnapshot snap = daemon.tick();
        close_epoch(ctx, r, std::move(snap.observation), e);
      }
      finish(ctx, r, epochs);
      r.overhead_ns = daemon.driver().overhead_ns();
      auto add = [&](const char* name, core::FusionMode fusion,
                     bool share_cost) {
        auto row = evaluate(r, fusion);
        if (share_cost) row[1] = "(shared)";  // same run as the tmp row
        row.insert(row.begin(), name);
        table.add_row(row);
      };
      add("tmp (abit+ibs)", core::FusionMode::Sum, false);
      add("abit-only", core::FusionMode::AbitOnly, true);
      add("ibs-only", core::FusionMode::TraceOnly, true);
    }

    // --- LWP -------------------------------------------------------------
    {
      RunContext ctx(spec, cfg, seed);
      monitors::LwpConfig lwp_cfg;
      lwp_cfg.sample_period = bench::kScaledDefaultPeriod / 4;
      monitors::LwpMonitor lwp(lwp_cfg);
      core::EpochObservation obs;
      lwp.set_drain([&](mem::Pid, std::span<const monitors::TraceSample> s) {
        for (const auto& sample : s) {
          if (sample.is_store || !mem::is_memory(sample.source)) continue;
          const mem::FrameInfo& frame =
              ctx.system.phys().frame(mem::pfn_of(sample.paddr));
          if (!frame.allocated) continue;
          obs.trace[core::PageKey{frame.pid, frame.page_va}] += 1;
        }
      });
      for (sim::Process* proc : ctx.system.processes()) {
        lwp.enable_process(proc->pid());
      }
      ctx.system.add_observer(&lwp);
      ProfilerResult r;
      for (std::uint32_t e = 0; e < epochs; ++e) {
        ctx.system.step(ops_per_epoch);
        lwp.drain_all();
        obs.epoch = e;
        close_epoch(ctx, r, std::move(obs), e);
        obs = core::EpochObservation{};
      }
      ctx.system.remove_observer(&lwp);
      finish(ctx, r, epochs);
      r.overhead_ns = lwp.overhead_ns();
      auto row = evaluate(r, core::FusionMode::TraceOnly);
      row.insert(row.begin(), "lwp");
      table.add_row(row);
    }

    // --- AutoNUMA ----------------------------------------------------------
    {
      RunContext ctx(spec, cfg, seed);
      core::AutoNumaConfig an_cfg;
      an_cfg.window_pages = (spec.total_bytes >> mem::kPageShift) / 4;
      core::AutoNumaProfiler autonuma(ctx.system, an_cfg);
      ProfilerResult r;
      for (std::uint32_t e = 0; e < epochs; ++e) {
        autonuma.protect_pass();
        ctx.system.step(ops_per_epoch);
        close_epoch(ctx, r, autonuma.end_epoch(), e);
      }
      finish(ctx, r, epochs);
      // Hint-fault latency was injected inline; count it as overhead too.
      r.overhead_ns = autonuma.overhead_ns() +
                      autonuma.faults_taken() * an_cfg.fault_cost_ns;
      auto row = evaluate(r, core::FusionMode::AbitOnly);
      row.insert(row.begin(), "autonuma");
      table.add_row(row);
    }

    // --- Thermostat ----------------------------------------------------
    {
      RunContext ctx(spec, cfg, seed);
      core::ThermostatConfig th_cfg;
      th_cfg.sample_fraction = 0.1;
      core::ThermostatClassifier thermostat(ctx.system, th_cfg, seed);
      ProfilerResult r;
      for (std::uint32_t e = 0; e < epochs; ++e) {
        thermostat.begin_interval();
        for (int poll = 0; poll < 4; ++poll) {
          ctx.system.step(ops_per_epoch / 4);
          thermostat.refresh();
        }
        close_epoch(ctx, r, thermostat.end_interval(), e);
      }
      finish(ctx, r, epochs);
      r.overhead_ns =
          thermostat.faults_taken() * th_cfg.fault_cost_ns;
      auto row = evaluate(r, core::FusionMode::AbitOnly);
      row.insert(row.begin(), "thermostat(10%)");
      table.add_row(row);
    }

    std::cout << "== " << spec.name << " ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: TMP matches or beats every single-source "
               "profiler's hitrate at comparable or lower overhead; "
               "AutoNUMA pays a fault per observation; Thermostat sees "
               "only its sampled fraction.\n";
  return 0;
}
