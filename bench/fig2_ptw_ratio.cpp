/// Fig. 2 — Ratio of PTW events that set the A bit to data-cache-miss
/// events tracked by trace-based methods.
///
/// The paper uses this ratio to justify TMP's simple-sum rank fusion: the
/// sample populations the two methods deliver are the same order of
/// magnitude, so neither source drowns the other in the fused rank.
///
/// The A-bit side only produces events while the profiler periodically
/// clears A bits, so the measurement runs under the TMP daemon (gating off
/// to keep both mechanisms live). Reported per workload:
///  * raw hardware events: PTW A-bit sets vs LLC misses,
///  * profiler samples: A-bit scan observations vs kept trace samples,
///  * the sample observations weighted by page span (a 2 MiB THP A-bit
///    entry summarizes 512 base pages, which is how the fused rank sees it).
///
/// Usage: fig2_ptw_ratio [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "pmu/events.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 6));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Fig. 2: PTW A-bit-set events vs data-cache-miss events\n"
            << "(" << epochs << " epochs x " << ops_per_epoch
            << " ops, A-bit scan each epoch, IBS 4x)\n\n";
  util::TextTable table({"workload", "ptw_abit_set", "llc_miss",
                         "itlb_walk", "abit_samples", "trace_samples", "weighted_abit",
                         "ratio(w)", "comparable"});

  for (const auto& spec : bench::selected_specs(args)) {
    sim::System system(bench::testbed_config(spec.total_bytes));
    tiering::add_spec_processes(system, spec, seed);
    core::DaemonConfig cfg;
    cfg.driver.ibs = bench::scaled_ibs(4);
    cfg.gating_enabled = false;
    cfg.pid_filter_enabled = false;
    core::TmpDaemon daemon(system, cfg);

    std::uint64_t abit_samples = 0;
    std::uint64_t abit_weighted = 0;
    std::uint64_t trace_samples = 0;
    for (std::uint32_t e = 0; e < epochs; ++e) {
      system.step(ops_per_epoch);
      const core::ProfileSnapshot snap = daemon.tick();
      for (const auto& [key, count] : snap.observation.abit) {
        abit_samples += count;
        // Weight by the mapping's span in base pages, as the fused rank of
        // a huge page effectively summarizes that many 4 KiB pages.
        sim::Process& proc = system.process(key.pid);
        const mem::PteRef ref = proc.page_table().resolve(key.page_va);
        abit_weighted += count * (ref ? mem::pages_in(ref.size) : 1);
      }
      for (const auto& [key, count] : snap.observation.trace) {
        trace_samples += count;
      }
    }
    const std::uint64_t abit_sets =
        system.pmu().truth_total(pmu::Event::PtwAbitSet);
    const std::uint64_t llc_miss =
        system.pmu().truth_total(pmu::Event::LlcMiss);
    const double ratio_raw =
        trace_samples == 0 ? 0.0
                           : static_cast<double>(abit_samples) /
                                 static_cast<double>(trace_samples);
    const double ratio_w =
        trace_samples == 0 ? 0.0
                           : static_cast<double>(abit_weighted) /
                                 static_cast<double>(trace_samples);
    // "Same order of magnitude" in the fusion sense: neither source is so
    // large that summing drowns the other. Judge by whichever granularity
    // (raw entries or base-page-weighted) is closer to parity.
    auto within = [](double r) { return r >= 1.0 / 30.0 && r <= 30.0; };
    const bool comparable = within(ratio_raw) || within(ratio_w);
    table.add_row({spec.name, util::TextTable::num(abit_sets),
                   util::TextTable::num(llc_miss),
                   util::TextTable::num(
                       system.pmu().truth_total(pmu::Event::ItlbWalk)),
                   util::TextTable::num(abit_samples),
                   util::TextTable::num(trace_samples),
                   util::TextTable::num(abit_weighted),
                   util::TextTable::fixed(ratio_w, 3),
                   comparable ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nPaper claim: the sample populations are the same order of "
               "magnitude, so TMP ranks by the plain sum of A-bit and trace "
               "samples without underestimating either.\n";
  return 0;
}
