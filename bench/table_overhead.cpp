/// Sections VI-A/B — Profiling overhead as a fraction of application time.
///
/// The paper reports: A-bit scans under 1% (walking every page table once
/// per second, no shootdowns), IBS at the default rate under 2%, IBS at 4x
/// under 5%. This bench runs each workload under each mechanism alone and
/// reports the modeled collection cost relative to runtime, plus the
/// ablation the paper's optimizations imply: activity gating on/off and
/// shootdown on/off for the A-bit path.
///
/// A final section turns the lens on the telemetry subsystem itself: the
/// same daemon loop is wall-clock timed with metrics + spans attached and
/// detached (docs/OBSERVABILITY.md), reporting the relative slowdown per
/// workload. The subsystem's budget is < 5%.
///
/// Usage: table_overhead [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--self-reps=N] [--metrics-out=F]
///        [--trace-out=F] [--telemetry-every=N]

#include <algorithm>
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "tiering/epoch.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct OverheadCase {
  double abit_pct = 0.0;
  double trace_pct = 0.0;
};

OverheadCase run_case(const workloads::WorkloadSpec& spec,
                      std::uint32_t epochs, std::uint64_t ops_per_epoch,
                      std::uint64_t seed, bool use_ibs,
                      std::uint64_t ibs_multiplier, bool abit_shootdown,
                      bool gating, double time_scale) {
  sim::System system(bench::testbed_config(spec.total_bytes));
  tiering::add_spec_processes(system, spec, seed);
  core::DaemonConfig cfg;
  cfg.driver.ibs = bench::scaled_ibs(ibs_multiplier);
  // The simulated time axis is ~time_scale x denser in events than the
  // testbed's (sampling periods shrank with the footprints but handler
  // costs are wall-clock); scale the per-event costs to match, exactly as
  // the speedup bench scales the migration constants.
  cfg.driver.ibs.cost_per_record_ns = static_cast<util::SimNs>(
      static_cast<double>(cfg.driver.ibs.cost_per_record_ns) / time_scale);
  cfg.driver.ibs.cost_per_interrupt_ns = static_cast<util::SimNs>(
      static_cast<double>(cfg.driver.ibs.cost_per_interrupt_ns) / time_scale);
  cfg.driver.abit.cost_per_pte_ns = static_cast<util::SimNs>(
      std::max(1.0, static_cast<double>(cfg.driver.abit.cost_per_pte_ns) /
                        time_scale));
  cfg.driver.abit.cost_per_shootdown_ns = static_cast<util::SimNs>(
      static_cast<double>(cfg.driver.abit.cost_per_shootdown_ns) /
      time_scale);
  cfg.driver.abit.shootdown_on_clear = abit_shootdown;
  cfg.gating_enabled = gating;
  core::TmpDaemon daemon(system, cfg);
  if (!use_ibs) daemon.driver().set_trace_enabled(false);
  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    daemon.tick();
  }
  const double runtime = static_cast<double>(system.now());
  OverheadCase result;
  result.abit_pct =
      100.0 * static_cast<double>(daemon.driver().abit_overhead_ns()) /
      runtime;
  result.trace_pct =
      100.0 * static_cast<double>(daemon.driver().trace_overhead_ns()) /
      runtime;
  return result;
}

/// Wall-clock one daemon-driven run (ibs-default + A-bit), optionally with
/// a telemetry sink attached. The simulated result is identical either way
/// (telemetry never touches sim time); only the host-side cost differs.
double timed_run(const workloads::WorkloadSpec& spec, std::uint32_t epochs,
                 std::uint64_t ops_per_epoch, std::uint64_t seed,
                 telemetry::Telemetry* telemetry) {
  sim::System system(bench::testbed_config(spec.total_bytes));
  tiering::add_spec_processes(system, spec, seed);
  core::DaemonConfig cfg;
  cfg.driver.ibs = bench::scaled_ibs(1);
  core::TmpDaemon daemon(system, cfg);
  if (telemetry != nullptr) {
    telemetry->begin_run(spec.name + "/self-overhead");
    system.set_telemetry(telemetry);
    daemon.set_telemetry(telemetry);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    daemon.tick();
    if (telemetry != nullptr) telemetry->maybe_export(e + 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 6));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 800'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double time_scale = args.get_double("time-scale", 20.0);

  std::cout << "Sections VI-A/B: profiling overhead (% of application "
               "time)\n"
            << "(paper targets: abit < 1%, ibs-default < 2%, ibs-4x < 5%)\n\n";
  util::TextTable table({"workload", "abit", "abit+shootdown", "ibs-default",
                         "ibs-4x", "ibs-8x", "abit(no-gating)"});

  for (const auto& spec : bench::selected_specs(args)) {
    const OverheadCase abit =
        run_case(spec, epochs, ops_per_epoch, seed, false, 1, false, true, time_scale);
    const OverheadCase abit_sd =
        run_case(spec, epochs, ops_per_epoch, seed, false, 1, true, true, time_scale);
    const OverheadCase ibs1 =
        run_case(spec, epochs, ops_per_epoch, seed, true, 1, false, true, time_scale);
    const OverheadCase ibs4 =
        run_case(spec, epochs, ops_per_epoch, seed, true, 4, false, true, time_scale);
    const OverheadCase ibs8 =
        run_case(spec, epochs, ops_per_epoch, seed, true, 8, false, true, time_scale);
    const OverheadCase nogate =
        run_case(spec, epochs, ops_per_epoch, seed, false, 1, false, false, time_scale);
    table.add_row({spec.name, util::TextTable::fixed(abit.abit_pct, 2) + "%",
                   util::TextTable::fixed(abit_sd.abit_pct, 2) + "%",
                   util::TextTable::fixed(ibs1.trace_pct, 2) + "%",
                   util::TextTable::fixed(ibs4.trace_pct, 2) + "%",
                   util::TextTable::fixed(ibs8.trace_pct, 2) + "%",
                   util::TextTable::fixed(nogate.abit_pct, 2) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nShapes to check: shootdowns multiply A-bit cost; IBS "
               "overhead scales with rate; gating only helps workloads "
               "with idle phases.\n";

  // Self-overhead: the telemetry subsystem measured by the same yardstick.
  // Best-of-N wall-clock timings smooth scheduler noise; with --metrics-out
  // or --trace-out the instrumented runs also feed the exported files,
  // otherwise a file-less sink isolates pure collection cost.
  const std::uint32_t self_reps =
      static_cast<std::uint32_t>(args.get_u64("self-reps", 3));
  std::unique_ptr<telemetry::Telemetry> exported =
      bench::telemetry_from_args(args);
  telemetry::Telemetry local{telemetry::TelemetryConfig{}};
  telemetry::Telemetry* const sink = exported ? exported.get() : &local;

  std::cout << "\nTelemetry self-overhead (wall clock, best of " << self_reps
            << " reps; budget < 5%)\n";
  util::TextTable self_table({"workload", "off_ms", "on_ms", "overhead"});
  bool within_budget = true;
  for (const auto& spec : bench::selected_specs(args)) {
    double off_s = 1e300;
    double on_s = 1e300;
    for (std::uint32_t r = 0; r < self_reps; ++r) {
      off_s = std::min(off_s,
                       timed_run(spec, epochs, ops_per_epoch, seed, nullptr));
      on_s =
          std::min(on_s, timed_run(spec, epochs, ops_per_epoch, seed, sink));
    }
    const double pct = off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
    if (pct >= 5.0) within_budget = false;
    self_table.add_row({spec.name, util::TextTable::fixed(off_s * 1e3, 2),
                        util::TextTable::fixed(on_s * 1e3, 2),
                        util::TextTable::fixed(pct, 2) + "%"});
  }
  self_table.print(std::cout);
  std::cout << "\nTelemetry budget (< 5% wall clock): "
            << (within_budget ? "within" : "EXCEEDED") << '\n';
  if (exported) exported->export_final();
  return 0;
}
