/// Fig. 3 — Heatmap of workload memory accesses captured by IBS at the 4x
/// sampling rate: time on X, physical address on Y, sample count as
/// temperature.
///
/// Prints an ASCII rendering per workload and writes the full grid to
/// fig3_<workload>.csv. Expected shapes: GUPS/XSBench fill their address
/// range uniformly; Data-Caching/Web-Serving show persistent hot bands;
/// LULESH/Data-Analytics show diagonal sweep stripes.
///
/// Usage: fig3_heatmap_ibs [--workload=<name>] [--scale=F] [--ops=N]
///        [--csv=0|1]

#include <fstream>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint64_t ops = args.get_u64("ops", 4'000'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const bool write_csv = args.get_bool("csv", true);
  const std::size_t time_bins = args.get_u64("time-bins", 64);
  const std::size_t addr_bins = args.get_u64("addr-bins", 24);

  std::cout << "Fig. 3: access heatmaps from IBS samples (4x rate)\n\n";
  for (const auto& spec : bench::selected_specs(args)) {
    sim::System system(bench::testbed_config(spec.total_bytes));
    tiering::add_spec_processes(system, spec, seed);

    monitors::IbsMonitor ibs(bench::scaled_ibs(4), system.config().cores,
                             seed);
    std::vector<std::pair<util::SimNs, mem::PhysAddr>> samples;
    ibs.set_drain([&](std::span<const monitors::TraceSample> batch) {
      for (const auto& s : batch) {
        if (s.is_store || !mem::is_memory(s.source)) continue;
        samples.emplace_back(s.time, s.paddr);
      }
    });
    system.add_observer(&ibs);
    system.step(ops);
    ibs.drain();

    const util::SimNs duration = system.now() + 1;
    const std::uint64_t addr_hi =
        system.phys().total_frames() << mem::kPageShift;
    util::Heatmap heatmap(duration, time_bins, addr_hi, addr_bins);
    for (const auto& [time, paddr] : samples) heatmap.add(time, paddr);

    std::cout << "== " << spec.name << " (" << samples.size()
              << " beyond-LLC demand-load samples, "
              << duration / util::kMillisecond << " sim-ms) ==\n"
              << heatmap.render_ascii() << '\n';
    if (write_csv) {
      std::ofstream csv("fig3_" + spec.name + ".csv");
      heatmap.write_csv(csv);
    }
  }
  if (write_csv) std::cout << "Full grids written to fig3_<workload>.csv\n";
  return 0;
}
