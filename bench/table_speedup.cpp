/// Section VI-C — End-to-end speedup of TMP-driven placement over the
/// NUMA-like first-come-first-allocate baseline, on the paper's scaled
/// tiered configuration (4 GiB + 60 GiB at testbed scale → 64 MiB + 960 MiB
/// here) with 50 µs/page migration cost.
///
/// Two slow-memory models:
///   --model=native      tier 2 pays NVM-class load/store latency (default)
///   --model=badgertrap  the paper's emulation framework: both tiers are
///                       DRAM-fast but tier-2 pages are poisoned and each
///                       faulting access pays 10 µs (+13 µs if hot)
///
/// Expected shape: speedups in the few-to-tens of percent, average around
/// the paper's 1.04x, best case above 1.1x.
///
/// Time-constant scaling: the simulator's epochs are ~20x shorter than the
/// paper's 1-second horizons, so the paper's per-event constants (50 µs
/// migration; 10 µs / +13 µs emulation latencies) are divided by the same
/// factor by default to keep the cost:epoch ratio — override with
/// --time-scale=1 to use the paper's raw constants.
///
/// Usage: table_speedup [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--model=native|badgertrap] [--with-oracle]
///        [--time-scale=F] [--fault-rate=F] [--fault-seed=N]
///        [--fault-sites=a,b] [--csv=0|1] [--checkpoint-every=N]
///        [--checkpoint-dir=D] [--resume-from=F] [--resume-latest=0|1]
///        [--keep-last=K] [--metrics-out=F] [--trace-out=F]
///        [--telemetry-every=N] [--stream=0|1] [--stream-ring=N]
///        [--stream-topk=N] [--stream-decay=N]

#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "tiering/runner.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 10));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 600'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string model = args.get("model", "native");
  const bool with_oracle = args.get_bool("with-oracle", false);
  const double time_scale = args.get_double("time-scale", 20.0);
  const util::FaultConfig fault = bench::fault_from_args(args);
  const util::ckpt::Options checkpoint = bench::checkpoint_from_args(args);
  const bool write_csv = args.get_bool("csv", true);
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);

  const tiering::SlowMemoryModel slow_model =
      model == "badgertrap" ? tiering::SlowMemoryModel::BadgerTrapEmulation
                            : tiering::SlowMemoryModel::Native;
  auto scaled_ns = [time_scale](double paper_us) {
    return static_cast<util::SimNs>(paper_us * 1000.0 / time_scale);
  };

  std::cout << "Section VI-C: end-to-end speedup vs first-touch baseline\n"
            << "(model=" << model << ", tier1 = 64 MiB scaled, migration "
            << "cost " << scaled_ns(50.0) << " ns/page = 50 us at paper "
            << "timescale / " << time_scale << ")\n\n";
  util::TextTable table({"workload", "baseline_ms", "tmp_ms", "speedup",
                         "hitrate_base", "hitrate_tmp", "migrations",
                         "retried", "deferred",
                         with_oracle ? "oracle_speedup" : "-"});
  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("table_speedup.csv");
    csv->write_row({"workload", "baseline_ms", "tmp_ms", "speedup",
                    "hitrate_base", "hitrate_tmp", "migrations", "retried",
                    "deferred", "aborted", "no_room"});
  }

  std::vector<double> speedups;
  for (const auto& spec : bench::selected_specs(args)) {
    sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
    // The paper's emulation testbed: 4 GiB fast + 60 GiB slow, /64 scale.
    cfg.tier1_frames = (64ULL << 20) >> mem::kPageShift;
    cfg.tier2_frames =
        (spec.total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

    tiering::RunnerOptions opt;
    opt.n_epochs = epochs;
    opt.ops_per_epoch = ops_per_epoch;
    opt.seed = seed;
    opt.slow_model = slow_model;
    opt.daemon.driver.ibs = bench::scaled_ibs(4);
    opt.mover.per_page_cost_ns = scaled_ns(50.0);
    opt.mover.min_rank = args.get_u64("min-rank", 3);
    opt.mover.admission = bench::admission_from_args(args);
    opt.badgertrap.fault_latency_ns = scaled_ns(10.0);
    opt.badgertrap.hot_extra_latency_ns = scaled_ns(13.0);
    opt.badgertrap.handler_cost_ns = scaled_ns(1.0);
    opt.n_threads = bench::selected_threads(args);
    opt.daemon.driver.stream =
        bench::stream_from_args(args, opt.n_threads, opt.daemon.driver.hotness);
    opt.fault = fault;
    opt.telemetry = telemetry.get();

    // One basename per (workload, policy) so every run in a shared
    // checkpoint directory keeps its own checkpoint chain.
    opt.checkpoint = checkpoint;
    opt.policy = "first-touch";
    opt.checkpoint.basename = spec.name + "-first-touch";
    opt.telemetry_label = spec.name + "/first-touch";
    const tiering::RunnerResult base =
        tiering::EndToEndRunner::run(spec, cfg, opt);
    opt.policy = "history";
    opt.checkpoint.basename = spec.name + "-history";
    opt.telemetry_label = spec.name + "/history";
    const tiering::RunnerResult tmp =
        tiering::EndToEndRunner::run(spec, cfg, opt);
    const double speedup = static_cast<double>(base.runtime_ns) /
                           static_cast<double>(tmp.runtime_ns);
    speedups.push_back(speedup);

    std::string oracle_cell = "-";
    if (with_oracle) {
      opt.policy = "oracle";
      opt.checkpoint.basename = spec.name + "-oracle";
      opt.telemetry_label = spec.name + "/oracle";
      const tiering::RunnerResult oracle =
          tiering::EndToEndRunner::run(spec, cfg, opt);
      oracle_cell = util::TextTable::fixed(
          static_cast<double>(base.runtime_ns) /
              static_cast<double>(oracle.runtime_ns),
          3);
    }
    table.add_row({spec.name,
                   util::TextTable::num(base.runtime_ns / util::kMillisecond),
                   util::TextTable::num(tmp.runtime_ns / util::kMillisecond),
                   util::TextTable::fixed(speedup, 3),
                   util::TextTable::percent(base.tier1_hitrate),
                   util::TextTable::percent(tmp.tier1_hitrate),
                   util::TextTable::num(tmp.migrations),
                   util::TextTable::num(tmp.moves.retried),
                   util::TextTable::num(tmp.moves.deferred), oracle_cell});
    if (csv) {
      csv->write_row(
          {spec.name,
           std::to_string(base.runtime_ns / util::kMillisecond),
           std::to_string(tmp.runtime_ns / util::kMillisecond),
           util::TextTable::fixed(speedup, 4),
           util::TextTable::fixed(base.tier1_hitrate, 4),
           util::TextTable::fixed(tmp.tier1_hitrate, 4),
           std::to_string(tmp.migrations), std::to_string(tmp.moves.retried),
           std::to_string(tmp.moves.deferred),
           std::to_string(tmp.moves.aborted),
           std::to_string(tmp.moves.no_room)});
    }
  }
  table.print(std::cout);
  double best = 0.0;
  for (double s : speedups) best = std::max(best, s);
  std::cout << "\nGeomean speedup: "
            << util::TextTable::fixed(util::geomean(speedups), 3)
            << "x  best: " << util::TextTable::fixed(best, 3)
            << "x  (paper: average 1.04x, optimal 1.13x)\n";
  if (csv) std::cout << "Rows written to table_speedup.csv\n";
  if (telemetry) {
    telemetry->export_final();
    std::cout << "Telemetry exported"
              << (telemetry->config().metrics_out.empty()
                      ? ""
                      : " metrics=" + telemetry->config().metrics_out)
              << (telemetry->config().trace_out.empty()
                      ? ""
                      : " trace=" + telemetry->config().trace_out)
              << "\n";
  }
  return 0;
}
