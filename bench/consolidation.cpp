/// Consolidation — the paper's motivating datacenter scenario (Section I:
/// "VMs consolidated on individual cloud servers"): several *different*
/// workloads share one tiered machine, competing for the fast tier. This is
/// where the daemon's PID filter and the profiler's vendor-agnostic ranking
/// earn their keep: pages from every process rank in one list, and the
/// mover arbitrates the fast tier across tenants.
///
/// Reports per-tenant fast-tier hitrates under first-touch vs TMP-driven
/// placement, plus what the PID filter tracked.
///
/// Usage: consolidation [--epochs=N] [--ops-per-epoch=N] [--scale=F]

#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "tiering/mover.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace tmprof;

struct TenantResult {
  std::string name;
  double hitrate = 0.0;
  std::uint64_t rss_mb = 0;
};

enum class Mode { FirstTouch, TmpRaw, TmpDensity };

std::vector<TenantResult> run(Mode mode, double scale, std::uint32_t epochs,
                              std::uint64_t ops_per_epoch,
                              std::uint64_t seed) {
  // One instance each of a cache service, an HPC solver, and a random-
  // access kernel — deliberately mixing 4K and THP-backed tenants.
  const std::vector<std::string> tenants{"data_caching", "lulesh", "gups"};
  std::uint64_t total_bytes = 0;
  std::vector<workloads::WorkloadSpec> specs;
  for (const auto& name : tenants) {
    specs.push_back(workloads::find_spec(name, scale));
    total_bytes += specs.back().total_bytes;
  }
  sim::SimConfig cfg = bench::testbed_config(total_bytes);
  cfg.tier1_frames = (64ULL << 20) >> mem::kPageShift;
  cfg.tier2_frames = (total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

  sim::System system(cfg);
  std::vector<std::pair<std::string, mem::Pid>> pids;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    // One process per tenant keeps the attribution story crisp.
    const mem::Pid pid = system.add_process(
        workloads::make_workload(specs[t], 0, seed + t));
    pids.emplace_back(tenants[t], pid);
  }

  core::DaemonConfig dcfg;
  dcfg.driver.ibs = bench::scaled_ibs(4);
  core::TmpDaemon daemon(system, dcfg);
  tiering::MoverConfig mcfg;
  mcfg.per_page_cost_ns = 2500;
  mcfg.min_rank = 3;
  tiering::PageMover mover(system, mcfg);

  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    core::ProfileSnapshot snap = daemon.tick();
    if (mode == Mode::FirstTouch) continue;
    if (mode == Mode::TmpDensity) {
      // Raw counts over-value huge pages (one 2 MiB THP entry aggregates
      // 512 frames of samples but delivers little value per frame when its
      // traffic is uniform). Capacity allocation is a knapsack: order by
      // rank *density* — hotness per 4 KiB frame.
      for (core::PageRank& pr : snap.ranking) {
        sim::Process& proc = system.process(pr.key.pid);
        const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
        if (ref) pr.rank /= mem::pages_in(ref.size);
      }
      std::sort(snap.ranking.begin(), snap.ranking.end(),
                [](const core::PageRank& a, const core::PageRank& b) {
                  if (a.rank != b.rank) return a.rank > b.rank;
                  return a.key < b.key;
                });
    }
    mover.apply(snap.ranking, cfg.tier1_frames - 128);
  }

  std::vector<TenantResult> results;
  for (const auto& [name, pid] : pids) {
    sim::Process& proc = system.process(pid);
    results.push_back(TenantResult{
        name, proc.tier0_hitrate(),
        (proc.rss_pages() * mem::kPageSize) >> 20});
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 10));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 600'000);
  const double scale = args.get_double("scale", 0.5);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Consolidation: data_caching + lulesh + gups sharing one "
               "64 MiB fast tier\n\n";
  const auto baseline =
      run(Mode::FirstTouch, scale, epochs, ops_per_epoch, seed);
  const auto raw = run(Mode::TmpRaw, scale, epochs, ops_per_epoch, seed);
  const auto density =
      run(Mode::TmpDensity, scale, epochs, ops_per_epoch, seed);

  util::TextTable table({"tenant", "rss_mb", "first-touch", "tmp (raw rank)",
                         "tmp (density rank)"});
  for (std::size_t t = 0; t < baseline.size(); ++t) {
    table.add_row(
        {baseline[t].name, util::TextTable::num(baseline[t].rss_mb),
         util::TextTable::percent(baseline[t].hitrate),
         util::TextTable::percent(raw[t].hitrate),
         util::TextTable::percent(density[t].hitrate)});
  }
  table.print(std::cout);
  std::cout << "\nFinding: with mixed 4 KiB and THP tenants, the paper's "
               "raw-count rank over-values huge pages (a 2 MiB entry "
               "aggregates 512 frames of samples), steering fast memory to "
               "the uniform-random tenant. Ranking by hotness *density* "
               "(per 4 KiB frame) restores cross-tenant arbitration — a "
               "capacity-allocation subtlety the paper's 4 KiB-centric "
               "evaluation never hits.\n";
  return 0;
}
