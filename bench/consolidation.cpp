/// Consolidation — the paper's motivating datacenter scenario (Section I:
/// "VMs consolidated on individual cloud servers"): several *different*
/// workloads share one tiered machine, competing for the fast tier. This is
/// where the daemon's PID filter and the profiler's vendor-agnostic ranking
/// earn their keep: pages from every process rank in one list, and the
/// mover arbitrates the fast tier across tenants.
///
/// Reports per-tenant fast-tier hitrates under first-touch vs TMP-driven
/// placement, plus what the PID filter tracked.
///
/// Usage: consolidation [--epochs=N] [--ops-per-epoch=N] [--scale=F]
///
/// Fleet mode (--fleet; docs/CONSOLIDATION.md): tens of tenants with
/// arrival/departure churn and Zipfian popularity share one fast tier
/// through the sharded engine. Runs the latency service solo, then the full
/// fleet with tenant arbitration off and on, and reports per-tenant
/// hitrate/quota/shed telemetry (fleet.csv). `--isolation-check=1` turns
/// the QoS guarantee — the latency tenant stays within 5 pp of its solo
/// hitrate while batch neighbors storm — into the exit code (CI gates on
/// it). See bench::fleet_from_args for the fleet flags.

#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "core/daemon.hpp"
#include "tiering/mover.hpp"
#include "tiering/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace tmprof;

struct TenantResult {
  std::string name;
  double hitrate = 0.0;
  std::uint64_t rss_mb = 0;
};

enum class Mode { FirstTouch, TmpRaw, TmpDensity };

std::vector<TenantResult> run(Mode mode, double scale, std::uint32_t epochs,
                              std::uint64_t ops_per_epoch,
                              std::uint64_t seed) {
  // One instance each of a cache service, an HPC solver, and a random-
  // access kernel — deliberately mixing 4K and THP-backed tenants.
  const std::vector<std::string> tenants{"data_caching", "lulesh", "gups"};
  std::uint64_t total_bytes = 0;
  std::vector<workloads::WorkloadSpec> specs;
  for (const auto& name : tenants) {
    specs.push_back(workloads::find_spec(name, scale));
    total_bytes += specs.back().total_bytes;
  }
  sim::SimConfig cfg = bench::testbed_config(total_bytes);
  cfg.tier1_frames = (64ULL << 20) >> mem::kPageShift;
  cfg.tier2_frames = (total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

  sim::System system(cfg);
  std::vector<std::pair<std::string, mem::Pid>> pids;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    // One process per tenant keeps the attribution story crisp.
    const mem::Pid pid = system.add_process(
        workloads::make_workload(specs[t], 0, seed + t));
    pids.emplace_back(tenants[t], pid);
  }

  core::DaemonConfig dcfg;
  dcfg.driver.ibs = bench::scaled_ibs(4);
  core::TmpDaemon daemon(system, dcfg);
  tiering::MoverConfig mcfg;
  mcfg.per_page_cost_ns = 2500;
  mcfg.min_rank = 3;
  tiering::PageMover mover(system, mcfg);

  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    core::ProfileSnapshot snap = daemon.tick();
    if (mode == Mode::FirstTouch) continue;
    if (mode == Mode::TmpDensity) {
      // Raw counts over-value huge pages (one 2 MiB THP entry aggregates
      // 512 frames of samples but delivers little value per frame when its
      // traffic is uniform). Capacity allocation is a knapsack: order by
      // rank *density* — hotness per 4 KiB frame.
      for (core::PageRank& pr : snap.ranking) {
        sim::Process& proc = system.process(pr.key.pid);
        const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
        if (ref) pr.rank /= mem::pages_in(ref.size);
      }
      std::sort(snap.ranking.begin(), snap.ranking.end(),
                [](const core::PageRank& a, const core::PageRank& b) {
                  if (a.rank != b.rank) return a.rank > b.rank;
                  return a.key < b.key;
                });
    }
    mover.apply(snap.ranking, cfg.tier1_frames - 128);
  }

  std::vector<TenantResult> results;
  for (const auto& [name, pid] : pids) {
    sim::Process& proc = system.process(pid);
    results.push_back(TenantResult{
        name, proc.tier0_hitrate(),
        (proc.rss_pages() * mem::kPageSize) >> 20});
  }
  return results;
}

// ---------------------------------------------------------------------------
// Fleet mode (docs/CONSOLIDATION.md)

constexpr std::uint64_t kMiB = 1ULL << 20;
constexpr std::uint64_t kServiceBytes = 6 * kMiB;
constexpr std::uint64_t kBatchBytes = 2 * kMiB;

/// Tenant specs for the fleet: tenant 0 is the latency service, tenants
/// 1..N-1 are batch neighbors. Floors beyond the service's are zero — batch
/// tenants live entirely on burst, which is what the arbiter reclaims.
std::vector<tiering::TenantSpec> fleet_tenants(const bench::FleetArgs& fleet,
                                               std::uint64_t floor_frames) {
  std::vector<tiering::TenantSpec> tenants;
  tiering::TenantSpec service;
  service.name = "service";
  service.qos = fleet.service_qos;
  service.floor_frames = floor_frames;
  service.bandwidth_weight = 4;
  tenants.push_back(service);
  for (std::uint32_t i = 1; i < fleet.n_tenants; ++i) {
    tiering::TenantSpec batch;
    batch.name = "batch_" + std::to_string(i);
    batch.qos = tiering::QosClass::Batch;
    batch.floor_frames = 0;
    batch.bandwidth_weight = 1;
    tenants.push_back(batch);
  }
  return tenants;
}

/// Zipfian tenant popularity: the service is the host's popular tenant and
/// the i-th batch neighbor issues references in proportion to 1/i^0.8, so a
/// few noisy neighbors dominate the churn the way a few hot tenants
/// dominate a real consolidated host.
std::vector<double> fleet_weights(std::uint32_t n_tenants) {
  std::vector<double> weights{4.0};
  for (std::uint32_t i = 1; i < n_tenants; ++i) {
    weights.push_back(1.0 / std::pow(static_cast<double>(i), 0.8));
  }
  return weights;
}

/// The fleet workload factory: a Zipf service plus churning batch sessions
/// staggered so arrivals and departures interleave across the run.
tiering::WorkloadFactory fleet_factory(const bench::FleetArgs& fleet,
                                       std::uint64_t ops_per_epoch) {
  const std::uint32_t n = fleet.n_tenants;
  const double churn = fleet.churn_rate;
  return [n, churn, ops_per_epoch](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> v;
    v.push_back(std::make_unique<workloads::ZipfWorkload>(
        kServiceBytes, 4096, 0.9, 0.05, seed));
    // Each batch tenant cycles through active sessions and idle gaps; the
    // cycle is ~2 epochs of its own reference stream and --churn-rate is
    // the idle fraction. Generation rotation gives each arrival a fresh
    // hot set.
    const std::uint64_t cycle =
        std::max<std::uint64_t>(2 * ops_per_epoch / n, 64);
    const auto session =
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(cycle) * (1.0 - churn)));
    for (std::uint32_t i = 1; i < n; ++i) {
      v.push_back(std::make_unique<workloads::ChurnSessionWorkload>(
          kBatchBytes, 4096, 0.9, session, cycle - session, 4,
          (static_cast<std::uint64_t>(i) * cycle) / n, seed + i));
    }
    return v;
  };
}

int fleet_main(const util::ArgParser& args) {
  const bench::FleetArgs fleet = bench::fleet_from_args(args);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 10));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 120'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const bool write_csv = args.get_bool("csv", true);
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);

  // Fast tier sized to the service plus a burst pool far smaller than the
  // fleet's combined footprint, so batch churn creates genuine pressure.
  const std::uint64_t tier1_frames = (8 * kMiB) >> mem::kPageShift;
  const std::uint64_t floor_frames = fleet.quota_floor_frames != 0
                                         ? fleet.quota_floor_frames
                                         : (5 * kMiB) >> mem::kPageShift;
  const std::uint64_t total_bytes =
      kServiceBytes + static_cast<std::uint64_t>(fleet.n_tenants - 1) *
                          kBatchBytes;
  sim::SimConfig cfg = bench::testbed_config(total_bytes);
  cfg.tier1_frames = tier1_frames;
  cfg.tier2_frames = (total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

  tiering::RunnerOptions opt;
  opt.n_epochs = epochs;
  opt.ops_per_epoch = ops_per_epoch;
  opt.seed = seed;
  opt.policy = args.get("policy", "history");
  opt.daemon.driver.ibs = bench::scaled_ibs(4);
  opt.mover.per_page_cost_ns = 2500;
  // Noise floor 1: with one A-bit scan per epoch the coverage signal is a
  // single count, and a floor of 3 would leave only IBS-sampled pages
  // eligible — the service's steady footprint must register as demand for
  // quota arbitration to mean anything.
  opt.mover.min_rank = args.get_u64("min-rank", 1);
  opt.mover.admission = bench::admission_from_args(args);
  opt.n_threads = bench::selected_threads(args);
  opt.fault = bench::fault_from_args(args);
  opt.telemetry = telemetry.get();

  std::cout << "Fleet consolidation: 1 " << to_string(fleet.service_qos)
            << " service + " << (fleet.n_tenants - 1)
            << " churning batch tenants over " << (tier1_frames >> 8)
            << " MiB of fast tier (" << epochs << " epochs x "
            << ops_per_epoch << " ops, churn rate " << fleet.churn_rate
            << ")\n\n";

  // Solo baseline: the service alone, arbitration off. Its hitrate is the
  // bar the isolation guarantee is measured against.
  tiering::RunnerOptions solo_opt = opt;
  solo_opt.checkpoint = bench::checkpoint_from_args(args);
  solo_opt.checkpoint.basename = "fleet-solo";
  solo_opt.telemetry_label = "fleet/solo";
  const tiering::RunnerResult solo = tiering::EndToEndRunner::run(
      [ops_per_epoch](std::uint64_t s) {
        std::vector<workloads::WorkloadPtr> v;
        (void)ops_per_epoch;
        v.push_back(std::make_unique<workloads::ZipfWorkload>(
            kServiceBytes, 4096, 0.9, 0.05, s));
        return v;
      },
      cfg, solo_opt);

  const tiering::WorkloadFactory factory =
      fleet_factory(fleet, ops_per_epoch);
  const std::vector<double> weights = fleet_weights(fleet.n_tenants);
  const std::vector<tiering::TenantSpec> tenants =
      fleet_tenants(fleet, floor_frames);

  // Full fleet, arbitration off: every tenant competes in one global
  // ranking and the noisy neighbors crowd the service out.
  tiering::RunnerOptions off_opt = opt;
  off_opt.process_weights = weights;
  off_opt.checkpoint = bench::checkpoint_from_args(args);
  off_opt.checkpoint.basename = "fleet-off";
  off_opt.telemetry_label = "fleet/off";
  const tiering::RunnerResult off =
      tiering::EndToEndRunner::run(factory, cfg, off_opt);

  // Full fleet, arbitration on: quota floors, burst reclaim and the
  // QoS-aware degradation ladder.
  tiering::RunnerOptions on_opt = opt;
  on_opt.process_weights = weights;
  on_opt.tenants = tenants;
  on_opt.checkpoint = bench::checkpoint_from_args(args);
  on_opt.checkpoint.basename = "fleet-on";
  on_opt.telemetry_label = "fleet/on";
  const tiering::RunnerResult on =
      tiering::EndToEndRunner::run(factory, cfg, on_opt);

  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("fleet.csv");
    csv->write_row(bench::fleet_csv_header());
  }
  const auto emit = [&](const std::string& mode, const std::string& tenant,
                        tiering::QosClass qos, double hitrate,
                        const tiering::TenantOutcome* out) {
    if (!csv) return;
    csv->write_row({mode, tenant, std::string(to_string(qos)),
                    util::TextTable::fixed(hitrate, 4),
                    std::to_string(out != nullptr ? out->floor_frames : 0),
                    std::to_string(out != nullptr ? out->grant_frames : 0),
                    std::to_string(out != nullptr ? out->occupancy_frames : 0),
                    std::to_string(out != nullptr ? out->quota_shed : 0),
                    std::to_string(out != nullptr ? out->reclaimed_frames : 0),
                    std::to_string(out != nullptr ? out->bandwidth_rejected
                                                  : 0)});
  };
  emit("solo", "service", fleet.service_qos, solo.process_hitrates.at(0),
       nullptr);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    emit("fleet-off", tenants[t].name, tenants[t].qos,
         off.process_hitrates.at(t), nullptr);
  }
  for (std::size_t t = 0; t < on.tenants.size(); ++t) {
    emit("fleet-on", on.tenants[t].name, on.tenants[t].qos,
         on.tenants[t].hitrate, &on.tenants[t]);
  }

  util::TextTable table({"tenant", "qos", "solo", "fleet-off", "fleet-on",
                         "grant", "occupancy", "shed", "reclaimed"});
  for (std::size_t t = 0; t < on.tenants.size(); ++t) {
    const tiering::TenantOutcome& out = on.tenants[t];
    table.add_row(
        {out.name, std::string(to_string(out.qos)),
         t == 0 ? util::TextTable::percent(solo.process_hitrates.at(0)) : "-",
         util::TextTable::percent(off.process_hitrates.at(t)),
         util::TextTable::percent(out.hitrate),
         util::TextTable::num(out.grant_frames),
         util::TextTable::num(out.occupancy_frames),
         util::TextTable::num(out.quota_shed),
         util::TextTable::num(out.reclaimed_frames)});
  }
  table.print(std::cout);

  const double solo_hit = solo.process_hitrates.at(0);
  const double on_hit = on.tenants.empty() ? 0.0 : on.tenants.at(0).hitrate;
  const double off_hit = off.process_hitrates.at(0);
  const bool isolated = solo_hit - on_hit <= 0.05;
  std::cout << "\nService hitrate: solo "
            << util::TextTable::percent(solo_hit) << ", fleet w/o arbitration "
            << util::TextTable::percent(off_hit) << ", fleet w/ arbitration "
            << util::TextTable::percent(on_hit) << '\n';
  std::cout << "Isolation (latency tenant within 5 pp of solo under batch "
               "churn): "
            << (isolated ? "yes" : "NO") << '\n';
  if (csv) std::cout << "Rows written to fleet.csv\n";
  if (telemetry) telemetry->export_final();
  return (fleet.isolation_check && !isolated) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.get_bool("fleet", false)) return fleet_main(args);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 10));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 600'000);
  const double scale = args.get_double("scale", 0.5);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Consolidation: data_caching + lulesh + gups sharing one "
               "64 MiB fast tier\n\n";
  const auto baseline =
      run(Mode::FirstTouch, scale, epochs, ops_per_epoch, seed);
  const auto raw = run(Mode::TmpRaw, scale, epochs, ops_per_epoch, seed);
  const auto density =
      run(Mode::TmpDensity, scale, epochs, ops_per_epoch, seed);

  util::TextTable table({"tenant", "rss_mb", "first-touch", "tmp (raw rank)",
                         "tmp (density rank)"});
  for (std::size_t t = 0; t < baseline.size(); ++t) {
    table.add_row(
        {baseline[t].name, util::TextTable::num(baseline[t].rss_mb),
         util::TextTable::percent(baseline[t].hitrate),
         util::TextTable::percent(raw[t].hitrate),
         util::TextTable::percent(density[t].hitrate)});
  }
  table.print(std::cout);
  std::cout << "\nFinding: with mixed 4 KiB and THP tenants, the paper's "
               "raw-count rank over-values huge pages (a 2 MiB entry "
               "aggregates 512 frames of samples), steering fast memory to "
               "the uniform-random tenant. Ranking by hotness *density* "
               "(per 4 KiB frame) restores cross-tenant arbitration — a "
               "capacity-allocation subtlety the paper's 4 KiB-centric "
               "evaluation never hits.\n";
  return 0;
}
