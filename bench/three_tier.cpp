/// Extension — three-tier ladders (the paper's motivation section expects
/// "multiple memory technologies working together"; this quantifies adding
/// a CXL-class middle tier). Same profiler, same policy inputs, waterfall
/// placement: the hottest pages in DRAM, the warm band in the middle tier,
/// the cold tail in NVM. Compared against a two-tier split with identical
/// DRAM capacity, so the middle tier's contribution is isolated.
///
/// Usage: three_tier [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "pmu/events.hpp"
#include "tiering/epoch.hpp"
#include "tiering/mover.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct TierRun {
  util::SimNs runtime_ns = 0;
  double dram_hitrate = 0.0;
  std::uint64_t migrations = 0;
};

TierRun run(const workloads::WorkloadSpec& spec, bool with_middle_tier,
            std::uint32_t epochs, std::uint64_t ops_per_epoch,
            std::uint64_t seed) {
  sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
  const std::uint64_t dram_frames = (32ULL << 20) >> mem::kPageShift;
  const std::uint64_t middle_frames = (64ULL << 20) >> mem::kPageShift;
  cfg.tier1_frames = dram_frames;
  if (with_middle_tier) {
    cfg.tier2_frames = middle_frames;
    cfg.tier2_read_ns = 150;   // CXL-attached DRAM class
    cfg.tier2_write_ns = 200;
    cfg.tier3_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4 + 4096;
    cfg.tier3_read_ns = 300;   // NVM class
    cfg.tier3_write_ns = 600;
  } else {
    cfg.tier2_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4 + 4096;
    cfg.tier2_read_ns = 300;
    cfg.tier2_write_ns = 600;
  }

  sim::System system(cfg);
  tiering::add_spec_processes(system, spec, seed);
  core::DaemonConfig dcfg;
  dcfg.driver.ibs = bench::scaled_ibs(4);
  core::TmpDaemon daemon(system, dcfg);
  tiering::MoverConfig mcfg;
  mcfg.per_page_cost_ns = 2500;
  mcfg.min_rank = 3;
  tiering::PageMover mover(system, mcfg);

  TierRun result;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    const core::ProfileSnapshot snap = daemon.tick();
    tiering::MoveStats moved;
    if (with_middle_tier) {
      moved = mover.apply_tiers(snap.ranking,
                                {dram_frames - 64, middle_frames - 64});
    } else {
      moved = mover.apply(snap.ranking, dram_frames - 64);
    }
    result.migrations += moved.promoted + moved.demoted;
  }
  const std::uint64_t t1 = system.pmu().truth_total(pmu::Event::MemReadTier1);
  const std::uint64_t t2 = system.pmu().truth_total(pmu::Event::MemReadTier2);
  result.dram_hitrate = (t1 + t2) == 0 ? 1.0
                                       : static_cast<double>(t1) /
                                             static_cast<double>(t1 + t2);
  result.runtime_ns = system.now();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Extension: two-tier vs three-tier ladder (same 32 MiB DRAM; "
               "3-tier adds a 64 MiB CXL-class middle tier)\n\n";
  util::TextTable table({"workload", "2t runtime_ms", "3t runtime_ms",
                         "speedup(3t)", "dram hit (2t)", "dram hit (3t)",
                         "migrations 2t/3t"});
  for (const auto& spec : bench::selected_specs(args)) {
    const TierRun two = run(spec, false, epochs, ops_per_epoch, seed);
    const TierRun three = run(spec, true, epochs, ops_per_epoch, seed);
    table.add_row(
        {spec.name, util::TextTable::num(two.runtime_ns / util::kMillisecond),
         util::TextTable::num(three.runtime_ns / util::kMillisecond),
         util::TextTable::fixed(static_cast<double>(two.runtime_ns) /
                                    static_cast<double>(three.runtime_ns),
                                3),
         util::TextTable::percent(two.dram_hitrate),
         util::TextTable::percent(three.dram_hitrate),
         util::TextTable::num(two.migrations) + "/" +
             util::TextTable::num(three.migrations)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the middle tier absorbs the warm band that "
               "missed DRAM, so 3-tier runtimes improve on workloads whose "
               "footprint exceeds DRAM but fits DRAM+CXL; pure cache-"
               "resident or uniform workloads see ~1.0x.\n";
  return 0;
}
