/// Extension — three-tier ladders (the paper's motivation section expects
/// "multiple memory technologies working together"; this quantifies adding
/// a CXL-class middle tier). Same profiler, same policy inputs, waterfall
/// placement: the hottest pages in DRAM, the warm band in the middle tier,
/// the cold tail in NVM. Compared against a two-tier split with identical
/// DRAM capacity, so the middle tier's contribution is isolated.
///
/// Since the N-tier generalization this bench is a thin wrapper over the
/// bench/topology chain engine (topology_common.hpp): the 2t and 3t rows
/// are the DRAM+NVM and DRAM+CXL+NVM points of the topology sweep, and the
/// default output is byte-identical to the pre-generalization bench.
///
/// Usage: three_tier [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "topology_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  bench::ChainOptions opt;
  opt.epochs = static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  opt.ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  opt.seed = args.get_u64("seed", 42);
  // The pre-generalization bench charged migrations a flat per-move cost;
  // keep that here so the table reproduces byte-for-byte (bench/topology
  // uses the hop-scaled model).
  opt.hop_scaled_cost = false;

  std::cout << "Extension: two-tier vs three-tier ladder (same 32 MiB DRAM; "
               "3-tier adds a 64 MiB CXL-class middle tier)\n\n";
  util::TextTable table({"workload", "2t runtime_ms", "3t runtime_ms",
                         "speedup(3t)", "dram hit (2t)", "dram hit (3t)",
                         "migrations 2t/3t"});
  for (const auto& spec : bench::selected_specs(args)) {
    const bench::ChainRun two =
        bench::run_chain(spec, bench::two_tier_chain(spec), opt);
    const bench::ChainRun three =
        bench::run_chain(spec, bench::three_tier_chain(spec), opt);
    table.add_row(
        {spec.name, util::TextTable::num(two.runtime_ns / util::kMillisecond),
         util::TextTable::num(three.runtime_ns / util::kMillisecond),
         util::TextTable::fixed(static_cast<double>(two.runtime_ns) /
                                    static_cast<double>(three.runtime_ns),
                                3),
         util::TextTable::percent(two.dram_hitrate),
         util::TextTable::percent(three.dram_hitrate),
         util::TextTable::num(two.migrations) + "/" +
             util::TextTable::num(three.migrations)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the middle tier absorbs the warm band that "
               "missed DRAM, so 3-tier runtimes improve on workloads whose "
               "footprint exceeds DRAM but fits DRAM+CXL; pure cache-"
               "resident or uniform workloads see ~1.0x.\n";
  return 0;
}
