#pragma once
/// \file common.hpp
/// Shared configuration for the paper-reproduction benches.
///
/// The simulator reproduces the paper's testbed at ~1/64 scale: workload
/// footprints, the LLC, TLB reach and the IBS sampling period all shrink by
/// the same factor, so every capacity *ratio* that drives the paper's
/// results is preserved. See DESIGN.md §2 for the substitution table.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hotness.hpp"
#include "core/stream.hpp"
#include "monitors/devmon.hpp"
#include "monitors/ibs.hpp"
#include "sim/config.hpp"
#include "telemetry/telemetry.hpp"
#include "tiering/admission.hpp"
#include "tiering/tenant.hpp"
#include "util/ckpt.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"
#include "workloads/registry.hpp"

namespace tmprof::bench {

/// The scaled Ryzen-3600X-like testbed.
inline sim::SimConfig testbed_config(std::uint64_t footprint_bytes) {
  sim::SimConfig cfg;
  cfg.cores = 6;
  // 32 MiB LLC / 64 scale = 512 KiB; keep 1 MiB for headroom.
  cfg.llc_bytes = 1ULL << 20;
  cfg.llc_ways = 16;
  cfg.l2_bytes = 256ULL << 10;
  // Scale the STLB so TLB reach / footprint matches the real machine:
  // L2 holds 256 4K entries (1 MiB reach) and 16 2M entries per core.
  cfg.l2_tlb = mem::TlbLevelConfig{64, 4, 4, 4};
  cfg.instruction_fetch = true;
  // Single profiling tier by default: big enough for the whole footprint.
  cfg.tier1_frames = (footprint_bytes >> mem::kPageShift) * 5 / 4 + 2048;
  cfg.tier2_frames = 2048;
  return cfg;
}

/// The paper's IBS sampling periods, scaled to the simulator. The paper's
/// default (1 tag / 262,144 uops) over a 1-second epoch on a ~4 GHz core
/// yields tens of thousands of samples per epoch — the same order as the
/// per-epoch A-bit page counts (the premise of Fig. 2). Our epochs retire
/// ~4M uops, so the period shrinks to keep that sample-to-page balance:
/// 512 uops default, /4 and /8 for the 4x and 8x rates.
inline constexpr std::uint64_t kScaledDefaultPeriod = 512;

inline monitors::IbsConfig scaled_ibs(std::uint64_t rate_multiplier) {
  return monitors::IbsConfig::with_period(kScaledDefaultPeriod /
                                          rate_multiplier);
}

/// Workload selection: --workload=<name> restricts to one, default all.
inline std::vector<workloads::WorkloadSpec> selected_specs(
    const util::ArgParser& args) {
  const double scale = args.get_double("scale", 1.0);
  if (args.has("workload")) {
    return {workloads::find_spec(args.get("workload", ""), scale)};
  }
  return workloads::table3_specs(scale);
}

/// Engine selection shared by the benches: --threads=0 (default) keeps the
/// legacy serial engine; --threads=N >= 1 switches to the deterministic
/// sharded engine with N workers (results are identical for every N >= 1).
inline std::uint32_t selected_threads(const util::ArgParser& args) {
  return static_cast<std::uint32_t>(args.get_u64("threads", 0));
}

/// Hotness front-end selection shared by the benches (docs/SKETCH.md):
///   --hotness=exact|sketch  counting front-end (default exact)
///   --sketch-width=N        count-min cells per row (rounded to pow2)
///   --sketch-depth=N        count-min rows
///   --sketch-seed=N         hash-family seed
///   --sketch-candidates=N   cap on exactly-tracked candidate keys
///   --bloom-bits=N          Bloom filter size for new-page detection
/// Rejects unknown mode names (core::parse_hotness_mode throws).
inline core::HotnessConfig hotness_from_args(const util::ArgParser& args) {
  core::HotnessConfig hotness;
  hotness.mode = core::parse_hotness_mode(args.get("hotness", "exact"));
  hotness.sketch.width = static_cast<std::uint32_t>(
      args.get_u64("sketch-width", hotness.sketch.width));
  hotness.sketch.depth = static_cast<std::uint32_t>(
      args.get_u64("sketch-depth", hotness.sketch.depth));
  hotness.sketch.seed = args.get_u64("sketch-seed", hotness.sketch.seed);
  hotness.sketch.bloom_bits =
      args.get_u64("bloom-bits", hotness.sketch.bloom_bits);
  hotness.candidates = static_cast<std::uint32_t>(
      args.get_u64("sketch-candidates", hotness.candidates));
  return hotness;
}

/// Streaming-transport selection shared by the benches (docs/STREAMING.md):
///   --stream=0|1        lock-free streaming sample transport (default off)
///   --stream-ring=N     per-lane ring capacity (power of two >= 2)
///   --stream-topk=N     advisory top-K maintained between barriers (>= 1)
///   --stream-decay=N    heat decay shift at each epoch seal (>= 64 clears)
/// Streaming requires the sharded engine and the exact hotness front-end;
/// invalid combinations are rejected here, naming the flag, instead of
/// surfacing as a precondition failure deep in the driver.
inline core::StreamConfig stream_from_args(const util::ArgParser& args,
                                           std::uint32_t n_threads,
                                           const core::HotnessConfig& hotness) {
  core::StreamConfig stream;
  stream.enabled = args.get_bool("stream", false);
  stream.ring_capacity = static_cast<std::uint32_t>(
      args.get_u64("stream-ring", stream.ring_capacity));
  if (stream.ring_capacity < 2 ||
      (stream.ring_capacity & (stream.ring_capacity - 1)) != 0) {
    throw std::invalid_argument(
        "--stream-ring: ring capacity must be a power of two >= 2");
  }
  stream.top_k =
      static_cast<std::uint32_t>(args.get_u64("stream-topk", stream.top_k));
  if (stream.top_k == 0) {
    throw std::invalid_argument(
        "--stream-topk: the advisory top-K must be >= 1");
  }
  stream.decay_shift = static_cast<std::uint32_t>(
      args.get_u64("stream-decay", stream.decay_shift));
  if (stream.enabled && n_threads == 0) {
    throw std::invalid_argument(
        "--stream: streaming needs the sharded engine's per-core lanes; "
        "pass --threads=N with N >= 1");
  }
  if (stream.enabled && hotness.mode != core::HotnessMode::Exact) {
    throw std::invalid_argument(
        "--stream: streaming requires --hotness=exact (conservative-update "
        "sketches are add-order sensitive)");
  }
  return stream;
}

/// Fault-injection selection shared by the benches (docs/ROBUSTNESS.md):
///   --fault-rate=F      probability per fault site in [0, 1] (default 0)
///   --fault-seed=N      schedule seed, independent of the workload seed
///   --fault-sites=a,b   restrict to named sites (e.g. "migration,
///                       trace-overflow"); default all sites at F
/// Rejects negative/out-of-range rates and unknown site names.
inline util::FaultConfig fault_from_args(const util::ArgParser& args) {
  util::FaultConfig fault;
  fault.rate = args.get_rate("fault-rate", 0.0);
  fault.seed = args.get_u64("fault-seed", fault.seed);
  if (args.has("fault-sites")) {
    fault.restrict_to(util::parse_fault_sites(args.get("fault-sites", "")));
  }
  return fault;
}

/// Checkpoint/resume selection shared by the benches (docs/RECOVERY.md):
///   --checkpoint-every=N  write a checkpoint every N epochs (0 = off)
///   --checkpoint-dir=D    checkpoint directory (required to enable)
///   --resume-from=F       resume from an explicit checkpoint file
///   --resume-latest=0|1   resume from the newest checkpoint in the dir
///   --keep-last=K         retention: newest K checkpoints kept (default 3)
/// Benches override `basename` per run so concurrent configurations in one
/// directory never clobber each other.
inline util::ckpt::Options checkpoint_from_args(const util::ArgParser& args) {
  util::ckpt::Options ck;
  ck.every = static_cast<std::uint32_t>(args.get_u64("checkpoint-every", 0));
  ck.dir = args.get("checkpoint-dir", "");
  ck.resume_from = args.get("resume-from", "");
  ck.resume_latest = args.get_bool("resume-latest", false);
  ck.keep_last = static_cast<std::uint32_t>(args.get_u64("keep-last", 3));
  return ck;
}

/// Telemetry selection shared by the benches (docs/OBSERVABILITY.md):
///   --metrics-out=F       Prometheus text exposition output path
///   --trace-out=F         Chrome trace-event JSON output path
///   --telemetry-every=N   re-export every N completed epochs (0 = run end)
/// Returns null (telemetry fully disabled, zero hot-path cost) unless at
/// least one output path is given. One sink serves every run a bench makes,
/// so metrics aggregate across runs and each run gets its own trace track.
inline std::unique_ptr<telemetry::Telemetry> telemetry_from_args(
    const util::ArgParser& args) {
  telemetry::TelemetryConfig cfg;
  cfg.metrics_out = args.get("metrics-out", "");
  cfg.trace_out = args.get("trace-out", "");
  cfg.export_every =
      static_cast<std::uint32_t>(args.get_u64("telemetry-every", 0));
  if (cfg.metrics_out.empty() && cfg.trace_out.empty()) return nullptr;
  return std::make_unique<telemetry::Telemetry>(cfg);
}

/// Admission-control selection shared by the benches (docs/ADMISSION.md):
///   --admission=M         off|static|adaptive (default off)
///   --mig-bandwidth=F     migration bandwidth in MB of simulated transfer
///                         per simulated second (0 = unlimited)
///   --mig-burst=F         token-bucket depth in MB (largest single burst)
///   --cooldown-epochs=N   ping-pong window K; must be >= 1
///   --min-benefit=N       benefit floor (static) / floor to decay to
///   --min-history=N       epochs of ranking evidence required to admit
///   --max-moves=N         storm brake: admitted promotions per epoch
/// Rejects unknown modes (tiering::parse_admission_mode enumerates the
/// valid names), negative bandwidths/bursts and a zero cool-down window.
inline tiering::AdmissionConfig admission_from_args(
    const util::ArgParser& args) {
  tiering::AdmissionConfig adm;
  adm.mode = tiering::parse_admission_mode(args.get("admission", "off"));
  const double bandwidth_mb =
      args.get_checked_double("mig-bandwidth", 0.0, 0.0, 1e9);
  adm.bandwidth_bytes_per_sec =
      static_cast<std::uint64_t>(bandwidth_mb * 1e6);
  const double burst_mb = args.get_checked_double(
      "mig-burst", static_cast<double>(adm.burst_bytes) / 1e6, 1e-6, 1e9);
  adm.burst_bytes = static_cast<std::uint64_t>(burst_mb * 1e6);
  adm.cooldown_epochs = static_cast<std::uint32_t>(
      args.get_u64("cooldown-epochs", adm.cooldown_epochs));
  if (adm.cooldown_epochs == 0) {
    throw std::invalid_argument(
        "--cooldown-epochs: the ping-pong window must be >= 1 epoch");
  }
  adm.min_benefit = args.get_u64("min-benefit", adm.min_benefit);
  adm.min_history = static_cast<std::uint32_t>(
      args.get_u64("min-history", adm.min_history));
  adm.max_moves_per_epoch = args.get_u64("max-moves", adm.max_moves_per_epoch);
  return adm;
}

/// Fleet-consolidation selection (docs/CONSOLIDATION.md), used by
/// bench/consolidation --fleet:
///   --tenants=N          concurrent tenants (>= 2; tenant 0 is the service)
///   --qos=C              QoS class of the service tenant (latency|batch)
///   --quota-floor=N      service tenant's guaranteed fast-tier frames (> 0)
///   --churn-rate=F       fraction of each batch tenant's cycle spent idle,
///                        exclusive (0, 1): 0 would mean no churn at all and
///                        1 a tenant that never runs
///   --isolation-check=1  exit non-zero unless the latency tenant stays
///                        within 5 pp of its solo hitrate (requires
///                        --qos=latency; the guarantee protects latency
///                        tenants only)
/// Unknown QoS class names enumerate the valid ones; zero/negative tenant
/// counts, floors and churn rates are rejected with clear errors.
struct FleetArgs {
  std::uint32_t n_tenants = 12;
  tiering::QosClass service_qos = tiering::QosClass::Latency;
  std::uint64_t quota_floor_frames = 0;  ///< 0 = bench picks its default
  double churn_rate = 0.5;
  bool isolation_check = false;
};

inline FleetArgs fleet_from_args(const util::ArgParser& args) {
  FleetArgs fleet;
  fleet.n_tenants =
      static_cast<std::uint32_t>(args.get_u64("tenants", fleet.n_tenants));
  if (fleet.n_tenants < 2) {
    throw std::invalid_argument(
        "--tenants: a fleet needs at least 2 tenants (one service, one "
        "neighbor)");
  }
  if (args.has("qos")) {
    fleet.service_qos = tiering::parse_qos_class(args.get("qos", ""));
  }
  if (args.has("quota-floor")) {
    const double floor = args.get_double("quota-floor", 0.0);
    if (floor <= 0.0) {
      throw std::invalid_argument(
          "--quota-floor: the guaranteed floor must be a positive number of "
          "frames");
    }
    fleet.quota_floor_frames = static_cast<std::uint64_t>(floor);
  }
  fleet.churn_rate = args.get_double("churn-rate", fleet.churn_rate);
  if (fleet.churn_rate <= 0.0 || fleet.churn_rate >= 1.0) {
    throw std::invalid_argument(
        "--churn-rate: the idle fraction must lie strictly between 0 and 1");
  }
  fleet.isolation_check = args.get_bool("isolation-check", false);
  if (fleet.isolation_check &&
      (!args.has("qos") ||
       fleet.service_qos != tiering::QosClass::Latency)) {
    throw std::invalid_argument(
        "--isolation-check: requires --qos=latency (the isolation guarantee "
        "protects latency tenants)");
  }
  return fleet;
}

/// Tier-chain selection shared by the benches (docs/TOPOLOGY.md):
///   --tiers=name:frames:read_ns:write_ns[:bw_gbps],...   fastest first
/// e.g. --tiers=dram:8192:80:80,cxl:16384:150:200:32,nvm:262144:300:600:8
/// The optional bandwidth term (GB/s) adds a per-cache-line transfer cost
/// of ~64/bw ns to every fill the tier serves. Returns an empty vector
/// when --tiers is absent (the SimConfig shim fields stay in charge).
/// Rejects malformed specs, empty names, zero-frame tiers, chains shorter
/// than 2 or longer than mem::kMaxTiers tiers, and chains whose read
/// latency descends (the chain must be ordered fastest first).
inline std::vector<mem::TierSpec> tiers_from_args(const util::ArgParser& args) {
  std::vector<mem::TierSpec> tiers;
  if (!args.has("tiers")) return tiers;
  const std::string value = args.get("tiers", "");
  const auto parse_u64 = [](const std::string& field,
                            const char* what) -> std::uint64_t {
    try {
      std::size_t pos = 0;
      const std::uint64_t v = std::stoull(field, &pos);
      if (pos != field.size()) throw std::invalid_argument(field);
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("--tiers: bad ") + what +
                                  " '" + field + "' (expected an integer)");
    }
  };
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string spec_str =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    start = comma == std::string::npos ? value.size() + 1 : comma + 1;
    std::vector<std::string> fields;
    std::size_t f = 0;
    while (f <= spec_str.size()) {
      const std::size_t colon = spec_str.find(':', f);
      fields.push_back(spec_str.substr(
          f, colon == std::string::npos ? std::string::npos : colon - f));
      f = colon == std::string::npos ? spec_str.size() + 1 : colon + 1;
    }
    if (fields.size() < 4 || fields.size() > 5) {
      throw std::invalid_argument(
          "--tiers: each tier is name:frames:read_ns:write_ns[:bw_gbps], "
          "got '" + spec_str + "'");
    }
    mem::TierSpec spec;
    spec.name = fields[0];
    if (spec.name.empty()) {
      throw std::invalid_argument("--tiers: tier names must be non-empty");
    }
    spec.frames = parse_u64(fields[1], "frame count");
    if (spec.frames == 0) {
      throw std::invalid_argument("--tiers: tier '" + spec.name +
                                  "' has zero frames; every tier must hold "
                                  "at least one page");
    }
    spec.read_latency_ns = parse_u64(fields[2], "read latency");
    spec.write_latency_ns = parse_u64(fields[3], "write latency");
    if (fields.size() == 5) {
      double bw = 0.0;
      try {
        std::size_t pos = 0;
        bw = std::stod(fields[4], &pos);
        if (pos != fields[4].size()) throw std::invalid_argument(fields[4]);
      } catch (const std::exception&) {
        throw std::invalid_argument("--tiers: bad bandwidth '" + fields[4] +
                                    "' (expected GB/s as a number)");
      }
      if (bw <= 0.0) {
        throw std::invalid_argument(
            "--tiers: bandwidth must be positive (GB/s)");
      }
      spec.line_transfer_ns =
          static_cast<util::SimNs>(64.0 / bw + 0.5);  // one 64 B line
    }
    tiers.push_back(std::move(spec));
  }
  if (tiers.size() < 2) {
    throw std::invalid_argument(
        "--tiers: a chain needs at least 2 tiers (fast + capacity)");
  }
  if (tiers.size() > mem::kMaxTiers) {
    throw std::invalid_argument("--tiers: at most " +
                                std::to_string(mem::kMaxTiers) +
                                " tiers are supported");
  }
  for (std::size_t t = 1; t < tiers.size(); ++t) {
    if (tiers[t].read_latency_ns < tiers[t - 1].read_latency_ns) {
      throw std::invalid_argument(
          "--tiers: chain must be ordered fastest first, but '" +
          tiers[t].name + "' (read " + std::to_string(tiers[t].read_latency_ns) +
          " ns) is faster than '" + tiers[t - 1].name + "' (read " +
          std::to_string(tiers[t - 1].read_latency_ns) + " ns)");
    }
  }
  return tiers;
}

/// Device-monitor selection shared by the benches (docs/TOPOLOGY.md):
///   --devmon=0|1       enable per-device hot-page counters (default off)
///   --devmon-slots=N   counter slots per device (>= 1)
///   --devmon-topk=N    entries reported per device per epoch (1..slots)
/// Rejects zero slot counts and report sizes outside [1, slots].
inline monitors::DevMonConfig devmon_from_args(const util::ArgParser& args) {
  monitors::DevMonConfig dm;
  dm.enabled = args.get_bool("devmon", false);
  dm.slots =
      static_cast<std::uint32_t>(args.get_u64("devmon-slots", dm.slots));
  if (dm.slots == 0) {
    throw std::invalid_argument(
        "--devmon-slots: a device needs at least 1 counter slot");
  }
  dm.top_k =
      static_cast<std::uint32_t>(args.get_u64("devmon-topk", dm.top_k));
  if (dm.top_k == 0 || dm.top_k > dm.slots) {
    throw std::invalid_argument(
        "--devmon-topk: the per-epoch report size must lie in [1, slots]");
  }
  return dm;
}

/// The topology bench's CSV schema (bench/topology), pinned by the
/// golden-schema test. One row per (workload, chain, devmon setting).
inline const std::vector<std::string>& topology_csv_header() {
  static const std::vector<std::string> header{
      "workload", "chain",      "tiers",    "devmon",
      "runtime_ms", "dram_hitrate", "migrations", "promoted",
      "demoted",  "devmon_reported"};
  return header;
}

/// The fleet bench's CSV schema (bench/consolidation --fleet), pinned by
/// the golden-schema test. One row per (mode, tenant).
inline const std::vector<std::string>& fleet_csv_header() {
  static const std::vector<std::string> header{
      "mode",           "tenant",          "qos",
      "hitrate",        "floor_frames",    "grant_frames",
      "occupancy_frames", "quota_shed",    "reclaimed_frames",
      "bandwidth_rejected"};
  return header;
}

/// The robustness bench's CSV schema, shared with the golden-schema test
/// (tests/test_cli.cpp) so drift breaks the build's test tier, not a
/// downstream plotting script.
inline const std::vector<std::string>& robustness_csv_header() {
  static const std::vector<std::string> header{
      "workload",      "fault_rate",    "policy",       "runtime_ms",
      "speedup",       "hitrate",       "migrations",   "retried",
      "deferred",      "aborted",       "no_room",      "trace_dropped",
      "scans_aborted", "hwpc_wraps",    "pinned_epochs", "fallback_epochs"};
  return header;
}

/// The storm bench's CSV schema (bench/robustness --storm), also pinned by
/// the golden-schema test. One row per (scenario, admission mode).
inline const std::vector<std::string>& storm_csv_header() {
  static const std::vector<std::string> header{
      "scenario",         "admission",       "runtime_ms",
      "hitrate",          "migrations",      "moved_mb",
      "rejected",         "cooled",          "shed",
      "throttled_epochs", "bytes_saved_pct", "hitrate_delta"};
  return header;
}

}  // namespace tmprof::bench
