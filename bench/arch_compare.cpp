/// Architecture comparison — the paper's Section I/II argument, measured:
/// software-controlled tiered memory with in-place tier-2 access (TMP +
/// History migration) versus the *page-cache* alternative that exposes
/// tier 2 as a swap device, where "accessing a single cache line via
/// tier 2 swap produces a costly page fault ... followed by the movement
/// of an entire data block". The first-touch tiered machine (no
/// migration, no faults) sits between them as the static reference.
///
/// All three run the same workloads with the same tier-1 capacity.
///
/// Usage: arch_compare [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "pmu/events.hpp"
#include "tiering/epoch.hpp"
#include "tiering/mover.hpp"
#include "tiering/swap.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct ArchResult {
  util::SimNs runtime_ns = 0;
  double t1_hitrate = 0.0;
  std::uint64_t faults = 0;
};

enum class Arch { StaticTiered, TmpTiered, Swap };

ArchResult run(Arch arch, const workloads::WorkloadSpec& spec,
               std::uint32_t epochs, std::uint64_t ops_per_epoch,
               std::uint64_t seed) {
  sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
  cfg.tier1_frames = (64ULL << 20) >> mem::kPageShift;
  cfg.tier2_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);
  sim::System system(cfg);
  tiering::add_spec_processes(system, spec, seed);

  std::unique_ptr<core::TmpDaemon> daemon;
  std::unique_ptr<tiering::PageMover> mover;
  std::unique_ptr<tiering::SwapFarMemory> swap;
  if (arch == Arch::TmpTiered) {
    core::DaemonConfig dcfg;
    dcfg.driver.ibs = bench::scaled_ibs(4);
    daemon = std::make_unique<core::TmpDaemon>(system, dcfg);
    tiering::MoverConfig mcfg;
    mcfg.per_page_cost_ns = 2500;
    mcfg.min_rank = 3;
    mover = std::make_unique<tiering::PageMover>(system, mcfg);
  }

  ArchResult result;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    if (arch == Arch::TmpTiered) {
      const core::ProfileSnapshot snap = daemon->tick();
      mover->apply(snap.ranking, cfg.tier1_frames - 128);
    } else if (arch == Arch::Swap) {
      // Sweep after every epoch: tier-2 spill becomes swap-backed, and
      // pages allocated there since the last sweep join it (kswapd role).
      if (!swap) swap = std::make_unique<tiering::SwapFarMemory>(system);
      swap->seal();
    }
  }
  const std::uint64_t t1 = system.pmu().truth_total(pmu::Event::MemReadTier1);
  const std::uint64_t t2 = system.pmu().truth_total(pmu::Event::MemReadTier2);
  result.t1_hitrate = (t1 + t2) == 0 ? 1.0
                                     : static_cast<double>(t1) /
                                           static_cast<double>(t1 + t2);
  result.faults = swap ? swap->major_faults() : 0;
  result.runtime_ns = system.now();
  if (daemon) result.runtime_ns += daemon->driver().trace_overhead_ns();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 400'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Architecture comparison: in-place tiering vs swap-style "
               "far memory (64 MiB fast tier)\n\n";
  util::TextTable table({"workload", "static_ms", "tmp_ms", "swap_ms",
                         "swap vs tmp", "swap faults", "t1 hit (tmp)",
                         "t1 hit (swap)"});
  for (const auto& spec : bench::selected_specs(args)) {
    const ArchResult stat =
        run(Arch::StaticTiered, spec, epochs, ops_per_epoch, seed);
    const ArchResult tmp =
        run(Arch::TmpTiered, spec, epochs, ops_per_epoch, seed);
    const ArchResult swp = run(Arch::Swap, spec, epochs, ops_per_epoch, seed);
    table.add_row(
        {spec.name,
         util::TextTable::num(stat.runtime_ns / util::kMillisecond),
         util::TextTable::num(tmp.runtime_ns / util::kMillisecond),
         util::TextTable::num(swp.runtime_ns / util::kMillisecond),
         util::TextTable::fixed(static_cast<double>(swp.runtime_ns) /
                                    static_cast<double>(tmp.runtime_ns),
                                2) + "x",
         util::TextTable::num(swp.faults),
         util::TextTable::percent(tmp.t1_hitrate),
         util::TextTable::percent(swp.t1_hitrate)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: swap pays a major fault per cold-page touch, so "
               "any workload whose working set exceeds the fast tier runs "
               "multiples slower than in-place tiering — the paper's core "
               "architectural argument. Cache-resident workloads tie.\n";
  return 0;
}
