/// Ablation — rank fusion (DESIGN.md §5). The paper argues for a plain sum
/// of A-bit and trace samples because Fig. 2 shows the populations are
/// comparable. This bench sweeps the alternatives (max, weighted at
/// several trace weights) across workloads and reports History-policy
/// hitrate at two capacity ratios, so the "sum is good enough" claim is
/// tested rather than assumed.
///
/// Usage: ablation_fusion [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "common.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 600'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Ablation: rank-fusion mode vs History hitrate\n\n";

  struct Mode {
    const char* label;
    core::FusionMode fusion;
    double weight;
  };
  const Mode modes[] = {
      {"sum (paper)", core::FusionMode::Sum, 1.0},
      {"max", core::FusionMode::Max, 1.0},
      {"weighted t=0.25", core::FusionMode::Weighted, 0.25},
      {"weighted t=4", core::FusionMode::Weighted, 4.0},
      {"abit-only", core::FusionMode::AbitOnly, 1.0},
      {"trace-only", core::FusionMode::TraceOnly, 1.0},
  };

  for (const auto& spec : bench::selected_specs(args)) {
    tiering::CollectOptions collect;
    collect.n_epochs = epochs;
    collect.ops_per_epoch = ops_per_epoch;
    collect.seed = seed;
    collect.daemon.driver.ibs = bench::scaled_ibs(4);
    collect.n_threads = bench::selected_threads(args);
    const tiering::EpochSeries series = tiering::collect_series(
        spec, bench::testbed_config(spec.total_bytes), collect);

    util::TextTable table({"fusion", "hitrate@1/8", "hitrate@1/32"});
    for (const Mode& mode : modes) {
      std::vector<std::string> row{mode.label};
      for (std::uint64_t div : {8ULL, 32ULL}) {
        tiering::HitrateOptions opt;
        opt.capacity_frames =
            std::max<std::uint64_t>(1, series.footprint_frames / div);
        opt.fusion = mode.fusion;
        opt.trace_weight = mode.weight;
        tiering::HistoryPolicy history;
        row.push_back(util::TextTable::percent(
            tiering::evaluate_policy(history, series, opt).overall));
      }
      table.add_row(row);
    }
    std::cout << "== " << spec.name << " ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected: sum within noise of the best mode on every "
               "workload; single-source modes lose where their blind spot "
               "dominates.\n";
  return 0;
}
