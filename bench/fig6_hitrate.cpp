/// Fig. 6 — Tier-1 memory hitrate for the Oracle and History policies with
/// tier-1 capacity ratios from 1/8 to 1/128 of each workload's footprint,
/// fed by (a) A-bit profiling alone, (b) IBS trace profiling alone, and
/// (c) TMP's combined ranking. One epoch series is collected per workload
/// (the paper's "results based on the profiling data"), then replayed
/// through every policy/source/ratio combination.
///
/// Expected shapes: combined >= max(single sources) almost everywhere, with
/// the largest gaps (the paper reports up to ~70%) at small ratios on
/// workloads where the two monitors see different page populations;
/// Oracle >= History per source; the truth-Oracle column bounds everything.
///
/// Usage: fig6_hitrate [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--fusion=sum|max|weighted]
///        [--trace-weight=F] [--csv=0|1] [--fault-rate=F] [--fault-seed=N]
///        [--fault-sites=a,b] [--checkpoint-every=N] [--checkpoint-dir=D]
///        [--resume-from=F] [--resume-latest=0|1] [--keep-last=K]
///        [--metrics-out=F] [--trace-out=F] [--telemetry-every=N]
///        [--hotness=exact|sketch] [--sketch-width=N] [--sketch-depth=N]
///        [--sketch-seed=N] [--sketch-candidates=N] [--bloom-bits=N]
///        [--stream=0|1] [--stream-ring=N] [--stream-topk=N]
///        [--stream-decay=N]

#include <array>
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tmprof;

core::FusionMode combined_mode(const std::string& name) {
  if (name == "sum") return core::FusionMode::Sum;
  if (name == "max") return core::FusionMode::Max;
  if (name == "weighted") return core::FusionMode::Weighted;
  throw std::invalid_argument("unknown --fusion: " + name);
}

double run_case(const tiering::EpochSeries& series, const std::string& policy,
                core::FusionMode fusion, double trace_weight,
                std::uint64_t capacity, bool oracle_observed) {
  tiering::HitrateOptions opt;
  opt.capacity_frames = capacity;
  opt.fusion = fusion;
  opt.trace_weight = trace_weight;
  opt.oracle_from_observed = oracle_observed;
  const auto p = tiering::make_policy(policy);
  return tiering::evaluate_policy(*p, series, opt).overall;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 10));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 800'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const core::FusionMode combined =
      combined_mode(args.get("fusion", "sum"));
  const double trace_weight = args.get_double("trace-weight", 1.0);
  const bool write_csv = args.get_bool("csv", true);
  const std::uint32_t threads = bench::selected_threads(args);
  const util::FaultConfig fault = bench::fault_from_args(args);
  const core::HotnessConfig hotness = bench::hotness_from_args(args);
  const core::StreamConfig stream =
      bench::stream_from_args(args, threads, hotness);
  const util::ckpt::Options checkpoint = bench::checkpoint_from_args(args);
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);

  std::cout << "Fig. 6: tier-1 hitrate, Oracle & History x profiling source\n"
            << "(epoch = " << ops_per_epoch << " ops, " << epochs
            << " epochs; combined fusion = " << core::to_string(combined)
            << ")\n\n";

  const std::array<std::uint64_t, 5> divisors{8, 16, 32, 64, 128};
  std::ofstream csv;
  if (write_csv) {
    csv.open("fig6_hitrate.csv");
    csv << "workload,ratio,policy,source,hitrate,trace_dropped,"
           "scans_aborted\n";
  }

  // Collection dominates the wall clock; the replay below is cheap. With
  // --threads=N the workloads (independent Systems) collect concurrently,
  // each on the sharded engine; a single selected workload instead shards
  // its own cores across the pool. Either way the series are identical to
  // a --threads=1 run — output order is fixed by the spec list.
  const std::vector<workloads::WorkloadSpec> specs = bench::selected_specs(args);
  std::vector<tiering::EpochSeries> collected(specs.size());
  // One telemetry sink cannot be shared by concurrently-collecting
  // Systems, so telemetry forces the (deterministically identical)
  // serial workload loop; --threads still shards each System's cores.
  const bool outer_parallel =
      threads > 1 && specs.size() > 1 && telemetry == nullptr;
  const auto collect_one = [&](std::size_t i) {
    tiering::CollectOptions collect;
    collect.n_epochs = epochs;
    collect.ops_per_epoch = ops_per_epoch;
    collect.seed = seed;
    collect.daemon.driver.ibs = bench::scaled_ibs(4);
    collect.daemon.driver.hotness = hotness;
    collect.daemon.driver.stream = stream;
    if (args.get("backend", "ibs") == "pebs") {
      // Intel testbeds use PEBS armed on LLC misses instead of IBS; the
      // driver is backend-agnostic, so Fig. 6 can be regenerated per
      // vendor (sample_after tuned to a comparable sample rate).
      collect.daemon.driver.backend = core::TraceBackend::Pebs;
      collect.daemon.driver.pebs.sample_after = 16;
    }
    collect.daemon.fault = fault;
    collect.n_threads = outer_parallel ? 1 : threads;
    collect.checkpoint = checkpoint;
    collect.checkpoint.basename = specs[i].name + "-collect";
    collect.telemetry = telemetry.get();
    collect.telemetry_label = specs[i].name + "/collect";
    collected[i] = tiering::collect_series(
        specs[i], bench::testbed_config(specs[i].total_bytes), collect);
  };
  if (outer_parallel) {
    util::ThreadPool pool(threads);
    pool.parallel_for(specs.size(), collect_one);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) collect_one(i);
  }

  double worst_gain = 1e9, best_gain = 0.0;
  for (std::size_t spec_idx = 0; spec_idx < specs.size(); ++spec_idx) {
    const workloads::WorkloadSpec& spec = specs[spec_idx];
    const tiering::EpochSeries& series = collected[spec_idx];

    util::TextTable table({"t1 ratio", "orc-abit", "orc-ibs", "orc-tmp",
                           "hist-abit", "hist-ibs", "hist-tmp", "orc-truth",
                           "first-touch"});
    for (const std::uint64_t div : divisors) {
      const std::uint64_t capacity =
          std::max<std::uint64_t>(1, series.footprint_frames / div);
      struct Case {
        const char* policy;
        const char* source;
        core::FusionMode fusion;
        bool observed;
      };
      const std::array<Case, 8> cases{{
          {"oracle", "abit", core::FusionMode::AbitOnly, true},
          {"oracle", "ibs", core::FusionMode::TraceOnly, true},
          {"oracle", "tmp", combined, true},
          {"history", "abit", core::FusionMode::AbitOnly, false},
          {"history", "ibs", core::FusionMode::TraceOnly, false},
          {"history", "tmp", combined, false},
          {"oracle", "truth", combined, false},
          {"first-touch", "-", combined, false},
      }};
      std::vector<std::string> row{"1/" + std::to_string(div)};
      std::array<double, 8> rates{};
      for (std::size_t c = 0; c < cases.size(); ++c) {
        rates[c] = run_case(series, cases[c].policy, cases[c].fusion,
                            trace_weight, capacity, cases[c].observed);
        row.push_back(util::TextTable::percent(rates[c]));
        if (write_csv) {
          csv << spec.name << ",1/" << div << ',' << cases[c].policy << ','
              << cases[c].source << ',' << rates[c] << ','
              << series.degrade.trace_dropped << ','
              << series.degrade.scans_aborted << '\n';
        }
      }
      table.add_row(row);
      // TMP's gain over the best piecemeal source (History rows).
      const double piecemeal = std::max(rates[3], rates[4]);
      if (piecemeal > 0.0) {
        const double gain = rates[5] / piecemeal;
        best_gain = std::max(best_gain, gain);
        worst_gain = std::min(worst_gain, gain);
      }
    }
    std::cout << "== " << spec.name << " (footprint "
              << (series.footprint_frames >> 8) << " MiB) ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "History(TMP) vs best single source: gain range "
            << util::TextTable::fixed(worst_gain, 2) << "x .. "
            << util::TextTable::fixed(best_gain, 2)
            << "x (paper: combined wins by up to ~1.6-1.7x)\n";
  if (write_csv) std::cout << "Series written to fig6_hitrate.csv\n";
  if (telemetry) telemetry->export_final();
  return 0;
}
