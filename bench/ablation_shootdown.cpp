/// Ablation — A-bit clearing with vs without TLB shootdowns (DESIGN.md §5,
/// the paper's Section III-B4 optimization 3). Clearing without a
/// shootdown leaves stale TLB entries that hide accesses until natural
/// eviction; issuing shootdowns restores precision at the cost of an IPI
/// burst per cleared PTE. This bench measures both sides: pages observed
/// per scan (visibility) and scan cost (overhead).
///
/// Usage: ablation_shootdown [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N]

#include <iostream>

#include "common.hpp"
#include "core/driver.hpp"
#include "tiering/epoch.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct ScanOutcome {
  double pages_per_scan = 0.0;
  util::SimNs cost_ns = 0;
  std::uint64_t ipis = 0;
};

ScanOutcome run(const workloads::WorkloadSpec& spec, bool shootdown,
                std::uint32_t epochs, std::uint64_t ops_per_epoch,
                std::uint64_t seed) {
  sim::System system(bench::testbed_config(spec.total_bytes));
  tiering::add_spec_processes(system, spec, seed);
  core::DriverConfig cfg;
  cfg.abit.shootdown_on_clear = shootdown;
  core::TmpDriver driver(system, cfg);
  driver.set_trace_enabled(false);
  std::vector<mem::Pid> pids;
  for (sim::Process* proc : system.processes()) pids.push_back(proc->pid());

  ScanOutcome outcome;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    const monitors::AbitScanResult r = driver.scan_processes(pids);
    outcome.pages_per_scan += static_cast<double>(r.pages_accessed);
    outcome.cost_ns += r.cost_ns;
    outcome.ipis += r.shootdowns;
    driver.end_epoch();
  }
  outcome.pages_per_scan /= epochs;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 6));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 500'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Ablation: A-bit clearing with vs without TLB shootdowns\n\n";
  util::TextTable table({"workload", "pages/scan", "pages/scan(+sd)",
                         "visibility", "cost_us", "cost_us(+sd)",
                         "cost_factor"});

  for (const auto& spec : bench::selected_specs(args)) {
    const ScanOutcome lazy = run(spec, false, epochs, ops_per_epoch, seed);
    const ScanOutcome precise = run(spec, true, epochs, ops_per_epoch, seed);
    const double visibility =
        lazy.pages_per_scan == 0
            ? 0.0
            : precise.pages_per_scan / lazy.pages_per_scan;
    const double cost_factor =
        lazy.cost_ns == 0 ? 0.0
                          : static_cast<double>(precise.cost_ns) /
                                static_cast<double>(lazy.cost_ns);
    table.add_row({spec.name,
                   util::TextTable::fixed(lazy.pages_per_scan, 0),
                   util::TextTable::fixed(precise.pages_per_scan, 0),
                   util::TextTable::fixed(visibility, 2) + "x",
                   util::TextTable::num(lazy.cost_ns / 1000),
                   util::TextTable::num(precise.cost_ns / 1000),
                   util::TextTable::fixed(cost_factor, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: shootdowns buy a small visibility gain (stale "
               "TLB entries no longer hide re-accesses) at a 10-1000x scan "
               "cost — the trade the paper resolves in favor of lazy "
               "clearing.\n";
  return 0;
}
