/// Chaos kill-and-resume harness (docs/RECOVERY.md). For every case in the
/// policy x threads x fault-rate matrix it
///   1. runs the configuration uninterrupted (the reference),
///   2. forks a child that checkpoints every --checkpoint-every epochs and
///      _exit(137)s at a seeded-random epoch (the crash),
///   3. resumes in the parent from the newest surviving checkpoint, and
///   4. asserts the resumed result is bitwise identical to the reference
///      (doubles compared through their hex-float rendering).
/// A kill before the first checkpoint exercises the cold-start fallback:
/// resume finds nothing and the run must still match from scratch.
///
/// Exit status is the number of mismatching cases (0 = all identical).
///
/// Usage: chaos [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--seed=S] [--kill-seed=S]
///        [--policies=a,b,...] [--threads-list=a,b] [--rates=a,b]
///        [--model=native|badgertrap] [--checkpoint-every=N] [--dir=D]
///        [--csv=0|1] [--metrics-out=F] [--trace-out=F]
///        [--telemetry-every=N]

#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tiering/runner.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace tmprof;

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Bitwise-faithful rendering of a RunnerResult: integers in decimal,
/// doubles as hex floats, so string equality == bitwise equality.
std::string fingerprint(const tiering::RunnerResult& r) {
  std::string s;
  const auto u64 = [&s](std::uint64_t v) {
    s += std::to_string(v);
    s += ',';
  };
  const auto f64 = [&s](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a,", v);
    s += buf;
  };
  u64(r.runtime_ns);
  f64(r.tier1_hitrate);
  u64(r.migrations);
  u64(r.protection_faults);
  u64(r.profiling_overhead_ns);
  u64(r.moves.promoted);
  u64(r.moves.demoted);
  u64(r.moves.retried);
  u64(r.moves.deferred);
  u64(r.moves.aborted);
  u64(r.moves.no_room);
  u64(r.moves.rejected);
  u64(r.moves.cooled);
  u64(r.moves.shed);
  u64(r.moves.moved_bytes);
  u64(r.moves.cost_ns);
  u64(r.moves.backoff_ns);
  u64(r.degrade.hwpc_wraps);
  u64(r.degrade.scans_aborted);
  u64(r.degrade.trace_dropped);
  u64(r.degrade.rescaled_epochs);
  u64(r.degrade.fallback_epochs);
  u64(r.degrade.pinned_epochs);
  u64(r.degrade.throttled_epochs);
  u64(r.degrade.qos_fallback_epochs);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string workload = args.get("workload", "gups");
  const double scale = args.get_double("scale", 0.5);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 120'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::uint64_t kill_seed = args.get_u64("kill-seed", 0xdead);
  const std::vector<std::string> policies = split_list(args.get(
      "policies", "first-touch,history,freq-decay,write-history,oracle"));
  const std::vector<std::string> thread_counts =
      split_list(args.get("threads-list", "1,8"));
  const std::vector<std::string> rates = split_list(args.get("rates", "0,0.2"));
  const std::string model = args.get("model", "native");
  const std::uint32_t every =
      static_cast<std::uint32_t>(args.get_u64("checkpoint-every", 2));
  const std::string dir = args.get("dir", "chaos-ckpt");
  const bool write_csv = args.get_bool("csv", true);
  // The telemetry sink rides along on every run: reference, doomed child
  // (it dies before exporting; the checkpoint it leaves carries the
  // telemetry section) and the resumed run, each on its own trace track.
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);

  const workloads::WorkloadSpec spec = workloads::find_spec(workload, scale);
  sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
  cfg.tier1_frames = std::max<std::uint64_t>(
      1 << 9, (spec.total_bytes >> mem::kPageShift) / 4);
  cfg.tier2_frames =
      (spec.total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

  std::cout << "Chaos kill/resume: " << workload << ", " << epochs
            << " epochs x " << ops_per_epoch << " ops, checkpoint every "
            << every << "\n\n";
  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("chaos.csv");
    csv->write_row({"policy", "threads", "fault_rate", "kill_epoch",
                    "child_status", "resumed_identical"});
  }

  int failures = 0;
  std::uint64_t case_index = 0;
  for (const std::string& policy : policies) {
    for (const std::string& threads_str : thread_counts) {
      for (const std::string& rate_str : rates) {
        const auto n_threads =
            static_cast<std::uint32_t>(std::stoul(threads_str));
        const double rate = std::stod(rate_str);
        ++case_index;

        tiering::RunnerOptions opt;
        opt.policy = policy;
        opt.n_epochs = epochs;
        opt.ops_per_epoch = ops_per_epoch;
        opt.seed = seed;
        opt.slow_model = model == "badgertrap"
                             ? tiering::SlowMemoryModel::BadgerTrapEmulation
                             : tiering::SlowMemoryModel::Native;
        opt.daemon.driver.ibs = bench::scaled_ibs(4);
        opt.n_threads = n_threads;
        opt.mover.admission = bench::admission_from_args(args);
        opt.fault.rate = rate;
        opt.telemetry = telemetry.get();

        const std::string case_tag = "case-" + std::to_string(case_index) +
                                     "/" + policy;

        // Reference: uninterrupted, no checkpointing.
        opt.telemetry_label = case_tag + "/reference";
        const tiering::RunnerResult reference =
            tiering::EndToEndRunner::run(spec, cfg, opt);
        const std::string want = fingerprint(reference);

        // The kill epoch is a pure function of (kill seed, case index), in
        // [1, epochs - 1] so the child always dies mid-run.
        std::uint64_t mix = kill_seed + case_index;
        const std::uint32_t kill_epoch = static_cast<std::uint32_t>(
            1 + util::splitmix64(mix) % (epochs - 1));

        const std::string case_dir =
            dir + "/case-" + std::to_string(case_index);
        std::filesystem::remove_all(case_dir);
        std::filesystem::create_directories(case_dir);

        opt.checkpoint.every = every;
        opt.checkpoint.dir = case_dir;
        opt.checkpoint.basename = policy;

        const pid_t child = fork();
        if (child == 0) {
          tiering::RunnerOptions doomed = opt;
          doomed.telemetry_label = case_tag + "/doomed";
          doomed.on_epoch = [kill_epoch](std::uint32_t e) {
            if (e + 1 == kill_epoch) _exit(137);
          };
          (void)tiering::EndToEndRunner::run(spec, cfg, doomed);
          _exit(0);  // kill epoch never reached: config error
        }
        int status = 0;
        waitpid(child, &status, 0);
        const bool killed_as_planned =
            WIFEXITED(status) && WEXITSTATUS(status) == 137;

        // Resume from whatever the child left behind (possibly nothing,
        // when it died before the first checkpoint — cold-start path).
        opt.checkpoint.resume_latest = true;
        opt.telemetry_label = case_tag + "/resumed";
        const tiering::RunnerResult resumed =
            tiering::EndToEndRunner::run(spec, cfg, opt);
        const std::string got = fingerprint(resumed);

        const bool identical = killed_as_planned && got == want;
        if (!identical) ++failures;
        std::cout << (identical ? "  ok   " : "  FAIL ") << policy
                  << " threads=" << n_threads << " rate=" << rate_str
                  << " kill@" << kill_epoch
                  << (killed_as_planned ? "" : " (child not killed)") << "\n";
        if (!identical && killed_as_planned) {
          std::cout << "       want " << want << "\n       got  " << got
                    << "\n";
        }
        if (csv) {
          csv->write_row({policy, threads_str, rate_str,
                          std::to_string(kill_epoch), std::to_string(status),
                          identical ? "1" : "0"});
        }
      }
    }
  }
  std::cout << "\n"
            << (failures == 0 ? "All resumed runs bitwise identical."
                              : "MISMATCHES FOUND")
            << " (" << failures << " failing cases)\n";
  if (csv) std::cout << "Rows written to chaos.csv\n";
  if (telemetry) telemetry->export_final();
  return failures;
}
