/// Table IV — Count of pages captured by A-bit and IBS profiling at the
/// default, 4x, and 8x sampling rates, plus the "Both" column (pages with
/// at least a sample from each method within one collection epoch).
///
/// Expected shapes versus the paper:
///  * Huge-footprint random workloads (GUPS, XSBench, Graph-Analytics)
///    show IBS detecting many more pages than A-bit, and the gap grows
///    with the sampling rate.
///  * Cache-friendly service workloads (Web-Serving) show the reverse:
///    A-bit sees the (TLB-visible) working set while beyond-LLC samples
///    are scarce.
///  * "Both" is tiny everywhere.
///  * 4x captures roughly 2-3x more pages than default; 8x adds much less
///    over 4x (the paper's 2.58x / <40% observation).
///
/// Usage: table4_detected_pages [--workload=<name>] [--scale=F]
///        [--epochs=N] [--ops-per-epoch=N]

#include <array>
#include <iostream>

#include "common.hpp"
#include "core/page_stats.hpp"
#include "monitors/abit.hpp"
#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "util/table.hpp"

namespace {

using namespace tmprof;

struct RateResult {
  std::uint64_t abit = 0;
  std::uint64_t ibs = 0;
  std::uint64_t both = 0;
};

/// One run measures all three rates simultaneously: three independent IBS
/// monitors observe the same execution (statistically equivalent to the
/// paper's three runs, and 3x cheaper).
std::array<RateResult, 3> run_workload(const workloads::WorkloadSpec& spec,
                                       std::uint32_t epochs,
                                       std::uint64_t ops_per_epoch,
                                       std::uint64_t seed) {
  sim::System system(bench::testbed_config(spec.total_bytes));
  tiering::add_spec_processes(system, spec, seed);
  const std::uint64_t total_frames = system.phys().total_frames();

  const std::array<std::uint64_t, 3> multipliers{1, 4, 8};
  std::vector<std::unique_ptr<monitors::IbsMonitor>> monitors_;
  std::vector<core::PageStatsStore> stores;
  for (std::size_t r = 0; r < multipliers.size(); ++r) {
    monitors_.push_back(std::make_unique<monitors::IbsMonitor>(
        bench::scaled_ibs(multipliers[r]), system.config().cores, seed + r));
    stores.emplace_back(total_frames);
    system.add_observer(monitors_[r].get());
  }
  monitors::AbitScanner scanner{monitors::AbitConfig{}};

  // Install drains up front so buffer-full interrupts during execution also
  // land in the correct epoch. TMP's filter applies: demand loads whose
  // data source is beyond the LLC.
  std::uint32_t e = 0;
  for (std::size_t r = 0; r < multipliers.size(); ++r) {
    core::PageStatsStore& store = stores[r];
    monitors_[r]->set_drain(
        [&store, &e](std::span<const monitors::TraceSample> samples) {
          for (const auto& s : samples) {
            if (s.is_store || !mem::is_memory(s.source)) continue;
            store.record_trace(mem::pfn_of(s.paddr), e);
          }
        });
  }

  for (e = 0; e < epochs; ++e) {
    system.step(ops_per_epoch);
    for (auto& monitor : monitors_) monitor->drain();
    for (sim::Process* proc : system.processes()) {
      scanner.scan(proc->pid(), proc->page_table(),
                   [&](const monitors::AbitSample& sample) {
                     for (auto& store : stores) {
                       store.record_abit(sample.pfn, e);
                     }
                   });
    }
  }
  std::array<RateResult, 3> results;
  for (std::size_t r = 0; r < 3; ++r) {
    results[r].abit = stores[r].frames_with_abit();
    results[r].ibs = stores[r].frames_with_trace();
    results[r].both = stores[r].frames_with_both();
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 1'000'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Table IV: pages captured by A-bit vs IBS profiling\n"
            << "(IBS periods: default=" << bench::kScaledDefaultPeriod
            << " uops, 4x, 8x; " << epochs << " epochs x " << ops_per_epoch
            << " ops)\n\n";
  util::TextTable table({"workload", "abit(def)", "ibs(def)", "both(def)",
                         "abit(4x)", "ibs(4x)", "both(4x)", "abit(8x)",
                         "ibs(8x)", "both(8x)"});

  double sum_4x_gain = 0.0, sum_8x_gain = 0.0;
  int counted = 0;
  for (const auto& spec : bench::selected_specs(args)) {
    const auto r = run_workload(spec, epochs, ops_per_epoch, seed);
    table.add_row({spec.name, util::TextTable::num(r[0].abit),
                   util::TextTable::num(r[0].ibs),
                   util::TextTable::num(r[0].both),
                   util::TextTable::num(r[1].abit),
                   util::TextTable::num(r[1].ibs),
                   util::TextTable::num(r[1].both),
                   util::TextTable::num(r[2].abit),
                   util::TextTable::num(r[2].ibs),
                   util::TextTable::num(r[2].both)});
    if (r[0].ibs > 0 && r[1].ibs > 0) {
      sum_4x_gain += static_cast<double>(r[1].ibs) /
                     static_cast<double>(r[0].ibs);
      sum_8x_gain += static_cast<double>(r[2].ibs) /
                     static_cast<double>(r[1].ibs);
      ++counted;
    }
  }
  table.print(std::cout);
  if (counted > 0) {
    std::cout << "\nSampling-rate visibility (paper: 4x = 2.58x over "
                 "default; 8x < 1.4x over 4x):\n"
              << "  mean IBS pages 4x/default = "
              << util::TextTable::fixed(sum_4x_gain / counted, 2) << "x\n"
              << "  mean IBS pages 8x/4x      = "
              << util::TextTable::fixed(sum_8x_gain / counted, 2) << "x\n";
  }
  return 0;
}
