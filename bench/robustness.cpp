/// Robustness under injected faults (docs/ROBUSTNESS.md) — sweep the fault
/// rate across every fault site (migration EBUSY/ENOMEM, trace-buffer
/// overflow, A-bit scan aborts, HWPC counter wraps) and measure how far the
/// TMP-driven History policy degrades from its fault-free speedup over the
/// first-come-first-allocate baseline.
///
/// Expected shape: History degrades *gracefully* toward the first-touch
/// baseline — the retrying mover, the deferred-promotion queue and the
/// daemon's degradation ladder keep most of the speedup at moderate fault
/// rates (within ~30% of fault-free at rate 0.2) instead of collapsing.
/// The baseline is re-run at every rate so the comparison stays honest:
/// first-touch performs no migrations, so only its profiling side is
/// perturbed.
///
/// All runs are deterministic: the same --fault-seed reproduces the same
/// fault schedule bit-for-bit at any --threads value.
///
/// Usage: robustness [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--rates=0,0.05,...] [--fault-seed=N]
///        [--fault-sites=a,b] [--threads=N] [--csv=0|1]
///        [--metrics-out=F] [--trace-out=F] [--telemetry-every=N]
///
/// Storm mode (--storm; docs/ADMISSION.md): instead of fault sweeps, run
/// the migration-storm scenarios (phase-shift slot flipping, Zipf churn)
/// with the admission gate off and on, and report migrated bytes saved at
/// equal-or-better hitrate. `--storm-check=1` turns the >=20%-savings
/// criterion into the exit code (CI gates on it).

#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "tiering/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"

namespace {

std::vector<double> parse_rates(const std::string& csv_list) {
  std::vector<double> rates;
  std::stringstream ss(csv_list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double rate = std::stod(item);
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("--rates entries must be in [0, 1], got " +
                                  item);
    }
    rates.push_back(rate);
  }
  if (rates.empty() || rates.front() != 0.0) {
    rates.insert(rates.begin(), 0.0);  // rate 0 anchors the degradation
  }
  return rates;
}

struct StormScenario {
  std::string name;
  std::uint64_t footprint;
  std::uint64_t tier1_frames;
  tmprof::tiering::WorkloadFactory factory;
};

/// The storm scenarios. Both are sized so tier 1 holds the genuinely-hot
/// working set with no slack for churn, which is exactly when an ungated
/// mover thrashes.
std::vector<StormScenario> storm_scenarios(std::uint64_t ops_per_epoch) {
  using namespace tmprof;
  constexpr std::uint64_t kMiB = 1ULL << 20;
  std::vector<StormScenario> scenarios;

  // Phase-shift: 4 MiB stable region plus two 4 MiB slots, the hot slot
  // flipping every epoch. Tier 1 holds stable + one slot: each flip makes
  // the ungated mover demote the old slot and promote the new one.
  scenarios.push_back(StormScenario{
      "phase-shift", 12 * kMiB, (8 * kMiB) >> mem::kPageShift,
      [ops_per_epoch](std::uint64_t seed) {
        std::vector<workloads::WorkloadPtr> v;
        v.push_back(std::make_unique<workloads::PhaseShiftWorkload>(
            4 * kMiB, 4 * kMiB, 2, ops_per_epoch, 0.5, seed));
        return v;
      }});

  // Zipf churn: the skewed head slides by 1/8 of the records every two
  // epochs, so mid-rank pages heat up and die in bursts.
  scenarios.push_back(StormScenario{
      "zipf-churn", 16 * kMiB, (4 * kMiB) >> mem::kPageShift,
      [ops_per_epoch](std::uint64_t seed) {
        std::vector<workloads::WorkloadPtr> v;
        const std::uint64_t records = (16 * kMiB) / 4096;
        v.push_back(std::make_unique<workloads::ZipfChurnWorkload>(
            16 * kMiB, 4096, 0.9, 2 * ops_per_epoch, records / 8, seed));
        return v;
      }});
  return scenarios;
}

int storm_main(const tmprof::util::ArgParser& args) {
  using namespace tmprof;
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 12));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 200'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double time_scale = args.get_double("time-scale", 20.0);
  const bool write_csv = args.get_bool("csv", true);
  const bool check = args.get_bool("storm-check", false);
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);

  // The comparison needs the gate on: an explicit --admission=off would
  // compare off against off, so Static stands in as the storm default.
  tiering::AdmissionConfig adm = bench::admission_from_args(args);
  if (adm.mode == tiering::AdmissionMode::Off) {
    adm.mode = tiering::AdmissionMode::Static;
  }

  std::cout << "Migration storms: admission off vs "
            << to_string(adm.mode) << " (" << epochs << " epochs x "
            << ops_per_epoch << " ops)\n\n";
  util::TextTable table({"scenario", "admission", "hitrate", "migrations",
                         "moved_mb", "rejected", "cooled", "shed",
                         "saved_pct", "hitrate_delta"});
  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("storm.csv");
    csv->write_row(bench::storm_csv_header());
  }

  bool storm_ok = false;
  for (const StormScenario& scenario : storm_scenarios(ops_per_epoch)) {
    sim::SimConfig cfg = bench::testbed_config(scenario.footprint);
    cfg.tier1_frames = scenario.tier1_frames;
    cfg.tier2_frames =
        (scenario.footprint >> mem::kPageShift) * 5 / 4 + (1 << 14);

    tiering::RunnerOptions opt;
    opt.n_epochs = epochs;
    opt.ops_per_epoch = ops_per_epoch;
    opt.seed = seed;
    opt.policy = args.get("policy", "history");
    opt.daemon.driver.ibs = bench::scaled_ibs(4);
    opt.mover.per_page_cost_ns =
        static_cast<util::SimNs>(50.0 * 1000.0 / time_scale);
    opt.mover.min_rank = args.get_u64("min-rank", 3);
    opt.n_threads = bench::selected_threads(args);
    opt.telemetry = telemetry.get();

    opt.telemetry_label = scenario.name + "/off";
    const tiering::RunnerResult off =
        tiering::EndToEndRunner::run(scenario.factory, cfg, opt);
    opt.mover.admission = adm;
    opt.telemetry_label = scenario.name + "/" + std::string(to_string(adm.mode));
    const tiering::RunnerResult gated =
        tiering::EndToEndRunner::run(scenario.factory, cfg, opt);
    opt.mover.admission = tiering::AdmissionConfig{};

    const double off_mb =
        static_cast<double>(off.moves.moved_bytes) / 1e6;
    const double gated_mb =
        static_cast<double>(gated.moves.moved_bytes) / 1e6;
    const double saved_pct =
        off.moves.moved_bytes == 0
            ? 0.0
            : 100.0 * (1.0 - gated_mb / off_mb);
    const double hit_delta = gated.tier1_hitrate - off.tier1_hitrate;
    if (saved_pct >= 20.0 && hit_delta >= -1e-9) storm_ok = true;

    auto emit = [&](const tiering::RunnerResult& r, const std::string& mode,
                    double saved, double delta) {
      table.add_row({scenario.name, mode,
                     util::TextTable::percent(r.tier1_hitrate),
                     util::TextTable::num(r.migrations),
                     util::TextTable::fixed(
                         static_cast<double>(r.moves.moved_bytes) / 1e6, 2),
                     util::TextTable::num(r.moves.rejected),
                     util::TextTable::num(r.moves.cooled),
                     util::TextTable::num(r.moves.shed),
                     util::TextTable::fixed(saved, 1),
                     util::TextTable::fixed(delta, 4)});
      if (csv) {
        csv->write_row(
            {scenario.name, mode,
             std::to_string(r.runtime_ns / util::kMillisecond),
             util::TextTable::fixed(r.tier1_hitrate, 4),
             std::to_string(r.migrations),
             util::TextTable::fixed(
                 static_cast<double>(r.moves.moved_bytes) / 1e6, 3),
             std::to_string(r.moves.rejected),
             std::to_string(r.moves.cooled), std::to_string(r.moves.shed),
             std::to_string(r.degrade.throttled_epochs),
             util::TextTable::fixed(saved, 2),
             util::TextTable::fixed(delta, 6)});
      }
    };
    emit(off, "off", 0.0, 0.0);
    emit(gated, std::string(to_string(adm.mode)), saved_pct, hit_delta);
  }

  table.print(std::cout);
  std::cout << "\nStorm resilience (>=20% fewer migrated bytes at "
               "equal-or-better hitrate in >=1 scenario): "
            << (storm_ok ? "yes" : "NO") << '\n';
  if (csv) std::cout << "Rows written to storm.csv\n";
  if (telemetry) telemetry->export_final();
  return (check && !storm_ok) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  if (args.get_bool("storm", false)) return storm_main(args);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 400'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double time_scale = args.get_double("time-scale", 20.0);
  const bool write_csv = args.get_bool("csv", true);
  const std::vector<double> rates =
      parse_rates(args.get("rates", "0,0.05,0.1,0.2,0.4"));
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);
  auto scaled_ns = [time_scale](double paper_us) {
    return static_cast<util::SimNs>(paper_us * 1000.0 / time_scale);
  };

  std::cout << "Robustness: speedup degradation under injected faults\n"
            << "(" << epochs << " epochs x " << ops_per_epoch
            << " ops; sites: " << args.get("fault-sites", "all")
            << "; fault seed " << args.get_u64("fault-seed", 0xfa17)
            << ")\n\n";
  util::TextTable table({"workload", "fault_rate", "speedup", "hitrate",
                         "migrations", "retried", "deferred", "aborted",
                         "no_room", "trace_drop", "scan_abort", "wraps",
                         "pinned"});
  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("robustness.csv");
    csv->write_row(bench::robustness_csv_header());
  }

  bool graceful = true;
  for (const auto& spec : bench::selected_specs(args)) {
    sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
    // Fast tier sized to a quarter of the footprint so placement matters at
    // any --scale (the degradation study needs migration pressure, not the
    // paper's absolute tier sizes); the slow tier absorbs the rest.
    cfg.tier1_frames = std::max<std::uint64_t>(
        1 << 9, (spec.total_bytes >> mem::kPageShift) / 4);
    cfg.tier2_frames =
        (spec.total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

    double fault_free_speedup = 0.0;
    for (const double rate : rates) {
      tiering::RunnerOptions opt;
      opt.n_epochs = epochs;
      opt.ops_per_epoch = ops_per_epoch;
      opt.seed = seed;
      opt.daemon.driver.ibs = bench::scaled_ibs(4);
      opt.mover.per_page_cost_ns = scaled_ns(50.0);
      opt.mover.min_rank = args.get_u64("min-rank", 3);
      opt.n_threads = bench::selected_threads(args);
      opt.mover.admission = bench::admission_from_args(args);
      opt.fault = bench::fault_from_args(args);
      opt.fault.rate = rate;
      opt.telemetry = telemetry.get();

      const std::string rate_tag = util::TextTable::fixed(rate, 2);
      opt.policy = "first-touch";
      opt.telemetry_label = spec.name + "@" + rate_tag + "/first-touch";
      const tiering::RunnerResult base =
          tiering::EndToEndRunner::run(spec, cfg, opt);
      opt.policy = "history";
      opt.telemetry_label = spec.name + "@" + rate_tag + "/history";
      const tiering::RunnerResult tmp =
          tiering::EndToEndRunner::run(spec, cfg, opt);
      const double speedup = static_cast<double>(base.runtime_ns) /
                             static_cast<double>(tmp.runtime_ns);
      if (rate == 0.0) fault_free_speedup = speedup;

      table.add_row({spec.name, util::TextTable::fixed(rate, 2),
                     util::TextTable::fixed(speedup, 3),
                     util::TextTable::percent(tmp.tier1_hitrate),
                     util::TextTable::num(tmp.migrations),
                     util::TextTable::num(tmp.moves.retried),
                     util::TextTable::num(tmp.moves.deferred),
                     util::TextTable::num(tmp.moves.aborted),
                     util::TextTable::num(tmp.moves.no_room),
                     util::TextTable::num(tmp.degrade.trace_dropped),
                     util::TextTable::num(tmp.degrade.scans_aborted),
                     util::TextTable::num(tmp.degrade.hwpc_wraps),
                     util::TextTable::num(tmp.degrade.pinned_epochs)});
      if (csv) {
        for (const auto* r : {&base, &tmp}) {
          csv->write_row(
              {spec.name, util::TextTable::fixed(rate, 3),
               r == &base ? "first-touch" : "history",
               std::to_string(r->runtime_ns / util::kMillisecond),
               util::TextTable::fixed(
                   static_cast<double>(base.runtime_ns) /
                       static_cast<double>(r->runtime_ns),
                   4),
               util::TextTable::fixed(r->tier1_hitrate, 4),
               std::to_string(r->migrations),
               std::to_string(r->moves.retried),
               std::to_string(r->moves.deferred),
               std::to_string(r->moves.aborted),
               std::to_string(r->moves.no_room),
               std::to_string(r->degrade.trace_dropped),
               std::to_string(r->degrade.scans_aborted),
               std::to_string(r->degrade.hwpc_wraps),
               std::to_string(r->degrade.pinned_epochs),
               std::to_string(r->degrade.fallback_epochs)});
        }
      }
      // Graceful-degradation criterion: at rate <= 0.2 the History speedup
      // stays within 30% of its fault-free value.
      if (rate > 0.0 && rate <= 0.2 && fault_free_speedup > 0.0) {
        const double drop = (fault_free_speedup - speedup) / fault_free_speedup;
        if (drop > 0.30) graceful = false;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nGraceful degradation (<=30% speedup loss at rate 0.2): "
            << (graceful ? "yes" : "NO") << '\n';
  if (csv) std::cout << "Rows written to robustness.csv\n";
  if (telemetry) telemetry->export_final();
  return 0;
}
