/// Robustness under injected faults (docs/ROBUSTNESS.md) — sweep the fault
/// rate across every fault site (migration EBUSY/ENOMEM, trace-buffer
/// overflow, A-bit scan aborts, HWPC counter wraps) and measure how far the
/// TMP-driven History policy degrades from its fault-free speedup over the
/// first-come-first-allocate baseline.
///
/// Expected shape: History degrades *gracefully* toward the first-touch
/// baseline — the retrying mover, the deferred-promotion queue and the
/// daemon's degradation ladder keep most of the speedup at moderate fault
/// rates (within ~30% of fault-free at rate 0.2) instead of collapsing.
/// The baseline is re-run at every rate so the comparison stays honest:
/// first-touch performs no migrations, so only its profiling side is
/// perturbed.
///
/// All runs are deterministic: the same --fault-seed reproduces the same
/// fault schedule bit-for-bit at any --threads value.
///
/// Usage: robustness [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--rates=0,0.05,...] [--fault-seed=N]
///        [--fault-sites=a,b] [--threads=N] [--csv=0|1]
///        [--metrics-out=F] [--trace-out=F] [--telemetry-every=N]

#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "tiering/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

std::vector<double> parse_rates(const std::string& csv_list) {
  std::vector<double> rates;
  std::stringstream ss(csv_list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double rate = std::stod(item);
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("--rates entries must be in [0, 1], got " +
                                  item);
    }
    rates.push_back(rate);
  }
  if (rates.empty() || rates.front() != 0.0) {
    rates.insert(rates.begin(), 0.0);  // rate 0 anchors the degradation
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 8));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 400'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double time_scale = args.get_double("time-scale", 20.0);
  const bool write_csv = args.get_bool("csv", true);
  const std::vector<double> rates =
      parse_rates(args.get("rates", "0,0.05,0.1,0.2,0.4"));
  const std::unique_ptr<telemetry::Telemetry> telemetry =
      bench::telemetry_from_args(args);
  auto scaled_ns = [time_scale](double paper_us) {
    return static_cast<util::SimNs>(paper_us * 1000.0 / time_scale);
  };

  std::cout << "Robustness: speedup degradation under injected faults\n"
            << "(" << epochs << " epochs x " << ops_per_epoch
            << " ops; sites: " << args.get("fault-sites", "all")
            << "; fault seed " << args.get_u64("fault-seed", 0xfa17)
            << ")\n\n";
  util::TextTable table({"workload", "fault_rate", "speedup", "hitrate",
                         "migrations", "retried", "deferred", "aborted",
                         "no_room", "trace_drop", "scan_abort", "wraps",
                         "pinned"});
  std::unique_ptr<util::CsvWriter> csv;
  if (write_csv) {
    csv = std::make_unique<util::CsvWriter>("robustness.csv");
    csv->write_row(bench::robustness_csv_header());
  }

  bool graceful = true;
  for (const auto& spec : bench::selected_specs(args)) {
    sim::SimConfig cfg = bench::testbed_config(spec.total_bytes);
    // Fast tier sized to a quarter of the footprint so placement matters at
    // any --scale (the degradation study needs migration pressure, not the
    // paper's absolute tier sizes); the slow tier absorbs the rest.
    cfg.tier1_frames = std::max<std::uint64_t>(
        1 << 9, (spec.total_bytes >> mem::kPageShift) / 4);
    cfg.tier2_frames =
        (spec.total_bytes >> mem::kPageShift) * 5 / 4 + (1 << 14);

    double fault_free_speedup = 0.0;
    for (const double rate : rates) {
      tiering::RunnerOptions opt;
      opt.n_epochs = epochs;
      opt.ops_per_epoch = ops_per_epoch;
      opt.seed = seed;
      opt.daemon.driver.ibs = bench::scaled_ibs(4);
      opt.mover.per_page_cost_ns = scaled_ns(50.0);
      opt.mover.min_rank = args.get_u64("min-rank", 3);
      opt.n_threads = bench::selected_threads(args);
      opt.fault = bench::fault_from_args(args);
      opt.fault.rate = rate;
      opt.telemetry = telemetry.get();

      const std::string rate_tag = util::TextTable::fixed(rate, 2);
      opt.policy = "first-touch";
      opt.telemetry_label = spec.name + "@" + rate_tag + "/first-touch";
      const tiering::RunnerResult base =
          tiering::EndToEndRunner::run(spec, cfg, opt);
      opt.policy = "history";
      opt.telemetry_label = spec.name + "@" + rate_tag + "/history";
      const tiering::RunnerResult tmp =
          tiering::EndToEndRunner::run(spec, cfg, opt);
      const double speedup = static_cast<double>(base.runtime_ns) /
                             static_cast<double>(tmp.runtime_ns);
      if (rate == 0.0) fault_free_speedup = speedup;

      table.add_row({spec.name, util::TextTable::fixed(rate, 2),
                     util::TextTable::fixed(speedup, 3),
                     util::TextTable::percent(tmp.tier1_hitrate),
                     util::TextTable::num(tmp.migrations),
                     util::TextTable::num(tmp.moves.retried),
                     util::TextTable::num(tmp.moves.deferred),
                     util::TextTable::num(tmp.moves.aborted),
                     util::TextTable::num(tmp.moves.no_room),
                     util::TextTable::num(tmp.degrade.trace_dropped),
                     util::TextTable::num(tmp.degrade.scans_aborted),
                     util::TextTable::num(tmp.degrade.hwpc_wraps),
                     util::TextTable::num(tmp.degrade.pinned_epochs)});
      if (csv) {
        for (const auto* r : {&base, &tmp}) {
          csv->write_row(
              {spec.name, util::TextTable::fixed(rate, 3),
               r == &base ? "first-touch" : "history",
               std::to_string(r->runtime_ns / util::kMillisecond),
               util::TextTable::fixed(
                   static_cast<double>(base.runtime_ns) /
                       static_cast<double>(r->runtime_ns),
                   4),
               util::TextTable::fixed(r->tier1_hitrate, 4),
               std::to_string(r->migrations),
               std::to_string(r->moves.retried),
               std::to_string(r->moves.deferred),
               std::to_string(r->moves.aborted),
               std::to_string(r->moves.no_room),
               std::to_string(r->degrade.trace_dropped),
               std::to_string(r->degrade.scans_aborted),
               std::to_string(r->degrade.hwpc_wraps),
               std::to_string(r->degrade.pinned_epochs),
               std::to_string(r->degrade.fallback_epochs)});
        }
      }
      // Graceful-degradation criterion: at rate <= 0.2 the History speedup
      // stays within 30% of its fault-free value.
      if (rate > 0.0 && rate <= 0.2 && fault_free_speedup > 0.0) {
        const double drop = (fault_free_speedup - speedup) / fault_free_speedup;
        if (drop > 0.30) graceful = false;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nGraceful degradation (<=30% speedup loss at rate 0.2): "
            << (graceful ? "yes" : "NO") << '\n';
  if (csv) std::cout << "Rows written to robustness.csv\n";
  if (telemetry) telemetry->export_final();
  return 0;
}
