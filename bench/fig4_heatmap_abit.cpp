/// Fig. 4 — Heatmap of workload memory accesses observed through PTE A-bit
/// profiling: each periodic page-table scan contributes one unit of
/// temperature per page found accessed since the previous scan.
///
/// Complementary to Fig. 3: the A-bit view shows the *address-translation*
/// working set (everything TLB misses reach) at page granularity, with no
/// sampling sparsity but also no access-count resolution within a scan.
///
/// Usage: fig4_heatmap_abit [--workload=<name>] [--scale=F] [--epochs=N]
///        [--ops-per-epoch=N] [--csv=0|1]

#include <fstream>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "monitors/abit.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint32_t epochs =
      static_cast<std::uint32_t>(args.get_u64("epochs", 48));
  const std::uint64_t ops_per_epoch = args.get_u64("ops-per-epoch", 100'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const bool write_csv = args.get_bool("csv", true);
  const std::size_t addr_bins = args.get_u64("addr-bins", 24);

  std::cout << "Fig. 4: access heatmaps from A-bit scans (one scan per "
            << ops_per_epoch << "-op interval)\n\n";
  for (const auto& spec : bench::selected_specs(args)) {
    sim::System system(bench::testbed_config(spec.total_bytes));
    tiering::add_spec_processes(system, spec, seed);
    monitors::AbitScanner scanner{monitors::AbitConfig{}};

    // One heatmap column per scan interval.
    const std::uint64_t addr_hi =
        system.phys().total_frames() << mem::kPageShift;
    util::Heatmap heatmap(epochs, epochs, addr_hi, addr_bins);
    std::uint64_t observations = 0;
    for (std::uint32_t e = 0; e < epochs; ++e) {
      system.step(ops_per_epoch);
      for (sim::Process* proc : system.processes()) {
        scanner.scan(proc->pid(), proc->page_table(),
                     [&](const monitors::AbitSample& sample) {
                       // Weight huge pages by their 4 KiB span so the two
                       // figures share a color scale.
                       heatmap.add(e, sample.pfn << mem::kPageShift,
                                   mem::pages_in(sample.size));
                       ++observations;
                     });
      }
    }
    std::cout << "== " << spec.name << " (" << observations
              << " page observations over " << epochs << " scans) ==\n"
              << heatmap.render_ascii() << '\n';
    if (write_csv) {
      std::ofstream csv("fig4_" + spec.name + ".csv");
      heatmap.write_csv(csv);
    }
  }
  if (write_csv) std::cout << "Full grids written to fig4_<workload>.csv\n";
  return 0;
}
