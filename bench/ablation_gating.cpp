/// Ablation — activity gating (DESIGN.md §5, the paper's Section III-B4
/// optimization 1 and its 20%-of-max threshold). A bursty scenario
/// alternates busy and idle phases; the sweep shows how the gate threshold
/// trades profiling work avoided (scans skipped while idle) against
/// samples missed when activity resumes.
///
/// Usage: ablation_gating [--scale=F] [--bursts=N] [--ops-per-phase=N]

#include <iostream>

#include "common.hpp"
#include "core/daemon.hpp"
#include "tiering/epoch.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace tmprof;

struct GateOutcome {
  std::uint32_t scans_run = 0;
  std::uint32_t scans_total = 0;
  std::uint64_t pages_observed = 0;
  util::SimNs overhead_ns = 0;
};

GateOutcome run(double threshold, bool enabled, std::uint32_t bursts,
                std::uint64_t ops_per_phase, std::uint64_t seed) {
  const auto spec = workloads::find_spec("data_caching", 0.25);
  sim::System system(bench::testbed_config(spec.total_bytes));
  tiering::add_spec_processes(system, spec, seed);
  core::DaemonConfig cfg;
  cfg.driver.ibs = bench::scaled_ibs(4);
  cfg.gating_enabled = enabled;
  if (enabled) cfg.gate_threshold = threshold;
  core::TmpDaemon daemon(system, cfg);

  GateOutcome outcome;
  for (std::uint32_t burst = 0; burst < bursts; ++burst) {
    // Busy phase: one tick's worth of work.
    system.step(ops_per_phase);
    core::ProfileSnapshot snap = daemon.tick();
    ++outcome.scans_total;
    outcome.scans_run += snap.abit_ran ? 1 : 0;
    outcome.pages_observed += snap.observation.abit.size();
    // Idle phase: time passes, no memory traffic (service tail, think
    // time). The gate should turn profiling off here.
    for (int idle = 0; idle < 3; ++idle) {
      system.advance_time(50 * util::kMillisecond);
      snap = daemon.tick();
      ++outcome.scans_total;
      outcome.scans_run += snap.abit_ran ? 1 : 0;
      outcome.pages_observed += snap.observation.abit.size();
    }
  }
  outcome.overhead_ns = daemon.driver().overhead_ns();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::uint32_t bursts =
      static_cast<std::uint32_t>(args.get_u64("bursts", 5));
  const std::uint64_t ops_per_phase = args.get_u64("ops-per-phase", 400'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Ablation: activity-gate threshold on a bursty service\n"
            << "(data_caching; each burst = 1 busy tick + 3 idle ticks)\n\n";
  util::TextTable table({"gate", "scans run", "pages observed",
                         "profiling cost (us)"});

  const GateOutcome off = run(0.0, false, bursts, ops_per_phase, seed);
  table.add_row({"off",
                 util::TextTable::num(off.scans_run) + "/" +
                     util::TextTable::num(off.scans_total),
                 util::TextTable::num(off.pages_observed),
                 util::TextTable::num(off.overhead_ns / 1000)});
  for (const double threshold : {0.05, 0.2, 0.5}) {
    const GateOutcome g = run(threshold, true, bursts, ops_per_phase, seed);
    table.add_row({"thr=" + util::TextTable::fixed(threshold, 2),
                   util::TextTable::num(g.scans_run) + "/" +
                       util::TextTable::num(g.scans_total),
                   util::TextTable::num(g.pages_observed),
                   util::TextTable::num(g.overhead_ns / 1000)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the paper's 0.2 threshold skips nearly all idle "
               "scans at no visibility loss (idle scans observe nothing "
               "anyway); higher thresholds start skipping busy scans.\n";
  return 0;
}
