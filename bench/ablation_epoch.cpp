/// Ablation — epoch length (DESIGN.md §5). The paper's policies are
/// epoch-based "because hotness rankings must be accumulated over a period
/// of time to justify migration cost"; this sweep quantifies the tension:
/// short epochs react faster but rank from fewer samples, long epochs rank
/// well but lag phase changes.
///
/// Usage: ablation_epoch [--workload=<name>] [--scale=F] [--total-ops=N]

#include <iostream>

#include "common.hpp"
#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tmprof;
  const util::ArgParser args(argc, argv);
  const std::uint64_t total_ops = args.get_u64("total-ops", 4'800'000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  std::cout << "Ablation: epoch length vs History hitrate (total ops fixed "
            << "at " << total_ops << ")\n\n";

  for (const auto& spec : bench::selected_specs(args)) {
    util::TextTable table({"ops/epoch", "epochs", "samples/epoch",
                           "hitrate@1/8", "hitrate@1/32", "promotions"});
    for (const std::uint64_t ops_per_epoch :
         {150'000ULL, 300'000ULL, 600'000ULL, 1'200'000ULL, 2'400'000ULL}) {
      tiering::CollectOptions collect;
      collect.n_epochs =
          static_cast<std::uint32_t>(total_ops / ops_per_epoch);
      if (collect.n_epochs < 2) continue;
      collect.ops_per_epoch = ops_per_epoch;
      collect.seed = seed;
      collect.daemon.driver.ibs = bench::scaled_ibs(4);
      collect.n_threads = bench::selected_threads(args);
      const tiering::EpochSeries series = tiering::collect_series(
          spec, bench::testbed_config(spec.total_bytes), collect);

      double samples = 0;
      for (const tiering::EpochData& data : series.epochs) {
        for (const auto& [key, count] : data.observed.trace) samples += count;
        for (const auto& [key, count] : data.observed.abit) samples += count;
      }
      samples /= static_cast<double>(series.epochs.size());

      std::vector<std::string> row{
          util::TextTable::num(ops_per_epoch),
          util::TextTable::num(collect.n_epochs),
          util::TextTable::fixed(samples, 0)};
      std::uint64_t promotions = 0;
      for (std::uint64_t div : {8ULL, 32ULL}) {
        tiering::HitrateOptions opt;
        opt.capacity_frames =
            std::max<std::uint64_t>(1, series.footprint_frames / div);
        tiering::HistoryPolicy history;
        const tiering::HitrateResult r =
            tiering::evaluate_policy(history, series, opt);
        row.push_back(util::TextTable::percent(r.overall));
        promotions = r.promotions;
      }
      row.push_back(util::TextTable::num(promotions));
      table.add_row(row);
    }
    std::cout << "== " << spec.name << " ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected: two forces trade off. Short epochs react faster "
               "(History lags one epoch, and placement updates more often "
               "within the fixed op budget) but rank from fewer samples; "
               "long epochs rank confidently but adapt rarely. Churning "
               "workloads favor short epochs, stationary ones the knee.\n";
  return 0;
}
