#pragma once
/// \file topology_common.hpp
/// Shared N-tier chain replay for bench/topology and bench/three_tier
/// (docs/TOPOLOGY.md). One function drives a workload over an arbitrary
/// tier ladder with the TMP profiler feeding a waterfall page mover; the
/// historical three_tier comparison is the two-point special case.

#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/daemon.hpp"
#include "pmu/events.hpp"
#include "tiering/epoch.hpp"
#include "tiering/mover.hpp"

namespace tmprof::bench {

struct ChainOptions {
  std::uint32_t epochs = 8;
  std::uint64_t ops_per_epoch = 500'000;
  std::uint64_t seed = 42;
  /// IBS rate multiplier (scaled_ibs); 4 matches the historical
  /// three_tier bench, 1 is the paper-default (sparsest) period where the
  /// always-on device counters add the most information.
  std::uint64_t ibs_rate = 4;
  core::FusionMode fusion = core::FusionMode::Sum;
  monitors::DevMonConfig devmon{};  ///< disabled by default
  double devmon_weight = 1.0;
  /// Scale migration cost by tier distance (MoverConfig::hop_scaled_cost).
  /// bench/three_tier turns this off: the historical bench charged a flat
  /// per-move cost, and its default table must stay byte-identical.
  bool hop_scaled_cost = true;
};

struct ChainRun {
  util::SimNs runtime_ns = 0;
  double dram_hitrate = 0.0;  ///< fills served by tier 0 / all fills
  std::uint64_t migrations = 0;
  std::uint64_t promoted = 0;
  std::uint64_t demoted = 0;
  std::uint64_t devmon_reported = 0;  ///< device top-K entries drained
  std::vector<std::uint64_t> tier_fills;  ///< per tier, fastest first
};

/// Replay `spec` over `tiers` (fastest first). Matches the historical
/// three_tier loop bit-for-bit when devmon is off: the scaled-4x IBS
/// profiler ticks each epoch, a two-tier chain reconciles through
/// PageMover::apply and longer chains through apply_tiers, with 64 spare
/// frames per bounded tier so reconciliation can stage exchanges.
inline ChainRun run_chain(const workloads::WorkloadSpec& spec,
                          const std::vector<mem::TierSpec>& tiers,
                          const ChainOptions& opt) {
  sim::SimConfig cfg = testbed_config(spec.total_bytes);
  cfg.tiers = tiers;
  sim::System system(cfg);
  tiering::add_spec_processes(system, spec, opt.seed);

  core::DaemonConfig dcfg;
  dcfg.driver.ibs = scaled_ibs(opt.ibs_rate);
  dcfg.driver.devmon = opt.devmon;
  dcfg.fusion = opt.fusion;
  dcfg.devmon_weight = opt.devmon_weight;
  core::TmpDaemon daemon(system, dcfg);

  tiering::MoverConfig mcfg;
  mcfg.per_page_cost_ns = 2500;
  mcfg.hop_scaled_cost = opt.hop_scaled_cost;
  mcfg.min_rank = 3;
  tiering::PageMover mover(system, mcfg);

  std::vector<std::uint64_t> capacities;
  for (std::size_t t = 0; t + 1 < tiers.size(); ++t) {
    capacities.push_back(tiers[t].frames - 64);
  }

  ChainRun result;
  for (std::uint32_t e = 0; e < opt.epochs; ++e) {
    system.step(opt.ops_per_epoch);
    const core::ProfileSnapshot snap = daemon.tick();
    const tiering::MoveStats moved =
        tiers.size() == 2 ? mover.apply(snap.ranking, capacities[0])
                          : mover.apply_tiers(snap.ranking, capacities);
    result.migrations += moved.promoted + moved.demoted;
    result.promoted += moved.promoted;
    result.demoted += moved.demoted;
  }
  const std::uint64_t t1 = system.pmu().truth_total(pmu::Event::MemReadTier1);
  const std::uint64_t t2 = system.pmu().truth_total(pmu::Event::MemReadTier2);
  result.dram_hitrate = (t1 + t2) == 0 ? 1.0
                                       : static_cast<double>(t1) /
                                             static_cast<double>(t1 + t2);
  result.runtime_ns = system.now();
  result.tier_fills.assign(tiers.size(), 0);
  for (const sim::Process* p : system.processes()) {
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      result.tier_fills[t] += p->tier_fills(static_cast<mem::TierId>(t));
    }
  }
  if (daemon.driver().devmon() != nullptr) {
    result.devmon_reported = daemon.driver().devmon()->reported();
  }
  return result;
}

/// The historical testbed ladders: 32 MiB of DRAM, an optional 64 MiB
/// CXL-class middle tier, and an NVM-class tier big enough for the whole
/// footprint (so nothing ever fails to allocate).
inline std::uint64_t chain_dram_frames() {
  return (32ULL << 20) >> mem::kPageShift;
}
inline std::uint64_t chain_backing_frames(
    const workloads::WorkloadSpec& spec) {
  return (spec.total_bytes >> mem::kPageShift) * 5 / 4 + 4096;
}

inline std::vector<mem::TierSpec> two_tier_chain(
    const workloads::WorkloadSpec& spec) {
  return {mem::TierSpec{"dram", chain_dram_frames(), 80, 80, 0},
          mem::TierSpec{"nvm", chain_backing_frames(spec), 300, 600, 0}};
}

inline std::vector<mem::TierSpec> three_tier_chain(
    const workloads::WorkloadSpec& spec) {
  return {mem::TierSpec{"dram", chain_dram_frames(), 80, 80, 0},
          mem::TierSpec{"cxl", (64ULL << 20) >> mem::kPageShift, 150, 200, 0},
          mem::TierSpec{"nvm", chain_backing_frames(spec), 300, 600, 0}};
}

inline std::vector<mem::TierSpec> four_tier_chain(
    const workloads::WorkloadSpec& spec) {
  return {mem::TierSpec{"dram", chain_dram_frames(), 80, 80, 0},
          mem::TierSpec{"cxl", (48ULL << 20) >> mem::kPageShift, 150, 200, 0},
          mem::TierSpec{"nvm", (96ULL << 20) >> mem::kPageShift, 300, 600, 0},
          mem::TierSpec{"cold", chain_backing_frames(spec), 900, 1800, 0}};
}

}  // namespace tmprof::bench
