/// Hot-path microbenchmark — the tracked performance baseline for the
/// allocation-free epoch loop (docs/PERFORMANCE.md).
///
/// Three sections, each reported as ops/sec at several page footprints:
///  * collector_merge — insert-or-increment a page-counter map with a
///    skewed key stream and close the epoch (the TruthCollector /
///    EpochObservation accumulation pattern),
///  * ranking_build — produce the ranking prefix policies consume each
///    epoch: new pipeline (flat merge + top-K selection) vs old pipeline
///    (unordered_map merge + full sort). ranking_full pins both engines
///    to the full sort for the engine-only delta,
///  * step_parallel — end-to-end simulator steps with a TruthCollector
///    attached (the flat engine in its natural habitat; no std variant
///    since the simulator no longer has one).
///
/// `--engine=flat|std|both` selects the map engine: `flat` is the
/// open-addressing util::FlatHashMap the hot path uses; `std` is an
/// std::unordered_map reference implementing the identical accumulation
/// and merge logic. `both` (default) runs the two back to back and
/// reports flat-over-std speedups — the acceptance bar is >= 2x on
/// collector_merge and ranking_build.
///
/// Results go to stdout (human table) and BENCH_hotpath.json (tracked
/// schema: {section, pages, engine, ops, seconds, ops_per_sec} rows plus
/// a speedups array).
///
/// A fourth section sweeps the sketch-mode hotness store (docs/SKETCH.md)
/// over a memory-vs-accuracy grid: width/depth x footprint on a Zipf
/// stream, reporting top-64 overlap against the exact store, Spearman rank
/// correlation over the exact top-256, and bytes per tracked page. Rows go
/// into the JSON as a separate `sketch_accuracy` array; the headline
/// acceptance point is >= 95% top-64 overlap at <= 1/8 of the exact
/// store's bytes.
///
/// A fifth section (`ring_transport`, docs/STREAMING.md) compares the
/// barrier-critical-path merge time of the two sample handoffs, sweeping
/// lanes x pages: `barrier` replays the swap-and-clear protocol (all lane
/// buffers merge + top-K build inside the barrier), `stream` pushes the
/// same records through per-lane SpscRings with an interleaved pump (the
/// work that overlaps shard execution in the real engine, so it is
/// untimed) and times only the drain-and-seal residue. Both engines
/// produce the identical top-K (checksummed); rows land in the JSON as a
/// `ring_transport` array with `ring_speedups` ratios. The acceptance bar
/// is >= 1.5x at 8 lanes.
///
/// Usage: micro_hotpath [--engine=flat|std|both] [--epochs=N]
///        [--touches-per-page=N] [--step-ops=N] [--sketch-sweep=0|1]
///        [--ring-sweep=0|1] [--out=BENCH_hotpath.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "core/hotness.hpp"
#include "core/ranking.hpp"
#include "core/stream.hpp"
#include "monitors/event.hpp"
#include "sim/system.hpp"
#include "util/ring.hpp"
#include "tiering/epoch.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/zipf.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace tmprof;
using Clock = std::chrono::steady_clock;

using StdCountMap =
    std::unordered_map<core::PageKey, std::uint32_t, core::PageKeyHash>;
using StdRankMap =
    std::unordered_map<core::PageKey, core::PageRank, core::PageKeyHash>;

struct Row {
  std::string section;
  std::uint64_t pages = 0;
  std::string engine;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Skewed key stream over `pages` distinct pages: a hot head is touched
/// every round, the tail with stride mixing — roughly the shape an epoch
/// of trace + A-bit evidence produces.
std::vector<core::PageKey> make_key_stream(std::uint64_t pages,
                                           std::uint64_t touches_per_page) {
  util::Rng rng(pages * 2654435761ULL + 13);
  std::vector<core::PageKey> keys;
  keys.reserve(pages * touches_per_page);
  const std::uint64_t hot = std::max<std::uint64_t>(1, pages / 8);
  for (std::uint64_t t = 0; t < touches_per_page; ++t) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      // Half the touches go to the hot head, half sweep the full range.
      const std::uint64_t page =
          (p % 2 == 0) ? rng.below(hot) : rng.below(pages);
      keys.push_back(core::PageKey{1 + static_cast<mem::Pid>(page % 4),
                                   page * mem::kPageSize});
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Section 1: collector merge (insert-or-increment + epoch close).

template <typename MapT>
Row run_collector_merge(const char* engine, std::uint64_t pages,
                        std::uint64_t epochs,
                        const std::vector<core::PageKey>& keys) {
  MapT current;
  MapT closed;
  // Untimed warmup epoch: measure steady state, not first-touch growth.
  for (const core::PageKey& key : keys) current[key] += 1;
  closed.swap(current);
  current.clear();
  const auto start = Clock::now();
  for (std::uint64_t e = 0; e < epochs; ++e) {
    for (const core::PageKey& key : keys) current[key] += 1;
    // Epoch close: swap-and-clear, same protocol as TmpDriver/TruthCollector.
    closed.swap(current);
    current.clear();
  }
  Row row{"collector_merge", pages, engine, epochs * keys.size(), 0.0, 0.0};
  row.seconds = seconds_since(start);
  row.ops_per_sec = static_cast<double>(row.ops) / row.seconds;
  if (closed.size() == 0) std::cerr << "collector_merge: empty epoch?\n";
  return row;
}

// ---------------------------------------------------------------------------
// Section 2: ranking build (merge + fuse + sort each epoch).

void fill_observation(core::EpochObservation& obs,
                      const std::vector<core::PageKey>& keys) {
  obs.clear();
  std::uint64_t i = 0;
  for (const core::PageKey& key : keys) {
    if (i % 3 != 0) obs.trace[key] += 1;  // trace-heavy, like IBS epochs
    if (i % 3 == 0) obs.abit[key] += 1;
    if (i % 16 == 0) obs.writes[key] += 1;
    ++i;
  }
}

/// std::unordered_map reference of merge_observation + full sort
/// (ranking.cpp) — the shape of the pre-FlatMap implementation.
void std_build_ranking(const core::EpochObservation& obs, StdRankMap& merged,
                       std::vector<core::PageRank>& out) {
  merged.clear();
  merged.reserve(obs.abit.size() + obs.trace.size());
  for (const auto& [key, count] : obs.abit) {
    core::PageRank& pr = merged[key];
    pr.key = key;
    pr.abit = count;
  }
  for (const auto& [key, count] : obs.trace) {
    core::PageRank& pr = merged[key];
    pr.key = key;
    pr.trace = count;
  }
  for (const auto& [key, count] : obs.writes) {
    const auto it = merged.find(key);
    if (it != merged.end()) it->second.writes = count;
  }
  out.clear();
  out.reserve(merged.size());
  for (auto& [key, pr] : merged) {
    pr.rank = static_cast<std::uint64_t>(pr.abit) + pr.trace;
    out.push_back(pr);
  }
  std::sort(out.begin(), out.end(), core::RankOrder{});
}

/// `ranking_build` is the production comparison: the flat engine runs the
/// new pipeline (flat merge + top-K selection at a capacity-sized k, the
/// DaemonConfig::ranking_top_k path), the std engine runs the old one
/// (unordered_map merge + full sort). Both yield the identical top-k
/// prefix — the entries a placement policy actually consumes — so ops is
/// consumable entries produced. `ranking_full` pins both engines to the
/// full sort for an engine-only comparison.
Row run_ranking_build(const std::string& engine, std::uint64_t pages,
                      std::uint64_t epochs,
                      const std::vector<core::PageKey>& keys, std::size_t k) {
  const bool full = k == 0;
  core::EpochObservation obs;
  fill_observation(obs, keys);
  std::vector<core::PageRank> out;
  std::uint64_t checksum = 0;
  double elapsed = 0.0;
  if (engine == "flat") {
    core::RankingScratch scratch;
    auto build = [&] {
      if (full) {
        core::build_ranking_into(obs, core::FusionMode::Sum, 1.0, scratch,
                                 out);
      } else {
        core::build_ranking_topk_into(obs, core::FusionMode::Sum, 1.0, k,
                                      scratch, out);
      }
    };
    build();  // untimed warmup: size every reused buffer first
    const auto start = Clock::now();
    for (std::uint64_t e = 0; e < epochs; ++e) {
      build();
      checksum += out.empty() ? 0 : out.front().rank;
    }
    elapsed = seconds_since(start);
  } else {
    // The old pipeline always full-sorts; consumers truncate afterwards.
    StdRankMap merged;
    std_build_ranking(obs, merged, out);  // untimed warmup
    const auto start = Clock::now();
    for (std::uint64_t e = 0; e < epochs; ++e) {
      std_build_ranking(obs, merged, out);
      checksum += out.empty() ? 0 : out.front().rank;
    }
    elapsed = seconds_since(start);
  }
  const std::uint64_t consumable =
      full ? out.size() : std::min<std::uint64_t>(k, out.size());
  Row row{full ? "ranking_full" : "ranking_build", pages, engine,
          epochs * consumable, 0.0, 0.0};
  row.seconds = elapsed;
  row.ops_per_sec = static_cast<double>(row.ops) / row.seconds;
  if (checksum == 0) std::cerr << "ranking_build: zero checksum?\n";
  return row;
}

// ---------------------------------------------------------------------------
// Section 3: end-to-end simulator steps with a live collector.

Row run_step_parallel(std::uint64_t footprint_pages, std::uint64_t step_ops) {
  const std::uint64_t footprint = footprint_pages * mem::kPageSize;
  sim::System system(bench::testbed_config(footprint));
  system.add_process(
      std::make_unique<workloads::ZipfWorkload>(footprint, 4096, 0.99, 0.1, 7));
  tiering::TruthCollector collector(system);
  system.add_observer(&collector);
  core::TruthMap truth;
  std::vector<core::PageKey> new_pages;
  // Warm the caches, page tables and collector buffers.
  system.step(step_ops / 4);
  collector.end_epoch(truth, new_pages);
  const auto start = Clock::now();
  for (int e = 0; e < 4; ++e) {
    system.step(step_ops / 4);
    collector.end_epoch(truth, new_pages);
  }
  Row row{"step_parallel", footprint_pages, "flat", step_ops, 0.0, 0.0};
  row.seconds = seconds_since(start);
  row.ops_per_sec = static_cast<double>(row.ops) / row.seconds;
  system.remove_observer(&collector);
  return row;
}

// ---------------------------------------------------------------------------
// Section 4: sketch-mode memory-vs-accuracy sweep.

struct AccuracyRow {
  std::uint64_t pages = 0;
  std::uint32_t width = 0;
  std::uint32_t depth = 0;
  std::uint32_t candidates = 0;
  std::uint64_t ops = 0;
  double top64_overlap = 0.0;
  double rank_corr_top256 = 0.0;
  std::uint64_t exact_bytes = 0;
  std::uint64_t sketch_bytes = 0;
  double bytes_ratio = 0.0;      ///< sketch / exact
  double bytes_per_page = 0.0;   ///< sketch bytes / distinct pages tracked
};

/// Average ranks (ties share their mean rank) — the Spearman prerequisite.
std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mean_rank = (static_cast<double>(i + j) / 2.0) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  const double n = static_cast<double>(ra.size());
  double sa = 0, sb = 0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    sa += ra[i];
    sb += rb[i];
  }
  const double ma = sa / n, mb = sb / n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

AccuracyRow run_sketch_accuracy(std::uint64_t pages, std::uint32_t width,
                                std::uint32_t depth,
                                std::uint32_t candidates) {
  core::HotnessConfig config;
  config.mode = core::HotnessMode::Sketch;
  config.sketch.width = width;
  config.sketch.depth = depth;
  config.candidates = candidates;

  core::HotnessCounts exact_store;
  core::HotnessCounts sketch_store(config);
  util::Rng rng(pages * 0x9e3779b9ULL + width + depth);
  util::ZipfDistribution zipf(pages, 0.99);
  const std::uint64_t ops = pages * 4;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t page = zipf(rng);
    const core::PageKey key{1 + static_cast<mem::Pid>(page % 4),
                            page * mem::kPageSize};
    exact_store.add(key);
    sketch_store.add(key);
  }

  AccuracyRow row;
  row.pages = pages;
  row.width = width;
  row.depth = depth;
  row.candidates = candidates;
  row.ops = ops;
  row.exact_bytes = exact_store.memory_bytes();
  row.sketch_bytes = sketch_store.memory_bytes();
  row.bytes_ratio = static_cast<double>(row.sketch_bytes) /
                    static_cast<double>(row.exact_bytes);

  core::PageCountMap exact_counts;
  core::PageCountMap sketch_counts;
  (void)exact_store.end_epoch_into(exact_counts);
  (void)sketch_store.end_epoch_into(sketch_counts);
  row.bytes_per_page = static_cast<double>(row.sketch_bytes) /
                       static_cast<double>(exact_counts.size());

  // Exact ranking, (count desc, key asc) — the profiler's total order.
  std::vector<std::pair<std::uint32_t, core::PageKey>> exact_order;
  exact_order.reserve(exact_counts.size());
  for (const auto& [key, count] : exact_counts) {
    exact_order.emplace_back(count, key);
  }
  std::sort(exact_order.begin(), exact_order.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return b.second < a.second;
            });
  std::vector<std::pair<std::uint32_t, core::PageKey>> sketch_order;
  sketch_order.reserve(sketch_counts.size());
  for (const auto& [key, count] : sketch_counts) {
    sketch_order.emplace_back(count, key);
  }
  std::sort(sketch_order.begin(), sketch_order.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return b.second < a.second;
            });

  const std::size_t k = std::min<std::size_t>(64, exact_order.size());
  std::unordered_set<std::uint64_t> sketch_top;
  for (std::size_t i = 0; i < k && i < sketch_order.size(); ++i) {
    sketch_top.insert(sketch_order[i].second.page_va);
  }
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < k; ++i) {
    overlap += sketch_top.count(exact_order[i].second.page_va);
  }
  row.top64_overlap =
      k == 0 ? 0.0 : static_cast<double>(overlap) / static_cast<double>(k);

  // Spearman over the exact top-256: exact count vs sketch estimate
  // (absent candidates score 0, punishing dropped hot pages).
  const std::size_t top = std::min<std::size_t>(256, exact_order.size());
  std::vector<double> exact_vals;
  std::vector<double> sketch_vals;
  exact_vals.reserve(top);
  sketch_vals.reserve(top);
  for (std::size_t i = 0; i < top; ++i) {
    exact_vals.push_back(static_cast<double>(exact_order[i].first));
    const auto it = sketch_counts.find(exact_order[i].second);
    sketch_vals.push_back(
        it == sketch_counts.end() ? 0.0 : static_cast<double>(it->second));
  }
  row.rank_corr_top256 = spearman(exact_vals, sketch_vals);
  return row;
}

// ---------------------------------------------------------------------------
// Section 5: ring transport — barrier-critical-path merge time
// (docs/STREAMING.md).

struct RingRow {
  std::string engine;  ///< "barrier" | "stream"
  std::uint64_t lanes = 0;
  std::uint64_t pages = 0;
  std::uint64_t records = 0;       ///< per epoch, all lanes
  double barrier_seconds = 0.0;    ///< summed barrier time over epochs
  double ns_per_record = 0.0;      ///< barrier time per produced record
  std::uint64_t checksum = 0;      ///< top-K content; must match per config
};

/// Per-lane record streams, the shape a sharded step leaves behind: each
/// lane's content is a pure function of (lane, pages), like the per-core
/// RNG streams in the monitors.
std::vector<std::vector<core::PageKey>> make_lane_streams(
    std::uint64_t lanes, std::uint64_t pages, std::uint64_t per_lane) {
  std::vector<std::vector<core::PageKey>> streams(lanes);
  for (std::uint64_t l = 0; l < lanes; ++l) {
    util::Rng rng(0x5eedULL * (l + 1) + pages);
    std::vector<core::PageKey>& s = streams[l];
    s.reserve(per_lane);
    const std::uint64_t hot = std::max<std::uint64_t>(1, pages / 8);
    for (std::uint64_t i = 0; i < per_lane; ++i) {
      const std::uint64_t page =
          (i % 2 == 0) ? rng.below(hot) : rng.below(pages);
      s.push_back(core::PageKey{1 + static_cast<mem::Pid>(page % 4),
                                page * mem::kPageSize});
    }
  }
  return streams;
}

/// Top-K of the merged counts under (count desc, key asc) — the barrier
/// model of build_ranking_topk_into — folded into a content checksum.
std::uint64_t topk_checksum(
    const core::PageCountMap& counts, std::size_t k,
    std::vector<std::pair<std::uint64_t, core::PageKey>>& scratch) {
  scratch.clear();
  scratch.reserve(counts.size());
  for (const auto& [key, count] : counts) scratch.emplace_back(count, key);
  const auto stronger = [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  if (scratch.size() > k) {
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch.end(), stronger);
    scratch.resize(k);
  }
  std::sort(scratch.begin(), scratch.end(), stronger);
  std::uint64_t sum = 0;
  for (const auto& [count, key] : scratch) sum += count * (key.page_va | 1);
  return sum;
}

/// Swap-and-clear baseline: production appends to per-lane buffers (cheap,
/// overlapped with shard execution — untimed); the barrier then does ALL
/// the merge work: drain every lane in ascending order into the count map
/// and build the top-K. That serial span is what the streaming transport
/// removes.
RingRow run_ring_barrier(std::uint64_t lanes, std::uint64_t pages,
                         std::uint64_t epochs,
                         const std::vector<std::vector<core::PageKey>>& streams,
                         std::size_t k) {
  core::PageCountMap current;
  core::PageCountMap closed;
  std::vector<std::pair<std::uint64_t, core::PageKey>> scratch;
  RingRow row{"barrier", lanes, pages, 0, 0.0, 0.0, 0};
  for (const auto& s : streams) row.records += s.size();
  for (std::uint64_t e = 0; e < epochs + 1; ++e) {
    const auto start = Clock::now();
    for (const std::vector<core::PageKey>& lane : streams) {
      for (const core::PageKey& key : lane) current[key] += 1;
    }
    const std::uint64_t sum = topk_checksum(current, k, scratch);
    closed.swap(current);
    current.clear();
    if (e == 0) continue;  // untimed warmup epoch: buffers sized
    row.barrier_seconds += seconds_since(start);
    row.checksum += sum;
  }
  row.ns_per_record = row.barrier_seconds * 1e9 /
                      static_cast<double>(row.records * epochs);
  return row;
}

/// Streaming transport: the same records flow through per-lane SpscRings
/// with the consumer pumping every half-capacity round — map merge and
/// incremental top-K maintenance happen during production, which in the
/// real engine runs on the main thread while worker shards execute
/// (System::set_step_pump), so that span is untimed here. The timed span
/// is the drain-and-seal: residual ring tail, ranking read, decay + heap
/// rebuild, swap-and-clear.
RingRow run_ring_stream(std::uint64_t lanes, std::uint64_t pages,
                        std::uint64_t epochs,
                        const std::vector<std::vector<core::PageKey>>& streams,
                        std::size_t k) {
  constexpr std::uint32_t kRingCapacity = 1024;
  std::vector<std::unique_ptr<util::SpscRing<monitors::StreamRecord>>> rings;
  rings.reserve(lanes);
  for (std::uint64_t l = 0; l < lanes; ++l) {
    rings.push_back(std::make_unique<util::SpscRing<monitors::StreamRecord>>(
        kRingCapacity));
  }
  // decay_shift 64: per-epoch top-K only, matching the barrier model.
  core::StreamRanker ranker(static_cast<std::uint32_t>(k), 64);
  core::PageCountMap current;
  core::PageCountMap closed;
  std::vector<core::PageRank> rank_out;

  std::uint64_t per_lane = 0;
  for (const auto& s : streams) per_lane = std::max(per_lane, s.size());

  const auto consume = [&](const monitors::StreamRecord& rec) {
    const core::PageKey key{static_cast<mem::Pid>(rec.c), rec.a};
    current[key] += 1;
    ranker.add(key, 1);
  };
  const auto pump = [&] {
    for (auto& ring : rings) ring->drain(consume);
  };

  RingRow row{"stream", lanes, pages, 0, 0.0, 0.0, 0};
  for (const auto& s : streams) row.records += s.size();
  for (std::uint64_t e = 0; e < epochs + 1; ++e) {
    // Production + opportunistic pump: untimed (overlaps shard execution).
    std::uint32_t seq = 0;
    for (std::uint64_t i = 0; i < per_lane; ++i) {
      for (std::uint64_t l = 0; l < lanes; ++l) {
        if (i >= streams[l].size()) continue;
        monitors::StreamRecord rec;
        rec.a = streams[l][i].page_va;
        rec.c = streams[l][i].pid;
        rec.seq = seq;
        rec.lane = static_cast<std::uint16_t>(l);
        if (!rings[l]->try_push(rec)) consume(rec);  // spill: fold inline
      }
      ++seq;
      if (seq % (kRingCapacity / 2) == 0) pump();
    }
    // Drain-and-seal: the only work left on the barrier critical path.
    const auto start = Clock::now();
    pump();
    ranker.ranking_into(rank_out);
    std::uint64_t sum = 0;
    for (const core::PageRank& r : rank_out) sum += r.rank * (r.key.page_va | 1);
    ranker.seal();
    closed.swap(current);
    current.clear();
    if (e == 0) continue;
    row.barrier_seconds += seconds_since(start);
    row.checksum += sum;
  }
  row.ns_per_record = row.barrier_seconds * 1e9 /
                      static_cast<double>(row.records * epochs);
  return row;
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::vector<AccuracyRow>& accuracy,
                const std::vector<RingRow>& ring_rows) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "micro_hotpath: cannot open " << path << "\n";
    std::exit(1);
  }
  os << "{\n  \"bench\": \"micro_hotpath\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"section\": \"" << r.section << "\", \"pages\": " << r.pages
       << ", \"engine\": \"" << r.engine << "\", \"ops\": " << r.ops
       << ", \"seconds\": " << r.seconds
       << ", \"ops_per_sec\": " << r.ops_per_sec << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [\n";
  // flat-over-std ratio for every (section, pages) pair that has both.
  bool first = true;
  for (const Row& flat : rows) {
    if (flat.engine != "flat") continue;
    for (const Row& ref : rows) {
      if (ref.engine != "std" || ref.section != flat.section ||
          ref.pages != flat.pages) {
        continue;
      }
      if (!first) os << ",\n";
      first = false;
      os << "    {\"section\": \"" << flat.section
         << "\", \"pages\": " << flat.pages << ", \"flat_over_std\": "
         << flat.ops_per_sec / ref.ops_per_sec << "}";
    }
  }
  os << "\n  ],\n  \"sketch_accuracy\": [\n";
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyRow& a = accuracy[i];
    os << "    {\"pages\": " << a.pages << ", \"width\": " << a.width
       << ", \"depth\": " << a.depth << ", \"candidates\": " << a.candidates
       << ", \"ops\": " << a.ops << ", \"top64_overlap\": " << a.top64_overlap
       << ", \"rank_corr_top256\": " << a.rank_corr_top256
       << ", \"exact_bytes\": " << a.exact_bytes
       << ", \"sketch_bytes\": " << a.sketch_bytes
       << ", \"bytes_ratio\": " << a.bytes_ratio
       << ", \"bytes_per_page\": " << a.bytes_per_page << "}"
       << (i + 1 < accuracy.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"ring_transport\": [\n";
  for (std::size_t i = 0; i < ring_rows.size(); ++i) {
    const RingRow& r = ring_rows[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"lanes\": " << r.lanes
       << ", \"pages\": " << r.pages << ", \"records\": " << r.records
       << ", \"barrier_seconds\": " << r.barrier_seconds
       << ", \"ns_per_record\": " << r.ns_per_record << "}"
       << (i + 1 < ring_rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"ring_speedups\": [\n";
  bool ring_first = true;
  for (const RingRow& base : ring_rows) {
    if (base.engine != "barrier") continue;
    for (const RingRow& stream : ring_rows) {
      if (stream.engine != "stream" || stream.lanes != base.lanes ||
          stream.pages != base.pages) {
        continue;
      }
      if (!ring_first) os << ",\n";
      ring_first = false;
      os << "    {\"lanes\": " << base.lanes << ", \"pages\": " << base.pages
         << ", \"barrier_over_stream\": "
         << base.barrier_seconds / stream.barrier_seconds << "}";
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string engine = args.get("engine", "both");
  if (engine != "flat" && engine != "std" && engine != "both") {
    std::cerr << "micro_hotpath: --engine must be flat, std or both\n";
    return 1;
  }
  const std::uint64_t epochs = args.get_u64("epochs", 8);
  const std::uint64_t touches = args.get_u64("touches-per-page", 4);
  const std::uint64_t step_ops = args.get_u64("step-ops", 2'000'000);
  const bool sketch_sweep = args.get_bool("sketch-sweep", true);
  const bool ring_sweep = args.get_bool("ring-sweep", true);
  const std::string out_path = args.get("out", "BENCH_hotpath.json");
  const bool run_flat = engine != "std";
  const bool run_std = engine != "flat";

  const std::uint64_t footprints[] = {4096, 16384, 65536};
  std::vector<Row> rows;

  std::cout << "micro_hotpath: epoch hot-path ops/sec (engine=" << engine
            << ", " << epochs << " epochs, " << touches
            << " touches/page)\n\n";

  for (const std::uint64_t pages : footprints) {
    const std::vector<core::PageKey> keys = make_key_stream(pages, touches);
    // Capacity-sized k: policies consume at most the tier-1 frame count,
    // typically a quarter-ish of the footprint in the paper's configs.
    const std::size_t k = pages / 4;
    if (run_flat) {
      rows.push_back(
          run_collector_merge<core::PageCountMap>("flat", pages, epochs, keys));
      rows.push_back(run_ranking_build("flat", pages, epochs, keys, k));
      rows.push_back(run_ranking_build("flat", pages, epochs, keys, 0));
    }
    if (run_std) {
      rows.push_back(
          run_collector_merge<StdCountMap>("std", pages, epochs, keys));
      rows.push_back(run_ranking_build("std", pages, epochs, keys, k));
      rows.push_back(run_ranking_build("std", pages, epochs, keys, 0));
    }
  }
  // One end-to-end datapoint at the middle footprint.
  rows.push_back(run_step_parallel(16384, step_ops));

  util::TextTable table({"section", "pages", "engine", "ops", "Mops/s"});
  for (const Row& r : rows) {
    table.add_row({r.section, std::to_string(r.pages), r.engine,
                   std::to_string(r.ops),
                   std::to_string(r.ops_per_sec / 1e6)});
  }
  std::cout << table.to_string() << "\n";

  if (run_flat && run_std) {
    std::cout << "flat-over-std speedups:\n";
    for (const Row& flat : rows) {
      if (flat.engine != "flat") continue;
      for (const Row& ref : rows) {
        if (ref.engine == "std" && ref.section == flat.section &&
            ref.pages == flat.pages) {
          std::cout << "  " << flat.section << " @" << flat.pages
                    << " pages: " << flat.ops_per_sec / ref.ops_per_sec
                    << "x\n";
        }
      }
    }
  }

  std::vector<AccuracyRow> accuracy;
  if (sketch_sweep) {
    // Width/depth x footprint grid; candidate cap fixed at the driver's
    // default. The last row is the headline acceptance point: >= 0.95
    // top-64 overlap at <= 1/8 of the exact store's bytes.
    const std::pair<std::uint32_t, std::uint32_t> grid[] = {
        {1u << 12, 2}, {1u << 12, 4}, {1u << 14, 4}};
    for (const std::uint64_t pages : {65536ULL, 262144ULL}) {
      for (const auto& [width, depth] : grid) {
        accuracy.push_back(
            run_sketch_accuracy(pages, width, depth, 1u << 13));
      }
    }
    util::TextTable acc_table({"pages", "width", "depth", "top64_overlap",
                               "rank_corr", "bytes_ratio", "B/page"});
    for (const AccuracyRow& a : accuracy) {
      acc_table.add_row({std::to_string(a.pages), std::to_string(a.width),
                         std::to_string(a.depth),
                         std::to_string(a.top64_overlap),
                         std::to_string(a.rank_corr_top256),
                         std::to_string(a.bytes_ratio),
                         std::to_string(a.bytes_per_page)});
    }
    std::cout << "sketch accuracy sweep (zipf 0.99, candidates="
              << (1u << 13) << "):\n"
              << acc_table.to_string() << "\n";
    const AccuracyRow& headline = accuracy.back();
    std::cout << "headline: top-64 overlap " << headline.top64_overlap
              << " at " << headline.bytes_ratio
              << "x exact bytes (accept: >= 0.95 at <= 0.125)\n";
  }

  std::vector<RingRow> ring_rows;
  if (ring_sweep) {
    // Lanes x pages grid; K and the per-lane record count follow the
    // streaming defaults (StreamConfig::top_k, a few ring-fills per lane).
    constexpr std::size_t kTopK = 256;
    constexpr std::uint64_t kPerLane = 16384;
    for (const std::uint64_t lanes : {2ULL, 4ULL, 8ULL}) {
      for (const std::uint64_t pages : {4096ULL, 16384ULL}) {
        const auto streams = make_lane_streams(lanes, pages, kPerLane);
        ring_rows.push_back(
            run_ring_barrier(lanes, pages, epochs, streams, kTopK));
        ring_rows.push_back(
            run_ring_stream(lanes, pages, epochs, streams, kTopK));
        const RingRow& base = ring_rows[ring_rows.size() - 2];
        const RingRow& stream = ring_rows.back();
        if (base.checksum != stream.checksum) {
          std::cerr << "ring_transport: checksum mismatch at " << lanes
                    << " lanes / " << pages << " pages (" << base.checksum
                    << " vs " << stream.checksum << ")\n";
          return 1;
        }
      }
    }
    util::TextTable ring_table(
        {"lanes", "pages", "engine", "records", "barrier ns/rec"});
    for (const RingRow& r : ring_rows) {
      ring_table.add_row({std::to_string(r.lanes), std::to_string(r.pages),
                          r.engine, std::to_string(r.records),
                          std::to_string(r.ns_per_record)});
    }
    std::cout << "ring_transport: barrier-critical-path merge time "
              << "(swap-and-clear vs streaming drain-and-seal):\n"
              << ring_table.to_string() << "\n";
    double headline = 0.0;
    for (const RingRow& base : ring_rows) {
      if (base.engine != "barrier") continue;
      for (const RingRow& stream : ring_rows) {
        if (stream.engine != "stream" || stream.lanes != base.lanes ||
            stream.pages != base.pages) {
          continue;
        }
        const double speedup = base.barrier_seconds / stream.barrier_seconds;
        std::cout << "  " << base.lanes << " lanes @" << base.pages
                  << " pages: " << speedup << "x\n";
        if (base.lanes == 8) headline = std::max(headline, speedup);
      }
    }
    std::cout << "headline: " << headline
              << "x barrier-time reduction at 8 lanes (accept: >= 1.5)\n";
  }

  write_json(out_path, rows, accuracy, ring_rows);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
