#include "tiering/khugepaged.hpp"

#include <map>
#include <vector>

#include "util/assert.hpp"

namespace tmprof::tiering {

Khugepaged::Khugepaged(sim::System& system, const KhugepagedConfig& config)
    : system_(system), config_(config) {
  TMPROF_EXPECTS(config.min_populated > 0.0 && config.min_populated <= 1.0);
  TMPROF_EXPECTS(config.min_accessed >= 0.0 && config.min_accessed <= 1.0);
}

CollapseStats Khugepaged::scan_and_collapse() {
  CollapseStats stats;
  for (sim::Process* proc : system_.processes()) {
    // Group 4 KiB mappings by their covering 2 MiB-aligned range.
    std::map<mem::VirtAddr, std::uint32_t> populated;
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte&) {
          if (size != mem::PageSize::k4K) return;
          populated[mem::page_base(page_va, mem::PageSize::k2M)] += 1;
        });
    for (const auto& [range_base, count] : populated) {
      ++stats.ranges_scanned;
      if (static_cast<double>(count) <
          config_.min_populated * static_cast<double>(mem::kPagesPerHuge)) {
        ++stats.skipped_sparse;
        continue;
      }
      collapse_range(*proc, range_base, stats);
    }
  }
  system_.advance_time(stats.cost_ns);
  return stats;
}

bool Khugepaged::collapse_range(sim::Process& proc,
                                mem::VirtAddr range_base,
                                CollapseStats& stats) {
  mem::PageTable& table = proc.page_table();
  // Gather the range's PTEs; count A bits and per-tier frames.
  std::vector<std::pair<mem::VirtAddr, mem::Pfn>> pages;
  pages.reserve(mem::kPagesPerHuge);
  std::uint64_t accessed = 0;
  std::uint64_t tier0 = 0;
  for (std::uint64_t i = 0; i < mem::kPagesPerHuge; ++i) {
    const mem::VirtAddr va = range_base + i * mem::kPageSize;
    const mem::PteRef ref = table.resolve(va);
    if (!ref || ref.size != mem::PageSize::k4K) return false;  // raced
    if (ref.pte->poisoned()) return false;  // profiler owns this page now
    accessed += ref.pte->accessed() ? 1 : 0;
    tier0 += system_.phys().tier_of(ref.pte->pfn()) == 0 ? 1 : 0;
    pages.emplace_back(va, ref.pte->pfn());
  }
  if (static_cast<double>(accessed) <
      config_.min_accessed * static_cast<double>(pages.size())) {
    ++stats.skipped_cold;
    return false;
  }
  // Allocate the huge frame where the majority of the small frames live.
  const mem::TierId target =
      tier0 * 2 >= mem::kPagesPerHuge ? mem::TierId{0} : mem::TierId{1};
  const auto huge = system_.phys().alloc(target, proc.pid(), range_base,
                                         mem::PageSize::k2M);
  if (!huge) {
    ++stats.failed_alloc;
    return false;
  }
  // Unmap the small pages (copy modeled by collapse_cost), free their
  // frames, install the huge mapping, and shoot down stale translations.
  for (const auto& [va, pfn] : pages) {
    table.unmap(va);
    system_.phys().free(pfn);
    system_.shootdown(proc.pid(), va, mem::PageSize::k4K);
  }
  table.map(range_base, *huge, mem::PageSize::k2M);
  ++stats.collapsed;
  stats.cost_ns += config_.collapse_cost_ns;
  return true;
}

}  // namespace tmprof::tiering
