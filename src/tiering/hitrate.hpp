#pragma once
/// \file hitrate.hpp
/// Offline hitrate evaluation (Fig. 6): replay an epoch series through a
/// placement policy and measure the fraction of memory accesses served by
/// tier 1. The profiling source feeding the policy is selectable (A-bit
/// alone, trace alone, or TMP's combined ranking).

#include <cstdint>
#include <vector>

#include "core/ranking.hpp"
#include "tiering/epoch.hpp"
#include "tiering/policy.hpp"

namespace tmprof::tiering {

struct HitrateOptions {
  std::uint64_t capacity_frames = 0;   ///< tier-1 size in 4 KiB frames
  core::FusionMode fusion = core::FusionMode::Sum;
  double trace_weight = 1.0;
  /// What the Oracle policy is allowed to know about the coming epoch:
  /// false = the true per-page access counts (absolute upper bound);
  /// true  = the *profiler's* counts for that epoch under `fusion` (the
  ///         paper's Fig. 6 setting, which is why Oracle quality there
  ///         depends on the monitoring source).
  bool oracle_from_observed = false;
};

struct HitrateResult {
  double overall = 0.0;                ///< tier-1 accesses / total accesses
  std::vector<double> per_epoch;
  std::uint64_t total_accesses = 0;
  std::uint64_t tier1_accesses = 0;
  std::uint64_t promotions = 0;        ///< pages moved into tier 1
};

/// Replay `series` through `policy`. The policy instance carries state
/// across epochs (FirstTouch stickiness, FrequencyDecay scores), so pass a
/// fresh instance per evaluation.
[[nodiscard]] HitrateResult evaluate_policy(Policy& policy,
                                            const EpochSeries& series,
                                            const HitrateOptions& options);

/// Per-tier access breakdown from an N-tier waterfall replay
/// (docs/TOPOLOGY.md): index 0 is the fastest tier.
struct TierHitrateResult {
  std::vector<std::uint64_t> tier_accesses;  ///< truth accesses per tier
  std::vector<double> tier_fraction;         ///< tier_accesses / total
  std::uint64_t total_accesses = 0;
};

/// Waterfall placement over an arbitrary tier ladder: each epoch, the
/// previous epoch's ranking (built from `series` observations under
/// `fusion`) fills tier 0 up to capacities[0] frames, the next-hottest
/// pages fill tier 1, and so on; unranked or overflowing pages land in the
/// bottom tier. One capacity per tier above the bottom — an N-tier chain
/// passes N-1 capacities. Accesses are charged to the tier holding the
/// page when the epoch's truth is replayed.
[[nodiscard]] TierHitrateResult evaluate_waterfall(
    const EpochSeries& series, const std::vector<std::uint64_t>& capacities,
    const core::FusionParams& fusion);

}  // namespace tmprof::tiering
