#include "tiering/tenant.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/ckpt.hpp"
#include "util/rng.hpp"

namespace tmprof::tiering {

QosClass parse_qos_class(const std::string& text) {
  if (text == "latency") return QosClass::Latency;
  if (text == "batch") return QosClass::Batch;
  throw std::invalid_argument(
      "--qos: unknown class '" + text +
      "' (valid classes: \"latency\", \"batch\")");
}

namespace {

/// FNV-1a over the name, finished with splitmix64: the tag depends only on
/// the tenant's *name*, never on registration order or pid assignment.
std::uint64_t name_tag(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return util::splitmix64(h);  // h is the splitmix state; mixed value returned
}

}  // namespace

void TenantArbiter::register_tenant(mem::Pid pid, const TenantSpec& spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("tenant name must not be empty");
  }
  for (const char c : spec.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) {
      throw std::invalid_argument("tenant name '" + spec.name +
                                  "' must match [a-z0-9_]+");
    }
  }
  for (const TenantState& t : tenants_) {
    if (t.spec.name == spec.name) {
      throw std::invalid_argument("tenant name '" + spec.name +
                                  "' already registered");
    }
  }
  if (pid_to_tenant_.count(pid) != 0) {
    throw std::invalid_argument("tenant pid already registered");
  }
  TenantState state;
  state.spec = spec;
  state.pid = pid;
  state.fault_tag = name_tag(spec.name);
  pid_to_tenant_.emplace(pid, static_cast<std::uint32_t>(tenants_.size()));
  tenants_.push_back(std::move(state));
}

void TenantArbiter::begin_epoch(const std::vector<std::uint64_t>& heat,
                                const std::vector<std::uint64_t>& demand,
                                std::uint64_t bandwidth_tokens) {
  if (!enabled()) return;
  ++epoch_;
  const std::size_t n = tenants_.size();

  // Decayed benefit (integer): half-life of one epoch, so a tenant that
  // went idle sheds its burst claim within a few epochs while a steadily
  // hot tenant holds it.
  for (std::size_t t = 0; t < n; ++t) {
    TenantState& s = tenants_[t];
    s.benefit = s.benefit / 2 + (t < heat.size() ? heat[t] : 0);
    s.demand = t < demand.size() ? demand[t] : 0;
    s.charged = 0;
  }

  // Floors first: each tenant is guaranteed min(demand, floor). Floors are
  // never diluted — if Σfloors exceeds capacity the operator oversold the
  // tier, and the burst pool is simply empty.
  std::uint64_t floor_total = 0;
  for (TenantState& s : tenants_) {
    s.grant = std::min(s.demand, s.spec.floor_frames);
    floor_total += s.grant;
  }
  std::uint64_t burst =
      capacity_frames_ > floor_total ? capacity_frames_ - floor_total : 0;

  // Burst split: tenants still short of their demand share the pool in
  // proportion to benefit+1 (the +1 keeps a new tenant from being starved
  // before it has history). Exact integer arithmetic in index order.
  const std::uint64_t burst_pool = burst;
  std::uint64_t weight_total = 0;
  for (const TenantState& s : tenants_) {
    if (s.demand > s.grant) weight_total += s.benefit + 1;
  }
  if (weight_total != 0) {
    for (TenantState& s : tenants_) {
      if (s.demand <= s.grant || burst == 0) continue;
      const auto share = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(burst_pool) * (s.benefit + 1) /
          weight_total);
      const std::uint64_t extra =
          std::min({s.demand - s.grant, share, burst});
      s.grant += extra;
      burst -= extra;
    }
  }
  // Rounding leftover: latency tenants top up before batch, index order.
  for (const QosClass qos : {QosClass::Latency, QosClass::Batch}) {
    for (TenantState& s : tenants_) {
      if (burst == 0) break;
      if (s.spec.qos != qos || s.demand <= s.grant) continue;
      const std::uint64_t extra = std::min(s.demand - s.grant, burst);
      s.grant += extra;
      burst -= extra;
    }
  }

  // Bandwidth carve: the admission bucket's post-refill tokens split by
  // registered weight. Zero tokens (bucket off or drained) disables the
  // per-tenant check entirely for the epoch.
  bw_active_ = bandwidth_tokens != 0;
  if (bw_active_) {
    std::uint64_t bw_weight_total = 0;
    for (const TenantState& s : tenants_) {
      bw_weight_total += s.spec.bandwidth_weight;
    }
    for (TenantState& s : tenants_) {
      s.bw_tokens = bw_weight_total == 0
                        ? 0
                        : static_cast<std::uint64_t>(
                              static_cast<unsigned __int128>(bandwidth_tokens) *
                              s.spec.bandwidth_weight / bw_weight_total);
    }
  } else {
    for (TenantState& s : tenants_) s.bw_tokens = 0;
  }
}

bool TenantArbiter::try_charge_frames(mem::Pid pid, std::uint64_t frames) {
  const std::uint32_t t = tenant_of(pid);
  if (t == kNoTenant) return true;
  TenantState& s = tenants_[t];
  if (s.charged + frames <= s.grant) {
    s.charged += frames;
    return true;
  }
  s.quota_shed += frames;
  return false;
}

bool TenantArbiter::try_charge_bandwidth(mem::Pid pid, std::uint64_t bytes) {
  if (!bw_active_) return true;
  const std::uint32_t t = tenant_of(pid);
  if (t == kNoTenant) return true;
  TenantState& s = tenants_[t];
  if (bytes <= s.bw_tokens) {
    s.bw_tokens -= bytes;
    return true;
  }
  ++s.bandwidth_rejected;
  return false;
}

void TenantArbiter::note_reclaimed(mem::Pid pid, std::uint64_t frames) {
  const std::uint32_t t = tenant_of(pid);
  if (t == kNoTenant) return;
  tenants_[t].reclaimed += frames;
}

std::vector<TenantOutcome> TenantArbiter::snapshot_outcomes() const {
  std::vector<TenantOutcome> out;
  out.reserve(tenants_.size());
  for (const TenantState& s : tenants_) {
    TenantOutcome o;
    o.name = s.spec.name;
    o.qos = s.spec.qos;
    o.hitrate = static_cast<double>(s.hitrate_bp) / 10000.0;
    o.floor_frames = s.spec.floor_frames;
    o.grant_frames = s.grant;
    o.demand_frames = s.demand;
    o.occupancy_frames = s.occupancy;
    o.quota_shed = s.quota_shed;
    o.reclaimed_frames = s.reclaimed;
    o.bandwidth_rejected = s.bandwidth_rejected;
    out.push_back(std::move(o));
  }
  return out;
}

void TenantArbiter::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = (telemetry != nullptr && enabled()) ? telemetry : nullptr;
  for (TenantState& s : tenants_) {
    if (telemetry_ == nullptr) {
      s.x_shed = {};
      s.x_reclaimed = {};
      s.x_grant = {};
      s.x_occupancy = {};
      s.x_hitrate_bp = {};
      continue;
    }
    telemetry::MetricsRegistry& m = telemetry_->metrics();
    const std::string prefix = "tenant_" + s.spec.name + "_";
    s.x_shed = m.counter(prefix + "shed_total");
    s.x_reclaimed = m.counter(prefix + "reclaimed_frames_total");
    s.x_grant = m.gauge(prefix + "grant_frames");
    s.x_occupancy = m.gauge(prefix + "occupancy_frames");
    s.x_hitrate_bp = m.gauge(prefix + "hitrate_bp");
  }
}

void TenantArbiter::publish_telemetry() {
  if (telemetry_ == nullptr) return;
  for (TenantState& s : tenants_) {
    s.x_shed.add(s.quota_shed - s.published_shed);
    s.published_shed = s.quota_shed;
    s.x_reclaimed.add(s.reclaimed - s.published_reclaimed);
    s.published_reclaimed = s.reclaimed;
    s.x_grant.set(s.grant);
    s.x_occupancy.set(s.occupancy);
    s.x_hitrate_bp.set(s.hitrate_bp);
  }
}

void TenantArbiter::save_state(util::ckpt::Writer& w) const {
  w.put_u32(static_cast<std::uint32_t>(tenants_.size()));
  w.put_u32(epoch_);
  w.put_bool(bw_active_);
  for (const TenantState& s : tenants_) {
    w.put_u64(s.benefit);
    w.put_u64(s.grant);
    w.put_u64(s.demand);
    w.put_u64(s.charged);
    w.put_u64(s.occupancy);
    w.put_u64(s.quota_shed);
    w.put_u64(s.reclaimed);
    w.put_u64(s.bandwidth_rejected);
    w.put_u64(s.bw_tokens);
    w.put_u64(s.move_seq);
    w.put_u64(s.hitrate_bp);
    w.put_u64(s.published_shed);
    w.put_u64(s.published_reclaimed);
  }
}

void TenantArbiter::load_state(util::ckpt::Reader& r) {
  const std::uint32_t count = r.get_u32();
  if (count != tenants_.size()) {
    throw util::ckpt::CkptError("tenant", "tenant count mismatch");
  }
  epoch_ = r.get_u32();
  bw_active_ = r.get_bool();
  for (TenantState& s : tenants_) {
    s.benefit = r.get_u64();
    s.grant = r.get_u64();
    s.demand = r.get_u64();
    s.charged = r.get_u64();
    s.occupancy = r.get_u64();
    s.quota_shed = r.get_u64();
    s.reclaimed = r.get_u64();
    s.bandwidth_rejected = r.get_u64();
    s.bw_tokens = r.get_u64();
    s.move_seq = r.get_u64();
    s.hitrate_bp = r.get_u64();
    s.published_shed = r.get_u64();
    s.published_reclaimed = r.get_u64();
    if (s.charged > s.grant) {
      throw util::ckpt::CkptError("tenant", "charged frames exceed grant");
    }
    if (s.published_shed > s.quota_shed ||
        s.published_reclaimed > s.reclaimed) {
      throw util::ckpt::CkptError("tenant",
                                  "published tally exceeds live tally");
    }
  }
}

}  // namespace tmprof::tiering
