#include "tiering/policies.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::tiering {

PlacementSet FirstTouchPolicy::choose(const PolicyContext& ctx) {
  TMPROF_EXPECTS(ctx.first_touch_order != nullptr);
  // Admit new pages in arrival order while room remains; never evict.
  for (const PageKey& key : *ctx.first_touch_order) {
    if (placement_.count(key) != 0) continue;
    const std::uint64_t frames = frames_of(ctx, key);
    if (used_frames_ + frames > ctx.capacity_frames) continue;
    placement_.insert(key);
    used_frames_ += frames;
  }
  return placement_;
}

PlacementSet HistoryPolicy::choose(const PolicyContext& ctx) {
  TMPROF_EXPECTS(ctx.observed_ranking != nullptr);
  if (ctx.observed_ranking->empty() && ctx.current != nullptr) {
    return *ctx.current;  // no information yet: leave placement alone
  }
  // Among equally-ranked pages, prefer ones already resident in tier 1:
  // sparse profiles produce many rank ties, and migrating between
  // equally-hot pages is pure cost.
  std::vector<const core::PageRank*> order;
  order.reserve(ctx.observed_ranking->size());
  for (const core::PageRank& pr : *ctx.observed_ranking) order.push_back(&pr);
  auto effective_rank = [&](const core::PageRank* pr) {
    if (!density_rank_) return pr->rank;
    return pr->rank / frames_of(ctx, pr->key);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](const core::PageRank* a, const core::PageRank* b) {
                     const std::uint64_t ra = effective_rank(a);
                     const std::uint64_t rb = effective_rank(b);
                     if (ra != rb) return ra > rb;
                     if (ctx.current != nullptr) {
                       return ctx.current->count(a->key) >
                              ctx.current->count(b->key);
                     }
                     return false;
                   });
  std::vector<PageKey> ordered;
  ordered.reserve(order.size());
  for (const core::PageRank* pr : order) ordered.push_back(pr->key);
  return take_until_full(ordered, ctx);
}

PlacementSet OraclePolicy::choose(const PolicyContext& ctx) {
  TMPROF_EXPECTS(ctx.next_truth != nullptr);
  std::vector<std::pair<PageKey, std::uint64_t>> pages(
      ctx.next_truth->begin(), ctx.next_truth->end());
  std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<PageKey> ordered;
  ordered.reserve(pages.size());
  for (const auto& [key, count] : pages) ordered.push_back(key);
  return take_until_full(ordered, ctx);
}

FrequencyDecayPolicy::FrequencyDecayPolicy(double decay,
                                           const core::HotnessConfig& hotness)
    : decay_(decay),
      score_cap_(hotness.mode == core::HotnessMode::Sketch ? hotness.candidates
                                                           : 0) {
  TMPROF_EXPECTS(decay > 0.0 && decay < 1.0);
}

PlacementSet FrequencyDecayPolicy::choose(const PolicyContext& ctx) {
  TMPROF_EXPECTS(ctx.observed_ranking != nullptr);
  // Age all scores, then fold in this epoch's observations.
  for (auto& [key, score] : score_) score *= decay_;
  for (const core::PageRank& pr : *ctx.observed_ranking) {
    score_[pr.key] += static_cast<double>(pr.rank);
  }
  std::vector<std::pair<PageKey, double>> pages(score_.begin(), score_.end());
  std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (score_cap_ != 0 && pages.size() > score_cap_) {
    // Sketch-mode bound: retain only the hottest score_cap_ pages. The
    // sorted order above is a strict total order, so the cut is
    // deterministic; pages dropped here re-enter on their next sample.
    pages.resize(score_cap_);
    score_.clear();
    for (const auto& [key, score] : pages) score_[key] = score;
  }
  std::vector<PageKey> ordered;
  ordered.reserve(pages.size());
  for (const auto& [key, score] : pages) ordered.push_back(key);
  return take_until_full(ordered, ctx);
}

WriteHistoryPolicy::WriteHistoryPolicy(double write_weight)
    : write_weight_(write_weight) {
  TMPROF_EXPECTS(write_weight >= 0.0);
}

PlacementSet WriteHistoryPolicy::choose(const PolicyContext& ctx) {
  TMPROF_EXPECTS(ctx.observed_ranking != nullptr);
  if (ctx.observed_ranking->empty() && ctx.current != nullptr) {
    return *ctx.current;
  }
  std::vector<core::PageRank> boosted(*ctx.observed_ranking);
  for (core::PageRank& pr : boosted) {
    pr.rank += static_cast<std::uint64_t>(write_weight_ *
                                          static_cast<double>(pr.writes));
  }
  std::sort(boosted.begin(), boosted.end(),
            [&](const core::PageRank& a, const core::PageRank& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              if (ctx.current != nullptr) {
                const bool ra = ctx.current->count(a.key) != 0;
                const bool rb = ctx.current->count(b.key) != 0;
                if (ra != rb) return ra;
              }
              return a.key < b.key;
            });
  std::vector<PageKey> ordered;
  ordered.reserve(boosted.size());
  for (const core::PageRank& pr : boosted) ordered.push_back(pr.key);
  return take_until_full(ordered, ctx);
}

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "first-touch") return std::make_unique<FirstTouchPolicy>();
  if (name == "history") return std::make_unique<HistoryPolicy>();
  if (name == "history-density") {
    return std::make_unique<HistoryPolicy>(/*density_rank=*/true);
  }
  if (name == "oracle") return std::make_unique<OraclePolicy>();
  if (name == "freq-decay") return std::make_unique<FrequencyDecayPolicy>();
  if (name == "write-history") return std::make_unique<WriteHistoryPolicy>();
  throw std::invalid_argument("unknown policy: " + name);
}

std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const core::HotnessConfig& hotness) {
  if (name == "freq-decay") {
    return std::make_unique<FrequencyDecayPolicy>(0.5, hotness);
  }
  return make_policy(name);
}

void FirstTouchPolicy::save_state(util::ckpt::Writer& w) const {
  std::vector<PageKey> keys(placement_.begin(), placement_.end());
  std::sort(keys.begin(), keys.end());
  w.put_u64(keys.size());
  for (const PageKey& key : keys) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
  }
  w.put_u64(used_frames_);
}

void FirstTouchPolicy::load_state(util::ckpt::Reader& r) {
  placement_.clear();
  const std::uint64_t count = r.get_u64();
  placement_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    placement_.insert(key);
  }
  used_frames_ = r.get_u64();
}

void FrequencyDecayPolicy::save_state(util::ckpt::Writer& w) const {
  w.put_u64(score_.size());
  score_.fold_sorted([&w](const PageKey& key, double score) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_f64(score);
  });
}

void FrequencyDecayPolicy::load_state(util::ckpt::Reader& r) {
  score_.clear();
  const std::uint64_t count = r.get_u64();
  score_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    score_[key] = r.get_f64();
  }
}

}  // namespace tmprof::tiering
