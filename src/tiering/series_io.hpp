#pragma once
/// \file series_io.hpp
/// EpochSeries (de)serialization. Profiling collection is the expensive
/// half of the offline evaluation pipeline; persisting a collected series
/// lets policy studies (fig6, ablations, notebooks) re-evaluate without
/// re-simulating — the same split the paper uses when it computes policy
/// results "based on the profiling data from the real hardware".

#include <iosfwd>
#include <string>

#include "tiering/epoch.hpp"

namespace tmprof::tiering {

/// Plain-text, line-oriented format (stable across versions; see the
/// header line "tmprof-series 1").
void save_series(const EpochSeries& series, std::ostream& os);
void save_series_file(const EpochSeries& series, const std::string& path);

/// Throws std::runtime_error on malformed input or version mismatch.
[[nodiscard]] EpochSeries load_series(std::istream& is);
[[nodiscard]] EpochSeries load_series_file(const std::string& path);

}  // namespace tmprof::tiering
