#include "tiering/epoch.hpp"

#include <memory>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::tiering {

TruthCollector::TruthCollector(sim::System& system) : system_(system) {
  if (system.config().sharded_engine) {
    shards_.resize(system.config().cores);
  }
}

void TruthCollector::on_mem_op(const monitors::MemOpEvent& event) {
  const mem::VirtAddr page_va = mem::page_base(event.vaddr, event.page_size);
  const PageKey key{event.pid, page_va};
  if (seen_.insert(key).second) {
    new_pages_.push_back(key);
    page_sizes_[key] = event.page_size;
  }
  if (mem::is_memory(event.source)) {
    truth_[key] += 1;
  }
}

void TruthCollector::Shard::on_mem_op(const monitors::MemOpEvent& event) {
  const mem::VirtAddr page_va = mem::page_base(event.vaddr, event.page_size);
  const PageKey key{event.pid, page_va};
  if (seen.insert(key).second) {
    new_pages.emplace_back(key, event.page_size);
  }
  if (mem::is_memory(event.source)) {
    truth[key] += 1;
  }
}

monitors::AccessObserver* TruthCollector::shard_sink(std::uint32_t core) {
  if (shards_.empty()) return nullptr;
  TMPROF_ASSERT(core < shards_.size());
  return &shards_[core];
}

void TruthCollector::merge_shards() {
  // Shards hold disjoint key spaces (a page belongs to one pid, a pid to
  // one core); folding them in ascending core order makes the merged maps'
  // contents — and their insertion-driven iteration order — a pure function
  // of the simulation, not of thread timing.
  for (Shard& shard : shards_) {
    for (const auto& [key, size] : shard.new_pages) {
      new_pages_.push_back(key);
      page_sizes_[key] = size;
    }
    shard.new_pages.clear();
    for (const auto& [key, count] : shard.truth) {
      truth_[key] += count;
    }
    shard.truth.clear();
  }
}

void TruthCollector::end_epoch(
    std::unordered_map<PageKey, std::uint64_t, PageKeyHash>& truth_out,
    std::vector<PageKey>& new_pages_out) {
  truth_out = std::move(truth_);
  new_pages_out = std::move(new_pages_);
  truth_.clear();
  new_pages_.clear();
}

void add_spec_processes(sim::System& system,
                        const workloads::WorkloadSpec& spec,
                        std::uint64_t seed) {
  for (std::uint32_t i = 0; i < spec.processes; ++i) {
    system.add_process(workloads::make_workload(spec, i, seed));
  }
}

WorkloadFactory spec_factory(const workloads::WorkloadSpec& spec) {
  return [spec](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> generators;
    generators.reserve(spec.processes);
    for (std::uint32_t i = 0; i < spec.processes; ++i) {
      generators.push_back(workloads::make_workload(spec, i, seed));
    }
    return generators;
  };
}

EpochSeries collect_series(const workloads::WorkloadSpec& spec,
                           const sim::SimConfig& sim_config,
                           const CollectOptions& options) {
  return collect_series(spec_factory(spec), sim_config, options);
}

EpochSeries collect_series(const WorkloadFactory& factory,
                           const sim::SimConfig& sim_config,
                           const CollectOptions& options) {
  TMPROF_EXPECTS(options.n_epochs >= 1);
  sim::SimConfig config = sim_config;
  if (options.n_threads >= 1) config.sharded_engine = true;
  sim::System system(config);
  for (auto& generator : factory(options.seed)) {
    system.add_process(std::move(generator));
  }

  TruthCollector truth(system);
  system.add_observer(&truth);
  core::TmpDaemon daemon(system, options.daemon);

  std::unique_ptr<util::ThreadPool> pool;
  if (options.n_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.n_threads);
  }

  EpochSeries series;
  series.epochs.reserve(options.n_epochs);
  for (std::uint32_t e = 0; e < options.n_epochs; ++e) {
    if (config.sharded_engine) {
      system.step_parallel(options.ops_per_epoch, pool.get());
    } else {
      system.step(options.ops_per_epoch);
    }
    core::ProfileSnapshot snapshot = daemon.tick();
    EpochData data;
    data.epoch = e;
    truth.end_epoch(data.truth, data.new_pages);
    for (const auto& [key, count] : data.truth) data.truth_total += count;
    data.observed = std::move(snapshot.observation);
    series.epochs.push_back(std::move(data));
  }
  series.page_sizes = truth.page_sizes();
  for (const auto& [key, size] : series.page_sizes) {
    series.footprint_frames += mem::pages_in(size);
  }
  series.degrade = daemon.degrade_stats();
  return series;
}

}  // namespace tmprof::tiering
