#include "tiering/epoch.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::tiering {

namespace {

void save_truth_map(util::ckpt::Writer& w, const core::TruthMap& map) {
  w.put_u64(map.size());
  map.fold_sorted([&w](const PageKey& key, std::uint64_t count) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_u64(count);
  });
}

void load_truth_map(util::ckpt::Reader& r, core::TruthMap& map) {
  map.clear();
  const std::uint64_t count = r.get_u64();
  map.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    map[key] = r.get_u64();
  }
}

void save_size_map(util::ckpt::Writer& w, const PageSizeMap& map) {
  std::vector<PageKey> keys;
  keys.reserve(map.size());
  for (const auto& [key, size] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w.put_u64(keys.size());
  for (const PageKey& key : keys) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_u8(static_cast<std::uint8_t>(map.at(key)));
  }
}

void load_size_map(util::ckpt::Reader& r, PageSizeMap& map) {
  map.clear();
  const std::uint64_t count = r.get_u64();
  map.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    map.emplace(key, static_cast<mem::PageSize>(r.get_u8()));
  }
}

}  // namespace

TruthCollector::TruthCollector(sim::System& system,
                               const core::HotnessConfig& hotness)
    : system_(system) {
  truth_.configure(hotness);
  seen_.configure(hotness);
  if (system.config().sharded_engine) {
    shards_.resize(system.config().cores);
    for (Shard& shard : shards_) {
      shard.truth.configure(hotness);
      shard.seen.configure(hotness);
    }
  }
}

void TruthCollector::on_mem_op(const monitors::MemOpEvent& event) {
  const mem::VirtAddr page_va = mem::page_base(event.vaddr, event.page_size);
  const PageKey key{event.pid, page_va};
  if (seen_.insert(key)) {
    new_pages_.push_back(key);
    page_sizes_[key] = event.page_size;
  }
  if (mem::is_memory(event.source)) {
    truth_.add(key);
  }
}

void TruthCollector::Shard::on_mem_op(const monitors::MemOpEvent& event) {
  const mem::VirtAddr page_va = mem::page_base(event.vaddr, event.page_size);
  const PageKey key{event.pid, page_va};
  if (seen.insert(key)) {
    new_pages.emplace_back(key, event.page_size);
  }
  if (mem::is_memory(event.source)) {
    truth.add(key);
  }
}

monitors::AccessObserver* TruthCollector::shard_sink(std::uint32_t core) {
  if (shards_.empty()) return nullptr;
  TMPROF_ASSERT(core < shards_.size());
  return &shards_[core];
}

void TruthCollector::merge_shards() {
  // Shards hold disjoint key spaces (a page belongs to one pid, a pid to
  // one core); folding them in ascending core order makes the merged maps'
  // contents — and their insertion-driven iteration order — a pure function
  // of the simulation, not of thread timing.
  for (Shard& shard : shards_) {
    for (const auto& [key, size] : shard.new_pages) {
      new_pages_.push_back(key);
      page_sizes_[key] = size;
    }
    shard.new_pages.clear();
    // Exact mode folds counts in the shard's slot order (the historical
    // merge); sketch mode adds shard sketch cells saturating and re-admits
    // the shard's candidates. Either way the fold clears the shard.
    truth_.merge_from(shard.truth);
  }
}

void TruthCollector::save_state(util::ckpt::Writer& w) const {
  truth_.save_state(w, "truth");
  seen_.save_state(w, "truth");
  w.put_u64(new_pages_.size());
  for (const PageKey& key : new_pages_) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
  }
  save_size_map(w, page_sizes_);
  w.put_u64(shards_.size());
  for (const Shard& shard : shards_) {
    shard.truth.save_state(w, "truth");
    shard.seen.save_state(w, "truth");
    w.put_u64(shard.new_pages.size());
    for (const auto& [key, size] : shard.new_pages) {
      w.put_u64(key.pid);
      w.put_u64(key.page_va);
      w.put_u8(static_cast<std::uint8_t>(size));
    }
  }
}

void TruthCollector::load_state(util::ckpt::Reader& r) {
  truth_.load_state(r, "truth");
  seen_.load_state(r, "truth");
  new_pages_.clear();
  const std::uint64_t n_new = r.get_u64();
  new_pages_.reserve(n_new);
  for (std::uint64_t i = 0; i < n_new; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    new_pages_.push_back(key);
  }
  load_size_map(r, page_sizes_);
  const std::uint64_t n_shards = r.get_u64();
  if (n_shards != shards_.size()) {
    throw util::ckpt::CkptError("truth", "shard count mismatch");
  }
  for (Shard& shard : shards_) {
    shard.truth.load_state(r, "truth");
    shard.seen.load_state(r, "truth");
    shard.new_pages.clear();
    const std::uint64_t n_shard_new = r.get_u64();
    shard.new_pages.reserve(n_shard_new);
    for (std::uint64_t i = 0; i < n_shard_new; ++i) {
      PageKey key;
      key.pid = static_cast<mem::Pid>(r.get_u64());
      key.page_va = r.get_u64();
      shard.new_pages.emplace_back(key, static_cast<mem::PageSize>(r.get_u8()));
    }
  }
}

std::uint64_t TruthCollector::end_epoch(core::TruthMap& truth_out,
                                        std::vector<PageKey>& new_pages_out) {
  // Exact mode swaps rather than moves: the caller's previous buffers
  // become next epoch's accumulators, keeping their slot arrays. Sketch
  // mode materializes the candidates' estimates through reused scratch.
  const std::uint64_t total = truth_.end_epoch_into(truth_out);
  std::swap(new_pages_out, new_pages_);
  new_pages_.clear();
  return total;
}

void add_spec_processes(sim::System& system,
                        const workloads::WorkloadSpec& spec,
                        std::uint64_t seed) {
  for (std::uint32_t i = 0; i < spec.processes; ++i) {
    system.add_process(workloads::make_workload(spec, i, seed));
  }
}

WorkloadFactory spec_factory(const workloads::WorkloadSpec& spec) {
  return [spec](std::uint64_t seed) {
    std::vector<workloads::WorkloadPtr> generators;
    generators.reserve(spec.processes);
    for (std::uint32_t i = 0; i < spec.processes; ++i) {
      generators.push_back(workloads::make_workload(spec, i, seed));
    }
    return generators;
  };
}

EpochSeries collect_series(const workloads::WorkloadSpec& spec,
                           const sim::SimConfig& sim_config,
                           const CollectOptions& options) {
  return collect_series(spec_factory(spec), sim_config, options);
}

void save_epoch_data(util::ckpt::Writer& w, const EpochData& data) {
  w.put_u32(data.epoch);
  save_truth_map(w, data.truth);
  w.put_u64(data.truth_total);
  core::save_observation(w, data.observed);
  w.put_u64(data.new_pages.size());
  for (const PageKey& key : data.new_pages) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
  }
}

void load_epoch_data(util::ckpt::Reader& r, EpochData& data) {
  data.epoch = r.get_u32();
  load_truth_map(r, data.truth);
  data.truth_total = r.get_u64();
  core::load_observation(r, data.observed);
  data.new_pages.clear();
  const std::uint64_t n_new = r.get_u64();
  data.new_pages.reserve(n_new);
  for (std::uint64_t i = 0; i < n_new; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    data.new_pages.push_back(key);
  }
}

void save_series(util::ckpt::Writer& w, const EpochSeries& series) {
  w.put_u64(series.epochs.size());
  for (const EpochData& data : series.epochs) save_epoch_data(w, data);
  save_size_map(w, series.page_sizes);
  w.put_u64(series.footprint_frames);
  w.put_u64(series.degrade.hwpc_wraps);
  w.put_u64(series.degrade.scans_aborted);
  w.put_u64(series.degrade.trace_dropped);
  w.put_u64(series.degrade.rescaled_epochs);
  w.put_u64(series.degrade.fallback_epochs);
  w.put_u64(series.degrade.pinned_epochs);
}

void load_series(util::ckpt::Reader& r, EpochSeries& series) {
  series.epochs.clear();
  const std::uint64_t n_epochs = r.get_u64();
  series.epochs.reserve(n_epochs);
  for (std::uint64_t i = 0; i < n_epochs; ++i) {
    EpochData data;
    load_epoch_data(r, data);
    series.epochs.push_back(std::move(data));
  }
  load_size_map(r, series.page_sizes);
  series.footprint_frames = r.get_u64();
  series.degrade.hwpc_wraps = r.get_u64();
  series.degrade.scans_aborted = r.get_u64();
  series.degrade.trace_dropped = r.get_u64();
  series.degrade.rescaled_epochs = r.get_u64();
  series.degrade.fallback_epochs = r.get_u64();
  series.degrade.pinned_epochs = r.get_u64();
}

namespace {

EpochSeries collect_series_impl(const WorkloadFactory& factory,
                                const sim::SimConfig& sim_config,
                                const CollectOptions& options,
                                const std::string& resume_path) {
  TMPROF_EXPECTS(options.n_epochs >= 1);
  if (options.checkpoint.enabled()) {
    // Best-effort mkdir -p; a dir that still can't be written to surfaces
    // as a CkptError("<io>") from the first save_atomic.
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint.dir, ec);
  }
  sim::SimConfig config = sim_config;
  if (options.n_threads >= 1) config.sharded_engine = true;
  sim::System system(config);
  for (auto& generator : factory(options.seed)) {
    system.add_process(std::move(generator));
  }

  TruthCollector truth(system, options.daemon.driver.hotness);
  system.add_observer(&truth);
  core::TmpDaemon daemon(system, options.daemon);

  telemetry::Telemetry* const telemetry = options.telemetry;
  telemetry::Counter epochs_counter;
  if (telemetry != nullptr) {
    telemetry->begin_run(options.telemetry_label.empty()
                             ? "collect"
                             : options.telemetry_label);
    system.set_telemetry(telemetry);
    daemon.set_telemetry(telemetry);
    epochs_counter = telemetry->metrics().counter("runner_epochs_total");
  }

  EpochSeries series;
  series.epochs.reserve(options.n_epochs);
  std::uint32_t start_epoch = 0;

  if (!resume_path.empty()) {
    util::ckpt::Reader r = util::ckpt::Reader::from_file(resume_path);
    r.enter_section("meta");
    if (r.get_str() != "collect") {
      throw util::ckpt::CkptError("meta", "checkpoint kind is not 'collect'");
    }
    if (r.get_u64() != options.seed) {
      throw util::ckpt::CkptError("meta", "seed mismatch");
    }
    if (r.get_u32() != options.n_epochs) {
      throw util::ckpt::CkptError("meta", "epoch count mismatch");
    }
    if (r.get_u64() != options.ops_per_epoch) {
      throw util::ckpt::CkptError("meta", "ops-per-epoch mismatch");
    }
    if (r.get_bool() != config.sharded_engine) {
      throw util::ckpt::CkptError("meta", "engine mode mismatch");
    }
    start_epoch = r.get_u32();
    if (start_epoch == 0 || start_epoch >= options.n_epochs) {
      throw util::ckpt::CkptError("meta", "resume epoch out of range");
    }
    r.end_section();
    r.enter_section("system");
    system.load_state(r);
    r.end_section();
    r.enter_section("daemon");
    daemon.load_state(r);
    r.end_section();
    r.enter_section("truth");
    truth.load_state(r);
    r.end_section();
    r.enter_section("series");
    load_series(r, series);
    r.end_section();
    if (series.epochs.size() != start_epoch) {
      throw util::ckpt::CkptError("series", "epoch record count mismatch");
    }
    r.enter_section("telemetry");
    if (r.get_bool() != (telemetry != nullptr)) {
      throw util::ckpt::CkptError("telemetry", "telemetry presence mismatch");
    }
    if (telemetry != nullptr) telemetry->load_state(r);
    r.end_section();
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (options.n_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.n_threads);
  }

  // Reused across epochs: each EpochData keeps its own maps (the series
  // retains them), but the snapshot's ranking vector and whatever buffers
  // the daemon hands back are recycled.
  core::ProfileSnapshot snapshot;

  for (std::uint32_t e = start_epoch; e < options.n_epochs; ++e) {
    const util::SimNs epoch_begin = system.now();
    if (config.sharded_engine) {
      system.step_parallel(options.ops_per_epoch, pool.get());
    } else {
      system.step(options.ops_per_epoch);
    }
    daemon.tick_into(snapshot);
    EpochData data;
    data.epoch = e;
    // The returned total is exact in both hotness modes (sketch-mode maps
    // hold one-sided estimates; the hitrate denominator must not).
    data.truth_total = truth.end_epoch(data.truth, data.new_pages);
    data.observed = std::move(snapshot.observation);
    series.epochs.push_back(std::move(data));
    // Telemetry is recorded before any checkpoint below so the saved span
    // ring and counters include this epoch (resume → identical exports).
    epochs_counter.inc();
    if (telemetry != nullptr) {
      telemetry->span("runner.epoch", epoch_begin, system.now(),
                      telemetry::kTidRunner);
      telemetry->maybe_export(e + 1);
    }
    if (options.checkpoint.enabled() &&
        (e + 1) % options.checkpoint.every == 0) {
      util::ckpt::Writer w;
      w.begin_section("meta");
      w.put_str("collect");
      w.put_u64(options.seed);
      w.put_u32(options.n_epochs);
      w.put_u64(options.ops_per_epoch);
      w.put_bool(config.sharded_engine);
      w.put_u32(e + 1);
      w.end_section();
      w.begin_section("system");
      system.save_state(w);
      w.end_section();
      w.begin_section("daemon");
      daemon.save_state(w);
      w.end_section();
      w.begin_section("truth");
      truth.save_state(w);
      w.end_section();
      w.begin_section("series");
      save_series(w, series);
      w.end_section();
      w.begin_section("telemetry");
      w.put_bool(telemetry != nullptr);
      if (telemetry != nullptr) telemetry->save_state(w);
      w.end_section();
      util::ckpt::Writer::save_atomic(
          util::ckpt::checkpoint_path(options.checkpoint.dir,
                                      options.checkpoint.basename, e + 1),
          w.finish());
      util::ckpt::prune(options.checkpoint.dir, options.checkpoint.basename,
                        options.checkpoint.keep_last);
    }
    if (options.on_epoch) options.on_epoch(e);
  }
  series.page_sizes = truth.page_sizes();
  series.footprint_frames = 0;
  for (const auto& [key, size] : series.page_sizes) {
    series.footprint_frames += mem::pages_in(size);
  }
  series.degrade = daemon.degrade_stats();
  return series;
}

}  // namespace

EpochSeries collect_series(const WorkloadFactory& factory,
                           const sim::SimConfig& sim_config,
                           const CollectOptions& options) {
  std::string resume = options.checkpoint.resume_from;
  if (resume.empty() && options.checkpoint.resume_latest &&
      !options.checkpoint.dir.empty()) {
    resume = util::ckpt::latest_in(options.checkpoint.dir,
                                   options.checkpoint.basename);
  }
  if (!resume.empty()) {
    try {
      return collect_series_impl(factory, sim_config, options, resume);
    } catch (const util::ckpt::CkptError& err) {
      TMPROF_LOG_WARN << "collect: checkpoint '" << resume
                      << "' rejected in section '" << err.section()
                      << "': " << err.what() << "; starting cold";
    }
  }
  return collect_series_impl(factory, sim_config, options, "");
}

}  // namespace tmprof::tiering
