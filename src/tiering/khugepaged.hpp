#pragma once
/// \file khugepaged.hpp
/// THP collapse daemon (khugepaged analog). Scans process page tables for
/// 2 MiB-aligned virtual ranges fully populated with 4 KiB mappings and
/// collapses them into one huge mapping backed by a fresh contiguous
/// 2 MiB frame.
///
/// Relevant to the paper because page size *is* profiler visibility:
/// after a collapse the A-bit scanner sees one PMD entry where it saw up
/// to 512 PTEs, while IBS keeps resolving 4 KiB frames — exactly the
/// Table IV asymmetry. The collapse policy here is hotness-aware: only
/// ranges whose pages were recently observed accessed are collapsed
/// (collapsing cold ranges would waste contiguous fast-tier capacity).

#include <cstdint>

#include "sim/system.hpp"
#include "util/time.hpp"

namespace tmprof::tiering {

struct KhugepagedConfig {
  /// Minimum fraction of the 512 slots that must be mapped to collapse
  /// (Linux: khugepaged_max_ptes_none complement).
  double min_populated = 1.0;
  /// Minimum fraction of mapped pages with the A bit set (hotness gate);
  /// 0 collapses regardless of access evidence.
  double min_accessed = 0.5;
  /// Cost per collapsed range: copy 2 MiB + remap + shootdown.
  util::SimNs collapse_cost_ns = 100 * util::kMicrosecond;
};

struct CollapseStats {
  std::uint64_t ranges_scanned = 0;   ///< candidate-aligned ranges seen
  std::uint64_t collapsed = 0;
  std::uint64_t skipped_sparse = 0;   ///< not enough populated slots
  std::uint64_t skipped_cold = 0;     ///< failed the hotness gate
  std::uint64_t failed_alloc = 0;     ///< no contiguous 2 MiB frame free
  util::SimNs cost_ns = 0;
};

class Khugepaged {
 public:
  explicit Khugepaged(sim::System& system,
                      const KhugepagedConfig& config = {});

  /// One scan pass over every process; collapses qualifying ranges.
  /// The new huge frame is allocated in the tier holding the majority of
  /// the range's small frames (collapse must not silently promote/demote).
  CollapseStats scan_and_collapse();

 private:
  bool collapse_range(sim::Process& proc, mem::VirtAddr range_base,
                      CollapseStats& stats);

  sim::System& system_;
  KhugepagedConfig config_;
};

}  // namespace tmprof::tiering
