#include "tiering/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <unordered_map>

#include "pmu/events.hpp"
#include "telemetry/telemetry.hpp"
#include "tiering/epoch.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::tiering {

namespace {

/// Re-establish fault delivery for every tier-2 page: poison new tier-2
/// residents (hot if the profiler ranked them), unpoison promoted pages.
void sync_poison(sim::System& system, monitors::BadgerTrap& trap,
                 const PlacementSet& hot_pages) {
  for (sim::Process* proc : system.processes()) {
    const mem::Pid pid = proc->pid();
    const std::uint32_t core = pid % system.config().cores;
    proc->page_table().walk_fn(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
          (void)size;
          const bool in_t2 = system.phys().tier_of(pte.pfn()) != 0;
          const bool poisoned = trap.is_poisoned(pid, page_va);
          if (in_t2) {
            const bool hot = hot_pages.count(PageKey{pid, page_va}) != 0;
            trap.poison(pid, proc->page_table(), system.tlb(core), page_va,
                        hot);
          } else if (poisoned) {
            trap.unpoison(pid, proc->page_table(), page_va);
          }
        });
  }
}

}  // namespace

RunnerResult EndToEndRunner::run(const workloads::WorkloadSpec& spec,
                                 const sim::SimConfig& sim_config,
                                 const RunnerOptions& options) {
  return run(spec_factory(spec), sim_config, options);
}

namespace {

void save_move_stats(util::ckpt::Writer& w, const MoveStats& stats) {
  w.put_u64(stats.promoted);
  w.put_u64(stats.demoted);
  w.put_u64(stats.retried);
  w.put_u64(stats.deferred);
  w.put_u64(stats.aborted);
  w.put_u64(stats.no_room);
  w.put_u64(stats.rejected);
  w.put_u64(stats.cooled);
  w.put_u64(stats.shed);
  w.put_u64(stats.moved_bytes);
  w.put_u64(stats.cost_ns);
  w.put_u64(stats.backoff_ns);
}

void load_move_stats(util::ckpt::Reader& r, MoveStats& stats) {
  stats.promoted = r.get_u64();
  stats.demoted = r.get_u64();
  stats.retried = r.get_u64();
  stats.deferred = r.get_u64();
  stats.aborted = r.get_u64();
  stats.no_room = r.get_u64();
  stats.rejected = r.get_u64();
  stats.cooled = r.get_u64();
  stats.shed = r.get_u64();
  stats.moved_bytes = r.get_u64();
  stats.cost_ns = r.get_u64();
  stats.backoff_ns = r.get_u64();
}

RunnerResult run_impl(const WorkloadFactory& factory,
                      const sim::SimConfig& sim_config,
                      const RunnerOptions& options,
                      const std::string& resume_path) {
  if (options.checkpoint.enabled()) {
    // Best-effort mkdir -p; a dir that still can't be written to surfaces
    // as a CkptError("<io>") from the first save_atomic.
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint.dir, ec);
  }
  sim::SimConfig config = sim_config;
  if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
    // All tiers are physically DRAM; slowness comes from injected faults.
    config.tier2_read_ns = config.tier1_read_ns;
    config.tier2_write_ns = config.tier1_write_ns;
    if (!config.tiers.empty()) {
      const mem::TierSpec fastest = config.tiers.front();
      for (mem::TierSpec& spec : config.tiers) {
        spec.read_latency_ns = fastest.read_latency_ns;
        spec.write_latency_ns = fastest.write_latency_ns;
        spec.line_transfer_ns = fastest.line_transfer_ns;
      }
    }
  }
  if (options.n_threads >= 1) config.sharded_engine = true;
  sim::System system(config);
  {
    std::size_t i = 0;
    for (auto& generator : factory(options.seed)) {
      const double weight = i < options.process_weights.size()
                                ? options.process_weights[i]
                                : 1.0;
      system.add_process(std::move(generator), weight);
      ++i;
    }
  }

  monitors::BadgerTrap trap(options.badgertrap);
  if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
    system.set_badgertrap(&trap);
  }

  core::DaemonConfig daemon_config = options.daemon;
  daemon_config.fusion = options.fusion;
  daemon_config.charge_overhead = true;
  daemon_config.fault = options.fault;
  core::TmpDaemon daemon(system, daemon_config);
  MoverConfig mover_config = options.mover;
  mover_config.fault = options.fault;
  PageMover mover(system, mover_config);

  // Fleet consolidation (docs/CONSOLIDATION.md): tenants[i] owns the i-th
  // process. Registration order is the factory's yield order, so tenant
  // indices — and everything arbitrated from them — are reproducible.
  TenantArbiter arbiter;
  if (!options.tenants.empty()) {
    TMPROF_EXPECTS(options.tenants.size() <= system.processes().size());
    arbiter.set_capacity(config.tier1_frames);
    std::vector<mem::Pid> pinned;
    for (std::size_t i = 0; i < options.tenants.size(); ++i) {
      const mem::Pid pid = system.processes()[i]->pid();
      arbiter.register_tenant(pid, options.tenants[i]);
      if (options.tenants[i].qos == QosClass::Latency) pinned.push_back(pid);
    }
    mover.set_tenant_arbiter(&arbiter);
    daemon.set_qos_lookup(
        [&arbiter](mem::Pid pid) { return arbiter.is_batch(pid); });
    daemon.set_pinned_pids(std::move(pinned));
  }

  // Telemetry attaches before any resume load: handles resolve registry
  // cells in place, and load_state later overwrites those same cells, so
  // resolution order never affects restored values.
  telemetry::Telemetry* const telemetry = options.telemetry;
  telemetry::Counter epochs_counter;
  // Per-tier occupancy / fill gauges, named from the chain's tier names
  // sanitized to the registry charset ("tier1-dram" -> tier_tier1_dram_*).
  // Updated once per epoch from deterministic epoch-barrier state, so the
  // exported values are byte-identical across thread counts and resumes.
  std::vector<telemetry::Gauge> tier_occupied_gauges;
  std::vector<telemetry::Gauge> tier_fill_gauges;
  if (telemetry != nullptr) {
    telemetry->begin_run(options.telemetry_label.empty()
                             ? options.policy
                             : options.telemetry_label);
    system.set_telemetry(telemetry);
    daemon.set_telemetry(telemetry);
    mover.set_telemetry(telemetry);
    arbiter.set_telemetry(telemetry);
    epochs_counter = telemetry->metrics().counter("runner_epochs_total");
    for (const mem::TierSpec& spec : sim::tier_specs(config)) {
      std::string name = spec.name;
      for (char& c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        if (!ok) c = '_';
      }
      tier_occupied_gauges.push_back(
          telemetry->metrics().gauge("tier_" + name + "_occupied_frames"));
      tier_fill_gauges.push_back(
          telemetry->metrics().gauge("tier_" + name + "_fills"));
    }
  }

  const bool migrate = options.policy != "first-touch";
  const bool oracle = options.policy == "oracle";
  const bool emulation =
      options.slow_model == SlowMemoryModel::BadgerTrapEmulation;
  std::unique_ptr<Policy> policy;
  if (migrate && !oracle) policy = make_policy(options.policy);

  std::vector<std::vector<core::PageRank>> oracle_rankings;
  std::uint32_t start_epoch = 0;
  RunnerResult result;

  if (!resume_path.empty()) {
    util::ckpt::Reader r = util::ckpt::Reader::from_file(resume_path);
    r.enter_section("meta");
    if (r.get_str() != "runner") {
      throw util::ckpt::CkptError("meta", "checkpoint kind is not 'runner'");
    }
    if (r.get_u64() != options.seed) {
      throw util::ckpt::CkptError("meta", "seed mismatch");
    }
    if (r.get_str() != options.policy) {
      throw util::ckpt::CkptError("meta", "policy mismatch");
    }
    if (r.get_u8() != static_cast<std::uint8_t>(options.fusion)) {
      throw util::ckpt::CkptError("meta", "fusion mode mismatch");
    }
    if (r.get_u32() != options.n_epochs) {
      throw util::ckpt::CkptError("meta", "epoch count mismatch");
    }
    if (r.get_u64() != options.ops_per_epoch) {
      throw util::ckpt::CkptError("meta", "ops-per-epoch mismatch");
    }
    if (r.get_u8() != static_cast<std::uint8_t>(options.slow_model)) {
      throw util::ckpt::CkptError("meta", "slow-memory model mismatch");
    }
    if (r.get_bool() != config.sharded_engine) {
      throw util::ckpt::CkptError("meta", "engine mode mismatch");
    }
    start_epoch = r.get_u32();
    if (start_epoch == 0 || start_epoch >= options.n_epochs) {
      throw util::ckpt::CkptError("meta", "resume epoch out of range");
    }
    r.end_section();
    r.enter_section("system");
    system.load_state(r);
    r.end_section();
    r.enter_section("daemon");
    daemon.load_state(r);
    r.end_section();
    r.enter_section("devmon");
    daemon.driver().load_devmon_state(r);
    r.end_section();
    r.enter_section("stream");
    daemon.driver().load_stream_state(r);
    r.end_section();
    r.enter_section("mover");
    mover.load_state(r);
    r.end_section();
    r.enter_section("admission");
    if (r.get_bool() != mover.admission().enabled()) {
      throw util::ckpt::CkptError("admission", "admission presence mismatch");
    }
    if (r.get_u8() !=
        static_cast<std::uint8_t>(mover.admission().config().mode)) {
      throw util::ckpt::CkptError("admission", "admission mode mismatch");
    }
    if (mover.admission().enabled()) mover.admission().load_state(r);
    r.end_section();
    r.enter_section("tenant");
    if (r.get_bool() != arbiter.enabled()) {
      throw util::ckpt::CkptError("tenant",
                                  "tenant arbitration presence mismatch");
    }
    if (arbiter.enabled()) arbiter.load_state(r);
    r.end_section();
    r.enter_section("policy");
    if (r.get_bool() != (policy != nullptr)) {
      throw util::ckpt::CkptError("policy", "policy presence mismatch");
    }
    if (policy) policy->load_state(r);
    r.end_section();
    r.enter_section("trap");
    if (r.get_bool() != emulation) {
      throw util::ckpt::CkptError("trap", "emulation mode mismatch");
    }
    if (emulation) trap.load_state(r);
    r.end_section();
    r.enter_section("oracle");
    if (r.get_bool() != oracle) {
      throw util::ckpt::CkptError("oracle", "oracle mode mismatch");
    }
    if (oracle) {
      const std::uint64_t n_rankings = r.get_u64();
      oracle_rankings.reserve(n_rankings);
      for (std::uint64_t i = 0; i < n_rankings; ++i) {
        std::vector<core::PageRank> ranking;
        core::load_ranking(r, ranking);
        oracle_rankings.push_back(std::move(ranking));
      }
    }
    r.end_section();
    r.enter_section("runner");
    result.migrations = r.get_u64();
    load_move_stats(r, result.moves);
    r.end_section();
    r.enter_section("telemetry");
    if (r.get_bool() != (telemetry != nullptr)) {
      throw util::ckpt::CkptError("telemetry", "telemetry presence mismatch");
    }
    if (telemetry != nullptr) telemetry->load_state(r);
    r.end_section();
  }

  // Oracle pre-pass: record each epoch's true hottest pages on an identical
  // shadow run (workload streams are deterministic, so the shadow sees the
  // same references the main run will). A resumed run restores the rankings
  // from the checkpoint instead of repeating the shadow run.
  if (oracle && resume_path.empty()) {
    CollectOptions collect;
    collect.n_epochs = options.n_epochs;
    collect.ops_per_epoch = options.ops_per_epoch;
    collect.seed = options.seed;
    collect.daemon = options.daemon;
    collect.daemon.fault = options.fault;
    collect.n_threads = options.n_threads;
    const EpochSeries series = collect_series(factory, config, collect);
    for (const EpochData& data : series.epochs) {
      std::vector<core::PageRank> ranking;
      ranking.reserve(data.truth.size());
      for (const auto& [key, count] : data.truth) {
        core::PageRank pr;
        pr.key = key;
        pr.rank = count;
        ranking.push_back(pr);
      }
      std::sort(ranking.begin(), ranking.end(), core::RankOrder{});
      oracle_rankings.push_back(std::move(ranking));
    }
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (options.n_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.n_threads);
  }

  // Epoch-loop scratch, hoisted so steady-state iterations recycle the
  // snapshot's observation maps / ranking vector and the policy-side
  // buffers instead of reallocating them every epoch.
  core::ProfileSnapshot snapshot;
  std::vector<core::PageRank> filtered;
  PageSizeMap sizes;
  PlacementSet current;
  PlacementSet hot;

  for (std::uint32_t e = start_epoch; e < options.n_epochs; ++e) {
    const util::SimNs epoch_begin = system.now();
    if (config.sharded_engine) {
      system.step_parallel(options.ops_per_epoch, pool.get());
    } else {
      system.step(options.ops_per_epoch);
    }
    daemon.tick_into(snapshot);
    if (migrate && oracle) {
      // Oracle places for the *coming* epoch using its truth.
      const std::size_t next = e + 1;
      const std::vector<core::PageRank>* ranking =
          next < oracle_rankings.size() ? &oracle_rankings[next]
                                        : &snapshot.ranking;
      const MoveStats moved = mover.apply(*ranking, config.tier1_frames);
      result.migrations += moved.promoted + moved.demoted;
      result.moves.merge(moved);
    } else if (migrate) {
      // Every other policy decides through the Policy interface, seeing
      // the epoch that just ended above the mover's noise floor (rank ties
      // from single A-bit observations are not worth migrations).
      filtered.clear();
      filtered.reserve(snapshot.ranking.size());
      sizes.clear();
      for (const core::PageRank& pr : snapshot.ranking) {
        if (pr.rank < options.mover.min_rank) break;  // descending
        sim::Process& proc = system.process(pr.key.pid);
        const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
        if (!ref) continue;
        filtered.push_back(pr);
        sizes[pr.key] = ref.size;
      }
      current.clear();
      for (const auto& [key, size] : mover.residents(0)) {
        current.insert(key);
      }
      PolicyContext ctx;
      ctx.capacity_frames = config.tier1_frames;
      ctx.current = &current;
      ctx.observed_ranking = &filtered;
      ctx.page_sizes = &sizes;
      const PlacementSet next = policy->choose(ctx);
      const MoveStats moved = mover.apply_placement(next, filtered);
      result.migrations += moved.promoted + moved.demoted;
      result.moves.merge(moved);
    }
    if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
      // The emulation framework refreshes protection each period. Hot =
      // profiler-ranked pages stuck in slow memory.
      hot.clear();
      for (const core::PageRank& pr : snapshot.ranking) hot.insert(pr.key);
      sync_poison(system, trap, hot);
    }
    if (arbiter.enabled()) {
      // Feed per-tenant hitrates back before the checkpoint below, so the
      // arbiter's saved image — and its exported telemetry — includes this
      // epoch on a resume.
      for (std::uint32_t t = 0; t < arbiter.size(); ++t) {
        arbiter.note_hitrate_bp(
            t, static_cast<std::uint64_t>(
                   system.processes()[t]->tier0_hitrate() * 10000.0));
      }
      arbiter.publish_telemetry();
    }
    for (std::size_t t = 0; t < tier_occupied_gauges.size(); ++t) {
      tier_occupied_gauges[t].set(
          system.phys().used_frames(static_cast<mem::TierId>(t)));
      std::uint64_t fills = 0;
      for (const sim::Process* p : system.processes()) {
        fills += p->tier_fills(static_cast<mem::TierId>(t));
      }
      tier_fill_gauges[t].set(fills);
    }
    // Record the epoch's telemetry before any checkpoint below, so the
    // saved span ring and counters include this epoch — a resumed run
    // replays the remaining epochs and exports identical artifacts.
    epochs_counter.inc();
    if (telemetry != nullptr) {
      telemetry->span("runner.epoch", epoch_begin, system.now(),
                      telemetry::kTidRunner);
      telemetry->maybe_export(e + 1);
    }
    if (options.checkpoint.enabled() &&
        (e + 1) % options.checkpoint.every == 0) {
      util::ckpt::Writer w;
      w.begin_section("meta");
      w.put_str("runner");
      w.put_u64(options.seed);
      w.put_str(options.policy);
      w.put_u8(static_cast<std::uint8_t>(options.fusion));
      w.put_u32(options.n_epochs);
      w.put_u64(options.ops_per_epoch);
      w.put_u8(static_cast<std::uint8_t>(options.slow_model));
      w.put_bool(config.sharded_engine);
      w.put_u32(e + 1);
      w.end_section();
      w.begin_section("system");
      system.save_state(w);
      w.end_section();
      w.begin_section("daemon");
      daemon.save_state(w);
      w.end_section();
      w.begin_section("devmon");
      daemon.driver().save_devmon_state(w);
      w.end_section();
      w.begin_section("stream");
      daemon.driver().save_stream_state(w);
      w.end_section();
      w.begin_section("mover");
      mover.save_state(w);
      w.end_section();
      w.begin_section("admission");
      w.put_bool(mover.admission().enabled());
      w.put_u8(static_cast<std::uint8_t>(mover.admission().config().mode));
      if (mover.admission().enabled()) mover.admission().save_state(w);
      w.end_section();
      w.begin_section("tenant");
      w.put_bool(arbiter.enabled());
      if (arbiter.enabled()) arbiter.save_state(w);
      w.end_section();
      w.begin_section("policy");
      w.put_bool(policy != nullptr);
      if (policy) policy->save_state(w);
      w.end_section();
      w.begin_section("trap");
      w.put_bool(emulation);
      if (emulation) trap.save_state(w);
      w.end_section();
      w.begin_section("oracle");
      w.put_bool(oracle);
      if (oracle) {
        w.put_u64(oracle_rankings.size());
        for (const std::vector<core::PageRank>& ranking : oracle_rankings) {
          core::save_ranking(w, ranking);
        }
      }
      w.end_section();
      w.begin_section("runner");
      w.put_u64(result.migrations);
      save_move_stats(w, result.moves);
      w.end_section();
      w.begin_section("telemetry");
      w.put_bool(telemetry != nullptr);
      if (telemetry != nullptr) telemetry->save_state(w);
      w.end_section();
      util::ckpt::Writer::save_atomic(
          util::ckpt::checkpoint_path(options.checkpoint.dir,
                                      options.checkpoint.basename, e + 1),
          w.finish());
      util::ckpt::prune(options.checkpoint.dir, options.checkpoint.basename,
                        options.checkpoint.keep_last);
    }
    if (options.on_epoch) options.on_epoch(e);
  }

  const std::uint64_t t1 = system.pmu().truth_total(pmu::Event::MemReadTier1);
  const std::uint64_t t2 = system.pmu().truth_total(pmu::Event::MemReadTier2);
  result.tier1_hitrate =
      (t1 + t2) == 0 ? 1.0
                     : static_cast<double>(t1) / static_cast<double>(t1 + t2);
  result.protection_faults = trap.total_faults();
  result.profiling_overhead_ns = daemon.driver().overhead_ns();
  result.degrade = daemon.degrade_stats();
  // The admission gate lives in the mover, not the daemon; fold its
  // throttle tally into the degradation report here.
  result.degrade.throttled_epochs = mover.admission().throttled_epochs();
  result.process_hitrates.reserve(system.processes().size());
  for (const sim::Process* p : system.processes()) {
    result.process_hitrates.push_back(p->tier0_hitrate());
  }
  if (arbiter.enabled()) {
    result.tenants = arbiter.snapshot_outcomes();
    for (std::size_t t = 0; t < result.tenants.size(); ++t) {
      result.tenants[t].hitrate = system.processes()[t]->tier0_hitrate();
    }
  }
  // Trace-side overhead is not charged inline by the daemon (the driver's
  // interrupt handlers run on the profiled cores); add it here.
  result.runtime_ns = system.now() + daemon.driver().trace_overhead_ns();
  return result;
}

}  // namespace

RunnerResult EndToEndRunner::run(const WorkloadFactory& factory,
                                 const sim::SimConfig& sim_config,
                                 const RunnerOptions& options) {
  std::string resume = options.checkpoint.resume_from;
  if (resume.empty() && options.checkpoint.resume_latest &&
      !options.checkpoint.dir.empty()) {
    resume = util::ckpt::latest_in(options.checkpoint.dir,
                                   options.checkpoint.basename);
  }
  if (!resume.empty()) {
    try {
      return run_impl(factory, sim_config, options, resume);
    } catch (const util::ckpt::CkptError& err) {
      TMPROF_LOG_WARN << "runner: checkpoint '" << resume
                      << "' rejected in section '" << err.section()
                      << "': " << err.what() << "; starting cold";
    }
  }
  return run_impl(factory, sim_config, options, "");
}

}  // namespace tmprof::tiering
