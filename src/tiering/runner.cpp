#include "tiering/runner.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "pmu/events.hpp"
#include "tiering/epoch.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::tiering {

namespace {

/// Re-establish fault delivery for every tier-2 page: poison new tier-2
/// residents (hot if the profiler ranked them), unpoison promoted pages.
void sync_poison(sim::System& system, monitors::BadgerTrap& trap,
                 const PlacementSet& hot_pages) {
  for (sim::Process* proc : system.processes()) {
    const mem::Pid pid = proc->pid();
    const std::uint32_t core = pid % system.config().cores;
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
          (void)size;
          const bool in_t2 = system.phys().tier_of(pte.pfn()) != 0;
          const bool poisoned = trap.is_poisoned(pid, page_va);
          if (in_t2) {
            const bool hot = hot_pages.count(PageKey{pid, page_va}) != 0;
            trap.poison(pid, proc->page_table(), system.tlb(core), page_va,
                        hot);
          } else if (poisoned) {
            trap.unpoison(pid, proc->page_table(), page_va);
          }
        });
  }
}

}  // namespace

RunnerResult EndToEndRunner::run(const workloads::WorkloadSpec& spec,
                                 const sim::SimConfig& sim_config,
                                 const RunnerOptions& options) {
  return run(spec_factory(spec), sim_config, options);
}

RunnerResult EndToEndRunner::run(const WorkloadFactory& factory,
                                 const sim::SimConfig& sim_config,
                                 const RunnerOptions& options) {
  sim::SimConfig config = sim_config;
  if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
    // Both tiers are physically DRAM; slowness comes from injected faults.
    config.tier2_read_ns = config.tier1_read_ns;
    config.tier2_write_ns = config.tier1_write_ns;
  }
  if (options.n_threads >= 1) config.sharded_engine = true;
  sim::System system(config);
  for (auto& generator : factory(options.seed)) {
    system.add_process(std::move(generator));
  }

  monitors::BadgerTrap trap(options.badgertrap);
  if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
    system.set_badgertrap(&trap);
  }

  core::DaemonConfig daemon_config = options.daemon;
  daemon_config.fusion = options.fusion;
  daemon_config.charge_overhead = true;
  daemon_config.fault = options.fault;
  core::TmpDaemon daemon(system, daemon_config);
  MoverConfig mover_config = options.mover;
  mover_config.fault = options.fault;
  PageMover mover(system, mover_config);

  const bool migrate = options.policy != "first-touch";
  const bool oracle = options.policy == "oracle";
  std::unique_ptr<Policy> policy;
  if (migrate && !oracle) policy = make_policy(options.policy);

  // Oracle pre-pass: record each epoch's true hottest pages on an identical
  // shadow run (workload streams are deterministic, so the shadow sees the
  // same references the main run will).
  std::vector<std::vector<core::PageRank>> oracle_rankings;
  if (oracle) {
    CollectOptions collect;
    collect.n_epochs = options.n_epochs;
    collect.ops_per_epoch = options.ops_per_epoch;
    collect.seed = options.seed;
    collect.daemon = options.daemon;
    collect.daemon.fault = options.fault;
    collect.n_threads = options.n_threads;
    const EpochSeries series = collect_series(factory, config, collect);
    for (const EpochData& data : series.epochs) {
      std::vector<core::PageRank> ranking;
      ranking.reserve(data.truth.size());
      for (const auto& [key, count] : data.truth) {
        core::PageRank pr;
        pr.key = key;
        pr.rank = count;
        ranking.push_back(pr);
      }
      std::sort(ranking.begin(), ranking.end(),
                [](const core::PageRank& a, const core::PageRank& b) {
                  if (a.rank != b.rank) return a.rank > b.rank;
                  return a.key < b.key;
                });
      oracle_rankings.push_back(std::move(ranking));
    }
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (options.n_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.n_threads);
  }

  RunnerResult result;
  for (std::uint32_t e = 0; e < options.n_epochs; ++e) {
    if (config.sharded_engine) {
      system.step_parallel(options.ops_per_epoch, pool.get());
    } else {
      system.step(options.ops_per_epoch);
    }
    core::ProfileSnapshot snapshot = daemon.tick();
    if (migrate && oracle) {
      // Oracle places for the *coming* epoch using its truth.
      const std::size_t next = e + 1;
      const std::vector<core::PageRank>* ranking =
          next < oracle_rankings.size() ? &oracle_rankings[next]
                                        : &snapshot.ranking;
      const MoveStats moved = mover.apply(*ranking, config.tier1_frames);
      result.migrations += moved.promoted + moved.demoted;
      result.moves.merge(moved);
    } else if (migrate) {
      // Every other policy decides through the Policy interface, seeing
      // the epoch that just ended above the mover's noise floor (rank ties
      // from single A-bit observations are not worth migrations).
      std::vector<core::PageRank> filtered;
      filtered.reserve(snapshot.ranking.size());
      PageSizeMap sizes;
      for (const core::PageRank& pr : snapshot.ranking) {
        if (pr.rank < options.mover.min_rank) break;  // descending
        sim::Process& proc = system.process(pr.key.pid);
        const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
        if (!ref) continue;
        filtered.push_back(pr);
        sizes[pr.key] = ref.size;
      }
      PlacementSet current;
      for (const auto& [key, size] : mover.residents(0)) {
        current.insert(key);
      }
      PolicyContext ctx;
      ctx.capacity_frames = config.tier1_frames;
      ctx.current = &current;
      ctx.observed_ranking = &filtered;
      ctx.page_sizes = &sizes;
      const PlacementSet next = policy->choose(ctx);
      const MoveStats moved = mover.apply_placement(next, filtered);
      result.migrations += moved.promoted + moved.demoted;
      result.moves.merge(moved);
    }
    if (options.slow_model == SlowMemoryModel::BadgerTrapEmulation) {
      // The emulation framework refreshes protection each period. Hot =
      // profiler-ranked pages stuck in slow memory.
      PlacementSet hot;
      for (const core::PageRank& pr : snapshot.ranking) hot.insert(pr.key);
      sync_poison(system, trap, hot);
    }
  }

  const std::uint64_t t1 = system.pmu().truth_total(pmu::Event::MemReadTier1);
  const std::uint64_t t2 = system.pmu().truth_total(pmu::Event::MemReadTier2);
  result.tier1_hitrate =
      (t1 + t2) == 0 ? 1.0
                     : static_cast<double>(t1) / static_cast<double>(t1 + t2);
  result.protection_faults = trap.total_faults();
  result.profiling_overhead_ns = daemon.driver().overhead_ns();
  result.degrade = daemon.degrade_stats();
  // Trace-side overhead is not charged inline by the daemon (the driver's
  // interrupt handlers run on the profiled cores); add it here.
  result.runtime_ns = system.now() + daemon.driver().trace_overhead_ns();
  return result;
}

}  // namespace tmprof::tiering
