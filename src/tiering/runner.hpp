#pragma once
/// \file runner.hpp
/// End-to-end tiered-memory execution (Section VI-C). Runs a workload
/// online: the TMP daemon profiles each epoch, the policy picks tier-1
/// residents, the page mover migrates at the epoch horizon, and the run's
/// total simulated time yields the speedup over the first-come-first-
/// allocate baseline.
///
/// Two slow-memory models are supported:
///  * native     — tier 2 has NVM-class load/store latency (simulator-native)
///  * badgertrap — both tiers are DRAM-fast, but tier-2 pages are poisoned
///                 each refresh period and every faulting access pays the
///                 paper's emulation constants (10 µs, +13 µs if hot).
///                 This reproduces the paper's emulation framework exactly.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/daemon.hpp"
#include "monitors/badgertrap.hpp"
#include "sim/system.hpp"
#include "tiering/epoch.hpp"
#include "tiering/mover.hpp"
#include "tiering/policies.hpp"
#include "tiering/tenant.hpp"
#include "workloads/registry.hpp"

namespace tmprof::tiering {

enum class SlowMemoryModel : std::uint8_t { Native, BadgerTrapEmulation };

struct RunnerOptions {
  std::string policy = "history";       ///< "first-touch" disables migration
  core::FusionMode fusion = core::FusionMode::Sum;
  std::uint32_t n_epochs = 12;
  std::uint64_t ops_per_epoch = 1'000'000;
  std::uint64_t seed = 42;
  SlowMemoryModel slow_model = SlowMemoryModel::Native;
  MoverConfig mover;                      ///< migration cost + thresholds
  monitors::BadgerTrapConfig badgertrap;  ///< used in emulation mode
  core::DaemonConfig daemon;
  /// 0 (default) = legacy serial engine, bit-exact historical behavior.
  /// >= 1 = deterministic sharded engine; 1 runs the shards inline, > 1
  /// uses a worker pool. All values >= 1 produce identical RunnerResults.
  std::uint32_t n_threads = 0;
  /// Deterministic fault injection, shared by the mover and the daemon
  /// (docs/ROBUSTNESS.md). Disabled by default; see --fault-rate,
  /// --fault-seed and --fault-sites on the benches.
  util::FaultConfig fault{};
  /// Periodic checkpointing and resume (docs/RECOVERY.md). A rejected
  /// resume file logs the bad section and falls back to a cold start.
  util::ckpt::Options checkpoint{};
  /// Called after each completed epoch (chaos harness kill hook).
  std::function<void(std::uint32_t)> on_epoch;
  /// Telemetry sink wired through every layer (system, daemon, mover) for
  /// the duration of the run; null (default) disables telemetry at zero
  /// hot-path cost (docs/OBSERVABILITY.md). Not owned. Telemetry state
  /// rides in the checkpoint, so a resumed run exports identical files.
  telemetry::Telemetry* telemetry = nullptr;
  /// Chrome-trace process label for this run ("" = use the policy name).
  std::string telemetry_label;
  /// Fleet consolidation (docs/CONSOLIDATION.md): tenants[i] owns the i-th
  /// process the factory yields. Empty (default) disables arbitration and
  /// keeps every layer bitwise identical to its pre-fleet behavior. The
  /// arbiter checkpoints in its own "tenant" section; a resumed run with a
  /// different tenant shape rejects the section and cold-starts.
  std::vector<TenantSpec> tenants;
  /// Scheduler weight of the i-th process (missing entries default 1.0).
  std::vector<double> process_weights;
};

struct RunnerResult {
  util::SimNs runtime_ns = 0;          ///< includes charged profiling cost
  double tier1_hitrate = 0.0;          ///< memory accesses served by tier 1
  std::uint64_t migrations = 0;
  std::uint64_t protection_faults = 0; ///< emulation-mode faults taken
  util::SimNs profiling_overhead_ns = 0;
  MoveStats moves;                     ///< mover tallies summed over epochs
  core::DegradeStats degrade;          ///< daemon degradation tallies
  /// Per-tenant summaries (empty unless RunnerOptions::tenants was set).
  std::vector<TenantOutcome> tenants;
  /// Final tier-1 hitrate of every process, in factory yield order (always
  /// filled; lets benches attribute hitrates with arbitration off).
  std::vector<double> process_hitrates;
};

class EndToEndRunner {
 public:
  /// Execute one configuration. `sim_config.tier1_frames` defines the fast
  /// tier; tier 2 must be large enough for the spilled footprint.
  [[nodiscard]] static RunnerResult run(const workloads::WorkloadSpec& spec,
                                        const sim::SimConfig& sim_config,
                                        const RunnerOptions& options);

  /// Same, for arbitrary workload sets (custom applications).
  [[nodiscard]] static RunnerResult run(const WorkloadFactory& factory,
                                        const sim::SimConfig& sim_config,
                                        const RunnerOptions& options);
};

}  // namespace tmprof::tiering
