#include "tiering/swap.hpp"

#include "util/assert.hpp"

namespace tmprof::tiering {

SwapFarMemory::SwapFarMemory(sim::System& system, const SwapConfig& config)
    : system_(system), config_(config) {
  system_.set_fault_hook(
      [this](sim::Process& proc, mem::VirtAddr vaddr, bool is_store) {
        return handle_fault(proc, vaddr, is_store);
      });
}

SwapFarMemory::~SwapFarMemory() { system_.set_fault_hook(nullptr); }

void SwapFarMemory::mark_swapped(mem::Pid pid, mem::VirtAddr page_va) {
  sim::Process& proc = system_.process(pid);
  const mem::PteRef ref = proc.page_table().resolve(page_va);
  TMPROF_ASSERT(ref && ref.page_va == page_va);
  ref.pte->set_poisoned(true);
  const std::uint32_t core = pid % system_.config().cores;
  system_.tlb(core).invalidate_page(pid, page_va, ref.size);
}

void SwapFarMemory::seal() {
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    bool flushed_any = false;
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize, mem::Pte& pte) {
          const core::PageKey key{pid, page_va};
          if (!tracked_.insert(key).second) return;  // already managed
          if (system_.phys().tier_of(pte.pfn()) == 0) {
            resident_fifo_.push_back(key);
          } else {
            pte.set_poisoned(true);
            flushed_any = true;
          }
        });
    if (flushed_any) {
      const std::uint32_t core = pid % system_.config().cores;
      system_.tlb(core).invalidate_pid(pid);
    }
  }
}

util::SimNs SwapFarMemory::handle_fault(sim::Process& proc,
                                        mem::VirtAddr vaddr, bool is_store) {
  (void)is_store;
  const mem::PteRef ref = proc.page_table().resolve(vaddr);
  TMPROF_ASSERT(ref && ref.pte->poisoned());
  const mem::VirtAddr page_va = ref.page_va;
  ++major_faults_;
  util::SimNs cost = config_.major_fault_ns;

  // Make room: evict the oldest resident page to the swap tier.
  while (system_.phys().free_frames(0) < mem::pages_in(ref.size) &&
         !resident_fifo_.empty()) {
    const core::PageKey victim = resident_fifo_.front();
    resident_fifo_.pop_front();
    sim::Process& vproc = system_.process(victim.pid);
    const mem::PteRef vref = vproc.page_table().resolve(victim.page_va);
    if (!vref || system_.phys().tier_of(vref.pte->pfn()) != 0) continue;
    if (system_.migrate_page(victim.pid, victim.page_va, 1)) {
      cost += config_.copy_cost_ns;
      mark_swapped(victim.pid, victim.page_va);
    }
  }

  // Swap the faulting page in.
  ref.pte->set_poisoned(false);
  if (system_.phys().free_frames(0) >= mem::pages_in(ref.size) &&
      system_.migrate_page(proc.pid(), page_va, 0)) {
    cost += config_.copy_cost_ns;
    ++swapped_in_;
    resident_fifo_.push_back(core::PageKey{proc.pid(), page_va});
  }
  // If tier 1 had no room the access proceeds from tier 2 this once (the
  // kernel analog: allocation failure falls back, page stays out).
  return cost;
}

}  // namespace tmprof::tiering
