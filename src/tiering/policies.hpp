#pragma once
/// \file policies.hpp
/// Concrete placement policies: the paper's Oracle and History (Table II),
/// the first-come-first-allocate baseline, and a frequency-decay extension
/// (EWMA of observed hotness) for the ablation benches.

#include <memory>
#include <string>

#include "core/hotness.hpp"
#include "tiering/policy.hpp"

namespace tmprof::tiering {

/// NUMA-like first-come-first-allocate: pages enter tier 1 in first-touch
/// order until it is full; nothing ever migrates. The paper's baseline.
class FirstTouchPolicy final : public Policy {
 public:
  PlacementSet choose(const PolicyContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return "first-touch";
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  PlacementSet placement_;  ///< sticky across epochs
  std::uint64_t used_frames_ = 0;
};

/// History: at each epoch horizon, bring the *previous* epoch's hottest
/// pages (per the profiler's fused ranking) into tier 1.
///
/// With `density_rank` set, pages are ordered by hotness per 4 KiB frame
/// instead of raw counts. The paper's raw-sum rank is fine on uniform
/// 4 KiB testbeds, but with mixed THP tenants a 2 MiB entry aggregates 512
/// frames of samples and crowds hot small pages out of the capacity
/// knapsack (see bench/consolidation for the measured effect).
class HistoryPolicy final : public Policy {
 public:
  explicit HistoryPolicy(bool density_rank = false)
      : density_rank_(density_rank) {}

  PlacementSet choose(const PolicyContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return density_rank_ ? "history-density" : "history";
  }

 private:
  bool density_rank_;
};

/// Oracle: assumes knowledge of the coming epoch's true per-page access
/// counts and places the hottest pages. Upper bound for policy design.
class OraclePolicy final : public Policy {
 public:
  PlacementSet choose(const PolicyContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "oracle"; }
};

/// Extension: exponentially-weighted moving average of observed hotness,
/// smoothing History's reactivity on phase-changing workloads.
///
/// With a sketch-mode HotnessConfig the score table is bounded: after each
/// epoch's fold only the `hotness.candidates` highest-scoring pages are
/// retained (decayed float scores do not fit a count-min sketch, so this
/// is a SpaceSaving-style cap rather than a sketch). Deterministic — the
/// retained set is the top of the strict (score desc, key asc) order.
class FrequencyDecayPolicy final : public Policy {
 public:
  explicit FrequencyDecayPolicy(double decay = 0.5,
                                const core::HotnessConfig& hotness = {});

  PlacementSet choose(const PolicyContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "freq-decay"; }

  /// Pages currently carrying a score (bounded in sketch mode).
  [[nodiscard]] std::size_t tracked() const noexcept { return score_.size(); }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  double decay_;
  std::size_t score_cap_;  ///< 0 = unbounded (exact mode)
  core::PageMap<double> score_;
};

/// Extension (CLOCK-DWF-flavored, cf. the paper's ref [32]): write-aware
/// History. Slow NVM tiers pay a much larger penalty for writes than
/// reads, so pages with dirty-page-log (PML) evidence get their rank
/// boosted before the capacity cut. Requires the driver's PML collection
/// (DriverConfig::use_pml); degrades gracefully to plain History without
/// it.
class WriteHistoryPolicy final : public Policy {
 public:
  explicit WriteHistoryPolicy(double write_weight = 4.0);

  PlacementSet choose(const PolicyContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return "write-history";
  }

 private:
  double write_weight_;
};

/// Factory by name: "first-touch", "history", "oracle", "freq-decay",
/// "write-history".
[[nodiscard]] std::unique_ptr<Policy> make_policy(const std::string& name);

/// Hotness-aware factory: policies with per-page state ("freq-decay")
/// bound it under a sketch-mode config; the rest are unaffected.
[[nodiscard]] std::unique_ptr<Policy> make_policy(
    const std::string& name, const core::HotnessConfig& hotness);

}  // namespace tmprof::tiering
