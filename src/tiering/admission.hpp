#pragma once
/// \file admission.hpp
/// Migration admission control (docs/ADMISSION.md). The PR-2 mover retries
/// and defers failed moves but never asks whether a migration is *worth
/// it*; under shifting workloads the daemon can issue migration storms that
/// burn bandwidth promoting pages whose heat is already gone. The
/// AdmissionController sits in front of every PageMover::apply* path and
/// scores each promotion candidate:
///
///  * benefit — expected fast-tier hits saved, predicted from a bounded
///    per-page history of recent epoch ranks (geometrically decayed, so a
///    page hot for several epochs outscores a one-epoch wonder);
///  * cost — bytes moved, charged against a simulated-time token-bucket
///    bandwidth budget shared by all migrations;
///  * ping-pong — pages demoted then re-requested within K epochs earn an
///    exponentially escalating cool-down;
///  * storm brake — a per-epoch cap on admitted promotions; because the
///    mover evaluates candidates under the total RankOrder, the brake
///    sheds the lowest-benefit moves first, deterministically.
///
/// Everything is integer arithmetic over epoch-barrier inputs, so verdicts
/// are bitwise invariant across thread counts, and the whole controller
/// (history, bucket, cool-downs, its own metrics registry) checkpoints
/// under save_state/load_state so kill/resume stays bitwise identical.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/ranking.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace tmprof::telemetry {
class Telemetry;
}  // namespace tmprof::telemetry

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::tiering {

class TenantArbiter;

using core::PageKey;
using core::PageKeyHash;

enum class AdmissionMode : std::uint8_t {
  Off,       ///< gate disabled: mover behavior bitwise identical to pre-gate
  Static,    ///< fixed benefit floor (config.min_benefit)
  Adaptive,  ///< floor retuned each epoch from the controller's own registry
};

[[nodiscard]] constexpr std::string_view to_string(
    AdmissionMode mode) noexcept {
  switch (mode) {
    case AdmissionMode::Off: return "off";
    case AdmissionMode::Static: return "static";
    case AdmissionMode::Adaptive: return "adaptive";
  }
  return "?";
}

/// Parse an `--admission=` value. Throws std::invalid_argument enumerating
/// the valid mode names on anything unrecognized.
[[nodiscard]] AdmissionMode parse_admission_mode(const std::string& text);

struct AdmissionConfig {
  AdmissionMode mode = AdmissionMode::Off;
  /// Epochs of per-page rank history kept for benefit prediction (1..8).
  std::uint32_t history_epochs = 4;
  /// Distinct recent epochs a candidate must appear in the ranking before
  /// a promotion is admitted. 2 (default) filters one-epoch wonders: a page
  /// whose heat does not survive a single epoch boundary is exactly the
  /// page whose migration pays cost for no future hits.
  std::uint32_t min_history = 2;
  /// Benefit floor: Static rejects candidates scoring below it; Adaptive
  /// uses it as the floor the retuned threshold decays back to.
  std::uint64_t min_benefit = 0;
  /// Simulated migration bandwidth in bytes per simulated second
  /// (0 = unlimited; the token bucket is bypassed entirely).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Token-bucket depth in bytes: the largest burst admitted at once.
  std::uint64_t burst_bytes = 4u << 20;
  /// Ping-pong window K: a page demoted then re-requested within K epochs
  /// earns a cool-down of K << (strikes - 1) epochs. Must be >= 1.
  std::uint32_t cooldown_epochs = 4;
  /// Cap on the escalating cool-down span.
  std::uint32_t max_cooldown_epochs = 64;
  /// Storm brake: admitted promotions per epoch (0 = unlimited).
  std::uint64_t max_moves_per_epoch = 0;
  /// History-map compaction bound: when more pages than this carry
  /// history, entries with no recent sighting, no live cool-down and no
  /// recent demotion are dropped (deterministically, by value predicate).
  std::size_t max_history_pages = std::size_t{1} << 16;
};

/// Per-candidate verdict, in pipeline order. Stable numeric values: the
/// mover caches verdicts per apply in a u8 map.
enum class AdmissionDecision : std::uint8_t {
  Admit = 0,
  Cooled = 1,           ///< ping-pong cool-down active (or just triggered)
  RejectBenefit = 2,    ///< below the benefit floor / evidence requirement
  Shed = 3,             ///< storm brake: per-epoch admission cap reached
  RejectBandwidth = 4,  ///< token bucket short of the move's bytes
};

class AdmissionController {
 public:
  AdmissionController() : AdmissionController(AdmissionConfig{}) {}
  explicit AdmissionController(const AdmissionConfig& config);

  [[nodiscard]] bool enabled() const noexcept {
    return config_.mode != AdmissionMode::Off;
  }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Epoch-barrier entry, called once at the top of each mover apply:
  /// refills the bandwidth bucket to `now`, folds the epoch's ranking into
  /// the per-page history, recounts cooling pages, resets the storm brake
  /// and (Adaptive) retunes the benefit floor from the controller's own
  /// registry tallies. No-op when the mode is Off.
  void begin_epoch(util::SimNs now,
                   const std::vector<core::PageRank>& ranking);

  /// Score one promotion candidate of `bytes` bytes. Mutates bucket and
  /// brake state on Admit and cool-down state on a detected ping-pong; the
  /// caller must consult each candidate at most once per epoch.
  [[nodiscard]] AdmissionDecision decide(const PageKey& key,
                                         std::uint64_t bytes);

  /// Mover outcome hook: a demotion landed. Arms the ping-pong detector.
  void note_demoted(const PageKey& key);

  /// Predicted benefit (expected fast-tier hits saved next epoch): the
  /// rank history decayed geometrically by age, sum over the window.
  [[nodiscard]] std::uint64_t benefit(const PageKey& key) const;
  /// Distinct recent epochs of ranking evidence inside the window.
  [[nodiscard]] std::uint32_t evidence(const PageKey& key) const;

  [[nodiscard]] std::uint64_t tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::uint64_t threshold() const noexcept {
    return threshold_;
  }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  /// Pages with a live cool-down, recounted at the last begin_epoch.
  [[nodiscard]] std::uint64_t cooldown_pages() const noexcept {
    return cooldown_pages_;
  }
  /// Epochs in which at least one move was shed or bandwidth-rejected.
  [[nodiscard]] std::uint64_t throttled_epochs() const noexcept {
    return throttled_epochs_;
  }
  [[nodiscard]] std::size_t history_pages() const noexcept {
    return history_.size();
  }

  /// The controller's own metrics registry (mover_rejected_total,
  /// mover_cooled_total, mover_shed_total, mover_admitted_total,
  /// mover_cooldown_pages, admission_tokens, admission_threshold). The
  /// Adaptive mode reads these values back — there are no private tallies
  /// to drift from what operators see.
  [[nodiscard]] const telemetry::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

  /// Mirror the controller's counters/gauges into an external telemetry
  /// sink (docs/OBSERVABILITY.md). Null detaches. Never registers anything
  /// when the mode is Off, so disabled runs export byte-identical files.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Attach (or with null, detach) the fleet tenant arbiter
  /// (docs/CONSOLIDATION.md): admitted bytes are additionally charged
  /// against the tenant's per-epoch bandwidth sub-budget, after the global
  /// bucket has been found sufficient. Null keeps the controller bitwise
  /// identical to its pre-arbitration self.
  void set_tenant_arbiter(TenantArbiter* arbiter) noexcept {
    arbiter_ = arbiter;
  }

  /// Checkpoint hooks: epoch counter, token bucket (tokens, refill carry,
  /// last refill time), adaptive threshold, brake state, per-page history
  /// in ascending key order, and the internal registry.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  /// Ring capacity for per-page rank history (config.history_epochs <= 8).
  static constexpr std::uint32_t kMaxHistory = 8;

  struct PageHistory {
    std::uint64_t ranks[kMaxHistory] = {};  ///< [0] = most recent sighting
    std::uint32_t last_epoch = 0;           ///< epoch of ranks[0] (0 = none)
    std::uint32_t promote_epoch = 0;        ///< last admission (0 = never)
    std::uint32_t demote_epoch = 0;         ///< last demotion (0 = never)
    std::uint32_t cooldown_until = 0;       ///< cooled through this epoch
    std::uint8_t len = 0;                   ///< live entries in ranks[]
    std::uint8_t strikes = 0;               ///< consecutive ping-pongs
  };

  void refill(util::SimNs now);
  void record(const PageKey& key, std::uint64_t rank);
  void compact();
  void retune();
  [[nodiscard]] std::uint64_t benefit_of(const PageHistory& h) const;
  [[nodiscard]] std::uint32_t evidence_of(const PageHistory& h) const;
  void mark_throttled();

  AdmissionConfig config_;
  core::PageMap<PageHistory> history_;
  core::PageMap<PageHistory> compact_scratch_;
  std::uint32_t epoch_ = 0;  ///< 1-based; 0 = begin_epoch never called
  std::uint64_t tokens_ = 0;
  std::uint64_t refill_carry_ = 0;  ///< sub-token remainder, < kSecond
  util::SimNs last_refill_ns_ = 0;
  std::uint64_t threshold_ = 0;  ///< live benefit floor (Adaptive retunes)
  std::uint64_t admitted_this_epoch_ = 0;
  std::uint64_t cooldown_pages_ = 0;
  std::uint64_t throttled_epochs_ = 0;
  bool throttled_this_epoch_ = false;
  /// Registry snapshot retune() compares against (previous epoch's
  /// cooled/shed/bandwidth-rejected totals).
  std::uint64_t last_pressure_total_ = 0;
  TenantArbiter* arbiter_ = nullptr;  ///< not owned; may be null

  telemetry::MetricsRegistry registry_;
  telemetry::Counter c_rejected_;
  telemetry::Counter c_cooled_;
  telemetry::Counter c_shed_;
  telemetry::Counter c_admitted_;
  telemetry::Counter c_bandwidth_rejected_;
  telemetry::Gauge g_cooldown_pages_;
  telemetry::Gauge g_tokens_;
  telemetry::Gauge g_threshold_;
  /// External mirrors (null unless a sink is attached and the gate is on).
  telemetry::Counter x_rejected_;
  telemetry::Counter x_cooled_;
  telemetry::Counter x_shed_;
  telemetry::Counter x_admitted_;
  telemetry::Gauge x_cooldown_pages_;
  telemetry::Gauge x_tokens_;
  telemetry::Gauge x_threshold_;
};

}  // namespace tmprof::tiering
