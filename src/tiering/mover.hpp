#pragma once
/// \file mover.hpp
/// The page mover (Section IV, Step 3): reconciles tier-1 residency with
/// the policy's decision at each epoch horizon. Demotions free room first,
/// then promotions fill it; each page move performs the remap + shootdown
/// through the System and charges the configured per-page migration cost
/// (the paper's emulation uses 50 µs per page).
///
/// Robustness layer (docs/ROBUSTNESS.md): migrations can fail the way
/// `move_pages()` fails on real kernels. Transient -EBUSY-style failures
/// are retried with exponential backoff in simulated time under a per-epoch
/// retry budget; -ENOMEM-style failures (destination tier full) park the
/// promotion on a deferred queue that is re-attempted in later epochs, so
/// profiler intent survives a temporarily full fast tier.
///
/// Admission layer (docs/ADMISSION.md): when MoverConfig::admission is
/// enabled, every promotion candidate is scored by the AdmissionController
/// *before* demotions are sized, so residents are never evicted to make
/// room for a move the gate then refuses. Rejected candidates keep their
/// demotion protection (they stay "desired") but neither reserve frames
/// nor migrate this epoch.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/ranking.hpp"
#include "sim/system.hpp"
#include "telemetry/metrics.hpp"
#include "tiering/admission.hpp"
#include "tiering/policy.hpp"
#include "util/fault.hpp"

namespace tmprof::tiering {

class TenantArbiter;

struct MoveStats {
  std::uint64_t promoted = 0;  ///< pages moved to a faster tier
  std::uint64_t demoted = 0;   ///< pages moved to a slower tier
  std::uint64_t retried = 0;   ///< re-attempts after transient (EBUSY) failures
  std::uint64_t deferred = 0;  ///< promotions parked on the deferred queue
  std::uint64_t aborted = 0;   ///< moves dropped after the retry budget ran out
  std::uint64_t no_room = 0;   ///< moves whose destination tier had no room
  std::uint64_t rejected = 0;  ///< admission: below benefit floor / bandwidth
  std::uint64_t cooled = 0;    ///< admission: ping-pong cool-down active
  std::uint64_t shed = 0;      ///< admission: storm brake shed the move
  std::uint64_t moved_bytes = 0;  ///< bytes actually migrated (both ways)
  util::SimNs cost_ns = 0;     ///< migration cost charged to the clock
  util::SimNs backoff_ns = 0;  ///< retry backoff charged to the clock

  /// Legacy view: moves that did not land anywhere this epoch.
  [[nodiscard]] std::uint64_t failed() const noexcept {
    return aborted + no_room;
  }
  void merge(const MoveStats& other) noexcept {
    promoted += other.promoted;
    demoted += other.demoted;
    retried += other.retried;
    deferred += other.deferred;
    aborted += other.aborted;
    no_room += other.no_room;
    rejected += other.rejected;
    cooled += other.cooled;
    shed += other.shed;
    moved_bytes += other.moved_bytes;
    cost_ns += other.cost_ns;
    backoff_ns += other.backoff_ns;
  }
};

struct MoverConfig {
  /// Cost charged per migrated page *per hop* (the paper's emulation uses
  /// 50 µs). A move between adjacent tiers is one hop; over an N-tier
  /// chain the cost scales with |src - dest|, so skipping a middle tier
  /// pays for the longer copy path. Every two-tier move is one hop, which
  /// keeps all pre-chain results bitwise unchanged.
  util::SimNs per_page_cost_ns = 50 * util::kMicrosecond;
  /// When false, every move charges a flat per_page_cost_ns regardless of
  /// tier distance — the pre-chain behavior, kept so the historical
  /// three_tier bench reproduces its table byte-for-byte. Irrelevant on
  /// two-tier systems, where every move is one hop either way.
  bool hop_scaled_cost = true;
  /// Only pages ranked at least this hot are worth a migration ("to
  /// justify the migration cost, the hottest pages should be migrated",
  /// Section IV). Rank 1 is the tie mass every touched page reaches via a
  /// single A-bit observation; demanding 2+ filters the noise floor.
  std::uint64_t min_rank = 2;
  /// Upper bound on promotions per apply() (0 = unlimited); bounds the
  /// per-epoch migration burst on noisy profiles.
  std::uint64_t max_promotions = 0;
  /// Retries allowed per move after a transient (EBUSY) failure.
  std::uint32_t max_retries = 3;
  /// Backoff charged before the first retry; doubles per further retry.
  util::SimNs retry_backoff_ns = 5 * util::kMicrosecond;
  /// Total retries allowed per apply call (0 = unlimited). When the budget
  /// runs out, further transient failures abort instead of retrying.
  std::uint64_t retry_budget = 128;
  /// Bound on the deferred-promotion queue; overflow drops the coldest
  /// (newest) entries rather than growing without limit.
  std::size_t max_deferred = 4096;
  /// Deterministic fault injection (disabled by default: rate 0).
  util::FaultConfig fault{};
  /// Migration admission control (docs/ADMISSION.md). Off by default: the
  /// mover behaves bitwise identically to its pre-admission self.
  AdmissionConfig admission{};
};

class PageMover {
 public:
  explicit PageMover(sim::System& system, const MoverConfig& config = {});
  PageMover(sim::System& system, util::SimNs per_page_cost_ns)
      : PageMover(system, MoverConfig{per_page_cost_ns, true, 2, 0}) {}

  /// Make tier 1 hold (as nearly as possible) the hottest ranked pages that
  /// fit in `capacity_frames`. Charges migration time to the system clock.
  MoveStats apply(const std::vector<core::PageRank>& ranking,
                  std::uint64_t capacity_frames);

  /// Reconcile tier-1 residency with an explicit placement decision (the
  /// output of any tiering::Policy). `ranking` orders promotions and
  /// identifies cold residents for demotion; pages in `desired` are moved
  /// in regardless of the min_rank noise floor (the policy already chose).
  MoveStats apply_placement(const PlacementSet& desired,
                            const std::vector<core::PageRank>& ranking);

  /// Waterfall placement across an arbitrary tier ladder: the hottest
  /// ranked pages fill tier 0 up to capacities[0], the next-hottest fill
  /// tier 1 up to capacities[1], and so on; pages below the noise floor
  /// (or beyond every capacity) belong in the last tier. One capacity per
  /// tier above the bottom; requires the System to have
  /// capacities.size() + 1 tiers.
  ///
  /// Like real tiering kernels, reconciliation needs a few spare frames in
  /// the destination tiers to stage exchanges: if every tier is 100% full,
  /// demotions (and therefore the promotions waiting on them) fail
  /// gracefully — reported in MoveStats::no_room — and the blocked
  /// promotions are parked on the deferred queue for later epochs.
  MoveStats apply_tiers(const std::vector<core::PageRank>& ranking,
                        const std::vector<std::uint64_t>& capacities);

  /// Enumerate pages currently resident in tier `tier` with their sizes.
  [[nodiscard]] std::vector<std::pair<PageKey, mem::PageSize>> residents(
      mem::TierId tier);

  /// Promotions waiting on the deferred queue for a future epoch.
  [[nodiscard]] std::size_t deferred_pending() const noexcept {
    return deferred_.size();
  }
  /// The admission gate (docs/ADMISSION.md). Disabled (mode Off) unless
  /// MoverConfig::admission enables it; the runner checkpoints it as its
  /// own "admission" section.
  [[nodiscard]] AdmissionController& admission() noexcept {
    return admission_;
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }
  /// Injection tallies (all zero unless MoverConfig::fault enables sites).
  [[nodiscard]] const util::FaultStats& fault_stats() const noexcept {
    return fault_.stats();
  }
  /// Attach (or with null, detach) the fleet tenant arbiter
  /// (docs/CONSOLIDATION.md): per-tenant fast-tier quotas gate promotions,
  /// reclaim takes batch tenants' burst pages first (never below a floor),
  /// and migration fault keys switch to arrival-order-invariant tenant
  /// tags. Null (default) keeps the mover bitwise identical to its
  /// pre-arbitration self. Forwards to the admission gate for the
  /// per-tenant bandwidth sub-budget.
  void set_tenant_arbiter(TenantArbiter* arbiter) noexcept;

  /// Attach (or with null, detach) the telemetry sink: per-apply move
  /// counters, the deferred-queue gauge and a "mover.apply" span per batch
  /// (docs/OBSERVABILITY.md).
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Checkpoint hooks: the deferred queue, the move sequence counter (fault
  /// keys must not repeat across a resume) and the injector tallies.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  enum class MoveOutcome : std::uint8_t { Moved, NoRoom, Aborted };

  MoveStats reconcile(const PlacementSet& desired,
                      const std::vector<core::PageRank>& ranking);
  /// One migration with retry/backoff; `budget` is the remaining per-apply
  /// retry budget. Increments retried/aborted/no_room; the caller accounts
  /// promoted/demoted and the per-page cost on Moved.
  MoveOutcome try_move(const PageKey& key, mem::TierId dest, MoveStats& stats,
                       std::uint64_t& budget);
  /// Per-page migration cost over the chain: per_page_cost_ns scaled by the
  /// tier distance |src - dest| (callers capture `src` before try_move
  /// rewrites the mapping).
  [[nodiscard]] util::SimNs hop_cost(mem::TierId src,
                                     mem::TierId dest) const noexcept {
    if (!config_.hop_scaled_cost) return config_.per_page_cost_ns;
    const std::uint32_t hops =
        src > dest ? static_cast<std::uint32_t>(src - dest)
                   : static_cast<std::uint32_t>(dest - src);
    return config_.per_page_cost_ns * hops;
  }
  void defer_promotion(const PageKey& key, mem::TierId dest, MoveStats& stats);
  /// Re-attempt queued promotions whose destination has room again.
  void drain_deferred(MoveStats& stats, std::uint64_t& budget);
  /// Admission verdict for one promotion candidate, memoized per apply so
  /// a page consulted by both the pre-pass and the deferred drain is
  /// decided (and tallied) exactly once per epoch.
  AdmissionDecision admit_once(const PageKey& key, mem::PageSize size,
                               MoveStats& stats);
  /// True when the gate is on and `key` was decided non-Admit this apply.
  [[nodiscard]] bool admission_rejected(const PageKey& key) const noexcept;
  /// True when the arbiter is on and `key` was refused quota this apply.
  [[nodiscard]] bool quota_denied(const PageKey& key) const noexcept;
  /// Quota verdict for one desired page, memoized per apply (the pre-pass
  /// and the deferred drain may both consult a key).
  [[nodiscard]] bool quota_charge_once(const PageKey& key,
                                       std::uint64_t frames);
  /// Tenant arbitration pre-pass: decay benefits, grant quotas and charge
  /// every desired page in promote order (hottest first).
  void arbitrate_quotas(const PlacementSet& desired,
                        const std::vector<core::PageRank>& ranking);
  [[nodiscard]] std::uint64_t budget_for_apply() const noexcept;
  /// Publish one apply batch's stats and span to the telemetry sink.
  void note_apply(const MoveStats& stats, util::SimNs begin_ns);

  struct DeferredMove {
    PageKey key;
    mem::TierId dest = 0;
  };

  sim::System& system_;
  MoverConfig config_;
  util::FaultInjector fault_;
  AdmissionController admission_;
  /// Per-apply verdict memo (key -> AdmissionDecision as u8); capacity
  /// retained across epochs like every hot-path scratch map.
  core::PageMap<std::uint8_t> admission_memo_;
  TenantArbiter* arbiter_ = nullptr;  ///< not owned; may be null
  /// Per-apply quota memo (key -> 1 granted / 0 denied).
  core::PageMap<std::uint8_t> quota_memo_;
  std::vector<DeferredMove> deferred_;  ///< FIFO, carried across epochs
  std::unordered_set<PageKey, PageKeyHash> deferred_set_;
  std::uint64_t move_seq_ = 0;  ///< distinguishes fault keys across epochs

  telemetry::Telemetry* telemetry_ = nullptr;  ///< not owned; may be null
  telemetry::Counter t_promoted_;
  telemetry::Counter t_demoted_;
  telemetry::Counter t_retried_;
  telemetry::Counter t_deferred_;
  telemetry::Counter t_aborted_;
  telemetry::Counter t_no_room_;
  telemetry::Counter t_moved_bytes_;
  telemetry::Gauge t_deferred_pending_;
};

}  // namespace tmprof::tiering
