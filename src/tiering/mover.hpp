#pragma once
/// \file mover.hpp
/// The page mover (Section IV, Step 3): reconciles tier-1 residency with
/// the policy's decision at each epoch horizon. Demotions free room first,
/// then promotions fill it; each page move performs the remap + shootdown
/// through the System and charges the configured per-page migration cost
/// (the paper's emulation uses 50 µs per page).

#include <cstdint>

#include "core/ranking.hpp"
#include "sim/system.hpp"
#include "tiering/policy.hpp"

namespace tmprof::tiering {

struct MoveStats {
  std::uint64_t promoted = 0;   ///< pages moved tier2 → tier1
  std::uint64_t demoted = 0;    ///< pages moved tier1 → tier2
  std::uint64_t failed = 0;     ///< moves that found no room
  util::SimNs cost_ns = 0;
};

struct MoverConfig {
  /// Cost charged per migrated page (the paper's emulation uses 50 µs).
  util::SimNs per_page_cost_ns = 50 * util::kMicrosecond;
  /// Only pages ranked at least this hot are worth a migration ("to
  /// justify the migration cost, the hottest pages should be migrated",
  /// Section IV). Rank 1 is the tie mass every touched page reaches via a
  /// single A-bit observation; demanding 2+ filters the noise floor.
  std::uint64_t min_rank = 2;
  /// Upper bound on promotions per apply() (0 = unlimited); bounds the
  /// per-epoch migration burst on noisy profiles.
  std::uint64_t max_promotions = 0;
};

class PageMover {
 public:
  explicit PageMover(sim::System& system, const MoverConfig& config = {});
  PageMover(sim::System& system, util::SimNs per_page_cost_ns)
      : PageMover(system, MoverConfig{per_page_cost_ns, 2, 0}) {}

  /// Make tier 1 hold (as nearly as possible) the hottest ranked pages that
  /// fit in `capacity_frames`. Charges migration time to the system clock.
  MoveStats apply(const std::vector<core::PageRank>& ranking,
                  std::uint64_t capacity_frames);

  /// Reconcile tier-1 residency with an explicit placement decision (the
  /// output of any tiering::Policy). `ranking` orders promotions and
  /// identifies cold residents for demotion; pages in `desired` are moved
  /// in regardless of the min_rank noise floor (the policy already chose).
  MoveStats apply_placement(const PlacementSet& desired,
                            const std::vector<core::PageRank>& ranking);

  /// Waterfall placement across an arbitrary tier ladder: the hottest
  /// ranked pages fill tier 0 up to capacities[0], the next-hottest fill
  /// tier 1 up to capacities[1], and so on; pages below the noise floor
  /// (or beyond every capacity) belong in the last tier. One capacity per
  /// tier above the bottom; requires the System to have
  /// capacities.size() + 1 tiers.
  ///
  /// Like real tiering kernels, reconciliation needs a few spare frames in
  /// the destination tiers to stage exchanges: if every tier is 100% full,
  /// demotions (and therefore the promotions waiting on them) fail
  /// gracefully and are reported in MoveStats::failed. Keep capacities a
  /// little below the physical tier sizes.
  MoveStats apply_tiers(const std::vector<core::PageRank>& ranking,
                        const std::vector<std::uint64_t>& capacities);

  /// Enumerate pages currently resident in tier `tier` with their sizes.
  [[nodiscard]] std::vector<std::pair<PageKey, mem::PageSize>> residents(
      mem::TierId tier);

 private:
  MoveStats reconcile(const PlacementSet& desired,
                      const std::vector<core::PageRank>& ranking);

  sim::System& system_;
  MoverConfig config_;
};

}  // namespace tmprof::tiering
