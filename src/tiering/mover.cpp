#include "tiering/mover.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "telemetry/telemetry.hpp"
#include "tiering/tenant.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::tiering {

PageMover::PageMover(sim::System& system, const MoverConfig& config)
    : system_(system),
      config_(config),
      fault_(config.fault),
      admission_(config.admission) {}

std::vector<std::pair<PageKey, mem::PageSize>> PageMover::residents(
    mem::TierId tier) {
  std::vector<std::pair<PageKey, mem::PageSize>> pages;
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
          if (system_.phys().tier_of(pte.pfn()) == tier) {
            pages.emplace_back(PageKey{pid, page_va}, size);
          }
        });
  }
  return pages;
}

void PageMover::set_tenant_arbiter(TenantArbiter* arbiter) noexcept {
  arbiter_ = (arbiter != nullptr && arbiter->enabled()) ? arbiter : nullptr;
  admission_.set_tenant_arbiter(arbiter_);
}

void PageMover::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  admission_.set_telemetry(telemetry);
  if (telemetry == nullptr) {
    t_promoted_ = {};
    t_demoted_ = {};
    t_retried_ = {};
    t_deferred_ = {};
    t_aborted_ = {};
    t_no_room_ = {};
    t_moved_bytes_ = {};
    t_deferred_pending_ = {};
    return;
  }
  telemetry::MetricsRegistry& m = telemetry->metrics();
  t_promoted_ = m.counter("mover_promoted_total");
  t_demoted_ = m.counter("mover_demoted_total");
  t_retried_ = m.counter("mover_retried_total");
  t_deferred_ = m.counter("mover_deferred_total");
  t_aborted_ = m.counter("mover_aborted_total");
  t_no_room_ = m.counter("mover_no_room_total");
  t_moved_bytes_ = m.counter("mover_moved_bytes_total");
  t_deferred_pending_ = m.gauge("mover_deferred_pending");
}

void PageMover::note_apply(const MoveStats& stats, util::SimNs begin_ns) {
  t_promoted_.add(stats.promoted);
  t_demoted_.add(stats.demoted);
  t_retried_.add(stats.retried);
  t_deferred_.add(stats.deferred);
  t_aborted_.add(stats.aborted);
  t_no_room_.add(stats.no_room);
  t_moved_bytes_.add(stats.moved_bytes);
  t_deferred_pending_.set(deferred_.size());
  if (telemetry_ != nullptr) {
    telemetry_->span("mover.apply", begin_ns, system_.now(),
                     telemetry::kTidMover);
  }
}

std::uint64_t PageMover::budget_for_apply() const noexcept {
  return config_.retry_budget == 0
             ? std::numeric_limits<std::uint64_t>::max()
             : config_.retry_budget;
}

PageMover::MoveOutcome PageMover::try_move(const PageKey& key, mem::TierId dest,
                                           MoveStats& stats,
                                           std::uint64_t& budget) {
  ++move_seq_;
  // Fault-site identity: with a tenant arbiter attached, migration faults
  // key on the tenant's *name tag* and its own move sequence, so a churned
  // fleet draws the same per-tenant fault schedule regardless of arrival
  // order or pid assignment. Without one, the legacy pid-based key is
  // preserved bit-for-bit.
  std::uint64_t site = (static_cast<std::uint64_t>(key.pid) << 8) | dest;
  std::uint64_t seq = move_seq_;
  if (arbiter_ != nullptr) {
    const std::uint32_t tenant = arbiter_->tenant_of(key.pid);
    if (tenant != TenantArbiter::kNoTenant) {
      site = (arbiter_->fault_tag(tenant) << 8) | dest;
      seq = arbiter_->next_move_seq(tenant);
    }
  }
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault_.enabled()) {
      const std::uint64_t fkey =
          util::fault_key(site, key.page_va, (seq << 8) | attempt);
      if (fault_.fire(util::FaultSite::MigrationBusy, fkey)) {
        // Transient -EBUSY: the page was pinned or its mapcount raced.
        // Back off (exponentially, in simulated time) and retry while the
        // per-move and per-epoch budgets allow.
        if (attempt >= config_.max_retries || budget == 0) {
          ++stats.aborted;
          return MoveOutcome::Aborted;
        }
        ++attempt;
        ++stats.retried;
        --budget;
        stats.backoff_ns += config_.retry_backoff_ns << (attempt - 1);
        continue;
      }
      if (fault_.fire(util::FaultSite::MigrationNoMem, fkey)) {
        // -ENOMEM: the destination looked full to the allocator. Retrying
        // immediately cannot help; the caller defers or drops the move.
        ++stats.no_room;
        return MoveOutcome::NoRoom;
      }
    }
    if (!system_.migrate_page(key.pid, key.page_va, dest)) {
      ++stats.no_room;
      return MoveOutcome::NoRoom;
    }
    return MoveOutcome::Moved;
  }
}

AdmissionDecision PageMover::admit_once(const PageKey& key,
                                        mem::PageSize size, MoveStats& stats) {
  const auto [slot, inserted] = admission_memo_.try_emplace(
      key, static_cast<std::uint8_t>(AdmissionDecision::Admit));
  if (!inserted) return static_cast<AdmissionDecision>(*slot);
  const std::uint64_t bytes = mem::pages_in(size) << mem::kPageShift;
  const AdmissionDecision d = admission_.decide(key, bytes);
  *slot = static_cast<std::uint8_t>(d);
  switch (d) {
    case AdmissionDecision::Admit:
      break;
    case AdmissionDecision::Cooled:
      ++stats.cooled;
      break;
    case AdmissionDecision::RejectBenefit:
    case AdmissionDecision::RejectBandwidth:
      ++stats.rejected;
      break;
    case AdmissionDecision::Shed:
      ++stats.shed;
      break;
  }
  return d;
}

bool PageMover::admission_rejected(const PageKey& key) const noexcept {
  if (!admission_.enabled()) return false;
  const auto it = admission_memo_.find(key);
  return it != admission_memo_.end() &&
         static_cast<AdmissionDecision>(it->second) !=
             AdmissionDecision::Admit;
}

bool PageMover::quota_denied(const PageKey& key) const noexcept {
  if (arbiter_ == nullptr) return false;
  const auto it = quota_memo_.find(key);
  return it != quota_memo_.end() && it->second == 0;
}

bool PageMover::quota_charge_once(const PageKey& key, std::uint64_t frames) {
  const auto [slot, inserted] = quota_memo_.try_emplace(key, std::uint8_t{1});
  if (!inserted) return *slot != 0;
  const bool ok = arbiter_->try_charge_frames(key.pid, frames);
  *slot = ok ? 1 : 0;
  return ok;
}

void PageMover::arbitrate_quotas(const PlacementSet& desired,
                                 const std::vector<core::PageRank>& ranking) {
  quota_memo_.clear();
  // Epoch-barrier inputs: per-tenant ranking mass (benefit) and desired
  // fast-tier frames (demand), both integer sums in deterministic order.
  std::vector<std::uint64_t> heat(arbiter_->size(), 0);
  std::vector<std::uint64_t> demand(arbiter_->size(), 0);
  for (const core::PageRank& pr : ranking) {
    const std::uint32_t tenant = arbiter_->tenant_of(pr.key.pid);
    if (tenant != TenantArbiter::kNoTenant) heat[tenant] += pr.rank;
  }
  for (const PageKey& key : desired) {
    const std::uint32_t tenant = arbiter_->tenant_of(key.pid);
    if (tenant == TenantArbiter::kNoTenant) continue;
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (ref) demand[tenant] += mem::pages_in(ref.size);
  }
  // The bandwidth carve sees the admission bucket's post-refill level
  // (begin_epoch above already refilled it); 0 disables the sub-budget.
  const std::uint64_t bw_tokens =
      admission_.enabled() && admission_.config().bandwidth_bytes_per_sec != 0
          ? admission_.tokens()
          : 0;
  arbiter_->begin_epoch(heat, demand, bw_tokens);
  // Charge desired pages hottest-first (ranking order, then leftover set
  // order — the same total order the promote loop walks), so each
  // tenant's grant covers its hottest pages and the denial boundary is
  // identical at any thread count.
  auto charge = [&](const PageKey& key) {
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (!ref) return;
    (void)quota_charge_once(key, mem::pages_in(ref.size));
  };
  for (const core::PageRank& pr : ranking) {
    if (desired.count(pr.key) != 0) charge(pr.key);
  }
  for (const PageKey& key : desired) charge(key);
}

void PageMover::defer_promotion(const PageKey& key, mem::TierId dest,
                                MoveStats& stats) {
  if (deferred_.size() >= config_.max_deferred) return;  // queue full: drop
  if (!deferred_set_.insert(key).second) return;         // already queued
  deferred_.push_back(DeferredMove{key, dest});
  ++stats.deferred;
}

void PageMover::drain_deferred(MoveStats& stats, std::uint64_t& budget) {
  if (deferred_.empty()) return;
  std::vector<DeferredMove> keep;
  for (const DeferredMove& d : deferred_) {
    if (config_.max_promotions != 0 &&
        stats.promoted >= config_.max_promotions) {
      keep.push_back(d);
      continue;
    }
    sim::Process& proc = system_.process(d.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(d.key.page_va);
    if (!ref) {  // page vanished while queued
      deferred_set_.erase(d.key);
      continue;
    }
    const mem::TierId src = system_.phys().tier_of(ref.pte->pfn());
    if (src <= d.dest) {
      // Already fast enough (another path promoted it).
      deferred_set_.erase(d.key);
      continue;
    }
    if (arbiter_ != nullptr &&
        !quota_charge_once(d.key, mem::pages_in(ref.size))) {
      keep.push_back(d);  // over quota this epoch; re-arbitrated next epoch
      continue;
    }
    if (admission_.enabled()) {
      // Queued intent re-justifies itself each epoch. Transient verdicts
      // (bandwidth short, storm brake) keep the item queued; stale intent
      // (heat gone, ping-pong cool-down) is dropped — promoting it later
      // would be exactly the junk move the gate exists to stop.
      bool drop = false;
      bool park = false;
      switch (admit_once(d.key, ref.size, stats)) {
        case AdmissionDecision::Admit:
          break;
        case AdmissionDecision::Shed:
        case AdmissionDecision::RejectBandwidth:
          park = true;
          break;
        case AdmissionDecision::RejectBenefit:
        case AdmissionDecision::Cooled:
          drop = true;
          break;
      }
      if (park) {
        keep.push_back(d);
        continue;
      }
      if (drop) {
        deferred_set_.erase(d.key);
        continue;
      }
    }
    if (mem::pages_in(ref.size) > system_.phys().free_frames(d.dest)) {
      keep.push_back(d);  // still no room; stays queued (not re-counted)
      continue;
    }
    switch (try_move(d.key, d.dest, stats, budget)) {
      case MoveOutcome::Moved:
        ++stats.promoted;
        stats.cost_ns += hop_cost(src, d.dest);
        stats.moved_bytes += mem::pages_in(ref.size) << mem::kPageShift;
        deferred_set_.erase(d.key);
        break;
      case MoveOutcome::NoRoom:
        keep.push_back(d);
        break;
      case MoveOutcome::Aborted:
        deferred_set_.erase(d.key);
        break;
    }
  }
  deferred_ = std::move(keep);
}

MoveStats PageMover::apply(const std::vector<core::PageRank>& ranking,
                           std::uint64_t capacity_frames) {
  if (ranking.empty()) return MoveStats{};

  // Desired resident set: hottest pages first until capacity is filled.
  // Pages below the noise floor are not worth a migration; the residents
  // they would have displaced simply stay put.
  PlacementSet desired;
  std::uint64_t used = 0;
  for (const core::PageRank& pr : ranking) {
    if (pr.rank < config_.min_rank) break;  // ranking is descending
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;  // page vanished
    const std::uint64_t frames = mem::pages_in(ref.size);
    if (used + frames > capacity_frames) continue;
    desired.insert(pr.key);
    used += frames;
    if (used >= capacity_frames) break;
  }
  return reconcile(desired, ranking);
}

MoveStats PageMover::apply_placement(
    const PlacementSet& desired, const std::vector<core::PageRank>& ranking) {
  return reconcile(desired, ranking);
}

MoveStats PageMover::reconcile(const PlacementSet& desired,
                               const std::vector<core::PageRank>& ranking) {
  MoveStats stats;
  const util::SimNs apply_begin = system_.now();
  std::uint64_t budget = budget_for_apply();

  // Admission pre-pass (docs/ADMISSION.md): score every promotion
  // candidate *before* demotions are sized, so residents are never evicted
  // to make room for a move the gate then refuses. Candidates are visited
  // in ranking order, then leftover-desired order — the exact promote
  // order below — so the storm brake sheds the lowest-benefit moves first
  // under the same total RankOrder.
  if (admission_.enabled()) {
    admission_.begin_epoch(system_.now(), ranking);
    admission_memo_.clear();
  }
  // Tenant quota arbitration (docs/CONSOLIDATION.md) runs after the bucket
  // refill above — the bandwidth carve splits post-refill tokens — and
  // before admission verdicts, so quota-denied pages are never scored.
  if (arbiter_ != nullptr) arbitrate_quotas(desired, ranking);
  if (admission_.enabled()) {
    auto consider = [&](const PageKey& key) {
      if (quota_denied(key)) return;
      sim::Process& proc = system_.process(key.pid);
      const mem::PteRef ref = proc.page_table().resolve(key.page_va);
      if (!ref) return;
      if (system_.phys().tier_of(ref.pte->pfn()) == 0) return;  // resident
      (void)admit_once(key, ref.size, stats);
    };
    for (const core::PageRank& pr : ranking) {
      if (desired.count(pr.key) != 0) consider(pr.key);
    }
    for (const PageKey& key : desired) consider(key);
  }

  // Demote cold tier-1 residents so promotions have room — *coldest first*,
  // so a hot resident that merely escaped this epoch's sparse sample is the
  // last to go. Demotion is lazy: pages move out only when the desired set
  // actually needs the space.
  std::unordered_map<PageKey, std::uint64_t, PageKeyHash> rank_of;
  rank_of.reserve(ranking.size());
  for (const core::PageRank& pr : ranking) rank_of.emplace(pr.key, pr.rank);
  auto t1_pages = residents(0);
  if (arbiter_ != nullptr) {
    // QoS-aware reclaim (docs/CONSOLIDATION.md): batch (and unregistered)
    // tenants' burst pages go first, latency tenants' pages last; within a
    // class coldest first, ties on ascending key. A strict total order, so
    // the reclaim sequence is bitwise thread-count invariant.
    auto protected_class = [&](const PageKey& key) -> int {
      const std::uint32_t tenant = arbiter_->tenant_of(key.pid);
      return tenant != TenantArbiter::kNoTenant &&
                     arbiter_->spec(tenant).qos == QosClass::Latency
                 ? 1
                 : 0;
    };
    std::sort(t1_pages.begin(), t1_pages.end(),
              [&](const auto& a, const auto& b) {
                const int ca = protected_class(a.first);
                const int cb = protected_class(b.first);
                if (ca != cb) return ca < cb;
                const auto ra = rank_of.find(a.first);
                const auto rb = rank_of.find(b.first);
                const std::uint64_t va = ra == rank_of.end() ? 0 : ra->second;
                const std::uint64_t vb = rb == rank_of.end() ? 0 : rb->second;
                if (va != vb) return va < vb;
                return a.first < b.first;
              });
  } else {
    std::stable_sort(t1_pages.begin(), t1_pages.end(),
                     [&](const auto& a, const auto& b) {
                       const auto ra = rank_of.find(a.first);
                       const auto rb = rank_of.find(b.first);
                       const std::uint64_t va =
                           ra == rank_of.end() ? 0 : ra->second;
                       const std::uint64_t vb =
                           rb == rank_of.end() ? 0 : rb->second;
                       return va < vb;
                     });
  }
  // Per-tenant fast-tier occupancy, maintained through the demote loop so
  // the floor guard sees live balances.
  std::vector<std::uint64_t> occupancy;
  if (arbiter_ != nullptr) {
    occupancy.assign(arbiter_->size(), 0);
    for (const auto& [key, size] : t1_pages) {
      const std::uint32_t tenant = arbiter_->tenant_of(key.pid);
      if (tenant != TenantArbiter::kNoTenant) {
        occupancy[tenant] += mem::pages_in(size);
      }
    }
  }
  std::uint64_t need_frames = 0;
  for (const PageKey& key : desired) {
    if (admission_rejected(key)) continue;  // will not move: reserve nothing
    if (quota_denied(key)) continue;        // over quota: reserves nothing
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (ref && system_.phys().tier_of(ref.pte->pfn()) != 0) {
      need_frames += mem::pages_in(ref.size);
    }
  }
  std::uint64_t free_t1 = system_.phys().free_frames(0);
  for (const auto& [key, size] : t1_pages) {
    if (need_frames <= free_t1) break;
    // Desired residents keep demotion protection — unless the arbiter
    // refused them quota this epoch, in which case they are exactly the
    // over-quota burst pages reclaim exists to take back.
    if (desired.count(key) != 0 && !quota_denied(key)) continue;
    const std::uint64_t frames = mem::pages_in(size);
    std::uint32_t tenant = TenantArbiter::kNoTenant;
    if (arbiter_ != nullptr) {
      tenant = arbiter_->tenant_of(key.pid);
      if (tenant != TenantArbiter::kNoTenant &&
          occupancy[tenant] < arbiter_->floor_of(tenant) + frames) {
        continue;  // the floor is inviolable: only burst is reclaimable
      }
    }
    if (try_move(key, 1, stats, budget) == MoveOutcome::Moved) {
      ++stats.demoted;
      stats.cost_ns += hop_cost(0, 1);
      stats.moved_bytes += frames << mem::kPageShift;
      free_t1 += frames;
      admission_.note_demoted(key);
      if (tenant != TenantArbiter::kNoTenant) {
        occupancy[tenant] -= frames;
        arbiter_->note_reclaimed(key.pid, frames);
      }
    }
    // Failed demotions are not deferred: the resident stays in tier 1 and
    // is naturally reconsidered next epoch.
  }

  // Promote the desired pages that still live in tier 2, hottest first.
  auto promote = [&](const PageKey& key) {
    if (quota_denied(key)) return;
    if (admission_rejected(key)) return;
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (!ref) return;
    const mem::TierId src = system_.phys().tier_of(ref.pte->pfn());
    if (src == 0) return;
    if (mem::pages_in(ref.size) > system_.phys().free_frames(0)) {
      ++stats.no_room;
      defer_promotion(key, 0, stats);
      return;
    }
    switch (try_move(key, 0, stats, budget)) {
      case MoveOutcome::Moved:
        ++stats.promoted;
        stats.cost_ns += hop_cost(src, 0);
        stats.moved_bytes += mem::pages_in(ref.size) << mem::kPageShift;
        break;
      case MoveOutcome::NoRoom:
        defer_promotion(key, 0, stats);
        break;
      case MoveOutcome::Aborted:
        break;  // retry budget exhausted: dropped for this epoch
    }
  };
  for (const core::PageRank& pr : ranking) {
    if (config_.max_promotions != 0 &&
        stats.promoted >= config_.max_promotions) {
      break;
    }
    if (desired.count(pr.key) == 0) continue;
    promote(pr.key);
  }
  // Desired pages the ranking never mentioned (e.g., a sticky policy's
  // carried-over residents) are promoted last, in set order.
  for (const PageKey& key : desired) {
    if (config_.max_promotions != 0 &&
        stats.promoted >= config_.max_promotions) {
      break;
    }
    promote(key);
  }

  drain_deferred(stats, budget);
  if (arbiter_ != nullptr) {
    // Post-reconcile occupancy snapshot: what each tenant actually holds
    // after demotions, promotions and the deferred drain.
    std::vector<std::uint64_t> held(arbiter_->size(), 0);
    for (const auto& [key, size] : residents(0)) {
      const std::uint32_t tenant = arbiter_->tenant_of(key.pid);
      if (tenant != TenantArbiter::kNoTenant) {
        held[tenant] += mem::pages_in(size);
      }
    }
    for (std::uint32_t t = 0; t < arbiter_->size(); ++t) {
      arbiter_->set_occupancy(t, held[t]);
    }
  }
  system_.advance_time(stats.cost_ns + stats.backoff_ns);
  note_apply(stats, apply_begin);
  return stats;
}

MoveStats PageMover::apply_tiers(const std::vector<core::PageRank>& ranking,
                                 const std::vector<std::uint64_t>& capacities) {
  TMPROF_EXPECTS(!capacities.empty());
  TMPROF_EXPECTS(capacities.size() + 1 <= system_.phys().tier_count());
  MoveStats stats;
  if (ranking.empty()) return stats;
  const util::SimNs apply_begin = system_.now();
  std::uint64_t budget = budget_for_apply();
  const auto bottom = static_cast<mem::TierId>(capacities.size());

  // Assign each ranked page a target tier in rank order: hottest pages
  // fill the fastest tier first, spilling down the ladder.
  std::unordered_map<PageKey, mem::TierId, PageKeyHash> target;
  target.reserve(ranking.size());
  std::vector<std::uint64_t> used(capacities.size(), 0);
  for (const core::PageRank& pr : ranking) {
    if (pr.rank < config_.min_rank) break;
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;
    const std::uint64_t frames = mem::pages_in(ref.size);
    mem::TierId assigned = bottom;
    for (std::size_t t = 0; t < capacities.size(); ++t) {
      if (used[t] + frames <= capacities[t]) {
        used[t] += frames;
        assigned = static_cast<mem::TierId>(t);
        break;
      }
    }
    if (assigned != bottom) target.emplace(pr.key, assigned);
  }

  // Admission pre-pass: score upward moves in ranking order before any
  // demotion is sized (same rationale as reconcile()). Rejected pages keep
  // their target entry, so the demote loop's `it->second <= tier` check
  // still protects residents the gate refused to re-promote.
  if (admission_.enabled()) {
    admission_.begin_epoch(system_.now(), ranking);
    admission_memo_.clear();
    for (const core::PageRank& pr : ranking) {
      const auto it = target.find(pr.key);
      if (it == target.end()) continue;
      sim::Process& proc = system_.process(pr.key.pid);
      const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
      if (!ref) continue;
      if (system_.phys().tier_of(ref.pte->pfn()) <= it->second) continue;
      (void)admit_once(pr.key, ref.size, stats);
    }
  }

  // Demote first, working the ladder bottom-up: a tier can only shed pages
  // into the tiers below it, so space must open at the bottom before the
  // top can drain. Residents with no (or a slower) target leave when the
  // incoming set needs their space; unranked pages sink to the bottom tier
  // so they never squat on a middle tier another page was assigned.
  for (mem::TierId tier = bottom; tier-- > 0;) {
    std::uint64_t need = 0;
    for (const auto& [key, t] : target) {
      if (t != tier) continue;
      if (admission_rejected(key)) continue;  // will not move in
      sim::Process& proc = system_.process(key.pid);
      const mem::PteRef ref = proc.page_table().resolve(key.page_va);
      if (ref && system_.phys().tier_of(ref.pte->pfn()) != tier) {
        need += mem::pages_in(ref.size);
      }
    }
    std::uint64_t free_frames = system_.phys().free_frames(tier);
    for (const auto& [key, size] : residents(tier)) {
      if (need <= free_frames) break;
      const auto it = target.find(key);
      if (it != target.end() && it->second <= tier) continue;
      const mem::TierId dest = it == target.end() ? bottom : it->second;
      if (try_move(key, dest, stats, budget) == MoveOutcome::Moved) {
        ++stats.demoted;
        stats.cost_ns += hop_cost(tier, dest);
        stats.moved_bytes += mem::pages_in(size) << mem::kPageShift;
        free_frames += mem::pages_in(size);
        admission_.note_demoted(key);
      }
    }
  }
  for (const core::PageRank& pr : ranking) {
    const auto it = target.find(pr.key);
    if (it == target.end()) continue;
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;
    const mem::TierId current = system_.phys().tier_of(ref.pte->pfn());
    if (current <= it->second) continue;  // already fast enough
    if (admission_rejected(pr.key)) continue;
    if (mem::pages_in(ref.size) > system_.phys().free_frames(it->second)) {
      ++stats.no_room;
      defer_promotion(pr.key, it->second, stats);
      continue;
    }
    switch (try_move(pr.key, it->second, stats, budget)) {
      case MoveOutcome::Moved:
        ++stats.promoted;
        stats.cost_ns += hop_cost(current, it->second);
        stats.moved_bytes += mem::pages_in(ref.size) << mem::kPageShift;
        break;
      case MoveOutcome::NoRoom:
        defer_promotion(pr.key, it->second, stats);
        break;
      case MoveOutcome::Aborted:
        break;
    }
  }
  drain_deferred(stats, budget);
  system_.advance_time(stats.cost_ns + stats.backoff_ns);
  note_apply(stats, apply_begin);
  return stats;
}

void PageMover::save_state(util::ckpt::Writer& w) const {
  fault_.save_state(w);
  w.put_u64(deferred_.size());
  for (const DeferredMove& dm : deferred_) {
    w.put_u64(dm.key.pid);
    w.put_u64(dm.key.page_va);
    w.put_u8(dm.dest);
  }
  w.put_u64(move_seq_);
}

void PageMover::load_state(util::ckpt::Reader& r) {
  fault_.load_state(r);
  deferred_.clear();
  deferred_set_.clear();
  const std::uint64_t count = r.get_u64();
  deferred_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DeferredMove dm;
    dm.key.pid = static_cast<mem::Pid>(r.get_u64());
    dm.key.page_va = r.get_u64();
    dm.dest = static_cast<mem::TierId>(r.get_u8());
    deferred_set_.insert(dm.key);
    deferred_.push_back(dm);
  }
  move_seq_ = r.get_u64();
}

}  // namespace tmprof::tiering
