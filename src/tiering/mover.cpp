#include "tiering/mover.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace tmprof::tiering {

PageMover::PageMover(sim::System& system, const MoverConfig& config)
    : system_(system), config_(config) {}

std::vector<std::pair<PageKey, mem::PageSize>> PageMover::residents(
    mem::TierId tier) {
  std::vector<std::pair<PageKey, mem::PageSize>> pages;
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
          if (system_.phys().tier_of(pte.pfn()) == tier) {
            pages.emplace_back(PageKey{pid, page_va}, size);
          }
        });
  }
  return pages;
}

MoveStats PageMover::apply(const std::vector<core::PageRank>& ranking,
                           std::uint64_t capacity_frames) {
  if (ranking.empty()) return MoveStats{};

  // Desired resident set: hottest pages first until capacity is filled.
  // Pages below the noise floor are not worth a migration; the residents
  // they would have displaced simply stay put.
  PlacementSet desired;
  std::uint64_t used = 0;
  for (const core::PageRank& pr : ranking) {
    if (pr.rank < config_.min_rank) break;  // ranking is descending
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;  // page vanished
    const std::uint64_t frames = mem::pages_in(ref.size);
    if (used + frames > capacity_frames) continue;
    desired.insert(pr.key);
    used += frames;
    if (used >= capacity_frames) break;
  }
  return reconcile(desired, ranking);
}

MoveStats PageMover::apply_placement(
    const PlacementSet& desired, const std::vector<core::PageRank>& ranking) {
  return reconcile(desired, ranking);
}

MoveStats PageMover::reconcile(const PlacementSet& desired,
                               const std::vector<core::PageRank>& ranking) {
  MoveStats stats;

  // Demote cold tier-1 residents so promotions have room — *coldest first*,
  // so a hot resident that merely escaped this epoch's sparse sample is the
  // last to go. Demotion is lazy: pages move out only when the desired set
  // actually needs the space.
  std::unordered_map<PageKey, std::uint64_t, PageKeyHash> rank_of;
  rank_of.reserve(ranking.size());
  for (const core::PageRank& pr : ranking) rank_of.emplace(pr.key, pr.rank);
  auto t1_pages = residents(0);
  std::stable_sort(t1_pages.begin(), t1_pages.end(),
                   [&](const auto& a, const auto& b) {
                     const auto ra = rank_of.find(a.first);
                     const auto rb = rank_of.find(b.first);
                     const std::uint64_t va =
                         ra == rank_of.end() ? 0 : ra->second;
                     const std::uint64_t vb =
                         rb == rank_of.end() ? 0 : rb->second;
                     return va < vb;
                   });
  std::uint64_t need_frames = 0;
  for (const PageKey& key : desired) {
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (ref && system_.phys().tier_of(ref.pte->pfn()) != 0) {
      need_frames += mem::pages_in(ref.size);
    }
  }
  std::uint64_t free_t1 = system_.phys().free_frames(0);
  for (const auto& [key, size] : t1_pages) {
    if (need_frames <= free_t1) break;
    if (desired.count(key) != 0) continue;
    if (system_.migrate_page(key.pid, key.page_va, 1)) {
      ++stats.demoted;
      stats.cost_ns += config_.per_page_cost_ns;
      free_t1 += mem::pages_in(size);
    } else {
      ++stats.failed;
    }
  }

  // Promote the desired pages that still live in tier 2, hottest first.
  for (const core::PageRank& pr : ranking) {
    if (config_.max_promotions != 0 &&
        stats.promoted >= config_.max_promotions) {
      break;
    }
    if (desired.count(pr.key) == 0) continue;
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;
    if (system_.phys().tier_of(ref.pte->pfn()) == 0) continue;
    if (mem::pages_in(ref.size) > system_.phys().free_frames(0)) {
      ++stats.failed;
      continue;
    }
    if (system_.migrate_page(pr.key.pid, pr.key.page_va, 0)) {
      ++stats.promoted;
      stats.cost_ns += config_.per_page_cost_ns;
    } else {
      ++stats.failed;
    }
  }
  // Desired pages the ranking never mentioned (e.g., a sticky policy's
  // carried-over residents) are promoted last, in set order.
  for (const PageKey& key : desired) {
    if (config_.max_promotions != 0 &&
        stats.promoted >= config_.max_promotions) {
      break;
    }
    sim::Process& proc = system_.process(key.pid);
    const mem::PteRef ref = proc.page_table().resolve(key.page_va);
    if (!ref) continue;
    if (system_.phys().tier_of(ref.pte->pfn()) == 0) continue;
    if (mem::pages_in(ref.size) > system_.phys().free_frames(0)) {
      ++stats.failed;
      continue;
    }
    if (system_.migrate_page(key.pid, key.page_va, 0)) {
      ++stats.promoted;
      stats.cost_ns += config_.per_page_cost_ns;
    } else {
      ++stats.failed;
    }
  }

  system_.advance_time(stats.cost_ns);
  return stats;
}

MoveStats PageMover::apply_tiers(const std::vector<core::PageRank>& ranking,
                                 const std::vector<std::uint64_t>& capacities) {
  TMPROF_EXPECTS(!capacities.empty());
  TMPROF_EXPECTS(capacities.size() + 1 <= system_.phys().tier_count());
  MoveStats stats;
  if (ranking.empty()) return stats;
  const auto bottom = static_cast<mem::TierId>(capacities.size());

  // Assign each ranked page a target tier in rank order: hottest pages
  // fill the fastest tier first, spilling down the ladder.
  std::unordered_map<PageKey, mem::TierId, PageKeyHash> target;
  target.reserve(ranking.size());
  std::vector<std::uint64_t> used(capacities.size(), 0);
  for (const core::PageRank& pr : ranking) {
    if (pr.rank < config_.min_rank) break;
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;
    const std::uint64_t frames = mem::pages_in(ref.size);
    mem::TierId assigned = bottom;
    for (std::size_t t = 0; t < capacities.size(); ++t) {
      if (used[t] + frames <= capacities[t]) {
        used[t] += frames;
        assigned = static_cast<mem::TierId>(t);
        break;
      }
    }
    if (assigned != bottom) target.emplace(pr.key, assigned);
  }

  // Demote first, working the ladder bottom-up: a tier can only shed pages
  // into the tiers below it, so space must open at the bottom before the
  // top can drain. Residents with no (or a slower) target leave when the
  // incoming set needs their space; unranked pages sink to the bottom tier
  // so they never squat on a middle tier another page was assigned.
  for (mem::TierId tier = bottom; tier-- > 0;) {
    std::uint64_t need = 0;
    for (const auto& [key, t] : target) {
      if (t != tier) continue;
      sim::Process& proc = system_.process(key.pid);
      const mem::PteRef ref = proc.page_table().resolve(key.page_va);
      if (ref && system_.phys().tier_of(ref.pte->pfn()) != tier) {
        need += mem::pages_in(ref.size);
      }
    }
    std::uint64_t free_frames = system_.phys().free_frames(tier);
    for (const auto& [key, size] : residents(tier)) {
      if (need <= free_frames) break;
      const auto it = target.find(key);
      if (it != target.end() && it->second <= tier) continue;
      const mem::TierId dest = it == target.end() ? bottom : it->second;
      if (system_.migrate_page(key.pid, key.page_va, dest)) {
        ++stats.demoted;
        stats.cost_ns += config_.per_page_cost_ns;
        free_frames += mem::pages_in(size);
      } else {
        ++stats.failed;
      }
    }
  }
  for (const core::PageRank& pr : ranking) {
    const auto it = target.find(pr.key);
    if (it == target.end()) continue;
    sim::Process& proc = system_.process(pr.key.pid);
    const mem::PteRef ref = proc.page_table().resolve(pr.key.page_va);
    if (!ref) continue;
    const mem::TierId current = system_.phys().tier_of(ref.pte->pfn());
    if (current <= it->second) continue;  // already fast enough
    if (mem::pages_in(ref.size) > system_.phys().free_frames(it->second)) {
      ++stats.failed;
      continue;
    }
    if (system_.migrate_page(pr.key.pid, pr.key.page_va, it->second)) {
      ++stats.promoted;
      stats.cost_ns += config_.per_page_cost_ns;
    } else {
      ++stats.failed;
    }
  }
  system_.advance_time(stats.cost_ns);
  return stats;
}

}  // namespace tmprof::tiering
