#pragma once
/// \file epoch.hpp
/// Epoch-series collection: run a workload under the TMP daemon for N
/// epochs, recording both the ground-truth per-page memory-access counts
/// (what the Oracle policy and the hitrate metric need) and the profiler's
/// per-source observations (what History consumes). Fig. 6 and the
/// speedup study replay these series through the policies offline, exactly
/// as the paper computes policy results "based on the profiling data".

#include <cstdint>
#include <functional>
#include <vector>

#include "core/daemon.hpp"
#include "core/hotness.hpp"
#include "monitors/event.hpp"
#include "sim/system.hpp"
#include "tiering/policy.hpp"
#include "util/ckpt.hpp"
#include "workloads/registry.hpp"

namespace tmprof::tiering {

/// Ground-truth observer: counts beyond-LLC accesses per page and records
/// first-touch order (the order pages would be allocated).
///
/// Under the sharded engine the collector shards natively: each core gets a
/// private sub-collector (pages are pid-owned and pids are core-affine, so
/// the key spaces are disjoint) whose state folds into the global view at
/// the epoch barrier in ascending core order.
class TruthCollector final : public monitors::AccessObserver {
 public:
  /// `hotness` selects the counting front-end: exact (default, historical
  /// bit-exact behavior) or the count-min-sketch store with a Bloom
  /// seen-set (docs/SKETCH.md).
  explicit TruthCollector(sim::System& system,
                          const core::HotnessConfig& hotness = {});

  void on_mem_op(const monitors::MemOpEvent& event) override;

  monitors::AccessObserver* shard_sink(std::uint32_t core) override;
  void merge_shards() override;

  /// Swap out this epoch's truth counts and newly-seen pages. The swapped
  /// buffers come back (cleared, capacity retained) next call, so a caller
  /// that reuses one EpochData keeps the epoch loop allocation-free.
  /// Returns the epoch's exact total of beyond-LLC accesses — in sketch
  /// mode the materialized per-page counts are one-sided estimates, but
  /// this total is always a plain accumulator, never a sum of estimates.
  std::uint64_t end_epoch(core::TruthMap& truth_out,
                          std::vector<PageKey>& new_pages_out);

  [[nodiscard]] const PageSizeMap& page_sizes() const noexcept {
    return page_sizes_;
  }

  /// Checkpoint hooks: the cross-epoch `seen` sets (global and per-shard)
  /// and the page-size map. Shard count must match on load.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct Shard final : monitors::AccessObserver {
    void on_mem_op(const monitors::MemOpEvent& event) override;

    core::HotnessTruth truth;
    core::PageHotnessSet seen;  ///< persists across epochs
    std::vector<std::pair<PageKey, mem::PageSize>> new_pages;
  };

  sim::System& system_;
  core::HotnessTruth truth_;
  core::PageHotnessSet seen_;
  std::vector<PageKey> new_pages_;
  PageSizeMap page_sizes_;
  std::vector<Shard> shards_;  ///< one per core when the engine is sharded
};

/// One epoch's record.
struct EpochData {
  std::uint32_t epoch = 0;
  /// Per-page beyond-LLC access counts (ground truth).
  core::TruthMap truth;
  std::uint64_t truth_total = 0;
  /// The profiler's observations (A-bit / trace maps).
  core::EpochObservation observed;
  /// Pages first touched during this epoch, in order.
  std::vector<PageKey> new_pages;
};

struct EpochSeries {
  std::vector<EpochData> epochs;
  PageSizeMap page_sizes;
  std::uint64_t footprint_frames = 0;  ///< frames of all pages ever seen
  /// Daemon degradation tallies over the collection run (all zero unless
  /// CollectOptions::daemon.fault enabled sites).
  core::DegradeStats degrade{};
};

struct CollectOptions {
  std::uint32_t n_epochs = 12;
  std::uint64_t ops_per_epoch = 1'000'000;
  std::uint64_t seed = 42;
  core::DaemonConfig daemon;
  /// 0 (default) = legacy serial engine, bit-exact historical behavior.
  /// >= 1 = deterministic sharded engine; 1 runs the shards inline, > 1
  /// uses a worker pool. All values >= 1 produce identical results.
  std::uint32_t n_threads = 0;
  /// Periodic checkpointing and resume (docs/RECOVERY.md). A rejected
  /// resume file logs the bad section and falls back to a cold start.
  util::ckpt::Options checkpoint{};
  /// Called after each completed epoch (chaos harness kill hook).
  std::function<void(std::uint32_t)> on_epoch;
  /// Telemetry sink for the collection run (docs/OBSERVABILITY.md); null
  /// (default) disables telemetry at zero hot-path cost. Not owned. Do not
  /// share one sink across concurrently-collecting Systems.
  telemetry::Telemetry* telemetry = nullptr;
  /// Chrome-trace process label ("" = "collect").
  std::string telemetry_label;
};

/// Produces the processes' workload generators for one run. Must be
/// deterministic: the Oracle pre-pass and the measured run each invoke it
/// and rely on getting identical streams.
using WorkloadFactory =
    std::function<std::vector<workloads::WorkloadPtr>(std::uint64_t seed)>;

/// Factory for a Table III spec (make_workload per process).
[[nodiscard]] WorkloadFactory spec_factory(const workloads::WorkloadSpec& spec);

/// Run workloads under the TMP daemon and collect their epoch series.
[[nodiscard]] EpochSeries collect_series(const WorkloadFactory& factory,
                                         const sim::SimConfig& sim_config,
                                         const CollectOptions& options);
[[nodiscard]] EpochSeries collect_series(const workloads::WorkloadSpec& spec,
                                         const sim::SimConfig& sim_config,
                                         const CollectOptions& options);

/// Build a System populated with the spec's processes (shared by benches).
void add_spec_processes(sim::System& system,
                        const workloads::WorkloadSpec& spec,
                        std::uint64_t seed);

/// Checkpoint serialization of collected epoch records (maps are written in
/// ascending key order; see core::save_page_counts).
void save_epoch_data(util::ckpt::Writer& w, const EpochData& data);
void load_epoch_data(util::ckpt::Reader& r, EpochData& data);
void save_series(util::ckpt::Writer& w, const EpochSeries& series);
void load_series(util::ckpt::Reader& r, EpochSeries& series);

}  // namespace tmprof::tiering
