#pragma once
/// \file tenant.hpp
/// Fleet-scale tenant arbitration (docs/CONSOLIDATION.md). The consolidation
/// scenario shares one fast tier between many tenants; a single global
/// ranking lets any noisy neighbor starve the rest. The TenantArbiter sits
/// between the policy's desired set and the mover and arbitrates the fast
/// tier per tenant:
///
///  * QoS class — `latency` tenants are protected: the degradation ladder
///    sheds their profiling last, and reclaim takes batch pages first;
///  * quota — a guaranteed floor of fast-tier frames plus a burstable share
///    of the remaining capacity, split by decayed per-tenant benefit
///    (hot tenants earn burst, idle tenants shed it);
///  * bandwidth — a per-tenant sub-budget carved each epoch from the
///    AdmissionController's token bucket by registered weight.
///
/// Everything is integer arithmetic over epoch-barrier inputs, so grants
/// are bitwise invariant across thread counts, and the arbiter checkpoints
/// in its own CRC-framed "tenant" section (shape mismatch -> cold start).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mem/addr.hpp"
#include "telemetry/metrics.hpp"

namespace tmprof::telemetry {
class Telemetry;
}  // namespace tmprof::telemetry

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::tiering {

enum class QosClass : std::uint8_t {
  Latency = 0,  ///< protected: degrades last, reclaimed last
  Batch = 1,    ///< best-effort: sheds burst (and profiling) first
};

[[nodiscard]] constexpr std::string_view to_string(QosClass qos) noexcept {
  switch (qos) {
    case QosClass::Latency: return "latency";
    case QosClass::Batch: return "batch";
  }
  return "?";
}

/// Parse a `--qos=` value. Throws std::invalid_argument enumerating the
/// valid class names on anything unrecognized.
[[nodiscard]] QosClass parse_qos_class(const std::string& text);

/// One tenant's registration. Names must match [a-z0-9_]+ (they become
/// telemetry metric name segments) and be unique within an arbiter.
struct TenantSpec {
  std::string name;
  QosClass qos = QosClass::Batch;
  /// Guaranteed fast-tier floor in frames. The arbiter never reclaims a
  /// tenant below its floor, and the floor is granted before any burst.
  std::uint64_t floor_frames = 0;
  /// Relative share of the admission token bucket carved for this tenant
  /// each epoch (proportional split over all registered weights).
  std::uint32_t bandwidth_weight = 1;
};

/// Per-tenant summary filled at the end of a run (fleet.csv rows).
struct TenantOutcome {
  std::string name;
  QosClass qos = QosClass::Batch;
  double hitrate = 0.0;  ///< filled by the runner from the process
  std::uint64_t floor_frames = 0;
  std::uint64_t grant_frames = 0;      ///< last epoch's quota grant
  std::uint64_t demand_frames = 0;     ///< last epoch's desired frames
  std::uint64_t occupancy_frames = 0;  ///< fast-tier frames held at the end
  std::uint64_t quota_shed = 0;        ///< frames refused over-quota (total)
  std::uint64_t reclaimed_frames = 0;  ///< burst frames reclaimed (total)
  std::uint64_t bandwidth_rejected = 0;  ///< sub-budget refusals (total)
};

class TenantArbiter {
 public:
  static constexpr std::uint32_t kNoTenant = 0xffffffffu;

  TenantArbiter() = default;

  /// Fast-tier capacity the grants are arbitrated over.
  void set_capacity(std::uint64_t tier1_frames) noexcept {
    capacity_frames_ = tier1_frames;
  }

  /// Register one tenant owning `pid`. Validates the name charset and
  /// uniqueness (std::invalid_argument). Registration order defines the
  /// tenant index used everywhere else.
  void register_tenant(mem::Pid pid, const TenantSpec& spec);

  [[nodiscard]] bool enabled() const noexcept { return !tenants_.empty(); }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(tenants_.size());
  }
  /// Tenant index owning `pid`, or kNoTenant.
  [[nodiscard]] std::uint32_t tenant_of(mem::Pid pid) const noexcept {
    const auto it = pid_to_tenant_.find(pid);
    return it == pid_to_tenant_.end() ? kNoTenant : it->second;
  }
  /// True only for a registered batch tenant (latency/unknown -> false);
  /// the daemon's QoS-aware degradation ladder keys off this.
  [[nodiscard]] bool is_batch(mem::Pid pid) const noexcept {
    const std::uint32_t t = tenant_of(pid);
    return t != kNoTenant && tenants_[t].spec.qos == QosClass::Batch;
  }
  [[nodiscard]] const TenantSpec& spec(std::uint32_t tenant) const {
    return tenants_[tenant].spec;
  }
  [[nodiscard]] std::uint64_t floor_of(std::uint32_t tenant) const noexcept {
    return tenants_[tenant].spec.floor_frames;
  }
  [[nodiscard]] std::uint64_t grant_of(std::uint32_t tenant) const noexcept {
    return tenants_[tenant].grant;
  }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Stable per-tenant fault-site tag: a hash of the tenant *name*, so
  /// churn faults are tenant-deterministic and independent of arrival
  /// order or pid assignment (docs/ROBUSTNESS.md).
  [[nodiscard]] std::uint64_t fault_tag(std::uint32_t tenant) const noexcept {
    return tenants_[tenant].fault_tag;
  }
  /// Per-tenant move sequence number (advances; checkpointed) so fault
  /// keys never repeat across a resume.
  [[nodiscard]] std::uint64_t next_move_seq(std::uint32_t tenant) noexcept {
    return ++tenants_[tenant].move_seq;
  }

  /// Epoch-barrier arbitration. `heat[t]` is the tenant's summed ranking
  /// mass this epoch, `demand[t]` its desired fast-tier frames, and
  /// `bandwidth_tokens` the admission bucket's post-refill level (0 when
  /// the bucket is off). Grants: floor first (capped at demand), then the
  /// leftover burst split proportionally to decayed benefit among tenants
  /// still short, then any remainder to latency tenants before batch.
  void begin_epoch(const std::vector<std::uint64_t>& heat,
                   const std::vector<std::uint64_t>& demand,
                   std::uint64_t bandwidth_tokens);

  /// Charge `frames` of fast-tier quota to `pid`'s tenant. Unregistered
  /// pids always pass. Over-grant charges are refused and tallied.
  [[nodiscard]] bool try_charge_frames(mem::Pid pid, std::uint64_t frames);

  /// Charge `bytes` against the tenant's bandwidth sub-budget. Always
  /// passes when no bucket was carved this epoch or the pid is unknown.
  [[nodiscard]] bool try_charge_bandwidth(mem::Pid pid, std::uint64_t bytes);

  /// A demotion reclaimed `frames` from `pid`'s tenant.
  void note_reclaimed(mem::Pid pid, std::uint64_t frames);
  /// Fast-tier frames the tenant holds after reconciliation.
  void set_occupancy(std::uint32_t tenant, std::uint64_t frames) noexcept {
    tenants_[tenant].occupancy = frames;
  }
  /// Latest per-tenant tier-1 hitrate in basis points (runner-fed).
  void note_hitrate_bp(std::uint32_t tenant, std::uint64_t bp) noexcept {
    tenants_[tenant].hitrate_bp = bp;
  }

  [[nodiscard]] std::vector<TenantOutcome> snapshot_outcomes() const;

  /// Mirror per-tenant counters/gauges (tenant_<name>_*) into an external
  /// telemetry sink. Null detaches; never registers anything when no
  /// tenant is registered, so fleets-off runs export byte-identical files.
  void set_telemetry(telemetry::Telemetry* telemetry);
  /// Push the current per-tenant tallies to the attached sink (cheap no-op
  /// when detached). The runner calls this at each epoch barrier.
  void publish_telemetry();

  /// Checkpoint hooks. save_state leads with the tenant count so a resumed
  /// fleet with a different shape is rejected ("tenant count mismatch")
  /// and cold-starts instead of mixing state across tenants.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct TenantState {
    TenantSpec spec;
    mem::Pid pid = 0;
    std::uint64_t fault_tag = 0;  ///< hash of spec.name (arrival-invariant)
    std::uint64_t benefit = 0;    ///< decayed heat: b/2 + heat each epoch
    std::uint64_t grant = 0;
    std::uint64_t demand = 0;
    std::uint64_t charged = 0;  ///< frames charged against grant this epoch
    std::uint64_t occupancy = 0;
    std::uint64_t quota_shed = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t bandwidth_rejected = 0;
    std::uint64_t bw_tokens = 0;  ///< this epoch's bandwidth carve
    std::uint64_t move_seq = 0;
    std::uint64_t hitrate_bp = 0;
    /// External telemetry mirrors + last published counter values.
    telemetry::Counter x_shed;
    telemetry::Counter x_reclaimed;
    telemetry::Gauge x_grant;
    telemetry::Gauge x_occupancy;
    telemetry::Gauge x_hitrate_bp;
    std::uint64_t published_shed = 0;
    std::uint64_t published_reclaimed = 0;
  };

  std::vector<TenantState> tenants_;
  std::unordered_map<mem::Pid, std::uint32_t> pid_to_tenant_;
  std::uint64_t capacity_frames_ = 0;
  std::uint32_t epoch_ = 0;  ///< 1-based; 0 = begin_epoch never called
  bool bw_active_ = false;   ///< a bandwidth carve exists this epoch
  telemetry::Telemetry* telemetry_ = nullptr;  ///< not owned; may be null
};

}  // namespace tmprof::tiering
