#pragma once
/// \file policy.hpp
/// Tiered-memory placement policies (Table II). A policy decides, at each
/// epoch horizon, which pages should occupy tier 1. Policies are epoch-
/// based for the two reasons the paper gives: batching amortizes TLB
/// shootdowns, and hotness must be accumulated over time to justify the
/// migration cost.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/page_key.hpp"
#include "core/ranking.hpp"
#include "mem/addr.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::tiering {

using core::PageKey;
using core::PageKeyHash;

/// Set of pages resident in tier 1.
using PlacementSet = std::unordered_set<PageKey, PageKeyHash>;

/// Page-size lookup (frames each page occupies) for capacity accounting.
using PageSizeMap = std::unordered_map<PageKey, mem::PageSize, PageKeyHash>;

/// Everything a policy may consult when choosing the next placement.
struct PolicyContext {
  /// Tier-1 capacity in 4 KiB frames.
  std::uint64_t capacity_frames = 0;
  /// Pages currently resident in tier 1.
  const PlacementSet* current = nullptr;
  /// Profiler ranking of the epoch that just ended (History's input);
  /// descending hotness. May be empty at epoch 0.
  const std::vector<core::PageRank>* observed_ranking = nullptr;
  /// Ground-truth access counts of the *coming* epoch (Oracle only).
  const core::TruthMap* next_truth = nullptr;
  /// Pages seen so far in first-touch order (FirstTouch's input).
  const std::vector<PageKey>* first_touch_order = nullptr;
  /// Frames each known page occupies.
  const PageSizeMap* page_sizes = nullptr;
};

class Policy {
 public:
  Policy(const Policy&) = delete;
  Policy& operator=(const Policy&) = delete;
  virtual ~Policy() = default;

  /// Choose the tier-1 resident set for the next epoch.
  [[nodiscard]] virtual PlacementSet choose(const PolicyContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Checkpoint hooks. Stateless policies (History, Oracle, WriteHistory)
  /// keep the no-op defaults; stateful ones override both.
  virtual void save_state(util::ckpt::Writer& w) const { (void)w; }
  virtual void load_state(util::ckpt::Reader& r) { (void)r; }

 protected:
  Policy() = default;

  /// Greedily take pages from an ordered range until capacity is exhausted.
  template <typename Range>
  static PlacementSet take_until_full(const Range& ordered_keys,
                                      const PolicyContext& ctx) {
    PlacementSet chosen;
    std::uint64_t used = 0;
    for (const PageKey& key : ordered_keys) {
      const std::uint64_t frames = frames_of(ctx, key);
      if (used + frames > ctx.capacity_frames) continue;  // try smaller pages
      if (!chosen.insert(key).second) continue;
      used += frames;
      if (used >= ctx.capacity_frames) break;
    }
    return chosen;
  }

  static std::uint64_t frames_of(const PolicyContext& ctx, const PageKey& key) {
    if (ctx.page_sizes != nullptr) {
      const auto it = ctx.page_sizes->find(key);
      if (it != ctx.page_sizes->end()) return mem::pages_in(it->second);
    }
    return 1;
  }
};

}  // namespace tmprof::tiering
