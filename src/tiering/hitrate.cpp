#include "tiering/hitrate.hpp"

#include "mem/tiers.hpp"
#include "util/assert.hpp"

namespace tmprof::tiering {

HitrateResult evaluate_policy(Policy& policy, const EpochSeries& series,
                              const HitrateOptions& options) {
  TMPROF_EXPECTS(options.capacity_frames > 0);
  HitrateResult result;
  PlacementSet placement;
  std::vector<PageKey> first_touch_accumulated;
  // The epoch loop reuses these across iterations: each epoch's ranking is
  // built exactly once (it serves both as the Oracle's observed truth for
  // epoch e and as History's input for epoch e+1), into capacity-retaining
  // buffers.
  std::vector<core::PageRank> prev_ranking;
  std::vector<core::PageRank> epoch_ranking;
  core::RankingScratch scratch;
  core::TruthMap observed_truth;

  for (std::size_t e = 0; e < series.epochs.size(); ++e) {
    const EpochData& data = series.epochs[e];
    for (const PageKey& key : data.new_pages) {
      first_touch_accumulated.push_back(key);
    }

    core::build_ranking_into(data.observed, options.fusion,
                             options.trace_weight, scratch, epoch_ranking);

    PolicyContext ctx;
    ctx.capacity_frames = options.capacity_frames;
    ctx.current = &placement;
    ctx.observed_ranking = &prev_ranking;   // what the profiler saw in e-1
    // What Oracle is allowed to know about epoch e.
    if (options.oracle_from_observed) {
      observed_truth.clear();
      observed_truth.reserve(epoch_ranking.size());
      for (const core::PageRank& pr : epoch_ranking) {
        observed_truth[pr.key] = pr.rank;
      }
      ctx.next_truth = &observed_truth;
    } else {
      ctx.next_truth = &data.truth;
    }
    ctx.first_touch_order = &first_touch_accumulated;
    ctx.page_sizes = &series.page_sizes;

    PlacementSet next = policy.choose(ctx);
    for (const PageKey& key : next) {
      if (placement.count(key) == 0) ++result.promotions;
    }
    placement = std::move(next);

    std::uint64_t hits = 0;
    for (const auto& [key, count] : data.truth) {
      if (placement.count(key) != 0) hits += count;
    }
    result.tier1_accesses += hits;
    result.total_accesses += data.truth_total;
    result.per_epoch.push_back(
        data.truth_total == 0
            ? 1.0
            : static_cast<double>(hits) /
                  static_cast<double>(data.truth_total));

    // Epoch e's ranking becomes next iteration's "previous" without a copy.
    prev_ranking.swap(epoch_ranking);
  }
  result.overall = result.total_accesses == 0
                       ? 1.0
                       : static_cast<double>(result.tier1_accesses) /
                             static_cast<double>(result.total_accesses);
  return result;
}

TierHitrateResult evaluate_waterfall(
    const EpochSeries& series, const std::vector<std::uint64_t>& capacities,
    const core::FusionParams& fusion) {
  TMPROF_EXPECTS(!capacities.empty());
  for (const std::uint64_t frames : capacities) TMPROF_EXPECTS(frames > 0);
  const std::size_t n_tiers = capacities.size() + 1;
  const mem::TierId bottom = static_cast<mem::TierId>(n_tiers - 1);

  TierHitrateResult result;
  result.tier_accesses.assign(n_tiers, 0);

  std::vector<core::PageRank> prev_ranking;
  std::vector<core::PageRank> epoch_ranking;
  core::RankingScratch scratch;
  core::PageMap<mem::TierId> assigned;  // pages above the bottom tier

  const auto frames_of = [&series](const PageKey& key) -> std::uint64_t {
    const auto it = series.page_sizes.find(key);
    if (it != series.page_sizes.end()) return mem::pages_in(it->second);
    return 1;
  };

  for (const EpochData& data : series.epochs) {
    // Waterfall the previous epoch's ranking (hottest first) down the
    // ladder: tier t takes pages until capacities[t] frames are spent,
    // then the next page spills to tier t+1. Anything unranked — or past
    // every bounded tier — belongs to the (unbounded) bottom tier.
    assigned.clear();
    mem::TierId tier = 0;
    std::uint64_t used = 0;
    for (const core::PageRank& pr : prev_ranking) {
      const std::uint64_t frames = frames_of(pr.key);
      while (tier < bottom && used + frames > capacities[tier]) {
        ++tier;
        used = 0;
      }
      if (tier >= bottom) break;
      assigned[pr.key] = tier;
      used += frames;
    }

    core::build_ranking_into(data.observed, fusion, scratch, epoch_ranking);

    for (const auto& [key, count] : data.truth) {
      const auto it = assigned.find(key);
      const mem::TierId where = it == assigned.end() ? bottom : it->second;
      result.tier_accesses[where] += count;
    }
    result.total_accesses += data.truth_total;

    prev_ranking.swap(epoch_ranking);
  }

  result.tier_fraction.assign(n_tiers, 0.0);
  if (result.total_accesses != 0) {
    for (std::size_t t = 0; t < n_tiers; ++t) {
      result.tier_fraction[t] = static_cast<double>(result.tier_accesses[t]) /
                                static_cast<double>(result.total_accesses);
    }
  }
  return result;
}

}  // namespace tmprof::tiering
