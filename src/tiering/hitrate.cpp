#include "tiering/hitrate.hpp"

#include "util/assert.hpp"

namespace tmprof::tiering {

HitrateResult evaluate_policy(Policy& policy, const EpochSeries& series,
                              const HitrateOptions& options) {
  TMPROF_EXPECTS(options.capacity_frames > 0);
  HitrateResult result;
  PlacementSet placement;
  std::vector<PageKey> first_touch_accumulated;
  // The epoch loop reuses these across iterations: each epoch's ranking is
  // built exactly once (it serves both as the Oracle's observed truth for
  // epoch e and as History's input for epoch e+1), into capacity-retaining
  // buffers.
  std::vector<core::PageRank> prev_ranking;
  std::vector<core::PageRank> epoch_ranking;
  core::RankingScratch scratch;
  core::TruthMap observed_truth;

  for (std::size_t e = 0; e < series.epochs.size(); ++e) {
    const EpochData& data = series.epochs[e];
    for (const PageKey& key : data.new_pages) {
      first_touch_accumulated.push_back(key);
    }

    core::build_ranking_into(data.observed, options.fusion,
                             options.trace_weight, scratch, epoch_ranking);

    PolicyContext ctx;
    ctx.capacity_frames = options.capacity_frames;
    ctx.current = &placement;
    ctx.observed_ranking = &prev_ranking;   // what the profiler saw in e-1
    // What Oracle is allowed to know about epoch e.
    if (options.oracle_from_observed) {
      observed_truth.clear();
      observed_truth.reserve(epoch_ranking.size());
      for (const core::PageRank& pr : epoch_ranking) {
        observed_truth[pr.key] = pr.rank;
      }
      ctx.next_truth = &observed_truth;
    } else {
      ctx.next_truth = &data.truth;
    }
    ctx.first_touch_order = &first_touch_accumulated;
    ctx.page_sizes = &series.page_sizes;

    PlacementSet next = policy.choose(ctx);
    for (const PageKey& key : next) {
      if (placement.count(key) == 0) ++result.promotions;
    }
    placement = std::move(next);

    std::uint64_t hits = 0;
    for (const auto& [key, count] : data.truth) {
      if (placement.count(key) != 0) hits += count;
    }
    result.tier1_accesses += hits;
    result.total_accesses += data.truth_total;
    result.per_epoch.push_back(
        data.truth_total == 0
            ? 1.0
            : static_cast<double>(hits) /
                  static_cast<double>(data.truth_total));

    // Epoch e's ranking becomes next iteration's "previous" without a copy.
    prev_ranking.swap(epoch_ranking);
  }
  result.overall = result.total_accesses == 0
                       ? 1.0
                       : static_cast<double>(result.tier1_accesses) /
                             static_cast<double>(result.total_accesses);
  return result;
}

}  // namespace tmprof::tiering
