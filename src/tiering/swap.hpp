#pragma once
/// \file swap.hpp
/// Swap-style far memory — the alternative architecture the paper argues
/// *against* (Section I / II-A): tier 2 is exposed as a paging device, not
/// as addressable memory. Touching a swapped-out page raises a major
/// fault; the kernel brings the whole page into tier 1 and evicts a
/// victim the other way. "Accessing a single cache line via tier 2 swap
/// produces a costly page fault and is followed by the movement of an
/// entire data block" — this module makes that cost measurable against
/// TMP's in-place tiering (bench/arch_compare).
///
/// Implementation: swapped-out pages are marked with the PTE poison bit;
/// the System's protection-fault hook lands here, which swaps the page in
/// (migrate to tier 1), evicts a FIFO victim (migrate to tier 2 + mark
/// swapped), and charges the major-fault cost.

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "core/page_key.hpp"
#include "sim/system.hpp"
#include "util/time.hpp"

namespace tmprof::tiering {

struct SwapConfig {
  /// Major-fault service cost: trap + I/O submission + page copy
  /// bookkeeping (the in-memory "swap device" copy itself is charged via
  /// the migration pair).
  util::SimNs major_fault_ns = 8 * util::kMicrosecond;
  /// Per-page migration (copy) cost, each direction.
  util::SimNs copy_cost_ns = 2500;
};

class SwapFarMemory {
 public:
  SwapFarMemory(sim::System& system, const SwapConfig& config = {});
  SwapFarMemory(const SwapFarMemory&) = delete;
  SwapFarMemory& operator=(const SwapFarMemory&) = delete;
  ~SwapFarMemory();

  /// Mark every page currently resident in tier 2 as swapped out and
  /// register resident tier-1 pages in the eviction queue. Repeatable:
  /// call after each epoch so pages first-touch-allocated into tier 2
  /// since the last sweep also become swap-backed (kswapd's steady-state
  /// role). Already-tracked pages are not re-registered.
  void seal();

  [[nodiscard]] std::uint64_t major_faults() const noexcept {
    return major_faults_;
  }
  [[nodiscard]] std::uint64_t pages_swapped_in() const noexcept {
    return swapped_in_;
  }

 private:
  util::SimNs handle_fault(sim::Process& proc, mem::VirtAddr vaddr,
                           bool is_store);
  void mark_swapped(mem::Pid pid, mem::VirtAddr page_va);

  sim::System& system_;
  SwapConfig config_;
  /// FIFO of tier-1-resident pages (eviction order).
  std::deque<core::PageKey> resident_fifo_;
  /// Pages ever registered (bounds FIFO growth across repeated seals).
  std::unordered_set<core::PageKey, core::PageKeyHash> tracked_;
  std::uint64_t major_faults_ = 0;
  std::uint64_t swapped_in_ = 0;
};

}  // namespace tmprof::tiering
