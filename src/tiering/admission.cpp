#include "tiering/admission.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "tiering/tenant.hpp"
#include "util/ckpt.hpp"

namespace tmprof::tiering {

AdmissionMode parse_admission_mode(const std::string& text) {
  if (text == "off") return AdmissionMode::Off;
  if (text == "static") return AdmissionMode::Static;
  if (text == "adaptive") return AdmissionMode::Adaptive;
  throw std::invalid_argument(
      "--admission: unknown mode '" + text +
      "' (valid modes: \"off\", \"static\", \"adaptive\")");
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  config_.history_epochs =
      std::clamp<std::uint32_t>(config_.history_epochs, 1, kMaxHistory);
  config_.min_history =
      std::clamp<std::uint32_t>(config_.min_history, 1, config_.history_epochs);
  config_.cooldown_epochs = std::max<std::uint32_t>(config_.cooldown_epochs, 1);
  config_.max_cooldown_epochs =
      std::max(config_.max_cooldown_epochs, config_.cooldown_epochs);
  tokens_ = config_.burst_bytes;
  threshold_ = config_.min_benefit;
  if (enabled()) {
    c_rejected_ = registry_.counter("mover_rejected_total");
    c_cooled_ = registry_.counter("mover_cooled_total");
    c_shed_ = registry_.counter("mover_shed_total");
    c_admitted_ = registry_.counter("mover_admitted_total");
    c_bandwidth_rejected_ =
        registry_.counter("admission_bandwidth_rejected_total");
    g_cooldown_pages_ = registry_.gauge("mover_cooldown_pages");
    g_tokens_ = registry_.gauge("admission_tokens");
    g_threshold_ = registry_.gauge("admission_threshold");
  }
}

void AdmissionController::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr || !enabled()) {
    x_rejected_ = {};
    x_cooled_ = {};
    x_shed_ = {};
    x_admitted_ = {};
    x_cooldown_pages_ = {};
    x_tokens_ = {};
    x_threshold_ = {};
    return;
  }
  telemetry::MetricsRegistry& m = telemetry->metrics();
  x_rejected_ = m.counter("mover_rejected_total");
  x_cooled_ = m.counter("mover_cooled_total");
  x_shed_ = m.counter("mover_shed_total");
  x_admitted_ = m.counter("mover_admitted_total");
  x_cooldown_pages_ = m.gauge("mover_cooldown_pages");
  x_tokens_ = m.gauge("admission_tokens");
  x_threshold_ = m.gauge("admission_threshold");
}

void AdmissionController::refill(util::SimNs now) {
  if (config_.bandwidth_bytes_per_sec == 0) return;
  if (now <= last_refill_ns_) {
    last_refill_ns_ = now;
    return;
  }
  const std::uint64_t delta = now - last_refill_ns_;
  last_refill_ns_ = now;
  // Exact integer refill: tokens owed = delta_ns * B/s / 1e9, with the
  // sub-token remainder carried so no fraction is ever lost or invented —
  // the same bucket state at the same simulated time on every replay.
  const unsigned __int128 owed =
      static_cast<unsigned __int128>(delta) * config_.bandwidth_bytes_per_sec +
      refill_carry_;
  const auto add = static_cast<std::uint64_t>(owed / util::kSecond);
  refill_carry_ = static_cast<std::uint64_t>(owed % util::kSecond);
  if (add >= config_.burst_bytes - tokens_) {
    tokens_ = config_.burst_bytes;
    refill_carry_ = 0;  // a full bucket absorbs nothing further
  } else {
    tokens_ += add;
  }
}

void AdmissionController::record(const PageKey& key, std::uint64_t rank) {
  PageHistory& h = history_[key];
  if (h.len > 0 && h.last_epoch == epoch_) {
    h.ranks[0] = std::max(h.ranks[0], rank);
    return;
  }
  if (h.len > 0) {
    const std::uint32_t shift = std::min(epoch_ - h.last_epoch, kMaxHistory);
    for (std::uint32_t i = kMaxHistory; i-- > shift;) {
      h.ranks[i] = h.ranks[i - shift];
    }
    for (std::uint32_t i = 1; i < shift; ++i) h.ranks[i] = 0;
    h.len = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(h.len + shift, kMaxHistory));
  } else {
    h.len = 1;
  }
  h.ranks[0] = rank;
  h.last_epoch = epoch_;
}

std::uint64_t AdmissionController::benefit_of(const PageHistory& h) const {
  if (h.len == 0) return 0;
  const std::uint32_t age = epoch_ - h.last_epoch;
  if (age >= config_.history_epochs) return 0;
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < h.len && i + age < config_.history_epochs;
       ++i) {
    sum += h.ranks[i] >> (i + age);
  }
  return sum;
}

std::uint32_t AdmissionController::evidence_of(const PageHistory& h) const {
  if (h.len == 0) return 0;
  const std::uint32_t age = epoch_ - h.last_epoch;
  if (age >= config_.history_epochs) return 0;
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < h.len && i + age < config_.history_epochs;
       ++i) {
    if (h.ranks[i] != 0) ++n;
  }
  return n;
}

std::uint64_t AdmissionController::benefit(const PageKey& key) const {
  const auto it = history_.find(key);
  return it == history_.end() ? 0 : benefit_of(it->second);
}

std::uint32_t AdmissionController::evidence(const PageKey& key) const {
  const auto it = history_.find(key);
  return it == history_.end() ? 0 : evidence_of(it->second);
}

void AdmissionController::compact() {
  if (history_.size() <= config_.max_history_pages) return;
  // Keep entries that still carry signal: a sighting inside the benefit
  // window, a live cool-down, or a demotion recent enough to ping-pong.
  // Pure value predicate, so the surviving set is independent of slot
  // order; the scratch map retains its capacity across compactions.
  compact_scratch_.clear();
  for (const auto& [key, h] : history_) {
    const bool recent =
        h.len > 0 && epoch_ - h.last_epoch < config_.history_epochs;
    const bool cooling = h.cooldown_until != 0 && h.cooldown_until >= epoch_;
    const bool pingpong_armed =
        h.demote_epoch != 0 &&
        epoch_ - h.demote_epoch <= config_.cooldown_epochs;
    if (recent || cooling || pingpong_armed) {
      compact_scratch_.try_emplace(key, h);
    }
  }
  history_.swap(compact_scratch_);
  compact_scratch_.clear();
}

void AdmissionController::retune() {
  if (config_.mode != AdmissionMode::Adaptive) return;
  // Read pressure from the controller's own registry — the same numbers an
  // operator scrapes. Benefit rejections are deliberately excluded: they
  // are the threshold *working*, not a reason to raise it further.
  const std::uint64_t pressure_total =
      registry_.counter_value("mover_cooled_total") +
      registry_.counter_value("mover_shed_total") +
      registry_.counter_value("admission_bandwidth_rejected_total");
  const std::uint64_t pressure = pressure_total - last_pressure_total_;
  last_pressure_total_ = pressure_total;
  const std::uint64_t floor = config_.min_benefit;
  const std::uint64_t cap = std::max<std::uint64_t>(floor, 1) << 10;
  if (pressure > 0) {
    threshold_ = std::min(std::max<std::uint64_t>(threshold_, 1) * 2, cap);
  } else if (threshold_ > floor) {
    threshold_ = floor + (threshold_ - floor) / 2;
  }
}

void AdmissionController::begin_epoch(
    util::SimNs now, const std::vector<core::PageRank>& ranking) {
  if (!enabled()) return;
  ++epoch_;
  refill(now);
  for (const core::PageRank& pr : ranking) record(pr.key, pr.rank);
  compact();
  std::uint64_t cooling = 0;
  for (const auto& [key, h] : history_) {
    if (h.cooldown_until != 0 && h.cooldown_until >= epoch_) ++cooling;
  }
  cooldown_pages_ = cooling;
  retune();
  admitted_this_epoch_ = 0;
  throttled_this_epoch_ = false;
  g_cooldown_pages_.set(cooldown_pages_);
  g_tokens_.set(tokens_);
  g_threshold_.set(threshold_);
  x_cooldown_pages_.set(cooldown_pages_);
  x_tokens_.set(tokens_);
  x_threshold_.set(threshold_);
}

void AdmissionController::mark_throttled() {
  if (!throttled_this_epoch_) {
    throttled_this_epoch_ = true;
    ++throttled_epochs_;
  }
}

AdmissionDecision AdmissionController::decide(const PageKey& key,
                                              std::uint64_t bytes) {
  if (!enabled()) return AdmissionDecision::Admit;
  PageHistory* h = nullptr;
  if (auto it = history_.find(key); it != history_.end()) h = &it->second;
  if (h != nullptr) {
    if (h->cooldown_until != 0 && h->cooldown_until >= epoch_) {
      c_cooled_.inc();
      x_cooled_.inc();
      return AdmissionDecision::Cooled;
    }
    if (h->demote_epoch != 0 &&
        epoch_ - h->demote_epoch <= config_.cooldown_epochs) {
      // Demoted-then-repromoted inside the window: a ping-pong. Each
      // consecutive strike doubles the cool-down (capped), so a page that
      // keeps oscillating is silenced for longer and longer.
      h->strikes = static_cast<std::uint8_t>(
          std::min<std::uint32_t>(h->strikes + 1, 16));
      const std::uint64_t span = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(config_.cooldown_epochs)
              << (h->strikes - 1),
          config_.max_cooldown_epochs);
      h->cooldown_until = epoch_ + static_cast<std::uint32_t>(span);
      c_cooled_.inc();
      x_cooled_.inc();
      return AdmissionDecision::Cooled;
    }
  }
  const std::uint64_t score = h == nullptr ? 0 : benefit_of(*h);
  const std::uint32_t seen = h == nullptr ? 0 : evidence_of(*h);
  if (seen < config_.min_history || score < threshold_) {
    c_rejected_.inc();
    x_rejected_.inc();
    return AdmissionDecision::RejectBenefit;
  }
  if (config_.max_moves_per_epoch != 0 &&
      admitted_this_epoch_ >= config_.max_moves_per_epoch) {
    mark_throttled();
    c_shed_.inc();
    x_shed_.inc();
    return AdmissionDecision::Shed;
  }
  if (config_.bandwidth_bytes_per_sec != 0) {
    // Global bucket first, then the tenant's sub-budget: the carve only
    // deducts when the global bucket could actually fund the move.
    if (bytes > tokens_ ||
        (arbiter_ != nullptr &&
         !arbiter_->try_charge_bandwidth(key.pid, bytes))) {
      mark_throttled();
      c_bandwidth_rejected_.inc();
      c_rejected_.inc();
      x_rejected_.inc();
      return AdmissionDecision::RejectBandwidth;
    }
    tokens_ -= bytes;
    g_tokens_.set(tokens_);
    x_tokens_.set(tokens_);
  }
  if (h != nullptr) {
    // Strikes survive the admit: whether this promotion was honest shows
    // only later, when note_demoted sees how long the residency lasted.
    h->promote_epoch = epoch_;
    h->demote_epoch = 0;
  }
  ++admitted_this_epoch_;
  c_admitted_.inc();
  x_admitted_.inc();
  return AdmissionDecision::Admit;
}

void AdmissionController::note_demoted(const PageKey& key) {
  if (!enabled()) return;
  PageHistory& h = history_[key];
  h.demote_epoch = epoch_;
  if (h.promote_epoch != 0 &&
      epoch_ - h.promote_epoch > config_.cooldown_epochs) {
    // The residency outlived the ping-pong window: that promotion earned
    // its migration, so the strike ladder resets. A fast bounce keeps the
    // strikes, and the next re-request escalates the cool-down.
    h.strikes = 0;
  }
}

void AdmissionController::save_state(util::ckpt::Writer& w) const {
  w.put_u32(epoch_);
  w.put_u64(tokens_);
  w.put_u64(refill_carry_);
  w.put_u64(last_refill_ns_);
  w.put_u64(threshold_);
  w.put_u64(admitted_this_epoch_);
  w.put_u64(cooldown_pages_);
  w.put_u64(throttled_epochs_);
  w.put_bool(throttled_this_epoch_);
  w.put_u64(last_pressure_total_);
  w.put_u64(history_.size());
  history_.fold_sorted([&](const PageKey& key, const PageHistory& h) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_u32(h.last_epoch);
    w.put_u32(h.promote_epoch);
    w.put_u32(h.demote_epoch);
    w.put_u32(h.cooldown_until);
    w.put_u8(h.len);
    w.put_u8(h.strikes);
    for (std::uint8_t i = 0; i < h.len; ++i) w.put_u64(h.ranks[i]);
  });
  registry_.save_state(w);
}

void AdmissionController::load_state(util::ckpt::Reader& r) {
  epoch_ = r.get_u32();
  tokens_ = r.get_u64();
  refill_carry_ = r.get_u64();
  last_refill_ns_ = r.get_u64();
  threshold_ = r.get_u64();
  admitted_this_epoch_ = r.get_u64();
  cooldown_pages_ = r.get_u64();
  throttled_epochs_ = r.get_u64();
  throttled_this_epoch_ = r.get_bool();
  last_pressure_total_ = r.get_u64();
  if (tokens_ > config_.burst_bytes) {
    throw util::ckpt::CkptError("admission", "token count exceeds burst");
  }
  if (refill_carry_ >= util::kSecond) {
    throw util::ckpt::CkptError("admission", "refill carry out of range");
  }
  history_.clear();
  const std::uint64_t n = r.get_u64();
  history_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    PageHistory h;
    h.last_epoch = r.get_u32();
    h.promote_epoch = r.get_u32();
    h.demote_epoch = r.get_u32();
    h.cooldown_until = r.get_u32();
    h.len = r.get_u8();
    h.strikes = r.get_u8();
    if (h.len > kMaxHistory) {
      throw util::ckpt::CkptError("admission", "history length out of range");
    }
    for (std::uint8_t j = 0; j < h.len; ++j) h.ranks[j] = r.get_u64();
    history_[key] = h;
  }
  registry_.load_state(r);
}

}  // namespace tmprof::tiering
