#include "tiering/series_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tmprof::tiering {

namespace {

constexpr const char* kMagic = "tmprof-series 1";

// Ascending-key output: the text format is deterministic regardless of the
// maps' in-memory slot order (the loader never depended on line order).
void write_map(std::ostream& os, const char* tag, const core::TruthMap& map) {
  map.fold_sorted([&](const PageKey& key, std::uint64_t count) {
    os << tag << ' ' << key.pid << ' ' << key.page_va << ' ' << count << '\n';
  });
}

void write_map32(std::ostream& os, const char* tag,
                 const core::PageCountMap& map) {
  map.fold_sorted([&](const PageKey& key, std::uint32_t count) {
    os << tag << ' ' << key.pid << ' ' << key.page_va << ' ' << count << '\n';
  });
}

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("series_io: malformed line: " + line);
}

}  // namespace

void save_series(const EpochSeries& series, std::ostream& os) {
  os << kMagic << '\n';
  for (const auto& [key, size] : series.page_sizes) {
    os << "page " << key.pid << ' ' << key.page_va << ' '
       << (size == mem::PageSize::k2M ? "2M" : "4K") << '\n';
  }
  for (const EpochData& data : series.epochs) {
    os << "epoch " << data.epoch << '\n';
    for (const PageKey& key : data.new_pages) {
      os << "new " << key.pid << ' ' << key.page_va << '\n';
    }
    write_map(os, "truth", data.truth);
    write_map32(os, "abit", data.observed.abit);
    write_map32(os, "trace", data.observed.trace);
    write_map32(os, "writes", data.observed.writes);
    os << "end\n";
  }
}

void save_series_file(const EpochSeries& series, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("series_io: cannot open " + path);
  save_series(series, os);
}

EpochSeries load_series(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("series_io: bad header: " + line);
  }
  EpochSeries series;
  EpochData data;
  bool in_epoch = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "page") {
      PageKey key;
      std::string size;
      if (!(ls >> key.pid >> key.page_va >> size)) malformed(line);
      series.page_sizes[key] =
          size == "2M" ? mem::PageSize::k2M : mem::PageSize::k4K;
    } else if (tag == "epoch") {
      if (in_epoch) malformed(line);
      data = EpochData{};
      if (!(ls >> data.epoch)) malformed(line);
      data.observed.epoch = data.epoch;
      in_epoch = true;
    } else if (tag == "end") {
      if (!in_epoch) malformed(line);
      for (const auto& [key, count] : data.truth) data.truth_total += count;
      series.epochs.push_back(std::move(data));
      in_epoch = false;
    } else if (tag == "new") {
      PageKey key;
      if (!in_epoch || !(ls >> key.pid >> key.page_va)) malformed(line);
      data.new_pages.push_back(key);
    } else if (tag == "truth" || tag == "abit" || tag == "trace" ||
               tag == "writes") {
      PageKey key;
      std::uint64_t count = 0;
      if (!in_epoch || !(ls >> key.pid >> key.page_va >> count)) {
        malformed(line);
      }
      if (tag == "truth") data.truth[key] = count;
      else if (tag == "abit") {
        data.observed.abit[key] = static_cast<std::uint32_t>(count);
      } else if (tag == "trace") {
        data.observed.trace[key] = static_cast<std::uint32_t>(count);
      } else {
        data.observed.writes[key] = static_cast<std::uint32_t>(count);
      }
    } else {
      malformed(line);
    }
  }
  if (in_epoch) throw std::runtime_error("series_io: truncated epoch");
  for (const auto& [key, size] : series.page_sizes) {
    series.footprint_frames += mem::pages_in(size);
  }
  return series;
}

EpochSeries load_series_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("series_io: cannot open " + path);
  return load_series(is);
}

}  // namespace tmprof::tiering
