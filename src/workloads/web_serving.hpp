#pragma once
/// \file web_serving.hpp
/// CloudSuite Web-Serving (Elgg/nginx/PHP with the Faban client). Requests
/// hit a small hot working set — opcode caches, session state, templates —
/// with a long uniform tail of per-user content. Almost everything hits in
/// the processor caches, which is why IBS (beyond-LLC sampling) detects few
/// pages while A-bit profiling detects many (the paper's clearest case for
/// combining both sources).

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

class WebServingWorkload final : public Workload {
 public:
  /// \param content_bytes total footprint (hot region carved from its head)
  WebServingWorkload(std::uint64_t content_bytes, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return content_bytes_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "web_serving";
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  static constexpr double kHotWeight = 0.85;
  /// Consecutive lines touched per request step (template rendering).
  static constexpr std::uint64_t kBurstLines = 4;
  /// Session drift: the hot set's position rotates through the content by
  /// 1/256 of the items every this many references (users log in and out;
  /// yesterday's hot profiles cool down).
  static constexpr std::uint64_t kChurnPeriodRefs = 200'000;

  std::uint64_t content_bytes_;
  std::uint64_t items_;
  util::HotColdDistribution region_;
  util::Rng rng_;
  std::uint64_t burst_base_ = 0;
  std::uint64_t burst_left_ = 0;
  bool burst_store_ = false;
  std::uint64_t refs_ = 0;
  std::uint64_t churn_offset_ = 0;
};

}  // namespace tmprof::workloads
