#include "workloads/lulesh.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

LuleshWorkload::LuleshWorkload(std::uint64_t domain_bytes, std::uint64_t seed)
    : domain_bytes_(domain_bytes),
      elems_per_array_(domain_bytes / (kArrays * kElemBytes)),
      rng_(seed) {
  TMPROF_EXPECTS(domain_bytes >= kArrays * 64 * 1024);
  // MPI ranks own different subdomains and drift in time: desynchronize the
  // sweep start and kernel phase per instance.
  cursor_ = rng_.below(elems_per_array_);
  phase_ = static_cast<std::uint32_t>(rng_.below(kArrays));
}

MemRef LuleshWorkload::next() {
  // Each timestep kernel (phase) sweeps elements in order, touching a small
  // stencil in two source arrays and writing one destination array. Array
  // roles rotate across phases, so over a timestep the whole domain is
  // touched with high spatial locality.
  const std::uint32_t src_a = phase_ % kArrays;
  const std::uint32_t src_b = (phase_ + 1) % kArrays;
  const std::uint32_t dst = (phase_ + 2) % kArrays;
  auto addr = [&](std::uint32_t array, std::uint64_t elem) {
    return (static_cast<std::uint64_t>(array) * elems_per_array_ +
            (elem % elems_per_array_)) *
           kElemBytes;
  };
  MemRef ref;
  switch (ref_in_elem_) {
    case 0:  // stencil west neighbor
      ref.offset = addr(src_a, cursor_ == 0 ? 0 : cursor_ - 1);
      ref.is_store = false;
      break;
    case 1:  // stencil center
      ref.offset = addr(src_a, cursor_);
      ref.is_store = false;
      break;
    case 2:  // stencil east neighbor
      ref.offset = addr(src_a, cursor_ + 1);
      ref.is_store = false;
      break;
    case 3:  // coupled field
      ref.offset = addr(src_b, cursor_);
      ref.is_store = false;
      break;
    default:  // result write
      ref.offset = addr(dst, cursor_);
      ref.is_store = true;
      break;
  }
  ref.ip = phase_ % 4 + 1;
  if (++ref_in_elem_ > 4) {
    ref_in_elem_ = 0;
    if (++cursor_ >= elems_per_array_) {
      cursor_ = 0;
      ++phase_;
    }
  }
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void LuleshWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(cursor_);
  w.put_u32(phase_);
  w.put_u32(ref_in_elem_);
}
void LuleshWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  cursor_ = r.get_u64();
  phase_ = r.get_u32();
  ref_in_elem_ = r.get_u32();
}

}  // namespace tmprof::workloads
