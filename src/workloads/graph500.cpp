#include "workloads/graph500.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

// Memory layout within the footprint:
//   [0, V*8)                   offsets array
//   [V*8, V*8 + E*8)           edges array (CSR)
//   [V*8 + E*8, ... + V/8)     visited bitmap
Graph500Workload::Graph500Workload(std::uint64_t vertices, std::uint64_t seed)
    : vertices_(vertices),
      edges_(vertices * kEdgeFactor),
      degree_rank_(vertices, 0.8),  // RMAT-ish degree skew
      rng_(seed) {
  TMPROF_EXPECTS(vertices >= 4096);
  pick_vertex();
}

std::uint64_t Graph500Workload::footprint_bytes() const {
  return vertices_ * kOffsetBytes + edges_ * kEdgeBytes + vertices_ / 8 + 64;
}

void Graph500Workload::pick_vertex() {
  // Frontier vertices are visited in an order weighted by degree skew:
  // hubs appear in many adjacency lists and are processed early and often.
  vertex_ = degree_rank_(rng_);
  // Approximate per-vertex degree: hubs (low rank) get long edge bursts.
  const std::uint64_t degree =
      2 + (vertex_ < vertices_ / 64
               ? kEdgeFactor * 8
               : rng_.below(kEdgeFactor));
  edges_left_ = degree;
  // Adjacency lists start at pseudo-random CSR positions, but are read
  // sequentially once started (real CSR behavior).
  edge_cursor_ = rng_.below(edges_);
  phase_ = Phase::ReadOffset;
}

MemRef Graph500Workload::next() {
  const std::uint64_t offsets_base = 0;
  const std::uint64_t edges_base = vertices_ * kOffsetBytes;
  const std::uint64_t visited_base = edges_base + edges_ * kEdgeBytes;
  MemRef ref;
  switch (phase_) {
    case Phase::ReadOffset:
      ref.offset = offsets_base + vertex_ * kOffsetBytes;
      ref.is_store = false;
      ref.ip = 1;
      phase_ = Phase::StreamEdges;
      return ref;
    case Phase::StreamEdges:
      ref.offset = edges_base + (edge_cursor_ % edges_) * kEdgeBytes;
      ref.is_store = false;
      ref.ip = 2;
      ++edge_cursor_;
      if (--edges_left_ == 0) {
        phase_ = Phase::ProbeVisited;
        neighbor_probe_left_ = 2;  // a couple of bitmap probes per vertex
      }
      return ref;
    case Phase::ProbeVisited: {
      const std::uint64_t neighbor = degree_rank_(rng_);
      ref.offset = visited_base + neighbor / 8;
      ref.is_store = rng_.chance(0.5);  // half the probes mark the bit
      ref.ip = 3;
      if (--neighbor_probe_left_ == 0) pick_vertex();
      return ref;
    }
  }
  TMPROF_ASSERT(false);
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void Graph500Workload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u8(static_cast<std::uint8_t>(phase_));
  w.put_u64(vertex_);
  w.put_u64(edge_cursor_);
  w.put_u64(edges_left_);
  w.put_u64(neighbor_probe_left_);
}
void Graph500Workload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  phase_ = static_cast<Phase>(r.get_u8());
  vertex_ = r.get_u64();
  edge_cursor_ = r.get_u64();
  edges_left_ = r.get_u64();
  neighbor_probe_left_ = r.get_u64();
}

}  // namespace tmprof::workloads
