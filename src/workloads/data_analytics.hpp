#pragma once
/// \file data_analytics.hpp
/// CloudSuite Data-Analytics (Hadoop/Mahout Naive Bayes over the Wikipedia
/// dataset). Alternates a *map* phase — sequential scan of the input
/// splits — with a *shuffle/reduce* phase of skewed hash-bucket updates.
/// JVM heap: 4 KiB pages; the broad sequential scans give A-bit profiling
/// its largest detected-page counts in Table IV.

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

class DataAnalyticsWorkload final : public Workload {
 public:
  /// \param input_bytes  scanned dataset region
  /// \param hash_bytes   shuffle hash-table region
  DataAnalyticsWorkload(std::uint64_t input_bytes, std::uint64_t hash_bytes,
                        std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return input_bytes_ + hash_bytes_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "data_analytics";
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  /// References per map phase before switching to shuffle, and vice versa.
  static constexpr std::uint64_t kMapRefs = 1 << 14;
  static constexpr std::uint64_t kShuffleRefs = 1 << 12;

  std::uint64_t input_bytes_;
  std::uint64_t hash_bytes_;
  util::ZipfDistribution bucket_;
  util::Rng rng_;
  std::uint64_t scan_cursor_ = 0;
  std::uint64_t refs_in_phase_ = 0;
  bool shuffling_ = false;
};

}  // namespace tmprof::workloads
