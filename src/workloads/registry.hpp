#pragma once
/// \file registry.hpp
/// Table III workload setups. Footprints are scaled down ~64x from the
/// paper's testbed (so experiments run in seconds on a laptop-class
/// simulator) while preserving each workload's skew class, page size, and
/// the *relative* footprint ordering that drives the paper's results.
/// The `scale` parameter multiplies all footprints.

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace tmprof::workloads {

/// Static description of one Table III row, scaled.
struct WorkloadSpec {
  std::string name;              ///< canonical id, e.g. "gups"
  std::string suite;             ///< "CloudSuite" or "HPC"
  std::uint64_t total_bytes;     ///< combined footprint across processes
  std::uint32_t processes;       ///< instance count (scaled from Table III)
  mem::PageSize page_size;       ///< kernel backing (THP for HPC heaps)
};

/// All eight Table III workloads at the given scale (1.0 = default sizes).
[[nodiscard]] std::vector<WorkloadSpec> table3_specs(double scale = 1.0);

/// Look up one spec by name; throws std::out_of_range for unknown names.
[[nodiscard]] WorkloadSpec find_spec(const std::string& name,
                                     double scale = 1.0);

/// Instantiate one process's generator for a spec. `process_index` selects
/// an independent deterministic stream; each process gets
/// total_bytes / processes of private footprint.
[[nodiscard]] WorkloadPtr make_workload(const WorkloadSpec& spec,
                                        std::uint32_t process_index,
                                        std::uint64_t seed);

/// Convenience: names of all Table III workloads in paper order.
[[nodiscard]] std::vector<std::string> table3_names();

}  // namespace tmprof::workloads
