#include "workloads/synthetic.hpp"

#include "util/ckpt_io.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tmprof::workloads {

UniformWorkload::UniformWorkload(std::uint64_t footprint_bytes,
                                 double store_fraction, std::uint64_t seed)
    : footprint_(footprint_bytes), store_fraction_(store_fraction), rng_(seed) {
  TMPROF_EXPECTS(footprint_bytes >= 64);
  TMPROF_EXPECTS(store_fraction >= 0.0 && store_fraction <= 1.0);
}

MemRef UniformWorkload::next() {
  MemRef ref;
  ref.offset = rng_.below(footprint_) & ~7ULL;  // 8-byte aligned
  ref.is_store = rng_.chance(store_fraction_);
  ref.ip = 1;
  return ref;
}

SequentialWorkload::SequentialWorkload(std::uint64_t footprint_bytes,
                                       std::uint64_t stride,
                                       double store_fraction,
                                       std::uint64_t seed)
    : footprint_(footprint_bytes),
      stride_(stride),
      store_fraction_(store_fraction),
      rng_(seed) {
  TMPROF_EXPECTS(footprint_bytes >= stride);
  TMPROF_EXPECTS(stride >= 1);
}

MemRef SequentialWorkload::next() {
  MemRef ref;
  ref.offset = cursor_;
  ref.is_store = rng_.chance(store_fraction_);
  ref.ip = 1;
  cursor_ += stride_;
  if (cursor_ >= footprint_) cursor_ = 0;
  return ref;
}

ZipfWorkload::ZipfWorkload(std::uint64_t footprint_bytes,
                           std::uint64_t record_bytes, double theta,
                           double store_fraction, std::uint64_t seed)
    : footprint_(footprint_bytes),
      record_bytes_(record_bytes),
      store_fraction_(store_fraction),
      zipf_(footprint_bytes / record_bytes, theta),
      rng_(seed) {
  TMPROF_EXPECTS(record_bytes >= 8 && record_bytes <= footprint_bytes);
}

MemRef ZipfWorkload::next() {
  const std::uint64_t record = zipf_(rng_);
  MemRef ref;
  ref.offset = record * record_bytes_ + (rng_.below(record_bytes_) & ~7ULL);
  ref.is_store = rng_.chance(store_fraction_);
  ref.ip = 1;
  return ref;
}

HotColdWorkload::HotColdWorkload(std::uint64_t footprint_bytes,
                                 std::uint64_t record_bytes,
                                 double hot_fraction_of_items,
                                 double hot_weight, double store_fraction,
                                 std::uint64_t seed)
    : footprint_(footprint_bytes),
      record_bytes_(record_bytes),
      store_fraction_(store_fraction),
      dist_(footprint_bytes / record_bytes,
            std::min<std::uint64_t>(
                footprint_bytes / record_bytes,
                static_cast<std::uint64_t>(
                    static_cast<double>(footprint_bytes / record_bytes) *
                    hot_fraction_of_items) +
                    1),
            hot_weight),
      rng_(seed) {
  TMPROF_EXPECTS(record_bytes >= 8 && record_bytes <= footprint_bytes);
  TMPROF_EXPECTS(hot_fraction_of_items > 0.0 && hot_fraction_of_items <= 1.0);
}

MemRef HotColdWorkload::next() {
  const std::uint64_t record = dist_(rng_);
  MemRef ref;
  ref.offset = record * record_bytes_ + (rng_.below(record_bytes_) & ~7ULL);
  ref.is_store = rng_.chance(store_fraction_);
  ref.ip = 1;
  return ref;
}

InitThenServeWorkload::InitThenServeWorkload(std::uint64_t cold_bytes,
                                             std::uint64_t hot_bytes,
                                             double theta, std::uint64_t seed)
    : cold_bytes_(cold_bytes),
      hot_bytes_(hot_bytes),
      record_(hot_bytes / 64, theta),
      rng_(seed) {
  TMPROF_EXPECTS(cold_bytes >= 64 && hot_bytes >= 64 * 64);
}

MemRef InitThenServeWorkload::next() {
  MemRef ref;
  if (cursor_ < cold_bytes_) {
    // Dataset load: touch every cold line exactly once.
    ref.offset = cursor_;
    ref.is_store = true;
    ref.ip = 1;
    cursor_ += 64;
    return ref;
  }
  ref.offset = cold_bytes_ + record_(rng_) * 64;
  ref.is_store = rng_.chance(0.05);
  ref.ip = 2;
  return ref;
}

PhaseShiftWorkload::PhaseShiftWorkload(std::uint64_t stable_bytes,
                                       std::uint64_t slot_bytes,
                                       std::uint32_t n_slots,
                                       std::uint64_t phase_ops,
                                       double stable_fraction,
                                       std::uint64_t seed)
    : stable_bytes_(stable_bytes),
      slot_bytes_(slot_bytes),
      n_slots_(n_slots),
      phase_ops_(phase_ops),
      stable_fraction_(stable_fraction),
      rng_(seed) {
  TMPROF_EXPECTS(stable_bytes >= 64 && slot_bytes >= 64);
  TMPROF_EXPECTS(n_slots >= 2);
  TMPROF_EXPECTS(phase_ops >= 1);
  TMPROF_EXPECTS(stable_fraction >= 0.0 && stable_fraction <= 1.0);
}

MemRef PhaseShiftWorkload::next() {
  MemRef ref;
  if (rng_.chance(stable_fraction_)) {
    ref.offset = rng_.below(stable_bytes_) & ~7ULL;
    ref.ip = 1;
  } else {
    const std::uint64_t base =
        stable_bytes_ + static_cast<std::uint64_t>(slot_at(ops_)) * slot_bytes_;
    ref.offset = base + (rng_.below(slot_bytes_) & ~7ULL);
    ref.ip = 2;
  }
  ref.is_store = rng_.chance(0.05);
  ++ops_;
  return ref;
}

ZipfChurnWorkload::ZipfChurnWorkload(std::uint64_t footprint_bytes,
                                     std::uint64_t record_bytes, double theta,
                                     std::uint64_t phase_ops,
                                     std::uint64_t churn_records,
                                     std::uint64_t seed)
    : footprint_(footprint_bytes),
      record_bytes_(record_bytes),
      n_records_(footprint_bytes / record_bytes),
      phase_ops_(phase_ops),
      churn_records_(churn_records),
      zipf_(footprint_bytes / record_bytes, theta),
      rng_(seed) {
  TMPROF_EXPECTS(record_bytes >= 8 && record_bytes <= footprint_bytes);
  TMPROF_EXPECTS(phase_ops >= 1);
}

MemRef ZipfChurnWorkload::next() {
  const std::uint64_t shift = (ops_ / phase_ops_) * churn_records_;
  const std::uint64_t record = (zipf_(rng_) + shift) % n_records_;
  MemRef ref;
  ref.offset = record * record_bytes_ + (rng_.below(record_bytes_) & ~7ULL);
  ref.is_store = rng_.chance(0.05);
  ref.ip = 1;
  ++ops_;
  return ref;
}


ChurnSessionWorkload::ChurnSessionWorkload(
    std::uint64_t footprint_bytes, std::uint64_t record_bytes, double theta,
    std::uint64_t session_ops, std::uint64_t idle_ops,
    std::uint32_t n_generations, std::uint64_t phase_offset_ops,
    std::uint64_t seed)
    : footprint_(footprint_bytes),
      record_bytes_(record_bytes),
      n_records_(footprint_bytes / record_bytes),
      session_ops_(session_ops),
      idle_ops_(idle_ops),
      n_generations_(n_generations),
      phase_offset_ops_(phase_offset_ops),
      zipf_(footprint_bytes / record_bytes, theta),
      rng_(seed) {
  TMPROF_EXPECTS(record_bytes >= 8 && record_bytes <= footprint_bytes);
  TMPROF_EXPECTS(session_ops >= 1);
  TMPROF_EXPECTS(n_generations >= 1);
}

MemRef ChurnSessionWorkload::next() {
  const std::uint64_t clock = ops_ + phase_offset_ops_;
  const std::uint64_t cycle = session_ops_ + idle_ops_;
  const std::uint64_t generation = (clock / cycle) % n_generations_;
  const std::uint64_t rotate = generation * (n_records_ / n_generations_);
  MemRef ref;
  if (clock % cycle < session_ops_) {
    const std::uint64_t record = (zipf_(rng_) + rotate) % n_records_;
    ref.offset = record * record_bytes_ + (rng_.below(record_bytes_) & ~7ULL);
    ref.is_store = rng_.chance(0.05);
    ref.ip = 1;
  } else {
    // Idle heartbeat: the tenant stays resident but cold — no rng draw, so
    // the session stream is unchanged by how long the gap lasted.
    ref.offset = rotate * record_bytes_;
    ref.is_store = false;
    ref.ip = 2;
  }
  ++ops_;
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void UniformWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
}
void UniformWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
}

void SequentialWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(cursor_);
}
void SequentialWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  cursor_ = r.get_u64();
}

void ZipfWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);  // zipf_ is const after construction
}
void ZipfWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
}

void HotColdWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);  // dist_ is const after construction
}
void HotColdWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
}

void InitThenServeWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(cursor_);
}
void InitThenServeWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  cursor_ = r.get_u64();
}

void PhaseShiftWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(ops_);
}
void PhaseShiftWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  ops_ = r.get_u64();
}

void ZipfChurnWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(ops_);
}
void ZipfChurnWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  ops_ = r.get_u64();
}

void ChurnSessionWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(ops_);
}
void ChurnSessionWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  ops_ = r.get_u64();
}

}  // namespace tmprof::workloads
