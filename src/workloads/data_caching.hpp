#pragma once
/// \file data_caching.hpp
/// CloudSuite Data-Caching (memcached serving the Twitter dataset). GET/SET
/// mix over Zipf-popular keys: each operation probes the hash index, then
/// reads (or writes) a multi-line value from the slab region. The paper
/// runs 4 memcached servers against 8 clients with a 36 GB dataset.

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

class DataCachingWorkload final : public Workload {
 public:
  /// \param slab_bytes  value storage (dominates the footprint)
  /// \param value_bytes average object size (twitter: ~800 B; use 1 KiB)
  DataCachingWorkload(std::uint64_t slab_bytes, std::uint64_t value_bytes,
                      std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  [[nodiscard]] std::string_view name() const override {
    return "data_caching";
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  static constexpr double kSetFraction = 0.05;  // CloudSuite default GET:SET
  /// Popularity churn: every this many references the Zipf rank → key
  /// mapping rotates by 1/512 of the key space, modeling trending items in
  /// the Twitter dataset. Hot-set drift is what makes reactive placement
  /// matter for caching services.
  static constexpr std::uint64_t kChurnPeriodRefs = 200'000;

  std::uint64_t slab_bytes_;
  std::uint64_t value_bytes_;
  std::uint64_t index_bytes_;
  std::uint64_t keys_;
  util::ZipfDistribution key_;
  util::Rng rng_;

  std::uint64_t current_value_ = 0;
  std::uint64_t lines_left_ = 0;
  std::uint64_t line_cursor_ = 0;
  bool current_is_set_ = false;
  std::uint64_t refs_ = 0;
  std::uint64_t churn_offset_ = 0;
};

}  // namespace tmprof::workloads
