#include "workloads/data_caching.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

// Layout: [0, index_bytes) hash index, [index_bytes, +slab_bytes) slabs.
DataCachingWorkload::DataCachingWorkload(std::uint64_t slab_bytes,
                                         std::uint64_t value_bytes,
                                         std::uint64_t seed)
    : slab_bytes_(slab_bytes),
      value_bytes_(value_bytes),
      index_bytes_(slab_bytes / 16),
      keys_(slab_bytes / value_bytes),
      key_(slab_bytes / value_bytes, 0.99),  // classic memcached skew
      rng_(seed) {
  TMPROF_EXPECTS(value_bytes >= 64);
  TMPROF_EXPECTS(slab_bytes >= value_bytes * 64);
}

std::uint64_t DataCachingWorkload::footprint_bytes() const {
  return index_bytes_ + slab_bytes_;
}

MemRef DataCachingWorkload::next() {
  MemRef ref;
  if (++refs_ % kChurnPeriodRefs == 0) {
    churn_offset_ = (churn_offset_ + keys_ / 512 + 1) % keys_;
  }
  if (lines_left_ == 0) {
    // New operation: probe the hash index for a Zipf-popular key. The
    // rank → key mapping rotates slowly (trending-item churn).
    const std::uint64_t k = (key_(rng_) + churn_offset_) % keys_;
    current_value_ = index_bytes_ + k * value_bytes_;
    lines_left_ = value_bytes_ / 64;
    line_cursor_ = 0;
    current_is_set_ = rng_.chance(kSetFraction);
    // Hash-bucket probe: pseudo-random position derived from the key.
    std::uint64_t h = k;
    ref.offset = (util::splitmix64(h) % (index_bytes_ / 8)) * 8;
    ref.is_store = false;
    ref.ip = 1;
    return ref;
  }
  // Stream the value, line by line; SETs write, GETs read.
  ref.offset = current_value_ + line_cursor_ * 64;
  ref.is_store = current_is_set_;
  ref.ip = current_is_set_ ? 3 : 2;
  ++line_cursor_;
  --lines_left_;
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void DataCachingWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(current_value_);
  w.put_u64(lines_left_);
  w.put_u64(line_cursor_);
  w.put_bool(current_is_set_);
  w.put_u64(refs_);
  w.put_u64(churn_offset_);
}
void DataCachingWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  current_value_ = r.get_u64();
  lines_left_ = r.get_u64();
  line_cursor_ = r.get_u64();
  current_is_set_ = r.get_bool();
  refs_ = r.get_u64();
  churn_offset_ = r.get_u64();
}

}  // namespace tmprof::workloads
