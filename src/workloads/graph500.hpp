#pragma once
/// \file graph500.hpp
/// Graph500 BFS over an RMAT graph in CSR form. The generator materializes
/// a synthetic CSR layout (offsets + edges) with an RMAT-like skewed degree
/// distribution and then replays breadth-first traversal accesses: a
/// frontier vertex's offset reads, a sequential burst over its edge list,
/// and random visited-bitmap probes/updates for its neighbors.

#include <vector>

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

class Graph500Workload final : public Workload {
 public:
  /// \param vertices  vertex count (edges ≈ 16x, Graph500's edge factor)
  Graph500Workload(std::uint64_t vertices, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  [[nodiscard]] std::string_view name() const override { return "graph500"; }
  [[nodiscard]] mem::PageSize page_size() const override {
    return mem::PageSize::k2M;
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  static constexpr std::uint64_t kEdgeFactor = 16;
  static constexpr std::uint64_t kOffsetBytes = 8;
  static constexpr std::uint64_t kEdgeBytes = 8;

  enum class Phase : std::uint8_t { ReadOffset, StreamEdges, ProbeVisited };

  void pick_vertex();

  std::uint64_t vertices_;
  std::uint64_t edges_;
  util::ZipfDistribution degree_rank_;  ///< skewed frontier-vertex choice
  util::Rng rng_;

  Phase phase_ = Phase::ReadOffset;
  std::uint64_t vertex_ = 0;
  std::uint64_t edge_cursor_ = 0;
  std::uint64_t edges_left_ = 0;
  std::uint64_t neighbor_probe_left_ = 0;
};

}  // namespace tmprof::workloads
