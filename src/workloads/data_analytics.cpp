#include "workloads/data_analytics.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

DataAnalyticsWorkload::DataAnalyticsWorkload(std::uint64_t input_bytes,
                                             std::uint64_t hash_bytes,
                                             std::uint64_t seed)
    : input_bytes_(input_bytes),
      hash_bytes_(hash_bytes),
      bucket_(hash_bytes / 64, 0.9),  // term frequencies are Zipfian
      rng_(seed) {
  TMPROF_EXPECTS(input_bytes >= 1 << 20);
  TMPROF_EXPECTS(hash_bytes >= 1 << 16);
  // Workers process different splits: start each scan at a random offset so
  // multi-process deployments are not in artificial lockstep.
  scan_cursor_ = (rng_.below(input_bytes_ / 64)) * 64;
}

MemRef DataAnalyticsWorkload::next() {
  MemRef ref;
  if (!shuffling_) {
    // Map: sequential scan of the input split, one cache line at a time.
    ref.offset = scan_cursor_;
    ref.is_store = false;
    ref.ip = 1;
    scan_cursor_ += 64;
    if (scan_cursor_ >= input_bytes_) scan_cursor_ = 0;
    if (++refs_in_phase_ >= kMapRefs) {
      refs_in_phase_ = 0;
      shuffling_ = true;
    }
    return ref;
  }
  // Shuffle/reduce: read-modify-write skewed hash buckets.
  const std::uint64_t bucket = bucket_(rng_);
  ref.offset = input_bytes_ + bucket * 64 + (rng_.below(64) & ~7ULL);
  ref.is_store = rng_.chance(0.5);
  ref.ip = 2;
  if (++refs_in_phase_ >= kShuffleRefs) {
    refs_in_phase_ = 0;
    shuffling_ = false;
  }
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void DataAnalyticsWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(scan_cursor_);
  w.put_u64(refs_in_phase_);
  w.put_bool(shuffling_);
}
void DataAnalyticsWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  scan_cursor_ = r.get_u64();
  refs_in_phase_ = r.get_u64();
  shuffling_ = r.get_bool();
}

}  // namespace tmprof::workloads
