#pragma once
/// \file lulesh.hpp
/// LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
/// proxy app. Time-stepped sweeps over nodal and element arrays with
/// stencil-shaped neighborhoods: mostly sequential with small bounded
/// strides, so hardware prefetching and the TLB work well — LULESH is the
/// suite's cache-friendly HPC representative (paper Table IV: tiny "Both"
/// overlap and modest IBS counts despite a 21 GB footprint).

#include "workloads/workload.hpp"

namespace tmprof::workloads {

class LuleshWorkload final : public Workload {
 public:
  /// \param domain_bytes  combined size of the field arrays
  LuleshWorkload(std::uint64_t domain_bytes, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return domain_bytes_;
  }
  [[nodiscard]] std::string_view name() const override { return "lulesh"; }
  [[nodiscard]] mem::PageSize page_size() const override {
    return mem::PageSize::k2M;
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  static constexpr std::uint32_t kArrays = 8;   ///< field arrays in the domain
  static constexpr std::uint64_t kElemBytes = 8;

  std::uint64_t domain_bytes_;
  std::uint64_t elems_per_array_;
  util::Rng rng_;
  std::uint64_t cursor_ = 0;     ///< element index within the sweep
  std::uint32_t phase_ = 0;      ///< which kernel of the timestep
  std::uint32_t ref_in_elem_ = 0;
};

}  // namespace tmprof::workloads
