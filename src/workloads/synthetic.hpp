#pragma once
/// \file synthetic.hpp
/// Generic access-pattern generators used by tests and as building blocks:
/// uniform-random, sequential, strided, Zipfian and hot/cold mixtures.

#include <cstdint>

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

/// Uniformly random loads (optionally a store fraction) over the footprint.
class UniformWorkload final : public Workload {
 public:
  UniformWorkload(std::uint64_t footprint_bytes, double store_fraction,
                  std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "uniform"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  double store_fraction_;
  util::Rng rng_;
};

/// Pure sequential sweep with a configurable stride, wrapping at the end.
class SequentialWorkload final : public Workload {
 public:
  SequentialWorkload(std::uint64_t footprint_bytes, std::uint64_t stride,
                     double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "sequential"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t stride_;
  double store_fraction_;
  std::uint64_t cursor_ = 0;
  util::Rng rng_;
};

/// Zipf-distributed accesses over fixed-size records.
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(std::uint64_t footprint_bytes, std::uint64_t record_bytes,
               double theta, double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "zipf"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  double store_fraction_;
  util::ZipfDistribution zipf_;
  util::Rng rng_;
};

/// Hot/cold mixture over fixed-size records.
class HotColdWorkload final : public Workload {
 public:
  HotColdWorkload(std::uint64_t footprint_bytes, std::uint64_t record_bytes,
                  double hot_fraction_of_items, double hot_weight,
                  double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "hotcold"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  double store_fraction_;
  util::HotColdDistribution dist_;
  util::Rng rng_;
};

/// Init-then-serve: a one-shot sequential initialization pass over a cold
/// region (dataset load), then steady-state Zipfian service traffic over a
/// separate hot region. The canonical case where first-come-first-allocate
/// placement fails: tier 1 fills with initialization pages that are never
/// touched again.
class InitThenServeWorkload final : public Workload {
 public:
  InitThenServeWorkload(std::uint64_t cold_bytes, std::uint64_t hot_bytes,
                        double theta, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return cold_bytes_ + hot_bytes_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "init-then-serve";
  }

  [[nodiscard]] bool serving() const noexcept { return cursor_ >= cold_bytes_; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t cold_bytes_;
  std::uint64_t hot_bytes_;
  util::ZipfDistribution record_;
  util::Rng rng_;
  std::uint64_t cursor_ = 0;  ///< init progress; saturates at cold_bytes_
};

}  // namespace tmprof::workloads
