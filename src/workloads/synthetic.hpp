#pragma once
/// \file synthetic.hpp
/// Generic access-pattern generators used by tests and as building blocks:
/// uniform-random, sequential, strided, Zipfian and hot/cold mixtures.

#include <cstdint>

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

/// Uniformly random loads (optionally a store fraction) over the footprint.
class UniformWorkload final : public Workload {
 public:
  UniformWorkload(std::uint64_t footprint_bytes, double store_fraction,
                  std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "uniform"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  double store_fraction_;
  util::Rng rng_;
};

/// Pure sequential sweep with a configurable stride, wrapping at the end.
class SequentialWorkload final : public Workload {
 public:
  SequentialWorkload(std::uint64_t footprint_bytes, std::uint64_t stride,
                     double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "sequential"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t stride_;
  double store_fraction_;
  std::uint64_t cursor_ = 0;
  util::Rng rng_;
};

/// Zipf-distributed accesses over fixed-size records.
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(std::uint64_t footprint_bytes, std::uint64_t record_bytes,
               double theta, double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "zipf"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  double store_fraction_;
  util::ZipfDistribution zipf_;
  util::Rng rng_;
};

/// Hot/cold mixture over fixed-size records.
class HotColdWorkload final : public Workload {
 public:
  HotColdWorkload(std::uint64_t footprint_bytes, std::uint64_t record_bytes,
                  double hot_fraction_of_items, double hot_weight,
                  double store_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "hotcold"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  double store_fraction_;
  util::HotColdDistribution dist_;
  util::Rng rng_;
};

/// Init-then-serve: a one-shot sequential initialization pass over a cold
/// region (dataset load), then steady-state Zipfian service traffic over a
/// separate hot region. The canonical case where first-come-first-allocate
/// placement fails: tier 1 fills with initialization pages that are never
/// touched again.
class InitThenServeWorkload final : public Workload {
 public:
  InitThenServeWorkload(std::uint64_t cold_bytes, std::uint64_t hot_bytes,
                        double theta, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return cold_bytes_ + hot_bytes_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "init-then-serve";
  }

  [[nodiscard]] bool serving() const noexcept { return cursor_ >= cold_bytes_; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t cold_bytes_;
  std::uint64_t hot_bytes_;
  util::ZipfDistribution record_;
  util::Rng rng_;
  std::uint64_t cursor_ = 0;  ///< init progress; saturates at cold_bytes_
};

/// Phase-shift storm generator (docs/ADMISSION.md): a stable region that is
/// hot in every phase, plus `n_slots` churn slots of which exactly one is
/// hot at a time; the hot slot rotates every `phase_ops` references. With
/// n_slots = 2 the rotation is A/B/A/B — each slot's pages are demoted when
/// their phase ends and re-requested when it returns, the canonical
/// ping-pong an admission gate must dampen. The stable region is what a
/// storm must not sacrifice: its hitrate separates "moved fewer bytes" from
/// "stopped tiering".
class PhaseShiftWorkload final : public Workload {
 public:
  PhaseShiftWorkload(std::uint64_t stable_bytes, std::uint64_t slot_bytes,
                     std::uint32_t n_slots, std::uint64_t phase_ops,
                     double stable_fraction, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return stable_bytes_ + static_cast<std::uint64_t>(n_slots_) * slot_bytes_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "phase-shift";
  }

  /// Slot hot at reference index `op` (phase = op / phase_ops).
  [[nodiscard]] std::uint32_t slot_at(std::uint64_t op) const noexcept {
    return static_cast<std::uint32_t>((op / phase_ops_) % n_slots_);
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t stable_bytes_;
  std::uint64_t slot_bytes_;
  std::uint32_t n_slots_;
  std::uint64_t phase_ops_;
  double stable_fraction_;
  util::Rng rng_;
  std::uint64_t ops_ = 0;  ///< references emitted (drives the phase clock)
};

/// Zipf-churn storm generator: Zipfian skew whose rank-to-record mapping
/// rotates by `churn_records` every `phase_ops` references, so the hot head
/// slides across the footprint in bursts. Unlike phase-shift's clean flip,
/// the head *overlaps* across phases — yesterday's warm pages decay instead
/// of dying, stressing the benefit predictor's history window rather than
/// the ping-pong detector.
class ZipfChurnWorkload final : public Workload {
 public:
  ZipfChurnWorkload(std::uint64_t footprint_bytes, std::uint64_t record_bytes,
                    double theta, std::uint64_t phase_ops,
                    std::uint64_t churn_records, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override { return "zipf-churn"; }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  std::uint64_t n_records_;
  std::uint64_t phase_ops_;
  std::uint64_t churn_records_;
  util::ZipfDistribution zipf_;
  util::Rng rng_;
  std::uint64_t ops_ = 0;  ///< references emitted (drives the churn shift)
};

/// Tenant-churn session generator (docs/CONSOLIDATION.md): alternating
/// active sessions and idle gaps, modeling a batch tenant that arrives,
/// runs a job, and departs. Each session serves Zipfian traffic whose
/// rank-to-record mapping is rotated by the session's generation number, so
/// a "new arrival" brings a fresh hot set instead of rewarming the old one;
/// during the idle gap the process stays resident but emits only a cold
/// heartbeat reference, so its fast-tier heat decays the way a departed
/// tenant's would. `phase_offset_ops` staggers tenants so the fleet's
/// arrivals and departures interleave rather than synchronize.
class ChurnSessionWorkload final : public Workload {
 public:
  ChurnSessionWorkload(std::uint64_t footprint_bytes,
                       std::uint64_t record_bytes, double theta,
                       std::uint64_t session_ops, std::uint64_t idle_ops,
                       std::uint32_t n_generations,
                       std::uint64_t phase_offset_ops, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return footprint_;
  }
  [[nodiscard]] std::string_view name() const override {
    return "churn-session";
  }

  /// True when reference index `op` falls inside an active session.
  [[nodiscard]] bool active_at(std::uint64_t op) const noexcept {
    return (op + phase_offset_ops_) % (session_ops_ + idle_ops_) <
           session_ops_;
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t footprint_;
  std::uint64_t record_bytes_;
  std::uint64_t n_records_;
  std::uint64_t session_ops_;
  std::uint64_t idle_ops_;
  std::uint32_t n_generations_;
  std::uint64_t phase_offset_ops_;
  util::ZipfDistribution zipf_;
  util::Rng rng_;
  std::uint64_t ops_ = 0;  ///< references emitted (drives the session clock)
};

}  // namespace tmprof::workloads
