#include "workloads/web_serving.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

WebServingWorkload::WebServingWorkload(std::uint64_t content_bytes,
                                       std::uint64_t seed)
    : content_bytes_(content_bytes),
      items_(content_bytes / 64),
      // Hot set: 1/32 of the items takes kHotWeight of the traffic.
      region_(content_bytes / 64, content_bytes / 64 / 32 + 1, kHotWeight),
      rng_(seed) {
  TMPROF_EXPECTS(content_bytes >= 1 << 20);
}

MemRef WebServingWorkload::next() {
  MemRef ref;
  if (++refs_ % kChurnPeriodRefs == 0) {
    churn_offset_ = (churn_offset_ + items_ / 512 + 1) % items_;
  }
  if (burst_left_ == 0) {
    burst_base_ = (region_(rng_) + churn_offset_) % items_ * 64;
    burst_left_ = kBurstLines;
    burst_store_ = rng_.chance(0.1);  // session writes
  }
  const std::uint64_t line = kBurstLines - burst_left_;
  ref.offset = (burst_base_ + line * 64) % content_bytes_;
  ref.is_store = burst_store_ && line == 0;
  ref.ip = burst_store_ ? 2 : 1;
  --burst_left_;
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void WebServingWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(burst_base_);
  w.put_u64(burst_left_);
  w.put_bool(burst_store_);
  w.put_u64(refs_);
  w.put_u64(churn_offset_);
}
void WebServingWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  burst_base_ = r.get_u64();
  burst_left_ = r.get_u64();
  burst_store_ = r.get_bool();
  refs_ = r.get_u64();
  churn_offset_ = r.get_u64();
}

}  // namespace tmprof::workloads
