#include "workloads/registry.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "workloads/data_analytics.hpp"
#include "workloads/data_caching.hpp"
#include "workloads/graph500.hpp"
#include "workloads/graph_analytics.hpp"
#include "workloads/gups.hpp"
#include "workloads/lulesh.hpp"
#include "workloads/web_serving.hpp"
#include "workloads/xsbench.hpp"

namespace tmprof::workloads {

namespace {
constexpr std::uint64_t kMiB = 1ULL << 20;

std::uint64_t scaled(double scale, std::uint64_t bytes) {
  const auto s = static_cast<std::uint64_t>(static_cast<double>(bytes) * scale);
  // Keep footprints huge-page aligned so THP workloads tile cleanly.
  const std::uint64_t aligned = s & ~(mem::kHugePageSize - 1);
  return aligned >= mem::kHugePageSize ? aligned : mem::kHugePageSize;
}
}  // namespace

std::vector<WorkloadSpec> table3_specs(double scale) {
  TMPROF_EXPECTS(scale > 0.0);
  // Paper Table III, footprints divided by ~64, process counts divided by
  // ~8 (the simulator round-robins processes over 6 cores as the testbed's
  // oversubscribed deployment does).
  return {
      {"data_analytics", "CloudSuite", scaled(scale, 96 * kMiB), 4,
       mem::PageSize::k4K},
      {"data_caching", "CloudSuite", scaled(scale, 384 * kMiB), 4,
       mem::PageSize::k4K},
      {"graph500", "HPC", scaled(scale, 96 * kMiB), 4, mem::PageSize::k2M},
      {"graph_analytics", "CloudSuite", scaled(scale, 128 * kMiB), 4,
       mem::PageSize::k4K},
      {"gups", "HPC", scaled(scale, 512 * kMiB), 4, mem::PageSize::k2M},
      {"lulesh", "HPC", scaled(scale, 320 * kMiB), 4, mem::PageSize::k2M},
      {"web_serving", "CloudSuite", scaled(scale, 128 * kMiB), 3,
       mem::PageSize::k4K},
      {"xsbench", "HPC", scaled(scale, 768 * kMiB), 4, mem::PageSize::k2M},
  };
}

std::vector<std::string> table3_names() {
  std::vector<std::string> names;
  for (const auto& spec : table3_specs()) names.push_back(spec.name);
  return names;
}

WorkloadSpec find_spec(const std::string& name, double scale) {
  for (auto& spec : table3_specs(scale)) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown workload: " + name);
}

WorkloadPtr make_workload(const WorkloadSpec& spec,
                          std::uint32_t process_index, std::uint64_t seed) {
  TMPROF_EXPECTS(process_index < spec.processes);
  const std::uint64_t per_proc = spec.total_bytes / spec.processes;
  // Derive a per-process stream that differs even under the same base seed.
  std::uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (process_index + 1));
  const std::uint64_t proc_seed = util::splitmix64(mix);

  if (spec.name == "data_analytics") {
    // 7/8 scanned input, 1/8 shuffle hash space.
    return std::make_unique<DataAnalyticsWorkload>(per_proc * 7 / 8,
                                                   per_proc / 8, proc_seed);
  }
  if (spec.name == "data_caching") {
    return std::make_unique<DataCachingWorkload>(per_proc * 16 / 17, 1024,
                                                 proc_seed);
  }
  if (spec.name == "graph500") {
    // Solve V from footprint ≈ V*8 + 16V*8 + V/8.
    const std::uint64_t vertices = per_proc / 137;
    return std::make_unique<Graph500Workload>(vertices, proc_seed);
  }
  if (spec.name == "graph_analytics") {
    return std::make_unique<GraphAnalyticsWorkload>(per_proc / 16, proc_seed);
  }
  if (spec.name == "gups") {
    return std::make_unique<GupsWorkload>(per_proc, proc_seed);
  }
  if (spec.name == "lulesh") {
    return std::make_unique<LuleshWorkload>(per_proc, proc_seed);
  }
  if (spec.name == "web_serving") {
    return std::make_unique<WebServingWorkload>(per_proc, proc_seed);
  }
  if (spec.name == "xsbench") {
    // 1/32 hot unionized grid, the rest nuclide grid.
    return std::make_unique<XsbenchWorkload>(per_proc * 31 / 32,
                                             per_proc / 32, proc_seed);
  }
  throw std::out_of_range("unknown workload: " + spec.name);
}

}  // namespace tmprof::workloads
