#pragma once
/// \file graph_analytics.hpp
/// CloudSuite Graph-Analytics (Spark GraphX PageRank over the Twitter
/// follower graph). Each superstep sweeps vertices sequentially, reading
/// the old rank vector, gathering contributions from Zipf-skewed neighbor
/// ranks (Twitter's in-degree distribution is heavily skewed toward
/// celebrity hubs — those pages get hot), and writing the new rank.
/// Runs on a JVM heap: 4 KiB pages.

#include "util/zipf.hpp"
#include "workloads/workload.hpp"

namespace tmprof::workloads {

class GraphAnalyticsWorkload final : public Workload {
 public:
  GraphAnalyticsWorkload(std::uint64_t vertices, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  [[nodiscard]] std::string_view name() const override {
    return "graph_analytics";
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  static constexpr std::uint64_t kRankBytes = 8;
  static constexpr std::uint32_t kGathersPerVertex = 6;

  std::uint64_t vertices_;
  util::ZipfDistribution neighbor_;  ///< skewed neighbor choice (hubs hot)
  util::Rng rng_;
  std::uint64_t sweep_cursor_ = 0;
  std::uint32_t phase_ = 0;  ///< 0 read-old, 1..k gathers, k+1 write-new
  bool flip_ = false;        ///< double buffering of rank vectors
};

}  // namespace tmprof::workloads
