#include "workloads/xsbench.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

XsbenchWorkload::XsbenchWorkload(std::uint64_t grid_bytes,
                                 std::uint64_t index_bytes, std::uint64_t seed)
    : grid_bytes_(grid_bytes), index_bytes_(index_bytes), rng_(seed) {
  TMPROF_EXPECTS(grid_bytes >= mem::kHugePageSize);
  TMPROF_EXPECTS(index_bytes >= 4096);
}

MemRef XsbenchWorkload::next() {
  MemRef ref;
  if (phase_ < 2) {
    // Binary-search-ish reads in the unionized energy grid (hot region).
    ref.offset = rng_.below(index_bytes_) & ~7ULL;
    ref.is_store = false;
    ref.ip = 1;
    ++phase_;
    return ref;
  }
  if (phase_ == 2 + kGathersPerLookup) {
    // Write the accumulated macroscopic cross-section to the results array
    // at the tail of the index region (the kernel's only store).
    ref.offset = index_bytes_ - 4096 + (rng_.below(4096) & ~7ULL);
    ref.is_store = true;
    ref.ip = 3;
    phase_ = 0;
    return ref;
  }
  const std::uint32_t gather = phase_ - 2;
  if (gather == 0) {
    // Pick the random grid row once per lookup; gathers stride within it.
    gather_row_ = rng_.below(grid_bytes_ / 64) * 64;
  }
  // Consecutive gathers touch nearby columns of the row (small stride), but
  // each lookup's row is uniformly random in the huge grid.
  ref.offset = (gather_row_ + gather * 16) % grid_bytes_;
  ref.offset = index_bytes_ + (ref.offset & ~7ULL);
  ref.is_store = false;
  ref.ip = 2;
  ++phase_;
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void XsbenchWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u32(phase_);
  w.put_u64(gather_row_);
}
void XsbenchWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  phase_ = r.get_u32();
  gather_row_ = r.get_u64();
}

}  // namespace tmprof::workloads
