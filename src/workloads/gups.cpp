#include "workloads/gups.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

GupsWorkload::GupsWorkload(std::uint64_t table_bytes, std::uint64_t seed)
    : table_bytes_(table_bytes), rng_(seed) {
  TMPROF_EXPECTS(table_bytes >= mem::kHugePageSize);
}

MemRef GupsWorkload::next() {
  MemRef ref;
  if (store_pending_) {
    // Second half of the read-modify-write: store back to the same word.
    store_pending_ = false;
    ref.offset = pending_store_offset_;
    ref.is_store = true;
    ref.ip = 2;
    return ref;
  }
  ref.offset = rng_.below(table_bytes_) & ~7ULL;
  ref.is_store = false;
  ref.ip = 1;
  pending_store_offset_ = ref.offset;
  store_pending_ = true;
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void GupsWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(pending_store_offset_);
  w.put_bool(store_pending_);
}
void GupsWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  pending_store_offset_ = r.get_u64();
  store_pending_ = r.get_bool();
}

}  // namespace tmprof::workloads
