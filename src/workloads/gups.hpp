#pragma once
/// \file gups.hpp
/// GUPS (Giga-Updates-Per-Second, HPC Challenge RandomAccess). Uniformly
/// random read-modify-write updates over one huge table. The canonical
/// worst case for both caches and TLBs: every update misses the LLC and the
/// TLB, so IBS sees nearly every sampled access while the table's huge-page
/// PTEs give the A-bit scanner only a coarse 2 MiB view (paper Table IV:
/// IBS detects ~14x more pages than A-bit at the 4x rate).

#include "workloads/workload.hpp"

namespace tmprof::workloads {

class GupsWorkload final : public Workload {
 public:
  /// \param table_bytes  size of the update table (paper: 4 GiB total)
  GupsWorkload(std::uint64_t table_bytes, std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return table_bytes_;
  }
  [[nodiscard]] std::string_view name() const override { return "gups"; }
  [[nodiscard]] mem::PageSize page_size() const override {
    return mem::PageSize::k2M;  // THP-backed anonymous table
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  std::uint64_t table_bytes_;
  util::Rng rng_;
  std::uint64_t pending_store_offset_ = 0;
  bool store_pending_ = false;
};

}  // namespace tmprof::workloads
