#pragma once
/// \file workload.hpp
/// The workload-generator interface. A workload is a deterministic stream
/// of memory references (offsets within its private footprint); the access
/// engine maps offsets into a process's address space. Determinism under a
/// fixed seed is required so the Oracle policy can replay the exact stream.

#include <cstdint>
#include <memory>
#include <string_view>

#include "mem/addr.hpp"
#include "util/rng.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::workloads {

/// One memory reference emitted by a generator.
struct MemRef {
  std::uint64_t offset = 0;   ///< byte offset within the workload footprint
  bool is_store = false;
  std::uint32_t ip = 0;       ///< synthetic code location (phase marker)
};

/// Base class for all generators.
class Workload {
 public:
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;
  virtual ~Workload() = default;

  /// Produce the next reference. Must be cheap — it runs once per
  /// simulated memory op.
  virtual MemRef next() = 0;

  /// Total bytes this instance touches (offset upper bound).
  [[nodiscard]] virtual std::uint64_t footprint_bytes() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Page size the kernel would back this heap with. Linux THP promotes
  /// large anonymous HPC heaps to 2 MiB pages; interpreted/service
  /// workloads stay on 4 KiB pages. This difference drives the paper's
  /// Table IV asymmetry between A-bit and IBS page counts.
  [[nodiscard]] virtual mem::PageSize page_size() const {
    return mem::PageSize::k4K;
  }

  /// Checkpoint hooks (util/ckpt.hpp): a resumed run must continue the
  /// exact reference stream, so every generator serializes its RNG and
  /// cursors. Pure virtual — forgetting to implement these in a new
  /// generator breaks the build, not a restored run.
  virtual void save_state(util::ckpt::Writer& w) const = 0;
  virtual void load_state(util::ckpt::Reader& r) = 0;

 protected:
  Workload() = default;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace tmprof::workloads
