#pragma once
/// \file xsbench.hpp
/// XSBench (Monte Carlo neutron-transport cross-section lookup kernel).
/// Each "lookup" reads the small energy-grid index structures (hot) and then
/// gathers from several random rows of the enormous nuclide cross-section
/// grid (cold, uniformly random). The paper runs it with a 120 GB footprint:
/// the largest, most trace-dominated workload of the suite.

#include "workloads/workload.hpp"

namespace tmprof::workloads {

class XsbenchWorkload final : public Workload {
 public:
  /// \param grid_bytes   size of the nuclide grid region
  /// \param index_bytes  size of the hot index structures (unionized grid)
  XsbenchWorkload(std::uint64_t grid_bytes, std::uint64_t index_bytes,
                  std::uint64_t seed);

  MemRef next() override;
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return index_bytes_ + grid_bytes_;
  }
  [[nodiscard]] std::string_view name() const override { return "xsbench"; }
  [[nodiscard]] mem::PageSize page_size() const override {
    return mem::PageSize::k2M;
  }

  void save_state(util::ckpt::Writer& w) const override;
  void load_state(util::ckpt::Reader& r) override;

 private:
  /// Cross-section gathers per lookup (one per interacting nuclide).
  static constexpr std::uint32_t kGathersPerLookup = 5;

  std::uint64_t grid_bytes_;
  std::uint64_t index_bytes_;
  util::Rng rng_;
  std::uint32_t phase_ = 0;           ///< 0..1 index reads, then gathers
  std::uint64_t gather_row_ = 0;
};

}  // namespace tmprof::workloads
