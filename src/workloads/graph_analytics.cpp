#include "workloads/graph_analytics.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::workloads {

// Layout: [0, V*8) rank_a, [V*8, 2V*8) rank_b, alternating roles per sweep.
GraphAnalyticsWorkload::GraphAnalyticsWorkload(std::uint64_t vertices,
                                               std::uint64_t seed)
    : vertices_(vertices), neighbor_(vertices, 0.9), rng_(seed) {
  TMPROF_EXPECTS(vertices >= 4096);
}

std::uint64_t GraphAnalyticsWorkload::footprint_bytes() const {
  return 2 * vertices_ * kRankBytes;
}

MemRef GraphAnalyticsWorkload::next() {
  const std::uint64_t old_base = flip_ ? vertices_ * kRankBytes : 0;
  const std::uint64_t new_base = flip_ ? 0 : vertices_ * kRankBytes;
  MemRef ref;
  if (phase_ == 0) {
    ref.offset = old_base + sweep_cursor_ * kRankBytes;
    ref.is_store = false;
    ref.ip = 1;
    ++phase_;
    return ref;
  }
  if (phase_ <= kGathersPerVertex) {
    // Gather a contribution from a skewed random neighbor's old rank.
    ref.offset = old_base + neighbor_(rng_) * kRankBytes;
    ref.is_store = false;
    ref.ip = 2;
    ++phase_;
    return ref;
  }
  ref.offset = new_base + sweep_cursor_ * kRankBytes;
  ref.is_store = true;
  ref.ip = 3;
  phase_ = 0;
  if (++sweep_cursor_ >= vertices_) {
    sweep_cursor_ = 0;
    flip_ = !flip_;  // next superstep reads what we just wrote
  }
  return ref;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void GraphAnalyticsWorkload::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u64(sweep_cursor_);
  w.put_u32(phase_);
  w.put_bool(flip_);
}
void GraphAnalyticsWorkload::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  sweep_cursor_ = r.get_u64();
  phase_ = r.get_u32();
  flip_ = r.get_bool();
}

}  // namespace tmprof::workloads
