#pragma once
/// \file stream.hpp
/// Lock-free streaming sample transport + incremental top-K ranking
/// (docs/STREAMING.md). Replaces the epoch-barrier swap-and-clear handoff
/// between the per-core monitors and the ranking pipeline: each
/// (monitor, core) lane owns a bounded SPSC ring of sequence-numbered
/// StreamRecords, the driver consumes them on the main thread — while
/// worker shards are still executing — and folds each record into the open
/// epoch's observation maps and into a StreamRanker that maintains the
/// decayed top-K incrementally. By the time the epoch barrier arrives, the
/// merge work is already done and the barrier shrinks to a drain-and-seal.
///
/// Determinism: per-lane record content is a pure function of the
/// simulation (PR-1 per-core RNG streams), count folds commute, and the
/// streaming fault key is (epoch, lane, seq) — so the sealed maps are
/// bitwise identical no matter how production and consumption interleave.
/// Ring overflow spills to a lane-local buffer instead of losing the
/// record (a timing-dependent loss would break thread-count invariance);
/// only the drop *counters* vary with scheduling.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ranking.hpp"
#include "monitors/event.hpp"
#include "util/ring.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

/// Streaming-transport knobs, selected per run via DriverConfig::stream.
/// Disabled by default: every golden was recorded with the barrier path,
/// and `enabled = false` keeps it bitwise unchanged.
struct StreamConfig {
  bool enabled = false;
  /// Per-lane ring capacity in records; must be a power of two >= 2. Full
  /// rings spill (counted, never lossy) until the consumer catches up.
  std::uint32_t ring_capacity = 1024;
  /// Size of the incrementally-maintained advisory top-K (RankOrder
  /// semantics, like DaemonConfig::ranking_top_k but never 0/full: the
  /// point is a bounded mid-epoch heap).
  std::uint32_t top_k = 256;
  /// Heat carried across epochs decays by `heat >> decay_shift` at each
  /// seal; >= 64 clears all history (per-epoch top-K only).
  std::uint32_t decay_shift = 1;

  friend bool operator==(const StreamConfig&, const StreamConfig&) = default;
};

/// Exact incremental top-K over monotonically growing per-page heat.
///
/// A size-K binary min-heap (weakest member at the root, "weak" meaning
/// last under RankOrder: lowest heat, ties broken by *descending* key) plus
/// a FlatHashMap from page to heap position. Because heat only grows
/// between seals, membership can only change when an `add` pushes a page
/// past the current root — so the heap is the exact RankOrder top-K of the
/// heat map after every single add, at O(log K) per update.
///
/// At the seal, all heat decays by `decay_shift` and the heap is rebuilt
/// canonically (fold_sorted + nth_element), so barrier-visible state is a
/// pure function of map content — independent of the add order that built
/// it. Mid-epoch snapshots via ranking_into() are advisory: exact for the
/// records consumed so far, which depends on how far the pump has run.
class StreamRanker {
 public:
  StreamRanker() = default;
  StreamRanker(std::uint32_t top_k, std::uint32_t decay_shift) {
    configure(top_k, decay_shift);
  }

  /// (Re)configure; drops all state. `top_k` must be >= 1.
  void configure(std::uint32_t top_k, std::uint32_t decay_shift);

  [[nodiscard]] std::uint32_t top_k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t decay_shift() const noexcept {
    return decay_shift_;
  }
  /// Pages with non-zero decayed heat currently tracked.
  [[nodiscard]] std::size_t tracked() const noexcept { return heat_.size(); }

  /// Fold one record's weight into `key`'s heat and maintain the top-K.
  void add(const PageKey& key, std::uint64_t weight);

  /// Current top-K as a descending RankOrder ranking (rank = heat; the
  /// per-source fields stay 0 — fused source breakdowns remain the sealed
  /// ranking's job). Clears and refills `out`.
  void ranking_into(std::vector<PageRank>& out) const;

  /// Total heat currently attributed to `key` (0 if untracked).
  [[nodiscard]] std::uint64_t heat_of(const PageKey& key) const;

  /// Epoch seal: decay every page's heat, drop the cooled-to-zero ones,
  /// and rebuild the heap canonically from the surviving map content.
  void seal();

  void clear();

  /// Checkpoint hooks: configuration echo + the decayed heat map in
  /// ascending key order; the heap is rebuilt canonically on load. A
  /// geometry mismatch throws CkptError("stream", ...).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct Entry {
    PageKey key;
    std::uint64_t heat = 0;
  };

  /// Strict total order: does `a` outrank `b`? (RankOrder over heat.)
  [[nodiscard]] static bool stronger(const Entry& a, const Entry& b) noexcept {
    if (a.heat != b.heat) return a.heat > b.heat;
    return a.key < b.key;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void set_pos(std::size_t i);
  void rebuild_heap();

  static constexpr std::uint32_t kNotInHeap = 0xffffffffU;

  std::uint32_t k_ = 256;
  std::uint32_t decay_shift_ = 1;
  PageMap<std::uint64_t> heat_;
  PageMap<std::uint32_t> pos_;  ///< heap index, or kNotInHeap
  std::vector<Entry> heap_;     ///< weakest member at index 0
  std::vector<Entry> scratch_;  ///< seal/rebuild staging (capacity retained)
};

/// The per-lane ring set: one SPSC ring per monitor lane. Trace lanes map
/// 1:1 to simulated cores (worker-thread producers); the A-bit scanner and
/// the DevMon report each get a single main-thread lane, so every sample
/// source hands off through the same transport and the same record
/// accounting.
class StreamTransport {
 public:
  using Ring = util::SpscRing<monitors::StreamRecord>;

  StreamTransport(const StreamConfig& config, std::uint32_t cores);

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t lanes() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }
  [[nodiscard]] std::uint32_t trace_lanes() const noexcept { return cores_; }
  [[nodiscard]] std::uint32_t abit_lane() const noexcept { return cores_; }
  [[nodiscard]] std::uint32_t dev_lane() const noexcept { return cores_ + 1; }
  [[nodiscard]] Ring& ring(std::uint32_t lane) { return *rings_[lane]; }
  [[nodiscard]] const Ring& ring(std::uint32_t lane) const {
    return *rings_[lane];
  }

  /// Ring-full events since construction or checkpoint restore (records
  /// that took the spill path; no evidence is lost). Scheduling-dependent:
  /// telemetry only, never part of the determinism bar.
  [[nodiscard]] std::uint64_t drops_total() const noexcept;
  /// Deepest per-lane occupancy since the last reset_high_water().
  [[nodiscard]] std::uint64_t high_water() const noexcept;
  void reset_high_water() noexcept;

  /// Restore the drop tally carried from a checkpoint (rings restart empty
  /// and at zero; the carried base keeps the exported total monotone).
  void set_carried_drops(std::uint64_t drops) noexcept {
    carried_drops_ = drops;
  }

 private:
  StreamConfig config_;
  std::uint32_t cores_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::uint64_t carried_drops_ = 0;
};

}  // namespace tmprof::core
