#include "core/gating.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

ActivityGate::ActivityGate(double threshold) : threshold_(threshold) {
  TMPROF_EXPECTS(threshold > 0.0 && threshold <= 1.0);
}

bool ActivityGate::update(std::uint64_t period_count) {
  if (period_count > max_seen_) max_seen_ = period_count;
  // "If the current number of events is more than 20% of the maximum, we
  // consider the corresponding profiling method active."
  active_ = max_seen_ == 0 ||
            static_cast<double>(period_count) >
                threshold_ * static_cast<double>(max_seen_);
  return active_;
}

void ActivityGate::reset() {
  max_seen_ = 0;
  active_ = true;
}

void ActivityGate::save_state(util::ckpt::Writer& w) const {
  w.put_u64(max_seen_);
  w.put_bool(active_);
}

void ActivityGate::load_state(util::ckpt::Reader& r) {
  max_seen_ = r.get_u64();
  active_ = r.get_bool();
}

}  // namespace tmprof::core
