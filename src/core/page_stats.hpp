#pragma once
/// \file page_stats.hpp
/// Per-frame profiling statistics — the simulator's analog of the paper's
/// extended page descriptor (PD). The TMP driver accumulates A-bit and
/// trace-sample counts here via the phys_to_page() path (frame-indexed
/// array), and tracks same-epoch co-detection ("Both" in Table IV).

#include <cstdint>
#include <vector>

#include "mem/addr.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

/// Extended page-descriptor fields.
struct PageDesc {
  std::uint32_t abit_total = 0;    ///< scans that observed the A bit set
  std::uint32_t trace_total = 0;   ///< trace samples landing in this frame
  std::uint32_t last_abit_epoch = kNever;
  std::uint32_t last_trace_epoch = kNever;
  std::uint32_t both_epochs = 0;   ///< epochs where both methods hit

  static constexpr std::uint32_t kNever = 0xffffffffU;
};

/// Frame-indexed descriptor store.
class PageStatsStore {
 public:
  explicit PageStatsStore(std::uint64_t total_frames);

  /// Record an A-bit observation for the mapping whose head frame is `head`
  /// during `epoch`.
  void record_abit(mem::Pfn head, std::uint32_t epoch);

  /// Record a trace sample that hit 4 KiB frame `pfn` during `epoch`.
  void record_trace(mem::Pfn pfn, std::uint32_t epoch);

  [[nodiscard]] const PageDesc& desc(mem::Pfn pfn) const;
  [[nodiscard]] std::uint64_t frames() const noexcept {
    return descs_.size();
  }

  /// Frames with at least one observation from the given method.
  [[nodiscard]] std::uint64_t frames_with_abit() const noexcept {
    return frames_with_abit_;
  }
  [[nodiscard]] std::uint64_t frames_with_trace() const noexcept {
    return frames_with_trace_;
  }
  /// Frames that were co-detected by both methods within one epoch at least
  /// once (Table IV "Both").
  [[nodiscard]] std::uint64_t frames_with_both() const noexcept {
    return frames_with_both_;
  }

  void reset();

  /// Checkpoint hooks: descriptors are saved sparsely (only frames with at
  /// least one observation). Frame count must match on load.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  std::vector<PageDesc> descs_;
  std::uint64_t frames_with_abit_ = 0;
  std::uint64_t frames_with_trace_ = 0;
  std::uint64_t frames_with_both_ = 0;
};

}  // namespace tmprof::core
