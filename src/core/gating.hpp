#pragma once
/// \file gating.hpp
/// Activity gating — TMP's first overhead optimization (Section III-B4).
/// The daemon periodically reads a cheap HWPC miss counter; TMP tracks the
/// maximum per-period count seen so far and considers the corresponding
/// profiling method *active* only while the current count exceeds 20% of
/// that maximum. A-bit scanning gates on TLB misses, trace collection on
/// LLC misses.

#include <cstdint>

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

class ActivityGate {
 public:
  /// \param threshold fraction of the historical max that counts as active.
  explicit ActivityGate(double threshold = 0.2);

  /// Feed one period's event count; returns whether the gated profiling
  /// method should run this period.
  bool update(std::uint64_t period_count);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t max_seen() const noexcept { return max_seen_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  void reset();

  /// Checkpoint hooks: the running maximum and the active flag.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  double threshold_;
  std::uint64_t max_seen_ = 0;
  bool active_ = true;  // start enabled until a baseline max exists
};

}  // namespace tmprof::core
