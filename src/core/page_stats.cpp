#include "core/page_stats.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

PageStatsStore::PageStatsStore(std::uint64_t total_frames)
    : descs_(total_frames) {}

void PageStatsStore::record_abit(mem::Pfn head, std::uint32_t epoch) {
  TMPROF_EXPECTS(head < descs_.size());
  PageDesc& d = descs_[head];
  if (d.abit_total == 0) ++frames_with_abit_;
  ++d.abit_total;
  const bool first_this_epoch = d.last_abit_epoch != epoch;
  d.last_abit_epoch = epoch;
  if (first_this_epoch && d.last_trace_epoch == epoch) {
    if (d.both_epochs == 0) ++frames_with_both_;
    ++d.both_epochs;
  }
}

void PageStatsStore::record_trace(mem::Pfn pfn, std::uint32_t epoch) {
  TMPROF_EXPECTS(pfn < descs_.size());
  PageDesc& d = descs_[pfn];
  if (d.trace_total == 0) ++frames_with_trace_;
  ++d.trace_total;
  const bool first_this_epoch = d.last_trace_epoch != epoch;
  d.last_trace_epoch = epoch;
  if (first_this_epoch && d.last_abit_epoch == epoch) {
    if (d.both_epochs == 0) ++frames_with_both_;
    ++d.both_epochs;
  }
}

const PageDesc& PageStatsStore::desc(mem::Pfn pfn) const {
  TMPROF_EXPECTS(pfn < descs_.size());
  return descs_[pfn];
}

void PageStatsStore::reset() {
  std::fill(descs_.begin(), descs_.end(), PageDesc{});
  frames_with_abit_ = 0;
  frames_with_trace_ = 0;
  frames_with_both_ = 0;
}

namespace {

bool is_default(const PageDesc& d) {
  return d.abit_total == 0 && d.trace_total == 0 &&
         d.last_abit_epoch == PageDesc::kNever &&
         d.last_trace_epoch == PageDesc::kNever && d.both_epochs == 0;
}

}  // namespace

void PageStatsStore::save_state(util::ckpt::Writer& w) const {
  w.put_u64(descs_.size());
  std::uint64_t populated = 0;
  for (const PageDesc& d : descs_) {
    if (!is_default(d)) ++populated;
  }
  w.put_u64(populated);
  for (std::size_t pfn = 0; pfn < descs_.size(); ++pfn) {
    const PageDesc& d = descs_[pfn];
    if (is_default(d)) continue;
    w.put_u64(pfn);
    w.put_u32(d.abit_total);
    w.put_u32(d.trace_total);
    w.put_u32(d.last_abit_epoch);
    w.put_u32(d.last_trace_epoch);
    w.put_u32(d.both_epochs);
  }
  w.put_u64(frames_with_abit_);
  w.put_u64(frames_with_trace_);
  w.put_u64(frames_with_both_);
}

void PageStatsStore::load_state(util::ckpt::Reader& r) {
  const std::uint64_t frames = r.get_u64();
  if (frames != descs_.size()) {
    throw util::ckpt::CkptError("pagestats", "frame count mismatch");
  }
  std::fill(descs_.begin(), descs_.end(), PageDesc{});
  const std::uint64_t populated = r.get_u64();
  for (std::uint64_t i = 0; i < populated; ++i) {
    const std::uint64_t pfn = r.get_u64();
    if (pfn >= descs_.size()) {
      throw util::ckpt::CkptError("pagestats", "frame index out of range");
    }
    PageDesc& d = descs_[pfn];
    d.abit_total = r.get_u32();
    d.trace_total = r.get_u32();
    d.last_abit_epoch = r.get_u32();
    d.last_trace_epoch = r.get_u32();
    d.both_epochs = r.get_u32();
  }
  frames_with_abit_ = r.get_u64();
  frames_with_trace_ = r.get_u64();
  frames_with_both_ = r.get_u64();
}

}  // namespace tmprof::core
