#include "core/page_stats.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tmprof::core {

PageStatsStore::PageStatsStore(std::uint64_t total_frames)
    : descs_(total_frames) {}

void PageStatsStore::record_abit(mem::Pfn head, std::uint32_t epoch) {
  TMPROF_EXPECTS(head < descs_.size());
  PageDesc& d = descs_[head];
  if (d.abit_total == 0) ++frames_with_abit_;
  ++d.abit_total;
  const bool first_this_epoch = d.last_abit_epoch != epoch;
  d.last_abit_epoch = epoch;
  if (first_this_epoch && d.last_trace_epoch == epoch) {
    if (d.both_epochs == 0) ++frames_with_both_;
    ++d.both_epochs;
  }
}

void PageStatsStore::record_trace(mem::Pfn pfn, std::uint32_t epoch) {
  TMPROF_EXPECTS(pfn < descs_.size());
  PageDesc& d = descs_[pfn];
  if (d.trace_total == 0) ++frames_with_trace_;
  ++d.trace_total;
  const bool first_this_epoch = d.last_trace_epoch != epoch;
  d.last_trace_epoch = epoch;
  if (first_this_epoch && d.last_abit_epoch == epoch) {
    if (d.both_epochs == 0) ++frames_with_both_;
    ++d.both_epochs;
  }
}

const PageDesc& PageStatsStore::desc(mem::Pfn pfn) const {
  TMPROF_EXPECTS(pfn < descs_.size());
  return descs_[pfn];
}

void PageStatsStore::reset() {
  std::fill(descs_.begin(), descs_.end(), PageDesc{});
  frames_with_abit_ = 0;
  frames_with_trace_ = 0;
  frames_with_both_ = 0;
}

}  // namespace tmprof::core
