#pragma once
/// \file daemon.hpp
/// The user-space TMP daemon (Section III-B3): supplies PIDs to profile,
/// reads the cheap HWPC miss counters to gate the expensive mechanisms,
/// triggers A-bit scans, and publishes per-epoch profile snapshots through
/// a numa_maps-style text interface.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/gating.hpp"
#include "core/pid_filter.hpp"
#include "core/ranking.hpp"
#include "sim/system.hpp"

namespace tmprof::core {

struct DaemonConfig {
  DriverConfig driver;
  /// Epoch/scan period. The paper uses 1 s epochs on real hardware; the
  /// simulator default is shorter since simulated time is denser.
  util::SimNs period_ns = 100 * util::kMillisecond;
  bool gating_enabled = true;
  double gate_threshold = 0.2;
  bool pid_filter_enabled = true;
  PidFilterConfig pid_filter;
  /// How often the PID filter re-evaluates (paper: once per second). 0
  /// re-evaluates every tick. Between evaluations the previous tracked
  /// set is reused, bounding filter overhead independent of tick rate.
  util::SimNs pid_filter_period_ns = 0;
  FusionMode fusion = FusionMode::Sum;
  double trace_weight = 1.0;
  /// Weight of the device-counter signal under FusionMode::SumDev. The
  /// device sees every fill its tier serves while sampling sees a sparse
  /// subset, so a fractional weight keeps the signals comparable
  /// (docs/TOPOLOGY.md).
  double devmon_weight = 1.0;
  /// Charge modeled profiling overhead to the system clock (on for
  /// end-to-end experiments, off for pure visibility studies).
  bool charge_overhead = false;
  /// Deterministic fault injection for the daemon-side sites (trace-buffer
  /// overflow, A-bit scan abort, HWPC counter wrap). Disabled by default.
  util::FaultConfig fault{};
  /// Trace-loss ladder (docs/ROBUSTNESS.md): epochs losing more than this
  /// fraction of trace samples rescale the surviving samples' weight.
  double trace_rescale_threshold = 0.02;
  /// Epochs losing at least this fraction abandon the trace source and fall
  /// back to A-bit-only fusion (the scan evidence is still trustworthy).
  double trace_fallback_threshold = 0.5;
  /// QoS-aware rung (docs/CONSOLIDATION.md): with a QoS lookup attached,
  /// losses in [trace_fallback_threshold, this) degrade only *batch*
  /// tenants to A-bit-only ranking while latency tenants keep the rescaled
  /// mixed ranking; at or above this fraction everyone falls back.
  double qos_full_fallback_threshold = 0.9;
  /// Pin the last good ranking after this many consecutive bad scans
  /// (aborted or empty). 0 disables the watchdog.
  std::uint32_t watchdog_threshold = 3;
  /// Publish only the top K ranking entries per epoch via the selection
  /// sort (core::build_ranking_topk; docs/PERFORMANCE.md). 0 (default)
  /// publishes the full ranking — required by consumers that read *all*
  /// entries (BadgerTrap poison sync, Fig. 5 tails), and what every
  /// golden was recorded with. When set, the published prefix is bitwise
  /// identical to the full ranking's first K entries.
  std::size_t ranking_top_k = 0;
};

/// Cumulative degradation tallies (how often each fallback engaged).
struct DegradeStats {
  std::uint64_t hwpc_wraps = 0;       ///< counter wraps detected (delta held)
  std::uint64_t scans_aborted = 0;    ///< A-bit walks cut short
  std::uint64_t trace_dropped = 0;    ///< trace samples lost to overflow
  std::uint64_t rescaled_epochs = 0;  ///< epochs that rescaled trace weight
  std::uint64_t fallback_epochs = 0;  ///< epochs that fell back to A-bit-only
  std::uint64_t pinned_epochs = 0;    ///< epochs served the pinned ranking
  /// Epochs the QoS-selective rung degraded batch tenants only.
  std::uint64_t qos_fallback_epochs = 0;
  /// Epochs in which the migration admission gate shed or bandwidth-refused
  /// at least one move (filled by the runner from the AdmissionController;
  /// the daemon itself neither writes nor serializes this field).
  std::uint64_t throttled_epochs = 0;
};

/// One published profile (Step 1 output: pages ranked by hotness).
struct ProfileSnapshot {
  std::uint32_t epoch = 0;
  std::vector<PageRank> ranking;       ///< descending hotness
  EpochObservation observation;        ///< raw per-source counts
  bool abit_ran = false;               ///< scan executed (not gated off)
  bool trace_ran = false;              ///< trace collection was live
  bool abit_aborted = false;           ///< scan was cut short mid-walk
  bool pinned = false;                 ///< watchdog served last good ranking
  bool trace_fallback = false;         ///< ladder fell back to A-bit-only
  bool qos_fallback = false;           ///< batch-only A-bit degradation
  double trace_loss = 0.0;             ///< fraction of trace samples lost
  std::uint64_t trace_dropped = 0;     ///< trace samples lost this epoch
};

class TmpDaemon {
 public:
  TmpDaemon(sim::System& system, const DaemonConfig& config);

  /// Close the current period: read counters, update gates, run the A-bit
  /// scan over filtered PIDs, and emit the epoch's snapshot. The caller
  /// drives the system between calls (one call per elapsed period).
  ProfileSnapshot tick();

  /// Allocation-reusing form: publishes into `out`, recycling its ranking
  /// vector and observation maps. A caller that keeps one ProfileSnapshot
  /// across epochs runs the tick path allocation-free after warmup.
  void tick_into(ProfileSnapshot& out);

  [[nodiscard]] TmpDriver& driver() noexcept { return driver_; }
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ActivityGate& abit_gate() const noexcept {
    return abit_gate_;
  }
  [[nodiscard]] const ActivityGate& trace_gate() const noexcept {
    return trace_gate_;
  }
  /// PIDs selected by the most recent tick's filter evaluation.
  [[nodiscard]] const std::vector<mem::Pid>& tracked_pids() const noexcept {
    return tracked_pids_;
  }
  /// Cumulative degradation tallies (all zero under fault-free operation,
  /// except pinned_epochs which the watchdog can raise on genuinely empty
  /// scans too).
  [[nodiscard]] const DegradeStats& degrade_stats() const noexcept {
    return degrade_;
  }
  /// Injection tallies for the daemon-side fault sites.
  [[nodiscard]] const util::FaultStats& fault_stats() const noexcept {
    return fault_.stats();
  }

  /// Attach (or with null, detach) the telemetry sink for the daemon's
  /// gate/ladder/watchdog metrics and the per-tick span; forwards to the
  /// owned driver (docs/OBSERVABILITY.md). The System's own sink is
  /// attached separately by whoever owns the System.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Attach the fleet QoS lookup (docs/CONSOLIDATION.md): true for pids
  /// owned by a *batch* tenant. Enables the QoS-selective degradation rung;
  /// unset (default) keeps the ladder bitwise identical to its
  /// pre-consolidation behavior.
  void set_qos_lookup(std::function<bool(mem::Pid)> is_batch) {
    qos_is_batch_ = std::move(is_batch);
  }
  /// PIDs the filter must always track regardless of resource share
  /// (latency tenants in a consolidated fleet). Forwards to the PidFilter.
  void set_pinned_pids(std::vector<mem::Pid> pids) {
    pid_filter_.set_pinned(std::move(pids));
  }

  /// numa_maps-style dump of a snapshot's top pages.
  [[nodiscard]] static std::string dump(const ProfileSnapshot& snapshot,
                                        std::size_t top_n = 20);

  /// Checkpoint hooks: driver, gates, PID-filter baseline, degradation
  /// ladder position and the watchdog's pinned ranking.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  sim::System& system_;
  DaemonConfig config_;
  TmpDriver driver_;
  ActivityGate abit_gate_;
  ActivityGate trace_gate_;
  PidFilter pid_filter_;
  std::vector<mem::Pid> tracked_pids_;
  util::FaultInjector fault_;
  DegradeStats degrade_;
  std::uint64_t last_llc_miss_ = 0;
  std::uint64_t last_tlb_walk_ = 0;
  std::uint64_t prev_llc_delta_ = 0;   ///< held when a wrap is detected
  std::uint64_t prev_tlb_delta_ = 0;
  std::uint64_t last_trace_kept_ = 0;
  std::uint64_t last_trace_dropped_ = 0;
  std::uint32_t bad_scans_ = 0;        ///< consecutive aborted/empty scans
  std::vector<PageRank> last_good_ranking_;
  RankingScratch ranking_scratch_;     ///< reused by every tick's fusion
  std::uint64_t tick_seq_ = 0;
  bool filter_ever_ran_ = false;
  util::SimNs last_filter_eval_ = 0;
  std::function<bool(mem::Pid)> qos_is_batch_;  ///< unset = no QoS rung

  telemetry::Telemetry* telemetry_ = nullptr;  ///< not owned; may be null
  telemetry::Counter t_ticks_;
  telemetry::Counter t_scans_run_;
  telemetry::Counter t_abit_gated_;
  telemetry::Counter t_trace_gated_;
  telemetry::Counter t_hwpc_wraps_;
  telemetry::Counter t_rescaled_;
  telemetry::Counter t_fallback_;
  telemetry::Counter t_qos_fallback_;
  telemetry::Counter t_pinned_;
  telemetry::Gauge t_tracked_pids_;
  telemetry::Gauge t_ladder_state_;
};

}  // namespace tmprof::core
