#pragma once
/// \file daemon.hpp
/// The user-space TMP daemon (Section III-B3): supplies PIDs to profile,
/// reads the cheap HWPC miss counters to gate the expensive mechanisms,
/// triggers A-bit scans, and publishes per-epoch profile snapshots through
/// a numa_maps-style text interface.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/gating.hpp"
#include "core/pid_filter.hpp"
#include "core/ranking.hpp"
#include "sim/system.hpp"

namespace tmprof::core {

struct DaemonConfig {
  DriverConfig driver;
  /// Epoch/scan period. The paper uses 1 s epochs on real hardware; the
  /// simulator default is shorter since simulated time is denser.
  util::SimNs period_ns = 100 * util::kMillisecond;
  bool gating_enabled = true;
  double gate_threshold = 0.2;
  bool pid_filter_enabled = true;
  PidFilterConfig pid_filter;
  /// How often the PID filter re-evaluates (paper: once per second). 0
  /// re-evaluates every tick. Between evaluations the previous tracked
  /// set is reused, bounding filter overhead independent of tick rate.
  util::SimNs pid_filter_period_ns = 0;
  FusionMode fusion = FusionMode::Sum;
  double trace_weight = 1.0;
  /// Charge modeled profiling overhead to the system clock (on for
  /// end-to-end experiments, off for pure visibility studies).
  bool charge_overhead = false;
};

/// One published profile (Step 1 output: pages ranked by hotness).
struct ProfileSnapshot {
  std::uint32_t epoch = 0;
  std::vector<PageRank> ranking;       ///< descending hotness
  EpochObservation observation;        ///< raw per-source counts
  bool abit_ran = false;               ///< scan executed (not gated off)
  bool trace_ran = false;              ///< trace collection was live
};

class TmpDaemon {
 public:
  TmpDaemon(sim::System& system, const DaemonConfig& config);

  /// Close the current period: read counters, update gates, run the A-bit
  /// scan over filtered PIDs, and emit the epoch's snapshot. The caller
  /// drives the system between calls (one call per elapsed period).
  ProfileSnapshot tick();

  [[nodiscard]] TmpDriver& driver() noexcept { return driver_; }
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ActivityGate& abit_gate() const noexcept {
    return abit_gate_;
  }
  [[nodiscard]] const ActivityGate& trace_gate() const noexcept {
    return trace_gate_;
  }
  /// PIDs selected by the most recent tick's filter evaluation.
  [[nodiscard]] const std::vector<mem::Pid>& tracked_pids() const noexcept {
    return tracked_pids_;
  }

  /// numa_maps-style dump of a snapshot's top pages.
  [[nodiscard]] static std::string dump(const ProfileSnapshot& snapshot,
                                        std::size_t top_n = 20);

 private:
  sim::System& system_;
  DaemonConfig config_;
  TmpDriver driver_;
  ActivityGate abit_gate_;
  ActivityGate trace_gate_;
  PidFilter pid_filter_;
  std::vector<mem::Pid> tracked_pids_;
  std::uint64_t last_llc_miss_ = 0;
  std::uint64_t last_tlb_walk_ = 0;
  bool filter_ever_ran_ = false;
  util::SimNs last_filter_eval_ = 0;
};

}  // namespace tmprof::core
