#include "core/driver.hpp"

#include "util/assert.hpp"

namespace tmprof::core {

TmpDriver::TmpDriver(sim::System& system, const DriverConfig& config)
    : system_(system),
      config_(config),
      scanner_(config.abit),
      store_(system.phys().total_frames()) {
  if (config_.backend == TraceBackend::Ibs) {
    ibs_ = std::make_unique<monitors::IbsMonitor>(config_.ibs,
                                                  system.config().cores);
    ibs_->set_drain([this](std::span<const monitors::TraceSample> samples) {
      on_trace(samples);
    });
    // The sharded engine runs each core's callbacks on a worker thread;
    // per-core sample lanes defer the (driver-mutating) drain to the epoch
    // barrier, keeping the monitor shard-safe.
    if (system.config().sharded_engine) ibs_->enable_sharded();
  } else {
    pebs_ = std::make_unique<monitors::PebsMonitor>(config_.pebs,
                                                    system.config().cores);
    pebs_->set_drain([this](std::span<const monitors::TraceSample> samples) {
      on_trace(samples);
    });
    if (system.config().sharded_engine) pebs_->enable_sharded();
  }
  if (config_.use_pml) {
    pml_ = std::make_unique<monitors::PmlMonitor>(config_.pml);
    pml_->set_drain([this](std::span<const mem::PhysAddr> addresses) {
      on_pml(addresses);
    });
    system_.add_observer(pml_.get());
  }
  scanner_.set_shootdown(
      [this](mem::Pid pid, mem::VirtAddr page_va, mem::PageSize size) {
        return system_.shootdown(pid, page_va, size);
      });
  current_.epoch = 0;
  set_trace_enabled(true);
}

TmpDriver::~TmpDriver() {
  set_trace_enabled(false);
  if (pml_) system_.remove_observer(pml_.get());
}

void TmpDriver::set_trace_enabled(bool enabled) {
  if (enabled == trace_enabled_) return;
  monitors::AccessObserver* obs =
      ibs_ ? static_cast<monitors::AccessObserver*>(ibs_.get())
           : static_cast<monitors::AccessObserver*>(pebs_.get());
  if (enabled) system_.add_observer(obs);
  else system_.remove_observer(obs);
  trace_enabled_ = enabled;
}

void TmpDriver::on_trace(std::span<const monitors::TraceSample> samples) {
  for (const monitors::TraceSample& s : samples) {
    if (config_.trace_loads_only && s.is_store) continue;
    if (config_.trace_memory_only && !mem::is_memory(s.source)) continue;
    const mem::Pfn pfn = mem::pfn_of(s.paddr);
    const mem::FrameInfo& frame = system_.phys().frame(pfn);
    if (!frame.allocated) continue;  // raced with a free; drop
    // phys_to_page(): aggregate into the mapping's descriptor.
    const PageKey key{frame.pid, frame.page_va};
    if (fault_ != nullptr && fault_->enabled(util::FaultSite::TraceOverflow)) {
      // Keyed on (epoch, page, occurrence): whether the k-th sample of a
      // page is dropped this epoch does not depend on when lanes drain.
      const std::uint32_t occ = ++overflow_seen_[key];
      const std::uint64_t fkey = util::fault_key(
          epoch_ | (static_cast<std::uint64_t>(occ) << 32), key.page_va,
          key.pid);
      if (fault_->fire(util::FaultSite::TraceOverflow, fkey)) {
        ++trace_samples_dropped_;
        continue;
      }
    }
    current_.trace[key] += 1;
    store_.record_trace(pfn, epoch_);
    cumulative_trace_4k_[pfn] += 1;
    ++trace_samples_kept_;
  }
}

monitors::AbitScanResult TmpDriver::scan_processes(
    const std::vector<mem::Pid>& pids) {
  monitors::AbitScanResult total;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const mem::Pid pid = pids[i];
    if (fault_ != nullptr &&
        fault_->fire(util::FaultSite::AbitAbort,
                     util::fault_key(0xab17, epoch_, i))) {
      // Mid-walk abort: this and later processes keep their A bits set and
      // are picked up (with inflated counts) by the next successful scan.
      total.aborted = true;
      ++scans_aborted_;
      break;
    }
    sim::Process& proc = system_.process(pid);
    const monitors::AbitScanResult r = scanner_.scan(
        pid, proc.page_table(), [&](const monitors::AbitSample& sample) {
          const PageKey key{pid, sample.page_va};
          current_.abit[key] += 1;
          store_.record_abit(sample.pfn, epoch_);
          cumulative_abit_[key] += 1;
        });
    total.ptes_visited += r.ptes_visited;
    total.pages_accessed += r.pages_accessed;
    total.shootdowns += r.shootdowns;
    total.cost_ns += r.cost_ns;
  }
  return total;
}

void TmpDriver::on_pml(std::span<const mem::PhysAddr> addresses) {
  for (const mem::PhysAddr paddr : addresses) {
    const mem::Pfn pfn = mem::pfn_of(paddr);
    const mem::FrameInfo& frame = system_.phys().frame(pfn);
    if (!frame.allocated) continue;
    current_.writes[PageKey{frame.pid, frame.page_va}] += 1;
  }
}

EpochObservation TmpDriver::end_epoch() {
  // Pull any buffered samples into this epoch before closing it.
  if (ibs_) ibs_->drain();
  if (pebs_) pebs_->drain();
  if (pml_) pml_->drain();
  EpochObservation closed = std::move(current_);
  closed.epoch = epoch_;
  current_ = EpochObservation{};
  current_.epoch = ++epoch_;
  overflow_seen_.clear();
  return closed;
}

util::SimNs TmpDriver::trace_overhead_ns() const noexcept {
  if (ibs_) return ibs_->overhead_ns();
  if (pebs_) return pebs_->overhead_ns();
  return 0;
}

util::SimNs TmpDriver::overhead_ns() const noexcept {
  return trace_overhead_ns() + scanner_.overhead_ns();
}

}  // namespace tmprof::core
