#include "core/driver.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

TmpDriver::TmpDriver(sim::System& system, const DriverConfig& config)
    : system_(system),
      config_(config),
      scanner_(config.abit),
      store_(system.phys().total_frames()),
      cur_abit_(config.hotness),
      cur_trace_(config.hotness),
      cur_writes_(config.hotness),
      cumulative_trace_4k_(config.hotness),
      cumulative_abit_(config.hotness) {
  if (config_.backend == TraceBackend::Ibs) {
    ibs_ = std::make_unique<monitors::IbsMonitor>(config_.ibs,
                                                  system.config().cores);
    ibs_->set_drain([this](std::span<const monitors::TraceSample> samples) {
      on_trace(samples);
    });
    // The sharded engine runs each core's callbacks on a worker thread;
    // per-core sample lanes defer the (driver-mutating) drain to the epoch
    // barrier, keeping the monitor shard-safe.
    if (system.config().sharded_engine) ibs_->enable_sharded();
  } else {
    pebs_ = std::make_unique<monitors::PebsMonitor>(config_.pebs,
                                                    system.config().cores);
    pebs_->set_drain([this](std::span<const monitors::TraceSample> samples) {
      on_trace(samples);
    });
    if (system.config().sharded_engine) pebs_->enable_sharded();
  }
  if (config_.use_pml) {
    pml_ = std::make_unique<monitors::PmlMonitor>(config_.pml);
    pml_->set_drain([this](std::span<const mem::PhysAddr> addresses) {
      on_pml(addresses);
    });
    system_.add_observer(pml_.get());
  }
  if (config_.devmon.enabled) {
    devmon_ = std::make_unique<monitors::DevMonitor>(
        config_.devmon, system.phys(), system.config().cores);
    devmon_->set_drain(
        [this](std::span<const monitors::DevMonReportEntry> report) {
          on_devmon(report);
        });
    // Per-core lanes make the monitor shard-safe; the fold into the device
    // arrays happens at the epoch barrier on the main thread.
    if (system.config().sharded_engine) devmon_->enable_sharded();
    system_.add_observer(devmon_.get());
  }
  if (config_.stream.enabled) {
    // The whole point is overlapping consumption with shard execution; the
    // per-lane record identity also leans on the monitors' per-core lanes.
    TMPROF_EXPECTS(system.config().sharded_engine);
    // Conservative-update sketches are add-order sensitive; the pump's
    // scheduling-dependent interleaving would break bitwise invariance.
    TMPROF_EXPECTS(config_.hotness.mode == HotnessMode::Exact);
    stream_ = std::make_unique<StreamTransport>(config_.stream,
                                                system.config().cores);
    stream_ranker_.configure(config_.stream.top_k, config_.stream.decay_shift);
    std::vector<util::SpscRing<monitors::StreamRecord>*> rings;
    rings.reserve(stream_->trace_lanes());
    for (std::uint32_t c = 0; c < stream_->trace_lanes(); ++c) {
      rings.push_back(&stream_->ring(c));
    }
    // Ring-full overflow flushes through the same fold as ring records; the
    // spill runs on the main thread at drain time, so this is shard-safe.
    auto spill = [this](std::span<const monitors::StreamRecord> records) {
      for (const monitors::StreamRecord& rec : records) consume_record(rec);
    };
    if (ibs_) {
      ibs_->enable_streaming(std::move(rings), spill);
    } else {
      pebs_->enable_streaming(std::move(rings), spill);
    }
    system_.set_step_pump([this] { pump_stream(); });
  }
  scanner_.set_shootdown(
      [this](mem::Pid pid, mem::VirtAddr page_va, mem::PageSize size) {
        return system_.shootdown(pid, page_va, size);
      });
  set_trace_enabled(true);
}

TmpDriver::~TmpDriver() {
  if (stream_) system_.set_step_pump(nullptr);
  set_trace_enabled(false);
  if (pml_) system_.remove_observer(pml_.get());
  if (devmon_) system_.remove_observer(devmon_.get());
}

void TmpDriver::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    t_kept_ = {};
    t_dropped_ = {};
    t_scans_aborted_ = {};
    t_abit_ptes_ = {};
    t_abit_pages_ = {};
    t_mon_samples_ = {};
    t_mon_tags_lost_ = {};
    t_mon_interrupts_ = {};
    t_devmon_observed_ = {};
    t_devmon_reported_ = {};
    t_devmon_evictions_ = {};
    t_devmon_occupied_.clear();
    t_stream_depth_ = {};
    t_stream_drops_ = {};
    t_stream_seal_ns_ = {};
    t_stream_records_ = {};
    return;
  }
  telemetry::MetricsRegistry& m = telemetry->metrics();
  t_kept_ = m.counter("driver_trace_samples_kept_total");
  t_dropped_ = m.counter("driver_trace_samples_dropped_total");
  t_scans_aborted_ = m.counter("driver_abit_scans_aborted_total");
  t_abit_ptes_ = m.counter("driver_abit_ptes_visited_total");
  t_abit_pages_ = m.counter("driver_abit_pages_accessed_total");
  t_mon_samples_ = m.gauge("monitor_trace_samples_taken");
  t_mon_tags_lost_ = m.gauge("monitor_trace_tags_lost");
  t_mon_interrupts_ = m.gauge("monitor_trace_interrupts");
  t_devmon_occupied_.clear();
  if (devmon_) {
    t_devmon_observed_ = m.gauge("devmon_accesses_observed");
    t_devmon_reported_ = m.gauge("devmon_entries_reported");
    t_devmon_evictions_ = m.gauge("devmon_slot_evictions");
    // One occupancy gauge per device (tiers 1..N-1); the tier index keeps
    // the name inside the exporter's [a-z0-9_] charset.
    const std::size_t tiers = system_.phys().tier_count();
    for (std::size_t t = 1; t < tiers; ++t) {
      t_devmon_occupied_.push_back(
          m.gauge("devmon_tier" + std::to_string(t) + "_occupied"));
    }
  }
  if (stream_) {
    // Registered only when streaming is on so off-mode exports stay
    // byte-identical to the pre-streaming format.
    t_stream_depth_ = m.gauge("stream_ring_depth");
    t_stream_drops_ = m.counter("stream_ring_drops_total");
    t_stream_seal_ns_ = m.gauge("stream_seal_ns");
    t_stream_records_ = m.counter("stream_records_total");
  }
}

void TmpDriver::set_trace_enabled(bool enabled) {
  if (enabled == trace_enabled_) return;
  monitors::AccessObserver* obs =
      ibs_ ? static_cast<monitors::AccessObserver*>(ibs_.get())
           : static_cast<monitors::AccessObserver*>(pebs_.get());
  if (enabled) system_.add_observer(obs);
  else system_.remove_observer(obs);
  trace_enabled_ = enabled;
}

void TmpDriver::on_trace(std::span<const monitors::TraceSample> samples) {
  for (const monitors::TraceSample& s : samples) {
    if (config_.trace_loads_only && s.is_store) continue;
    if (config_.trace_memory_only && !mem::is_memory(s.source)) continue;
    const mem::Pfn pfn = mem::pfn_of(s.paddr);
    const mem::FrameInfo& frame = system_.phys().frame(pfn);
    if (!frame.allocated) continue;  // raced with a free; drop
    // phys_to_page(): aggregate into the mapping's descriptor.
    const PageKey key{frame.pid, frame.page_va};
    if (fault_ != nullptr && fault_->enabled(util::FaultSite::TraceOverflow)) {
      // Keyed on (epoch, page, occurrence): whether the k-th sample of a
      // page is dropped this epoch does not depend on when lanes drain.
      const std::uint32_t occ = ++overflow_seen_[key];
      const std::uint64_t fkey = util::fault_key(
          epoch_ | (static_cast<std::uint64_t>(occ) << 32), key.page_va,
          key.pid);
      if (fault_->fire(util::FaultSite::TraceOverflow, fkey)) {
        ++trace_samples_dropped_;
        t_dropped_.inc();
        continue;
      }
    }
    cur_trace_.add(key);
    store_.record_trace(pfn, epoch_);
    cumulative_trace_4k_.add(pfn);
    ++trace_samples_kept_;
    t_kept_.inc();
  }
}

void TmpDriver::consume_record(const monitors::StreamRecord& rec) {
  ++stream_records_;
  switch (rec.kind) {
    case monitors::StreamKind::Trace: {
      if (config_.trace_loads_only && monitors::trace_record_is_store(rec)) {
        return;
      }
      if (config_.trace_memory_only &&
          !mem::is_memory(monitors::trace_record_source(rec))) {
        return;
      }
      const mem::Pfn pfn = mem::pfn_of(rec.a);
      const mem::FrameInfo& frame = system_.phys().frame(pfn);
      if (!frame.allocated) return;
      const PageKey key{frame.pid, frame.page_va};
      if (fault_ != nullptr &&
          fault_->enabled(util::FaultSite::TraceOverflow)) {
        // The barrier path keys overflow drops by per-page occurrence; that
        // index would depend on how far the pump has run. Streaming keys on
        // the record's own (epoch, lane, seq) identity — fixed at encode
        // time, so the drop set is invariant to consumption scheduling.
        const std::uint64_t fkey = util::fault_key(
            epoch_ | (static_cast<std::uint64_t>(rec.seq) << 32),
            0x57a3 ^ (static_cast<std::uint64_t>(rec.lane) << 16),
            key.page_va);
        if (fault_->fire(util::FaultSite::TraceOverflow, fkey)) {
          ++trace_samples_dropped_;
          t_dropped_.inc();
          return;
        }
      }
      cur_trace_.add(key);
      store_.record_trace(pfn, epoch_);
      cumulative_trace_4k_.add(pfn);
      ++trace_samples_kept_;
      t_kept_.inc();
      stream_ranker_.add(key, 1);
      return;
    }
    case monitors::StreamKind::Abit: {
      const PageKey key{static_cast<mem::Pid>(rec.c), rec.a};
      cur_abit_.add(key);
      store_.record_abit(rec.b, epoch_);
      cumulative_abit_.add(key);
      stream_ranker_.add(key, 1);
      return;
    }
    case monitors::StreamKind::Dev: {
      // phys_to_page(), as in on_devmon: a frame freed since it was counted
      // no longer names a page on this device.
      const mem::FrameInfo& frame = system_.phys().frame(rec.a);
      if (!frame.allocated) return;
      const PageKey key{frame.pid, frame.page_va};
      cur_devmon_[key] += static_cast<std::uint32_t>(rec.b);
      stream_ranker_.add(key, rec.b);
      return;
    }
  }
}

void TmpDriver::pump_stream() {
  StreamTransport& transport = *stream_;
  for (std::uint32_t lane = 0; lane < transport.lanes(); ++lane) {
    transport.ring(lane).drain(
        [this](const monitors::StreamRecord& rec) { consume_record(rec); });
  }
}

monitors::AbitScanResult TmpDriver::scan_processes(
    const std::vector<mem::Pid>& pids) {
  monitors::AbitScanResult total;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const mem::Pid pid = pids[i];
    if (fault_ != nullptr &&
        fault_->fire(util::FaultSite::AbitAbort,
                     util::fault_key(0xab17, epoch_, i))) {
      // Mid-walk abort: this and later processes keep their A bits set and
      // are picked up (with inflated counts) by the next successful scan.
      total.aborted = true;
      ++scans_aborted_;
      t_scans_aborted_.inc();
      break;
    }
    sim::Process& proc = system_.process(pid);
    const monitors::AbitScanResult r = scanner_.scan_fn(
        pid, proc.page_table(), [&](const monitors::AbitSample& sample) {
          if (stream_) {
            // The scanner runs on the consumer's own thread, so a full ring
            // just means "fold inline" — same result, no spill vector.
            monitors::StreamRecord rec;
            rec.a = sample.page_va;
            rec.b = sample.pfn;
            rec.c = pid;
            rec.seq = abit_seq_++;
            rec.lane = static_cast<std::uint16_t>(stream_->abit_lane());
            rec.kind = monitors::StreamKind::Abit;
            if (!stream_->ring(stream_->abit_lane()).try_push(rec)) {
              consume_record(rec);
            }
            return;
          }
          const PageKey key{pid, sample.page_va};
          cur_abit_.add(key);
          store_.record_abit(sample.pfn, epoch_);
          cumulative_abit_.add(key);
        });
    total.ptes_visited += r.ptes_visited;
    total.pages_accessed += r.pages_accessed;
    total.shootdowns += r.shootdowns;
    total.cost_ns += r.cost_ns;
  }
  t_abit_ptes_.add(total.ptes_visited);
  t_abit_pages_.add(total.pages_accessed);
  if (telemetry_ != nullptr && total.cost_ns > 0) {
    // The caller charges cost_ns to the clock after we return; span it on
    // the daemon track starting at the current sim time.
    telemetry_->span("abit.scan", system_.now(), system_.now() + total.cost_ns,
                     telemetry::kTidDaemon);
  }
  return total;
}

void TmpDriver::on_pml(std::span<const mem::PhysAddr> addresses) {
  for (const mem::PhysAddr paddr : addresses) {
    const mem::Pfn pfn = mem::pfn_of(paddr);
    const mem::FrameInfo& frame = system_.phys().frame(pfn);
    if (!frame.allocated) continue;
    cur_writes_.add(PageKey{frame.pid, frame.page_va});
  }
}

void TmpDriver::on_devmon(
    std::span<const monitors::DevMonReportEntry> report) {
  if (stream_) {
    // Route the report through the device lane so every sample source
    // reaches the epoch through the same transport and record accounting.
    // Producer and consumer are both the main thread here; ring-full folds
    // inline.
    for (const monitors::DevMonReportEntry& e : report) {
      monitors::StreamRecord rec;
      rec.a = e.pfn;
      rec.b = e.count;
      rec.seq = dev_seq_++;
      rec.lane = static_cast<std::uint16_t>(stream_->dev_lane());
      rec.kind = monitors::StreamKind::Dev;
      if (!stream_->ring(stream_->dev_lane()).try_push(rec)) {
        consume_record(rec);
      }
    }
    return;
  }
  for (const monitors::DevMonReportEntry& e : report) {
    // phys_to_page(): the device counts physical frames; the driver maps
    // them back to page identity. A frame freed (or migrated away) since
    // it was counted no longer names a page on this device — drop it.
    const mem::FrameInfo& frame = system_.phys().frame(e.pfn);
    if (!frame.allocated) continue;
    // += rather than =: a huge page's 4 KiB frames aggregate into one
    // descriptor, and multiple devices may report the same mapping.
    cur_devmon_[PageKey{frame.pid, frame.page_va}] += e.count;
  }
}

EpochObservation TmpDriver::end_epoch() {
  EpochObservation closed;
  end_epoch_into(closed);
  return closed;
}

void TmpDriver::end_epoch_into(EpochObservation& out) {
  const auto seal_start = std::chrono::steady_clock::now();
  // Pull any buffered samples into this epoch before closing it. In
  // streaming mode this is the drain-and-seal: most records were already
  // folded by the mid-step pump, so only the residual ring tail, the
  // ring-full spills, and the DevMon report (which routes through the
  // device lane) remain.
  if (stream_) pump_stream();
  if (ibs_) ibs_->drain();
  if (pebs_) pebs_->drain();
  if (pml_) pml_->drain();
  if (devmon_) devmon_->drain();
  if (stream_) {
    pump_stream();  // the device lane (and any A-bit tail) just filled
    stream_ranker_.seal();
    if (ibs_) ibs_->stream_epoch_reset();
    if (pebs_) pebs_->stream_epoch_reset();
    abit_seq_ = 0;
    dev_seq_ = 0;
    t_stream_depth_.set(stream_->high_water());
    stream_->reset_high_water();
    const std::uint64_t drops = stream_->drops_total();
    t_stream_drops_.add(drops - stream_drops_exported_);
    stream_drops_exported_ = drops;
    t_stream_records_.add(stream_records_ - stream_records_exported_);
    stream_records_exported_ = stream_records_;
    // Wall-clock (not sim-time) cost of the drain-and-seal: this gauge is
    // observational and excluded from byte-identity claims.
    t_stream_seal_ns_.set(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - seal_start)
            .count()));
  }
  out.epoch = epoch_;
  // Exact mode swaps the accumulator maps out, adopting out's previous
  // buffers — the same two-buffer protocol the swap-based path used.
  cur_abit_.end_epoch_into(out.abit);
  cur_trace_.end_epoch_into(out.trace);
  cur_writes_.end_epoch_into(out.writes);
  out.devmon.swap(cur_devmon_);
  cur_devmon_.clear();
  ++epoch_;
  overflow_seen_.clear();
  // Monitor-level gauges: cumulative values read from the backend at each
  // epoch close (tags_lost is IBS-only; PEBS tagging cannot miss).
  if (ibs_) {
    t_mon_samples_.set(ibs_->samples_taken());
    t_mon_tags_lost_.set(ibs_->tags_lost());
    t_mon_interrupts_.set(ibs_->interrupts());
  } else if (pebs_) {
    t_mon_samples_.set(pebs_->samples_taken());
    t_mon_interrupts_.set(pebs_->interrupts());
  }
  if (devmon_) {
    t_devmon_observed_.set(devmon_->observed());
    t_devmon_reported_.set(devmon_->reported());
    t_devmon_evictions_.set(devmon_->evictions());
    for (std::size_t i = 0; i < t_devmon_occupied_.size(); ++i) {
      t_devmon_occupied_[i].set(
          devmon_->occupied(static_cast<mem::TierId>(i + 1)));
    }
  }
}

util::SimNs TmpDriver::trace_overhead_ns() const noexcept {
  if (ibs_) return ibs_->overhead_ns();
  if (pebs_) return pebs_->overhead_ns();
  return 0;
}

util::SimNs TmpDriver::overhead_ns() const noexcept {
  return trace_overhead_ns() + scanner_.overhead_ns();
}

void TmpDriver::save_state(util::ckpt::Writer& w) const {
  w.put_u8(static_cast<std::uint8_t>(config_.backend));
  w.put_bool(pml_ != nullptr);
  if (ibs_) ibs_->save_state(w);
  if (pebs_) pebs_->save_state(w);
  if (pml_) pml_->save_state(w);
  scanner_.save_state(w);
  store_.save_state(w);
  cur_abit_.save_state(w, "driver");
  cur_trace_.save_state(w, "driver");
  cur_writes_.save_state(w, "driver");
  w.put_u32(epoch_);
  w.put_bool(trace_enabled_);
  w.put_u64(trace_samples_kept_);
  w.put_u64(trace_samples_dropped_);
  w.put_u64(scans_aborted_);
  save_page_counts(w, overflow_seen_);
  cumulative_trace_4k_.save_state(w, "driver");
  cumulative_abit_.save_state(w, "driver");
}

void TmpDriver::load_state(util::ckpt::Reader& r) {
  const auto backend = static_cast<TraceBackend>(r.get_u8());
  if (backend != config_.backend) {
    throw util::ckpt::CkptError("driver", "trace backend mismatch");
  }
  const bool has_pml = r.get_bool();
  if (has_pml != (pml_ != nullptr)) {
    throw util::ckpt::CkptError("driver", "PML presence mismatch");
  }
  if (ibs_) ibs_->load_state(r);
  if (pebs_) pebs_->load_state(r);
  if (pml_) pml_->load_state(r);
  scanner_.load_state(r);
  store_.load_state(r);
  cur_abit_.load_state(r, "driver");
  cur_trace_.load_state(r, "driver");
  cur_writes_.load_state(r, "driver");
  epoch_ = r.get_u32();
  // Routed through the setter so observer registration tracks the flag.
  set_trace_enabled(r.get_bool());
  trace_samples_kept_ = r.get_u64();
  trace_samples_dropped_ = r.get_u64();
  scans_aborted_ = r.get_u64();
  load_page_counts(r, overflow_seen_);
  cumulative_trace_4k_.load_state(r, "driver");
  cumulative_abit_.load_state(r, "driver");
}

void TmpDriver::stream_ranking(std::vector<PageRank>& out) const {
  if (!stream_) {
    out.clear();
    return;
  }
  stream_ranker_.ranking_into(out);
}

void TmpDriver::save_stream_state(util::ckpt::Writer& w) const {
  w.put_bool(stream_ != nullptr);
  if (!stream_) return;
  w.put_u32(stream_->config().ring_capacity);
  w.put_u32(stream_->trace_lanes());
  w.put_u32(stream_->config().top_k);
  w.put_u32(stream_->config().decay_shift);
  w.put_u64(stream_records_);
  w.put_u64(stream_->drops_total());
  w.put_u64(stream_drops_exported_);
  w.put_u64(stream_records_exported_);
  w.put_u32(abit_seq_);
  w.put_u32(dev_seq_);
  stream_ranker_.save_state(w);
}

void TmpDriver::load_stream_state(util::ckpt::Reader& r) {
  const bool has_stream = r.get_bool();
  if (has_stream != (stream_ != nullptr)) {
    throw util::ckpt::CkptError("stream", "streaming presence mismatch");
  }
  if (!stream_) return;
  const std::uint32_t ring_capacity = r.get_u32();
  const std::uint32_t lanes = r.get_u32();
  if (ring_capacity != stream_->config().ring_capacity ||
      lanes != stream_->trace_lanes()) {
    throw util::ckpt::CkptError("stream", "transport geometry mismatch");
  }
  const std::uint32_t top_k = r.get_u32();
  const std::uint32_t decay_shift = r.get_u32();
  if (top_k != stream_->config().top_k ||
      decay_shift != stream_->config().decay_shift) {
    throw util::ckpt::CkptError("stream", "ranker geometry mismatch");
  }
  stream_records_ = r.get_u64();
  // Checkpoints land at sealed barriers, so live rings are empty; the drop
  // tally carries over as a base the fresh (zeroed) ring counters add to.
  stream_->set_carried_drops(r.get_u64());
  stream_drops_exported_ = r.get_u64();
  stream_records_exported_ = r.get_u64();
  abit_seq_ = r.get_u32();
  dev_seq_ = r.get_u32();
  stream_ranker_.load_state(r);
}

void TmpDriver::save_devmon_state(util::ckpt::Writer& w) const {
  w.put_bool(devmon_ != nullptr);
  if (!devmon_) return;
  devmon_->save_state(w);
  save_page_counts(w, cur_devmon_);
}

void TmpDriver::load_devmon_state(util::ckpt::Reader& r) {
  const bool has_devmon = r.get_bool();
  if (has_devmon != (devmon_ != nullptr)) {
    throw util::ckpt::CkptError("devmon", "device monitor presence mismatch");
  }
  if (!devmon_) return;
  devmon_->load_state(r);
  load_page_counts(r, cur_devmon_);
}

}  // namespace tmprof::core
