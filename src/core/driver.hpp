#pragma once
/// \file driver.hpp
/// The TMP kernel driver analog (Section III-B). Owns the trace-based
/// monitor (IBS or PEBS) and the A-bit scanner, drains their raw data, and
/// accumulates per-page statistics into the page-descriptor store and the
/// current epoch's observation maps.
///
/// Filtering follows the paper: trace samples count only if they are demand
/// loads whose data source is beyond the LLC (TMP uses IBS/PEBS "to inspect
/// memory accessed from regular last-level caches"), because a page that is
/// frequently accessed but hits in cache gains nothing from migration.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hotness.hpp"
#include "core/page_stats.hpp"
#include "core/ranking.hpp"
#include "core/stream.hpp"
#include "monitors/abit.hpp"
#include "monitors/devmon.hpp"
#include "monitors/ibs.hpp"
#include "monitors/pebs.hpp"
#include "monitors/pml.hpp"
#include "sim/system.hpp"
#include "telemetry/metrics.hpp"
#include "util/fault.hpp"

namespace tmprof::telemetry {
class Telemetry;
}

namespace tmprof::core {

/// Cumulative per-4KiB-frame counters (Fig. 5 CDF input).
using PfnCountMap = util::FlatHashMap<mem::Pfn, std::uint32_t, util::U64Hash>;

enum class TraceBackend : std::uint8_t { Ibs, Pebs };

struct DriverConfig {
  TraceBackend backend = TraceBackend::Ibs;
  monitors::IbsConfig ibs;
  monitors::PebsConfig pebs;
  monitors::AbitConfig abit;
  /// Count only demand loads (not stores) from the trace stream.
  bool trace_loads_only = true;
  /// Count only samples whose data source is beyond the LLC.
  bool trace_memory_only = true;
  /// Also collect Page-Modification Logging (dirty-page) evidence for
  /// write-aware policies. Off by default: TMP's focus is demand loads.
  bool use_pml = false;
  monitors::PmlConfig pml;
  /// Device-side hot-page counters at each non-fastest tier's memory
  /// controller (docs/TOPOLOGY.md). Off by default; `devmon.enabled`
  /// gates construction, so disabled runs are bitwise unchanged.
  monitors::DevMonConfig devmon;
  /// Hotness front-end: exact FlatHashMap counters (default, historical
  /// bit-exact behavior) or the count-min-sketch store (docs/SKETCH.md).
  /// Selected per run through DaemonConfig::driver.
  HotnessConfig hotness{};
  /// Streaming sample transport + incremental top-K (docs/STREAMING.md).
  /// Off by default; `stream.enabled` gates construction, so disabled runs
  /// are bitwise unchanged. Requires the sharded engine and the exact
  /// hotness front-end (conservative-update sketches are add-order
  /// sensitive, which the pump's scheduling-dependent interleaving would
  /// expose).
  StreamConfig stream{};
};

/// Collects raw profiling data from the hardware monitor models.
class TmpDriver {
 public:
  TmpDriver(sim::System& system, const DriverConfig& config);
  TmpDriver(const TmpDriver&) = delete;
  TmpDriver& operator=(const TmpDriver&) = delete;
  ~TmpDriver();

  /// Pause/resume trace-based collection (activity gating actuator).
  void set_trace_enabled(bool enabled);
  [[nodiscard]] bool trace_enabled() const noexcept { return trace_enabled_; }

  /// Run one A-bit scan pass over the given processes; returns the summed
  /// scan statistics. Honors the paper's no-shootdown optimization via
  /// DriverConfig::abit.
  monitors::AbitScanResult scan_processes(const std::vector<mem::Pid>& pids);

  /// Close the current epoch: drain pending trace buffers and hand out the
  /// epoch's observations, then start a new epoch.
  EpochObservation end_epoch();

  /// Allocation-reusing form: swaps the finished epoch into `out` and
  /// adopts `out`'s previous buffers (cleared, capacity retained) as the
  /// new accumulators. Steady-state epochs reuse the same two buffer sets.
  void end_epoch_into(EpochObservation& out);

  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const PageStatsStore& store() const noexcept { return store_; }

  /// Cumulative per-4KiB-frame trace sample counts (Fig. 5 CDF input).
  /// Exact counts by definition, so this throws std::logic_error when the
  /// driver runs the sketch front-end — consumers that can tolerate
  /// one-sided estimates should use trace_store() instead.
  [[nodiscard]] const PfnCountMap& trace_counts_4k() const {
    return cumulative_trace_4k_.exact_counts();
  }
  /// Cumulative per-page A-bit observation counts (Fig. 5 CDF input).
  /// Throws std::logic_error in sketch mode; see trace_counts_4k().
  [[nodiscard]] const PageCountMap& abit_counts() const {
    return cumulative_abit_.exact_counts();
  }
  /// Mode-agnostic cumulative stores (counts or one-sided estimates).
  [[nodiscard]] const PfnHotnessCounts& trace_store() const noexcept {
    return cumulative_trace_4k_;
  }
  [[nodiscard]] const HotnessCounts& abit_store() const noexcept {
    return cumulative_abit_;
  }

  /// Modeled software overhead of collection so far (trace + scans).
  [[nodiscard]] util::SimNs overhead_ns() const noexcept;
  [[nodiscard]] util::SimNs trace_overhead_ns() const noexcept;
  [[nodiscard]] util::SimNs abit_overhead_ns() const noexcept {
    return scanner_.overhead_ns();
  }
  [[nodiscard]] std::uint64_t trace_samples_kept() const noexcept {
    return trace_samples_kept_;
  }
  /// Trace samples lost to injected buffer overflows (docs/ROBUSTNESS.md).
  [[nodiscard]] std::uint64_t trace_samples_dropped() const noexcept {
    return trace_samples_dropped_;
  }
  /// A-bit scan passes cut short by an injected mid-walk abort.
  [[nodiscard]] std::uint64_t scans_aborted() const noexcept {
    return scans_aborted_;
  }

  /// Wire the daemon's fault injector into the driver's fault sites
  /// (trace-buffer overflow, A-bit scan abort). Null disables injection.
  void set_fault_injector(util::FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Attach (or with null, detach) the telemetry sink: trace filter
  /// counters, A-bit scan counters + spans, and per-epoch monitor gauges
  /// (docs/OBSERVABILITY.md).
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// The device-side monitor, if DriverConfig::devmon enabled it (null
  /// otherwise). Exposed for telemetry/tests; owned by the driver.
  [[nodiscard]] const monitors::DevMonitor* devmon() const noexcept {
    return devmon_.get();
  }

  /// Checkpoint hooks: monitor state, the descriptor store, the open
  /// epoch's observation maps, and the cumulative CDF inputs. The backend
  /// configuration must match the constructed driver on load.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

  /// Device-monitor checkpoint state (counter arrays, lanes, the open
  /// epoch's translated page counts). Framed by the runner in its own
  /// "devmon" section; a presence mismatch throws CkptError("devmon", ...)
  /// so a resume with a different devmon config cold-starts.
  void save_devmon_state(util::ckpt::Writer& w) const;
  void load_devmon_state(util::ckpt::Reader& r);

  // --- streaming transport (docs/STREAMING.md) --------------------------
  [[nodiscard]] bool streaming() const noexcept { return stream_ != nullptr; }
  /// Advisory mid-epoch top-K over the records consumed so far, sorted
  /// under RankOrder (streaming mode only; empty otherwise). Exact for the
  /// consumed prefix; how far that prefix reaches depends on the pump.
  void stream_ranking(std::vector<PageRank>& out) const;
  /// Records folded by the consumer so far (all kinds, pre-filter).
  [[nodiscard]] std::uint64_t stream_records_consumed() const noexcept {
    return stream_records_;
  }
  /// Ring-full back-pressure events (records that took the spill path).
  [[nodiscard]] std::uint64_t stream_ring_drops() const noexcept {
    return stream_ ? stream_->drops_total() : 0;
  }
  [[nodiscard]] const StreamTransport* stream_transport() const noexcept {
    return stream_.get();
  }

  /// Streaming checkpoint state (transport geometry, cumulative record and
  /// drop tallies, ranker heat). Framed by the runner in its own "stream"
  /// section; presence/geometry mismatches throw CkptError("stream", ...)
  /// so a resume with a different stream config cold-starts.
  void save_stream_state(util::ckpt::Writer& w) const;
  void load_stream_state(util::ckpt::Reader& r);

 private:
  void on_trace(std::span<const monitors::TraceSample> samples);
  void on_pml(std::span<const mem::PhysAddr> addresses);
  void on_devmon(std::span<const monitors::DevMonReportEntry> report);
  /// Fold one stream record into the open epoch (main thread only).
  void consume_record(const monitors::StreamRecord& rec);
  /// Drain every lane's ring through consume_record. Runs opportunistically
  /// from the engine's step pump and exhaustively at the epoch seal.
  void pump_stream();

  sim::System& system_;
  DriverConfig config_;
  std::unique_ptr<monitors::IbsMonitor> ibs_;
  std::unique_ptr<monitors::PebsMonitor> pebs_;
  std::unique_ptr<monitors::PmlMonitor> pml_;
  std::unique_ptr<monitors::DevMonitor> devmon_;
  monitors::AbitScanner scanner_;
  PageStatsStore store_;
  /// The open epoch's per-source accumulators (HotnessStore-backed; exact
  /// mode reproduces the historical EpochObservation maps bit-for-bit).
  HotnessCounts cur_abit_;
  HotnessCounts cur_trace_;
  HotnessCounts cur_writes_;
  /// Open epoch's device-counter evidence, translated to page identity at
  /// each drain. Always exact: the reports are already top-K bounded.
  PageCountMap cur_devmon_;
  std::uint32_t epoch_ = 0;
  bool trace_enabled_ = false;
  std::uint64_t trace_samples_kept_ = 0;
  util::FaultInjector* fault_ = nullptr;  ///< not owned; may be null
  telemetry::Telemetry* telemetry_ = nullptr;  ///< not owned; may be null
  telemetry::Counter t_kept_;
  telemetry::Counter t_dropped_;
  telemetry::Counter t_scans_aborted_;
  telemetry::Counter t_abit_ptes_;
  telemetry::Counter t_abit_pages_;
  telemetry::Gauge t_mon_samples_;
  telemetry::Gauge t_mon_tags_lost_;
  telemetry::Gauge t_mon_interrupts_;
  telemetry::Gauge t_devmon_observed_;
  telemetry::Gauge t_devmon_reported_;
  telemetry::Gauge t_devmon_evictions_;
  std::vector<telemetry::Gauge> t_devmon_occupied_;  ///< per non-fast tier
  std::uint64_t trace_samples_dropped_ = 0;
  std::uint64_t scans_aborted_ = 0;
  /// Per-epoch occurrence index per page, so overflow-drop decisions are a
  /// pure function of (epoch, page, occurrence) — invariant to drain order.
  /// Always exact: fault bookkeeping must not inherit sketch error.
  PageCountMap overflow_seen_;
  PfnHotnessCounts cumulative_trace_4k_;
  HotnessCounts cumulative_abit_;
  /// Streaming transport (null unless DriverConfig::stream.enabled).
  std::unique_ptr<StreamTransport> stream_;
  StreamRanker stream_ranker_;
  std::uint64_t stream_records_ = 0;
  std::uint32_t abit_seq_ = 0;  ///< next A-bit lane record seq this epoch
  std::uint32_t dev_seq_ = 0;   ///< next DevMon lane record seq this epoch
  telemetry::Gauge t_stream_depth_;
  telemetry::Counter t_stream_drops_;
  telemetry::Gauge t_stream_seal_ns_;
  telemetry::Counter t_stream_records_;
  /// Counter baselines so per-epoch exports add deltas of the cumulative
  /// tallies (restored from checkpoints to keep exports monotone).
  std::uint64_t stream_drops_exported_ = 0;
  std::uint64_t stream_records_exported_ = 0;
};

}  // namespace tmprof::core
