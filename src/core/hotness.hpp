#pragma once
/// \file hotness.hpp
/// The HotnessStore abstraction: per-page counting that runs in `exact`
/// mode (the PR-5 FlatHashMap front-end, bit-identical to the historical
/// behavior) or `sketch` mode (count-min sketch + bounded candidate set,
/// docs/SKETCH.md) behind one interface. TruthCollector shards, the
/// driver's epoch observations and cumulative maps, and the freq-decay
/// policy all count through this type, selected per run via
/// DriverConfig::hotness (i.e. DaemonConfig-selected).
///
/// Sketch mode keeps two invariants the rest of the system relies on:
///  * no undercount — estimates are >= the true count (count-min with
///    conservative update, merged by cell-wise saturating add), so the
///    materialized epoch maps over-approximate but never hide hotness;
///  * determinism — candidate admission, compaction and the epoch-barrier
///    shard merge (ascending shard order) are pure functions of the
///    simulated stream, so sketch mode stays bitwise thread-count
///    invariant and checkpoint/resume-consistent.
///
/// The epoch close keeps the swap-and-clear protocol allocation-free in
/// both modes: exact mode swaps the accumulator map out, sketch mode
/// materializes candidates through a capacity-retaining scratch vector.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/page_key.hpp"
#include "mem/addr.hpp"
#include "util/ckpt.hpp"
#include "util/flat_map.hpp"
#include "util/sketch.hpp"

namespace tmprof::core {

enum class HotnessMode : std::uint8_t {
  Exact = 0,   ///< FlatHashMap per-page counters (PR-5 behavior)
  Sketch = 1,  ///< count-min sketch + bounded candidate set
};

[[nodiscard]] std::string_view to_string(HotnessMode mode) noexcept;
/// Parses "exact" / "sketch"; throws std::invalid_argument otherwise.
[[nodiscard]] HotnessMode parse_hotness_mode(const std::string& name);

struct HotnessConfig {
  HotnessMode mode = HotnessMode::Exact;
  util::SketchParams sketch{};
  /// Sketch mode: cap on exactly-tracked candidate keys (the keys the
  /// epoch close can materialize). Hot keys are admitted when their
  /// estimate clears an adaptive floor; overflow compacts to the top
  /// 3/4 and raises the floor.
  std::uint32_t candidates = 1u << 13;

  friend bool operator==(const HotnessConfig&, const HotnessConfig&) = default;
};

/// Key adapters: 64-bit fingerprint for the sketch substrates plus
/// checkpoint serialization. Fingerprint collisions only ever merge two
/// keys' counts (an overcount), so the no-undercount invariant survives.
struct PageKeyCodec {
  [[nodiscard]] static std::uint64_t fingerprint(const PageKey& key) noexcept {
    return key.page_va ^ (static_cast<std::uint64_t>(key.pid) << 48);
  }
  static void save(util::ckpt::Writer& w, const PageKey& key) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
  }
  [[nodiscard]] static PageKey load(util::ckpt::Reader& r) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    return key;
  }
};

struct PfnCodec {
  [[nodiscard]] static std::uint64_t fingerprint(mem::Pfn pfn) noexcept {
    return pfn;
  }
  static void save(util::ckpt::Writer& w, mem::Pfn pfn) { w.put_u64(pfn); }
  [[nodiscard]] static mem::Pfn load(util::ckpt::Reader& r) {
    return r.get_u64();
  }
};

template <typename Key, typename Count, typename Hash, typename Codec>
class BasicHotnessStore {
 public:
  using MapType = util::FlatHashMap<Key, Count, Hash>;

  BasicHotnessStore() = default;
  explicit BasicHotnessStore(const HotnessConfig& config) { configure(config); }

  /// (Re)configure; drops all state. Exact mode allocates nothing.
  void configure(const HotnessConfig& config) {
    cfg_ = config;
    exact_ = MapType{};
    candidates_ = util::FlatHashSet<Key, Hash>{};
    scratch_.clear();
    scratch_.shrink_to_fit();
    floor_ = 0;
    total_ = 0;
    if (cfg_.mode == HotnessMode::Sketch) {
      cms_ = util::CountMinSketch(cfg_.sketch.width, cfg_.sketch.depth,
                                  cfg_.sketch.seed);
      candidates_.reserve(cfg_.candidates);
      scratch_.reserve(cfg_.candidates);
    } else {
      cms_ = util::CountMinSketch{};
    }
  }

  [[nodiscard]] const HotnessConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] HotnessMode mode() const noexcept { return cfg_.mode; }
  /// Exact running total of everything added since the last epoch close —
  /// a plain u64 accumulator in both modes, never a sum of estimates.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Keys the epoch close can materialize (exact size or candidate count).
  [[nodiscard]] std::size_t tracked() const noexcept {
    return cfg_.mode == HotnessMode::Exact ? exact_.size()
                                           : candidates_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return exact_.memory_bytes() + cms_.memory_bytes() +
           candidates_.memory_bytes() +
           scratch_.capacity() * sizeof(scratch_[0]);
  }

  void add(const Key& key, Count n = 1) {
    total_ += n;
    if (cfg_.mode == HotnessMode::Exact) {
      exact_[key] += n;
      return;
    }
    cms_.add(Codec::fingerprint(key), static_cast<std::uint32_t>(n));
    const std::uint64_t est = cms_.estimate(Codec::fingerprint(key));
    if (est > floor_) {
      candidates_.insert(key);
      if (candidates_.size() > cfg_.candidates) compact();
    }
  }

  /// Exact count, or the sketch's one-sided (>= true) estimate.
  [[nodiscard]] std::uint64_t estimate(const Key& key) const {
    if (cfg_.mode == HotnessMode::Exact) {
      const auto it = exact_.find(key);
      return it == exact_.end() ? 0 : it->second;
    }
    return cms_.estimate(Codec::fingerprint(key));
  }

  /// Close the epoch into `out` and reset. Exact mode swaps the
  /// accumulator out (out's previous buffer becomes next epoch's
  /// accumulator — the zero-allocation protocol); sketch mode fills `out`
  /// with the candidates' clamped estimates in ascending key order.
  /// Returns the exact total added this epoch.
  std::uint64_t end_epoch_into(MapType& out) {
    const std::uint64_t total = total_;
    total_ = 0;
    if (cfg_.mode == HotnessMode::Exact) {
      out.swap(exact_);
      exact_.clear();
      return total;
    }
    gather_candidates();
    out.clear();
    out.reserve(scratch_.size());
    constexpr std::uint64_t kCeil = std::numeric_limits<Count>::max();
    for (const auto& [est, key] : scratch_) {
      out[key] = static_cast<Count>(std::min(kCeil, est));
    }
    cms_.clear();
    candidates_.clear();
    floor_ = 0;
    return total;
  }

  /// Reset epoch state without materializing.
  void clear() {
    exact_.clear();
    if (cfg_.mode == HotnessMode::Sketch) cms_.clear();
    candidates_.clear();
    floor_ = 0;
    total_ = 0;
  }

  /// Epoch-barrier fold of a shard's accumulation into this store; clears
  /// the shard. Callers fold shards in ascending shard order so contents
  /// and iteration order stay a pure function of the simulation. Exact
  /// mode folds counts in the shard's slot order (the historical merge);
  /// sketch mode merges cell-wise saturating and re-admits the shard's
  /// candidates in ascending key order.
  void merge_from(BasicHotnessStore& shard) {
    if (cfg_.mode != shard.cfg_.mode) {
      throw std::logic_error("HotnessStore::merge_from: mode mismatch");
    }
    total_ += shard.total_;
    if (cfg_.mode == HotnessMode::Exact) {
      for (const auto& [key, count] : shard.exact_) {
        exact_[key] += count;
      }
      shard.exact_.clear();
      shard.total_ = 0;
      return;
    }
    cms_.merge_add(shard.cms_);
    shard.gather_candidates();
    for (const auto& [est, key] : shard.scratch_) {
      // Re-check against the merged sketch (estimates only grow).
      if (cms_.estimate(Codec::fingerprint(key)) > floor_) {
        candidates_.insert(key);
        if (candidates_.size() > cfg_.candidates) compact();
      }
    }
    shard.cms_.clear();
    shard.candidates_.clear();
    shard.floor_ = 0;
    shard.total_ = 0;
  }

  /// Exact-mode accessor for consumers that assume true counts
  /// (fold_sorted checkpoint serialization, Fig. 5 CDF inputs). Throws
  /// std::logic_error in sketch mode: such callers must use
  /// fold_sorted_estimates() and tolerate one-sided error instead.
  [[nodiscard]] const MapType& exact_counts() const {
    if (cfg_.mode != HotnessMode::Exact) {
      throw std::logic_error(
          "HotnessStore: exact_counts() called in sketch mode");
    }
    return exact_;
  }

  /// Sketch-mode accessor (accuracy diagnostics). Throws in exact mode.
  [[nodiscard]] const util::CountMinSketch& sketch() const {
    if (cfg_.mode != HotnessMode::Sketch) {
      throw std::logic_error("HotnessStore: sketch() called in exact mode");
    }
    return cms_;
  }

  /// Visit tracked keys in ascending order: fn(key, count-or-estimate).
  /// Cold path (allocates); used for checkpoint bytes and diagnostics.
  template <typename Fn>
  void fold_sorted_estimates(Fn&& fn) const {
    if (cfg_.mode == HotnessMode::Exact) {
      exact_.fold_sorted([&fn](const Key& key, Count count) {
        fn(key, static_cast<std::uint64_t>(count));
      });
      return;
    }
    candidates_.fold_sorted([this, &fn](const Key& key) {
      fn(key, cms_.estimate(Codec::fingerprint(key)));
    });
  }

  friend bool operator==(const BasicHotnessStore& a,
                         const BasicHotnessStore& b) {
    return a.cfg_ == b.cfg_ && a.total_ == b.total_ && a.floor_ == b.floor_ &&
           a.exact_ == b.exact_ && a.cms_ == b.cms_ &&
           a.candidates_ == b.candidates_;
  }

  /// Checkpoint round trip. The mode byte, candidate cap and sketch shape
  /// must match this store's configuration on load; a mismatch throws
  /// CkptError(section) so the caller falls back to a cold start.
  void save_state(util::ckpt::Writer& w, const char* section) const {
    (void)section;
    w.put_u8(static_cast<std::uint8_t>(cfg_.mode));
    w.put_u64(total_);
    if (cfg_.mode == HotnessMode::Exact) {
      w.put_u64(exact_.size());
      exact_.fold_sorted([&w](const Key& key, Count count) {
        Codec::save(w, key);
        if constexpr (sizeof(Count) == 4) {
          w.put_u32(count);
        } else {
          w.put_u64(count);
        }
      });
      return;
    }
    w.put_u32(cfg_.candidates);
    w.put_u64(floor_);
    cms_.save_state(w);
    w.put_u64(candidates_.size());
    candidates_.fold_sorted([&w](const Key& key) { Codec::save(w, key); });
  }

  void load_state(util::ckpt::Reader& r, const char* section) {
    const auto mode = static_cast<HotnessMode>(r.get_u8());
    if (mode != cfg_.mode) {
      throw util::ckpt::CkptError(section, "hotness mode mismatch");
    }
    total_ = r.get_u64();
    if (cfg_.mode == HotnessMode::Exact) {
      exact_.clear();
      const std::uint64_t count = r.get_u64();
      exact_.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const Key key = Codec::load(r);
        if constexpr (sizeof(Count) == 4) {
          exact_[key] = r.get_u32();
        } else {
          exact_[key] = r.get_u64();
        }
      }
      return;
    }
    if (r.get_u32() != cfg_.candidates) {
      throw util::ckpt::CkptError(section, "hotness candidate cap mismatch");
    }
    floor_ = r.get_u64();
    cms_.load_state(r, section);
    candidates_.clear();
    const std::uint64_t count = r.get_u64();
    candidates_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      candidates_.insert(Codec::load(r));
    }
  }

 private:
  /// Fill scratch_ with (estimate, key) for every candidate, ascending
  /// key order. In-place sort of a capacity-retaining vector: no steady-
  /// state allocation.
  void gather_candidates() {
    scratch_.clear();
    for (const Key& key : candidates_) {
      scratch_.emplace_back(cms_.estimate(Codec::fingerprint(key)), key);
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
  }

  /// Keep the hottest 3/4 of the cap, raise the admission floor to the
  /// coldest survivor. Deterministic: full order is (estimate desc, key
  /// asc), a strict total order over candidates.
  void compact() {
    gather_candidates();
    std::sort(scratch_.begin(), scratch_.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const std::size_t keep =
        std::max<std::size_t>(1, (cfg_.candidates / 4) * 3);
    if (scratch_.size() > keep) scratch_.resize(keep);
    floor_ = std::max(floor_, scratch_.back().first);
    candidates_.clear();
    for (const auto& [est, key] : scratch_) candidates_.insert(key);
  }

  HotnessConfig cfg_{};
  MapType exact_;
  util::CountMinSketch cms_;
  util::FlatHashSet<Key, Hash> candidates_;
  std::vector<std::pair<std::uint64_t, Key>> scratch_;
  std::uint64_t floor_ = 0;  ///< sketch-mode admission floor
  std::uint64_t total_ = 0;  ///< exact sum of adds since last epoch close
};

/// Seen-key set that runs exact (FlatHashSet) or sketched (Bloom filter).
/// In sketch mode insert() can return a false "already seen" (a Bloom
/// false positive) but never a false "new" for a seen key — downstream
/// first-touch consumers may miss a page with tiny probability but never
/// double-report one.
template <typename Key, typename Hash, typename Codec>
class BasicHotnessSet {
 public:
  BasicHotnessSet() = default;
  explicit BasicHotnessSet(const HotnessConfig& config) { configure(config); }

  void configure(const HotnessConfig& config) {
    cfg_ = config;
    exact_ = util::FlatHashSet<Key, Hash>{};
    approx_size_ = 0;
    if (cfg_.mode == HotnessMode::Sketch) {
      bloom_ = util::BloomFilter(cfg_.sketch.bloom_bits,
                                 cfg_.sketch.bloom_hashes, cfg_.sketch.seed);
    } else {
      bloom_ = util::BloomFilter{};
    }
  }

  [[nodiscard]] const HotnessConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] HotnessMode mode() const noexcept { return cfg_.mode; }

  /// True when the key was definitely not seen before.
  bool insert(const Key& key) {
    if (cfg_.mode == HotnessMode::Exact) return exact_.insert(key);
    const bool definitely_new = bloom_.insert(Codec::fingerprint(key));
    if (definitely_new) ++approx_size_;
    return definitely_new;
  }

  [[nodiscard]] bool maybe_contains(const Key& key) const {
    return cfg_.mode == HotnessMode::Exact
               ? exact_.contains(key)
               : bloom_.maybe_contains(Codec::fingerprint(key));
  }

  /// Exact size, or the count of definitely-new inserts (a lower bound on
  /// distinct keys in sketch mode).
  [[nodiscard]] std::uint64_t size() const noexcept {
    return cfg_.mode == HotnessMode::Exact ? exact_.size() : approx_size_;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return exact_.memory_bytes() + bloom_.memory_bytes();
  }

  void clear() {
    exact_.clear();
    if (cfg_.mode == HotnessMode::Sketch) bloom_.clear();
    approx_size_ = 0;
  }

  friend bool operator==(const BasicHotnessSet& a, const BasicHotnessSet& b) {
    return a.cfg_ == b.cfg_ && a.approx_size_ == b.approx_size_ &&
           a.exact_ == b.exact_ && a.bloom_ == b.bloom_;
  }

  void save_state(util::ckpt::Writer& w, const char* section) const {
    (void)section;
    w.put_u8(static_cast<std::uint8_t>(cfg_.mode));
    if (cfg_.mode == HotnessMode::Exact) {
      w.put_u64(exact_.size());
      exact_.fold_sorted([&w](const Key& key) { Codec::save(w, key); });
      return;
    }
    w.put_u64(approx_size_);
    bloom_.save_state(w);
  }

  void load_state(util::ckpt::Reader& r, const char* section) {
    const auto mode = static_cast<HotnessMode>(r.get_u8());
    if (mode != cfg_.mode) {
      throw util::ckpt::CkptError(section, "hotness mode mismatch");
    }
    if (cfg_.mode == HotnessMode::Exact) {
      exact_.clear();
      const std::uint64_t count = r.get_u64();
      exact_.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        exact_.insert(Codec::load(r));
      }
      return;
    }
    approx_size_ = r.get_u64();
    bloom_.load_state(r, section);
  }

 private:
  HotnessConfig cfg_{};
  util::FlatHashSet<Key, Hash> exact_;
  util::BloomFilter bloom_;
  std::uint64_t approx_size_ = 0;
};

/// The concrete stores the profiler wires up (core/ranking.hpp aliases'
/// sketchable counterparts).
using HotnessCounts =
    BasicHotnessStore<PageKey, std::uint32_t, PageKeyHash, PageKeyCodec>;
using HotnessTruth =
    BasicHotnessStore<PageKey, std::uint64_t, PageKeyHash, PageKeyCodec>;
using PfnHotnessCounts =
    BasicHotnessStore<mem::Pfn, std::uint32_t, util::U64Hash, PfnCodec>;
using PageHotnessSet = BasicHotnessSet<PageKey, PageKeyHash, PageKeyCodec>;

}  // namespace tmprof::core
