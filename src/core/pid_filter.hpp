#pragma once
/// \file pid_filter.hpp
/// Process filtering — TMP's second overhead optimization (Section III-B4).
/// A-bit collection cost scales with the number of page tables walked, so
/// the daemon only tracks processes using at least 5% CPU or 10% of memory,
/// re-evaluated once per second.

#include <cstdint>
#include <vector>

#include "mem/addr.hpp"
#include "sim/process.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

struct PidFilterConfig {
  double cpu_threshold = 0.05;  ///< min share of recent CPU (issued ops)
  double mem_threshold = 0.10;  ///< min share of resident memory
  /// Restrictive mode keeps only the top-N processes by combined share,
  /// bounding overhead regardless of how many qualify (0 = unlimited).
  std::uint32_t restrict_top_n = 0;
};

class PidFilter {
 public:
  explicit PidFilter(const PidFilterConfig& config = {});

  /// Select which processes to profile. CPU share is computed from each
  /// process's ops issued since the previous call; memory share from RSS.
  [[nodiscard]] std::vector<mem::Pid> select(
      const std::vector<sim::Process*>& processes);

  [[nodiscard]] const PidFilterConfig& config() const noexcept {
    return config_;
  }

  /// PIDs always selected regardless of CPU/memory share, and kept through
  /// the restrictive top-N trim (latency tenants in a consolidated fleet,
  /// docs/CONSOLIDATION.md). Empty (default) leaves selection bitwise
  /// identical to the pre-consolidation filter. Not checkpointed: the
  /// owner re-attaches it on construction, like the config.
  void set_pinned(std::vector<mem::Pid> pids) { pinned_ = std::move(pids); }

  /// Checkpoint hooks: the per-pid ops baseline used for CPU-share deltas.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  [[nodiscard]] bool is_pinned(mem::Pid pid) const noexcept;

  PidFilterConfig config_;
  std::vector<mem::Pid> pinned_;
  std::vector<std::pair<mem::Pid, std::uint64_t>> last_ops_;
};

}  // namespace tmprof::core
