#include "core/hotness.hpp"

#include <stdexcept>

namespace tmprof::core {

std::string_view to_string(HotnessMode mode) noexcept {
  switch (mode) {
    case HotnessMode::Exact: return "exact";
    case HotnessMode::Sketch: return "sketch";
  }
  return "?";
}

HotnessMode parse_hotness_mode(const std::string& name) {
  if (name == "exact") return HotnessMode::Exact;
  if (name == "sketch") return HotnessMode::Sketch;
  throw std::invalid_argument("unknown hotness mode: " + name);
}

}  // namespace tmprof::core
